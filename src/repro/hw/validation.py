"""Cross-layer consistency validation.

Three independent layers of this library account for the same HMVP work:

1. the **functional** pipeline (`repro.core.hmvp`) tallies real
   operations while producing real ciphertexts;
2. the **driver** (`repro.hw.isa`) compiles the job into a command
   stream;
3. the **temporal** simulator (`repro.hw.pipeline`) schedules it in
   cycles.

:func:`validate_consistency` checks, for one job shape, that the three
agree on every shared quantity (dot products, pack reductions, LWE
aggregations) and that the cycle count is consistent with the op counts
given the engine's intervals.  :func:`sweep` runs it across a shape grid
— the regression harness that keeps the layers from drifting as the
library evolves (run in CI via ``tests/test_validation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .arch import ChamConfig, cham_default_config
from .isa import Opcode, compile_hmvp
from .pipeline import MacroPipeline

__all__ = ["ConsistencyReport", "validate_consistency", "sweep"]


@dataclass
class ConsistencyReport:
    """Agreement record for one job shape."""

    rows: int
    col_tiles: int
    dot_products: int
    reductions: int
    aggregations: int
    cycles: int
    mismatches: List[str]

    @property
    def consistent(self) -> bool:
        return not self.mismatches


def validate_consistency(
    rows: int,
    col_tiles: int = 1,
    cfg: Optional[ChamConfig] = None,
    functional_ops=None,
) -> ConsistencyReport:
    """Check driver/temporal (and optionally functional) agreement.

    ``functional_ops`` is an :class:`~repro.core.hmvp.HmvpOpCount` from a
    real run; when provided, its tallies are reconciled too.
    """
    cfg = cfg or cham_default_config()
    mismatches: List[str] = []

    stream = compile_hmvp(rows, col_tiles)
    isa_dots = stream.count(Opcode.DOT_PRODUCT)
    isa_reductions = stream.count(Opcode.PACK_REDUCE)
    isa_aggs = stream.count(Opcode.LWE_AGGREGATE)

    stats = MacroPipeline(cfg.engine).simulate_hmvp(rows, col_tiles)
    if stats.dot_products != isa_dots:
        mismatches.append(
            f"pipeline dots {stats.dot_products} != ISA {isa_dots}"
        )
    padded_reductions = (1 << max(rows - 1, 0).bit_length()) - 1
    if rows > 1 and stats.reductions != padded_reductions:
        mismatches.append(
            f"pipeline reductions {stats.reductions} != tree {padded_reductions}"
        )
    if rows > 1 and isa_reductions != padded_reductions:
        mismatches.append(
            f"ISA reductions {isa_reductions} != tree {padded_reductions}"
        )

    # temporal sanity: cycles at least the serial work of the slower side
    engine = cfg.engine
    dot_floor = stats.dot_products * engine.dot_product_interval
    pack_floor = stats.reductions * engine.pack_interval
    if stats.total_cycles < max(dot_floor, pack_floor):
        mismatches.append(
            f"cycles {stats.total_cycles} below the work floor "
            f"{max(dot_floor, pack_floor)}"
        )

    if functional_ops is not None:
        if functional_ops.dot_products != isa_dots:
            mismatches.append(
                f"functional dots {functional_ops.dot_products} != ISA {isa_dots}"
            )
        if rows > 1 and functional_ops.pack_reductions != padded_reductions:
            mismatches.append(
                f"functional reductions {functional_ops.pack_reductions} "
                f"!= tree {padded_reductions}"
            )
        if functional_ops.lwe_additions != isa_aggs:
            mismatches.append(
                f"functional aggregations {functional_ops.lwe_additions} "
                f"!= ISA {isa_aggs}"
            )

    return ConsistencyReport(
        rows=rows,
        col_tiles=col_tiles,
        dot_products=isa_dots,
        reductions=isa_reductions,
        aggregations=isa_aggs,
        cycles=stats.total_cycles,
        mismatches=mismatches,
    )


def sweep(
    shapes: Optional[List[Tuple[int, int]]] = None,
    cfg: Optional[ChamConfig] = None,
) -> List[ConsistencyReport]:
    """Validate a grid of job shapes; returns one report per shape."""
    if shapes is None:
        shapes = [
            (1, 1),
            (2, 1),
            (7, 1),
            (16, 1),
            (16, 3),
            (100, 2),
            (256, 1),
            (1000, 1),
            (4096, 1),
        ]
    return [validate_consistency(rows, tiles, cfg) for rows, tiles in shapes]
