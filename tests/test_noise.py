"""Tests for noise measurement and the analytical model — including the
paper's rescale noise-reduction claim (Section III-A)."""

import math

import numpy as np
import pytest

from repro.he.encoder import CoefficientEncoder
from repro.he.noise import (
    NoiseModel,
    absolute_noise_bits,
    invariant_noise_budget,
    packed_slot_positions,
)
from repro.he.rlwe import RlweCiphertext, encrypt


@pytest.fixture(scope="module")
def enc(params128):
    return CoefficientEncoder(params128)


def test_fresh_noise_is_small(ctx128, sk128, enc, rng):
    pt = enc.encode_coeffs(rng.integers(-1000, 1000, 128))
    ct = encrypt(ctx128, sk128, pt)
    bits = absolute_noise_bits(ctx128, sk128, ct)
    assert 0 < bits < 8


def test_budget_decreases_with_additions(ctx128, sk128, enc, rng):
    pt = enc.encode_coeffs(rng.integers(-1000, 1000, 128))
    ct = encrypt(ctx128, sk128, pt, augmented=False)
    budget0 = invariant_noise_budget(ctx128, sk128, ct)
    acc = ct
    for _ in range(7):
        acc = acc + ct
    budget1 = invariant_noise_budget(ctx128, sk128, acc)
    assert budget1 < budget0
    assert budget1 > 0  # still decryptable


def test_zero_ciphertext_budget_is_full(ctx128, sk128):
    z = RlweCiphertext.zero(ctx128, ctx128.ct_basis)
    assert invariant_noise_budget(ctx128, sk128, z) == float(
        ctx128.ct_basis.product.bit_length()
    )


def test_rescale_reduces_multiplication_noise(ctx128, sk128, enc, rng):
    """The paper's stage-4 claim: rescaling after the plaintext product
    knocks the multiplication noise down (30 -> 26 bit in their setting)."""
    v = rng.integers(-(1 << 15), 1 << 15, 128)
    row = rng.integers(-(1 << 15), 1 << 15, 128)
    ct = encrypt(ctx128, sk128, enc.encode_vector(v), augmented=True)
    prod = ct.multiply_plain(enc.encode_row(row))
    pre = absolute_noise_bits(ctx128, sk128, prod)
    post = absolute_noise_bits(ctx128, sk128, prod.rescale())
    assert post < pre - 5  # a large, decisive reduction
    assert pre > 15  # the multiplication really did inflate the noise


def test_slot_restricted_measurement(ctx128, sk128, galois128, enc, rng):
    """Packed garbage coefficients must not pollute slot noise readings."""
    from repro.he.lwe import extract_lwe
    from repro.he.packing import pack_lwes

    lwes = []
    for v in rng.integers(-100, 100, 4):
        coeffs = rng.integers(-100, 100, 128)
        coeffs[0] = v
        ct = encrypt(ctx128, sk128, enc.encode_coeffs(coeffs), augmented=False)
        lwes.append(extract_lwe(ct, 0))
    packed = pack_lwes(lwes, galois128)
    pos = packed_slot_positions(128, 4)
    slot_bits = absolute_noise_bits(ctx128, sk128, packed.ct, pos)
    all_bits = absolute_noise_bits(ctx128, sk128, packed.ct)
    assert slot_bits < all_bits  # garbage dominates the unrestricted view
    assert invariant_noise_budget(ctx128, sk128, packed.ct, pos) > 5


# -- analytical model -------------------------------------------------------------


def test_model_fresh_bounds_measurement(ctx128, sk128, enc, rng):
    model = NoiseModel.for_context(ctx128)
    pt = enc.encode_coeffs(rng.integers(-1000, 1000, 128))
    ct = encrypt(ctx128, sk128, pt)
    measured = absolute_noise_bits(ctx128, sk128, ct)
    assert measured <= math.log2(model.fresh_sym()) + 2


def test_model_pk_noise_larger_than_sym():
    model = NoiseModel(n=4096, sigma=3.2, t=1 << 40, q=1 << 69, p=1 << 39)
    assert model.fresh_pk() > model.fresh_sym()


def test_model_rescale_divides(ctx128):
    model = NoiseModel.for_context(ctx128)
    big = 2.0 ** 30
    rescaled = model.rescale(big)
    assert rescaled < big / 1e6
    assert rescaled > 0


def test_model_pack_doubles_per_level():
    model = NoiseModel(n=128, sigma=3.2, t=1 << 40, q=1 << 69, p=1 << 39)
    base = 100.0
    ks = model.keyswitch(dnum=2, q_max=1 << 35)
    one = model.pack(base, 1, ks)
    two = model.pack(base, 2, ks)
    assert one == pytest.approx(2 * base + ks)
    assert two == pytest.approx(2 * one + ks)


def test_model_budget_bits_monotone():
    model = NoiseModel(n=4096, sigma=3.2, t=1 << 40, q=1 << 69, p=1 << 39)
    assert model.budget_bits(2.0**5) > model.budget_bits(2.0**10)
    assert model.budget_bits(0) == 69 + 1 or model.budget_bits(0) > 60


def test_model_multiply_plain_scales_with_norm():
    model = NoiseModel(n=4096, sigma=3.2, t=1 << 40, q=1 << 69, p=1 << 39)
    assert model.multiply_plain(8.0, 2**16) == pytest.approx(
        8.0 * 2**16 * math.sqrt(4096)
    )


def test_paper_noise_figures_at_production_parameters():
    """With 16-bit matrix entries and the pk-encryption noise profile,
    the model lands near the paper's 30-bit pre-rescale figure and the
    rescale output sits near the paper's 26-bit figure once the pack
    tree's 12 doubling levels are included."""
    model = NoiseModel(
        n=4096, sigma=3.2, t=(1 << 40) + 15, q=1 << 69, p=1 << 39
    )
    pre = model.multiply_plain(model.fresh_pk(), 2**16)
    assert 28 <= math.log2(pre) <= 34  # "30 bit"
    ks = model.keyswitch(dnum=2, q_max=(1 << 34) + (1 << 27) + 1)
    packed = model.pack(model.rescale(pre), 12, ks)
    assert 20 <= math.log2(packed) <= 28  # "26 bit"
