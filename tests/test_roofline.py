"""Tests for the roofline model (Fig. 2a)."""

import pytest

from repro.hw.arch import U200
from repro.hw.roofline import (
    hmvp_kernel,
    keyswitch_kernel,
    ntt_kernel,
    roofline_points,
)


def test_intensity_ordering_matches_figure():
    """NTT < key-switch << HMVP — the Section III-B argument."""
    pts = roofline_points()
    assert pts["NTT"].intensity < pts["KeySwitch"].intensity
    assert pts["KeySwitch"].intensity * 5 < pts["HMVP"].intensity


def test_small_operators_are_memory_bound():
    pts = roofline_points()
    assert pts["NTT"].memory_bound
    assert pts["KeySwitch"].memory_bound
    assert pts["NTT"].peak_fraction < 0.1
    assert pts["KeySwitch"].peak_fraction < 0.1


def test_hmvp_near_compute_roof():
    hm = hmvp_kernel()
    assert hm.peak_fraction > 0.8


def test_ridge_point():
    assert U200.ridge_intensity == pytest.approx(
        U200.peak_ops_per_sec / (U200.ddr_gbps * 1e9)
    )


def test_attainable_never_exceeds_peak():
    for point in roofline_points().values():
        assert point.attainable_ops_per_sec <= U200.peak_ops_per_sec


def test_ntt_kernel_accounting():
    k = ntt_kernel(n=4096)
    assert k.ops == 2048 * 12 * 4
    assert k.bytes_moved == 2 * 4096 * 8
    assert k.intensity == pytest.approx(1.5)


def test_keyswitch_kernel_includes_key_traffic():
    with_keys = keyswitch_kernel()
    # the switching key is the dominant traffic term
    ct_only = 4 * 2 * 4096 * 8
    assert with_keys.bytes_moved > ct_only


def test_hmvp_amortizes_with_rows():
    small = hmvp_kernel(m=64)
    large = hmvp_kernel(m=8192)
    assert large.intensity > small.intensity * 0.9
    # ops scale linearly with rows
    assert large.ops == pytest.approx(small.ops * 8192 / 64, rel=0.01)


def test_column_tiles_increase_traffic():
    narrow = hmvp_kernel(m=1024, n_cols=4096)
    wide = hmvp_kernel(m=1024, n_cols=8192)
    assert wide.bytes_moved > 1.9 * narrow.bytes_moved
