"""Span tracing with distributed request context and two exporters.

A :class:`Span` is one named interval with arbitrary key/value
attributes; spans nest (a ``PACK`` span contains ``KEYSWITCH`` spans
contains ``NTT`` spans) via a per-thread stack, so the exported trace
reconstructs the call tree without any explicit parent bookkeeping.

On top of the thread-local nesting, v2 adds an *explicit* request-scoped
:class:`TraceContext` (trace id + parent span id + process lane).  The
context travels through a :mod:`contextvars` variable, so async tasks
inherit it automatically; thread-pool hops use
:func:`run_with_context`/:func:`use_context` to carry it across
executors, and queue/job layers stash the frozen context on their job
records.  Every live span records ``trace_id``/``span_id``/``parent_id``
and an optional tuple of *links* (span ids of causally-related spans in
other lanes, e.g. the failed offload attempt a failover reroute
replaces).

Two export formats:

* **JSONL** — one JSON object per span, trivially greppable/loadable;
* **Chrome trace-event format** — the ``{"traceEvents": [...]}`` JSON
  that ``chrome://tracing`` and https://ui.perfetto.dev load directly,
  using complete (``"ph": "X"``) events, per-node ``pid`` lanes with
  ``process_name`` metadata, and flow (``"s"``/``"f"``) events binding
  parent/child spans across lanes and explicit links — so one request,
  including replica reroutes, renders as a single connected tree.

Timestamps are microseconds.  Wall-clock spans (the context-manager API)
use ``time.perf_counter`` relative to the tracer's epoch; *synthetic*
spans with simulated timebases (the cycle-accurate pipeline traces) are
injected with :meth:`Tracer.add_span` at caller-chosen timestamps and
tracks.

Like the metrics registry, the module-level :data:`TRACER` starts
disabled: ``span()`` then returns a shared no-op context manager, so
instrumentation left in hot paths costs one branch.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "TRACER",
    "current_context",
    "use_context",
    "run_with_context",
    "default_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "span",
]


@dataclass(frozen=True)
class TraceContext:
    """Immutable request-scoped trace coordinates.

    ``trace_id`` names the request; ``span_id`` is the parent span a new
    child should attach to (empty at the trace root); ``pid`` is the
    default Chrome process lane (0 = coordinator, 1+ = engine/node
    lanes).  Frozen so it can be stashed on job records and shipped
    across threads without aliasing hazards.
    """

    trace_id: str
    span_id: str = ""
    pid: int = 0

    def child(self, span_id: str, pid: Optional[int] = None) -> "TraceContext":
        """The context a span opened under this one hands to *its* children."""
        return TraceContext(
            self.trace_id, span_id, self.pid if pid is None else pid
        )


#: The ambient trace context.  contextvars give each asyncio task its own
#: copy; plain threads start empty, so executor hops must bridge with
#: :func:`run_with_context`.
_CURRENT: "contextvars.ContextVar[Optional[TraceContext]]" = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> Optional[TraceContext]:
    """The ambient :class:`TraceContext`, or None outside any trace."""
    return _CURRENT.get()


@contextmanager
def use_context(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make ``ctx`` the ambient trace context for the enclosed block."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def run_with_context(
    ctx: Optional[TraceContext], fn: Callable[..., Any], *args: Any, **kwargs: Any
) -> Any:
    """Call ``fn`` under ``ctx`` — the bridge for thread-pool hops, where
    contextvars do not follow automatically."""
    token = _CURRENT.set(ctx)
    try:
        return fn(*args, **kwargs)
    finally:
        _CURRENT.reset(token)


@dataclass
class Span:
    """One completed (or synthetic) trace interval."""

    name: str
    ts_us: float  #: start, microseconds since the tracer epoch
    dur_us: float
    track: int = 0  #: Chrome ``tid``: one lane per thread or synthetic track
    depth: int = 0  #: nesting depth inside its track (0 = top level)
    args: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0  #: Chrome ``pid`` lane (0 = coordinator, 1+ = engines/nodes)
    trace_id: str = ""  #: request this span belongs to ("" = untraced)
    span_id: str = ""  #: this span's own id
    parent_id: str = ""  #: id of the span this one nests under
    links: Tuple[str, ...] = ()  #: causal links to spans in other lanes

    def to_chrome_event(self) -> Dict[str, Any]:
        """The ``"ph": "X"`` (complete) trace-event dict."""
        event: Dict[str, Any] = {
            "name": self.name,
            "cat": "repro",
            "ph": "X",
            "ts": self.ts_us,
            "dur": self.dur_us,
            "pid": self.pid,
            "tid": self.track,
        }
        args = dict(self.args)
        if self.trace_id:
            args["trace_id"] = self.trace_id
        if self.span_id:
            args["span_id"] = self.span_id
        if self.parent_id:
            args["parent_id"] = self.parent_id
        if args:
            event["args"] = args
        return event


class _NullSpan:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    span_id = ""  #: read by call sites that link spans; always empty here

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> None:
        return None

    def set(self, **_attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one wall-clock span on exit."""

    __slots__ = (
        "_tracer",
        "name",
        "args",
        "_start",
        "_ctx",
        "_pid",
        "_links",
        "_parent",
        "_token",
        "span_id",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        args: Dict[str, Any],
        ctx: Optional[TraceContext],
        pid: Optional[int],
        links: Optional[Tuple[str, ...]],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0
        self._ctx = ctx
        self._pid = pid
        self._links = links or ()
        self._parent: Optional[TraceContext] = None
        self._token: Optional[contextvars.Token] = None
        self.span_id = ""

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.args.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        self._start = time.perf_counter()
        parent = self._ctx if self._ctx is not None else _CURRENT.get()
        self._parent = parent
        self.span_id = self._tracer._next_span_id()
        if self._pid is not None:
            pid = self._pid
        elif parent is not None:
            pid = parent.pid
        else:
            pid = 0
        self._pid = pid
        # children opened inside this block attach to this span
        self._token = _CURRENT.set(
            TraceContext(
                parent.trace_id if parent is not None else "", self.span_id, pid
            )
        )
        self._tracer._push()
        return self

    def __exit__(self, *_exc: object) -> None:
        end = time.perf_counter()
        depth = self._tracer._pop()
        if self._token is not None:
            _CURRENT.reset(self._token)
        parent = self._parent
        self._tracer._record_wallclock(
            self.name,
            self._start,
            end,
            depth,
            self.args,
            pid=self._pid if self._pid is not None else 0,
            trace_id=parent.trace_id if parent is not None else "",
            span_id=self.span_id,
            parent_id=parent.span_id if parent is not None else "",
            links=tuple(self._links),
        )


class Tracer:
    """Span collector with a context-manager API and two exporters."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._epoch = time.perf_counter()
        self._local = threading.local()
        self._track_names: Dict[int, str] = {}
        self._process_names: Dict[int, str] = {}
        self._thread_tracks: Dict[int, int] = {}
        # itertools.count.__next__ is atomic under the GIL, so id minting
        # needs no lock even from worker pools
        self._trace_counter = itertools.count(1)
        self._span_counter = itertools.count(1)

    # -- trace context -------------------------------------------------------

    def new_trace(self, pid: int = 0) -> TraceContext:
        """Mint a fresh request-scoped trace root (deterministic ids)."""
        return TraceContext(f"t{next(self._trace_counter)}", "", pid)

    def _next_span_id(self) -> str:
        return f"s{next(self._span_counter)}"

    # -- recording -----------------------------------------------------------

    def span(
        self,
        name: str,
        *,
        ctx: Optional[TraceContext] = None,
        pid: Optional[int] = None,
        links: Optional[Tuple[str, ...]] = None,
        **args: Any,
    ):
        """Open a nested wall-clock span: ``with tracer.span("NTT"): ...``

        ``ctx`` overrides the ambient parent context (used when a job
        carries its request's frozen context across an executor hop);
        ``pid`` pins the Chrome process lane; ``links`` attaches causal
        links to span ids in other lanes.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, args, ctx, pid, tuple(links) if links else None)

    def add_span(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        track: int = 0,
        depth: int = 0,
        *,
        pid: int = 0,
        ctx: Optional[TraceContext] = None,
        links: Optional[Tuple[str, ...]] = None,
        **args: Any,
    ) -> str:
        """Inject a synthetic span (simulated timebase, e.g. cycles).

        Returns the minted span id so callers can link against it.
        """
        if not self.enabled:
            return ""
        span_id = self._next_span_id()
        spn = Span(
            name,
            ts_us,
            dur_us,
            track,
            depth,
            args,
            pid=pid if pid else (ctx.pid if ctx is not None else 0),
            trace_id=ctx.trace_id if ctx is not None else "",
            span_id=span_id,
            parent_id=ctx.span_id if ctx is not None else "",
            links=tuple(links) if links else (),
        )
        with self._lock:
            self._spans.append(spn)
        return span_id

    def name_track(self, track: int, name: str) -> None:
        """Label a track; exported as Chrome thread-name metadata."""
        with self._lock:
            self._track_names[track] = name

    def name_process(self, pid: int, name: str) -> None:
        """Label a pid lane; exported as Chrome process-name metadata."""
        with self._lock:
            self._process_names[pid] = name

    # nesting stack ---------------------------------------------------------

    def _push(self) -> None:
        stack = getattr(self._local, "depth", 0)
        self._local.depth = stack + 1

    def _pop(self) -> int:
        depth = getattr(self._local, "depth", 1) - 1
        self._local.depth = depth
        return depth

    def _thread_track(self) -> int:
        ident = threading.get_ident()
        try:
            return self._thread_tracks[ident]
        except KeyError:
            with self._lock:
                return self._thread_tracks.setdefault(
                    ident, len(self._thread_tracks) + 1
                )

    def _record_wallclock(
        self,
        name: str,
        start: float,
        end: float,
        depth: int,
        args: Dict[str, Any],
        *,
        pid: int = 0,
        trace_id: str = "",
        span_id: str = "",
        parent_id: str = "",
        links: Tuple[str, ...] = (),
    ) -> None:
        spn = Span(
            name=name,
            ts_us=(start - self._epoch) * 1e6,
            dur_us=(end - start) * 1e6,
            track=self._thread_track(),
            depth=depth,
            args=args,
            pid=pid,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            links=links,
        )
        with self._lock:
            self._spans.append(spn)

    # -- introspection -------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Completed spans so far (chronological per track, not global)."""
        with self._lock:
            return list(self._spans)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
        self._epoch = time.perf_counter()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    # -- exporters -----------------------------------------------------------

    def chrome_events(self) -> List[Dict[str, Any]]:
        """All spans as Chrome trace events, ``ts``-sorted per lane,
        preceded by process/thread-name metadata events and followed by
        flow events that connect parent/child spans across lanes and
        explicit cross-lane links."""
        with self._lock:
            track_names = dict(self._track_names)
            process_names = dict(self._process_names)
            spans = list(self._spans)
        events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "args": {"name": label},
            }
            for pid, label in sorted(process_names.items())
        ]
        pids_by_track: Dict[int, set] = {}
        for s in spans:
            pids_by_track.setdefault(s.track, set()).add(s.pid)
        for track, label in sorted(track_names.items()):
            for pid in sorted(pids_by_track.get(track, {0})):
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": track,
                        "args": {"name": label},
                    }
                )
        ordered = sorted(spans, key=lambda s: (s.pid, s.track, s.ts_us, -s.dur_us))
        events.extend(s.to_chrome_event() for s in ordered)
        events.extend(self._flow_events(spans))
        return events

    @staticmethod
    def _flow_events(spans: List[Span]) -> List[Dict[str, Any]]:
        """Flow (``s``/``f``) pairs: one per parent→child hop that crosses
        a (pid, track) lane boundary, plus one per explicit link.  The
        finish side uses ``"bp": "e"`` so it binds to the *enclosing*
        slice at that timestamp."""
        by_id = {s.span_id: s for s in spans if s.span_id}
        flows: List[Dict[str, Any]] = []
        flow_id = itertools.count(1)
        for s in spans:
            sources: List[Tuple[Span, str]] = []
            if s.parent_id:
                parent = by_id.get(s.parent_id)
                if parent is not None and (parent.pid, parent.track) != (
                    s.pid,
                    s.track,
                ):
                    sources.append((parent, "hop"))
            for link in s.links:
                linked = by_id.get(link)
                if linked is not None:
                    sources.append((linked, "link"))
            for src, kind in sources:
                # clamp the start timestamp inside the source slice so the
                # flow stays monotone and binds to it
                start_ts = min(max(s.ts_us, src.ts_us), src.ts_us + src.dur_us)
                fid = next(flow_id)
                flows.append(
                    {
                        "name": kind,
                        "cat": "repro.flow",
                        "ph": "s",
                        "id": fid,
                        "pid": src.pid,
                        "tid": src.track,
                        "ts": start_ts,
                    }
                )
                flows.append(
                    {
                        "name": kind,
                        "cat": "repro.flow",
                        "ph": "f",
                        "bp": "e",
                        "id": fid,
                        "pid": s.pid,
                        "tid": s.track,
                        "ts": max(start_ts, s.ts_us + s.dur_us / 2),
                    }
                )
        return flows

    def export_chrome_trace(self, path: str) -> None:
        """Write ``{"traceEvents": [...]}`` loadable in chrome://tracing
        and Perfetto."""
        payload = {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}
        with open(path, "w") as fh:
            json.dump(payload, fh)

    def export_jsonl(self, path: str) -> None:
        """Write one JSON object per span."""
        with open(path, "w") as fh:
            for s in sorted(self.spans, key=lambda s: (s.pid, s.track, s.ts_us)):
                record: Dict[str, Any] = {
                    "name": s.name,
                    "ts_us": s.ts_us,
                    "dur_us": s.dur_us,
                    "track": s.track,
                    "depth": s.depth,
                    "args": s.args,
                    "pid": s.pid,
                }
                if s.trace_id:
                    record["trace_id"] = s.trace_id
                if s.span_id:
                    record["span_id"] = s.span_id
                if s.parent_id:
                    record["parent_id"] = s.parent_id
                if s.links:
                    record["links"] = list(s.links)
                fh.write(json.dumps(record))
                fh.write("\n")


#: Process-wide default tracer; disabled until :func:`enable_tracing`.
TRACER = Tracer(enabled=False)


def default_tracer() -> Tracer:
    return TRACER


def enable_tracing(reset: bool = True) -> Tracer:
    """Turn on the default tracer (optionally clearing prior spans)."""
    if reset:
        TRACER.reset()
    TRACER.enabled = True
    return TRACER


def disable_tracing() -> Tracer:
    TRACER.enabled = False
    return TRACER


def tracing_enabled() -> bool:
    return TRACER.enabled


def span(
    name: str,
    *,
    ctx: Optional[TraceContext] = None,
    pid: Optional[int] = None,
    links: Optional[Tuple[str, ...]] = None,
    **args: Any,
):
    """Module-level shorthand for ``TRACER.span(...)`` — the call sites'
    one-liner: ``with obs.span("PACK", count=m): ...``"""
    if not TRACER.enabled:
        return _NULL_SPAN
    return TRACER.span(name, ctx=ctx, pid=pid, links=links, **args)
