#!/usr/bin/env python3
"""Multi-scheme pipelines: BFV and CKKS on the same substrate.

The paper motivates CHAM with "HE algorithms that combine different HE
schemes" and "different types of ciphertexts and the conversion between
them".  This example runs, with ONE shared secret key:

1. an exact BFV matrix-vector product (Alg. 1);
2. the same HMVP in CKKS over real numbers — through exactly the same
   NTT / extract / pack machinery;
3. scheme conversions: BFV -> CKKS (exact reinterpretation), a real-
   valued CKKS rescaling step, and CKKS -> BFV (scale alignment).

Usage: python examples/multischeme.py
"""

import numpy as np

from repro.he.bfv import BfvScheme
from repro.he.ckks import CkksScheme
from repro.he.conversion import bfv_to_ckks, ckks_to_bfv, max_exact_message
from repro.he.params import toy_params


def main() -> None:
    print("Multi-scheme HE on the CHAM substrate")
    print("=" * 60)

    params = toy_params(n=128, plain_bits=40)
    bfv = BfvScheme(params, seed=20, max_pack=8)
    ckks = CkksScheme(params, seed=21, shared_secret=bfv.secret_key, max_pack=8)
    print(f"shared ring {params.describe()}")
    print("shared secret key between BFV and CKKS instances\n")

    rng = np.random.default_rng(22)

    # 1. exact BFV HMVP
    v_int = rng.integers(-100, 100, 128)
    rows_int = [rng.integers(-100, 100, 128) for _ in range(4)]
    ct = bfv.encrypt_vector(v_int)
    lwes = [bfv.extract(bfv.dot_product(ct, r)) for r in rows_int]
    packed = bfv.pack(lwes)
    got = bfv.decrypt_packed(packed)
    want = [int(np.dot(r.astype(object), v_int.astype(object))) for r in rows_int]
    assert [int(x) for x in got] == want
    print(f"[BFV ] exact packed HMVP: {[int(x) for x in got]}")

    # 2. the same pipeline in CKKS over reals
    v_real = rng.normal(0, 1, 128)
    rows_real = [rng.normal(0, 1, 128) for _ in range(4)]
    ct_c = ckks.encrypt_coeffs(v_real)
    dps = [ckks.dot_product(ct_c, r) for r in rows_real]
    packed_c, stride = ckks.extract_and_pack(dps)
    got_c = ckks.decrypt_packed(packed_c, 4, stride)
    want_c = np.array([float(r @ v_real) for r in rows_real])
    err = float(np.max(np.abs(got_c - want_c)))
    assert err < 1e-2
    print(f"[CKKS] approximate packed HMVP, max error {err:.2e}")
    print("       (same NTT units, same extract/pack, same Galois keys)")

    # 3a. BFV -> CKKS: exact reinterpretation, then real arithmetic
    ints = rng.integers(-50, 50, 128)
    exact_ct = bfv.encrypt_vector(ints, augmented=True)
    as_ckks = bfv_to_ckks(bfv, exact_ct)
    weights = rng.normal(0, 1, 128)
    weighted = ckks.dot_product(as_ckks, weights)
    got_w = ckks.decrypt_coeffs(weighted, 1)[0]
    want_w = float(weights @ ints)
    print(f"[BFV->CKKS] weighted sum of exact integers: "
          f"{got_w:.4f} (true {want_w:.4f})")

    # 3b. CKKS -> BFV: scale alignment back onto the exact lattice
    scale = float(2**15)
    bound = max_exact_message(bfv, scale)
    small = rng.integers(-bound // 4, bound // 4, 16)
    ckks_ct = ckks.encrypt_coeffs(small.astype(float), scale=scale, augmented=False)
    back = ckks_to_bfv(bfv, ckks_ct)
    dec = bfv.decrypt_coeffs(back, 16)
    assert np.array_equal(np.array([int(x) for x in dec]), small)
    print(f"[CKKS->BFV] recovered integers exactly "
          f"(|m| < {bound} guaranteed at scale 2^15)")
    print("\nOK")


if __name__ == "__main__":
    main()
