"""Tests for the architecture description."""

import pytest

from repro.hw.arch import (
    ChamConfig,
    EngineConfig,
    NttUnitConfig,
    U200,
    VU9P,
    cham_default_config,
)


def test_ntt_unit_cycles_table3():
    """(N/2 * log2 N) / n_bfu = 6144 at the production point."""
    unit = NttUnitConfig()
    assert unit.n == 4096
    assert unit.n_bfu == 4
    assert unit.cycles == 6144
    assert unit.coefficients_per_cycle == 8


def test_ntt_unit_scaling():
    assert NttUnitConfig(n_bfu=8).cycles == 3072
    assert NttUnitConfig(n=1024, n_bfu=4).cycles == 1280


def test_engine_ntt_unit_total_is_thirty():
    """9 + 6 + 15 transform lanes per engine; 60 across two engines."""
    engine = EngineConfig()
    assert engine.total_ntt_units == 30
    assert cham_default_config().total_ntt_units == 60


def test_dot_product_interval_balanced():
    """All stages of the default engine sustain one row per NTT latency."""
    engine = EngineConfig()
    assert engine.dot_product_interval == 6144


def test_pack_interval_keeps_up():
    """The pack module must be at least as fast as row arrival."""
    engine = EngineConfig()
    assert engine.pack_interval <= engine.dot_product_interval


def test_default_config():
    cfg = cham_default_config()
    assert cfg.engines == 2
    assert cfg.clock_hz == 300e6
    assert cfg.with_engines(1).engines == 1


def test_devices():
    assert VU9P.dsps == 6840
    assert VU9P.peak_ops_per_sec == pytest.approx(6840 * 300e6)
    assert U200.ridge_intensity == pytest.approx(
        6840 * 300e6 / (77e9), rel=1e-6
    )


def test_eight_pe_engine_is_twice_as_fast():
    fast = EngineConfig(ntt_unit=NttUnitConfig(n_bfu=8))
    assert fast.dot_product_interval == EngineConfig().dot_product_interval // 2
