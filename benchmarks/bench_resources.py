"""E1 — Table II: resource utilization on the Xilinx VU9P.

Rebuilds the table bottom-up from the per-module resource model and
checks every row against the paper's synthesis results, including the
"below 75% after BRAM->URAM/LUTRAM retiming" rule of Section V-A.
"""

import pytest
from conftest import print_table

from repro.hw.arch import EngineConfig, cham_default_config
from repro.hw.resources import (
    TABLE2_REFERENCE,
    engine_resources,
    platform_resources,
    total_resources,
    utilization,
)

PAPER_TOTAL_PCT = {"LUT": 63.68, "FF": 20.41, "BRAM": 72.13, "URAM": 61.98, "DSP": 29.04}


def test_table2_reproduction():
    cfg = cham_default_config()
    engine = engine_resources(cfg.engine)
    platform = platform_resources()
    util = utilization(total_resources(cfg))

    rows = []
    for name in ("Compute Engine 0", "Compute Engine 1"):
        model = engine.as_dict()
        paper = TABLE2_REFERENCE[name].as_dict()
        rows.append((name + " (model)",) + tuple(model.values()))
        rows.append((name + " (paper)",) + tuple(paper.values()))
    rows.append(("Platform (model=paper)",) + tuple(platform.as_dict().values()))
    rows.append(
        ("Total % (model)",)
        + tuple(f"{util[k]:.2f}%" for k in ("LUT", "FF", "BRAM", "URAM", "DSP"))
    )
    rows.append(
        ("Total % (paper)",)
        + tuple(f"{PAPER_TOTAL_PCT[k]:.2f}%" for k in ("LUT", "FF", "BRAM", "URAM", "DSP"))
    )
    print_table(
        "Table II: resource utilization on VU9P",
        ["module", "LUT", "FF", "BRAM", "URAM", "DSP"],
        rows,
    )

    for key, want in PAPER_TOTAL_PCT.items():
        assert util[key] == pytest.approx(want, abs=1.0), key


def test_table2_engine_rows_within_two_percent():
    got = engine_resources(EngineConfig())
    for name in ("Compute Engine 0", "Compute Engine 1"):
        ref = TABLE2_REFERENCE[name]
        for field in ("lut", "ff", "bram", "uram", "dsp"):
            g, r = getattr(got, field), getattr(ref, field)
            assert abs(g - r) / max(r, 1) < 0.02, (name, field)


def test_all_resources_below_75_percent():
    """The paper's place-and-route headroom rule (Section V-A)."""
    util = utilization(total_resources(cham_default_config()))
    assert all(v < 75.0 for v in util.values()), util


def test_bram_retiming_story():
    """Replacing BRAM with URAM/LUTRAM in some units relieves BRAM
    pressure: the all-BRAM build would exceed the 75% BRAM rule."""
    from dataclasses import replace

    from repro.hw.arch import ChamConfig, NttUnitConfig
    from repro.hw.resources import ResourceVector

    cfg = cham_default_config()
    # hypothetical all-BRAM build: every unit keeps its 14-BRAM footprint
    # and the engine's URAM buffers move back to BRAM (36 kbit ~ 2 BRAM/URAM)
    base = total_resources(cfg)
    all_bram = ResourceVector(
        lut=base.lut, ff=base.ff, bram=base.bram + base.uram * 2, uram=0, dsp=base.dsp
    )
    assert utilization(all_bram)["BRAM"] > 75.0
    assert utilization(base)["BRAM"] < 75.0


@pytest.mark.benchmark(group="resources")
def test_perf_resource_model(benchmark):
    cfg = cham_default_config()
    benchmark(total_resources, cfg)


def test_figure_5_floorplan():
    """Fig. 5: the SLR placement — engines in the outer dies, platform
    (PCIe shell) in the middle, every die inside its P&R thresholds."""
    from repro.hw.floorplan import plan_cham

    plan = plan_cham()
    rows = []
    for slr in range(3):
        members = [n for n, s in plan.assignment.items() if s == slr]
        util = plan.slr_utilizations()[slr]
        rows.append(
            (
                f"SLR{slr}",
                ", ".join(sorted(members)) or "-",
                f"{100 * util['LUT']:.0f}%",
                f"{100 * util['BRAM']:.0f}%",
                f"{100 * util['URAM']:.0f}%",
            )
        )
    print_table(
        "Fig. 5: VU9P floorplan (3 SLRs)",
        ["die", "modules", "LUT", "BRAM", "URAM"],
        rows,
    )
    assert plan.feasible()
    assert plan.sll_feasible()
    # the placement is forced: co-locating the engines breaks feasibility
    plan.assignment["engine1"] = plan.assignment["engine0"]
    assert not plan.feasible()
