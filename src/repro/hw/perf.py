"""Calibrated end-to-end performance models (CPU / GPU / CHAM).

CHAM numbers come from the cycle-level simulators in this package; the
CPU (Intel Xeon 6130) and GPU (NVIDIA V100) baselines are analytical
models whose constants are **anchored to the paper's own published
ratios** (we do not own the authors' testbed; see DESIGN.md §2):

* CHAM key-switch ≈ 61-65 k ops/s (one engine's pack pipeline) and the
  quoted 105× over CPU fixes the CPU key-switch at ≈ 1.6 ms;
* GPU NTT throughput is the paper's quoted 45 k ops/s;
* GPU sustained HMVP throughput is CHAM/4.5 (Fig. 6);
* the standalone-NTT offload rate is PCIe-bandwidth-bound:
  ``12.8 GB/s / 64 KiB per polynomial ≈ 195 k ops/s`` — the paper's
  number falls out of the bandwidth model rather than a fit;
* Paillier constants follow FATE's 1024-bit production keys.

All model constants are dataclass fields, so benchmarks can expose and
ablate them; EXPERIMENTS.md records every anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .arch import ChamConfig, cham_default_config
from .hetero import ChunkTiming, HeteroSchedule, simulate_hetero
from .pipeline import MacroPipeline

__all__ = [
    "CpuCostModel",
    "PaillierCostModel",
    "GpuCostModel",
    "ChamPerfModel",
    "hmvp_latency_all",
]

_BYTES_PER_COEFF = 8


@dataclass(frozen=True)
class CpuCostModel:
    """Single-socket Xeon 6130 running a SEAL-style RNS-BFV library."""

    ntt_us: float = 25.0  # one 4096-point single-limb transform, one core
    pointwise_us: float = 8.0  # one coefficient-wise 4096-vector modmul pass
    keyswitch_ms: float = 1.61  # anchored: 65 k/s on CHAM is "105x" the CPU
    encrypt_ms: float = 0.55  # one augmented RLWE encryption
    decrypt_ms: float = 0.30
    add_ct_us: float = 40.0  # ciphertext addition
    encode_row_us: float = 30.0  # Eq. 1 row encoding of 4096 entries
    threads: int = 1

    def dot_product_s(self, limbs: int = 2) -> float:
        """One stage 1-4 pass: 3 fwd + 6 inv transforms + pointwise + rescale."""
        limbs_aug = limbs + 1
        transforms = limbs_aug + 2 * limbs_aug
        return (
            transforms * self.ntt_us + 2 * limbs_aug * self.pointwise_us
        ) * 1e-6 + 0.2 * self.keyswitch_ms * 0  # rescale is cheap, folded in

    def pack_reduction_s(self) -> float:
        """One PACKTWOLWES: an automorphism + a key-switch dominate."""
        return self.keyswitch_ms * 1e-3

    def hmvp_s(self, m: int, n: int, ring_n: int = 4096, limbs: int = 2) -> float:
        """Full Alg. 1 on CPU (encode + dot products + pack)."""
        col_tiles = -(-n // ring_n)
        per_row = (
            col_tiles * (self.dot_product_s(limbs) + self.encode_row_us * 1e-6)
            + self.pack_reduction_s()
        )
        return m * per_row / self.threads

    def ntt_throughput(self) -> float:
        return 1e6 / self.ntt_us

    def keyswitch_throughput(self) -> float:
        return 1e3 / self.keyswitch_ms


@dataclass(frozen=True)
class PaillierCostModel:
    """FATE's Paillier backend with 1024-bit keys (CRT decryption)."""

    mul_plain_us: float = 4.5  # windowed small-exponent modexp mod n^2
    add_us: float = 1.5  # one 2048-bit modular multiplication
    encrypt_ms: float = 1.8  # full-width r^n blinding
    decrypt_ms: float = 1.2
    threads: int = 1

    def matvec_s(self, m: int, n: int) -> float:
        """m*n plaintext multiplies + adds (the FATE matvec)."""
        return m * n * (self.mul_plain_us + self.add_us) * 1e-6 / self.threads

    def encrypt_vec_s(self, k: int) -> float:
        return k * self.encrypt_ms * 1e-3 / self.threads

    def decrypt_vec_s(self, k: int) -> float:
        return k * self.decrypt_ms * 1e-3 / self.threads

    def add_vec_s(self, k: int) -> float:
        return k * self.add_us * 1e-6 / self.threads


@dataclass(frozen=True)
class GpuCostModel:
    """NVIDIA V100 running a cuHE-style RNS-BFV implementation."""

    ntt_throughput: float = 45e3  # paper-quoted single-kernel rate
    #: sustained HMVP throughput relative to saturated CHAM (Fig. 6)
    hmvp_throughput_vs_cham: float = 4.5
    fixed_overhead_s: float = 0.015  # context + kernel launch train
    encode_row_us: float = 30.0  # host-side encode, same CPU
    host_threads: int = 8

    def hmvp_s(self, m: int, n: int, cham_sat_rows_per_s: float, ring_n: int = 4096) -> float:
        col_tiles = -(-n // ring_n)
        rate = cham_sat_rows_per_s / self.hmvp_throughput_vs_cham
        compute = m * col_tiles / rate
        encode = m * col_tiles * self.encode_row_us * 1e-6 / self.host_threads
        return self.fixed_overhead_s + max(compute, encode)


@dataclass
class ChamPerfModel:
    """End-to-end CHAM performance from the cycle simulators."""

    cfg: ChamConfig = field(default_factory=cham_default_config)
    #: driver + invocation overhead per offloaded job (Section III-C)
    fixed_overhead_s: float = 0.010
    #: host-side Eq. 1 row encode cost (same CPU as the baselines)
    encode_row_us: float = 30.0
    #: rows per host work chunk (one staging buffer)
    chunk_rows: int = 512

    def __post_init__(self) -> None:
        self._pipeline = MacroPipeline(self.cfg.engine)

    # -- raw engine rates ----------------------------------------------------------

    def row_interval_s(self) -> float:
        return self.cfg.engine.dot_product_interval / self.cfg.clock_hz

    def saturated_rows_per_s(self) -> float:
        return self.cfg.engines / self.row_interval_s()

    def hmvp_cycles(self, m: int, n: int) -> int:
        from .pipeline import simulate_multi_engine

        col_tiles = -(-n // self.cfg.engine.ntt_unit.n)
        return simulate_multi_engine(self.cfg, m, col_tiles).total_cycles

    # -- end-to-end latency via the heterogeneous schedule ---------------------------

    def hmvp_schedule(self, m: int, n: int) -> HeteroSchedule:
        """Fig. 1b pipelined execution of one HMVP."""
        ring_n = self.cfg.engine.ntt_unit.n
        col_tiles = -(-n // ring_n)
        chunks: List[ChunkTiming] = []
        remaining = m
        pcie = self.cfg.pcie_gbps * 1e9
        while remaining > 0:
            rows = min(self.chunk_rows, remaining)
            stats = self._pipeline.simulate_hmvp(rows, col_tiles)
            encode = rows * col_tiles * self.encode_row_us * 1e-6
            row_bytes = rows * col_tiles * 3 * ring_n * _BYTES_PER_COEFF
            chunks.append(
                ChunkTiming(
                    encode_s=encode,
                    transfer_s=row_bytes / pcie,
                    compute_s=stats.total_cycles / self.cfg.clock_hz,
                    readback_s=4 * ring_n * _BYTES_PER_COEFF / pcie,
                )
            )
            remaining -= rows
        return simulate_hetero(self.cfg, chunks)

    def hmvp_s(self, m: int, n: int) -> float:
        return self.fixed_overhead_s + self.hmvp_schedule(m, n).total_s

    def hmvp_throughput_rows_per_s(self, m: int, n: int) -> float:
        return m / self.hmvp_s(m, n)

    # -- operator-level throughputs (Table III discussion) -----------------------------

    def ntt_offload_throughput(self) -> float:
        """Standalone NTT offload: PCIe-bandwidth-bound (≈195 k ops/s)."""
        unit = self.cfg.engine.ntt_unit
        unit_rate = self.cfg.clock_hz / unit.cycles
        compute_roof = self.cfg.total_ntt_units * unit_rate
        wire_bytes = 2 * unit.n * _BYTES_PER_COEFF  # poly in + poly out
        bandwidth_roof = self.cfg.pcie_gbps * 1e9 / wire_bytes
        return min(compute_roof, bandwidth_roof)

    def keyswitch_throughput(self, engines: int = 1) -> float:
        """Key-switch offload: pack-pipeline-bound (≈61-65 k ops/s/engine)."""
        return engines * self.cfg.clock_hz / self.cfg.engine.pack_interval


def hmvp_latency_all(
    m: int,
    n: int,
    cham: ChamPerfModel = None,
    cpu: CpuCostModel = None,
    gpu: GpuCostModel = None,
) -> Dict[str, float]:
    """Fig. 8 row: HMVP latency on the three platforms (seconds)."""
    cham = cham or ChamPerfModel()
    cpu = cpu or CpuCostModel()
    gpu = gpu or GpuCostModel()
    return {
        "cpu": cpu.hmvp_s(m, n),
        "gpu": gpu.hmvp_s(m, n, cham.saturated_rows_per_s()),
        "cham": cham.hmvp_s(m, n),
    }
