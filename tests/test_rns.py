"""Tests for the RNS layer: CRT, fast base extension, rescale."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math.primes import CHAM_P, CHAM_Q0, CHAM_Q1
from repro.math.rns import RnsBasis, RnsPoly

N = 64


@pytest.fixture(scope="module")
def basis():
    return RnsBasis((CHAM_Q0, CHAM_Q1, CHAM_P), N)


@pytest.fixture(scope="module")
def ct_basis():
    return RnsBasis((CHAM_Q0, CHAM_Q1), N)


def test_basis_validation():
    with pytest.raises(ValueError):
        RnsBasis((CHAM_Q0, CHAM_Q0), N)  # duplicate
    with pytest.raises(ValueError):
        RnsBasis((CHAM_Q0, 97), N)  # 97 not NTT-friendly for N=64


def test_basis_products(basis):
    assert basis.product == CHAM_Q0 * CHAM_Q1 * CHAM_P
    assert basis.punctured[0] == CHAM_Q1 * CHAM_P
    for q_hat, inv, q in zip(basis.punctured, basis.punctured_inv, basis.moduli):
        assert q_hat * inv % q == 1


def test_drop_last_and_extend(basis, ct_basis):
    assert basis.drop_last().moduli == ct_basis.moduli
    assert ct_basis.extend([CHAM_P]).moduli == basis.moduli
    with pytest.raises(ValueError):
        RnsBasis((CHAM_Q0,), N).drop_last()


def test_decompose_compose_roundtrip(basis, rng):
    x = np.array(
        [int(v) for v in rng.integers(0, 1 << 62, N)], dtype=object
    ) * np.array([int(v) for v in rng.integers(1, 1 << 40, N)], dtype=object)
    x %= basis.product
    assert np.array_equal(basis.compose(basis.decompose(x)), x)


def test_compose_centered(basis):
    x = np.array([basis.product - 1, 1, 0], dtype=object)
    r = basis.decompose(x)
    centered = basis.compose_centered(r)
    assert list(centered) == [-1, 1, 0]


def test_fast_extension_matches_exact(ct_basis, rng):
    x = np.array([int(v) for v in rng.integers(0, 1 << 63, N)], dtype=object)
    x = x * 31 % ct_basis.product
    r = ct_basis.decompose(x)
    fast = ct_basis.extend_to(r, [CHAM_P])
    exact = ct_basis.extend_to_exact(r, [CHAM_P])
    assert np.array_equal(fast, exact)


def test_fast_extension_negative_values(ct_basis):
    """Centered convention: Q-1 is -1, so the extension must give t-1."""
    x = np.array([ct_basis.product - 1, ct_basis.product - 12345], dtype=object)
    pad = np.zeros(N - 2, dtype=object)
    x = np.concatenate([x, pad])
    r = ct_basis.decompose(x)
    ext = ct_basis.extend_to(r, [CHAM_P])
    assert int(ext[0][0]) == CHAM_P - 1
    assert int(ext[0][1]) == CHAM_P - 12345


def test_fast_extension_multiple_targets(ct_basis, rng):
    x = np.array([int(v) for v in rng.integers(0, 1 << 60, N)], dtype=object)
    r = ct_basis.decompose(x)
    fast = ct_basis.extend_to(r, [CHAM_P, 12289 * 1 + 0])
    exact = ct_basis.extend_to_exact(r, [CHAM_P, 12289])
    assert np.array_equal(fast, exact)


def divround(v: int, p: int) -> int:
    r = v % p
    if r > p // 2:
        return (v - (r - p)) // p
    return (v - r) // p


def test_rescale_last_matches_bigint(basis, rng):
    x = np.array([int(v) for v in rng.integers(0, 1 << 63, N)], dtype=object)
    x = (x * x) % basis.product
    r = basis.decompose(x)
    res = basis.rescale_last(r)
    sub = basis.drop_last()
    got = sub.compose(res)
    # centered rounding of x/p, for x interpreted centered mod Qp
    half = basis.product // 2
    want = []
    for v in x:
        vv = int(v) if v <= half else int(v) - basis.product
        want.append(divround(vv, CHAM_P) % sub.product)
    assert list(got) == want


def test_rescale_shape_check(basis):
    with pytest.raises(ValueError):
        basis.rescale_last(np.zeros((2, N), dtype=np.uint64))
    with pytest.raises(ValueError):
        basis.extend_to(np.zeros((2, N), dtype=np.uint64), [17])


def test_rns_poly_roundtrip(basis, rng):
    coeffs = np.array(
        [int(v) for v in rng.integers(-(1 << 50), 1 << 50, N)], dtype=object
    )
    p = RnsPoly.from_int_coeffs(basis, coeffs)
    assert np.array_equal(p.to_int_coeffs(), np.mod(coeffs, basis.product))
    assert np.array_equal(p.to_centered_coeffs(), coeffs)


def test_rns_poly_zero_and_shape(basis):
    z = RnsPoly.zero(basis)
    assert (z.limbs == 0).all()
    with pytest.raises(ValueError):
        RnsPoly(basis, np.zeros((2, N), dtype=np.uint64))


@given(st.integers(min_value=0, max_value=CHAM_Q0 * CHAM_Q1 - 1))
@settings(max_examples=100, deadline=None)
def test_fast_extension_property(x):
    # the float-corrected CRT is documented as exact away from the
    # centering boundary; skip the (measure-zero) adversarial midpoint
    from hypothesis import assume

    q = CHAM_Q0 * CHAM_Q1
    centered = x if x <= q // 2 else x - q
    assume(abs(centered) < 0.499 * q)
    basis = RnsBasis((CHAM_Q0, CHAM_Q1), 4)
    arr = np.array([x, 0, 0, 0], dtype=object)
    r = basis.decompose(arr)
    fast = basis.extend_to(r, [CHAM_P])
    exact = basis.extend_to_exact(r, [CHAM_P])
    assert int(fast[0][0]) == int(exact[0][0])


@given(st.integers(min_value=0, max_value=CHAM_Q0 * CHAM_Q1 * CHAM_P - 1))
@settings(max_examples=100, deadline=None)
def test_rescale_property(x):
    basis = RnsBasis((CHAM_Q0, CHAM_Q1, CHAM_P), 4)
    arr = np.array([x, 0, 0, 0], dtype=object)
    res = basis.rescale_last(basis.decompose(arr))
    sub = basis.drop_last()
    half = basis.product // 2
    vv = x if x <= half else x - basis.product
    assert int(sub.compose(res)[0]) == divround(vv, CHAM_P) % sub.product
