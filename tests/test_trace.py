"""Tests for pipeline trace capture and rendering."""

import json

import pytest

from repro.hw.arch import EngineConfig
from repro.hw.pipeline import MacroPipeline
from repro.hw.trace import (
    PipelineTrace,
    capture_trace,
    chrome_trace_events,
    render_gantt,
)


@pytest.fixture(scope="module")
def trace64():
    return capture_trace(EngineConfig(), rows=64)


def test_event_counts(trace64):
    assert len(trace64.dot_events) == 64
    assert len(trace64.pack_events) == 63


def test_events_are_ordered(trace64):
    cycles = [e.cycle for e in trace64.events]
    assert cycles == sorted(cycles)


def test_trace_levels_cover_tree(trace64):
    assert trace64.max_pack_level() == 6  # log2(64)
    per_level = {}
    for e in trace64.pack_events:
        per_level[e.detail] = per_level.get(e.detail, 0) + 1
    assert per_level == {1: 32, 2: 16, 3: 8, 4: 4, 5: 2, 6: 1}


def test_overlap_exists(trace64):
    """Pack reductions start while dot products still stream — the
    macro-pipeline overlap of Fig. 1b."""
    overlap = trace64.first_overlap_cycle()
    assert overlap is not None
    assert overlap < trace64.dot_events[-1].cycle


def test_trace_agrees_with_stats(trace64):
    assert trace64.stats.reductions == len(trace64.pack_events)
    assert trace64.events[-1].cycle <= trace64.stats.total_cycles


def test_render_gantt(trace64):
    art = render_gantt(trace64, width=60)
    lines = art.splitlines()
    assert lines[0].startswith("cycles 0 ..")
    assert any(line.startswith("dot ") for line in lines)
    assert any(line.startswith("pack L1") for line in lines)
    assert any(line.startswith("pack L6") for line in lines)
    # the dot lane is busy from early on
    dot_line = next(line for line in lines if line.startswith("dot"))
    assert "#" in dot_line


def test_trace_with_column_tiles():
    trace = capture_trace(EngineConfig(), rows=8, col_tiles=2)
    # only fully-aggregated rows reach the pack side
    assert len(trace.dot_events) == 8
    assert trace.stats.dot_products == 16


def test_trace_carries_engine():
    """The trace remembers the engine it ran on, so lane durations come
    from that engine rather than the default one."""
    engine = EngineConfig(stage1_ntt_units=1)
    trace = capture_trace(engine, rows=8)
    assert trace.engine is engine
    custom = MacroPipeline(engine).dot_interval
    assert custom != MacroPipeline(EngineConfig()).dot_interval
    dots = [
        e for e in chrome_trace_events(trace)
        if e.get("ph") == "X" and e["name"].startswith("DOTPRODUCT")
    ]
    assert all(e["dur"] == custom for e in dots)


def test_render_gantt_engine_fallback(trace64):
    """A trace without an engine (old pickles) falls back to defaults."""
    legacy = PipelineTrace(stats=trace64.stats, events=trace64.events)
    assert legacy.engine is None
    assert render_gantt(legacy) == render_gantt(trace64)


def test_empty_trace():
    trace = PipelineTrace(stats=MacroPipeline(EngineConfig()).simulate_hmvp(1),
                          events=[])
    assert trace.max_pack_level() == 0
    assert trace.first_overlap_cycle() is None
    art = render_gantt(trace)
    assert art.splitlines()[0].startswith("cycles 0 ..")
    assert "#" not in art
    assert chrome_trace_events(trace) != []  # still has the dot lane label


def test_single_event_trace():
    trace = capture_trace(EngineConfig(), rows=1)
    assert len(trace.dot_events) == 1
    assert trace.pack_events == []
    art = render_gantt(trace)
    dot_line = next(l for l in art.splitlines() if l.startswith("dot"))
    assert "#" in dot_line


def test_render_gantt_width_one(trace64):
    """width=1 must not index out of bounds or divide by zero."""
    art = render_gantt(trace64, width=1)
    for line in art.splitlines()[1:]:
        assert line.endswith("|")
        assert len(line.split("|")[1]) == 1


def test_chrome_trace_events_roundtrip(tmp_path, trace64):
    events = chrome_trace_events(trace64)
    path = tmp_path / "pipe.json"
    path.write_text(json.dumps({"traceEvents": events}))
    loaded = json.loads(path.read_text())["traceEvents"]
    xs = [e for e in loaded if e["ph"] == "X"]
    ms = [e for e in loaded if e["ph"] == "M"]
    # one metadata label per lane: dot + each pack level
    assert len(ms) == 1 + trace64.max_pack_level()
    assert len(xs) == len(trace64.events)
    # ts monotonically non-decreasing within each track
    per_track = {}
    for e in xs:
        per_track.setdefault(e["tid"], []).append(e["ts"])
    for ts_list in per_track.values():
        assert ts_list == sorted(ts_list)
    # dot lane is tid 0; pack levels land on their own tids
    assert {e["tid"] for e in xs} == set(range(trace64.max_pack_level() + 1))
