"""Smoke tests: every shipped example must run to completion.

Each example prints 'OK' as its last act; failures (assertion errors,
API drift) surface here before a user hits them.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "OK" in result.stdout
