"""E8 — Fig. 7a/7b: HeteroLR step times across dataset sizes.

Reproduces the per-step comparison (encryption, add_vec, matvec,
decryption) between FATE's original Paillier backend, the B/FV
replacement on CPU, and B/FV on CHAM — plus the end-to-end "2 to 36
times" acceleration claim.

One full-batch iteration of the Hardy et al. protocol over a dataset of
``samples x features``: party A encrypts the residual vector (length
``samples``), party B folds in its half (add_vec), both parties compute
gradient blocks ``X^T e`` (jointly a ``features x samples`` HMVP), and
the arbiter decrypts ``features`` gradient entries.  The end-to-end
figure adds FATE's orchestration overhead (serialization, scheduling,
network), calibrated so the small-dataset speedup bottoms out near the
paper's 2x.

The functional correctness of the protocol itself (all three backends
agreeing with the cleartext oracle) is covered in tests/test_heterolr.py;
here we also *run* the real BFV trainer as a timing kernel.
"""

from dataclasses import dataclass

import pytest
from conftest import print_table

from repro.apps.datasets import make_vertical_dataset
from repro.apps.heterolr import BfvBackend, HeteroLrTrainer, LrConfig
from repro.hw.perf import ChamPerfModel, CpuCostModel, PaillierCostModel

#: FATE orchestration overhead per iteration batch (calibrated; see
#: EXPERIMENTS.md E8 — this is what caps the small-dataset speedup at ~2x)
FRAMEWORK_OVERHEAD_S = 12.0

DATASETS = [(2048, 256), (4096, 1024), (8192, 4096), (8192, 8192)]

RING_N = 4096


@dataclass
class StepTimes:
    encrypt: float
    add_vec: float
    matvec: float
    decrypt: float

    @property
    def total(self) -> float:
        return self.encrypt + self.add_vec + self.matvec + self.decrypt


def paillier_steps(samples: int, features: int) -> StepTimes:
    p = PaillierCostModel()
    return StepTimes(
        encrypt=p.encrypt_vec_s(samples),
        add_vec=p.add_vec_s(samples),
        matvec=p.matvec_s(features, samples),
        decrypt=p.decrypt_vec_s(features),
    )


def bfv_cpu_steps(samples: int, features: int) -> StepTimes:
    c = CpuCostModel()
    tiles = -(-samples // RING_N)
    packs = -(-features // RING_N)
    return StepTimes(
        encrypt=tiles * c.encrypt_ms * 1e-3,
        add_vec=tiles * c.add_ct_us * 1e-6,
        matvec=c.hmvp_s(features, samples),
        decrypt=packs * c.decrypt_ms * 1e-3,
    )


def bfv_cham_steps(samples: int, features: int) -> StepTimes:
    c = CpuCostModel()
    cham = ChamPerfModel()
    tiles = -(-samples // RING_N)
    packs = -(-features // RING_N)
    return StepTimes(
        encrypt=tiles * c.encrypt_ms * 1e-3,
        add_vec=tiles * c.add_ct_us * 1e-6,
        matvec=cham.hmvp_s(features, samples),
        decrypt=packs * c.decrypt_ms * 1e-3,
    )


def test_figure_7ab_step_times():
    rows = []
    for samples, features in DATASETS:
        pail = paillier_steps(samples, features)
        cpu = bfv_cpu_steps(samples, features)
        cham = bfv_cham_steps(samples, features)
        rows.append(
            (
                f"{samples}x{features}",
                f"{pail.encrypt:.2f}/{cpu.encrypt:.4f}",
                f"{pail.add_vec:.3f}/{cpu.add_vec:.6f}",
                f"{pail.matvec:.1f}/{cpu.matvec:.1f}/{cham.matvec:.3f}",
                f"{pail.decrypt:.2f}/{cpu.decrypt:.4f}",
            )
        )
        # B/FV reduces overhead of ALL steps (the paper's conclusion)
        assert cpu.encrypt < pail.encrypt
        assert cpu.add_vec < pail.add_vec
        assert cpu.matvec < pail.matvec
        assert cpu.decrypt < pail.decrypt
        # and CHAM accelerates the matvec further
        assert cham.matvec < cpu.matvec
    print_table(
        "Fig. 7a/b: HeteroLR step times (s) — Paillier / BFV-CPU (/ CHAM)",
        ["dataset", "encrypt", "add_vec", "matvec", "decrypt"],
        rows,
    )


def test_matvec_speedup_30_to_1800():
    """'the HMVP, accelerated by CHAM, is faster than its CPU baseline by
    30x to 1800x' across the Fig. 7 datasets."""
    ratios = []
    for samples, features in DATASETS:
        pail = paillier_steps(samples, features)
        cpu = bfv_cpu_steps(samples, features)
        cham = bfv_cham_steps(samples, features)
        ratios.append(cpu.matvec / cham.matvec)  # BFV-CPU baseline
        ratios.append(pail.matvec / cham.matvec)  # Paillier baseline
    lo, hi = min(ratios), max(ratios)
    print(f"\nmatvec speedups span {lo:.0f}x .. {hi:,.0f}x (paper: 30x .. 1800x)")
    assert 15 <= lo <= 160
    assert 1300 <= hi <= 2400


def test_end_to_end_2_to_36x():
    """'the end-to-end HeteroLR is accelerated by 2 to 36 times', with
    the large-matrix datasets at the top because matvec dominates."""
    rows = []
    ratios = []
    for samples, features in DATASETS:
        pail = paillier_steps(samples, features).total + FRAMEWORK_OVERHEAD_S
        cham = bfv_cham_steps(samples, features).total + FRAMEWORK_OVERHEAD_S
        ratio = pail / cham
        ratios.append(ratio)
        rows.append((f"{samples}x{features}", f"{pail:.1f}", f"{cham:.1f}", f"{ratio:.1f}x"))
    print_table(
        "End-to-end HeteroLR iteration (s)",
        ["dataset", "Paillier (FATE)", "BFV+CHAM", "speedup"],
        rows,
    )
    assert 1.3 <= ratios[0] <= 4  # small dataset: framework-bound, ~2x
    assert 25 <= ratios[-1] <= 45  # 8192x8192: matvec-bound, ~36x
    assert ratios == sorted(ratios)  # monotone in dataset size


def test_speedup_increases_with_matrix_dominance():
    """The paper: large matrices see the highest gains because HMVP
    dominates end-to-end time."""
    small = paillier_steps(2048, 256)
    large = paillier_steps(8192, 8192)
    assert large.matvec / large.total > small.matvec / small.total


# -- timing kernels ---------------------------------------------------------------


@pytest.mark.benchmark(group="heterolr")
def test_perf_real_bfv_training_iteration(benchmark):
    """One real encrypted mini-batch pass of the BFV trainer (toy ring)."""
    from repro.he.bfv import BfvScheme
    from repro.he.params import toy_params

    data = make_vertical_dataset(64, 8, seed=11)
    scheme = BfvScheme(toy_params(n=64, plain_bits=40), seed=12, max_pack=64)
    cfg = LrConfig(epochs=1, batch_size=64, learning_rate=0.2)

    def run():
        HeteroLrTrainer(BfvBackend(scheme), cfg).train(data)

    benchmark(run)
