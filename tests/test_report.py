"""Tests for the reproduction-report generator."""

import pytest

from repro.report import generate_report


@pytest.fixture(scope="module")
def report_text():
    return generate_report()


def test_report_has_all_sections(report_text):
    for heading in (
        "# CHAM reproduction report",
        "## Parameters",
        "## Table II",
        "## NTT and key-switch",
        "## Fig. 2a",
        "## Fig. 2b",
        "## Fig. 6 / Fig. 8",
        "## Fig. 7",
        "## §III-A — noise claim",
    ):
        assert heading in report_text, heading


def test_report_headline_numbers(report_text):
    assert "6144 cycles" in report_text
    assert "195,312" in report_text
    assert "72.13%" in report_text  # BRAM row, Table II
    assert "paper: 2x .. 36x" in report_text


def test_report_numbers_match_models(report_text):
    """Spot-check: the numbers in the text equal what the models return."""
    from repro.hw.perf import ChamPerfModel

    thr = ChamPerfModel().ntt_offload_throughput()
    assert f"{thr:,.0f}" in report_text


def test_report_writes_file(tmp_path):
    target = tmp_path / "out.md"
    text = generate_report(str(target))
    assert target.read_text() == text


def test_report_is_markdown_table_clean(report_text):
    """Every table row has a consistent column count within its table."""
    lines = report_text.splitlines()
    current_cols = None
    for line in lines:
        if line.startswith("|"):
            cols = line.count("|")
            if current_cols is None:
                current_cols = cols
            else:
                assert cols == current_cols, line
        else:
            current_cols = None
