"""Tests for batched (multi-vector) HMVP."""

import numpy as np
import pytest

from repro import obs
from repro.core.batch import (
    BatchedHmvp,
    BatchQueue,
    EncodedMatrixCache,
    matrix_fingerprint,
)
from repro.core.hmvp import hmvp


@pytest.fixture(scope="module")
def matrix(rng_module):
    return rng_module.integers(-40, 40, (6, 128))


@pytest.fixture(scope="module")
def rng_module():
    return np.random.default_rng(0xBA7C)


def test_batched_matches_single(scheme128, matrix, rng_module):
    batched = BatchedHmvp(scheme128, matrix)
    v = rng_module.integers(-40, 40, 128)
    ct = scheme128.encrypt_vector(v)
    got = batched.multiply_one(ct).decrypt(scheme128)
    want = matrix.astype(object) @ v.astype(object)
    assert np.array_equal(got, want)
    # and agrees with the uncached path
    ref = hmvp(scheme128, matrix, scheme128.encrypt_vector(v)).decrypt(scheme128)
    assert np.array_equal(got, ref)


def test_batch_of_vectors(scheme128, matrix, rng_module):
    batched = BatchedHmvp(scheme128, matrix)
    vs = [rng_module.integers(-40, 40, 128) for _ in range(3)]
    cts = [scheme128.encrypt_vector(v) for v in vs]
    results = batched.multiply_batch(cts)
    for res, v in zip(results, vs):
        assert np.array_equal(
            res.decrypt(scheme128), matrix.astype(object) @ v.astype(object)
        )


def test_cached_ntt_savings(scheme128, matrix, rng_module):
    """The batched path skips the per-vector row transforms."""
    batched = BatchedHmvp(scheme128, matrix)
    v = rng_module.integers(-10, 10, 128)
    ct = scheme128.encrypt_vector(v)
    cached_ops = batched.multiply_one(ct).ops
    uncached_ops = hmvp(scheme128, matrix, scheme128.encrypt_vector(v)).ops
    assert cached_ops.ntts < uncached_ops.ntts
    # exactly the m*limbs_aug row transforms are saved per vector
    m = matrix.shape[0]
    assert uncached_ops.ntts - cached_ops.ntts == m * 3


def test_amortized_op_count(scheme128, matrix):
    batched = BatchedHmvp(scheme128, matrix)
    one = batched.amortized_op_count(1)
    ten = batched.amortized_op_count(10)
    # encode cost appears once; per-vector cost scales linearly
    per_vec = (ten.ntts - one.ntts) / 9
    assert per_vec < one.ntts  # encode ntts amortized away
    assert ten.dot_products == 10 * matrix.shape[0]


def test_rejects_bad_inputs(scheme128, rng_module):
    with pytest.raises(ValueError):
        BatchedHmvp(scheme128, np.zeros(128))
    with pytest.raises(ValueError):
        BatchedHmvp(scheme128, np.zeros((129, 10)))
    batched = BatchedHmvp(scheme128, rng_module.integers(-5, 5, (2, 128)))
    ct = scheme128.encrypt_vector([1], augmented=False)
    with pytest.raises(ValueError, match="augmented"):
        batched.multiply_one(ct)


def test_shape_property(scheme128, matrix):
    assert BatchedHmvp(scheme128, matrix).shape == (6, 128)


# -- encoded-matrix cache -------------------------------------------------------


def test_cache_hit_on_identical_matrix(scheme128, matrix):
    cache = EncodedMatrixCache()
    a = BatchedHmvp(scheme128, matrix, cache=cache)
    b = BatchedHmvp(scheme128, np.array(matrix), cache=cache)
    assert cache.misses == 1 and cache.hits == 1
    # the hit serves the very same NTT-domain tiles, no re-encode
    assert a.encoded is b.encoded


def test_cache_miss_on_mutated_matrix(scheme128, matrix, rng_module):
    """Content fingerprinting: a mutated matrix must never be served
    stale NTT-domain rows from the cache."""
    cache = EncodedMatrixCache()
    BatchedHmvp(scheme128, matrix, cache=cache)
    mutated = np.array(matrix)
    mutated[0, 0] += 1
    engine = BatchedHmvp(scheme128, mutated, cache=cache)
    assert cache.misses == 2 and cache.hits == 0
    # and the fresh encoding computes the *mutated* product exactly
    v = rng_module.integers(-40, 40, 128)
    got = engine.multiply_one(scheme128.encrypt_vector(v)).decrypt(scheme128)
    assert np.array_equal(got, mutated.astype(object) @ v.astype(object))


def test_cache_counters_reported(scheme128, matrix):
    reg = obs.enable_metrics()
    try:
        cache = EncodedMatrixCache()
        BatchedHmvp(scheme128, matrix, cache=cache)
        BatchedHmvp(scheme128, matrix, cache=cache)
        snap = reg.snapshot()
        assert snap["counters"]["batch.cache.miss"] == 1
        assert snap["counters"]["batch.cache.hit"] == 1
    finally:
        obs.disable_metrics()
        obs.REGISTRY.reset()


def test_cache_lru_eviction(scheme128, rng_module):
    cache = EncodedMatrixCache(capacity=1)
    m1 = rng_module.integers(-5, 5, (2, 128))
    m2 = rng_module.integers(-5, 5, (2, 128))
    BatchedHmvp(scheme128, m1, cache=cache)
    BatchedHmvp(scheme128, m2, cache=cache)  # evicts m1
    BatchedHmvp(scheme128, m1, cache=cache)  # re-encode
    assert cache.misses == 3 and cache.hits == 0
    assert len(cache) == 1
    with pytest.raises(ValueError):
        EncodedMatrixCache(capacity=0)


def test_fingerprint_depends_on_params_and_content(scheme128, matrix):
    base = matrix_fingerprint(matrix, scheme128.params)
    assert base == matrix_fingerprint(np.array(matrix), scheme128.params)
    mutated = np.array(matrix)
    mutated[0, 0] += 1
    assert matrix_fingerprint(mutated, scheme128.params) != base
    assert matrix_fingerprint(matrix, scheme128.params, tile_rows=4) != base


def test_encoded_tiles_are_frozen(scheme128, matrix):
    engine = BatchedHmvp(scheme128, matrix, cache=EncodedMatrixCache())
    tile = engine.encoded.tiles[(0, 0)]
    with pytest.raises(ValueError):
        tile[0, 0, 0] = 1


# -- worker pool and request queue ---------------------------------------------


def test_multiply_batch_with_workers(scheme128, matrix, rng_module):
    """The thread-pool fan-out returns the same ciphertext results in
    request order."""
    batched = BatchedHmvp(scheme128, matrix)
    vs = [rng_module.integers(-40, 40, 128) for _ in range(4)]
    cts = [scheme128.encrypt_vector(v) for v in vs]
    serial = batched.multiply_batch(cts, workers=1)
    pooled = batched.multiply_batch(cts, workers=4)
    for s, p, v in zip(serial, pooled, vs):
        assert np.array_equal(s.packs[0].ct.c0, p.packs[0].ct.c0)
        assert np.array_equal(s.packs[0].ct.c1, p.packs[0].ct.c1)
        assert np.array_equal(
            p.decrypt(scheme128), matrix.astype(object) @ v.astype(object)
        )


def test_batch_queue_submit_drain(scheme128, matrix, rng_module):
    reg = obs.enable_metrics()
    try:
        queue = BatchQueue(BatchedHmvp(scheme128, matrix), workers=2)
        vs = [rng_module.integers(-40, 40, 128) for _ in range(3)]
        ids = [queue.submit(scheme128.encrypt_vector(v)) for v in vs]
        assert ids == [0, 1, 2]
        assert queue.depth == 3
        assert reg.snapshot()["gauges"]["batch.queue.depth"] == 3
        report = queue.drain()
        assert queue.depth == 0
        assert reg.snapshot()["gauges"]["batch.queue.depth"] == 0
        assert report.request_ids == ids
        for res, v in zip(report.results, vs):
            assert np.array_equal(
                res.decrypt(scheme128),
                matrix.astype(object) @ v.astype(object),
            )
        # the drain was priced as one batch on the simulated engines
        assert report.schedule.makespan > 0
        assert set(report.schedule.batch_completions) == {0}
        assert (
            report.schedule.batch_completions[0] == report.schedule.makespan
        )
    finally:
        obs.disable_metrics()
        obs.REGISTRY.reset()


def test_batch_queue_empty_drain(scheme128, matrix):
    queue = BatchQueue(BatchedHmvp(scheme128, matrix))
    report = queue.drain()
    assert report.request_ids == [] and report.results == []
    assert report.schedule.makespan == 0


def test_batch_queue_rejects_non_augmented(scheme128, matrix):
    queue = BatchQueue(BatchedHmvp(scheme128, matrix))
    with pytest.raises(ValueError, match="augmented"):
        queue.submit(scheme128.encrypt_vector([1], augmented=False))


def test_scheduler_batch_completions_tag():
    from repro.hw.runtime import Job, JobScheduler

    sched = JobScheduler()
    jobs = [
        Job(job_id=0, rows=16, batch_id=7),
        Job(job_id=1, rows=32, batch_id=7),
        Job(job_id=2, rows=8),  # untagged: never in batch_completions
    ]
    report = sched.schedule(jobs)
    assert set(report.batch_completions) == {7}
    assert report.batch_completions[7] == max(
        report.completions[0], report.completions[1]
    )


# -- encrypted matrix-matrix products ------------------------------------------


def test_encrypted_matmul_exact(scheme128, rng_module):
    from repro.core.matmul import EncryptedMatmul

    a = rng_module.integers(-20, 20, (5, 128))
    b = rng_module.integers(-20, 20, (128, 3))
    mm = EncryptedMatmul(scheme128, a)
    got = mm(b)
    want = a.astype(object) @ b.astype(object)
    assert np.array_equal(got, want)
    assert got.shape == (5, 3)


def test_encrypted_matmul_dimension_check(scheme128, rng_module):
    from repro.core.matmul import EncryptedMatmul

    mm = EncryptedMatmul(scheme128, rng_module.integers(-5, 5, (4, 128)))
    with pytest.raises(ValueError, match="inner dimensions"):
        mm.encrypt_matrix(rng_module.integers(-5, 5, (64, 2)))
    with pytest.raises(ValueError, match="2-D"):
        mm.encrypt_matrix(rng_module.integers(-5, 5, 128))


def test_encrypted_matmul_columns_decrypt_independently(scheme128, rng_module):
    from repro.core.matmul import EncryptedMatmul

    a = rng_module.integers(-10, 10, (6, 128))
    b = rng_module.integers(-10, 10, (128, 2))
    mm = EncryptedMatmul(scheme128, a)
    results = mm.multiply(mm.encrypt_matrix(b))
    col0 = results[0].decrypt(scheme128)
    assert np.array_equal(col0, a.astype(object) @ b[:, 0].astype(object))


def test_encrypted_matmul_op_count_scales(scheme128, rng_module):
    from repro.core.matmul import EncryptedMatmul

    mm = EncryptedMatmul(scheme128, rng_module.integers(-5, 5, (4, 128)))
    one = mm.op_count(1)
    four = mm.op_count(4)
    assert four.dot_products == 4 * one.dot_products
