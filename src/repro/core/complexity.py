"""Closed-form complexity models for the three HMVP encodings (§II-E).

The paper's claim: coefficient encoding needs ``O(m)`` HE operations
against ``O(m log2 N)`` for batch encoding, and although the diagonal
method is also ``O(m)``, each of its steps carries a rotation
(automorphism + key-switch) while coefficient encoding pays only one
key-switch per packed output — "much smaller overhead".

These functions return both the headline *HE-op* counts (the unit of the
paper's asymptotic argument: one plaintext multiply or one rotation) and
the full :class:`~repro.core.hmvp.HmvpOpCount` breakdown used by the
performance models.
"""

from __future__ import annotations

from dataclasses import dataclass

from .baselines import diagonal_op_count, rotate_and_sum_op_count
from .hmvp import HmvpOpCount

__all__ = ["EncodingCost", "coefficient_cost", "batch_cost", "diagonal_cost"]


@dataclass(frozen=True)
class EncodingCost:
    """Headline costs of one HMVP under a given encoding."""

    name: str
    he_multiplies: int
    rotations: int
    keyswitches: int
    ops: HmvpOpCount

    @property
    def he_ops(self) -> int:
        """The unit of the paper's O(·) comparison."""
        return self.he_multiplies + self.rotations


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def coefficient_cost(m: int, n: int, ring_n: int, limbs: int = 2) -> EncodingCost:
    """Alg. 1 cost: ``m`` multiplies, zero rotations, ``m - 1``-ish
    key-switches *inside the pack tree* (amortised one per output row)."""
    limbs_aug = limbs + 1
    col_tiles = _ceil_div(n, ring_n)
    row_tiles = _ceil_div(m, ring_n)
    mults = m * col_tiles
    ops = HmvpOpCount()
    for _ in range(row_tiles):
        rows_here = min(m, ring_n)
        ops = ops + HmvpOpCount.for_dot_products(rows_here * col_tiles, n, limbs_aug)
        ops = ops + HmvpOpCount.for_pack(rows_here, limbs, limbs_aug)
    return EncodingCost(
        name="coefficient",
        he_multiplies=mults,
        rotations=0,
        keyswitches=ops.keyswitches,
        ops=ops,
    )


def batch_cost(m: int, n: int, ring_n: int, limbs: int = 2) -> EncodingCost:
    """Batch rotate-and-sum cost: ``O(m log2 N)`` rotations."""
    limbs_aug = limbs + 1
    ops = rotate_and_sum_op_count(m, min(n, ring_n), limbs, limbs_aug)
    col_tiles = _ceil_div(n, ring_n)
    if col_tiles > 1:
        base = ops
        for _ in range(col_tiles - 1):
            ops = ops + base
    return EncodingCost(
        name="batch",
        he_multiplies=m * col_tiles,
        rotations=ops.automorphisms,
        keyswitches=ops.keyswitches,
        ops=ops,
    )


def diagonal_cost(m: int, n: int, ring_n: int, limbs: int = 2) -> EncodingCost:
    """GAZELLE diagonal cost: ``O(m)`` rotations (one per diagonal)."""
    limbs_aug = limbs + 1
    n_eff = min(n, ring_n)
    ops = diagonal_op_count(min(m, n_eff), n_eff, limbs, limbs_aug)
    col_tiles = _ceil_div(n, ring_n)
    row_tiles = _ceil_div(m, n_eff)
    total = HmvpOpCount()
    for _ in range(col_tiles * row_tiles):
        total = total + ops
    return EncodingCost(
        name="diagonal",
        he_multiplies=total.dot_products,
        rotations=total.automorphisms,
        keyswitches=total.keyswitches,
        ops=total,
    )
