"""Tests for the parameter-set generator."""

import pytest

from repro.he.paramgen import ParamRequest, generate_params, low_hamming_prime_menu
from repro.math.modular import hamming_weight
from repro.math.primes import CHAM_P, CHAM_Q0, CHAM_Q1, is_ntt_friendly


def test_default_request_recovers_paper_set():
    params = generate_params()
    assert params.n == 4096
    assert set(params.ct_moduli) == {CHAM_Q0, CHAM_Q1}
    assert params.special_modulus == CHAM_P


def test_generated_moduli_are_low_hamming_and_friendly():
    params = generate_params(ParamRequest(n=4096, ct_modulus_bits=(35, 35)))
    for q in params.ct_moduli + (params.special_modulus,):
        assert is_ntt_friendly(q, 4096)
        assert hamming_weight(q) == 3


def test_distinct_moduli_within_width_class():
    params = generate_params(ParamRequest(n=4096, ct_modulus_bits=(35, 35)))
    assert len(set(params.ct_moduli)) == 2


def test_larger_ring_three_limbs():
    """A deeper-circuit operating point: N=8192, three 40-bit limbs."""
    req = ParamRequest(
        n=8192, ct_modulus_bits=(40, 40, 40), special_bits=45, plain_bits=30
    )
    params = generate_params(req)
    assert params.n == 8192
    assert len(params.ct_moduli) == 3
    assert params.special_modulus > max(params.ct_moduli)
    assert params.security_bits >= 128


def test_security_rejection():
    """A 4096 ring cannot carry a 200-bit modulus at 128-bit security."""
    req = ParamRequest(n=4096, ct_modulus_bits=(40, 40, 40, 40), special_bits=41)
    with pytest.raises(ValueError, match="security"):
        generate_params(req)


def test_unknown_ring_size():
    with pytest.raises(ValueError, match="security data"):
        generate_params(ParamRequest(n=5000))


def test_toy_rings_skip_security_gate():
    params = generate_params(
        ParamRequest(n=256, ct_modulus_bits=(35, 35), special_bits=39, plain_bits=20)
    )
    assert params.n == 256


def test_prime_menu():
    menu = low_hamming_prime_menu(4096, range(34, 40))
    assert CHAM_Q0 in menu[35]
    assert CHAM_Q1 in menu[35]
    assert CHAM_P in menu[39]
    for bits, primes in menu.items():
        for q in primes:
            assert q.bit_length() == bits
            assert hamming_weight(q) == 3


def test_generated_set_is_usable():
    """A generated non-paper set must drive the actual pipeline."""
    import numpy as np

    from repro.core.hmvp import hmvp
    from repro.he.bfv import BfvScheme

    params = generate_params(
        ParamRequest(n=128, ct_modulus_bits=(35, 35), special_bits=39, plain_bits=30)
    )
    scheme = BfvScheme(params, seed=3, max_pack=4)
    rng = np.random.default_rng(0)
    a = rng.integers(-50, 50, (3, 128))
    v = rng.integers(-50, 50, 128)
    res = hmvp(scheme, a, scheme.encrypt_vector(v))
    assert np.array_equal(
        res.decrypt(scheme), a.astype(object) @ v.astype(object)
    )
