#!/usr/bin/env python3
"""Multi-layer secure neural-network inference (Delphi offline/online).

Builds a conv -> ReLU -> flatten -> dense -> ReLU -> dense integer
network, mints the offline correlations with the real HE pipeline (one
HMVP / convolution per linear layer), then classifies images online
using only masked cleartext shares — and prints the byte split between
the two phases.

Usage: python examples/secure_nn.py
"""

import numpy as np

from repro.apps.datasets import make_digit_images
from repro.apps.nn import (
    ConvLayer,
    FlattenLayer,
    LinearLayer,
    PrivateNetwork,
    ReluLayer,
    Sequential,
)
from repro.he.bfv import BfvScheme
from repro.he.params import toy_params


def main() -> None:
    print("Secure NN inference: Delphi offline/online over the HE pipeline")
    print("=" * 66)

    rng = np.random.default_rng(60)
    model = Sequential(
        layers=[
            ConvLayer(kernels=rng.integers(-3, 4, (2, 3, 3))),
            ReluLayer(),
            FlattenLayer(),
            LinearLayer(weights=rng.integers(-2, 3, (8, 200))),
            ReluLayer(),
            LinearLayer(weights=rng.integers(-2, 3, (2, 8))),
        ],
        input_shape=(12, 12),
    )
    print("model : conv(2x3x3) -> ReLU -> flatten -> fc(8) -> ReLU -> fc(2)")

    scheme = BfvScheme(toy_params(n=256, plain_bits=40), seed=61, max_pack=8)
    net = PrivateNetwork(scheme, model, seed=62)

    print("offline: minting correlations (one HE pass per linear layer)...")
    net.offline()
    offline_bytes = sum(
        m.size for m in net.channel.log if m.label.startswith("offline")
    )
    print(f"offline traffic: {offline_bytes:,} bytes (ciphertexts)")

    images, labels = make_digit_images(5, 12, seed=63)
    correct = 0
    online_start = len(net.channel.log)
    for i, img in enumerate(images):
        logits = net.online(img)
        want = model.predict_clear(img)
        exact = np.array_equal(logits, want)
        correct += exact
        print(f"image {i}: label={labels[i]} logits={[int(x) for x in logits]} "
              f"exact={bool(exact)}")
    assert correct == len(images)

    online_bytes = sum(m.size for m in net.channel.log[online_start:])
    print(f"\nonline traffic for {len(images)} inferences: "
          f"{online_bytes:,} bytes (masked cleartext shares only)")
    print(f"per-inference online cost: {online_bytes // len(images):,} bytes "
          f"— {offline_bytes // max(online_bytes // len(images), 1)}x lighter "
          "than the offline phase it consumed")
    print("OK")


if __name__ == "__main__":
    main()
