"""Matrix-resident batched HMVP: one plaintext matrix, many vectors.

CHAM's deployment story (Section V) is *many vectors against one
resident matrix* — HeteroLR streams thousands of mini-batches through
the same weight layout, Beaver triple generation streams vectors through
fixed tiles, and the paper's introduction cites batching as the standard
amortization ("up to 4096 encrypted images can be evaluated
simultaneously").  This module serves that shape:

* :class:`EncodedMatrix` — each row tile is Eq. 1-encoded and
  forward-NTT'd **once**, stored per RNS limb as a frozen
  ``(L_aug, rows, n)`` stack (the URAM-resident staging of
  Section III-C), keyed by a content fingerprint;
* :class:`EncodedMatrixCache` — a thread-safe LRU over fingerprints, so
  repeat engines for the same matrix skip encoding entirely
  (``batch.cache.hit`` / ``batch.cache.miss`` counters);
* :class:`BatchedHmvp` — hoists each vector ciphertext's forward NTT
  once per request, runs every row of a tile through one vectorized
  dot/rescale/extract pass, aggregates partial LWEs across column tiles,
  and emits a *single* batched pack per row tile; batches fan row-tile
  work across a ``concurrent.futures`` worker pool;
* :class:`BatchQueue` — ``submit``/``drain`` request queue that maps a
  drained batch onto :class:`repro.hw.runtime.JobScheduler` engines so
  the simulator prices the batched schedule.

Functionally everything is exact (bit-identical to the per-call
:func:`repro.core.hmvp.hmvp` path); the op-count deltas feed the
performance model and ``benchmarks/bench_batch.py``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..he.bfv import BfvScheme
from ..he.packing import PackedResult, pack_stacked_lwes, pack_stacked_lwes_many
from ..he.params import CheParams
from ..he.rlwe import RlweCiphertext
from ..hw.runtime import Job, JobScheduler, QueueReport
from ..math.modular import modadd_vec, modmul_vec, modneg_vec
from ..math.ntt import freeze_array
from ..math.rns import RnsBasis
from .hmvp import HmvpOpCount, HmvpResult

__all__ = [
    "matrix_fingerprint",
    "EncodedMatrix",
    "EncodedMatrixCache",
    "MATRIX_CACHE",
    "encode_matrix",
    "BatchedHmvp",
    "BatchDrainReport",
    "BatchQueue",
]


def matrix_fingerprint(
    matrix: np.ndarray, params: CheParams, tile_rows: int = 0
) -> str:
    """Content fingerprint of an encoded matrix.

    Hashes the matrix values together with everything the NTT-domain
    encoding depends on (shape, ring degree, plaintext modulus, RNS
    moduli, tiling) — a mutated matrix or a different parameter set
    can never alias a cached encoding.
    """
    h = hashlib.sha256()
    arr = np.asarray(matrix)
    meta = (
        arr.shape,
        params.n,
        params.plain_modulus,
        tuple(params.ct_moduli),
        params.special_modulus,
        tile_rows,
    )
    h.update(repr(meta).encode())
    if arr.dtype == object:
        h.update(repr(arr.tolist()).encode())
    else:
        h.update(np.ascontiguousarray(arr.astype(np.int64)).tobytes())
    return h.hexdigest()


def _encode_rows_eq1(block: np.ndarray, n: int, t: int) -> np.ndarray:
    """Vectorized Eq. 1 row encoding of a ``(rows, width)`` block.

    Row-for-row identical to ``CoefficientEncoder.encode_row``:
    ``pt^(A_i) = A_{i,0} - sum_{j>=1} A_{i,j} X^{N-j}``.
    """
    rows, width = block.shape
    reduced = np.mod(block.astype(object), t).astype(np.uint64)
    coeffs = np.zeros((rows, n), dtype=np.uint64)
    coeffs[:, 0] = reduced[:, 0]
    if width > 1:
        neg = (np.uint64(t) - reduced[:, 1:]) % np.uint64(t)
        coeffs[:, n - (width - 1) :] = neg[:, ::-1]
    return coeffs


def _centered_limbs(coeffs: np.ndarray, t: int, basis: RnsBasis) -> np.ndarray:
    """Centered lift + per-limb reduction of plaintext coefficients.

    Matches ``plaintext_limbs`` (Plaintext.centered then
    signed_to_limbs) for stacked ``(rows, n)`` input.
    """
    half = t // 2
    c = coeffs.astype(np.int64)
    signed = np.where(c > half, c - t, c)
    return np.stack([np.mod(signed, q).astype(np.uint64) for q in basis])


@dataclass
class EncodedMatrix:
    """A matrix encoded once, resident in the NTT domain per row tile.

    ``tiles[(rt, ct)]`` is the frozen ``(L_aug, rows_in_tile, n)`` stack
    of forward-transformed Eq. 1 row encodings for row tile ``rt``
    against column tile ``ct``.
    """

    fingerprint: str
    shape: Tuple[int, int]
    ring_n: int
    tile_rows: int
    tiles: Dict[Tuple[int, int], np.ndarray] = field(repr=False)
    encode_ops: HmvpOpCount = field(default_factory=HmvpOpCount)

    @property
    def row_tiles(self) -> int:
        return -(-self.shape[0] // self.tile_rows)

    @property
    def col_tiles(self) -> int:
        return -(-self.shape[1] // self.ring_n)

    def row_tile_rows(self, rt: int) -> int:
        start = rt * self.tile_rows
        return min(self.tile_rows, self.shape[0] - start)

    @classmethod
    def encode(
        cls,
        scheme: BfvScheme,
        matrix: np.ndarray,
        tile_rows: Optional[int] = None,
    ) -> "EncodedMatrix":
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        m, n_cols = matrix.shape
        ring = scheme.params.n
        tile_rows = min(tile_rows or ring, ring)
        ctx = scheme.ctx
        aug = ctx.aug_basis
        t = scheme.params.plain_modulus
        tiles: Dict[Tuple[int, int], np.ndarray] = {}
        with obs.span("batch.encode", rows=m, cols=n_cols):
            for rt, row_start in enumerate(range(0, m, tile_rows)):
                row_block = matrix[row_start : row_start + tile_rows]
                for ct, col_start in enumerate(range(0, n_cols, ring)):
                    block = row_block[:, col_start : col_start + ring]
                    coeffs = _encode_rows_eq1(block, ring, t)
                    limbs = _centered_limbs(coeffs, t, aug)
                    tiles[(rt, ct)] = freeze_array(ctx.ntt_limbs(limbs, aug))
        col_tiles = -(-n_cols // ring)
        return cls(
            fingerprint=matrix_fingerprint(matrix, scheme.params, tile_rows),
            shape=(m, n_cols),
            ring_n=ring,
            tile_rows=tile_rows,
            tiles=tiles,
            encode_ops=HmvpOpCount(ntts=m * len(aug) * col_tiles),
        )


class EncodedMatrixCache:
    """Thread-safe LRU of :class:`EncodedMatrix` entries by fingerprint.

    The fingerprint covers the matrix content, so mutating a matrix and
    re-submitting it *misses* (no stale NTT-domain rows are ever
    served); re-submitting unchanged content hits and skips the encode.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, EncodedMatrix]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key_for(
        scheme: BfvScheme,
        matrix: np.ndarray,
        tile_rows: Optional[int] = None,
    ) -> str:
        """The cache key :meth:`get_or_encode` would file ``matrix`` under.

        The elastic cluster layer uses this to *migrate* an already-encoded
        entry between node caches (install under the same key on the
        destination) without ever re-running the encode.
        """
        ring = scheme.params.n
        effective_tile = min(tile_rows or ring, ring)
        return matrix_fingerprint(matrix, scheme.params, effective_tile)

    def peek(self, key: str) -> Optional[EncodedMatrix]:
        """Look up an entry by key without encoding on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def install(self, key: str, entry: EncodedMatrix) -> bool:
        """Adopt an already-encoded entry (cache-to-cache migration).

        Returns ``True`` when the entry was newly installed, ``False``
        when the key was already resident (the move was unnecessary).
        Never encodes; never counts as a hit or a miss.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return False
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return True

    def get_or_encode(
        self,
        scheme: BfvScheme,
        matrix: np.ndarray,
        tile_rows: Optional[int] = None,
    ) -> EncodedMatrix:
        key = self.key_for(scheme, matrix, tile_rows)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is not None:
            obs.inc("batch.cache.hit")
            return entry
        obs.inc("batch.cache.miss")
        # encode outside the lock: concurrent misses on the same key do
        # redundant work but never block each other or corrupt the map
        encoded = EncodedMatrix.encode(scheme, matrix, tile_rows=tile_rows)
        with self._lock:
            self.misses += 1
            self._entries[key] = encoded
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return encoded

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide default cache (what :class:`BatchedHmvp` uses unless an
#: explicit cache is passed).
MATRIX_CACHE = EncodedMatrixCache()


def encode_matrix(
    scheme: BfvScheme,
    matrix: np.ndarray,
    *,
    cache: Optional[EncodedMatrixCache] = None,
    tile_rows: Optional[int] = None,
) -> EncodedMatrix:
    """Encode (or fetch from cache) the NTT-domain row tiles of a matrix."""
    target = cache if cache is not None else MATRIX_CACHE
    return target.get_or_encode(scheme, matrix, tile_rows=tile_rows)


class BatchedHmvp:
    """Apply one plaintext matrix to many encrypted vectors.

    Parameters
    ----------
    scheme:
        The HE scheme (keys included).
    matrix:
        ``(m, n_cols)`` with ``m <= N``; ``n_cols`` may exceed the ring
        degree, in which case requests supply one vector ciphertext per
        column tile (see :meth:`multiply_tiles`).
    cache:
        Encoded-matrix cache; defaults to the module :data:`MATRIX_CACHE`.
    tile_rows:
        Rows per row tile (defaults to all rows: one pack per request).
    workers:
        Default worker-pool width for :meth:`multiply_batch`.
    """

    def __init__(
        self,
        scheme: BfvScheme,
        matrix: Sequence[Sequence[int]],
        *,
        cache: Optional[EncodedMatrixCache] = None,
        tile_rows: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.scheme = scheme
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        m, _n_cols = matrix.shape
        if m > scheme.params.n:
            raise ValueError(
                "BatchedHmvp covers single-tile row counts "
                f"(m={m} > ring degree {scheme.params.n})"
            )
        self.matrix = matrix
        self.workers = workers
        self.encoded = encode_matrix(
            scheme, matrix, cache=cache, tile_rows=tile_rows
        )
        self.encode_ops = self.encoded.encode_ops

    @property
    def shape(self) -> "tuple[int, int]":
        return tuple(self.matrix.shape)

    # -- per-request kernels ---------------------------------------------------

    def _hoist(
        self, ct: RlweCiphertext
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Forward NTT of the vector ciphertext, computed once per request."""
        if not ct.is_augmented:
            raise ValueError("vector ciphertext must be augmented")
        with obs.span("batch.hoist", limbs=len(ct.basis)):
            return ct.ntt_components()

    def _tile_partial(
        self,
        tile_ntt: np.ndarray,
        hoisted: "tuple[np.ndarray, np.ndarray]",
    ) -> "tuple[np.ndarray, np.ndarray]":
        """All rows of one tile through dot/rescale/extract in one pass.

        Returns the stacked partial LWEs ``(b (L, rows), a (L, rows, n))``
        — exactly what :func:`pack_stacked_lwes` consumes.
        """
        ctx = self.scheme.ctx
        aug = ctx.aug_basis
        ct_basis = ctx.ct_basis
        c0n, c1n = hoisted
        rows = tile_ntt.shape[1]
        with obs.span("batch.dot", rows=rows):
            with obs.span("batch.modmul", rows=rows, limbs=len(aug)):
                # both components against every row in one broadcast
                # pass: (L_aug, 1, rows, n) x (L_aug, 2, 1, n)
                aug_col = aug.modulus_column.reshape(-1, 1, 1, 1)
                comp = np.stack([c0n, c1n], axis=1)  # (L_aug, 2, n)
                prods = modmul_vec(
                    tile_ntt[:, np.newaxis], comp[:, :, np.newaxis, :], aug_col
                )
            with obs.span("batch.intt", rows=rows, limbs=len(aug)):
                d = ctx.intt_limbs(prods, aug)
            with obs.span("batch.rescale_extract", rows=rows):
                r = aug.rescale_last(d)  # (L, 2, rows, n)
                r0, r1 = r[:, 0], r[:, 1]
                # vectorized EXTRACTLWES at index 0: b = c0[..0];
                # a[0] = c1[..0], a[j] = -c1[..n-j] for j >= 1
                b = np.ascontiguousarray(r0[:, :, 0])
                a = np.empty_like(r1)
                a[..., 0] = r1[..., 0]
                ct_col = ct_basis.modulus_column.reshape(-1, 1, 1)
                a[:, :, 1:] = modneg_vec(r1[:, :, :0:-1], ct_col)
        return b, a

    def _row_tile_partial(
        self,
        rt: int,
        hoisted_tiles: Sequence["tuple[np.ndarray, np.ndarray]"],
    ) -> "tuple[np.ndarray, np.ndarray]":
        """One row tile of one request: per-column-tile partials -> aggregate.

        Returns the column-aggregated stacked LWEs ``(b (L, rows),
        a (L, rows, n))`` for row tile ``rt`` — the merge payload the
        cluster layer (:mod:`repro.cluster`) ships between nodes.
        """
        ct_basis = self.scheme.ctx.ct_basis
        agg_b: Optional[np.ndarray] = None
        agg_a: Optional[np.ndarray] = None
        for ct_idx in range(self.encoded.col_tiles):
            b, a = self._tile_partial(
                self.encoded.tiles[(rt, ct_idx)], hoisted_tiles[ct_idx]
            )
            if agg_b is None:
                agg_b, agg_a = b, a
            else:
                # aggregate partial dot products as LWEs (cheap additions)
                col = ct_basis.modulus_column
                agg_b = modadd_vec(agg_b, b, col.reshape(-1, 1))
                agg_a = modadd_vec(agg_a, a, col.reshape(-1, 1, 1))
        return agg_b, agg_a

    def _row_tile_pack(
        self,
        rt: int,
        hoisted_tiles: Sequence["tuple[np.ndarray, np.ndarray]"],
    ) -> PackedResult:
        """One row tile of one request: partials -> aggregate -> pack."""
        ctx = self.scheme.ctx
        agg_b, agg_a = self._row_tile_partial(rt, hoisted_tiles)
        with obs.span("batch.pack", rows=agg_b.shape[1], row_tile=rt):
            return pack_stacked_lwes(
                ctx, ctx.ct_basis, agg_b, agg_a, self.scheme.galois_keys
            )

    def _fused_batch_pack(
        self, cts: Sequence[RlweCiphertext]
    ) -> List[List[PackedResult]]:
        """Every request of a single-column-tile batch in lock-step.

        Stacks all ``R`` requests along a batch axis and drives the
        whole pipeline — hoist NTT, dot, inverse NTT, rescale, extract,
        pack — as fused ``(L, ..., R, ..., n)`` kernels: each stage runs
        *once* per row tile instead of once per request, which is where
        the warm-path wall time goes at CHAM's ring sizes (interpreter
        dispatch, not arithmetic).  Bit-identical per request to the
        per-request path.  Returns ``results[request][row_tile]``.
        """
        ctx = self.scheme.ctx
        aug = ctx.aug_basis
        ct_basis = ctx.ct_basis
        reqs = len(cts)
        for ct in cts:
            if not ct.is_augmented:
                raise ValueError("vector ciphertext must be augmented")
        with obs.span("batch.hoist", limbs=len(aug), requests=reqs):
            c0n = ctx.ntt_limbs(np.stack([ct.c0 for ct in cts], axis=1), aug)
            c1n = ctx.ntt_limbs(np.stack([ct.c1 for ct in cts], axis=1), aug)
        comp = np.stack([c0n, c1n], axis=1)  # (L_aug, 2, R, n)
        out: List[List[PackedResult]] = [[] for _ in range(reqs)]
        for rt in range(self.encoded.row_tiles):
            tile_ntt = self.encoded.tiles[(rt, 0)]
            rows = tile_ntt.shape[1]
            with obs.span("batch.dot", rows=rows, requests=reqs):
                with obs.span("batch.modmul", rows=rows, limbs=len(aug)):
                    # (L_aug, 1, 1, rows, n) x (L_aug, 2, R, 1, n)
                    aug_col = aug.modulus_column.reshape(-1, 1, 1, 1, 1)
                    prods = modmul_vec(
                        tile_ntt[:, np.newaxis, np.newaxis],
                        comp[..., np.newaxis, :],
                        aug_col,
                    )
                with obs.span("batch.intt", rows=rows, limbs=len(aug)):
                    d = ctx.intt_limbs(prods, aug)
                with obs.span("batch.rescale_extract", rows=rows):
                    r = aug.rescale_last(d)  # (L, 2, R, rows, n)
                    r0, r1 = r[:, 0], r[:, 1]
                    b = np.ascontiguousarray(r0[..., 0])  # (L, R, rows)
                    a = np.empty_like(r1)  # (L, R, rows, n)
                    a[..., 0] = r1[..., 0]
                    ct_col = ct_basis.modulus_column.reshape(-1, 1, 1, 1)
                    a[..., 1:] = modneg_vec(r1[..., :0:-1], ct_col)
            with obs.span("batch.pack", rows=rows, row_tile=rt, requests=reqs):
                packs = pack_stacked_lwes_many(
                    ctx, ct_basis, b, a, self.scheme.galois_keys
                )
            for ri in range(reqs):
                out[ri].append(packs[ri])
        return out

    def request_op_count(self) -> HmvpOpCount:
        """Operation counts of one request against the resident matrix."""
        m, n_cols = self.matrix.shape
        limbs = len(self.scheme.ctx.ct_basis)
        limbs_aug = limbs + 1
        ring = self.encoded.ring_n
        ops = HmvpOpCount()
        for col_start in range(0, n_cols, ring):
            width = min(ring, n_cols - col_start)
            ops = ops + HmvpOpCount.for_cached_dot_products(m, width, limbs_aug)
        if self.encoded.col_tiles > 1:
            ops.lwe_additions += m * (self.encoded.col_tiles - 1)
        for rt in range(self.encoded.row_tiles):
            ops = ops + HmvpOpCount.for_pack(
                self.encoded.row_tile_rows(rt), limbs, limbs_aug
            )
        return ops

    # -- public entry points ---------------------------------------------------

    def hoist(
        self, ct: RlweCiphertext
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Public hoist: the per-request forward NTT of a vector ciphertext.

        The hoisted components depend only on the ciphertext (not on the
        resident matrix), so a caller fanning one request across several
        engines — the cluster scatter path — computes them once and
        passes them to every engine's :meth:`multiply_partial`.
        """
        return self._hoist(ct)

    def multiply_partial(
        self,
        ct_tiles: Optional[Sequence[RlweCiphertext]] = None,
        hoisted_tiles: Optional[
            Sequence["tuple[np.ndarray, np.ndarray]"]
        ] = None,
    ) -> "List[tuple[np.ndarray, np.ndarray]]":
        """Stages 1-4 only: stacked partial LWEs per row tile, unpacked.

        Runs the hoisted dot/rescale/extract kernels and the per-engine
        column-tile LWE aggregation but stops *before* PACKLWES,
        returning ``(b (L, rows), a (L, rows, n))`` per row tile.  Every
        per-row value is exactly what the packed path would consume, so
        a caller may merge partials across shards (modular addition for
        column shards, row-order concatenation for row shards) and pack
        centrally — the resulting RLWE ciphertext is bit-identical to
        the unsharded pipeline.  This is the scatter payload of
        :mod:`repro.cluster`.

        Pass either the vector ciphertext tiles or pre-hoisted
        components (from :meth:`hoist`); hoisted wins when both given.
        """
        if hoisted_tiles is None:
            if ct_tiles is None:
                raise ValueError("need ct_tiles or hoisted_tiles")
            if len(ct_tiles) != self.encoded.col_tiles:
                raise ValueError(
                    f"need {self.encoded.col_tiles} vector tiles for "
                    f"{self.matrix.shape[1]} columns, got {len(ct_tiles)}"
                )
            hoisted_tiles = [self._hoist(ct) for ct in ct_tiles]
        elif len(hoisted_tiles) != self.encoded.col_tiles:
            raise ValueError(
                f"need {self.encoded.col_tiles} hoisted tiles, "
                f"got {len(hoisted_tiles)}"
            )
        obs.inc(
            "core.hmvp.dot_products",
            self.matrix.shape[0] * self.encoded.col_tiles,
        )
        return [
            self._row_tile_partial(rt, hoisted_tiles)
            for rt in range(self.encoded.row_tiles)
        ]

    def multiply_tiles(
        self, ct_tiles: Sequence[RlweCiphertext]
    ) -> HmvpResult:
        """Full Alg. 1 for one request (one ciphertext per column tile)."""
        if len(ct_tiles) != self.encoded.col_tiles:
            raise ValueError(
                f"need {self.encoded.col_tiles} vector tiles for "
                f"{self.matrix.shape[1]} columns, got {len(ct_tiles)}"
            )
        hoisted = [self._hoist(ct) for ct in ct_tiles]
        packs = [
            self._row_tile_pack(rt, hoisted)
            for rt in range(self.encoded.row_tiles)
        ]
        m, n_cols = self.matrix.shape
        obs.inc("core.hmvp.dot_products", m * self.encoded.col_tiles)
        return HmvpResult(
            packs=packs, rows=m, cols=n_cols, ops=self.request_op_count()
        )

    def multiply_one(self, ct_v: RlweCiphertext) -> HmvpResult:
        """Full Alg. 1 for one vector against the cached matrix."""
        if not ct_v.is_augmented:
            raise ValueError("vector ciphertext must be augmented")
        if self.encoded.col_tiles != 1:
            raise ValueError(
                "matrix has multiple column tiles; use multiply_tiles"
            )
        return self.multiply_tiles([ct_v])

    def multiply_batch(
        self,
        cts: Sequence[RlweCiphertext],
        workers: Optional[int] = None,
    ) -> List[HmvpResult]:
        """Apply the cached matrix to a batch of encrypted vectors.

        Row-tile work items — one per ``(request, row_tile)`` pair — fan
        out across a thread pool when ``workers > 1`` (the NumPy kernels
        release the GIL for most of their runtime).
        """
        if self.encoded.col_tiles != 1:
            raise ValueError(
                "matrix has multiple column tiles; use multiply_tiles "
                "per request"
            )
        if not cts:
            return []
        pool_width = workers if workers is not None else (self.workers or 1)
        m, n_cols = self.matrix.shape
        obs.inc("batch.requests", len(cts))
        with obs.span("batch.batch", requests=len(cts), workers=pool_width):
            tasks = [
                (ri, rt)
                for ri in range(len(cts))
                for rt in range(self.encoded.row_tiles)
            ]
            if pool_width > 1 and len(tasks) > 1:
                # pool threads do not inherit the contextvar, so carry
                # the batch's trace context across the executor hop
                hoisted = [self._hoist(ct) for ct in cts]
                batch_ctx = obs.current_context()
                with ThreadPoolExecutor(max_workers=pool_width) as pool:
                    packed = list(
                        pool.map(
                            lambda task: obs.run_with_context(
                                batch_ctx,
                                self._row_tile_pack,
                                task[1],
                                [hoisted[task[0]]],
                            ),
                            tasks,
                        )
                    )
            else:
                # single-worker path: fuse the whole batch into stacked
                # lock-step kernels (one pass per pipeline stage per row
                # tile, not per request)
                per_request = self._fused_batch_pack(cts)
                packed = [per_request[ri][rt] for ri, rt in tasks]
        obs.inc("core.hmvp.dot_products", m * len(cts))
        per_request = self.request_op_count()
        results = []
        tiles_per_req = self.encoded.row_tiles
        for ri in range(len(cts)):
            packs = packed[ri * tiles_per_req : (ri + 1) * tiles_per_req]
            results.append(
                HmvpResult(packs=packs, rows=m, cols=n_cols, ops=per_request)
            )
        return results

    def make_jobs(
        self,
        request_ids: Sequence[int],
        batch_id: Optional[int] = None,
        ctxs: Optional[Sequence[Optional[obs.TraceContext]]] = None,
    ) -> List[Job]:
        """Simulator jobs for a batch: one per ``(request, row tile)``.

        The engine-worker API shared by :class:`BatchQueue` and the
        serving layer (:mod:`repro.serve`): every consumer prices a
        drained batch with identical job shapes, so scheduler reports
        and RAS accounting are comparable across entry points.
        ``ctxs`` (parallel to ``request_ids``) tags each request's jobs
        with its trace context so runtime attempt spans join the trace.
        """
        jobs = []
        for idx, rid in enumerate(request_ids):
            ctx = ctxs[idx] if ctxs is not None else None
            for rt in range(self.encoded.row_tiles):
                jobs.append(
                    Job(
                        job_id=rid * self.encoded.row_tiles + rt,
                        rows=self.encoded.row_tile_rows(rt),
                        col_tiles=self.encoded.col_tiles,
                        batch_id=batch_id,
                        ctx=ctx,
                    )
                )
        return jobs

    def amortized_op_count(self, batch: int) -> HmvpOpCount:
        """Total ops for a batch, including the one-time encode."""
        total = HmvpOpCount()
        for name in vars(total):
            setattr(total, name, getattr(self.encode_ops, name))
        per_vec = self.request_op_count()
        for _ in range(batch):
            total = total + per_vec
        return total


@dataclass
class BatchDrainReport:
    """Results of one queue drain plus the simulator's pricing of it."""

    request_ids: List[int]
    results: List[HmvpResult]
    schedule: QueueReport


class BatchQueue:
    """Request queue in front of a :class:`BatchedHmvp` engine.

    ``submit`` enqueues encrypted vectors; ``drain`` runs the whole
    pending batch through the engine (worker pool included) and maps it
    onto the hardware simulator's :class:`JobScheduler` — one
    :class:`Job` per (request, row tile), tagged with a batch id — so
    every drain yields both the exact ciphertext results and the priced
    schedule (makespan, per-engine utilization).
    """

    def __init__(
        self,
        engine: BatchedHmvp,
        scheduler: Optional[JobScheduler] = None,
        workers: Optional[int] = None,
        on_drain: Optional[Callable[["BatchDrainReport"], None]] = None,
    ) -> None:
        self.engine = engine
        self.scheduler = scheduler or JobScheduler()
        self.workers = workers
        #: called with each non-empty drain's report (metrics export,
        #: serving-layer completion hooks)
        self.on_drain = on_drain
        self._pending: List[
            Tuple[int, RlweCiphertext, Optional[obs.TraceContext]]
        ] = []
        self._next_request = 0
        self._next_batch = 0

    @property
    def depth(self) -> int:
        return len(self._pending)

    def submit(
        self, ct_v: RlweCiphertext, ctx: Optional[obs.TraceContext] = None
    ) -> int:
        """Enqueue one encrypted vector; returns its request id.

        Each request gets a trace context — the one passed in (a serving
        layer that already minted a trace root), the ambient one, or a
        fresh root — so its simulator jobs are attributable end to end.
        """
        if not ct_v.is_augmented:
            raise ValueError("vector ciphertext must be augmented")
        if ctx is None and obs.TRACER.enabled:
            ctx = obs.current_context() or obs.TRACER.new_trace()
        request_id = self._next_request
        self._next_request += 1
        self._pending.append((request_id, ct_v, ctx))
        obs.inc("batch.queue.submitted")
        obs.set_gauge("batch.queue.depth", len(self._pending))
        return request_id

    def drain(self, max_requests: Optional[int] = None) -> BatchDrainReport:
        """Serve pending requests as one batch.

        ``max_requests`` caps the drained batch (FIFO prefix) — the
        micro-batching building block the serving layer's adaptive
        ``max_batch`` policy rides on; ``None`` drains everything.
        """
        if max_requests is not None and max_requests < len(self._pending):
            pending = self._pending[:max_requests]
            self._pending = self._pending[max_requests:]
        else:
            pending, self._pending = self._pending, []
        obs.set_gauge("batch.queue.depth", len(self._pending))
        batch_id = self._next_batch
        self._next_batch += 1
        if not pending:
            return BatchDrainReport(
                request_ids=[],
                results=[],
                schedule=QueueReport(
                    completions={}, makespan=0, per_engine_busy=[]
                ),
            )
        with obs.span("batch.drain", requests=len(pending), batch=batch_id):
            results = self.engine.multiply_batch(
                [ct for _rid, ct, _ctx in pending], workers=self.workers
            )
            jobs = self.engine.make_jobs(
                [rid for rid, _ct, _ctx in pending],
                batch_id=batch_id,
                ctxs=[ctx for _rid, _ct, ctx in pending],
            )
            schedule = self.scheduler.schedule(jobs)
        obs.observe("batch.drain.requests", len(pending))
        obs.observe("batch.drain.makespan_cycles", schedule.makespan)
        report = BatchDrainReport(
            request_ids=[rid for rid, _ct, _ctx in pending],
            results=results,
            schedule=schedule,
        )
        if self.on_drain is not None:
            self.on_drain(report)
        return report
