"""Tests for RingPoly and the Table I PPU operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math.polynomial import (
    RingPoly,
    automorph,
    automorph_permutation,
    monomial_multiply,
    rev,
    shiftneg,
)
from repro.math.primes import CHAM_Q0, CHAM_Q1

Q = CHAM_Q0
N = 32


def rand_poly(rng, n=N, q=Q):
    return RingPoly.random(n, q, rng)


# -- constructors ------------------------------------------------------------------


def test_zero_and_constant():
    z = RingPoly.zero(N, Q)
    c = RingPoly.constant(5, N, Q)
    assert (z.coeffs == 0).all()
    assert c.coeffs[0] == 5 and (c.coeffs[1:] == 0).all()


def test_constructor_reduces_signed():
    p = RingPoly(np.array([-1] + [0] * (N - 1)), Q)
    assert p.coeffs[0] == Q - 1


def test_constructor_rejects_bad_shapes():
    with pytest.raises(ValueError):
        RingPoly(np.zeros((2, 4)), Q)
    with pytest.raises(ValueError):
        RingPoly(np.zeros(24), Q)  # not a power of two


def test_monomial():
    m = RingPoly.monomial(3, N, Q)
    assert m.coeffs[3] == 1 and m.coeffs.sum() == 1
    # X^N == -1
    m2 = RingPoly.monomial(N, N, Q)
    assert m2.coeffs[0] == Q - 1
    # X^{-1} == -X^{N-1}
    m3 = RingPoly.monomial(-1, N, Q)
    assert m3.coeffs[N - 1] == Q - 1


# -- ring arithmetic ------------------------------------------------------------------


def test_add_sub_neg(rng):
    a, b = rand_poly(rng), rand_poly(rng)
    assert (a + b) - b == a
    assert -(-a) == a
    assert a - a == RingPoly.zero(N, Q)


def test_mul_matches_schoolbook(rng):
    from repro.math.ntt import negacyclic_convolution_schoolbook

    a, b = rand_poly(rng), rand_poly(rng)
    prod = a * b
    want = negacyclic_convolution_schoolbook(a.coeffs, b.coeffs, Q)
    assert np.array_equal(prod.coeffs, want)


def test_mul_distributes(rng):
    a, b, c = rand_poly(rng), rand_poly(rng), rand_poly(rng)
    assert a * (b + c) == a * b + a * c


def test_scalar_mul_and_inverse_scalar(rng):
    a = rand_poly(rng)
    assert a.scalar_mul(3).inverse_scalar(3) == a
    assert (3 * a) == a.scalar_mul(3)


def test_hadamard(rng):
    a, b = rand_poly(rng), rand_poly(rng)
    got = a.hadamard(b)
    want = (a.coeffs.astype(object) * b.coeffs.astype(object)) % Q
    assert np.array_equal(got.coeffs.astype(object), want)


def test_ring_mismatch_raises(rng):
    a = rand_poly(rng)
    b = RingPoly.random(N, CHAM_Q1, rng)
    with pytest.raises(ValueError):
        _ = a + b


# -- Table I operations -----------------------------------------------------------------


def test_rev():
    a = np.arange(N, dtype=np.uint64)
    assert np.array_equal(rev(a, Q), a[::-1])


def test_shiftneg_matches_monomial_multiplication(rng):
    a = rand_poly(rng)
    for s in (0, 1, 5, N - 1, N, N + 3, 2 * N, -1, -7):
        via_shift = a.shiftneg(s)
        via_mul = a * RingPoly.monomial(s, N, Q)
        assert via_shift == via_mul, f"s={s}"


def test_shiftneg_wraparound_negates():
    a = RingPoly.monomial(N - 1, N, Q)
    shifted = a.shiftneg(1)  # X^{N-1} * X = -1
    assert shifted.coeffs[0] == Q - 1


def test_multmono_alias(rng):
    a = rand_poly(rng)
    assert np.array_equal(
        monomial_multiply(a.coeffs, 9, Q), a.multmono(9).coeffs
    )


def test_automorph_is_ring_homomorphism(rng):
    a, b = rand_poly(rng), rand_poly(rng)
    for k in (3, 5, N + 1, 2 * N - 1):
        lhs = (a * b).automorph(k)
        rhs = a.automorph(k) * b.automorph(k)
        assert lhs == rhs, f"k={k}"
        assert (a + b).automorph(k) == a.automorph(k) + b.automorph(k)


def test_automorph_identity(rng):
    a = rand_poly(rng)
    assert a.automorph(1) == a


def test_automorph_composition(rng):
    a = rand_poly(rng)
    assert a.automorph(3).automorph(3) == a.automorph(9 % (2 * N))


def test_automorph_inverse(rng):
    a = rand_poly(rng)
    k = 3
    k_inv = pow(k, -1, 2 * N)
    assert a.automorph(k).automorph(k_inv) == a


def test_automorph_requires_odd_index(rng):
    a = rand_poly(rng)
    with pytest.raises(ValueError):
        a.automorph(4)


def test_automorph_permutation_structure():
    src, flip = automorph_permutation(N, 3)
    assert sorted(src) == list(range(N))
    # the map X -> X^3 fixes the constant coefficient with positive sign
    assert src[0] == 0 and not flip[0]


def test_automorph_on_monomial_matches_evaluation():
    """automorph(X^i, k) == ±X^{ik mod N} with sign (-1)^{floor(ik/N)}."""
    for i in (1, 7, N - 1):
        for k in (3, N + 1):
            m = RingPoly.monomial(i, N, Q)
            got = m.automorph(k)
            want = RingPoly.monomial(i * k, N, Q)
            assert got == want, (i, k)


def test_automorph_raw_vs_free_function(rng):
    a = rand_poly(rng)
    assert np.array_equal(a.automorph(5).coeffs, automorph(a.coeffs, 5, Q))


def test_shiftneg_free_function_negative_and_large(rng):
    a = rng.integers(0, Q, N, dtype=np.uint64)
    assert np.array_equal(shiftneg(a, 2 * N, Q), a)
    assert np.array_equal(
        shiftneg(shiftneg(a, 3, Q), -3, Q), a
    )


def test_evaluate():
    p = RingPoly(np.array([1, 2, 3] + [0] * (N - 3)), Q)
    assert p.evaluate(10) == 321


def test_repr():
    p = RingPoly.zero(N, Q)
    assert "RingPoly" in repr(p)


# -- hypothesis -----------------------------------------------------------------


@given(
    st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=16, max_size=16),
    st.integers(min_value=-64, max_value=64),
)
@settings(max_examples=60, deadline=None)
def test_shiftneg_period_property(coeffs, s):
    a = np.array(coeffs, dtype=np.uint64)
    # SHIFTNEG has period 2N and SHIFTNEG by N is global negation
    out1 = shiftneg(a, s, Q)
    out2 = shiftneg(a, s + 32, Q)
    assert np.array_equal(out1, shiftneg(shiftneg(a, s + 16, Q), -16 % 32, Q))
    assert np.array_equal(out1, out2)
