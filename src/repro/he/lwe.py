"""LWE ciphertexts and RLWE↔LWE conversion (EXTRACTLWES, Eq. 3).

An LWE ciphertext under the RLWE secret's coefficient vector
``s = (s_0, ..., s_{N-1})`` is a pair ``(b, a_vec)`` with

``b + <a_vec, s> = Δ m + e   (mod Q)``.

*SampleExtract* pulls coefficient ``idx`` of an RLWE plaintext out as an
LWE ciphertext for free (a reindexing with signs).  The inverse direction,
:func:`lwe_to_rlwe`, is the Eq. 3 embedding: the LWE vector becomes the
``a`` polynomial of an RLWE ciphertext whose *constant* plaintext
coefficient equals the LWE message (all other coefficients are garbage) —
exactly the form PACKLWES consumes.  For ``idx = 0`` the two maps are
mutually inverse, which the test-suite checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..math.modular import modadd_vec, modmul_vec, modneg_vec
from ..math.rns import RnsBasis
from .context import CheContext
from .keys import SecretKey
from .rlwe import RlweCiphertext

__all__ = ["LweCiphertext", "extract_lwe", "lwe_to_rlwe", "decrypt_lwe"]


@dataclass
class LweCiphertext:
    """An LWE ciphertext in RNS form.

    Attributes
    ----------
    basis:
        RNS basis of the modulus ``Q``.
    b:
        Shape ``(L,)`` — the scalar part, one residue per limb.
    a:
        Shape ``(L, n)`` — the mask vector, per limb.
    """

    ctx: CheContext
    basis: RnsBasis
    b: np.ndarray
    a: np.ndarray

    def __post_init__(self) -> None:
        self.b = np.asarray(self.b, dtype=np.uint64)
        self.a = np.asarray(self.a, dtype=np.uint64)
        if self.b.shape != (len(self.basis),):
            raise ValueError(f"b shape {self.b.shape} != ({len(self.basis)},)")
        if self.a.shape != (len(self.basis), self.ctx.n):
            raise ValueError(
                f"a shape {self.a.shape} != ({len(self.basis)}, {self.ctx.n})"
            )

    @property
    def dimension(self) -> int:
        return self.a.shape[1]

    def __add__(self, other: "LweCiphertext") -> "LweCiphertext":
        if self.basis.moduli != other.basis.moduli:
            raise ValueError("LWE basis mismatch")
        b = np.concatenate(
            [
                modadd_vec(self.b[i : i + 1], other.b[i : i + 1], q)
                for i, q in enumerate(self.basis)
            ]
        )
        a = np.stack(
            [modadd_vec(self.a[i], other.a[i], q) for i, q in enumerate(self.basis)]
        )
        return LweCiphertext(self.ctx, self.basis, b, a)

    def scalar_mul(self, c: int) -> "LweCiphertext":
        b = np.stack(
            [modmul_vec(self.b[i : i + 1], np.uint64(c % q), q) for i, q in enumerate(self.basis)]
        ).reshape(-1)
        a = np.stack(
            [modmul_vec(self.a[i], np.uint64(c % q), q) for i, q in enumerate(self.basis)]
        )
        return LweCiphertext(self.ctx, self.basis, b, a)


def extract_lwe(ct: RlweCiphertext, idx: int = 0) -> LweCiphertext:
    """SampleExtract: LWE encryption of plaintext coefficient ``idx``.

    From ``(c0, c1)`` with negacyclic convolution,

    ``(c1 * s)_idx = sum_{j<=idx} c1_{idx-j} s_j - sum_{j>idx} c1_{N+idx-j} s_j``

    so ``a_vec[j] = c1[idx-j]`` for ``j <= idx`` and ``-c1[N+idx-j]``
    otherwise, and ``b = c0[idx]``.  Purely data movement — the EXTRACTLWES
    unit shares pipeline stage 4 with RESCALE precisely because it is this
    cheap (Section III-A).
    """
    ctx = ct.ctx
    n = ctx.n
    if not 0 <= idx < n:
        raise ValueError(f"coefficient index {idx} out of range")
    b = ct.c0[:, idx].copy()
    a = np.empty_like(ct.c1)
    j = np.arange(n)
    src = np.where(j <= idx, idx - j, n + idx - j)
    neg_mask = j > idx
    for i, q in enumerate(ct.basis):
        row = ct.c1[i][src]
        row = np.where(neg_mask, modneg_vec(row, q), row)
        a[i] = row
    return LweCiphertext(ctx, ct.basis, b, a)


def lwe_to_rlwe(lwe: LweCiphertext) -> RlweCiphertext:
    """Eq. 3: embed an LWE ciphertext as an RLWE ciphertext.

    The output ``(u_0, ã(X))`` has the LWE message in the constant
    coefficient of its plaintext and garbage elsewhere:
    ``ã_0 = a_vec[0]`` and ``ã_k = -a_vec[N-k]`` for ``k >= 1``.
    """
    ctx = lwe.ctx
    n = ctx.n
    c0 = np.zeros((len(lwe.basis), n), dtype=np.uint64)
    c0[:, 0] = lwe.b
    c1 = np.empty((len(lwe.basis), n), dtype=np.uint64)
    for i, q in enumerate(lwe.basis):
        row = np.empty(n, dtype=np.uint64)
        row[0] = lwe.a[i][0]
        row[1:] = modneg_vec(lwe.a[i][:0:-1], q)
        c1[i] = row
    return RlweCiphertext(ctx, lwe.basis, c0, c1)


def decrypt_lwe(ctx: CheContext, sk: SecretKey, lwe: LweCiphertext) -> int:
    """Decrypt a single LWE ciphertext to a centered value mod ``t``."""
    s = sk.limbs(ctx, lwe.basis)
    phase_limbs = []
    for i, q in enumerate(lwe.basis):
        dot = int(
            (lwe.a[i].astype(object) * s[i].astype(object)).sum() % q
        )
        phase_limbs.append((int(lwe.b[i]) + dot) % q)
    # CRT-compose the scalar phase
    modulus = lwe.basis.product
    phase = 0
    for i, q in enumerate(lwe.basis):
        # scalar Python-int CRT weights: exact at any width
        raw = lwe.basis.punctured_inv[i] * lwe.basis.punctured[i]
        weight = raw % modulus
        phase = (phase + phase_limbs[i] * weight) % modulus
    if phase > modulus // 2:
        phase -= modulus
    t = ctx.t
    m = (2 * phase * t + modulus) // (2 * modulus) % t
    return int(m - t) if m > t // 2 else int(m)
