"""Coefficient-encoded homomorphic matrix-vector product (Algorithm 1).

This is the paper's primary contribution, end to end:

1. encode each matrix row per Eq. 1 and the vector per ``pt^(v)``;
2. multiply ``pt^(A_i) × ct^(v)`` — the constant coefficient of the
   product plaintext is the inner product ``<A_i, v>`` (Eq. 2);
3. ``EXTRACTLWES`` each result into an LWE ciphertext;
4. ``PACKLWES`` the LWE ciphertexts back into a single RLWE ciphertext.

:func:`hmvp` handles matrices up to ``(n, n)``; :class:`TiledHmvp`
extends to arbitrary shapes with the mini-batch + matrix-tiling scheme
the paper deploys for HeteroLR (Section V-B3): row tiles become separate
packs, column tiles use separate vector ciphertexts whose partial dot
products are aggregated *as LWE ciphertexts* before packing — the
aggregation cost is exactly why Fig. 6 shows throughput degrading once
``n >= m``.

Every entry point also returns an :class:`HmvpOpCount` so the hardware
performance models can price the exact operation mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .. import obs
from ..he.bfv import BfvScheme
from ..he.lwe import LweCiphertext, extract_lwe
from ..he.packing import PackedResult
from ..he.rlwe import NttPlaintext, RlweCiphertext

__all__ = ["HmvpOpCount", "HmvpResult", "hmvp", "TiledHmvp"]


@dataclass
class HmvpOpCount:
    """Operation counts of one HMVP invocation (consumed by ``repro.hw``).

    NTT counts are in units of single-limb transforms (what one NTT
    functional unit executes); the dot-product stage transforms the
    augmented ciphertext (``2*(L+1)`` polys) once per row plus the
    augmented plaintext (``L+1`` polys) per row, and inverse-transforms
    the product.
    """

    rows: int = 0
    cols: int = 0
    dot_products: int = 0
    ntts: int = 0
    intts: int = 0
    pointwise_mults: int = 0
    rescales: int = 0
    extracts: int = 0
    lwe_additions: int = 0
    pack_reductions: int = 0
    keyswitches: int = 0
    automorphisms: int = 0

    def __add__(self, other: "HmvpOpCount") -> "HmvpOpCount":
        merged = HmvpOpCount()
        for name in vars(merged):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        return merged

    @classmethod
    def for_dot_products(cls, rows: int, cols: int, limbs_aug: int) -> "HmvpOpCount":
        """Stage 1-4 counts for ``rows`` dot products (vector resident)."""
        return cls(
            rows=rows,
            cols=cols,
            dot_products=rows,
            # per row: forward-NTT the plaintext (limbs_aug polys); the
            # ciphertext is transformed once and cached; pointwise-multiply
            # both components; inverse-NTT both components
            ntts=rows * limbs_aug + 2 * limbs_aug,
            intts=rows * 2 * limbs_aug,
            pointwise_mults=rows * 2 * limbs_aug,
            rescales=rows,
            extracts=rows,
        )

    @classmethod
    def for_cached_dot_products(
        cls, rows: int, cols: int, limbs_aug: int
    ) -> "HmvpOpCount":
        """Stage 1-4 counts with matrix rows resident in the NTT domain.

        Relative to :meth:`for_dot_products` the ``rows * limbs_aug``
        per-row plaintext transforms vanish — the engines keep the row
        tile staged (URAM-resident, Section III-C) and only the hoisted
        ciphertext transform and the product inverse transforms remain.
        """
        return cls(
            rows=rows,
            cols=cols,
            dot_products=rows,
            ntts=2 * limbs_aug,
            intts=rows * 2 * limbs_aug,
            pointwise_mults=rows * 2 * limbs_aug,
            rescales=rows,
            extracts=rows,
        )

    @classmethod
    def for_pack(cls, count: int, limbs: int, limbs_aug: int) -> "HmvpOpCount":
        """Stage 5-9 counts for packing ``count`` LWE ciphertexts.

        Each PACKTWOLWES performs one automorphism and one key-switch;
        one key-switch runs ``dnum`` digit products over the augmented
        basis: ``dnum * limbs_aug`` forward NTTs plus ``2 * limbs_aug``
        inverse NTTs after accumulation.
        """
        levels = max(count - 1, 0).bit_length()
        reductions = (1 << levels) - 1
        dnum = limbs
        return cls(
            pack_reductions=reductions,
            automorphisms=reductions,
            keyswitches=reductions,
            ntts=reductions * dnum * limbs_aug,
            intts=reductions * 2 * limbs_aug,
            pointwise_mults=reductions * dnum * 2 * limbs_aug,
            rescales=reductions * 2,
        )


@dataclass
class HmvpResult:
    """Result of a (possibly tiled) HMVP.

    ``packs[r]`` holds rows ``r*n .. r*n + packs[r].count - 1`` of ``A·v``.
    """

    packs: List[PackedResult]
    rows: int
    cols: int
    ops: HmvpOpCount = field(default_factory=HmvpOpCount)

    def decrypt(self, scheme: BfvScheme) -> np.ndarray:
        """Decrypt all row tiles into the full result vector (objects)."""
        parts = [scheme.decrypt_packed(pack) for pack in self.packs]
        return np.concatenate(parts)


def _dot_product_lwes(
    scheme: BfvScheme,
    matrix: np.ndarray,
    ct_v: RlweCiphertext,
    ops: HmvpOpCount,
    row_ntts: Optional[Sequence[NttPlaintext]] = None,
) -> List[LweCiphertext]:
    """Rows -> dot products -> extracted LWEs (pipeline stages 1-4).

    With ``row_ntts`` (pre-transformed row encodings, one per matrix
    row) the per-row forward NTTs are skipped and the ciphertext
    transform is hoisted out of the loop — the cached stages the
    batched engine builds on.
    """
    lwes = []
    if row_ntts is None:
        for i in range(matrix.shape[0]):
            # stages 1-3 (spans NTT / MULTPOLY / INTT inside multiply_plain)
            pt_row = scheme.encoder.encode_row(np.asarray(matrix[i]))
            prod = ct_v.multiply_plain(pt_row)
            # stage 4: drop the special modulus and pull out the LWE sample
            with obs.span("RESCALE+EXTRACT", row=i):
                ct_dot = prod.rescale() if prod.is_augmented else prod
                lwes.append(extract_lwe(ct_dot, 0))
        tally = HmvpOpCount.for_dot_products(
            matrix.shape[0], matrix.shape[1], len(scheme.ctx.aug_basis)
        )
    else:
        if len(row_ntts) != matrix.shape[0]:
            raise ValueError("one cached row transform required per row")
        with obs.span("NTT", limbs=len(ct_v.basis), polys=2, hoisted=True):
            hoisted = ct_v.ntt_components()
        for i, row_ntt in enumerate(row_ntts):
            prod = ct_v.multiply_plain_ntt(row_ntt, comp_ntts=hoisted)
            with obs.span("RESCALE+EXTRACT", row=i):
                ct_dot = prod.rescale() if prod.is_augmented else prod
                lwes.append(extract_lwe(ct_dot, 0))
        tally = HmvpOpCount.for_cached_dot_products(
            matrix.shape[0], matrix.shape[1], len(scheme.ctx.aug_basis)
        )
    obs.inc("core.hmvp.dot_products", matrix.shape[0])
    for name in vars(tally):
        setattr(ops, name, getattr(ops, name) + getattr(tally, name))
    return lwes


def hmvp(
    scheme: BfvScheme,
    matrix: Sequence[Sequence[int]],
    ct_v: RlweCiphertext,
) -> HmvpResult:
    """Algorithm 1 for a matrix with ``m, n <= N``.

    ``ct_v`` must be an augmented-basis encryption of the Eq. 1 vector
    encoding (``scheme.encrypt_vector``).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    m, n = matrix.shape
    ring_n = scheme.params.n
    if m > ring_n or n > ring_n:
        raise ValueError(
            f"{m}x{n} exceeds ring degree {ring_n}; use TiledHmvp"
        )
    ops = HmvpOpCount()
    lwes = _dot_product_lwes(scheme, matrix, ct_v, ops)
    packed = scheme.pack(lwes)
    ops = ops + HmvpOpCount.for_pack(
        m, len(scheme.ctx.ct_basis), len(scheme.ctx.aug_basis)
    )
    return HmvpResult(packs=[packed], rows=m, cols=n, ops=ops)


class TiledHmvp:
    """Mini-batch + matrix-tiling HMVP for arbitrary ``(m, n)``.

    The matrix is cut into ``ceil(n / N)`` column tiles and row tiles of
    at most ``N`` rows.  Party A encrypts one vector ciphertext per
    column tile; per row, the partial dot products from each column tile
    are aggregated as LWE ciphertexts (cheap additions) before packing.
    """

    def __init__(self, scheme: BfvScheme) -> None:
        self.scheme = scheme
        self.ring_n = scheme.params.n

    def column_tiles(self, n: int) -> int:
        return -(-n // self.ring_n)

    def row_tiles(self, m: int) -> int:
        return -(-m // self.ring_n)

    def encrypt_vector(self, v: Sequence[int]) -> List[RlweCiphertext]:
        """One augmented ciphertext per column tile of the vector."""
        v = np.asarray(v)
        out = []
        for start in range(0, v.shape[0], self.ring_n):
            out.append(self.scheme.encrypt_vector(v[start : start + self.ring_n]))
        return out

    def multiply(
        self,
        matrix: Sequence[Sequence[int]],
        ct_tiles: List[RlweCiphertext],
        rows_per_pack: Optional[int] = None,
    ) -> HmvpResult:
        """Full tiled HMVP.

        ``rows_per_pack`` caps the rows folded into one output ciphertext
        (defaults to the ring degree); smaller values model the paper's
        mini-batching.
        """
        matrix = np.asarray(matrix)
        m, n = matrix.shape
        expect_tiles = self.column_tiles(n)
        if len(ct_tiles) != expect_tiles:
            raise ValueError(
                f"need {expect_tiles} vector tiles for {n} columns, "
                f"got {len(ct_tiles)}"
            )
        pack_rows = rows_per_pack or self.ring_n
        if pack_rows > self.ring_n:
            raise ValueError("rows_per_pack cannot exceed the ring degree")

        ops = HmvpOpCount()
        packs: List[PackedResult] = []
        for row_start in range(0, m, pack_rows):
            row_block = matrix[row_start : row_start + pack_rows]
            agg: List[LweCiphertext] = []
            for tile_idx in range(expect_tiles):
                col_start = tile_idx * self.ring_n
                block = row_block[:, col_start : col_start + self.ring_n]
                lwes = _dot_product_lwes(
                    self.scheme, block, ct_tiles[tile_idx], ops
                )
                if not agg:
                    agg = lwes
                else:
                    agg = [a + b for a, b in zip(agg, lwes)]
                    ops.lwe_additions += len(lwes)
            packed = self.scheme.pack(agg)
            ops = ops + HmvpOpCount.for_pack(
                len(agg), len(self.scheme.ctx.ct_basis), len(self.scheme.ctx.aug_basis)
            )
            packs.append(packed)
        return HmvpResult(packs=packs, rows=m, cols=n, ops=ops)

    def __call__(
        self, matrix: Sequence[Sequence[int]], v: Sequence[int]
    ) -> np.ndarray:
        """Convenience: encrypt, multiply, decrypt, return ``A·v``."""
        ct_tiles = self.encrypt_vector(v)
        result = self.multiply(matrix, ct_tiles)
        return result.decrypt(self.scheme)
