"""Tests for the macro-pipeline discrete-event simulator (Section III-A)."""

import pytest

from repro.hw.arch import ChamConfig, EngineConfig, cham_default_config
from repro.hw.pipeline import MacroPipeline, simulate_multi_engine


@pytest.fixture(scope="module")
def pipe():
    return MacroPipeline(EngineConfig())


def test_reduction_count_is_rows_minus_one(pipe):
    """'Totally 4095 reductions are required to pack 4096 ciphertexts.'"""
    for rows in (2, 16, 256, 4096):
        stats = pipe.simulate_hmvp(rows)
        assert stats.reductions == rows - 1


def test_single_row_needs_no_reductions(pipe):
    stats = pipe.simulate_hmvp(1)
    assert stats.reductions == 0
    assert stats.total_cycles > 0


def test_throughput_approaches_row_interval(pipe):
    """Near-linear scaling with m (Fig. 6): large packs saturate the
    engine at one row per dot-product interval."""
    cfg = cham_default_config()
    sat = cfg.clock_hz / EngineConfig().dot_product_interval
    small = pipe.simulate_hmvp(16).throughput_rows_per_sec(cfg.clock_hz)
    large = pipe.simulate_hmvp(4096).throughput_rows_per_sec(cfg.clock_hz)
    assert small < large <= sat
    assert large > 0.99 * sat


def test_throughput_monotone_in_rows(pipe):
    cfg = cham_default_config()
    prev = 0.0
    for rows in (4, 16, 64, 256, 1024):
        thr = pipe.simulate_hmvp(rows).throughput_rows_per_sec(cfg.clock_hz)
        assert thr > prev
        prev = thr


def test_column_tiles_degrade_throughput(pipe):
    """Fig. 6: once a row spans multiple ciphertexts (n >= m regime),
    aggregation halves the effective rate per extra tile."""
    cfg = cham_default_config()
    t1 = pipe.simulate_hmvp(512, col_tiles=1).throughput_rows_per_sec(cfg.clock_hz)
    t2 = pipe.simulate_hmvp(512, col_tiles=2).throughput_rows_per_sec(cfg.clock_hz)
    t4 = pipe.simulate_hmvp(512, col_tiles=4).throughput_rows_per_sec(cfg.clock_hz)
    assert t2 == pytest.approx(t1 / 2, rel=0.1)
    assert t4 == pytest.approx(t1 / 4, rel=0.1)


def test_preemptions_occur(pipe):
    """Higher-level reductions preempt the leaf stream (Section III-A)."""
    stats = pipe.simulate_hmvp(256)
    assert stats.preemptions > 0


def test_reduce_buffer_peak_is_logarithmic(pipe):
    """With pair-on-arrival scheduling the buffer needs ~log2(m) slots."""
    for rows in (16, 256, 4096):
        stats = pipe.simulate_hmvp(rows)
        levels = rows.bit_length()
        assert stats.reduce_buffer_peak <= levels + 2, rows


def test_tiny_reduce_buffer_deadlocks():
    engine = EngineConfig(reduce_buffer_entries=2)
    with pytest.raises(RuntimeError, match="deadlock"):
        MacroPipeline(engine).simulate_hmvp(512)


def test_dot_utilization_saturates(pipe):
    stats = pipe.simulate_hmvp(2048)
    assert stats.dot_utilization > 0.95
    assert 0 < stats.pack_utilization < 1


def test_rejects_nonpositive_rows(pipe):
    with pytest.raises(ValueError):
        pipe.simulate_hmvp(0)


def test_multi_engine_splits_rows():
    cfg = cham_default_config()
    one = simulate_multi_engine(cfg.with_engines(1), 4096)
    two = simulate_multi_engine(cfg.with_engines(2), 4096)
    assert two.total_cycles < one.total_cycles
    assert two.total_cycles == pytest.approx(one.total_cycles / 2, rel=0.05)
    assert two.reductions == 4094  # two independent packs of 2048


def test_multi_engine_stats_aggregate():
    cfg = cham_default_config()
    stats = simulate_multi_engine(cfg, 100)
    assert stats.rows == 100
    assert stats.dot_products == 100


def test_faster_pack_config_reduces_tail():
    slow = EngineConfig(pack_ntt_units=6)
    fast = EngineConfig(pack_ntt_units=24)
    rows = 128
    t_slow = MacroPipeline(slow).simulate_hmvp(rows).total_cycles
    t_fast = MacroPipeline(fast).simulate_hmvp(rows).total_cycles
    assert t_fast < t_slow


def test_eight_pe_engine_halves_cycles():
    from repro.hw.arch import NttUnitConfig

    base = MacroPipeline(EngineConfig()).simulate_hmvp(1024).total_cycles
    fast = (
        MacroPipeline(EngineConfig(ntt_unit=NttUnitConfig(n_bfu=8)))
        .simulate_hmvp(1024)
        .total_cycles
    )
    assert fast == pytest.approx(base / 2, rel=0.05)
