"""Tests for repro.math.primes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math.primes import (
    CHAM_P,
    CHAM_Q0,
    CHAM_Q1,
    find_low_hamming_ntt_prime,
    find_ntt_prime,
    is_ntt_friendly,
    is_prime,
    negacyclic_psi,
    primitive_root,
    root_of_unity,
)

KNOWN_PRIMES = [2, 3, 5, 7, 12289, 65537, CHAM_Q0, CHAM_Q1, CHAM_P]
KNOWN_COMPOSITES = [0, 1, 4, 9, 561, 1105, 65535, 2**34 + 2**27]  # incl. Carmichael


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_is_prime_on_primes(p):
    assert is_prime(p)


@pytest.mark.parametrize("c", KNOWN_COMPOSITES)
def test_is_prime_on_composites(c):
    assert not is_prime(c)


def test_cham_moduli_are_paper_values():
    assert CHAM_Q0 == 2**34 + 2**27 + 1
    assert CHAM_Q1 == 2**34 + 2**19 + 1
    assert CHAM_P == 2**38 + 2**23 + 1


def test_cham_moduli_bit_widths():
    """Section II-F: two 35-bit moduli plus a 39-bit special modulus."""
    assert CHAM_Q0.bit_length() == 35
    assert CHAM_Q1.bit_length() == 35
    assert CHAM_P.bit_length() == 39
    # the paper's "70 bit" / "109 bit" figures are nominal limb sums
    assert CHAM_Q0.bit_length() + CHAM_Q1.bit_length() == 70
    assert CHAM_Q0.bit_length() + CHAM_Q1.bit_length() + CHAM_P.bit_length() == 109


@pytest.mark.parametrize("q", [CHAM_Q0, CHAM_Q1, CHAM_P])
@pytest.mark.parametrize("n", [64, 512, 4096])
def test_cham_moduli_ntt_friendly_for_all_toy_degrees(q, n):
    assert is_ntt_friendly(q, n)


def test_find_ntt_prime():
    q = find_ntt_prime(20, 128)
    assert q.bit_length() == 20
    assert is_ntt_friendly(q, 128)
    q2 = find_ntt_prime(20, 128, skip=1)
    assert q2 > q and is_ntt_friendly(q2, 128)


def test_find_low_hamming_ntt_prime_recovers_cham():
    assert find_low_hamming_ntt_prime(35, 4096) in (CHAM_Q0, CHAM_Q1)
    assert find_low_hamming_ntt_prime(39, 4096) == CHAM_P


def test_primitive_root_orders():
    for q in (17, 12289, CHAM_Q0):
        g = primitive_root(q)
        assert pow(g, q - 1, q) == 1
        # g must not have any smaller order dividing q-1
        assert pow(g, (q - 1) // 2, q) != 1


def test_root_of_unity_exact_order():
    w = root_of_unity(512, CHAM_Q0)
    assert pow(w, 512, CHAM_Q0) == 1
    assert pow(w, 256, CHAM_Q0) != 1


def test_root_of_unity_rejects_bad_order():
    with pytest.raises(ValueError):
        root_of_unity(3, 257)  # 3 does not divide 256


def test_negacyclic_psi():
    for n in (64, 4096):
        psi = negacyclic_psi(n, CHAM_P)
        assert pow(psi, n, CHAM_P) == CHAM_P - 1
        assert pow(psi, 2 * n, CHAM_P) == 1


def test_primitive_root_requires_prime():
    with pytest.raises(ValueError):
        primitive_root(100)


@given(st.integers(min_value=3, max_value=10**6))
@settings(max_examples=150, deadline=None)
def test_is_prime_agrees_with_trial_division(n):
    def trial(n):
        if n < 2:
            return False
        d = 2
        while d * d <= n:
            if n % d == 0:
                return False
            d += 1
        return True

    assert is_prime(n) == trial(n)
