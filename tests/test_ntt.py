"""Tests for the gold-model negacyclic NTT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math.modular import modadd_vec
from repro.math.ntt import (
    NegacyclicNtt,
    bit_reverse,
    bit_reverse_indices,
    intt,
    negacyclic_convolution_schoolbook,
    ntt,
)
from repro.math.primes import CHAM_P, CHAM_Q0, CHAM_Q1, find_ntt_prime

MODULI = [CHAM_Q0, CHAM_Q1, CHAM_P]


def test_bit_reverse():
    assert bit_reverse(0b001, 3) == 0b100
    assert bit_reverse(0b110, 3) == 0b011
    assert bit_reverse(5, 4) == 10


def test_bit_reverse_indices_is_involution():
    perm = bit_reverse_indices(64)
    assert np.array_equal(perm[perm], np.arange(64))


def test_bit_reverse_indices_rejects_non_pow2():
    with pytest.raises(ValueError):
        bit_reverse_indices(48)


@pytest.mark.parametrize("q", MODULI)
@pytest.mark.parametrize("n", [4, 16, 128, 1024])
def test_roundtrip(q, n, rng):
    ctx = NegacyclicNtt(n, q)
    a = rng.integers(0, q, n, dtype=np.uint64)
    assert np.array_equal(ctx.inverse(ctx.forward(a)), a)


@pytest.mark.parametrize("q", MODULI)
@pytest.mark.parametrize("n", [8, 32, 128])
def test_multiply_matches_schoolbook(q, n, rng):
    ctx = NegacyclicNtt(n, q)
    a = rng.integers(0, q, n, dtype=np.uint64)
    b = rng.integers(0, q, n, dtype=np.uint64)
    assert np.array_equal(
        ctx.multiply(a, b), negacyclic_convolution_schoolbook(a, b, q)
    )


def test_negacyclic_wraparound_sign():
    """X^(n-1) * X = X^n = -1: the defining identity of the ring."""
    n, q = 16, CHAM_Q0
    ctx = NegacyclicNtt(n, q)
    x_last = np.zeros(n, dtype=np.uint64)
    x_last[n - 1] = 1
    x_one = np.zeros(n, dtype=np.uint64)
    x_one[1] = 1
    prod = ctx.multiply(x_last, x_one)
    want = np.zeros(n, dtype=np.uint64)
    want[0] = q - 1
    assert np.array_equal(prod, want)


def test_forward_is_linear(rng):
    n, q = 64, CHAM_Q1
    ctx = NegacyclicNtt(n, q)
    a = rng.integers(0, q, n, dtype=np.uint64)
    b = rng.integers(0, q, n, dtype=np.uint64)
    lhs = ctx.forward(modadd_vec(a, b, q))
    rhs = modadd_vec(ctx.forward(a), ctx.forward(b), q)
    assert np.array_equal(lhs, rhs)


def test_batch_transform_matches_loop(rng):
    n, q = 64, CHAM_Q0
    ctx = NegacyclicNtt(n, q)
    batch = rng.integers(0, q, (5, n), dtype=np.uint64)
    stacked = ctx.forward(batch)
    for i in range(5):
        assert np.array_equal(stacked[i], ctx.forward(batch[i]))


def test_three_dim_batch(rng):
    n, q = 32, CHAM_P
    ctx = NegacyclicNtt(n, q)
    batch = rng.integers(0, q, (2, 3, n), dtype=np.uint64)
    out = ctx.forward(batch)
    assert out.shape == (2, 3, n)
    assert np.array_equal(out[1, 2], ctx.forward(batch[1, 2]))


def test_constant_polynomial_transform():
    """NTT of a constant is that constant in every position."""
    n, q = 16, CHAM_Q0
    ctx = NegacyclicNtt(n, q)
    a = np.zeros(n, dtype=np.uint64)
    a[0] = 7
    assert np.array_equal(ctx.forward(a), np.full(n, 7, dtype=np.uint64))


def test_rejects_bad_length(rng):
    ctx = NegacyclicNtt(64, CHAM_Q0)
    with pytest.raises(ValueError):
        ctx.forward(rng.integers(0, 10, 32, dtype=np.uint64))
    with pytest.raises(ValueError):
        ctx.inverse(rng.integers(0, 10, 128, dtype=np.uint64))


def test_rejects_bad_parameters():
    with pytest.raises(ValueError):
        NegacyclicNtt(48, CHAM_Q0)  # not a power of two
    with pytest.raises(ValueError):
        NegacyclicNtt(64, 97)  # 97 != 1 mod 128


def test_functional_wrappers(rng):
    n, q = 64, CHAM_Q0
    a = rng.integers(0, q, n, dtype=np.uint64)
    assert np.array_equal(intt(ntt(a, q), q), a)


@given(st.lists(st.integers(min_value=0, max_value=CHAM_Q0 - 1), min_size=16, max_size=16))
@settings(max_examples=50, deadline=None)
def test_roundtrip_property(coeffs):
    a = np.array(coeffs, dtype=np.uint64)
    ctx = NegacyclicNtt(16, CHAM_Q0)
    assert np.array_equal(ctx.inverse(ctx.forward(a)), a)


@given(
    st.lists(st.integers(min_value=0, max_value=999), min_size=8, max_size=8),
    st.lists(st.integers(min_value=0, max_value=999), min_size=8, max_size=8),
)
@settings(max_examples=50, deadline=None)
def test_convolution_commutes_property(xs, ys):
    q = find_ntt_prime(20, 8)
    a = np.array(xs, dtype=np.uint64) % q
    b = np.array(ys, dtype=np.uint64) % q
    ctx = NegacyclicNtt(8, q)
    assert np.array_equal(ctx.multiply(a, b), ctx.multiply(b, a))
    assert np.array_equal(
        ctx.multiply(a, b), negacyclic_convolution_schoolbook(a, b, q)
    )
