"""Conversions between ciphertext types and schemes (§I, [4], [7], [26]).

The paper motivates CHAM with "novel algorithms" that (a) use multiple
ciphertext *types* — RLWE and LWE — with conversions between them, and
(b) compose multiple *schemes* (B/FV, CKKS) into hybrids.  This module
collects the conversion toolkit:

* RLWE -> LWE: :func:`repro.he.lwe.extract_lwe` (re-exported);
* LWE -> RLWE: :func:`repro.he.lwe.lwe_to_rlwe` (Eq. 3) and the full
  PACKLWES (re-exported);
* **BFV -> CKKS** (:func:`bfv_to_ckks`): *exact* reinterpretation.  A BFV
  ciphertext carries ``round(M/t * m) + e``, which is precisely a CKKS
  ciphertext at scale ``M/t`` — zero-cost, zero-noise, same key.
* **CKKS -> BFV** (:func:`ckks_to_bfv`): scale alignment by the integer
  ``k = round(M / (t * scale))``.  The recovered integer message is exact
  whenever ``|m| < M / (t * scale)`` (the CHIMERA-style bound exposed by
  :func:`max_exact_message`); beyond it the conversion degrades
  gracefully like any approximate scheme switch.

Both scheme conversions require the two schemes to share the secret key
(pass ``shared_secret`` when constructing :class:`~repro.he.ckks.CkksScheme`),
exactly as deployed hybrid systems do.
"""

from __future__ import annotations

import numpy as np

from ..math.modular import modmul_vec
from .bfv import BfvScheme
from .ckks import CkksCiphertext, CkksScheme
from .lwe import extract_lwe, lwe_to_rlwe  # re-exports
from .packing import pack_lwes  # re-export
from .rlwe import RlweCiphertext

__all__ = [
    "bfv_to_ckks",
    "ckks_to_bfv",
    "max_exact_message",
    "extract_lwe",
    "lwe_to_rlwe",
    "pack_lwes",
]


def bfv_to_ckks(bfv: BfvScheme, ct: RlweCiphertext) -> CkksCiphertext:
    """Reinterpret a BFV ciphertext as CKKS at scale ``M/t`` (exact).

    No arithmetic is performed: the exact-scaling BFV embedding *is* a
    CKKS embedding whose scale happens to be the rational ``M/t``.
    """
    modulus = ct.basis.product
    scale = modulus / bfv.params.plain_modulus
    return CkksCiphertext(ct.copy(), scale, "coeff")


def max_exact_message(bfv: BfvScheme, scale: float, augmented: bool = False) -> int:
    """Largest |m| for which :func:`ckks_to_bfv` recovers ``m`` exactly.

    The alignment factor ``γ = t*k*scale/M`` differs from 1 by at most
    ``t*scale/(2M)``; rounding stays exact while ``|m|·|γ-1| < 1/2``.
    """
    modulus = bfv.params.qp_product if augmented else bfv.params.q_product
    t = bfv.params.plain_modulus
    return int(modulus / (t * scale))


def ckks_to_bfv(bfv: BfvScheme, ct: CkksCiphertext) -> RlweCiphertext:
    """Align a coefficient-encoded CKKS ciphertext onto the BFV lattice.

    Multiplies both components by ``k = round(M/(t*scale))`` so the phase
    becomes ``≈ (M/t)*m + k*e``.  Exact for ``|m| < max_exact_message``.
    """
    if ct.encoding != "coeff":
        raise ValueError("convert coefficient-encoded CKKS ciphertexts")
    inner = ct.ct
    modulus = inner.basis.product
    t = bfv.params.plain_modulus
    k = int(round(modulus / (t * ct.scale)))
    if k < 1:
        raise ValueError(
            f"scale {ct.scale} exceeds the BFV lattice spacing M/t; "
            "rescale the CKKS ciphertext first"
        )
    c0 = np.stack(
        [
            modmul_vec(inner.c0[i], np.uint64(k % q), q)
            for i, q in enumerate(inner.basis)
        ]
    )
    c1 = np.stack(
        [
            modmul_vec(inner.c1[i], np.uint64(k % q), q)
            for i, q in enumerate(inner.basis)
        ]
    )
    return RlweCiphertext(inner.ctx, inner.basis, c0, c1)
