"""Residue number system (RNS) support.

CHAM keeps every polynomial in a *limb-decomposed* form: one residue
vector per prime modulus, so that all arithmetic stays word-sized
(Section II-F: ciphertexts live mod ``Q = q0*q1``; the *augmented* form
adds the 39-bit special modulus ``p``).  This module provides:

* :class:`RnsBasis` — an ordered tuple of NTT-friendly primes with cached
  CRT constants;
* exact CRT composition/decomposition (bigint, the correctness oracle);
* *fast base extension* (approximate CRT with a float64-computed overflow
  count, the technique hardware uses to avoid bigints) — cross-checked
  against the exact path in the property tests;
* RNS *rescale*: divide-and-round by the last modulus, the stage-4
  operation of the CHAM pipeline (and the core of hybrid key-switching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, Sequence, Tuple

import numpy as np

from .modular import modadd_vec, modinv, modmul_vec, modsub_vec, reduce_signed_vec
from .primes import is_ntt_friendly

__all__ = ["RnsBasis", "RnsPoly"]


@dataclass(frozen=True)
class RnsBasis:
    """An ordered basis of pairwise-distinct NTT-friendly primes.

    Parameters
    ----------
    moduli:
        The primes ``(q_0, ..., q_{L-1})``.
    n:
        Ring degree each modulus must support (``q_i ≡ 1 mod 2n``).
    """

    moduli: Tuple[int, ...]
    n: int

    def __post_init__(self) -> None:
        if len(set(self.moduli)) != len(self.moduli):
            raise ValueError("RNS moduli must be distinct")
        for q in self.moduli:
            if not is_ntt_friendly(q, self.n):
                raise ValueError(f"{q} is not an NTT-friendly prime for n={self.n}")

    # -- cached CRT constants ------------------------------------------------

    @cached_property
    def product(self) -> int:
        """``Q = prod(q_i)``."""
        out = 1
        for q in self.moduli:
            out *= q
        return out

    @cached_property
    def punctured(self) -> Tuple[int, ...]:
        """``Q_i = Q / q_i``."""
        return tuple(self.product // q for q in self.moduli)

    @cached_property
    def punctured_inv(self) -> Tuple[int, ...]:
        """``Q_i^{-1} mod q_i`` (the CRT reconstruction weights)."""
        return tuple(
            modinv(qi_hat % qi, qi)
            for qi_hat, qi in zip(self.punctured, self.moduli)
        )

    @cached_property
    def modulus_column(self) -> np.ndarray:
        """The moduli as a frozen ``(L,)`` ``uint64`` array.

        Callers reshape it into a broadcast column (``(L, 1, ..., 1)``)
        for the fused-limb kernels that carry one modulus per slice.
        """
        col = np.array(self.moduli, dtype=np.uint64)
        col.flags.writeable = False
        return col

    @cached_property
    def _rescale_constants(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-limb constants of :meth:`rescale_last`, precomputed once.

        ``(q, p^{-1} mod q, (q - p mod q))`` for each retained modulus
        ``q`` — the values the old per-limb loop recomputed on every
        call (including a Python ``modinv``).
        """
        p = self.moduli[-1]
        qs = np.array(self.moduli[:-1], dtype=np.uint64)
        p_inv = np.array(
            [modinv(p % q, q) for q in self.moduli[:-1]], dtype=np.uint64
        )
        p_neg = np.array(
            [q - p % q for q in self.moduli[:-1]], dtype=np.uint64
        )
        for arr in (qs, p_inv, p_neg):
            arr.flags.writeable = False
        return qs, p_inv, p_neg

    def __len__(self) -> int:
        return len(self.moduli)

    def __iter__(self) -> Iterator[int]:
        return iter(self.moduli)

    def drop_last(self) -> "RnsBasis":
        """The basis without its final (special) modulus."""
        if len(self.moduli) < 2:
            raise ValueError("cannot drop the only modulus")
        return RnsBasis(self.moduli[:-1], self.n)

    def extend(self, extra: Sequence[int]) -> "RnsBasis":
        return RnsBasis(self.moduli + tuple(extra), self.n)

    # -- conversions -----------------------------------------------------------

    def decompose(self, values: np.ndarray) -> np.ndarray:
        """Integer array (object dtype or unsigned) -> residue stack.

        Returns shape ``(L, *values.shape)`` ``uint64``.
        """
        arr = np.asarray(values, dtype=object)
        return np.stack(
            [np.asarray(np.mod(arr, q), dtype=np.uint64) for q in self.moduli]
        )

    def compose(self, residues: np.ndarray) -> np.ndarray:
        """Residue stack ``(L, ...)`` -> exact integers in ``[0, Q)``.

        Bigint path (object dtype); used at API boundaries and as the
        oracle for the fast paths.
        """
        residues = np.asarray(residues)
        if residues.shape[0] != len(self.moduli):
            raise ValueError("leading axis must index the RNS limbs")
        acc = np.zeros(residues.shape[1:], dtype=object)
        for i, q in enumerate(self.moduli):
            # documented bigint oracle path: Python-int / object-dtype
            # arithmetic, exact at any width
            raw = self.punctured_inv[i] * self.punctured[i]
            weight = raw % self.product
            acc = (acc + residues[i].astype(object) * weight) % self.product
        return acc

    def compose_centered(self, residues: np.ndarray) -> np.ndarray:
        """Like :meth:`compose` but lifted to ``(-Q/2, Q/2]`` (object ints)."""
        vals = self.compose(residues)
        half = self.product // 2
        return np.where(vals > half, vals - self.product, vals)

    # -- fast base extension ---------------------------------------------------

    def extend_to(self, residues: np.ndarray, targets: Sequence[int]) -> np.ndarray:
        """Fast base extension of centered values to additional moduli.

        Given residues of ``x mod Q`` (interpreted centered, i.e. as the
        representative in ``(-Q/2, Q/2]``), compute ``x mod t`` for each
        target ``t`` **without bigints**: the float-corrected CRT of
        Halevi-Polyakov-Shoup.  With word-sized limbs the fractional
        accumulator ``sum(y_i / q_i)`` is exact to ~2^-18, far below the
        0.5 decision threshold except for adversarially-close inputs,
        which random ciphertexts avoid; the exact path exists for
        cross-checking.

        Returns shape ``(len(targets), ...)``.
        """
        residues = np.asarray(residues, dtype=np.uint64)
        if residues.shape[0] != len(self.moduli):
            raise ValueError("leading axis must index the RNS limbs")
        # y_i = [x * Q_i^{-1}]_{q_i}
        ys = np.stack(
            [
                modmul_vec(residues[i], np.uint64(self.punctured_inv[i]), q)
                for i, q in enumerate(self.moduli)
            ]
        )
        # v = round(sum y_i / q_i): how many multiples of Q the CRT sum
        # overshoots by (centered convention -> round, not floor).
        frac = sum(
            ys[i].astype(np.float64) / float(q) for i, q in enumerate(self.moduli)
        )
        v = np.rint(frac).astype(np.int64)
        out = []
        for t in targets:
            acc = np.zeros(residues.shape[1:], dtype=np.uint64)
            for i, q in enumerate(self.moduli):
                term = modmul_vec(
                    ys[i] % np.uint64(t), np.uint64(self.punctured[i] % t), t
                )
                acc = (acc + term) % np.uint64(t)
            correction = modmul_vec(
                reduce_signed_vec(v, t), np.uint64(self.product % t), t
            )
            out.append(modsub_vec(acc, correction, t))
        return np.stack(out)

    def extend_to_exact(self, residues: np.ndarray, targets: Sequence[int]) -> np.ndarray:
        """Bigint oracle for :meth:`extend_to` (centered convention)."""
        vals = self.compose_centered(residues)
        return np.stack(
            [np.asarray(np.mod(vals, t), dtype=np.uint64) for t in targets]
        )

    # -- rescale ----------------------------------------------------------------

    def rescale_last(self, residues: np.ndarray) -> np.ndarray:
        """Divide-and-round by the last modulus, entirely in RNS.

        Given ``x mod (q_0...q_{L-2}, p)`` (``p`` the last modulus), return
        residues of ``round(x / p)`` in the basis without ``p``:

        ``round(x/p) ≡ (x - [x]_p) * p^{-1} (mod q_i)``

        with ``[x]_p`` the *centered* remainder so the division rounds to
        nearest.  This is CHAM's stage-4 RESCALE and the final step of
        hybrid key-switching.
        """
        residues = np.asarray(residues, dtype=np.uint64)
        if residues.shape[0] != len(self.moduli):
            raise ValueError("leading axis must index the RNS limbs")
        p = self.moduli[-1]
        xp = residues[-1]
        half = np.uint64(p // 2)
        # one broadcast pass over every retained limb at once — the
        # ``(L-1, *batch, n)`` stack is what the fused key-switch and the
        # batched dot/rescale/extract kernels hand in
        qs, p_inv, p_neg = self._rescale_constants
        col = (len(self.moduli) - 1,) + (1,) * (residues.ndim - 1)
        q_col = qs.reshape(col)
        # centered remainder of x mod p, reduced into [0, q): a value
        # above p/2 means the negative representative xp - p
        xq = xp[np.newaxis] % q_col
        rem = np.where(
            xp[np.newaxis] > half,
            modadd_vec(xq, p_neg.reshape(col), q_col),
            xq,
        )
        diff = modsub_vec(residues[:-1], rem, q_col)
        return modmul_vec(diff, p_inv.reshape(col), q_col)


@dataclass
class RnsPoly:
    """A ring polynomial stored as a stack of per-limb residue vectors.

    This is the workhorse representation of the HE layer: shape
    ``(L, n)`` ``uint64``, limb ``i`` holding the coefficients mod
    ``basis.moduli[i]``.
    """

    basis: RnsBasis
    limbs: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        self.limbs = np.asarray(self.limbs, dtype=np.uint64)
        if self.limbs.shape != (len(self.basis), self.basis.n):
            raise ValueError(
                f"limbs shape {self.limbs.shape} != "
                f"({len(self.basis)}, {self.basis.n})"
            )

    @classmethod
    def zero(cls, basis: RnsBasis) -> "RnsPoly":
        return cls(basis, np.zeros((len(basis), basis.n), dtype=np.uint64))

    @classmethod
    def from_int_coeffs(cls, basis: RnsBasis, coeffs: np.ndarray) -> "RnsPoly":
        """Build from (possibly signed / bigint) integer coefficients."""
        return cls(basis, basis.decompose(np.asarray(coeffs, dtype=object)))

    def to_int_coeffs(self) -> np.ndarray:
        """Exact coefficients in ``[0, Q)`` (object ints)."""
        return self.basis.compose(self.limbs)

    def to_centered_coeffs(self) -> np.ndarray:
        """Exact coefficients centered in ``(-Q/2, Q/2]``."""
        return self.basis.compose_centered(self.limbs)
