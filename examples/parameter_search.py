#!/usr/bin/env python3
"""Designing the next CHAM: parameter + design-space search.

Uses the parameter generator and the DSE/resource/floorplan models to
sketch a hypothetical "CHAM-2" operating point (N = 8192, three 40-bit
limbs — enough depth for one ciphertext-ciphertext multiplication) and
checks what it would cost on the same VU9P.

Usage: python examples/parameter_search.py
"""

from repro.he.paramgen import ParamRequest, generate_params, low_hamming_prime_menu
from repro.hw.arch import ChamConfig, EngineConfig, NttUnitConfig
from repro.hw.dse import achievable_clock_mhz, enumerate_design_space, pareto_front
from repro.hw.pipeline import MacroPipeline
from repro.hw.resources import total_resources, utilization


def main() -> None:
    print("Parameter + design search for a hypothetical CHAM-2")
    print("=" * 60)

    # 1. the prime menu the hardware team picks from
    menu = low_hamming_prime_menu(8192, range(36, 46))
    print("[1] weight-3 NTT primes at N=8192 (the shift-add menu):")
    for bits, primes in menu.items():
        if primes:
            print(f"    {bits} bits: {[hex(q) for q in primes]}")

    # 2. a deeper parameter set
    req = ParamRequest(
        n=8192, ct_modulus_bits=(40, 40, 40), special_bits=45, plain_bits=30
    )
    params = generate_params(req)
    print(f"\n[2] generated set: {params.describe()}")
    print(f"    augmented ciphertext: {params.ct_poly_count_aug} polynomials")

    # 3. what the pipeline would clock at N=8192
    unit = NttUnitConfig(n=8192, n_bfu=4)
    print(f"\n[3] NTT unit at N=8192: {unit.cycles:,} cycles "
          f"(vs 6,144 at N=4096)")
    engine = EngineConfig(ntt_unit=unit)
    stats = MacroPipeline(engine).simulate_hmvp(2048)
    print(f"    one-engine HMVP rate: "
          f"{stats.throughput_rows_per_sec(300e6):,.0f} rows/s")

    # 4. does two-of-these still fit the VU9P?
    cfg = ChamConfig(engine=engine, engines=2)
    util = utilization(total_resources(cfg))
    fits = all(v < 75 for v in util.values())
    print(f"\n[4] two N=8192 engines on VU9P: "
          f"max util {max(util.values()):.1f}% -> fits@75%: {fits}")

    # 5. and where the N=4096 frontier sits for reference
    points = enumerate_design_space(bench_rows=1024)
    front = pareto_front(points)
    best = front[0]
    print(f"\n[5] N=4096 frontier best: {best.label} at "
          f"{best.rows_per_sec:,.0f} rows/s, "
          f"closing ~{achievable_clock_mhz(best):.0f} MHz")
    print("OK")


if __name__ == "__main__":
    main()
