"""Mapping shards onto simulated accelerator nodes, with replication.

A :class:`ClusterNode` is one simulated accelerator host: an RAS runtime
(:class:`repro.hw.runtime.FpgaRuntime` with its own fault injector), a
per-node :class:`repro.core.batch.EncodedMatrixCache`, and one
matrix-resident :class:`repro.core.batch.BatchedHmvp` engine per shard
hosted there (primary or replica) — the same engine-pool shape
:class:`repro.serve.HmvpServer` runs per process, scaled out to K
processes.

:class:`ShardPlacement` assigns every shard a primary node and
``replication - 1`` replicas on distinct nodes.  Primaries are placed by
LPT greedy (longest shard first onto the least-loaded node, the policy
:class:`repro.cluster.partition.PartitionPlanner` estimates with);
replicas go to the least-loaded nodes not already holding the shard.
Replicas encode the shard into their node's cache at placement time, so
failover never pays an encode on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.batch import BatchedHmvp, EncodedMatrixCache
from ..he.bfv import BfvScheme
from ..hw.arch import ChamConfig, cham_default_config
from ..hw.runtime import FaultInjector, FpgaRuntime
from .partition import PartitionError, PartitionPlan

__all__ = ["ClusterNode", "ShardPlacement", "build_nodes"]


@dataclass
class ClusterNode:
    """One simulated accelerator host in the cluster."""

    node_id: int
    runtime: FpgaRuntime
    cache: EncodedMatrixCache
    #: shard_id -> resident engine over that shard's submatrix
    engines: Dict[int, BatchedHmvp] = field(default_factory=dict)
    shards_served: int = 0

    @property
    def busy_cycles(self) -> int:
        return self.runtime.busy_cycles

    def health(self):
        return self.runtime.health()


class ShardPlacement:
    """Shard -> ``[primary, replica, ...]`` node assignment."""

    def __init__(
        self,
        assignments: Dict[int, List[int]],
        nodes: int,
        replication: int,
    ) -> None:
        self.assignments = assignments
        self.nodes = nodes
        self.replication = replication

    @classmethod
    def place(
        cls,
        plan: PartitionPlan,
        nodes: int,
        replication: int,
        shard_costs: Optional[Sequence[int]] = None,
    ) -> "ShardPlacement":
        """LPT-greedy primaries plus least-loaded distinct replicas."""
        if nodes < 1:
            raise PartitionError("need at least one node")
        if not 1 <= replication <= nodes:
            raise PartitionError(
                f"replication {replication} must be in 1..nodes ({nodes})"
            )
        costs = (
            list(shard_costs)
            if shard_costs is not None
            else [s.rows * max(s.col_tiles(plan.ring_n), 1) for s in plan.shards]
        )
        if len(costs) != len(plan.shards):
            raise PartitionError("one cost per shard required")
        loads = [0] * nodes
        # replicas add standby load only; bias placement by primary load
        assignments: Dict[int, List[int]] = {}
        order = sorted(
            range(len(plan.shards)), key=lambda i: costs[i], reverse=True
        )
        for idx in order:
            primary = min(range(nodes), key=loads.__getitem__)
            loads[primary] += costs[idx]
            chosen = [primary]
            while len(chosen) < replication:
                replica = min(
                    (n for n in range(nodes) if n not in chosen),
                    key=loads.__getitem__,
                )
                chosen.append(replica)
            assignments[plan.shards[idx].shard_id] = chosen
        return cls(assignments, nodes=nodes, replication=replication)

    def nodes_for(self, shard_id: int) -> List[int]:
        return self.assignments[shard_id]

    def node_shards(self, node_id: int) -> List[int]:
        """Every shard hosted on a node (as primary or replica)."""
        return sorted(
            sid
            for sid, hosted in self.assignments.items()
            if node_id in hosted
        )

    def validate_against(self, plan: PartitionPlan) -> None:
        shard_ids = {s.shard_id for s in plan.shards}
        if set(self.assignments) != shard_ids:
            raise PartitionError("placement does not cover every shard")
        for sid, hosted in self.assignments.items():
            if not hosted:
                raise PartitionError(f"shard {sid} has no hosting node")
            if len(set(hosted)) != len(hosted):
                raise PartitionError(f"shard {sid} replicas not distinct")
            if any(not 0 <= n < self.nodes for n in hosted):
                raise PartitionError(f"shard {sid} names an unknown node")

    def to_dict(self) -> Dict[str, object]:
        return {
            "nodes": self.nodes,
            "replication": self.replication,
            "assignments": {
                str(sid): hosted
                for sid, hosted in sorted(self.assignments.items())
            },
        }


def build_nodes(
    scheme: BfvScheme,
    matrix,
    plan: PartitionPlan,
    placement: ShardPlacement,
    cham: Optional[ChamConfig] = None,
    fault_injectors: Optional[Sequence[FaultInjector]] = None,
    seed: int = 0,
    fault_rate: float = 0.0,
    register_flip_rate: float = 0.0,
    resets_to_recover: int = 1,
) -> List[ClusterNode]:
    """Construct the node pool and stage every hosted shard's encoding.

    One fault injector per node (explicit list or derived from the rate
    knobs with per-node seeds); ``max_job_retries=0`` so a hang surfaces
    as one FAILED attempt and the failover policy up in the executor —
    reroute to a replica — is the only retry path, mirroring the serving
    layer's division of labor.
    """
    cfg = cham or cham_default_config()
    if fault_injectors is not None and len(fault_injectors) != placement.nodes:
        raise PartitionError("one fault injector per node")
    nodes: List[ClusterNode] = []
    for node_id in range(placement.nodes):
        if fault_injectors is not None:
            faults = fault_injectors[node_id]
        else:
            faults = FaultInjector(
                hang_prob=fault_rate,
                register_flip_prob=register_flip_rate,
                resets_to_recover=resets_to_recover,
                seed=seed + node_id,
            )
        # lane = node_id + 1: pid 0 stays the coordinator's lane in traces
        runtime = FpgaRuntime(
            cfg=cfg, faults=faults, max_job_retries=0, lane=node_id + 1
        )
        nodes.append(
            ClusterNode(
                node_id=node_id,
                runtime=runtime,
                cache=EncodedMatrixCache(capacity=max(len(plan.shards), 1)),
            )
        )
    for shard in plan.shards:
        for node_id in placement.nodes_for(shard.shard_id):
            node = nodes[node_id]
            node.engines[shard.shard_id] = BatchedHmvp(
                scheme, shard.submatrix(matrix), cache=node.cache
            )
    return nodes
