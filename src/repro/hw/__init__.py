"""Hardware layer: cycle-level and analytical models of the CHAM FPGA.

* :mod:`repro.hw.arch` — structural configuration (Fig. 1a) and devices;
* :mod:`repro.hw.ntt_datapath` — the constant-geometry NTT unit (Fig. 3/4);
* :mod:`repro.hw.pipeline` — the 9-stage macro-pipeline with reduce
  buffer and preemption (Section III-A);
* :mod:`repro.hw.resources` — Table II / Table III resource model;
* :mod:`repro.hw.roofline` — Fig. 2a;
* :mod:`repro.hw.dse` — Fig. 2b design-space exploration;
* :mod:`repro.hw.hetero` — Fig. 1b CPU+FPGA interleaving;
* :mod:`repro.hw.perf` — calibrated CPU/GPU/CHAM end-to-end models;
* :mod:`repro.hw.runtime` — RAS runtime simulation (Section III-C);
* :mod:`repro.hw.topology` — interconnect graphs (ring/mesh/fat-tree);
* :mod:`repro.hw.netsim` — deterministic discrete-event network
  simulator with credit-based flow control.
"""

from .arch import (
    ChamConfig,
    EngineConfig,
    FpgaDevice,
    NttUnitConfig,
    U200,
    VU9P,
    cham_default_config,
)
from .ntt_datapath import BankAccessLog, DatapathReport, NttDatapathSim
from .pipeline import MacroPipeline, PipelineStats, simulate_multi_engine
from .resources import (
    ResourceVector,
    TABLE2_REFERENCE,
    TABLE3_NTT_VARIANTS,
    engine_resources,
    ntt_unit_resources,
    platform_resources,
    total_resources,
    utilization,
)
from .roofline import KernelPoint, hmvp_kernel, keyswitch_kernel, ntt_kernel, roofline_points
from .dse import (
    DesignPoint,
    achievable_clock_mhz,
    enumerate_design_space,
    frequency_adjusted_rows_per_sec,
    pareto_front,
    run_dse,
)
from .hetero import ChunkTiming, HeteroSchedule, simulate_hetero
from .perf import (
    ChamPerfModel,
    CpuCostModel,
    GpuCostModel,
    PaillierCostModel,
    hmvp_latency_all,
)
from .floorplan import SLR_COUNT, SlrPlan, auto_floorplan, plan_cham
from .trace import (
    PipelineTrace,
    TraceEvent,
    capture_trace,
    chrome_trace_events,
    render_gantt,
)
from .memory import JobTraffic, StagingBuffer, job_traffic, sustained_bandwidth
from .power import PowerModel, energy_per_hmvp
from .validation import ConsistencyReport, validate_consistency
from .compare import Accelerator, KNOWN_ACCELERATORS, cham_entry, comparison_rows
from .isa import Command, CommandStream, Opcode, StreamExecutor, compile_hmvp
from .runtime import (
    DeviceHangError,
    JobScheduler,
    QueueReport,
    FaultInjector,
    FpgaRuntime,
    HealthReport,
    Job,
    JobState,
    RegisterLoadError,
    VirtualFpga,
)
from .topology import (
    COORDINATOR,
    Link,
    TOPOLOGY_KINDS,
    Topology,
    TopologyError,
    build_topology,
    fat_tree_topology,
    ideal_topology,
    mesh2d_topology,
    ring_topology,
)
from .netsim import (
    Flit,
    MessageRecord,
    NetworkSimulator,
    Router,
    SimulatorEngine,
)

__all__ = [
    "ChamConfig",
    "EngineConfig",
    "FpgaDevice",
    "NttUnitConfig",
    "U200",
    "VU9P",
    "cham_default_config",
    "BankAccessLog",
    "DatapathReport",
    "NttDatapathSim",
    "MacroPipeline",
    "PipelineStats",
    "simulate_multi_engine",
    "ResourceVector",
    "TABLE2_REFERENCE",
    "TABLE3_NTT_VARIANTS",
    "engine_resources",
    "ntt_unit_resources",
    "platform_resources",
    "total_resources",
    "utilization",
    "KernelPoint",
    "hmvp_kernel",
    "keyswitch_kernel",
    "ntt_kernel",
    "roofline_points",
    "DesignPoint",
    "achievable_clock_mhz",
    "frequency_adjusted_rows_per_sec",
    "enumerate_design_space",
    "pareto_front",
    "run_dse",
    "ChunkTiming",
    "HeteroSchedule",
    "simulate_hetero",
    "ChamPerfModel",
    "CpuCostModel",
    "GpuCostModel",
    "PaillierCostModel",
    "hmvp_latency_all",
    "JobTraffic",
    "StagingBuffer",
    "job_traffic",
    "sustained_bandwidth",
    "PowerModel",
    "ConsistencyReport",
    "validate_consistency",
    "Accelerator",
    "KNOWN_ACCELERATORS",
    "cham_entry",
    "comparison_rows",
    "energy_per_hmvp",
    "PipelineTrace",
    "TraceEvent",
    "capture_trace",
    "chrome_trace_events",
    "render_gantt",
    "SLR_COUNT",
    "SlrPlan",
    "auto_floorplan",
    "plan_cham",
    "Command",
    "CommandStream",
    "Opcode",
    "StreamExecutor",
    "compile_hmvp",
    "DeviceHangError",
    "JobScheduler",
    "QueueReport",
    "FaultInjector",
    "FpgaRuntime",
    "HealthReport",
    "Job",
    "JobState",
    "RegisterLoadError",
    "VirtualFpga",
    "COORDINATOR",
    "Link",
    "TOPOLOGY_KINDS",
    "Topology",
    "TopologyError",
    "build_topology",
    "fat_tree_topology",
    "ideal_topology",
    "mesh2d_topology",
    "ring_topology",
    "Flit",
    "MessageRecord",
    "NetworkSimulator",
    "Router",
    "SimulatorEngine",
]
