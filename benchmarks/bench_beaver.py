"""E9 — Fig. 7c: Beaver triple generation, 49x-144x over Delphi.

Delphi's preprocessing generates matrix triples with a GAZELLE-style
(rotation-heavy, diagonal-encoded) linear HE evaluation on CPU; the paper
improves the algorithm (coefficient-encoded HMVP) and runs it on CHAM.
The speedup grows with the layer's output dimension because the baseline
pays one key-switch per rotation while CHAM pays one per packed row at
hardware rates.
"""

import numpy as np
import pytest
from conftest import print_table

from repro.apps.beaver import BeaverGenerator, verify_triple
from repro.core.complexity import diagonal_cost
from repro.hw.perf import ChamPerfModel, CpuCostModel

#: layer shapes (output rows m, input cols n) for triple generation
LAYERS = [(1024, 4096), (2048, 4096), (4096, 4096), (8192, 4096)]


def delphi_baseline_s(m: int, n: int) -> float:
    """Delphi's LHE preprocessing: diagonal-encoded HMVP on CPU."""
    cpu = CpuCostModel()
    cost = diagonal_cost(m, n, 4096)
    return (
        cost.rotations * cpu.keyswitch_ms * 1e-3
        + cost.he_multiplies * cpu.dot_product_s()
    )


def test_figure_7c():
    cham = ChamPerfModel()
    rows = []
    ratios = []
    for m, n in LAYERS:
        base = delphi_baseline_s(m, n)
        ours = cham.hmvp_s(m, n)
        ratio = base / ours
        ratios.append(ratio)
        rows.append((f"{m}x{n}", f"{base:.2f}", f"{ours * 1e3:.0f}", f"{ratio:.0f}x"))
    print_table(
        "Fig. 7c: Beaver triple generation per triple",
        ["layer", "Delphi baseline (s)", "CHAM (ms)", "speedup"],
        rows,
    )
    # the paper's 49x .. 144x band
    assert 40 <= min(ratios) <= 60
    assert 120 <= max(ratios) <= 170
    assert ratios == sorted(ratios)  # grows with layer size


def test_triple_throughput():
    """Triples/second = HMVP invocations/second on CHAM."""
    cham = ChamPerfModel()
    per_triple = cham.hmvp_s(4096, 4096)
    rate = 1.0 / per_triple
    print(f"\nCHAM triple rate (4096x4096 layers): {rate:.1f}/s")
    assert rate > 5


def test_functional_triples_back_the_model(bench_scheme, rng):
    """The modeled workload is the real one: generate and verify triples
    through the actual HE pipeline at toy scale."""
    gen = BeaverGenerator(bench_scheme, seed=21)
    w = rng.integers(-20, 20, (6, 128))
    triples = gen.generate_batch(w, 2)
    assert all(verify_triple(t) for t in triples)
    assert gen.stats.ops.dot_products == 12


@pytest.mark.benchmark(group="beaver")
def test_perf_triple_generation(benchmark, bench_scheme, rng):
    gen = BeaverGenerator(bench_scheme, seed=31)
    w = rng.integers(-20, 20, (4, 128))
    benchmark(gen.generate, w)
