#!/usr/bin/env python3
"""Beaver triple generation for secure matrix-vector products (Fig. 7c).

Generates matrix Beaver triples with the real HMVP pipeline, verifies
``c1 + c2 = W (a1 + a2)``, demonstrates consuming a triple in a secure
two-party multiplication, and projects generation rates onto the paper's
Delphi comparison.

Usage: python examples/beaver_triples.py
"""

import numpy as np

from repro.apps.beaver import BeaverGenerator, verify_triple
from repro.he.bfv import BfvScheme
from repro.he.params import toy_params
from repro.hw.perf import ChamPerfModel, CpuCostModel
from repro.core.complexity import diagonal_cost


def main() -> None:
    print("Beaver triples via homomorphic matrix-vector products")
    print("=" * 60)

    scheme = BfvScheme(toy_params(n=128, plain_bits=40), seed=7, max_pack=128)
    gen = BeaverGenerator(scheme, seed=8)
    rng = np.random.default_rng(9)

    w = rng.integers(-100, 100, (16, 128))
    triples = gen.generate_batch(w, 3)
    assert all(verify_triple(t) for t in triples)
    print(f"generated {len(triples)} triples for a {w.shape[0]}x{w.shape[1]} "
          f"server matrix — all verified")
    print(f"HE work: {gen.stats.ops.dot_products} dot products, "
          f"{gen.stats.ops.pack_reductions} pack reductions")

    # consume one triple: secure W*x from shares without revealing x
    t = scheme.params.plain_modulus
    triple = triples[0]
    x = rng.integers(-1000, 1000, 128).astype(object)
    a = (triple.a1.astype(object) + triple.a2.astype(object)) % t
    epsilon = (x - a) % t  # the only value the parties open
    wx = (
        triple.matrix.astype(object) @ epsilon
        + triple.c1.astype(object)
        + triple.c2.astype(object)
    ) % t
    want = (triple.matrix.astype(object) @ x) % t
    assert np.array_equal(wx, want)
    print("online phase: secure W*x from one opened masked vector — correct")

    # the Fig. 7c projection: Delphi's rotation-based LHE vs CHAM
    print("\nprojected per-triple generation time (Delphi layers):")
    cham, cpu = ChamPerfModel(), CpuCostModel()
    for m in (1024, 2048, 4096, 8192):
        cost = diagonal_cost(m, 4096, 4096)
        base = (
            cost.rotations * cpu.keyswitch_ms * 1e-3
            + cost.he_multiplies * cpu.dot_product_s()
        )
        ours = cham.hmvp_s(m, 4096)
        print(f"  {m:5d}x4096: Delphi-CPU {base:6.2f}s | CHAM "
              f"{ours * 1e3:6.0f}ms | {base / ours:5.0f}x  (paper: 49-144x)")
    print("OK")


if __name__ == "__main__":
    main()
