"""Unified observability layer: metrics registry + span tracer.

The islands of visibility the reproduction accumulated — the ASCII gantt
in :mod:`repro.hw.trace`, the ad-hoc counters in
:class:`repro.hw.runtime.FpgaRuntime`, benchmark stdout — all drain into
this package so that performance and robustness claims are auditable
from one place:

* :mod:`repro.obs.metrics` — counters / gauges / histograms in a
  thread-safe :class:`MetricsRegistry` (the process default is
  :data:`REGISTRY`);
* :mod:`repro.obs.tracing` — nested wall-clock (or synthetic-timebase)
  spans in a :class:`Tracer` (:data:`TRACER`), exported as JSONL or
  Chrome trace-event JSON for chrome://tracing / Perfetto.

Both default instances start **disabled**: every instrumented call site
in the library reduces to a single branch, so the no-op overhead is
unmeasurable.  Turn them on around a region of interest::

    from repro import obs

    obs.enable_metrics()
    obs.enable_tracing()
    ...  # run HMVPs, simulations, training loops
    print(obs.REGISTRY.snapshot())
    obs.TRACER.export_chrome_trace("trace.json")

or use the CLI: ``python -m repro metrics`` and the ``--trace-out FILE``
flag on ``demo`` / ``trace`` / ``report``.

Instrumented call sites use the module-level helpers (:func:`inc`,
:func:`set_gauge`, :func:`observe`, :func:`span`), which write to the
default instances.
"""

from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
)
from .tracing import (
    TRACER,
    Span,
    TraceContext,
    Tracer,
    current_context,
    default_tracer,
    disable_tracing,
    enable_tracing,
    run_with_context,
    span,
    tracing_enabled,
    use_context,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "default_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "Span",
    "TraceContext",
    "Tracer",
    "TRACER",
    "current_context",
    "use_context",
    "run_with_context",
    "default_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "span",
    "inc",
    "set_gauge",
    "observe",
    "counter_value",
]


def inc(name: str, n: int = 1) -> None:
    """Increment a counter on the default registry (no-op when disabled)."""
    if REGISTRY.enabled:
        REGISTRY.inc(name, n)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the default registry (no-op when disabled)."""
    if REGISTRY.enabled:
        REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the default registry."""
    if REGISTRY.enabled:
        REGISTRY.observe(name, value)


def counter_value(name: str) -> int:
    """Read a counter off the default registry (0 when never written)."""
    return REGISTRY.counter_value(name)
