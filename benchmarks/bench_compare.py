"""Extension bench — the §I accelerator landscape as a table.

Regenerates the related-work comparison the introduction sketches (FPGA
operator accelerators, large ASICs, GPUs) with CHAM's position: the only
whole-kernel, multi-scheme design, at FPGA cost.
"""

import pytest
from conftest import print_table

from repro.hw.compare import KNOWN_ACCELERATORS, cham_entry, comparison_rows


def test_landscape_table():
    print_table(
        "§I landscape: published HE accelerators",
        ["design", "venue", "tech", "clock", "NTT ATP", "mm^2", "scope", "multi-scheme"],
        comparison_rows(),
    )
    cham = cham_entry()
    assert cham.scope == "kernel"
    assert cham.multi_scheme


def test_asic_area_criticism():
    """'The chip area of these ASICs ... is extremely large'."""
    asic_areas = [
        a.area_mm2
        for a in KNOWN_ACCELERATORS.values()
        if a.technology == "ASIC" and a.area_mm2
    ]
    assert min(asic_areas) >= 100
    assert max(asic_areas) >= 350


def test_operator_accelerators_motivate_cham():
    """HEAX/F1 target operators; the roofline shows why that caps them."""
    operator_designs = [
        a for a in KNOWN_ACCELERATORS.values() if a.scope == "operator"
    ]
    assert len(operator_designs) >= 2
    from repro.hw.roofline import roofline_points

    pts = roofline_points()
    assert pts["NTT"].peak_fraction < 0.1  # what an operator design can use


@pytest.mark.benchmark(group="compare")
def test_perf_rows(benchmark):
    benchmark(comparison_rows)
