"""Differential property suite for the kernel fast paths.

Every optimized kernel in this repo keeps a slow, obviously-correct
counterpart as its oracle:

* ``modmul_vec`` (float-Barrett, unsigned-min selection, optional numba
  JIT) vs ``modmul_vec_split`` (the 20-bit split-operand formula);
* ``modadd_vec`` / ``modsub_vec`` (unsigned-min selection) vs plain
  Python-int modular arithmetic;
* ``key_switch_raw`` (fused-limb, one NTT sweep, combined key stack) vs
  ``key_switch_raw_loop`` (the original per-digit / per-limb double
  loop).

The contract everywhere is *bit identity*, not approximate agreement:
HE noise analysis and the golden-vector tests both assume the RNS limbs
are exact.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he.keyswitch import key_switch_raw, key_switch_raw_loop
from repro.math import jit as repro_jit
from repro.math.modular import (
    MAX_MODULUS_BITS,
    modadd_vec,
    modmul_vec,
    modmul_vec_barrett,
    modmul_vec_split,
    modsub_vec,
)

# Odd moduli spanning the supported widths, including the paper's 39-bit
# key-switch prime and the maximum 41-bit width where the float-Barrett
# error bound is tightest.
_moduli = st.integers(min_value=1 << 38, max_value=(1 << MAX_MODULUS_BITS) - 1).map(
    lambda q: q | 1
)


def _arrays(rng_seed: int, q: int, size: int = 64):
    rng = np.random.default_rng(rng_seed)
    a = rng.integers(0, q, size, dtype=np.uint64)
    b = rng.integers(0, q, size, dtype=np.uint64)
    return a, b


# -- Barrett vs split oracle ---------------------------------------------------


@given(q=_moduli, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_barrett_matches_split_oracle(q, seed):
    a, b = _arrays(seed, q)
    assert np.array_equal(modmul_vec_barrett(a, b, q), modmul_vec_split(a, b, q))


@given(q=_moduli)
@settings(max_examples=100, deadline=None)
def test_barrett_worst_case_operands(q):
    """(q-1)^2 maximizes the quotient and therefore the float estimate's
    absolute error — the exact corner the min-trick proof covers."""
    edge = np.array([q - 1, q - 1, 1, 0], dtype=np.uint64)
    rev = edge[::-1].copy()
    assert np.array_equal(
        modmul_vec_barrett(edge, rev, q), modmul_vec_split(edge, rev, q)
    )
    sq = np.full(8, q - 1, dtype=np.uint64)
    assert np.array_equal(
        modmul_vec_barrett(sq, sq, q), modmul_vec_split(sq, sq, q)
    )


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_barrett_column_modulus_matches_per_limb(seed):
    """An array-modulus column reduces each leading slice by its own
    modulus, bit-identically to per-limb scalar calls."""
    qs = np.array(
        [(1 << 38) + 7, (1 << 39) + 21, (1 << MAX_MODULUS_BITS) - 21],
        dtype=np.uint64,
    )
    rng = np.random.default_rng(seed)
    a = np.stack([rng.integers(0, q, 32, dtype=np.uint64) for q in qs])
    b = np.stack([rng.integers(0, q, 32, dtype=np.uint64) for q in qs])
    got = modmul_vec(a, b, qs.reshape(-1, 1))
    for i, q in enumerate(qs):
        assert np.array_equal(got[i], modmul_vec_split(a[i], b[i], int(q)))


# -- unsigned-min add/sub vs Python-int reference ------------------------------


@given(q=_moduli, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_unsigned_min_addsub_match_reference(q, seed):
    a, b = _arrays(seed, q, size=32)
    ref_add = np.array([(int(x) + int(y)) % q for x, y in zip(a, b)], np.uint64)
    ref_sub = np.array([(int(x) - int(y)) % q for x, y in zip(a, b)], np.uint64)
    assert np.array_equal(modadd_vec(a, b, q), ref_add)
    assert np.array_equal(modsub_vec(a, b, q), ref_sub)


@given(q=_moduli)
@settings(max_examples=100, deadline=None)
def test_unsigned_min_addsub_edge_operands(q):
    """0 and q-1 exercise both branches of the min selection: the sum at
    exactly q must reduce to 0 and the difference at 0 must stay 0."""
    top = np.array([q - 1, q - 1, 0, 1], dtype=np.uint64)
    bot = np.array([1, 0, 0, q - 1], dtype=np.uint64)
    assert [int(v) for v in modadd_vec(top, bot, q)] == [0, q - 1, 0, 0]
    assert [int(v) for v in modsub_vec(top, bot, q)] == [q - 2, q - 1, 0, 2]


# -- fused key-switch vs the double-loop oracle --------------------------------


def _random_limb_stack(ctx, rng, batch_shape=()):
    basis = ctx.ct_basis
    shape = batch_shape + (ctx.n,)
    return np.stack(
        [rng.integers(0, q, shape, dtype=np.uint64) for q in basis]
    )


@pytest.fixture(scope="module")
def ks_fixture(ctx128, sk128):
    from repro.he.keys import generate_keyswitch_key, generate_secret_key

    other = generate_secret_key(ctx128)
    return generate_keyswitch_key(ctx128, other, sk128)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_fused_keyswitch_bit_identical_to_loop(ctx128, ks_fixture, seed):
    rng = np.random.default_rng(seed)
    c = _random_limb_stack(ctx128, rng)
    d0_f, d1_f = key_switch_raw(ctx128, c, ks_fixture)
    d0_l, d1_l = key_switch_raw_loop(ctx128, c, ks_fixture)
    for limb in range(d0_f.shape[0]):
        assert np.array_equal(d0_f[limb], d0_l[limb])
        assert np.array_equal(d1_f[limb], d1_l[limb])


@pytest.mark.parametrize("batch_shape", [(3,), (2, 4)])
def test_fused_keyswitch_batched_matches_loop(ctx128, ks_fixture, batch_shape):
    """Batched (L, *batch, n) stacks must equal the loop oracle run on
    every polynomial of the stack individually."""
    rng = np.random.default_rng(7)
    c = _random_limb_stack(ctx128, rng, batch_shape)
    d0_f, d1_f = key_switch_raw(ctx128, c, ks_fixture)
    flat = c.reshape(c.shape[0], -1, ctx128.n)
    f0 = d0_f.reshape(d0_f.shape[0], -1, ctx128.n)
    f1 = d1_f.reshape(d1_f.shape[0], -1, ctx128.n)
    for j in range(flat.shape[1]):
        d0_l, d1_l = key_switch_raw_loop(ctx128, flat[:, j], ks_fixture)
        assert np.array_equal(f0[:, j], d0_l)
        assert np.array_equal(f1[:, j], d1_l)


# -- JIT differential (numba CI leg; no-op where numba is absent) --------------


def test_jit_disabled_without_flag_or_numba():
    """The flag alone must not enable dispatch when numba is absent, and
    configure() reports the effective state truthfully."""
    state = repro_jit.configure()
    try:
        effective = repro_jit.configure(True)
        assert effective == repro_jit.available()
        assert repro_jit.configure(False) is False
    finally:
        repro_jit.configure(state)


@pytest.mark.skipif(not repro_jit.available(), reason="numba not installed")
@given(q=_moduli, seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_jit_kernels_match_numpy_oracle(q, seed):
    a, b = _arrays(seed, q)
    assert np.array_equal(repro_jit.modmul(a, b, q), modmul_vec_split(a, b, q))
    assert np.array_equal(repro_jit.modadd(a, b, q), modadd_vec(a, b, q))
    assert np.array_equal(repro_jit.modsub(a, b, q), modsub_vec(a, b, q))


@pytest.mark.skipif(not repro_jit.available(), reason="numba not installed")
def test_jit_dispatch_is_bit_identical_end_to_end(ctx128, ks_fixture):
    """With dispatch flipped on, the whole fused key-switch must stay
    bit-identical to the pure-NumPy run."""
    rng = np.random.default_rng(21)
    c = _random_limb_stack(ctx128, rng)
    state = repro_jit.configure()
    try:
        repro_jit.configure(False)
        ref = key_switch_raw(ctx128, c, ks_fixture)
        repro_jit.configure(True)
        got = key_switch_raw(ctx128, c, ks_fixture)
    finally:
        repro_jit.configure(state)
    assert np.array_equal(got[0], ref[0])
    assert np.array_equal(got[1], ref[1])
