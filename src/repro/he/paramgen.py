"""Parameter-set generation beyond the paper's fixed point.

CHAM hard-wires one parameter set (§II-F); the natural extension — and
what a deployment team asks for first — is regenerating the same *style*
of parameters for other operating points: a larger ring for deeper
circuits, more limbs for more plaintext headroom, a different
key-switching margin.  :func:`generate_params` searches for

* low-Hamming-weight (three set bits), NTT-friendly ciphertext primes of
  the requested widths — the property that makes CHAM's modular
  reduction three shift-adds;
* a dominating special modulus for hybrid key-switching;
* an odd (prime) plaintext modulus sized to the requested precision;

and validates the result against the HE-standard security table.  The
paper's production set falls out of ``generate_params(4096, (35, 35),
39, 40)`` exactly, which the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..math.primes import find_low_hamming_ntt_prime, find_ntt_prime, is_ntt_friendly
from .params import CheParams, SECURITY_TABLE, default_plain_modulus, estimate_security

__all__ = ["ParamRequest", "generate_params", "low_hamming_prime_menu"]


@dataclass(frozen=True)
class ParamRequest:
    """What the caller needs from a parameter set."""

    n: int = 4096
    ct_modulus_bits: Tuple[int, ...] = (35, 35)
    special_bits: int = 39
    plain_bits: int = 40
    min_security: int = 128

    def total_bits(self) -> int:
        return sum(self.ct_modulus_bits) + self.special_bits


def _distinct_low_hamming_primes(bits: int, n: int, count: int) -> List[int]:
    """Up to ``count`` distinct weight-3 NTT primes of width ``bits``.

    The weight-3 family ``2^(bits-1) + 2^e + 1`` is sparse; when it runs
    out we fall back to generic NTT primes of the same width (documented
    degradation: reduction needs Barrett instead of shift-adds).
    """
    log2n = (2 * n).bit_length() - 1
    found: List[int] = []
    for e in range(log2n, bits - 1):
        q = (1 << (bits - 1)) + (1 << e) + 1
        if is_ntt_friendly(q, n):
            found.append(q)
            if len(found) == count:
                return found
    skip = 0
    while len(found) < count:
        q = find_ntt_prime(bits, n, skip=skip)
        if q not in found:
            found.append(q)
        skip += 1
    return found


def low_hamming_prime_menu(n: int, bits_range: Sequence[int]) -> dict:
    """All weight-3 NTT primes per width — the hardware designer's menu."""
    out = {}
    log2n = (2 * n).bit_length() - 1
    for bits in bits_range:
        primes = []
        for e in range(log2n, bits - 1):
            q = (1 << (bits - 1)) + (1 << e) + 1
            if is_ntt_friendly(q, n):
                primes.append(q)
        out[bits] = primes
    return out


def generate_params(request: ParamRequest = ParamRequest()) -> CheParams:
    """Search a CHAM-style parameter set for the request.

    Raises ``ValueError`` when the request cannot reach the required
    security level at the given ring size (the caller should grow ``n``).
    """
    n = request.n
    if n not in SECURITY_TABLE and n >= 1024:
        raise ValueError(f"no security data for n={n}")
    if n >= 1024:
        projected = estimate_security(n, request.total_bits())
        if projected < request.min_security:
            raise ValueError(
                f"{request.total_bits()}-bit modulus at n={n} gives only "
                f"~{projected}-bit security (< {request.min_security}); "
                "increase n or shrink the moduli"
            )

    # group equal widths so duplicates are avoided within a width class
    by_width: dict = {}
    for bits in request.ct_modulus_bits:
        by_width[bits] = by_width.get(bits, 0) + 1
    primes_by_width = {
        bits: _distinct_low_hamming_primes(bits, n, count)
        for bits, count in by_width.items()
    }
    ct_moduli: List[int] = []
    cursor = {bits: 0 for bits in by_width}
    for bits in request.ct_modulus_bits:
        ct_moduli.append(primes_by_width[bits][cursor[bits]])
        cursor[bits] += 1

    try:
        special = find_low_hamming_ntt_prime(request.special_bits, n)
    except ValueError:
        special = find_ntt_prime(request.special_bits, n)
    if special in ct_moduli:
        special = find_ntt_prime(request.special_bits, n, skip=1)

    return CheParams(
        n=n,
        ct_moduli=tuple(ct_moduli),
        special_modulus=special,
        plain_modulus=default_plain_modulus(request.plain_bits),
    )
