"""Tests for the lint CLI surface: ``--diff``, ``--sarif``, ``--ci``.

The SARIF tests check the invariants the 2.1.0 schema enforces on the
subset we emit (the schema file itself is not vendored): required
top-level properties, the result ``level`` vocabulary, rule catalog /
``ruleIndex`` consistency, and relative-URI artifact locations under a
declared ``uriBaseId``.  GitHub code scanning rejects files that break
any of these.
"""

import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis import (
    SARIF_VERSION,
    all_rules,
    changed_python_files,
    diagnostics_to_sarif,
    get_rules,
    lint_source,
)
from repro.cli import main

ROOT = Path(__file__).resolve().parents[1]

_FINDING_SRC = (
    "def f(basis, scheme, v):\n"
    "    ct = scheme.encrypt(v)\n"
    "    up = basis.extend_to(ct)\n"
    "    return up\n"  # aug-basis value escapes -> REPRO204
)


def _sample_diags():
    diags = lint_source(_FINDING_SRC, filename="src/repro/sample.py")
    assert diags, "fixture must produce at least one finding"
    return diags


# ---------------------------------------------------------------------------
# SARIF exporter


class TestSarifExport:
    def test_top_level_shape(self):
        log = diagnostics_to_sarif(_sample_diags())
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        assert len(log["runs"]) == 1
        driver = log["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro.analysis"
        assert "SRCROOT" in log["runs"][0]["originalUriBaseIds"]

    def test_rule_catalog_covers_registry_even_when_clean(self):
        log = diagnostics_to_sarif([])
        driver = log["runs"][0]["tool"]["driver"]
        ids = [r["id"] for r in driver["rules"]]
        assert ids == [rule.id for rule in all_rules()]
        for descriptor in driver["rules"]:
            assert descriptor["shortDescription"]["text"]
            assert descriptor["fullDescription"]["text"]
            assert descriptor["defaultConfiguration"]["level"] in (
                "none", "note", "warning", "error",
            )
        assert log["runs"][0]["results"] == []

    def test_results_reference_the_catalog(self):
        log = diagnostics_to_sarif(_sample_diags())
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert result["level"] in ("none", "note", "warning", "error")
            assert result["message"]["text"]
            idx = result["ruleIndex"]
            assert rules[idx]["id"] == result["ruleId"]
            loc = result["locations"][0]["physicalLocation"]
            art = loc["artifactLocation"]
            assert art["uriBaseId"] == "SRCROOT"
            assert not art["uri"].startswith("/")
            assert loc["region"]["startLine"] >= 1
            assert loc["region"]["startColumn"] >= 1

    def test_restricted_rule_set_narrows_the_catalog(self):
        rules = get_rules(["REPRO204"])
        log = diagnostics_to_sarif(_sample_diags(), rules=rules)
        driver = log["runs"][0]["tool"]["driver"]
        assert [r["id"] for r in driver["rules"]] == ["REPRO204"]
        for result in log["runs"][0]["results"]:
            if result["ruleId"] == "REPRO204":
                assert result["ruleIndex"] == 0

    def test_json_serializable(self):
        text = json.dumps(diagnostics_to_sarif(_sample_diags()))
        assert json.loads(text)["version"] == "2.1.0"


# ---------------------------------------------------------------------------
# --diff scoping


class TestChangedPythonFiles:
    @pytest.fixture()
    def repo(self, tmp_path):
        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True,
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            )

        git("init", "-q")
        git("config", "user.email", "t@t")
        git("config", "user.name", "t")
        (tmp_path / "kept.py").write_text("x = 1\n")
        (tmp_path / "doomed.py").write_text("y = 2\n")
        (tmp_path / "notes.md").write_text("prose\n")
        git("add", "-A")
        git("commit", "-qm", "base")
        return tmp_path, git

    def test_modified_new_and_untracked_py_only(self, repo):
        root, git = repo
        (root / "kept.py").write_text("x = 2\n")
        (root / "doomed.py").unlink()
        (root / "fresh.py").write_text("z = 3\n")
        (root / "notes.md").write_text("more prose\n")
        changed = changed_python_files("HEAD", root=root)
        assert [p.name for p in changed] == ["fresh.py", "kept.py"]

    def test_clean_tree_is_empty(self, repo):
        root, _ = repo
        assert changed_python_files("HEAD", root=root) == []

    def test_unknown_ref_raises(self, repo):
        root, _ = repo
        with pytest.raises(RuntimeError):
            changed_python_files("no-such-ref", root=root)


# ---------------------------------------------------------------------------
# CLI wiring


class TestLintCli:
    def test_sarif_file_written_with_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(_FINDING_SRC)
        out = tmp_path / "findings.sarif"
        code = main(
            ["lint", str(bad), "--rule", "REPRO204", "--sarif", str(out)]
        )
        capsys.readouterr()
        assert code == 1
        log = json.loads(out.read_text())
        assert log["version"] == "2.1.0"
        results = log["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"REPRO204"}

    def test_diff_against_head_exits_zero_on_clean_tree(
        self, tmp_path, capsys, monkeypatch
    ):
        # scope to a throwaway repo so the test is independent of this
        # checkout's working-tree state
        subprocess.run(
            ["git", "init", "-q"], cwd=tmp_path, check=True
        )
        monkeypatch.setattr(
            "repro.analysis.toolchain.repo_root", lambda: tmp_path
        )
        monkeypatch.setattr("repro.analysis.repo_root", lambda: tmp_path)
        out = tmp_path / "empty.sarif"
        code = main(["lint", "--diff", "HEAD", "--sarif", str(out)])
        stdout = capsys.readouterr().out
        # a bare `git init` repo has no HEAD yet -> usage error (2);
        # with a HEAD and no changes -> "no .py files changed" (0)
        if code == 0:
            assert "no .py files changed" in stdout
            assert json.loads(out.read_text())["runs"][0]["results"] == []
        else:
            assert code == 2

    def test_diff_unknown_ref_is_usage_error(self, capsys):
        code = main(["lint", "--diff", "definitely-not-a-ref"])
        capsys.readouterr()
        assert code == 2

    def test_ci_writes_sarif_and_json_artifacts(self, tmp_path, capsys):
        sarif = tmp_path / "ci.sarif"
        report = tmp_path / "ci.json"
        code = main(
            ["lint", "--ci", "--sarif", str(sarif),
             "--json-out", str(report)]
        )
        capsys.readouterr()
        assert code == 0, "src/repro must lint clean in CI mode"
        log = json.loads(sarif.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"] == []
        catalog = log["runs"][0]["tool"]["driver"]["rules"]
        assert len(catalog) == len(all_rules())
        payload = json.loads(report.read_text())
        assert payload["ok"] is True
        assert payload["diagnostics"] == []

    def test_list_rules_includes_dataflow_and_locks(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REPRO101", "REPRO204", "REPRO210", "REPRO211"):
            assert rule_id in out


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
