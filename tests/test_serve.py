"""Tests for the async fault-tolerant serving layer (repro.serve).

The load-bearing invariant throughout: *zero dropped* — every admitted
request reaches exactly one terminal outcome (ok / degraded / rejected /
deadline), under every injected fault pattern.
"""

import asyncio
import json
import math

import numpy as np
import pytest

from repro import obs
from repro.hw.runtime import FaultInjector
from repro.serve import (
    HmvpServer,
    RequestStatus,
    ServeConfig,
    ServeOutcome,
    ServeReport,
    serve_requests,
)


@pytest.fixture(scope="module")
def matrix8(scheme128):
    rng = np.random.default_rng(0x5E12)
    return rng.integers(-40, 40, (8, 128))


@pytest.fixture(scope="module")
def vectors8(scheme128):
    rng = np.random.default_rng(0x5E13)
    return [rng.integers(-40, 40, 128) for _ in range(12)]


@pytest.fixture(scope="module")
def cts8(scheme128, vectors8):
    return [scheme128.encrypt_vector(v) for v in vectors8]


def _expected(matrix, vector):
    return matrix.astype(object) @ vector.astype(object)


def test_clean_serving_completes_everything(scheme128, matrix8, vectors8, cts8):
    config = ServeConfig(engines=2, max_batch=4, queue_capacity=64, seed=1)
    rep = serve_requests(scheme128, matrix8, cts8, config)
    assert rep.submitted == len(cts8)
    assert rep.ok == len(cts8)
    assert rep.degraded == rep.rejected == rep.deadline_expired == 0
    assert rep.dropped == 0
    for o in rep.outcomes:
        assert o.status is RequestStatus.OK
        assert np.array_equal(
            o.result.decrypt(scheme128),
            _expected(matrix8, vectors8[o.request_id]),
        )
        assert o.total_ms >= 0.0
        assert o.engine in (0, 1)


def test_matrix_encoded_once_across_engines(scheme128, matrix8, cts8):
    config = ServeConfig(engines=3, max_batch=4, queue_capacity=64, seed=2)

    async def _run():
        server = HmvpServer(scheme128, matrix8, config)
        await server.start()
        futures = [await server.submit(ct) for ct in cts8[:4]]
        await asyncio.gather(*futures)
        await server.close()
        return server

    server = asyncio.run(_run())
    # one shared cache: the first engine encodes, the other two hit
    assert server.cache.misses == 1
    assert server.cache.hits == 2


def test_scripted_faults_all_retried_to_success(scheme128, matrix8, vectors8, cts8):
    """Every first offload attempt hangs, every retry runs: all requests
    complete OK with exactly one retry each — deterministic, no
    probability in the loop."""
    config = ServeConfig(
        engines=1,
        max_batch=4,
        queue_capacity=64,
        max_retries=2,
        backoff_base_ms=0.1,
        seed=3,
    )
    injectors = [FaultInjector(hang_script=[True, False] * len(cts8))]

    async def _run():
        server = HmvpServer(
            scheme128, matrix8, config, fault_injectors=injectors
        )
        await server.start()
        futures = [await server.submit(ct) for ct in cts8]
        outcomes = list(await asyncio.gather(*futures))
        await server.close()
        return server.report(outcomes, wall_s=1.0)

    rep = asyncio.run(_run())
    assert rep.ok == len(cts8)
    assert rep.dropped == 0
    assert all(o.retries == 1 for o in rep.outcomes)
    assert rep.engine_health[0].job_retries == len(cts8)
    assert rep.engine_health[0].hangs_detected == len(cts8)


def test_exhausted_retries_degrade_to_cpu(scheme128, matrix8, vectors8, cts8):
    """A permanently-hanging device degrades every request to the CPU
    path; results stay exact and nothing is dropped."""
    config = ServeConfig(
        engines=2,
        max_batch=4,
        queue_capacity=64,
        fault_rate=1.0,
        max_retries=1,
        backoff_base_ms=0.1,
        seed=4,
    )
    rep = serve_requests(scheme128, matrix8, cts8, config)
    assert rep.degraded == len(cts8)
    assert rep.ok == 0
    assert rep.dropped == 0
    for o in rep.outcomes:
        assert o.status is RequestStatus.DEGRADED
        assert o.retries == 1
        assert o.cycles > 0  # CPU-model priced
        assert np.array_equal(
            o.result.decrypt(scheme128),
            _expected(matrix8, vectors8[o.request_id]),
        )


def test_admission_sheds_on_full_queue(scheme128, matrix8, cts8):
    """Submissions beyond the bound resolve immediately as REJECTED and
    bump serve.rejected; admitted ones still complete."""
    obs.enable_metrics()
    obs.REGISTRY.reset()
    config = ServeConfig(
        engines=1, max_batch=2, queue_capacity=2, seed=5
    )

    async def _run():
        server = HmvpServer(scheme128, matrix8, config)
        await server.start()
        # submit() never suspends before enqueueing, so all eight land
        # before any worker runs: exactly queue_capacity are admitted
        futures = [await server.submit(ct) for ct in cts8[:8]]
        outcomes = list(await asyncio.gather(*futures))
        await server.close()
        return server.report(outcomes, wall_s=1.0)

    try:
        rep = asyncio.run(_run())
    finally:
        snap = obs.REGISTRY.snapshot()
        obs.disable_metrics()
    assert rep.rejected == 6
    assert rep.ok == 2
    assert rep.dropped == 0
    assert snap["counters"]["serve.rejected"] == 6
    assert snap["counters"]["serve.accepted"] == 2


def test_expired_deadline_is_reported_not_computed(scheme128, matrix8, cts8):
    config = ServeConfig(engines=1, max_batch=4, queue_capacity=64, seed=6)
    deadlines = [0.0, 0.0] + [None] * (len(cts8) - 2)
    rep = serve_requests(scheme128, matrix8, cts8, config, deadlines_ms=deadlines)
    assert rep.deadline_expired == 2
    assert rep.ok == len(cts8) - 2
    assert rep.dropped == 0
    expired = [o for o in rep.outcomes if o.status is RequestStatus.DEADLINE]
    assert all(o.result is None for o in expired)
    assert {o.request_id for o in expired} == {0, 1}


def test_load_balances_across_engines(scheme128, matrix8, cts8):
    """With equal-cost micro-batches, work-stealing keeps the engines'
    simulated busy cycles close to even."""
    config = ServeConfig(
        engines=2, max_batch=2, max_wait_ms=1.0, queue_capacity=64, seed=7
    )
    rep = serve_requests(scheme128, matrix8, cts8, config)
    busy = rep.per_engine_busy_cycles
    assert len(busy) == 2
    assert min(busy) > 0, "one engine never served anything"
    assert rep.makespan_cycles < sum(busy), "no overlap between engines"


def test_serve_metrics_and_spans(scheme128, matrix8, cts8):
    obs.enable_metrics()
    obs.REGISTRY.reset()
    obs.enable_tracing()
    try:
        config = ServeConfig(engines=1, max_batch=4, queue_capacity=64, seed=8)
        serve_requests(scheme128, matrix8, cts8[:4], config)
        snap = obs.REGISTRY.snapshot()
        names = {s.name for s in obs.TRACER.spans}
    finally:
        obs.disable_metrics()
        obs.disable_tracing()
    assert snap["counters"]["serve.accepted"] == 4
    assert snap["counters"]["serve.completed"] == 4
    assert snap["histograms"]["serve.latency.total_ms"]["count"] == 4
    assert snap["histograms"]["serve.batch.size"]["count"] >= 1
    assert "serve.batch" in names
    assert "serve.request" in names
    # per-stage latency percentiles are queryable off the registry
    hist = obs.REGISTRY.histogram("serve.latency.total_ms")
    assert hist.percentile(50) <= hist.percentile(99)


def test_report_invariants_and_dict_shape(scheme128, matrix8, cts8):
    config = ServeConfig(engines=2, max_batch=4, queue_capacity=64, seed=9)
    rep = serve_requests(scheme128, matrix8, cts8, config)
    d = rep.to_dict()
    assert d["submitted"] == d["ok"] + d["degraded"] + d["rejected"] + d["deadline"]
    assert d["dropped"] == 0
    assert d["latency_ms"]["p50"] <= d["latency_ms"]["p95"] <= d["latency_ms"]["p99"]
    assert d["sim"]["makespan_cycles"] == max(d["sim"]["per_engine_busy_cycles"])
    assert len(d["health"]) == 2


def test_rejects_multi_column_tile_matrix(scheme128):
    wide = np.ones((4, 300), dtype=np.int64)  # > ring degree 128
    with pytest.raises(ValueError, match="single-column-tile"):
        HmvpServer(scheme128, wide, ServeConfig(engines=1))


def test_submit_requires_augmented_ciphertext(scheme128, matrix8):
    config = ServeConfig(engines=1, queue_capacity=8, seed=10)

    async def _run():
        server = HmvpServer(scheme128, matrix8, config)
        await server.start()
        ct = scheme128.encrypt_vector(np.ones(128, dtype=np.int64))
        bad = ct.rescale()  # drop to the normal basis
        with pytest.raises(ValueError, match="augmented"):
            await server.submit(bad)
        await server.close()

    asyncio.run(_run())


def test_empty_run_report():
    rep = ServeReport(
        outcomes=[], wall_s=0.0, engine_health=[],
        per_engine_busy_cycles=[], clock_hz=300e6,
        config=ServeConfig(),
    )
    assert rep.goodput_sim_rps == 0.0
    assert rep.dropped == 0


def test_empty_run_percentiles_are_not_zero():
    """Regression: with zero completed requests the percentiles used to
    report a fake 0.0 ms — "instant", passing any latency alert.  An
    empty population has no percentile: ``latency_ms`` returns NaN and
    ``to_dict`` emits JSON null."""
    rep = ServeReport(
        outcomes=[], wall_s=0.0, engine_health=[],
        per_engine_busy_cycles=[], clock_hz=300e6,
        config=ServeConfig(),
    )
    for p in (50, 95, 99):
        assert math.isnan(rep.latency_ms(p))
    payload = rep.to_dict()
    assert payload["latency_ms"] == {"p50": None, "p95": None, "p99": None}
    # the payload must stay strict-JSON round-trippable (nan is not JSON)
    assert json.loads(
        json.dumps(payload, allow_nan=False)
    )["latency_ms"]["p95"] is None


def test_completed_run_percentiles_still_numeric(scheme128, matrix8):
    """The guard only fires on the empty population: a normal run keeps
    real numbers in both the accessor and the JSON payload."""
    config = ServeConfig(engines=1, queue_capacity=8, seed=3)
    vectors = [np.arange(128) % 7, np.ones(128, dtype=np.int64)]
    cts = [scheme128.encrypt_vector(v) for v in vectors]
    report = serve_requests(scheme128, matrix8, cts, config)
    assert report.completed == 2
    p95 = report.latency_ms(95)
    assert p95 > 0 and not math.isnan(p95)
    assert report.to_dict()["latency_ms"]["p95"] == p95
