"""Encryption parameters (Section II-F of the paper).

CHAM fixes one production parameter set:

* ring degree ``N = 4096``;
* ciphertext modulus ``Q = q0 * q1`` with the 35-bit low-Hamming-weight
  primes ``q0 = 2**34 + 2**27 + 1`` and ``q1 = 2**34 + 2**19 + 1``
  (70 bits for "representing plaintext and ciphertext");
* special key-switching modulus ``p = 2**38 + 2**23 + 1`` (39 bits);
* total 109-bit modulus, which at ``N = 4096`` with ternary secrets gives
  ≥ 128-bit classical security per the HE-standard tables.

A ciphertext is two ring elements; in the *normal* basis ``{q0, q1}``
that is four ``N``-degree polynomials, and in the *augmented* basis
``{q0, q1, p}`` six — exactly the counts quoted in the paper.  A plaintext
is one ring element (two / three polynomials).

The plaintext modulus ``t`` is application-chosen; the default is the
smallest prime above ``2**40``, odd so that the packing scale ``2**k`` is
invertible mod ``t`` (see :mod:`repro.he.packing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property, lru_cache
from typing import Tuple

from ..math.primes import CHAM_P, CHAM_Q0, CHAM_Q1, is_prime
from ..math.rns import RnsBasis

__all__ = [
    "SECURITY_TABLE",
    "estimate_security",
    "default_plain_modulus",
    "CheParams",
    "cham_params",
    "toy_params",
]

#: Maximum ``log2(Q*p)`` giving 128-bit classical security for a ternary
#: secret at each ring dimension — the (abridged) homomorphicencryption.org
#: standard table the paper's Section II-F parameter choice follows.
SECURITY_TABLE = {
    1024: 27,
    2048: 54,
    4096: 109,
    8192: 218,
    16384: 438,
    32768: 881,
}


def estimate_security(n: int, total_modulus_bits: int) -> int:
    """Coarse classical security estimate in bits.

    Linear interpolation of the HE-standard table: 128-bit security at the
    table budget, scaling inversely with the modulus width.  Only used for
    parameter sanity checks and reporting, never for enforcement beyond
    :meth:`CheParams.validate`.
    """
    if n not in SECURITY_TABLE:
        # Toy rings below the table (tests only): report zero security.
        if n < min(SECURITY_TABLE):
            return 0
        raise ValueError(f"no security data for n={n}")
    budget = SECURITY_TABLE[n]
    return int(round(128 * budget / max(total_modulus_bits, 1)))


@lru_cache(maxsize=None)
def default_plain_modulus(bits: int = 40) -> int:
    """Smallest odd prime with at least ``bits`` bits (default ``2**40+?``)."""
    t = (1 << bits) + 1
    while not is_prime(t):
        t += 2
    return t


@dataclass(frozen=True)
class CheParams:
    """Full parameter set for the CHAM HE pipeline.

    Attributes
    ----------
    n:
        Ring degree (power of two).
    ct_moduli:
        Ciphertext RNS primes ``(q0, ..)``; their product is ``Q``.
    special_modulus:
        Key-switching / rescale modulus ``p`` (the last, largest limb of
        the augmented basis).
    plain_modulus:
        ``t``; must be odd (packing needs ``2^{-1} mod t``).
    error_std:
        Standard deviation of the centered-binomial-approximated Gaussian
        error distribution.
    """

    n: int = 4096
    ct_moduli: Tuple[int, ...] = (CHAM_Q0, CHAM_Q1)
    special_modulus: int = CHAM_P
    plain_modulus: int = field(default_factory=default_plain_modulus)
    error_std: float = 3.2

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.n & (self.n - 1) or self.n < 4:
            raise ValueError(f"n={self.n} must be a power of two >= 4")
        if self.plain_modulus % 2 == 0:
            raise ValueError("plain_modulus must be odd (packing inverts 2^k)")
        if self.plain_modulus >= self.q_product:
            raise ValueError("plain_modulus must be far below Q")
        if self.special_modulus in self.ct_moduli:
            raise ValueError("special modulus must differ from ciphertext moduli")
        if self.special_modulus < max(self.ct_moduli):
            raise ValueError(
                "special modulus must dominate the ciphertext limbs "
                "(hybrid key-switching noise bound)"
            )
        # NTT-friendliness is enforced by RnsBasis construction below.
        _ = self.aug_basis

    # -- derived quantities ----------------------------------------------------

    @cached_property
    def ct_basis(self) -> RnsBasis:
        """Normal ciphertext basis ``{q0, q1}``."""
        return RnsBasis(tuple(self.ct_moduli), self.n)

    @cached_property
    def aug_basis(self) -> RnsBasis:
        """Augmented basis ``{q0, q1, p}`` (dot-product / key-switch domain)."""
        return RnsBasis(tuple(self.ct_moduli) + (self.special_modulus,), self.n)

    @property
    def q_product(self) -> int:
        out = 1
        for q in self.ct_moduli:
            out *= q
        return out

    @property
    def qp_product(self) -> int:
        return self.q_product * self.special_modulus

    @property
    def delta(self) -> int:
        """BFV scaling factor in the normal basis: ``floor(Q / t)``."""
        return self.q_product // self.plain_modulus

    @property
    def delta_aug(self) -> int:
        """Scaling factor for augmented-fresh ciphertexts: ``floor(Qp / t)``."""
        return self.qp_product // self.plain_modulus

    @property
    def total_modulus_bits(self) -> int:
        return self.qp_product.bit_length()

    @property
    def security_bits(self) -> int:
        return estimate_security(self.n, self.total_modulus_bits)

    # -- polynomial counts (the paper's accounting) ------------------------------

    @property
    def ct_poly_count(self) -> int:
        """Polynomials per normal ciphertext (paper: four at N=4096)."""
        return 2 * len(self.ct_moduli)

    @property
    def ct_poly_count_aug(self) -> int:
        """Polynomials per augmented ciphertext (paper: six)."""
        return 2 * (len(self.ct_moduli) + 1)

    @property
    def pt_poly_count(self) -> int:
        """Polynomials per normal plaintext (paper: two)."""
        return len(self.ct_moduli)

    @property
    def pt_poly_count_aug(self) -> int:
        """Polynomials per augmented plaintext (paper: three)."""
        return len(self.ct_moduli) + 1

    def describe(self) -> str:
        """Human-readable summary used by examples and benches."""
        qbits = [q.bit_length() for q in self.ct_moduli]
        return (
            f"CheParams(n={self.n}, log2 Q={self.q_product.bit_length()} "
            f"({'+'.join(map(str, qbits))} bit limbs), "
            f"log2 p={self.special_modulus.bit_length()}, "
            f"log2 t={self.plain_modulus.bit_length()}, "
            f"~{self.security_bits}-bit security)"
        )


def cham_params(plain_bits: int = 40) -> CheParams:
    """The paper's production parameter set (Section II-F)."""
    return CheParams(plain_modulus=default_plain_modulus(plain_bits))


def toy_params(n: int = 256, plain_bits: int = 30) -> CheParams:
    """Small-ring parameters for fast tests.

    The CHAM moduli are ``≡ 1 (mod 8192)``, so they remain NTT-friendly
    for every power-of-two degree up to 4096 — toy rings reuse the exact
    production moduli and therefore the exact arithmetic paths.
    """
    if n > 4096:
        raise ValueError("toy_params covers n <= 4096")
    return CheParams(n=n, plain_modulus=default_plain_modulus(plain_bits))
