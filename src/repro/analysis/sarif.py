"""SARIF 2.1.0 export for lint findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the file produced here annotates the PR
diff with every REPRO finding inline, instead of burying them in a job
log.  Only the small subset of the schema that code scanning actually
reads is emitted — tool driver with a rule catalog, one result per
diagnostic with a physical location — but the output validates against
the full 2.1.0 schema (``tests/test_lint_cli.py`` checks the invariants
the schema enforces: required properties, level vocabulary, URI-form
artifact locations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .core import Diagnostic, Rule, all_rules

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "diagnostics_to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Diagnostic severities -> SARIF result levels (the schema vocabulary
#: is ``none | note | warning | error``).
_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule: Rule) -> Dict[str, object]:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.name},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")
        },
    }


def diagnostics_to_sarif(
    diags: Sequence[Diagnostic],
    rules: Optional[Sequence[Rule]] = None,
) -> Dict[str, object]:
    """A complete ``sarifLog`` object for one lint run.

    ``rules`` is the rule set that *ran* (defaults to the full
    registry); every rule appears in the tool's catalog whether or not
    it fired, so code scanning can show the rule metadata for a finding
    and track rules that went clean.
    """
    catalog = list(rules) if rules is not None else all_rules()
    known = {rule.id for rule in catalog}
    descriptors = [_rule_descriptor(rule) for rule in catalog]
    index = {rule.id: i for i, rule in enumerate(catalog)}

    results: List[Dict[str, object]] = []
    for diag in diags:
        result: Dict[str, object] = {
            "ruleId": diag.rule_id,
            "level": _LEVELS.get(diag.severity, "warning"),
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(1, diag.line),
                            "startColumn": max(1, diag.col),
                        },
                    }
                }
            ],
        }
        if diag.rule_id in known:
            result["ruleIndex"] = index[diag.rule_id]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "informationUri": (
                            "https://github.com/example/repro"
                        ),
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": results,
            }
        ],
    }
