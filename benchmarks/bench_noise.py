"""E13 — Section III-A noise claim: RESCALE cuts the multiplication
noise ("from 30 bit to 26 bit" at production parameters).

Measures real invariant noise through the pipeline at the production
ring degree and compares with the analytical model.
"""

import math

import numpy as np
import pytest
from conftest import print_table

from repro.he.bfv import BfvScheme
from repro.he.noise import NoiseModel
from repro.he.params import cham_params


@pytest.fixture(scope="module")
def production():
    return BfvScheme(cham_params(), seed=77, max_pack=8)


def test_noise_pipeline_table(production):
    scheme = production
    rng = np.random.default_rng(7)
    n = scheme.params.n
    v = rng.integers(-(1 << 15), 1 << 15, n)
    row = rng.integers(-(1 << 15), 1 << 15, n)

    # party A uses public-key encryption (the 2PC wire format), whose
    # larger fresh noise is what the paper's 30-bit figure reflects
    ct = scheme.encrypt_vector(v, public=True)
    fresh = scheme.noise_bits(ct)
    prod = ct.multiply_plain(scheme.encoder.encode_row(row))
    pre = scheme.noise_bits(prod)
    res = prod.rescale()
    post = scheme.noise_bits(res)

    lwes = [
        scheme.extract(
            scheme.dot_product(ct, rng.integers(-(1 << 15), 1 << 15, n))
        )
        for _ in range(4)
    ]
    packed = scheme.pack(lwes)
    from repro.he.noise import packed_slot_positions

    pos = packed_slot_positions(n, 4)
    packed_bits = scheme.noise_bits(packed.ct, pos)
    budget = scheme.noise_budget(packed.ct, pos)

    rows = [
        ("fresh encryption", f"{fresh:.1f}"),
        ("after MULTPOLY (pre-rescale)", f"{pre:.1f}"),
        ("after RESCALE (stage 4)", f"{post:.1f}"),
        ("after PACKLWES (4 rows, slots)", f"{packed_bits:.1f}"),
        ("remaining budget (slots)", f"{budget:.1f}"),
    ]
    print_table(
        "Noise through the pipeline (bits, N=4096, 16-bit entries)",
        ["stage", "bits"],
        rows,
    )

    # the paper's claim: rescale decisively reduces multiplication noise
    assert pre - post > 8
    assert 24 <= pre <= 36  # the "30 bit" neighbourhood
    assert budget > 10  # decryption is comfortably safe


def test_model_tracks_measurement(production):
    scheme = production
    rng = np.random.default_rng(8)
    n = scheme.params.n
    model = NoiseModel.for_context(scheme.ctx)
    v = rng.integers(-(1 << 15), 1 << 15, n)
    row = rng.integers(-(1 << 15), 1 << 15, n)
    ct = scheme.encrypt_vector(v)
    prod = ct.multiply_plain(scheme.encoder.encode_row(row))
    measured = scheme.noise_bits(prod)
    predicted = math.log2(
        model.multiply_plain(model.fresh_sym(), float(np.abs(row).max()))
    )
    # CLT-style bound: prediction within a few bits above the measurement
    assert measured <= predicted + 2
    assert measured >= predicted - 8


def test_paper_band_with_pack_tree():
    """The full 12-level pack at production parameters stays in the
    paper's '26 bit' neighbourhood per the analytical model."""
    params = cham_params()
    model = NoiseModel(
        n=params.n,
        sigma=params.error_std,
        t=params.plain_modulus,
        q=params.q_product,
        p=params.special_modulus,
    )
    pre = model.multiply_plain(model.fresh_pk(), 2**16)
    post = model.rescale(pre)
    ks = model.keyswitch(dnum=2, q_max=max(params.ct_moduli))
    packed = model.pack(post, 12, ks)
    rows = [
        ("pre-rescale (model)", f"{math.log2(pre):.1f}", "~30 (paper)"),
        ("post-rescale (model)", f"{math.log2(post):.1f}", ""),
        ("after full 4096-pack (model)", f"{math.log2(packed):.1f}", "~26 (paper)"),
    ]
    print_table("Analytical noise at production params", ["stage", "bits", "paper"], rows)
    assert 28 <= math.log2(pre) <= 34
    assert 20 <= math.log2(packed) <= 28


@pytest.mark.benchmark(group="noise")
def test_perf_noise_measurement(benchmark, bench_scheme, rng):
    v = rng.integers(-100, 100, 128)
    ct = bench_scheme.encrypt_vector(v)
    benchmark(bench_scheme.noise_bits, ct)
