"""Tests for homomorphic Galois automorphisms."""

import numpy as np
import pytest

from repro.he.automorphism import apply_automorphism, apply_automorphism_with_key
from repro.he.encoder import CoefficientEncoder
from repro.he.keys import generate_galois_key
from repro.he.rlwe import decrypt, encrypt
from repro.math.polynomial import automorph


@pytest.fixture(scope="module")
def enc(params128):
    return CoefficientEncoder(params128)


@pytest.mark.parametrize("g", [3, 5, 9, 17, 129])
def test_automorphism_matches_plaintext_map(ctx128, sk128, galois128, enc, rng, g):
    vals = rng.integers(-(1 << 20), 1 << 20, 128)
    pt = enc.encode_coeffs(vals)
    ct = encrypt(ctx128, sk128, pt, augmented=False)
    out = apply_automorphism(ct, g, galois128)
    want = automorph(pt.coeffs, g, ctx128.t)
    assert np.array_equal(decrypt(ctx128, sk128, out).coeffs, want)


def test_automorphism_with_explicit_key(ctx128, sk128, enc, rng):
    g = 7  # an element outside the pack set
    key = generate_galois_key(ctx128, sk128, g)
    pt = enc.encode_coeffs(rng.integers(-100, 100, 128))
    ct = encrypt(ctx128, sk128, pt, augmented=False)
    out = apply_automorphism_with_key(ct, g, key)
    assert np.array_equal(
        decrypt(ctx128, sk128, out).coeffs, automorph(pt.coeffs, g, ctx128.t)
    )


def test_automorphism_composes(ctx128, sk128, galois128, enc, rng):
    pt = enc.encode_coeffs(rng.integers(-100, 100, 128))
    ct = encrypt(ctx128, sk128, pt, augmented=False)
    once = apply_automorphism(apply_automorphism(ct, 3, galois128), 3, galois128)
    want = automorph(automorph(pt.coeffs, 3, ctx128.t), 3, ctx128.t)
    assert np.array_equal(decrypt(ctx128, sk128, once).coeffs, want)


def test_pack_element_fixes_slots(ctx128, sk128, galois128, enc):
    """g = 2^k + 1 fixes slot positions j*N/2^k with sign (-1)^j —
    the property PACKTWOLWES relies on."""
    n = 128
    k = 3
    g = (1 << k) + 1
    stride = n >> k
    coeffs = np.zeros(n, dtype=np.int64)
    for j in range(1 << k):
        coeffs[j * stride] = j + 1
    pt = enc.encode_coeffs(coeffs)
    ct = encrypt(ctx128, sk128, pt, augmented=False)
    out = decrypt(ctx128, sk128, apply_automorphism(ct, g, galois128))
    got = out.centered()
    for j in range(1 << k):
        sign = 1 if j % 2 == 0 else -1
        assert got[j * stride] == sign * (j + 1), f"slot {j}"


def test_missing_key_raises(ctx128, sk128, galois128, enc, rng):
    pt = enc.encode_coeffs(rng.integers(-10, 10, 128))
    ct = encrypt(ctx128, sk128, pt, augmented=False)
    with pytest.raises(KeyError):
        apply_automorphism(ct, 11, galois128)
