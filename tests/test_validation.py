"""Cross-layer consistency regression tests."""

import numpy as np
import pytest

from repro.hw.validation import sweep, validate_consistency


def test_default_sweep_is_consistent():
    reports = sweep()
    for report in reports:
        assert report.consistent, (report.rows, report.col_tiles, report.mismatches)


def test_counts_exposed():
    report = validate_consistency(16, 2)
    assert report.dot_products == 32
    assert report.aggregations == 16
    assert report.reductions == 15
    assert report.cycles > 0


def test_functional_layer_reconciles(scheme128, rng):
    """A real functional run's op counts agree with driver and pipeline."""
    from repro.core.hmvp import hmvp

    a = rng.integers(-20, 20, (8, 128))
    v = rng.integers(-20, 20, 128)
    result = hmvp(scheme128, a, scheme128.encrypt_vector(v))
    report = validate_consistency(8, 1, functional_ops=result.ops)
    assert report.consistent, report.mismatches


def test_functional_tiled_reconciles(scheme128, rng):
    from repro.core.hmvp import TiledHmvp

    a = rng.integers(-10, 10, (6, 300))
    v = rng.integers(-10, 10, 300)
    tiler = TiledHmvp(scheme128)
    result = tiler.multiply(a, tiler.encrypt_vector(v))
    report = validate_consistency(6, 3, functional_ops=result.ops)
    assert report.consistent, report.mismatches


def test_mismatch_detection():
    """Broken functional tallies must be flagged, not silently passed."""
    from repro.core.hmvp import HmvpOpCount

    bogus = HmvpOpCount(dot_products=999, pack_reductions=1, lwe_additions=5)
    report = validate_consistency(8, 1, functional_ops=bogus)
    assert not report.consistent
    assert any("functional dots" in m for m in report.mismatches)
    assert any("functional reductions" in m for m in report.mismatches)
    assert any("aggregations" in m for m in report.mismatches)


def test_single_row_edge_case():
    report = validate_consistency(1, 1)
    assert report.consistent
    assert report.reductions == 0
