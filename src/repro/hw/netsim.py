"""Deterministic discrete-event simulation of the cluster interconnect.

Three layers, smallest first:

:class:`SimulatorEngine`
    A bare event queue: a heap of ``(time, seq, event)`` where ``seq`` is
    a monotone schedule counter, so two events at the same cycle always
    replay in the order they were scheduled.  No wall clock, no
    randomness — a run is a pure function of the injected workload, and
    the engine folds every handled event into a running sha256 so two
    runs can be compared by digest alone.

:class:`Router`
    Per-router queue state: an unbounded DMA-style injection queue (the
    source endpoint's memory is not our concern) and one bounded FIFO
    input buffer per incoming link.  Output side holds the credit count
    and ``free_at`` serialization horizon per outgoing link.

:class:`NetworkSimulator`
    The facade the cluster layer talks to: ``inject(src, dst, nbytes)``
    splits a message into fixed-size flits, routers forward them hop by
    hop under credit-based backpressure (a sender spends one credit per
    flit and gets it back only when the downstream buffer slot frees),
    links serialise at ``bandwidth`` bytes/cycle and add ``latency``
    pipeline cycles per hop.  ``drain()`` runs the queue dry and returns
    the cycles the current phase took.

Flow control invariant: credits per link start at the downstream buffer
capacity and are decremented at send time, incremented one cycle after
the downstream slot frees — so an input FIFO can never hold more than
``buffer_flits`` flits, and a stalled hop propagates backpressure
upstream instead of dropping anything.  Conservation (every injected
flit delivered exactly once) is tracked explicitly and asserted by the
property suite in ``tests/test_netsim_properties.py``.

On the ``ideal`` topology there are no links: flits teleport at the
injection cycle, so drained phases cost zero cycles while flit counts
remain comparable with real topologies.
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from .topology import Link, Topology, TopologyError

__all__ = [
    "CREDIT_RETURN_CYCLES",
    "Flit",
    "MessageRecord",
    "NetworkSimulator",
    "Router",
    "SimulatorEngine",
]

#: Cycles for a freed buffer slot's credit to reach the upstream sender.
CREDIT_RETURN_CYCLES = 1


@dataclass(frozen=True)
class Flit:
    """One fixed-size unit of a message on the wire."""

    msg_id: int
    index: int
    count: int
    src: int
    dst: int
    nbytes: int


@dataclass
class MessageRecord:
    msg_id: int
    src: int
    dst: int
    nbytes: int
    flits: int
    phase: str
    tag: str
    injected_at: int
    delivered_flits: int = 0
    delivered_at: Optional[int] = None


class SimulatorEngine:
    """Event heap with stable ``(time, seq)`` ordering and a trace hash."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Tuple[object, ...]]] = []
        self._seq = 0
        self._now = 0
        self._events_handled = 0
        self._trace = hashlib.sha256()

    @property
    def now(self) -> int:
        return self._now

    @property
    def events_handled(self) -> int:
        return self._events_handled

    @property
    def pending(self) -> int:
        return len(self._heap)

    def schedule(self, time: int, event: Tuple[object, ...]) -> None:
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now={self._now}"
            )
        heapq.heappush(self._heap, (int(time), self._seq, event))
        self._seq += 1

    def pop(self) -> Tuple[int, int, Tuple[object, ...]]:
        time, seq, event = heapq.heappop(self._heap)
        self._now = time
        self._events_handled += 1
        return time, seq, event

    def record(self, line: str) -> None:
        """Fold one trace line into the running digest."""
        self._trace.update(line.encode("ascii"))
        self._trace.update(b"\n")

    def trace_digest(self) -> str:
        return self._trace.hexdigest()


@dataclass
class Router:
    """Queue and flow-control state for one router."""

    name: str
    #: DMA source queue: flits awaiting their first hop (unbounded)
    inject_q: Deque[Flit] = field(default_factory=deque)
    #: bounded input FIFO per incoming link id
    in_bufs: Dict[int, Deque[Flit]] = field(default_factory=dict)
    #: available credits per *outgoing* link id
    credits: Dict[int, int] = field(default_factory=dict)
    #: cycle each outgoing link finishes serialising its current flit
    free_at: Dict[int, int] = field(default_factory=dict)
    max_inject_depth: int = 0


class _LinkStats:
    __slots__ = ("flits", "nbytes", "busy_cycles", "blocked", "max_depth")

    def __init__(self) -> None:
        self.flits = 0
        self.nbytes = 0
        self.busy_cycles = 0
        self.blocked = 0
        self.max_depth = 0


class NetworkSimulator:
    """Credit-flow flit simulator over a :class:`Topology`."""

    def __init__(
        self,
        topology: Topology,
        flit_bytes: int = 64,
        buffer_flits: int = 4,
        record_orders: bool = False,
    ) -> None:
        if flit_bytes < 1:
            raise ValueError(f"flit_bytes must be >= 1, got {flit_bytes}")
        if buffer_flits < 2:
            # bubble flow control needs one spare slot per cyclic channel
            raise ValueError(f"buffer_flits must be >= 2, got {buffer_flits}")
        self.topology = topology
        self.flit_bytes = int(flit_bytes)
        self.buffer_flits = int(buffer_flits)
        self.engine = SimulatorEngine()
        self.messages: Dict[int, MessageRecord] = {}
        self._next_msg_id = 0
        self._phase = "idle"
        self._phase_start = 0
        self._phases: Dict[str, Dict[str, int]] = {}
        self._link_stats: Dict[int, _LinkStats] = {}
        self._links_by_id: Dict[int, Link] = {}
        self._delivered_keys: set = set()
        self._duplicates = 0
        self._flits_injected = 0
        self._flits_delivered = 0
        self._blocked_attempts = 0
        self._pump_pending: set = set()
        #: per-link (msg_id, flit_index) send/arrive orders for the
        #: FIFO property tests; disabled by default to bound memory
        self.record_orders = record_orders
        self.sent_order: Dict[int, List[Tuple[int, int]]] = {}
        self.arrive_order: Dict[int, List[Tuple[int, int]]] = {}

        self.routers: Dict[str, Router] = {
            name: Router(name=name) for name in topology.routers
        }
        for link in topology.links:
            self._links_by_id[link.link_id] = link
            self._link_stats[link.link_id] = _LinkStats()
            self.routers[link.dst].in_bufs[link.link_id] = deque()
            self.routers[link.src].credits[link.link_id] = self.buffer_flits
            self.routers[link.src].free_at[link.link_id] = 0
            if record_orders:
                self.sent_order[link.link_id] = []
                self.arrive_order[link.link_id] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        return self.engine.now

    def begin_phase(self, name: str) -> None:
        self._phase = str(name)
        self._phase_start = self.engine.now
        self._phases.setdefault(
            self._phase,
            {"cycles": 0, "flits": 0, "messages": 0, "nbytes": 0, "drains": 0},
        )

    def inject(self, src: int, dst: int, nbytes: int, tag: str = "") -> int:
        """Queue a DMA-style message injection at the current cycle."""
        if src not in self.topology.endpoints:
            raise TopologyError(f"unknown source endpoint {src}")
        if dst not in self.topology.endpoints:
            raise TopologyError(f"unknown destination endpoint {dst}")
        if src == dst:
            raise TopologyError(f"endpoint {src} cannot message itself")
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"negative payload size {nbytes}")
        nflits = max(1, -(-nbytes // self.flit_bytes))
        msg = MessageRecord(
            msg_id=self._next_msg_id,
            src=src,
            dst=dst,
            nbytes=nbytes,
            flits=nflits,
            phase=self._phase,
            tag=tag,
            injected_at=self.engine.now,
        )
        self._next_msg_id += 1
        self.messages[msg.msg_id] = msg
        ph = self._phases.setdefault(
            self._phase,
            {"cycles": 0, "flits": 0, "messages": 0, "nbytes": 0, "drains": 0},
        )
        ph["messages"] += 1
        ph["flits"] += nflits
        ph["nbytes"] += nbytes
        self.engine.schedule(self.engine.now, ("inject", msg.msg_id))
        return msg.msg_id

    def drain(self) -> int:
        """Run the event queue dry; return cycles the phase advanced."""
        start = self.engine.now
        while self.engine.pending:
            time, seq, event = self.engine.pop()
            kind = event[0]
            if kind == "inject":
                self._handle_inject(time, seq, event[1])
            elif kind == "arrive":
                self._handle_arrive(time, seq, event[1], event[2])
            elif kind == "credit":
                self._handle_credit(time, seq, event[1])
            elif kind == "pump":
                self._pump_pending.discard((event[1], time))
                self.engine.record(f"{time}.{seq} pump {event[1]}")
                self._pump(event[1], time)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")
        elapsed = self.engine.now - start
        ph = self._phases.setdefault(
            self._phase,
            {"cycles": 0, "flits": 0, "messages": 0, "nbytes": 0, "drains": 0},
        )
        ph["cycles"] += elapsed
        ph["drains"] += 1
        return elapsed

    def trace_digest(self) -> str:
        return self.engine.trace_digest()

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _handle_inject(self, time: int, seq: int, msg_id: int) -> None:
        msg = self.messages[msg_id]
        self.engine.record(
            f"{time}.{seq} inject m{msg_id} {msg.src}>{msg.dst} "
            f"f{msg.flits} b{msg.nbytes}"
        )
        flits = [
            Flit(
                msg_id=msg_id,
                index=i,
                count=msg.flits,
                src=msg.src,
                dst=msg.dst,
                nbytes=self.flit_bytes,
            )
            for i in range(msg.flits)
        ]
        self._flits_injected += msg.flits
        if self.topology.ideal:
            for flit in flits:
                self._deliver(flit, time, seq)
            return
        router = self.routers[self.topology.endpoints[msg.src]]
        router.inject_q.extend(flits)
        router.max_inject_depth = max(
            router.max_inject_depth, len(router.inject_q)
        )
        self._pump(router.name, time)

    def _handle_arrive(
        self, time: int, seq: int, link_id: int, flit: Flit
    ) -> None:
        link = self._links_by_id[link_id]
        self.engine.record(
            f"{time}.{seq} arrive {link_id} m{flit.msg_id}.{flit.index}"
        )
        buf = self.routers[link.dst].in_bufs[link_id]
        buf.append(flit)
        stats = self._link_stats[link_id]
        stats.max_depth = max(stats.max_depth, len(buf))
        if len(buf) > self.buffer_flits:  # pragma: no cover - invariant
            raise RuntimeError(
                f"credit protocol violated: {len(buf)} flits in "
                f"{self.buffer_flits}-deep buffer on link {link.name}"
            )
        if self.record_orders:
            self.arrive_order[link_id].append((flit.msg_id, flit.index))
        self._pump(link.dst, time)

    def _handle_credit(self, time: int, seq: int, link_id: int) -> None:
        link = self._links_by_id[link_id]
        self.engine.record(f"{time}.{seq} credit {link_id}")
        router = self.routers[link.src]
        router.credits[link_id] += 1
        if router.credits[link_id] > self.buffer_flits:  # pragma: no cover
            raise RuntimeError(
                f"credit overflow on link {link.name}"
            )
        self._pump(link.src, time)

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def _sources(self, router: Router):
        """Arbitration order: inject queue first, then in-links by id."""
        yield None, router.inject_q
        for link_id in sorted(router.in_bufs):
            yield link_id, router.in_bufs[link_id]

    def _pump(self, router_name: str, now: int) -> None:
        """Forward every head flit that can move this cycle."""
        router = self.routers[router_name]
        progress = True
        while progress:
            progress = False
            for from_link, queue in self._sources(router):
                if not queue:
                    continue
                flit = queue[0]
                dst_router = self.topology.endpoints[flit.dst]
                if dst_router == router_name:
                    queue.popleft()
                    self._deliver(flit, now, -1)
                    if from_link is not None:
                        self._return_credit(from_link, now)
                    progress = True
                    continue
                link = self.topology.next_link(router_name, dst_router)
                lid = link.link_id
                stats = self._link_stats[lid]
                # Bubble flow control: entering a cyclic channel (ring
                # direction) from injection or from another channel must
                # leave a spare downstream slot, so the cycle can never
                # completely fill and deadlock.  In-channel transit and
                # acyclic links need only one credit.
                need = 1
                if link.channel:
                    prev = (
                        self._links_by_id[from_link]
                        if from_link is not None
                        else None
                    )
                    if prev is None or prev.channel != link.channel:
                        need = 2
                if (
                    router.credits[lid] >= need
                    and router.free_at[lid] <= now
                ):
                    queue.popleft()
                    router.credits[lid] -= 1
                    ser = link.serialization_cycles(flit.nbytes)
                    router.free_at[lid] = now + ser
                    stats.flits += 1
                    stats.nbytes += flit.nbytes
                    stats.busy_cycles += ser
                    if self.record_orders:
                        self.sent_order[lid].append(
                            (flit.msg_id, flit.index)
                        )
                    self.engine.schedule(
                        now + ser + link.latency, ("arrive", lid, flit)
                    )
                    if from_link is not None:
                        self._return_credit(from_link, now)
                    progress = True
                else:
                    stats.blocked += 1
                    self._blocked_attempts += 1
                    if (
                        router.credits[lid] >= need
                        and router.free_at[lid] > now
                    ):
                        self._schedule_pump(router_name, router.free_at[lid])
                    # credit-starved heads are re-pumped by the credit
                    # return event; nothing to schedule here

    def _return_credit(self, link_id: int, now: int) -> None:
        self.engine.schedule(
            now + CREDIT_RETURN_CYCLES, ("credit", link_id)
        )

    def _schedule_pump(self, router_name: str, time: int) -> None:
        key = (router_name, time)
        if key in self._pump_pending:
            return
        self._pump_pending.add(key)
        self.engine.schedule(time, ("pump", router_name))

    def _deliver(self, flit: Flit, time: int, seq: int) -> None:
        key = (flit.msg_id, flit.index)
        if key in self._delivered_keys:
            self._duplicates += 1
        self._delivered_keys.add(key)
        self._flits_delivered += 1
        self.engine.record(
            f"{time}.{seq} deliver m{flit.msg_id}.{flit.index}"
        )
        msg = self.messages[flit.msg_id]
        msg.delivered_flits += 1
        if msg.delivered_flits == msg.flits:
            msg.delivered_at = time

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    @property
    def flits_injected(self) -> int:
        return self._flits_injected

    @property
    def flits_delivered(self) -> int:
        return self._flits_delivered

    @property
    def flits_dropped(self) -> int:
        """Injected-but-undelivered flits after a drain (must be 0)."""
        return self._flits_injected - self._flits_delivered

    @property
    def duplicates(self) -> int:
        return self._duplicates

    @property
    def blocked_attempts(self) -> int:
        return self._blocked_attempts

    @property
    def max_queue_depth(self) -> int:
        """Deepest any *bounded* link input buffer got (<= buffer_flits)."""
        return max(
            (s.max_depth for s in self._link_stats.values()), default=0
        )

    @property
    def max_inject_depth(self) -> int:
        """Deepest DMA source queue (unbounded by design)."""
        return max(
            (r.max_inject_depth for r in self.routers.values()), default=0
        )

    def link_stats_raw(self) -> Dict[str, Dict[str, int]]:
        """Integer per-link counters keyed by link name (no ratios)."""
        table: Dict[str, Dict[str, int]] = {}
        for lid in sorted(self._link_stats):
            link = self._links_by_id[lid]
            s = self._link_stats[lid]
            table[link.name] = {
                "flits": s.flits,
                "nbytes": s.nbytes,
                "busy_cycles": s.busy_cycles,
                "blocked": s.blocked,
                "max_depth": s.max_depth,
            }
        return table

    def link_utilization(self) -> Dict[str, Dict[str, object]]:
        """Per-link flit/busy/utilization table keyed by link name."""
        horizon = max(1, self.engine.now)
        table: Dict[str, Dict[str, object]] = {}
        for name, raw in self.link_stats_raw().items():
            row: Dict[str, object] = dict(raw)
            row["utilization"] = round(raw["busy_cycles"] / horizon, 6)
            table[name] = row
        return table

    def phase_stats(self) -> Dict[str, Dict[str, int]]:
        return {
            name: dict(stats) for name, stats in sorted(self._phases.items())
        }

    def stats(self) -> Dict[str, object]:
        return {
            "topology": self.topology.name,
            "kind": self.topology.kind,
            "flit_bytes": self.flit_bytes,
            "buffer_flits": self.buffer_flits,
            "cycles": self.engine.now,
            "events": self.engine.events_handled,
            "messages": len(self.messages),
            "flits_injected": self._flits_injected,
            "flits_delivered": self._flits_delivered,
            "flits_dropped": self.flits_dropped,
            "duplicates": self._duplicates,
            "blocked_attempts": self._blocked_attempts,
            "max_queue_depth": self.max_queue_depth,
            "max_inject_depth": self.max_inject_depth,
            "phases": self.phase_stats(),
            "links": self.link_utilization(),
        }
