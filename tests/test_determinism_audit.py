"""Determinism audit (ISSUE 3 deflake satellite).

A meta-test that scans every test and benchmark module for randomness
that is not explicitly seeded.  The suite's reproducibility story is
"same checkout, same results"; a single ``default_rng()`` with no seed
or a global ``np.random.*`` call quietly breaks that, and the flake
only surfaces weeks later on an unrelated PR.  (Hypothesis strategies
are exempt: hypothesis owns its own seeding and shrinking database.)
"""

import re
from pathlib import Path

import pytest

TEST_ROOT = Path(__file__).parent
BENCH_ROOT = TEST_ROOT.parent / "benchmarks"

#: forbidden patterns -> explanation
FORBIDDEN = [
    (
        re.compile(r"default_rng\(\s*\)"),
        "numpy Generator constructed without a seed",
    ),
    (
        re.compile(r"random\.Random\(\s*\)"),
        "stdlib Random constructed without a seed",
    ),
    (
        re.compile(r"\bnp\.random\.(seed|rand|randn|randint|random|choice"
                   r"|shuffle|permutation|normal|uniform|integers)\b"),
        "numpy legacy global-state RNG (use a seeded default_rng instead)",
    ),
    (
        re.compile(r"^\s*(?:from random import|import random\b)",
                   re.MULTILINE),
        "stdlib random module in tests (use a seeded np default_rng)",
    ),
    (
        re.compile(r"default_rng\(\s*(?:time|os\.urandom|None)"),
        "numpy Generator seeded from a non-deterministic source",
    ),
]


def _source_files():
    files = sorted(TEST_ROOT.glob("*.py")) + sorted(BENCH_ROOT.glob("*.py"))
    return [f for f in files if f.name != Path(__file__).name]


def test_audit_finds_these_files():
    names = {f.name for f in _source_files()}
    # sanity: the audit is actually looking at the suite
    assert "conftest.py" in names
    assert "test_serve.py" in names
    assert len(names) > 10


@pytest.mark.parametrize(
    "path", _source_files(), ids=lambda p: str(p.relative_to(TEST_ROOT.parent))
)
def test_no_unseeded_randomness(path):
    text = path.read_text()
    violations = []
    for pattern, why in FORBIDDEN:
        for match in pattern.finditer(text):
            line_no = text[: match.start()].count("\n") + 1
            line = text.splitlines()[line_no - 1].strip()
            violations.append(f"{path.name}:{line_no}: {why}\n    {line}")
    assert not violations, (
        "unseeded randomness in the test/benchmark suite:\n"
        + "\n".join(violations)
    )


def test_every_default_rng_call_passes_a_seed():
    """Each ``default_rng(...)`` call site must pass *something* — a
    literal, a named constant, or a parametrized ``seed`` variable.
    (Whether that something is deterministic is covered by the pattern
    scan above; this catches argument-less construction the regexes
    might miss through odd spacing or line breaks.)"""
    call = re.compile(r"default_rng\(\s*([^)]*?)\s*\)", re.DOTALL)
    bad = []
    for path in _source_files():
        for match in call.finditer(path.read_text()):
            arg = match.group(1).strip()
            if not arg or arg == "None":
                bad.append(f"{path.name}: default_rng({arg})")
    assert not bad, "seedless generators:\n" + "\n".join(bad)
