"""Tests for the SLR floorplan model (Fig. 5)."""

import pytest

from repro.hw.arch import ChamConfig, cham_default_config
from repro.hw.floorplan import SLR_COUNT, auto_floorplan, plan_cham


def test_paper_plan_structure():
    plan = plan_cham()
    assert plan.assignment["platform"] == 1  # middle die (PCIe column)
    assert plan.assignment["engine0"] != plan.assignment["engine1"]
    assert plan.assignment["engine0"] != 1
    assert plan.assignment["engine1"] != 1


def test_paper_plan_is_feasible():
    plan = plan_cham()
    assert plan.feasible()
    assert plan.sll_feasible()


def test_per_slr_utilization_below_caps():
    plan = plan_cham()
    for util in plan.slr_utilizations():
        assert util["LUT"] <= 0.75
        assert util["BRAM"] <= 0.95
        assert util["URAM"] <= 0.95


def test_both_engines_in_one_slr_fails():
    """The placement is forced: two engines in one die blow its BRAM."""
    plan = plan_cham()
    plan.assignment["engine1"] = plan.assignment["engine0"]
    assert not plan.feasible()


def test_auto_floorplan_matches_paper_shape():
    auto = plan_cham().assignment
    greedy = auto_floorplan().assignment
    # greedy also separates the engines and keeps the platform pinned
    assert greedy["platform"] == 1
    assert greedy["engine0"] != greedy["engine1"]
    del auto


def test_sll_crossings_scale_with_distance():
    plan = plan_cham()
    near = plan.sll_crossings()  # engines adjacent to the middle shell
    plan.assignment["engine0"] = 0
    plan.assignment["engine1"] = 0
    plan.assignment["platform"] = 2  # both engines two hops from the shell
    far = plan.sll_crossings()
    assert far > near


def test_three_engine_plan_infeasible():
    plan = plan_cham(ChamConfig(engines=3))
    # one SLR must host an engine + platform: over budget
    assert not plan.feasible()


def test_slr_capacity_sums_to_device():
    plan = plan_cham()
    cap = plan.slr_capacity()
    assert cap.lut * SLR_COUNT == pytest.approx(plan.device.luts, rel=0.01)
