"""Tests for 2-D/3-D convolution via coefficient encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conv import (
    Conv2dEncoder,
    Conv3dEncoder,
    conv2d_reference,
    conv3d_reference,
    homomorphic_conv2d,
    homomorphic_conv3d,
)


def test_conv2d_reference_known_value():
    img = np.arange(9).reshape(3, 3)
    ker = np.array([[1, 0], [0, -1]])
    out = conv2d_reference(img, ker)
    # out[i,j] = img[i,j] - img[i+1,j+1]
    assert out.tolist() == [[-4, -4], [-4, -4]]


def test_conv2d_reference_rejects_large_kernel():
    with pytest.raises(ValueError):
        conv2d_reference(np.zeros((2, 2)), np.zeros((3, 3)))


def test_conv3d_reference_channel_mismatch():
    with pytest.raises(ValueError):
        conv3d_reference(np.zeros((2, 4, 4)), np.zeros((3, 2, 2)))


@pytest.mark.parametrize("h,w,kh,kw", [(8, 8, 3, 3), (6, 10, 2, 4), (16, 16, 1, 1), (5, 5, 5, 5)])
def test_homomorphic_conv2d(scheme256, rng, h, w, kh, kw):
    enc = Conv2dEncoder(scheme256, h, w, kh, kw)
    img = rng.integers(-15, 16, (h, w))
    ker = rng.integers(-4, 5, (kh, kw))
    ct = enc.encrypt_image(img)
    out = homomorphic_conv2d(enc, ct, ker)
    got = enc.decode_output(scheme256.decrypt_plaintext(out))
    assert np.array_equal(got, conv2d_reference(img, ker))


def test_conv2d_encoder_validation(scheme256):
    with pytest.raises(ValueError, match="exceeds ring"):
        Conv2dEncoder(scheme256, 32, 32, 3, 3)  # 1024 > 256
    with pytest.raises(ValueError, match="larger than image"):
        Conv2dEncoder(scheme256, 4, 4, 5, 5)


def test_conv2d_shape_checks(scheme256, rng):
    enc = Conv2dEncoder(scheme256, 8, 8, 3, 3)
    with pytest.raises(ValueError):
        enc.encode_image(rng.integers(0, 3, (4, 4)))
    with pytest.raises(ValueError):
        enc.encode_kernel(rng.integers(0, 3, (2, 2)))


def test_conv2d_output_positions(scheme256):
    enc = Conv2dEncoder(scheme256, 8, 8, 3, 3)
    pos = enc.output_positions()
    assert pos.shape == (6, 6)
    assert pos[0, 0] == 2 * 8 + 2
    assert pos[5, 5] == 7 * 8 + 7


@pytest.mark.parametrize("c,h,w,kh,kw", [(2, 8, 8, 3, 3), (3, 6, 6, 2, 2), (4, 4, 4, 3, 3)])
def test_homomorphic_conv3d(scheme256, rng, c, h, w, kh, kw):
    enc = Conv3dEncoder(scheme256, c, h, w, kh, kw)
    tens = rng.integers(-8, 9, (c, h, w))
    ker = rng.integers(-3, 4, (c, kh, kw))
    ct = enc.encrypt_tensor(tens)
    out = homomorphic_conv3d(enc, ct, ker)
    got = enc.decode_output(scheme256.decrypt_plaintext(out))
    assert np.array_equal(got, conv3d_reference(tens, ker))


def test_conv3d_validation(scheme256):
    with pytest.raises(ValueError, match="exceeds ring"):
        Conv3dEncoder(scheme256, 8, 8, 8, 3, 3)


def test_conv3d_shape_checks(scheme256, rng):
    enc = Conv3dEncoder(scheme256, 2, 8, 8, 3, 3)
    with pytest.raises(ValueError):
        enc.encode_tensor(rng.integers(0, 3, (2, 4, 4)))
    with pytest.raises(ValueError):
        enc.encode_kernel(rng.integers(0, 3, (3, 3, 3)))


def test_conv2d_identity_kernel(scheme256, rng):
    """A 1x1 unit kernel copies the image."""
    enc = Conv2dEncoder(scheme256, 10, 10, 1, 1)
    img = rng.integers(-20, 20, (10, 10))
    out = homomorphic_conv2d(enc, enc.encrypt_image(img), np.array([[1]]))
    got = enc.decode_output(scheme256.decrypt_plaintext(out))
    assert np.array_equal(got, img.astype(object))


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_conv2d_property(scheme256, seed):
    r = np.random.default_rng(seed)
    h, w = int(r.integers(4, 12)), int(r.integers(4, 12))
    kh, kw = int(r.integers(1, 4)), int(r.integers(1, 4))
    if h * w > 256 or kh > h or kw > w:
        return
    enc = Conv2dEncoder(scheme256, h, w, kh, kw)
    img = r.integers(-10, 11, (h, w))
    ker = r.integers(-3, 4, (kh, kw))
    out = homomorphic_conv2d(enc, enc.encrypt_image(img), ker)
    got = enc.decode_output(scheme256.decrypt_plaintext(out))
    assert np.array_equal(got, conv2d_reference(img, ker))


def test_im2col_reference():
    from repro.core.conv import im2col

    img = np.arange(16).reshape(4, 4)
    rows = im2col(img, 2, 2)
    assert rows.shape == (9, 4)
    assert list(rows[0]) == [0, 1, 4, 5]
    assert list(rows[-1]) == [10, 11, 14, 15]
    with pytest.raises(ValueError):
        im2col(np.zeros((2, 2)), 3, 3)


def test_conv_via_hmvp_matches_packed_conv(scheme256, rng):
    """Two independent homomorphic strategies agree: the coefficient-
    packed single multiplication and the im2col HMVP lowering."""
    from repro.core.conv import conv2d_via_hmvp

    # 6x6 image -> 16 outputs: fits the fixture's pack-key budget
    img = rng.integers(-10, 11, (6, 6))
    ker = rng.integers(-3, 4, (3, 3))
    via_hmvp = conv2d_via_hmvp(scheme256, img, ker)
    enc = Conv2dEncoder(scheme256, 6, 6, 3, 3)
    packed = enc.decode_output(
        scheme256.decrypt_plaintext(
            homomorphic_conv2d(enc, enc.encrypt_image(img), ker)
        )
    )
    assert np.array_equal(via_hmvp, packed)
    assert np.array_equal(via_hmvp, conv2d_reference(img, ker))
