"""Tests for the shared HE context (sampling, per-limb NTT helpers)."""

import numpy as np
import pytest

from repro.he.context import CheContext
from repro.he.params import toy_params


@pytest.fixture(scope="module")
def ctx():
    return CheContext(toy_params(n=128, plain_bits=40), seed=123)


def test_ntt_cache_returns_same_object(ctx):
    q = ctx.ct_basis.moduli[0]
    assert ctx.ntt(q) is ctx.ntt(q)


def test_ntt_limbs_roundtrip(ctx, rng):
    basis = ctx.aug_basis
    limbs = np.stack([rng.integers(0, q, 128, dtype=np.uint64) for q in basis])
    back = ctx.intt_limbs(ctx.ntt_limbs(limbs, basis), basis)
    assert np.array_equal(back, limbs)


def test_negacyclic_multiply_per_limb(ctx, rng):
    basis = ctx.ct_basis
    a = np.stack([rng.integers(0, q, 128, dtype=np.uint64) for q in basis])
    b = np.stack([rng.integers(0, q, 128, dtype=np.uint64) for q in basis])
    prod = ctx.negacyclic_multiply(a, b, basis)
    for i, q in enumerate(basis):
        assert np.array_equal(prod[i], ctx.ntt(q).multiply(a[i], b[i]))


def test_sample_uniform_shape_and_range(ctx):
    limbs = ctx.sample_uniform(ctx.aug_basis)
    assert limbs.shape == (3, 128)
    for i, q in enumerate(ctx.aug_basis):
        assert limbs[i].max() < q


def test_ternary_sampler(ctx):
    s = ctx.sample_ternary_signed()
    assert set(np.unique(s)).issubset({-1, 0, 1})
    # roughly uniform over the three values
    assert 20 < np.count_nonzero(s == 0) < 70


def test_error_sampler_statistics(ctx):
    samples = np.concatenate([ctx.sample_error_signed() for _ in range(50)])
    assert abs(samples.mean()) < 0.5
    assert 2.0 < samples.std() < 4.5  # sigma = 3.2
    wide = ctx.sample_error_signed(std=30.0)
    assert wide.std() > 15


def test_signed_to_limbs_consistency(ctx):
    signed = np.array([-1, 0, 5] + [0] * 125, dtype=np.int64)
    limbs = ctx.signed_to_limbs(signed, ctx.ct_basis)
    q0 = ctx.ct_basis.moduli[0]
    assert limbs[0][0] == q0 - 1
    assert limbs[0][2] == 5


def test_limbs_for_bigints(ctx):
    big = [ctx.ct_basis.product - 1] + [0] * 127
    limbs = ctx.limbs_for(big, ctx.ct_basis)
    # Q-1 is congruent to q_i - 1 in each limb
    for i, q in enumerate(ctx.ct_basis):
        assert limbs[i][0] == q - 1


def test_seeded_reproducibility():
    params = toy_params(n=64, plain_bits=40)
    a = CheContext(params, seed=9).sample_uniform(params.ct_basis)
    b = CheContext(params, seed=9).sample_uniform(params.ct_basis)
    assert np.array_equal(a, b)
    c = CheContext(params, seed=10).sample_uniform(params.ct_basis)
    assert not np.array_equal(a, c)


def test_fork_is_independent(ctx):
    fork = ctx.fork(55)
    assert fork.params is ctx.params
    assert fork.rng is not ctx.rng


def test_properties(ctx):
    assert ctx.n == 128
    assert ctx.t == ctx.params.plain_modulus
    assert ctx.ct_basis is ctx.params.ct_basis
    assert ctx.aug_basis is ctx.params.aug_basis
