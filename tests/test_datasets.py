"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.apps.datasets import make_digit_images, make_vertical_dataset


def test_vertical_dataset_shapes():
    data = make_vertical_dataset(100, 10, seed=0)
    assert data.features_a.shape == (100, 5)
    assert data.features_b.shape == (100, 5)
    assert data.labels.shape == (100,)
    assert data.n_samples == 100
    assert data.n_features == 10
    assert data.full_features.shape == (100, 10)


def test_vertical_dataset_split_fraction():
    data = make_vertical_dataset(50, 10, party_a_fraction=0.3, seed=0)
    assert data.features_a.shape[1] == 3
    assert data.features_b.shape[1] == 7


def test_labels_binary_and_balancedish():
    data = make_vertical_dataset(2000, 8, seed=1)
    assert set(np.unique(data.labels)).issubset({0, 1})
    frac = data.labels.mean()
    assert 0.3 < frac < 0.7


def test_task_is_learnable():
    """The generating weights must separate the data reasonably well."""
    data = make_vertical_dataset(1000, 16, seed=2)
    z = data.full_features @ data.true_weights
    acc = np.mean((z > 0) == (data.labels == 1))
    assert acc > 0.8


def test_features_are_clipped():
    data = make_vertical_dataset(500, 6, seed=3)
    assert np.abs(data.full_features).max() <= 4.0


def test_batches_cover_everything():
    data = make_vertical_dataset(100, 4, seed=4)
    seen = 0
    for sl, xa, xb, y in data.batches(32):
        assert xa.shape[0] == xb.shape[0] == y.shape[0]
        seen += y.shape[0]
    assert seen == 100


def test_reproducibility():
    a = make_vertical_dataset(20, 4, seed=7)
    b = make_vertical_dataset(20, 4, seed=7)
    assert np.array_equal(a.full_features, b.full_features)
    assert np.array_equal(a.labels, b.labels)


def test_requires_two_features():
    with pytest.raises(ValueError):
        make_vertical_dataset(10, 1)


def test_digit_images():
    imgs, labels = make_digit_images(10, size=12, seed=0)
    assert imgs.shape == (10, 12, 12)
    assert imgs.min() >= 0 and imgs.max() <= 31
    assert set(np.unique(labels)).issubset({0, 1})


def test_digit_images_classes_differ():
    imgs, labels = make_digit_images(50, size=12, seed=1)
    zeros = imgs[labels == 0]
    ones = imgs[labels == 1]
    # class 0 is bright top-left, class 1 bright bottom-right
    assert zeros[:, :4, :4].mean() > zeros[:, -4:, -4:].mean()
    assert ones[:, -4:, -4:].mean() > ones[:, :4, :4].mean()
