"""Energy model — the efficiency dimension accelerator papers report.

The paper reports speed-ups only; an adopter's next question is joules.
This extension prices energy per HMVP from published board/device
envelopes and the simulators' activity counts:

* CHAM: VU9P-class card at 45-60 W under load, scaled by the pipeline's
  measured utilization plus static power;
* CPU: Xeon 6130 at 125 W TDP for the (single-socket) baseline duration;
* GPU: V100 at 250 W sustained.

Energy = power × the same end-to-end times the latency model produces,
so the efficiency ratios inherit the latency model's calibration and
stay internally consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .perf import ChamPerfModel, CpuCostModel, GpuCostModel

__all__ = ["PowerModel", "energy_per_hmvp"]


@dataclass(frozen=True)
class PowerModel:
    """Board-level power envelopes (watts)."""

    fpga_static_w: float = 22.0  # shell + idle card
    fpga_dynamic_w: float = 38.0  # both engines fully busy
    cpu_w: float = 125.0  # Xeon 6130 TDP
    gpu_w: float = 250.0  # V100 sustained
    host_w: float = 60.0  # host share while driving the card

    def fpga_power(self, utilization: float) -> float:
        return self.fpga_static_w + self.fpga_dynamic_w * min(max(utilization, 0.0), 1.0)


def energy_per_hmvp(
    m: int,
    n: int,
    power: PowerModel = PowerModel(),
    cham: ChamPerfModel = None,
    cpu: CpuCostModel = None,
    gpu: GpuCostModel = None,
) -> Dict[str, float]:
    """Joules per HMVP on the three platforms, plus efficiency ratios."""
    cham = cham or ChamPerfModel()
    cpu = cpu or CpuCostModel()
    gpu = gpu or GpuCostModel()

    t_cpu = cpu.hmvp_s(m, n)
    t_gpu = gpu.hmvp_s(m, n, cham.saturated_rows_per_s())
    sched = cham.hmvp_schedule(m, n)
    t_cham = cham.fixed_overhead_s + sched.total_s
    util = sched.fpga_utilization

    e_cpu = t_cpu * power.cpu_w
    e_gpu = t_gpu * (power.gpu_w + power.host_w)
    e_cham = t_cham * (power.fpga_power(util) + power.host_w)
    return {
        "cpu_j": e_cpu,
        "gpu_j": e_gpu,
        "cham_j": e_cham,
        "cham_vs_cpu": e_cpu / e_cham,
        "cham_vs_gpu": e_gpu / e_cham,
        "fpga_utilization": util,
    }
