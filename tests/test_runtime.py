"""Tests for the RAS runtime simulation (Section III-C)."""

import pytest

from repro.hw.runtime import (
    DeviceHangError,
    FaultInjector,
    FpgaRuntime,
    JobState,
    RegisterLoadError,
    VirtualFpga,
)
from repro.hw.arch import cham_default_config


def test_clean_job_lifecycle():
    rt = FpgaRuntime()
    jid = rt.submit(rows=64)
    assert rt.poll(jid) == JobState.DONE
    assert rt.jobs[jid].cycles > 0
    report = rt.health()
    assert report.jobs_completed == 1
    assert report.healthy


def test_poll_is_idempotent():
    rt = FpgaRuntime()
    jid = rt.submit(rows=16)
    assert rt.poll(jid) == JobState.DONE
    assert rt.poll(jid) == JobState.DONE
    assert rt.health().jobs_completed == 1


def test_register_load_clean():
    rt = FpgaRuntime()
    rt.load_register_checked(0x100, 0xDEADBEEF)
    assert rt.device.registers[0x100] == 0xDEADBEEF
    assert rt.register_retries == 0


def test_register_load_retries_on_corruption():
    faults = FaultInjector(register_flip_prob=0.6, seed=3)
    rt = FpgaRuntime(faults=faults, max_register_retries=10)
    rt.load_register_checked(0x10, 1234)
    assert rt.device.registers[0x10] == 1234
    assert rt.register_retries > 0


def test_register_load_gives_up():
    faults = FaultInjector(register_flip_prob=1.0, seed=1)
    rt = FpgaRuntime(faults=faults, max_register_retries=2)
    with pytest.raises(RegisterLoadError):
        rt.load_register_checked(0x10, 55)
    assert rt.register_retries == 3


def test_hang_is_recovered_by_watchdog():
    faults = FaultInjector(hang_prob=0.5, resets_to_recover=1, seed=2)
    rt = FpgaRuntime(faults=faults, max_job_retries=12)
    states = [rt.poll(rt.submit(rows=32)) for _ in range(8)]
    assert all(s == JobState.DONE for s in states)
    assert rt.hangs_detected > 0
    assert rt.resets >= rt.hangs_detected


def test_permanent_hang_fails_job():
    faults = FaultInjector(hang_prob=1.0, resets_to_recover=10**9, seed=4)
    rt = FpgaRuntime(faults=faults, max_job_retries=1)
    jid = rt.submit(rows=8)
    assert rt.poll(jid) == JobState.FAILED
    report = rt.health()
    assert report.jobs_failed == 1
    assert not report.healthy


def test_virtual_fpga_reset_semantics():
    faults = FaultInjector(hang_prob=1.0, resets_to_recover=2, seed=0)
    dev = VirtualFpga(cham_default_config(), faults)
    from repro.hw.runtime import Job

    with pytest.raises(DeviceHangError):
        dev.run_job(Job(job_id=0, rows=4))
    assert dev.hung
    assert not dev.reset()  # first reset not enough
    assert dev.reset()  # second recovers
    assert not dev.hung


def test_health_temperature_tracks_load():
    rt = FpgaRuntime()
    t0 = rt.health().temperature_c
    for _ in range(3):
        rt.poll(rt.submit(rows=2048))
    t1 = rt.health().temperature_c
    assert t1 > t0


def test_job_cycles_match_pipeline():
    from repro.hw.pipeline import MacroPipeline

    rt = FpgaRuntime()
    jid = rt.submit(rows=128, col_tiles=2)
    rt.poll(jid)
    expect = MacroPipeline(rt.cfg.engine).simulate_hmvp(128, 2).total_cycles
    assert rt.jobs[jid].cycles == expect


def test_job_scheduler_balances_engines():
    from repro.hw.runtime import Job, JobScheduler

    sched = JobScheduler()
    jobs = [Job(job_id=i, rows=256) for i in range(8)]
    report = sched.schedule(jobs)
    assert len(report.completions) == 8
    # equal jobs split 4/4 across the two engines
    assert abs(report.per_engine_busy[0] - report.per_engine_busy[1]) < 1
    assert report.utilization > 0.99
    assert all(j.state.value == "done" for j in jobs)


def test_job_scheduler_longest_first_beats_naive_makespan():
    from repro.hw.runtime import Job, JobScheduler

    sched = JobScheduler()
    jobs = [Job(job_id=0, rows=2048)] + [
        Job(job_id=i, rows=64) for i in range(1, 9)
    ]
    report = sched.schedule(jobs)
    # the long job defines the makespan; the short ones hide behind it
    long_cycles = jobs[0].cycles
    assert report.makespan < long_cycles * 1.2


def test_job_scheduler_empty_queue():
    from repro.hw.runtime import JobScheduler

    report = JobScheduler().schedule([])
    assert report.makespan == 0
    assert report.utilization == 0.0


# -- poll_once / poll_async / retry-budget state machine (serving layer) --


def test_hang_twice_with_watchdog_still_terminates():
    """ISSUE regression: a job hitting the hang fault twice in a row,
    with the watchdog resetting in between, must still reach a terminal
    state — completed here, since the retry budget covers both hangs."""
    faults = FaultInjector(hang_script=[True, True, False])
    rt = FpgaRuntime(faults=faults, max_job_retries=2)
    jid = rt.submit(rows=16)
    assert rt.poll(jid) == JobState.DONE
    assert rt.jobs[jid].retries == 2
    assert rt.hangs_detected == 2
    report = rt.health()
    assert report.job_retries == 2
    assert report.jobs_completed == 1
    assert report.healthy


def test_hang_twice_budget_one_reports_failed_not_running():
    """With budget for only one retry, the second hang must FAIL the
    job — never leave it stuck RUNNING."""
    faults = FaultInjector(hang_script=[True, True])
    rt = FpgaRuntime(faults=faults, max_job_retries=1)
    jid = rt.submit(rows=16)
    assert rt.poll(jid) == JobState.FAILED
    assert rt.jobs[jid].state == JobState.FAILED
    assert rt.health().jobs_failed == 1


def test_slow_recovery_survives_across_watchdog_episodes():
    """The watchdog gap fix: one episode performs 3 resets; a device
    needing 4 must NOT fail a job that still has retry budget — the
    next attempt runs a fresh episode and recovers the device."""
    faults = FaultInjector(
        hang_script=[True], resets_to_recover=4
    )
    rt = FpgaRuntime(faults=faults, max_job_retries=2)
    jid = rt.submit(rows=16)
    assert rt.poll(jid) == JobState.DONE
    assert not rt.device.hung
    # episode 1: 3 resets (insufficient); episode 2 on hung-device
    # re-entry: 1 more reset recovers
    assert rt.resets >= 4
    assert rt.jobs[jid].retries == 2


def test_poll_once_single_step_semantics():
    faults = FaultInjector(hang_script=[True, False])
    rt = FpgaRuntime(faults=faults, max_job_retries=2)
    jid = rt.submit(rows=16)
    assert rt.poll_once(jid) == JobState.RUNNING  # hang consumed a retry
    assert rt.jobs[jid].retries == 1
    assert rt.poll_once(jid) == JobState.DONE
    # terminal states are sticky
    assert rt.poll_once(jid) == JobState.DONE
    assert rt.health().jobs_completed == 1


def test_poll_async_terminates_and_matches_sync():
    import asyncio

    faults = FaultInjector(hang_script=[True, True, False])
    rt = FpgaRuntime(faults=faults, max_job_retries=2)
    jid = rt.submit(rows=16)
    assert asyncio.run(rt.poll_async(jid)) == JobState.DONE
    assert rt.jobs[jid].retries == 2

    faults2 = FaultInjector(hang_prob=1.0, resets_to_recover=10**9)
    rt2 = FpgaRuntime(faults=faults2, max_job_retries=1)
    jid2 = rt2.submit(rows=16)
    assert asyncio.run(rt2.poll_async(jid2)) == JobState.FAILED
    assert rt2.health().jobs_failed == 1


def test_hung_device_does_not_poison_next_job():
    """After a job exhausts its budget, the failed-job path must leave
    the device recoverable: the next submission gets its own watchdog
    episodes and completes."""
    faults = FaultInjector(hang_script=[True, True, False])
    rt = FpgaRuntime(faults=faults, max_job_retries=0)
    first = rt.submit(rows=16)
    assert rt.poll(first) == JobState.FAILED
    second = rt.submit(rows=16)
    assert rt.poll(second) == JobState.FAILED  # second scripted hang
    third = rt.submit(rows=16)
    assert rt.poll(third) == JobState.DONE  # script exhausted: runs clean
    assert rt.health().jobs_failed == 2


def test_scheduler_reports_retry_totals():
    from repro.hw.runtime import Job, JobScheduler

    jobs = [Job(job_id=i, rows=64, retries=i % 2) for i in range(6)]
    report = JobScheduler().schedule(jobs)
    assert report.retries == 3
