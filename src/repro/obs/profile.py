"""Kernel-level profiling: self-time attribution and the sim-gap ledger.

The ROADMAP's top open item is the ~100x gap between simulated goodput
(device cycles from :class:`repro.hw.pipeline.MacroPipeline`) and
wall-clock goodput of the NumPy kernels.  This module makes that gap
attributable:

* **self-time pass** — reconstructs the span tree per thread track
  (parents enclose children at ``depth + 1``) and charges each span its
  *self* time, so nested instrumentation (``batch.dot`` containing
  ``batch.modmul`` containing nothing) never double-counts;
* **kernel buckets** — maps span names onto named kernels (NTT hoist,
  modmul, INTT, rescale/extract, key-switch, pack) with per-level
  sub-buckets where the span carries a ``level`` argument;
* **sim join** — prices the same workload on the macro-pipeline cost
  model and apportions each stage's simulated cycles over its kernels
  by wall share, yielding a per-kernel ``gap`` ratio: the ranked
  "where the 100x lives" ledger;
* **exporters** — OpenMetrics text off a metrics registry and
  collapsed-stack (flamegraph) text off the span tree.

:func:`profile_batched_hmvp` is the turnkey driver behind
``repro profile``: build a toy workload, warm the caches, trace one
measured batch, and return the ledger.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .metrics import REGISTRY, MetricsRegistry
from .tracing import TRACER, Span

__all__ = [
    "KERNEL_OF_SPAN",
    "STAGE_OF_KERNEL",
    "KernelRow",
    "SimGapLedger",
    "ProfileRun",
    "span_self_times",
    "build_ledger",
    "profile_batched_hmvp",
    "openmetrics_text",
    "collapsed_stacks",
]

#: span name -> kernel bucket.  Spans not listed here are *structural*
#: (batch.batch, batch.dot, serve.request, ...): their self time is
#: orchestration overhead, reported under ``other``.
KERNEL_OF_SPAN: Dict[str, str] = {
    "batch.hoist": "ntt_hoist",
    "NTT": "ntt_hoist",
    "batch.modmul": "modmul",
    "MULTPOLY": "modmul",
    "batch.intt": "intt",
    "INTT": "intt",
    "batch.rescale_extract": "rescale_extract",
    "RESCALE+EXTRACT": "rescale_extract",
    "KEYSWITCH": "keyswitch",
    "PACK": "pack",
    "PACK.level": "pack",
    "batch.pack": "pack",
    "batch.encode": "encode",
}

#: kernel bucket -> macro-pipeline stage group whose simulated cycles it
#: shares.  ``fill`` = the per-request vector NTTs, ``dot`` = stages 1-4,
#: ``pack`` = stages 5-9 (key-switch included); ``encode`` is one-time
#: staging with no per-request stage.
STAGE_OF_KERNEL: Dict[str, str] = {
    "ntt_hoist": "fill",
    "modmul": "dot",
    "intt": "dot",
    "rescale_extract": "dot",
    "keyswitch": "pack",
    "pack": "pack",
    "encode": "encode",
    "other": "other",
}


def _tree_annotate(
    spans: Sequence[Span],
) -> Tuple[Dict[int, float], Dict[int, Optional[Span]]]:
    """Per-span self time and parent pointers via per-track stacks.

    Within one track, spans are serial (one thread) and the recorder's
    ``depth`` field gives exact nesting: a span's parent is the most
    recent span one level shallower whose interval contains it.
    Returns ``(self_us, parent)`` keyed by ``id(span)``.
    """
    child_sum: Dict[int, float] = {}
    parent: Dict[int, Optional[Span]] = {}
    by_track: Dict[Tuple[int, int], List[Span]] = {}
    for s in spans:
        by_track.setdefault((s.pid, s.track), []).append(s)
    for group in by_track.values():
        group.sort(key=lambda s: (s.ts_us, -s.dur_us))
        open_at: Dict[int, Span] = {}
        for s in group:
            cand = open_at.get(s.depth - 1)
            if (
                cand is not None
                and s.ts_us >= cand.ts_us
                and s.ts_us + s.dur_us <= cand.ts_us + cand.dur_us + 1e-6
            ):
                child_sum[id(cand)] = child_sum.get(id(cand), 0.0) + s.dur_us
                parent[id(s)] = cand
            else:
                parent[id(s)] = None
            open_at[s.depth] = s
    self_us = {
        id(s): max(s.dur_us - child_sum.get(id(s), 0.0), 0.0) for s in spans
    }
    return self_us, parent


def span_self_times(spans: Sequence[Span]) -> Dict[int, float]:
    """Self time (``dur - sum(children dur)``) per span, keyed by id()."""
    self_us, _parent = _tree_annotate(spans)
    return self_us


def _span_level(s: Span) -> Optional[int]:
    """Per-level bucket key: explicit ``level`` arg, else RNS ``limbs``."""
    for key in ("level", "limbs"):
        value = s.args.get(key)
        if isinstance(value, int):
            return value
    return None


@dataclass
class KernelRow:
    """One ranked ledger entry: a kernel's wall time joined to sim cycles."""

    kernel: str
    stage: str
    calls: int
    wall_us: float
    wall_share: float  #: fraction of the measured run's total wall time
    sim_cycles: float  #: stage cycles apportioned to this kernel by wall share
    sim_us: float
    gap: float  #: wall_us / sim_us — "how far from the accelerator"
    by_level: Dict[int, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kernel": self.kernel,
            "stage": self.stage,
            "calls": self.calls,
            "wall_us": self.wall_us,
            "wall_share": self.wall_share,
            "sim_cycles": self.sim_cycles,
            "sim_us": self.sim_us,
            "gap": self.gap,
            "by_level": {str(k): v for k, v in sorted(self.by_level.items())},
        }


@dataclass
class SimGapLedger:
    """The ranked "where the 100x lives" table for one measured run."""

    rows: List[KernelRow]  #: ranked by wall_us, descending
    total_wall_us: float  #: duration of the measured root span(s)
    attributed_wall_us: float  #: self time landing in named kernel buckets
    sim_total_cycles: int
    clock_hz: float
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of measured wall time attributed to named kernels."""
        if self.total_wall_us <= 0.0:
            return 0.0
        return self.attributed_wall_us / self.total_wall_us

    @property
    def sim_total_us(self) -> float:
        return 1e6 * self.sim_total_cycles / self.clock_hz

    @property
    def overall_gap(self) -> float:
        """Measured wall time over simulated device time for the run."""
        sim = self.sim_total_us
        return self.total_wall_us / sim if sim > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rows": [r.to_dict() for r in self.rows],
            "total_wall_us": self.total_wall_us,
            "attributed_wall_us": self.attributed_wall_us,
            "coverage": self.coverage,
            "sim_total_cycles": self.sim_total_cycles,
            "sim_total_us": self.sim_total_us,
            "overall_gap": self.overall_gap,
            "clock_hz": self.clock_hz,
            "params": dict(self.params),
        }

    def render_text(self) -> str:
        """Fixed-width table for terminals."""
        lines = [
            f"{'kernel':<16} {'stage':<7} {'calls':>6} {'wall_ms':>9} "
            f"{'share':>6} {'sim_us':>9} {'gap':>8}"
        ]
        for r in self.rows:
            gap = f"{r.gap:,.0f}x" if r.gap else "-"
            lines.append(
                f"{r.kernel:<16} {r.stage:<7} {r.calls:>6} "
                f"{r.wall_us / 1e3:>9.2f} {r.wall_share:>6.1%} "
                f"{r.sim_us:>9.1f} {gap:>8}"
            )
        lines.append(
            f"attributed {self.coverage:.1%} of {self.total_wall_us / 1e3:.2f} ms"
            f" wall; sim total {self.sim_total_us / 1e3:.3f} ms"
            f" -> overall gap {self.overall_gap:,.0f}x"
        )
        return "\n".join(lines)


def build_ledger(
    spans: Sequence[Span],
    *,
    rows: int,
    requests: int,
    col_tiles: int = 1,
    cham=None,
    root_names: Sequence[str] = ("batch.batch",),
) -> SimGapLedger:
    """Join measured span self-times against the macro-pipeline model.

    ``root_names`` are the measured-run roots whose durations form the
    coverage denominator.  Stage cycles from the cost model (per request,
    scaled by ``requests``) are apportioned over each stage's kernels by
    wall share, so ledger rows sum consistently within a stage.
    """
    from ..hw.arch import cham_default_config
    from ..hw.pipeline import MacroPipeline

    cfg = cham if cham is not None else cham_default_config()
    pipe = MacroPipeline(cfg.engine)
    stats = pipe.simulate_hmvp(rows, col_tiles)
    stage_cycles: Dict[str, float] = {
        "fill": float(pipe.fill_cycles * requests),
        "dot": float(stats.dot_busy_cycles * requests),
        "pack": float(stats.pack_busy_cycles * requests),
        "encode": 0.0,
        "other": 0.0,
    }

    self_us = span_self_times(spans)
    total_wall_us = sum(s.dur_us for s in spans if s.name in root_names)
    wall: Dict[str, float] = {}
    calls: Dict[str, int] = {}
    by_level: Dict[str, Dict[int, float]] = {}
    for s in spans:
        kernel = KERNEL_OF_SPAN.get(s.name)
        if kernel is None:
            continue
        wall[kernel] = wall.get(kernel, 0.0) + self_us[id(s)]
        calls[kernel] = calls.get(kernel, 0) + 1
        level = _span_level(s)
        if level is not None:
            bucket = by_level.setdefault(kernel, {})
            bucket[level] = bucket.get(level, 0.0) + self_us[id(s)]

    stage_wall: Dict[str, float] = {}
    for kernel, us in wall.items():
        stage = STAGE_OF_KERNEL[kernel]
        stage_wall[stage] = stage_wall.get(stage, 0.0) + us

    ledger_rows: List[KernelRow] = []
    clock_hz = float(cfg.clock_hz)
    for kernel, us in wall.items():
        stage = STAGE_OF_KERNEL[kernel]
        stage_total = stage_wall.get(stage, 0.0)
        sim_cycles = (
            stage_cycles.get(stage, 0.0) * (us / stage_total)
            if stage_total > 0
            else 0.0
        )
        sim_us = 1e6 * sim_cycles / clock_hz
        ledger_rows.append(
            KernelRow(
                kernel=kernel,
                stage=stage,
                calls=calls[kernel],
                wall_us=us,
                wall_share=us / total_wall_us if total_wall_us > 0 else 0.0,
                sim_cycles=sim_cycles,
                sim_us=sim_us,
                gap=us / sim_us if sim_us > 0 else 0.0,
                by_level=by_level.get(kernel, {}),
            )
        )
    ledger_rows.sort(key=lambda r: -r.wall_us)
    attributed = sum(
        us for kernel, us in wall.items() if kernel != "encode"
    )
    return SimGapLedger(
        rows=ledger_rows,
        total_wall_us=total_wall_us,
        attributed_wall_us=attributed,
        sim_total_cycles=stats.total_cycles * requests,
        clock_hz=clock_hz,
        params={
            "rows": rows,
            "requests": requests,
            "col_tiles": col_tiles,
        },
    )


@dataclass
class ProfileRun:
    """Everything one profiling run produced."""

    ledger: SimGapLedger
    spans: List[Span]
    wall_s: float
    params: Dict[str, Any] = field(default_factory=dict)


def profile_batched_hmvp(
    rows: int = 8,
    n: int = 128,
    batch: int = 8,
    seed: int = 11,
    plain_bits: int = 40,
    tracer=None,
) -> ProfileRun:
    """Trace one *warm* batched-HMVP run and build its sim-gap ledger.

    Builds a toy scheme and matrix, encodes the matrix and runs one
    warm-up request untimed (caches hot, NumPy buffers allocated), then
    clears the tracer and measures one ``multiply_batch`` over ``batch``
    vectors.  The tracer's prior enabled-state is restored on exit;
    prior spans are cleared (the measured run must be the only content).
    """
    import numpy as np

    from ..core.batch import BatchedHmvp, EncodedMatrixCache
    from ..he.bfv import BfvScheme
    from ..he.params import toy_params

    tr = tracer if tracer is not None else TRACER
    scheme = BfvScheme(
        toy_params(n=n, plain_bits=plain_bits), seed=seed, max_pack=rows
    )
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-8, 8, (rows, n))
    engine = BatchedHmvp(scheme, matrix, cache=EncodedMatrixCache())
    cts = [
        scheme.encrypt_vector(rng.integers(-8, 8, n)) for _ in range(batch)
    ]
    engine.multiply_batch(cts[:1])  # warm-up: untimed, untraced

    was_enabled = tr.enabled
    tr.reset()
    tr.enabled = True
    try:
        start = time.perf_counter()
        engine.multiply_batch(cts)
        wall_s = time.perf_counter() - start
        spans = tr.spans
    finally:
        tr.enabled = was_enabled
    params = {
        "rows": rows,
        "n": n,
        "batch": batch,
        "seed": seed,
        "plain_bits": plain_bits,
        "wall_s": wall_s,
    }
    ledger = build_ledger(spans, rows=rows, requests=batch)
    ledger.params.update(params)
    return ProfileRun(ledger=ledger, spans=spans, wall_s=wall_s, params=params)


# -- exporters ---------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    return "repro_" + _METRIC_NAME_RE.sub("_", name)


def openmetrics_text(registry: Optional[MetricsRegistry] = None) -> str:
    """The registry in OpenMetrics text exposition format.

    Counters export as ``counter`` (with the ``_total`` sample suffix),
    gauges as ``gauge``, histograms as ``summary`` with count/sum and
    p50/p95/p99 quantiles off the reservoir.
    """
    reg = registry if registry is not None else REGISTRY
    snap = reg.snapshot()
    lines: List[str] = []
    for name, value in snap["counters"].items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {value}")
    for name, value in snap["gauges"].items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value if value is not None else 'NaN'}")
    for name in snap["histograms"]:
        hist = reg.histogram(name)
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {hist.count}")
        lines.append(f"{metric}_sum {hist.total}")
        for q in (50, 95, 99):
            lines.append(
                f'{metric}{{quantile="{q / 100}"}} {hist.percentile(q)}'
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def collapsed_stacks(spans: Sequence[Span]) -> str:
    """Spans as collapsed stacks (``a;b;c value``) for flamegraph tools.

    Each line is a semicolon-joined ancestor path with the integer
    microseconds of *self* time accumulated at that path, summed over
    every occurrence — pipe into ``flamegraph.pl`` or speedscope.
    """
    self_us, parent = _tree_annotate(spans)
    totals: Dict[str, float] = {}
    for s in spans:
        names = [s.name]
        node = parent.get(id(s))
        while node is not None:
            names.append(node.name)
            node = parent.get(id(node))
        path = ";".join(reversed(names))
        totals[path] = totals.get(path, 0.0) + self_us[id(s)]
    lines = [
        f"{path} {int(round(us))}"
        for path, us in sorted(totals.items())
        if round(us) >= 1
    ]
    return "\n".join(lines) + ("\n" if lines else "")
