"""Reference negacyclic NTT (the software *gold model*).

This module implements the merged-twiddle negacyclic NTT of Longa-Naehrig:

* forward transform: Cooley-Tukey butterflies, natural-order input,
  bit-reversed output;
* inverse transform: Gentleman-Sande butterflies, bit-reversed input,
  natural-order output, with the final scaling by ``n^{-1}``.

Multiplying in the transform domain computes *negacyclic* convolution, i.e.
multiplication in ``Z_q[X]/(X^N + 1)``, with no zero-padding — the ψ
twisting factors are folded into the twiddle tables.

The hardware datapath model (:mod:`repro.math.cg_ntt` and
:mod:`repro.hw.ntt_datapath`) is validated against this implementation,
and this implementation is itself validated against schoolbook negacyclic
convolution in the test-suite.

All functions accept arrays of shape ``(..., n)`` and transform the last
axis; everything is vectorized NumPy ``uint64``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from ..obs.metrics import REGISTRY as _METRICS
from .modular import modadd_vec, modinv, modmul_vec, modsub_vec
from .primes import negacyclic_psi

__all__ = [
    "bit_reverse",
    "bit_reverse_indices",
    "freeze_array",
    "NegacyclicNtt",
    "FusedLimbNtt",
    "fused_limb_ntt",
    "ntt",
    "intt",
    "negacyclic_convolution_schoolbook",
]


def freeze_array(arr: np.ndarray) -> np.ndarray:
    """Mark a cached table read-only and return it.

    ``lru_cache``d functions hand the *same* array object to every
    caller; without this flag a single in-place mutation would silently
    corrupt every subsequent transform process-wide.
    """
    arr.flags.writeable = False
    return arr


def bit_reverse(x: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``x``."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (x & 1)
        x >>= 1
    return out


@lru_cache(maxsize=None)
def bit_reverse_indices(n: int) -> np.ndarray:
    """Permutation array ``perm`` with ``perm[i] = bit_reverse(i, log2 n)``."""
    bits = n.bit_length() - 1
    if 1 << bits != n:
        raise ValueError(f"n={n} is not a power of two")
    return freeze_array(
        np.array([bit_reverse(i, bits) for i in range(n)], dtype=np.int64)
    )


@lru_cache(maxsize=None)
def _tables(n: int, q: int) -> Tuple[np.ndarray, np.ndarray, int]:
    """Merged twiddle tables.

    Returns ``(psis, inv_psis, n_inv)`` where ``psis[i] = ψ^brv(i)`` and
    ``inv_psis[i] = ψ^{-brv(i)}`` (brv over ``log2 n`` bits), the layout
    the merged CT/GS butterflies index as ``table[m + i]``.
    """
    psi = negacyclic_psi(n, q)
    psi_inv = modinv(psi, q)
    bits = n.bit_length() - 1
    psis = np.empty(n, dtype=np.uint64)
    inv_psis = np.empty(n, dtype=np.uint64)
    for i in range(n):
        r = bit_reverse(i, bits)
        psis[i] = pow(psi, r, q)
        inv_psis[i] = pow(psi_inv, r, q)
    return freeze_array(psis), freeze_array(inv_psis), modinv(n, q)


class NegacyclicNtt:
    """Negacyclic NTT context for a fixed ``(n, q)`` pair.

    Parameters
    ----------
    n:
        Transform length; must be a power of two.
    q:
        Prime modulus with ``q ≡ 1 (mod 2n)``.
    """

    def __init__(self, n: int, q: int) -> None:
        if n & (n - 1) or n < 2:
            raise ValueError(f"n={n} must be a power of two >= 2")
        if q % (2 * n) != 1:
            raise ValueError(f"q={q} is not ≡ 1 (mod {2 * n})")
        self.n = n
        self.q = q
        self._psis, self._inv_psis, self._n_inv = _tables(n, q)
        # per-stage twiddle views, hoisted out of the butterfly loop:
        # contiguous (1, m, 1) slabs so no per-call slice/reshape/copy
        self._fwd_stages = _stage_slabs(self._psis, forward=True)
        self._inv_stages = _stage_slabs(self._inv_psis, forward=False)

    # -- transforms ---------------------------------------------------------

    def forward(self, a: np.ndarray) -> np.ndarray:
        """NTT of ``a`` (last axis), natural order in, bit-reversed out."""
        n, q = self.n, self.q
        a = np.ascontiguousarray(np.asarray(a, dtype=np.uint64))
        if a.shape[-1] != n:
            raise ValueError(f"last axis must have length {n}")
        shape = a.shape
        work = a.reshape(-1, n).copy()
        for m, t, twiddle in self._fwd_stages:
            blocks = work.reshape(work.shape[0], m, 2 * t)
            # views are safe: the mod ops allocate fresh outputs, so both
            # halves are computed before either assignment writes back
            u = blocks[:, :, :t]
            v = modmul_vec(blocks[:, :, t:], twiddle, q)
            s = modadd_vec(u, v, q)
            d = modsub_vec(u, v, q)
            blocks[:, :, :t] = s
            blocks[:, :, t:] = d
        if _METRICS.enabled:
            _METRICS.inc("math.ntt.forward", work.shape[0])
        return work.reshape(shape)

    def inverse(self, a: np.ndarray) -> np.ndarray:
        """Inverse NTT of ``a`` (last axis), bit-reversed in, natural out."""
        n, q = self.n, self.q
        a = np.ascontiguousarray(np.asarray(a, dtype=np.uint64))
        if a.shape[-1] != n:
            raise ValueError(f"last axis must have length {n}")
        shape = a.shape
        work = a.reshape(-1, n).copy()
        for m, t, twiddle in self._inv_stages:
            blocks = work.reshape(work.shape[0], m, 2 * t)
            u = blocks[:, :, :t]
            v = blocks[:, :, t:]
            s = modadd_vec(u, v, q)
            d = modmul_vec(modsub_vec(u, v, q), twiddle, q)
            blocks[:, :, :t] = s
            blocks[:, :, t:] = d
        work = modmul_vec(work, np.uint64(self._n_inv), q)
        if _METRICS.enabled:
            _METRICS.inc("math.ntt.inverse", work.shape[0])
        return work.reshape(shape)

    def pointwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Coefficient-wise product in the transform domain (MULTPOLY)."""
        if _METRICS.enabled:
            _METRICS.inc("math.ntt.pointwise")
        return modmul_vec(a, b, self.q)

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product ``a * b mod (X^n + 1, q)`` via NTT."""
        return self.inverse(self.pointwise(self.forward(a), self.forward(b)))


class FusedLimbNtt:
    """Negacyclic NTT over a whole RNS limb stack in one butterfly sweep.

    The per-limb :class:`NegacyclicNtt` path issues ``L`` separate
    transforms per stack — ``L * log2(n)`` butterfly stages of small
    NumPy calls whose interpreter overhead dominates at CHAM's ring
    sizes.  This context stacks the merged twiddle tables of all ``L``
    moduli into contiguous ``(L, 1, m, 1)`` per-stage slabs and runs
    *one* butterfly sweep over the full ``(L, ..., n)`` stack, with the
    per-limb modulus broadcast as a ``(L, 1, 1, 1)`` column through the
    Barrett modmul.  Output is bit-identical per limb to the per-limb
    path (same butterflies, same exact arithmetic) — the equivalence
    suite pins it.

    This is the software mirror of CHAM's limb-parallel NTT lanes
    (Section III-B): all residue channels advance through the same
    stage schedule in lock-step, which is also what makes the schedule
    hazard-free in the HF-NTT sense — no cross-limb data dependencies.
    """

    def __init__(self, n: int, moduli: Tuple[int, ...]) -> None:
        if not moduli:
            raise ValueError("need at least one modulus")
        self.n = n
        self.moduli = tuple(int(q) for q in moduli)
        per_limb = [_tables(n, q) for q in self.moduli]
        psis = np.stack([t[0] for t in per_limb])
        inv_psis = np.stack([t[1] for t in per_limb])
        self._n_inv = freeze_array(
            np.array([t[2] for t in per_limb], dtype=np.uint64).reshape(-1, 1, 1)
        )
        # .copy() so the column owns its buffer: the modmul column cache
        # resolves views to their read-only root array, and a root that
        # is itself a view of a mutable temporary is not cacheable
        self._q_col = freeze_array(
            np.array(self.moduli, dtype=np.uint64).reshape(-1, 1, 1, 1).copy()
        )
        self._q_flat = freeze_array(self._q_col.reshape(-1, 1, 1))
        self._fwd_stages = _stage_slabs(psis, forward=True, fused=True)
        self._inv_stages = _stage_slabs(inv_psis, forward=False, fused=True)

    def _prepare(self, a: np.ndarray) -> Tuple[np.ndarray, Tuple[int, ...]]:
        a = np.ascontiguousarray(np.asarray(a, dtype=np.uint64))
        if a.ndim < 2 or a.shape[0] != len(self.moduli) or a.shape[-1] != self.n:
            raise ValueError(
                f"expected a ({len(self.moduli)}, ..., {self.n}) limb stack, "
                f"got shape {a.shape}"
            )
        return a.reshape(len(self.moduli), -1, self.n).copy(), a.shape

    def forward(self, a: np.ndarray) -> np.ndarray:
        """Forward NTT of every limb of a ``(L, ..., n)`` stack at once."""
        work, shape = self._prepare(a)
        q = self._q_col
        for m, t, twiddle in self._fwd_stages:
            blocks = work.reshape(work.shape[0], work.shape[1], m, 2 * t)
            u = blocks[:, :, :, :t]
            v = modmul_vec(blocks[:, :, :, t:], twiddle, q)
            s = modadd_vec(u, v, q)
            d = modsub_vec(u, v, q)
            blocks[:, :, :, :t] = s
            blocks[:, :, :, t:] = d
        if _METRICS.enabled:
            _METRICS.inc("math.ntt.forward", work.shape[0] * work.shape[1])
        return work.reshape(shape)

    def inverse(self, a: np.ndarray) -> np.ndarray:
        """Inverse NTT of every limb of a ``(L, ..., n)`` stack at once."""
        work, shape = self._prepare(a)
        q = self._q_col
        for m, t, twiddle in self._inv_stages:
            blocks = work.reshape(work.shape[0], work.shape[1], m, 2 * t)
            u = blocks[:, :, :, :t]
            v = blocks[:, :, :, t:]
            s = modadd_vec(u, v, q)
            d = modmul_vec(modsub_vec(u, v, q), twiddle, q)
            blocks[:, :, :, :t] = s
            blocks[:, :, :, t:] = d
        work = modmul_vec(work, self._n_inv, self._q_flat)
        if _METRICS.enabled:
            _METRICS.inc("math.ntt.inverse", work.shape[0] * work.shape[1])
        return work.reshape(shape)


def _stage_slabs(table: np.ndarray, forward: bool, fused: bool = False):
    """Hoisted per-stage twiddle slabs for the butterfly loops.

    ``table`` is the merged-order twiddle vector ``(n,)`` (per-limb) or
    stack ``(L, n)`` (fused).  Returns ``[(m, t, twiddle), ...]`` in
    stage order with each ``twiddle`` a frozen contiguous array shaped
    to broadcast over ``(batch, m, t)`` butterflies (with a leading limb
    axis in the fused layout).
    """
    n = table.shape[-1]
    stages = []
    if forward:
        m, t = 1, n
        while m < n:
            t //= 2
            stages.append((m, t))
            m *= 2
    else:
        m, t = n // 2, 1
        while m >= 1:
            stages.append((m, t))
            t *= 2
            m //= 2
    out = []
    for m, t in stages:
        slab = table[..., m : 2 * m]
        shape = (-1, 1, m, 1) if fused else (1, m, 1)
        out.append(
            (m, t, freeze_array(np.ascontiguousarray(slab).reshape(shape)))
        )
    return out


@lru_cache(maxsize=None)
def _context(n: int, q: int) -> NegacyclicNtt:
    return NegacyclicNtt(n, q)


@lru_cache(maxsize=None)
def fused_limb_ntt(n: int, moduli: Tuple[int, ...]) -> FusedLimbNtt:
    """Cached :class:`FusedLimbNtt` per ``(n, moduli)`` pair."""
    return FusedLimbNtt(n, moduli)


def ntt(a: np.ndarray, q: int) -> np.ndarray:
    """Functional forward negacyclic NTT (context cached per ``(n, q)``)."""
    a = np.asarray(a, dtype=np.uint64)
    return _context(a.shape[-1], q).forward(a)


def intt(a: np.ndarray, q: int) -> np.ndarray:
    """Functional inverse negacyclic NTT."""
    a = np.asarray(a, dtype=np.uint64)
    return _context(a.shape[-1], q).inverse(a)


def negacyclic_convolution_schoolbook(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """O(n²) negacyclic convolution — the correctness oracle for the NTTs.

    ``c_k = sum_{i+j=k} a_i b_j - sum_{i+j=k+n} a_i b_j (mod q)``.
    """
    a = np.asarray(a, dtype=object)
    b = np.asarray(b, dtype=object)
    n = a.shape[-1]
    if b.shape[-1] != n:
        raise ValueError("length mismatch")
    c = np.zeros(n, dtype=object)
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k < n:
                c[k] += term
            else:
                c[k - n] -= term
    return np.asarray(np.mod(c, q), dtype=np.uint64)
