"""Beaver-triple generation for secure matrix-vector products (§V-B4).

In Delphi-style cryptographic neural-network inference, the two parties
pre-generate *multiplication triples* so that the online phase uses only
cheap share arithmetic.  For a server matrix ``W`` and an additively
shared vector ``a = a1 + a2 (mod t)``, the parties need shares
``c1 + c2 = W · a``:

1. the client samples ``a1``, encrypts it and sends ``[[a1]]``;
2. the server computes ``[[W · a1]]`` homomorphically — one CHAM HMVP —
   samples a uniform mask ``s``, and returns ``[[W · a1 - s]]``;
3. the client decrypts ``c1 = W·a1 - s``; the server keeps
   ``c2 = W·a2 + s``.

Neither party learns the other's inputs (the mask blinds the server's
matrix action; the ciphertext hides ``a1``), and ``c1 + c2 = W·(a1+a2)``.
The paper's Fig. 7c measures exactly this preprocessing step, where each
matrix-vector multiplication consumes one triple — so triple throughput
is HMVP throughput.

Everything is exact arithmetic in ``Z_t``; the correctness property is
asserted by the test-suite for many shapes via :func:`verify_triple`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import obs
from ..core.hmvp import HmvpOpCount, TiledHmvp
from ..he.bfv import BfvScheme

__all__ = ["BeaverTriple", "BeaverGenerator", "MatrixBeaverGenerator", "verify_triple"]


@dataclass
class BeaverTriple:
    """One matrix-vector Beaver triple over ``Z_t``.

    ``a1, c1`` belong to the client; ``a2, c2`` (and ``W``) to the server.
    """

    matrix: np.ndarray
    a1: np.ndarray
    a2: np.ndarray
    c1: np.ndarray
    c2: np.ndarray
    t: int

    @property
    def shape(self) -> "tuple[int, int]":
        return tuple(self.matrix.shape)


def verify_triple(triple: BeaverTriple) -> bool:
    """Check ``c1 + c2 == W (a1 + a2)`` in ``Z_t``."""
    t = triple.t
    a = (triple.a1.astype(object) + triple.a2.astype(object)) % t
    want = (triple.matrix.astype(object) @ a) % t
    got = (triple.c1.astype(object) + triple.c2.astype(object)) % t
    return bool(np.array_equal(want, got))


@dataclass
class GenerationStats:
    """Tally over a generation session (for the Fig. 7c perf model)."""

    triples: int = 0
    encryptions: int = 0
    decrypted_packs: int = 0
    ops: HmvpOpCount = field(default_factory=HmvpOpCount)


class BeaverGenerator:
    """Two-party triple generator driven by the real HMVP pipeline.

    The single :class:`BfvScheme` instance plays the client's keypair;
    the server only ever touches ciphertexts (the code paths are the
    same ones a two-process deployment would run).
    """

    def __init__(self, scheme: BfvScheme, seed: Optional[int] = None) -> None:
        self.scheme = scheme
        self.tiler = TiledHmvp(scheme)
        self.rng = np.random.default_rng(seed)
        self.stats = GenerationStats()

    def _rand_vec(self, k: int) -> np.ndarray:
        t = self.scheme.params.plain_modulus
        return self.rng.integers(0, t, k, dtype=np.uint64).astype(object) % t

    def generate(self, matrix: np.ndarray) -> BeaverTriple:
        """Produce one triple for server matrix ``W`` (entries small ints).

        The mask ``s`` is folded in *after* decryption rather than
        homomorphically: subtracting a uniform mask from the decrypted
        value is distributionally identical to decrypting a masked
        ciphertext, and keeps the packed-slot bookkeeping out of the
        protocol core.  A production deployment would add ``s`` via
        ``add_plain`` on the packed ciphertext; both variants are
        exercised in the tests.
        """
        matrix = np.asarray(matrix)
        m, n = matrix.shape
        t = self.scheme.params.plain_modulus

        with obs.span("beaver.triple", rows=m, cols=n):
            # client side: sample + encrypt a1
            a1 = self._rand_small(n)
            a2 = self._rand_small(n)
            ct_tiles = self.tiler.encrypt_vector(a1)
            self.stats.encryptions += len(ct_tiles)

            # server side: homomorphic W * a1, then mask
            result = self.tiler.multiply(matrix, ct_tiles)
            self.stats.ops = self.stats.ops + result.ops
            s = self._rand_vec(m)

            # client side: decrypt and subtract the mask share
            w_a1 = result.decrypt(self.scheme)
            self.stats.decrypted_packs += len(result.packs)
            c1 = (np.asarray(w_a1, dtype=object) - s) % t

            # server side: local cleartext half
            c2 = (matrix.astype(object) @ a2.astype(object) + s) % t

        self.stats.triples += 1
        obs.inc("apps.beaver.triples")
        return BeaverTriple(matrix=matrix, a1=a1, a2=a2, c1=c1, c2=c2, t=t)

    def _rand_small(self, k: int) -> np.ndarray:
        """Share values kept small enough that W*a1 stays inside Z_t.

        Production systems share over the full ring and reduce mod t;
        with coefficient HMVP the inner products must not wrap, so
        shares are drawn from a bounded range sized to the matrix.
        """
        return self.rng.integers(-(1 << 14), 1 << 14, k, dtype=np.int64)

    def generate_batch(self, matrix: np.ndarray, count: int) -> List[BeaverTriple]:
        """Generate ``count`` triples for the same server matrix."""
        return [self.generate(matrix) for _ in range(count)]


class MatrixBeaverGenerator(BeaverGenerator):
    """Matrix-matrix triples: shares of ``W · (A1 + A2)`` column-wise.

    The matrix extension of the vector triple: the client's share ``A1``
    is a ``(n, cols)`` matrix encrypted one column per ciphertext, the
    server evaluates each column with the row-hoisted batched HMVP
    (:class:`~repro.core.batch.BatchedHmvp`), and the masking/open steps
    follow per column.  Delphi consumes exactly these for convolutional
    layers expressed as matrices.
    """

    def generate_matrix(self, matrix: np.ndarray, cols: int) -> List[BeaverTriple]:
        """One triple per column, sharing the hoisted row transforms."""
        from ..core.batch import BatchedHmvp

        matrix = np.asarray(matrix)
        m, n = matrix.shape
        t = self.scheme.params.plain_modulus
        batched = BatchedHmvp(self.scheme, matrix)

        triples: List[BeaverTriple] = []
        a1_cols = [self._rand_small(n) for _ in range(cols)]
        cts = [self.scheme.encrypt_vector(col) for col in a1_cols]
        self.stats.encryptions += cols
        results = batched.multiply_batch(cts)
        for a1, result in zip(a1_cols, results):
            self.stats.ops = self.stats.ops + result.ops
            a2 = self._rand_small(n)
            s = self._rand_vec(m)
            w_a1 = result.decrypt(self.scheme)
            self.stats.decrypted_packs += len(result.packs)
            c1 = (np.asarray(w_a1, dtype=object) - s) % t
            c2 = (matrix.astype(object) @ a2.astype(object) + s) % t
            self.stats.triples += 1
            triples.append(
                BeaverTriple(matrix=matrix, a1=a1, a2=a2, c1=c1, c2=c2, t=t)
            )
        return triples
