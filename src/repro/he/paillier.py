"""Paillier additively-homomorphic encryption — the FATE baseline.

The paper's HeteroLR experiment (Section V-B3) replaces FATE's Paillier
with B/FV to unlock hardware acceleration.  To reproduce that comparison
we need a real Paillier: keygen over an RSA modulus, encryption with the
standard ``g = n + 1`` shortcut, decryption via the Carmichael function,
homomorphic addition (ciphertext product) and plaintext multiplication
(ciphertext exponentiation).

Signed values are supported through centered encoding mod ``n``.  The
default 2048-bit modulus matches FATE's production setting; tests use
smaller moduli for speed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

__all__ = ["PaillierPublicKey", "PaillierSecretKey", "Paillier", "paillier_keygen"]

#: Default RNG seed when the caller passes ``seed=None``.  The
#: reproduction is deterministic end to end ("same checkout, same
#: results" — see the determinism audit); production deployments must
#: pass their own entropy explicitly.
DEFAULT_SEED = 0xFA7E


def _random_prime(bits: int, rng: random.Random) -> int:
    from ..math.primes import is_prime

    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate):
            return candidate


@dataclass(frozen=True)
class PaillierPublicKey:
    """``(n, g)`` with ``g = n + 1``."""

    n: int

    @property
    def n_squared(self) -> int:
        return self.n * self.n

    @property
    def g(self) -> int:
        return self.n + 1

    @property
    def half(self) -> int:
        return self.n // 2


@dataclass(frozen=True)
class PaillierSecretKey:
    """``λ = lcm(p-1, q-1)`` and the precomputed ``μ = L(g^λ)^(-1)``."""

    public: PaillierPublicKey
    lam: int
    mu: int


def paillier_keygen(
    bits: int = 2048, seed: Optional[int] = None
) -> PaillierSecretKey:
    """Generate a Paillier key pair with an RSA modulus of ``bits`` bits."""
    if seed is None:
        seed = DEFAULT_SEED
    rng = random.Random(seed)
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(half, rng)
        if p != q and math.gcd(p * q, (p - 1) * (q - 1)) == 1:
            break
    n = p * q
    pub = PaillierPublicKey(n)
    lam = (p - 1) * (q - 1) // math.gcd(p - 1, q - 1)
    # L(g^λ mod n²) = (g^λ - 1) / n ; with g = n+1, g^λ = 1 + λn (mod n²)
    x = pow(pub.g, lam, pub.n_squared)
    l_val = (x - 1) // n
    mu = pow(l_val, -1, n)
    return PaillierSecretKey(public=pub, lam=lam, mu=mu)


class Paillier:
    """A Paillier instance with encrypt/decrypt/homomorphic operations."""

    def __init__(self, bits: int = 2048, seed: Optional[int] = None) -> None:
        if seed is None:
            seed = DEFAULT_SEED
        self.sk = paillier_keygen(bits, seed)
        self.pk = self.sk.public
        self._rng = random.Random(seed + 1)

    # -- scalar operations --------------------------------------------------------

    def encrypt(self, m: int) -> int:
        """Encrypt a (signed) integer; encoded centered mod ``n``."""
        n, n2 = self.pk.n, self.pk.n_squared
        m_enc = m % n
        while True:
            r = self._rng.randrange(1, n)
            if math.gcd(r, n) == 1:
                break
        # (n+1)^m = 1 + m*n (mod n^2) — the g = n+1 shortcut.
        # Arbitrary-precision Python ints: exact at any modulus width.
        return (1 + m_enc * n) % n2 * pow(r, n, n2) % n2  # repro: noqa REPRO101

    def decrypt(self, c: int) -> int:
        """Decrypt to a centered signed integer."""
        n, n2 = self.pk.n, self.pk.n_squared
        x = pow(c, self.sk.lam, n2)
        # scalar Python-int arithmetic throughout: exact by construction
        m = (x - 1) // n * self.sk.mu % n  # repro: noqa REPRO101
        return m - n if m > self.pk.half else m

    def add(self, c1: int, c2: int) -> int:
        """Homomorphic addition: ciphertext multiplication mod ``n²``."""
        return c1 * c2 % self.pk.n_squared  # repro: noqa REPRO101 (big ints)

    def add_plain(self, c: int, m: int) -> int:
        n, n2 = self.pk.n, self.pk.n_squared
        return c * (1 + (m % n) * n) % n2  # repro: noqa REPRO101 (big ints)

    def mul_plain(self, c: int, k: int) -> int:
        """Homomorphic plaintext multiplication: exponentiation mod ``n²``."""
        return pow(c, k % self.pk.n, self.pk.n_squared)

    # -- vector convenience (the FATE workload shape) --------------------------------

    def encrypt_vector(self, values: Iterable[int]) -> List[int]:
        return [self.encrypt(int(v)) for v in values]

    def decrypt_vector(self, cts: Iterable[int]) -> List[int]:
        return [self.decrypt(c) for c in cts]

    def add_vectors(self, a: List[int], b: List[int]) -> List[int]:
        if len(a) != len(b):
            raise ValueError("length mismatch")
        return [self.add(x, y) for x, y in zip(a, b)]

    def matvec(
        self, matrix: Sequence[Sequence[int]], ct_vector: List[int]
    ) -> List[int]:
        """Homomorphic MVP: for each row, ``prod_j ct_j^(A_ij)``.

        This is the operation FATE performs per mini-batch, and the one
        the paper's Fig. 7 calls ``matvec``.
        """
        out = []
        for row in matrix:
            if len(row) != len(ct_vector):
                raise ValueError("row length mismatch")
            acc = self.encrypt(0)
            for a_ij, c_j in zip(row, ct_vector):
                acc = self.add(acc, self.mul_plain(c_j, int(a_ij)))
            out.append(acc)
        return out
