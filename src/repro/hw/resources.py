"""FPGA resource model — reproduces Table II and the Table III variants.

The model is bottom-up with constants calibrated against the paper's
published synthesis results:

* the three NTT-unit memory implementations come straight from Table III
  (BRAM-only / BRAM+dRAM / dRAM-only LUT and BRAM counts);
* each butterfly unit (BFU) costs 8 DSP slices — a 35×38-bit modular
  multiplier tiled from 27×18 DSP blocks plus the low-Hamming-weight
  shift-add reduction (Section IV-A3), which is what lets the modular
  reduction avoid further DSPs;
* per-engine PPU / control / buffer constants are fitted so that the
  default two-engine configuration lands on Table II within ~2%.

A generic-Barrett variant of the modular multiplier is provided for the
low-Hamming-weight ablation: Barrett needs two extra wide multiplies
(≈ 8 more DSPs per BFU) and more LUT carry logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .arch import ChamConfig, EngineConfig, FpgaDevice, NttUnitConfig, VU9P

__all__ = [
    "ResourceVector",
    "ntt_unit_resources",
    "engine_resources",
    "platform_resources",
    "total_resources",
    "utilization",
    "TABLE2_REFERENCE",
    "TABLE3_NTT_VARIANTS",
]


@dataclass(frozen=True)
class ResourceVector:
    """LUT/FF/BRAM/URAM/DSP counts for one module."""

    lut: int = 0
    ff: int = 0
    bram: int = 0
    uram: int = 0
    dsp: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.lut + other.lut,
            self.ff + other.ff,
            self.bram + other.bram,
            self.uram + other.uram,
            self.dsp + other.dsp,
        )

    def scale(self, k: int) -> "ResourceVector":
        return ResourceVector(
            self.lut * k, self.ff * k, self.bram * k, self.uram * k, self.dsp * k
        )

    def fits(self, device: FpgaDevice, max_util: float = 1.0) -> bool:
        return (
            self.lut <= device.luts * max_util
            and self.ff <= device.ffs * max_util
            and self.bram <= device.bram36 * max_util
            and self.uram <= device.urams * max_util
            and self.dsp <= device.dsps * max_util
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "LUT": self.lut,
            "FF": self.ff,
            "BRAM": self.bram,
            "URAM": self.uram,
            "DSP": self.dsp,
        }


#: Table II reference numbers (for benchmark comparison output).
TABLE2_REFERENCE = {
    "Compute Engine 0": ResourceVector(259_318, 89_894, 640, 294, 986),
    "Compute Engine 1": ResourceVector(259_502, 90_043, 640, 294, 986),
    "Platform": ResourceVector(234_066, 302_670, 278, 7, 14),
}

#: Table III single-NTT-module variants: (LUT, BRAM) per memory choice.
TABLE3_NTT_VARIANTS = {
    "bram": (3_324, 14),
    "bram+dram": (6_508, 6),
    "dram": (9_248, 0),
}

#: DSPs per butterfly unit: 35×38 modular multiplier tiled from 27×18
#: slices; the low-Hamming reduction costs no DSPs.
_DSP_PER_BFU = 8
#: extra DSPs per BFU if a generic Barrett reduction were used instead
_BARRETT_EXTRA_DSP_PER_BFU = 8
_BARRETT_EXTRA_LUT_PER_BFU = 420

#: fitted per-engine constants (PPUs, pack datapath, reduce buffer, control)
_ENGINE_PPU_LUT = 96_000
_ENGINE_PPU_FF = 30_000
_ENGINE_PPU_URAM = 150
_ENGINE_PPU_BRAM = 120
_ENGINE_PPU_DSP = 26
_ENGINE_IO_URAM_PER_POLY = 12
_ENGINE_CTRL_LUT = 64_000
_ENGINE_CTRL_FF = 12_000
_ENGINE_CTRL_BRAM = 92

#: fitted platform (Vitis/in-house shell, PCIe, DDR controllers) constants
_PLATFORM = ResourceVector(234_066, 302_670, 278, 7, 14)


def ntt_unit_resources(
    unit: NttUnitConfig, barrett: bool = False
) -> ResourceVector:
    """Resources of one constant-geometry NTT unit (Table III row).

    LUT/BRAM follow the selected memory technology; DSP count scales with
    the butterfly parallelism.  ``barrett=True`` models the ablation where
    the moduli are generic primes and reduction needs wide multiplies.
    """
    if unit.memory not in TABLE3_NTT_VARIANTS:
        raise ValueError(
            f"unknown memory technology {unit.memory!r}; "
            f"choose from {sorted(TABLE3_NTT_VARIANTS)}"
        )
    base_lut, base_bram = TABLE3_NTT_VARIANTS[unit.memory]
    # Table III is the 4-BFU point; LUT and BRAM scale with n_bfu (datapath
    # width and bank count), the fixed control overhead does not.
    scale = unit.n_bfu / 4
    lut = int(base_lut * (0.35 + 0.65 * scale))
    bram = int(round(base_bram * scale))
    dsp = unit.n_bfu * _DSP_PER_BFU
    ff = int(400 * unit.n_bfu)
    if barrett:
        dsp += unit.n_bfu * _BARRETT_EXTRA_DSP_PER_BFU
        lut += unit.n_bfu * _BARRETT_EXTRA_LUT_PER_BFU
    return ResourceVector(lut=lut, ff=ff, bram=bram, uram=0, dsp=dsp)


def engine_resources(engine: EngineConfig, barrett: bool = False) -> ResourceVector:
    """Resources of one compute engine (Table II 'Compute Engine' rows)."""
    unit = ntt_unit_resources(engine.ntt_unit, barrett)
    total = unit.scale(engine.total_ntt_units)
    ppu = ResourceVector(
        lut=_ENGINE_PPU_LUT * engine.ppu_lanes // 4,
        ff=_ENGINE_PPU_FF * engine.ppu_lanes // 4,
        bram=_ENGINE_PPU_BRAM,
        uram=_ENGINE_PPU_URAM,
        dsp=_ENGINE_PPU_DSP,
    )
    io = ResourceVector(
        uram=_ENGINE_IO_URAM_PER_POLY * engine.io_buffer_polys,
        bram=engine.reduce_buffer_entries // 2,
    )
    ctrl = ResourceVector(
        lut=_ENGINE_CTRL_LUT, ff=_ENGINE_CTRL_FF, bram=_ENGINE_CTRL_BRAM
    )
    return total + ppu + io + ctrl


def platform_resources() -> ResourceVector:
    """The static shell (PCIe, DMA, DDR controllers) — Table II 'Platform'."""
    return _PLATFORM


def total_resources(cfg: ChamConfig, barrett: bool = False) -> ResourceVector:
    """Whole-design resources: engines + platform."""
    total = platform_resources()
    for _ in range(cfg.engines):
        total = total + engine_resources(cfg.engine, barrett)
    return total


def utilization(vec: ResourceVector, device: FpgaDevice = VU9P) -> Dict[str, float]:
    """Percent utilization per resource class (Table II 'Total' row)."""
    return {
        "LUT": 100.0 * vec.lut / device.luts,
        "FF": 100.0 * vec.ff / device.ffs,
        "BRAM": 100.0 * vec.bram / device.bram36,
        "URAM": 100.0 * vec.uram / device.urams,
        "DSP": 100.0 * vec.dsp / device.dsps,
    }
