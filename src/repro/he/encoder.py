"""Plaintexts and the coefficient encoders of Section II-C (Eq. 1).

The coefficient-encoded HMVP multiplies the *row polynomial*

``pt^(A_i) = A_{i,0} - sum_{j=1}^{N-1} A_{i,j} X^{N-j}``

by the *vector polynomial* ``pt^(v) = sum_j v_j X^j``; the constant
coefficient of the product is exactly the inner product ``<A_i, v>``
(Eq. 2).  Both encoders live here, together with a signed-integer and a
fixed-point view of the plaintext space ``Z_t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from .params import CheParams

__all__ = ["Plaintext", "CoefficientEncoder", "FixedPointCodec"]


@dataclass
class Plaintext:
    """A plaintext polynomial: ``n`` coefficients in ``[0, t)``."""

    coeffs: np.ndarray
    t: int

    def __post_init__(self) -> None:
        self.coeffs = np.asarray(self.coeffs, dtype=np.uint64)
        if self.coeffs.ndim != 1:
            raise ValueError("plaintext is one-dimensional")

    @property
    def n(self) -> int:
        return self.coeffs.shape[0]

    def centered(self) -> np.ndarray:
        """Coefficients lifted to ``(-t/2, t/2]`` as int64 (t < 2**62)."""
        half = self.t // 2
        # single-limb plaintext residues: t < 2**62 so the centered lift
        # fits int64 exactly (multi-limb centering uses center_lift_vec)
        c = self.coeffs.astype(np.int64)  # repro: noqa REPRO102
        return np.where(c > half, c - self.t, c)

    def infinity_norm(self) -> int:
        """Max |coefficient| under the centered lift (noise analysis)."""
        return int(np.abs(self.centered()).max(initial=0))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Plaintext)
            and self.t == other.t
            and np.array_equal(self.coeffs, other.coeffs)
        )


class CoefficientEncoder:
    """Encode cleartext integers as plaintext polynomial coefficients."""

    def __init__(self, params: CheParams) -> None:
        self.params = params
        self.n = params.n
        self.t = params.plain_modulus

    # -- scalars / generic vectors ------------------------------------------------

    def _reduce(self, values: np.ndarray) -> np.ndarray:
        arr = np.asarray(values)
        if arr.dtype == object or np.issubdtype(arr.dtype, np.signedinteger):
            return np.mod(arr.astype(object), self.t).astype(np.uint64)
        return arr.astype(np.uint64) % np.uint64(self.t)

    def encode_coeffs(self, values: Sequence[int]) -> Plaintext:
        """Direct coefficient placement (value ``j`` at ``X^j``)."""
        vals = np.asarray(values)
        if vals.shape[0] > self.n:
            raise ValueError(f"{vals.shape[0]} values exceed ring degree {self.n}")
        coeffs = np.zeros(self.n, dtype=np.uint64)
        coeffs[: vals.shape[0]] = self._reduce(vals)
        return Plaintext(coeffs, self.t)

    def decode_coeffs(self, pt: Plaintext, count: int) -> np.ndarray:
        """Inverse of :meth:`encode_coeffs` (centered signed values)."""
        return pt.centered()[:count].copy()

    # -- Eq. 1 encoders -------------------------------------------------------------

    def encode_vector(self, v: Sequence[int]) -> Plaintext:
        """``pt^(v) = sum_j v_j X^j`` (the encrypted operand of HMVP)."""
        return self.encode_coeffs(v)

    def encode_row(self, row: Sequence[int]) -> Plaintext:
        """``pt^(A_i) = A_{i,0} - sum_{j>=1} A_{i,j} X^{N-j}`` (Eq. 1).

        Rows shorter than ``n`` are implicitly zero-padded (their missing
        reversed coefficients stay zero).
        """
        row = np.asarray(row)
        if row.shape[0] > self.n:
            raise ValueError(f"row length {row.shape[0]} exceeds ring degree")
        reduced = self._reduce(row)
        coeffs = np.zeros(self.n, dtype=np.uint64)
        coeffs[0] = reduced[0]
        if row.shape[0] > 1:
            # -A_{i,j} at X^{N-j} for j = 1..len-1
            neg = (np.uint64(self.t) - reduced[1:]) % np.uint64(self.t)
            coeffs[self.n - (row.shape[0] - 1) :] = neg[::-1]
        return Plaintext(coeffs, self.t)

    def encode_matrix_rows(self, matrix: np.ndarray) -> "list[Plaintext]":
        """Row-encode an ``(m, <=n)`` matrix: one plaintext per row."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError("matrix must be two-dimensional")
        return [self.encode_row(matrix[i]) for i in range(matrix.shape[0])]

    # -- packed-result decoding --------------------------------------------------------

    def decode_packed(
        self, pt: Plaintext, count: int, scale_pow2: int
    ) -> np.ndarray:
        """Read ``count`` packed slots out of a PACKLWES result.

        Slot ``i`` lives at coefficient ``i * n / 2**ceil(log2 count)`` and
        carries ``2**scale_pow2`` times the true value (each PACKTWOLWES
        doubles the message); the factor is removed mod ``t`` here, in the
        clear, which is why ``t`` must be odd.
        """
        levels = max(count - 1, 0).bit_length()
        stride = self.n >> levels
        slots = pt.coeffs[: count * stride : stride].astype(object)
        inv = pow(2, -scale_pow2, self.t) if scale_pow2 else 1
        # object-dtype big-int multiply: exact at any modulus width
        vals = (slots * inv) % self.t  # repro: noqa REPRO101
        half = self.t // 2
        return np.where(vals > half, vals - self.t, vals)


@dataclass(frozen=True)
class FixedPointCodec:
    """Signed fixed-point rationals over ``Z_t`` (used by HeteroLR).

    A real ``x`` is stored as ``round(x * 2**frac_bits) mod t``.  Products
    of two encodings carry ``2**(2*frac_bits)``; :meth:`decode` takes the
    scale actually accumulated.
    """

    t: int
    frac_bits: int = 13

    @property
    def scale(self) -> int:
        return 1 << self.frac_bits

    def encode(self, x: Union[float, np.ndarray]) -> np.ndarray:
        # rint yields float64; go through int64 so the values are exact
        # Python ints before reduction (floats cannot represent residues
        # of a 1024-bit Paillier modulus)
        vals = np.rint(np.asarray(x, dtype=np.float64) * self.scale)
        ints = vals.astype(np.int64).astype(object)
        return np.mod(ints, self.t)

    def decode(
        self, enc: np.ndarray, scale_bits: Optional[int] = None
    ) -> np.ndarray:
        """Centered decode; ``scale_bits`` defaults to one factor."""
        bits = self.frac_bits if scale_bits is None else scale_bits
        arr = np.mod(np.asarray(enc, dtype=object), self.t)
        half = self.t // 2
        signed = np.where(arr > half, arr - self.t, arr)
        return signed.astype(np.float64) / float(1 << bits)

    def max_representable(self, scale_bits: Optional[int] = None) -> float:
        bits = self.frac_bits if scale_bits is None else scale_bits
        return float(self.t // 2) / float(1 << bits)
