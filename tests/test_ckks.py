"""Tests for the CKKS scheme over the CHAM substrate."""

import numpy as np
import pytest

from repro.he.ckks import CkksScheme, CkksSlotEncoder
from repro.he.params import toy_params


@pytest.fixture(scope="module")
def ckks():
    return CkksScheme(toy_params(n=128, plain_bits=40), seed=17, max_pack=16)


def test_coeff_roundtrip(ckks):
    v = np.array([1.5, -2.25, 3.14159, 1e-3, -7.0])
    ct = ckks.encrypt_coeffs(v, augmented=False)
    out = ckks.decrypt_coeffs(ct, 5)
    assert np.max(np.abs(out - v)) < 1e-5


def test_coeff_roundtrip_augmented(ckks):
    v = np.linspace(-1, 1, 32)
    ct = ckks.encrypt_coeffs(v)
    assert ct.is_augmented
    assert np.max(np.abs(ckks.decrypt_coeffs(ct, 32) - v)) < 1e-5


def test_slot_roundtrip(ckks):
    z = np.array([1 + 2j, -0.5 + 0.25j, 3.0 - 1.0j])
    ct = ckks.encrypt_slots(z)
    out = ckks.decrypt_slots(ct, 3)
    assert np.max(np.abs(out - z)) < 1e-5


def test_slot_encoder_capacity():
    enc = CkksSlotEncoder(128)
    assert enc.slots == 64
    with pytest.raises(ValueError):
        enc.encode(np.zeros(65), 2.0**20)


def test_addition(ckks):
    a = np.array([1.0, -2.0, 3.0])
    b = np.array([0.5, 0.25, -0.125])
    ct = ckks.encrypt_coeffs(a, augmented=False) + ckks.encrypt_coeffs(
        b, augmented=False
    )
    assert np.max(np.abs(ckks.decrypt_coeffs(ct, 3) - (a + b))) < 1e-5


def test_subtraction_and_negation(ckks):
    a = np.array([1.0, -2.0])
    b = np.array([0.5, 0.25])
    ct = ckks.encrypt_coeffs(a, augmented=False) - ckks.encrypt_coeffs(
        b, augmented=False
    )
    assert np.max(np.abs(ckks.decrypt_coeffs(ct, 2) - (a - b))) < 1e-5
    neg = -ckks.encrypt_coeffs(a, augmented=False)
    assert np.max(np.abs(ckks.decrypt_coeffs(neg, 2) + a)) < 1e-5


def test_scale_mismatch_raises(ckks):
    a = ckks.encrypt_coeffs([1.0], scale=2.0**20, augmented=False)
    b = ckks.encrypt_coeffs([1.0], scale=2.0**25, augmented=False)
    with pytest.raises(ValueError, match="scale"):
        _ = a + b


def test_encoding_mismatch_raises(ckks):
    a = ckks.encrypt_coeffs([1.0], augmented=False)
    b = ckks.encrypt_slots([1.0])
    with pytest.raises(ValueError, match="encoding"):
        _ = a + b


def test_slotwise_plaintext_product(ckks):
    """The canonical embedding is a homomorphism: polynomial product =
    slotwise product."""
    z = np.array([1 + 1j, 2.0, -0.5j])
    w = np.array([2.0, -1.5, 4.0])
    ct = ckks.encrypt_slots(z, augmented=True)
    scaled = ckks.slot_encoder.encode(w, ckks.default_scale)
    prod = ckks._multiply_scaled_poly(ct, scaled, ckks.default_scale)
    prod = ckks.rescale(prod)
    out = ckks.slot_encoder.decode(ckks.decrypt_raw(prod), prod.scale, 3)
    assert np.max(np.abs(out - z * w)) < 1e-4


def test_rescale_reduces_scale(ckks):
    ct = ckks.encrypt_coeffs([1.0])
    prod = ckks.multiply_plain_coeffs(ct, [2.0])
    assert prod.scale == pytest.approx(ckks.default_scale**2)
    res = ckks.rescale(prod)
    assert res.scale == pytest.approx(
        ckks.default_scale**2 / ckks.params.special_modulus
    )
    assert abs(ckks.decrypt_coeffs(res, 1)[0] - 2.0) < 1e-3


def test_rescale_requires_augmented(ckks):
    ct = ckks.encrypt_coeffs([1.0], augmented=False)
    with pytest.raises(ValueError):
        ckks.rescale(ct)


def test_dot_product(ckks, rng):
    v = rng.normal(0, 1, 128)
    row = rng.normal(0, 1, 128)
    ct = ckks.encrypt_coeffs(v)
    dp = ckks.dot_product(ct, row)
    got = ckks.decrypt_coeffs(dp, 1)[0]
    assert abs(got - float(row @ v)) < 1e-3


def test_dot_product_short_row(ckks, rng):
    v = rng.normal(0, 1, 128)
    row = rng.normal(0, 1, 16)
    dp = ckks.dot_product(ckks.encrypt_coeffs(v), row)
    assert abs(ckks.decrypt_coeffs(dp, 1)[0] - float(row @ v[:16])) < 1e-3


def test_dot_requires_coeff_encoding(ckks):
    ct = ckks.encrypt_slots([1.0])
    with pytest.raises(ValueError, match="coefficient"):
        ckks.dot_product(ct, [1.0])


def test_extract_and_pack_ckks(ckks, rng):
    """The BFV pack machinery works unchanged on CKKS ciphertexts —
    the hardware-sharing argument of the paper's multi-scheme pitch."""
    v = rng.normal(0, 1, 128)
    ct = ckks.encrypt_coeffs(v)
    rows = [rng.normal(0, 1, 128) for _ in range(4)]
    dps = [ckks.dot_product(ct, r) for r in rows]
    packed, stride = ckks.extract_and_pack(dps)
    got = ckks.decrypt_packed(packed, 4, stride)
    want = np.array([float(r @ v) for r in rows])
    assert np.max(np.abs(got - want)) < 1e-2


def test_pack_scale_mismatch(ckks, rng):
    a = ckks.encrypt_coeffs([1.0], scale=2.0**20, augmented=False)
    b = ckks.encrypt_coeffs([1.0], scale=2.0**22, augmented=False)
    with pytest.raises(ValueError, match="share a scale"):
        ckks.extract_and_pack([a, b])


def test_shared_secret_key():
    from repro.he.bfv import BfvScheme

    params = toy_params(n=64, plain_bits=40)
    bfv = BfvScheme(params, seed=3, max_pack=2)
    ckks = CkksScheme(params, seed=4, shared_secret=bfv.secret_key, max_pack=2)
    assert ckks.secret_key is bfv.secret_key
    ct = ckks.encrypt_coeffs([2.5], augmented=False)
    assert abs(ckks.decrypt_coeffs(ct, 1)[0] - 2.5) < 1e-5


def test_precision_bits(ckks):
    ct = ckks.encrypt_coeffs([1.0])
    assert ckks.precision_bits(ct) > 15
