"""Chaos determinism battery (ISSUE 8): replay == rerun, byte for byte.

An elastic chaos run is a pure function of ``(data seed, schedule
seed)``: the scheme RNG, the request vectors, the membership schedule,
the fault injectors, and every controller tie-break are all seeded.
These tests pin that purity — two runs from the same seeds must produce
**byte-identical** ``ClusterReport.to_dict()`` JSON (counters, cycle
ledgers, applied events and all), on top of per-limb bit-identity with
the single-node oracle.

``tests/vectors/elastic_schedule_worst.json`` pins the nastiest schedule
found while developing the controller (an all-but-one massacre followed
by a drain of the original survivor, a cold rejoin, and the death of the
only healed node) as a frozen regression fixture, expected counters
included.
"""

import hashlib
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterExecutor,
    MembershipSchedule,
    PartitionPlanner,
)
from repro.core.batch import BatchedHmvp, EncodedMatrixCache
from repro.he.bfv import BfvScheme
from repro.he.params import toy_params

VECTORS_DIR = Path(__file__).parent / "vectors"
WORST_FIXTURE = VECTORS_DIR / "elastic_schedule_worst.json"

ROWS, COLS, RING = 10, 256, 128
SCHEME_SEED = 0xE1A57


def _limb_digests(result):
    digests = []
    for pack in result.packs:
        for component in (pack.ct.c0, pack.ct.c1):
            arr = np.asarray(component)
            for limb in range(arr.shape[0]):
                digests.append(
                    hashlib.sha256(
                        np.ascontiguousarray(arr[limb]).tobytes()
                    ).hexdigest()
                )
    return digests


def _chaos_run(data_seed, schedule, initial_nodes=3, requests=5,
               fault_rate=0.05):
    """One fully seeded elastic run; returns (digests, report dict).

    The scheme is rebuilt from ``SCHEME_SEED`` every call so that two
    invocations with the same arguments replay the exact same key
    material, encryption randomness, fault rolls, and membership churn.
    The single-node oracle shares the run's ciphertexts, so bit-identity
    is asserted inside every run for free.
    """
    scheme = BfvScheme(
        toy_params(n=RING, plain_bits=40), seed=SCHEME_SEED, max_pack=RING
    )
    rng = np.random.default_rng(data_seed)
    matrix = rng.integers(-70, 70, (ROWS, COLS))
    vectors = [rng.integers(-70, 70, COLS) for _ in range(requests)]
    plan = PartitionPlanner(RING).plan_from_cuts(
        ROWS, COLS, (0, 6, 10), (0, 128, 256)
    )
    executor = ClusterExecutor(
        scheme,
        matrix,
        config=ClusterConfig(
            nodes=initial_nodes,
            replication=2,
            max_retries=1,
            fault_rate=fault_rate,
            seed=11,
        ),
        plan=plan,
        schedule=schedule,
    )
    cts = [executor.encrypt_vector(v) for v in vectors]
    results = executor.execute_batch(cts)
    digests = [_limb_digests(r) for r in results]
    oracle = BatchedHmvp(scheme, matrix, cache=EncodedMatrixCache())
    reference = [_limb_digests(oracle.multiply_tiles(ct)) for ct in cts]
    assert digests == reference, "cluster diverged from single-node oracle"
    report = executor.report()
    assert report.dropped == 0
    return digests, report.to_dict()


@pytest.mark.parametrize("schedule_seed", [0, 1, 7, 23, 99])
def test_same_seeds_replay_byte_identical(schedule_seed):
    """Two runs from the same (data seed, schedule seed) agree on every
    byte of the serialized cluster report — output digests, busy-cycle
    ledgers, migration counters, applied events, the lot."""
    schedule = MembershipSchedule.random(
        schedule_seed, requests=5, initial_nodes=3
    )
    digests_a, report_a = _chaos_run(0xD0D0 + schedule_seed, schedule)
    digests_b, report_b = _chaos_run(0xD0D0 + schedule_seed, schedule)
    assert digests_a == digests_b
    assert json.dumps(report_a, sort_keys=True) == json.dumps(
        report_b, sort_keys=True
    )


def test_different_schedules_same_data_same_outputs():
    """The flip side of determinism: the *schedule* must not leak into
    the *outputs*.  Same data under two different schedules gives the
    same per-limb digests (only the membership ledger differs)."""
    schedule_a = MembershipSchedule.random(3, requests=5, initial_nodes=3)
    schedule_b = MembershipSchedule.random(4, requests=5, initial_nodes=3)
    assert schedule_a.to_dict() != schedule_b.to_dict()
    digests_a, report_a = _chaos_run(0xBEEF, schedule_a)
    digests_b, report_b = _chaos_run(0xBEEF, schedule_b)
    assert digests_a == digests_b
    assert report_a["membership"] != report_b["membership"]


# The nastiest schedule found while developing the controller: an
# all-but-one massacre, a heal-on-join, a drain of the original
# survivor, a cold rejoin of a dead id, then the death of the node that
# had inherited everything.  Every hand-off path fires at least once.
WORST_SPEC = "1:kill:3,1:kill:2,1:kill:1,2:join:4,3:leave:0,4:join:1,5:kill:4"
WORST_DATA_SEED = 0x0BAD
WORST_INITIAL_NODES = 4
WORST_REQUESTS = 6

_PINNED_COUNTERS = (
    "joins", "leaves", "kills", "replica_promotions", "drained_shards",
    "migrated_entries", "reencodes", "reencodes_avoided",
)


def test_worst_schedule_regression_fixture():
    """Replay the pinned worst-case schedule and hold it to its frozen
    counters and output digest.  Regenerate (after an intentional
    controller change) with::

        PYTHONPATH=src python -m pytest tests/test_cluster_chaos.py --regen
    """
    schedule = MembershipSchedule.parse(WORST_SPEC)
    digests, report = _chaos_run(
        WORST_DATA_SEED,
        schedule,
        initial_nodes=WORST_INITIAL_NODES,
        requests=WORST_REQUESTS,
    )
    membership = report["membership"]
    payload = {
        "description": (
            "Worst-case elastic membership schedule regression fixture; "
            "regenerate via pytest tests/test_cluster_chaos.py --regen"
        ),
        "scheme_seed": SCHEME_SEED,
        "data_seed": WORST_DATA_SEED,
        "requests": WORST_REQUESTS,
        "initial_nodes": WORST_INITIAL_NODES,
        "replication": 2,
        "schedule": schedule.to_dict(),
        "expected_membership": {
            key: membership[key] for key in _PINNED_COUNTERS
        },
        "expected_final_nodes": report["nodes"],
        "output_digest": hashlib.sha256(
            "".join(
                d for per_request in digests for d in per_request
            ).encode()
        ).hexdigest(),
    }
    # the massacre leaves sole copies, but every later join heals them:
    # even this schedule never forces a matrix re-encode
    assert membership["reencodes"] == 0
    assert membership["migrated_entries"] > 0
    assert membership["replica_promotions"] >= 1
    assert membership["drained_shards"] >= 1
    if "--regen" in sys.argv or not WORST_FIXTURE.exists():
        WORST_FIXTURE.write_text(json.dumps(payload, indent=2) + "\n")
    fixture = json.loads(WORST_FIXTURE.read_text())
    assert fixture == payload
