"""E4 — Fig. 2a: the roofline model on the U200.

Reproduces the paper's Section III-B argument: the compute intensity of
individual HE operators (NTT, key-switch) sits far below HMVP's, so
offloading them one at a time starves the DSPs on memory traffic.
"""

import pytest
from conftest import print_table

from repro.hw.arch import U200
from repro.hw.roofline import hmvp_kernel, roofline_points


def test_figure_2a_points():
    pts = roofline_points()
    rows = []
    for name, k in pts.items():
        rows.append(
            (
                name,
                f"{k.intensity:.2f}",
                f"{k.attainable_ops_per_sec / 1e9:.0f}",
                f"{100 * k.peak_fraction:.1f}%",
                "memory" if k.memory_bound else "compute",
            )
        )
    rows.append(
        ("(ridge)", f"{U200.ridge_intensity:.2f}", f"{U200.peak_ops_per_sec / 1e9:.0f}", "100%", "-")
    )
    print_table(
        "Fig. 2a: roofline on U200 (27x18 ops)",
        ["kernel", "ops/byte", "attainable Gop/s", "of peak", "bound"],
        rows,
    )
    assert pts["NTT"].intensity < pts["KeySwitch"].intensity < pts["HMVP"].intensity
    assert pts["NTT"].peak_fraction < 0.1
    assert pts["KeySwitch"].peak_fraction < 0.1
    assert pts["HMVP"].peak_fraction > 0.8


def test_whole_kernel_offload_factor():
    """Quantify the paper's design decision: whole-HMVP offload admits an
    order of magnitude more of the device's compute than per-op offload."""
    pts = roofline_points()
    gain_vs_ntt = pts["HMVP"].peak_fraction / pts["NTT"].peak_fraction
    gain_vs_ks = pts["HMVP"].peak_fraction / pts["KeySwitch"].peak_fraction
    print_table(
        "Whole-kernel offload advantage",
        ["vs kernel", "attainable-compute gain"],
        [("NTT", f"{gain_vs_ntt:.1f}x"), ("KeySwitch", f"{gain_vs_ks:.1f}x")],
    )
    assert gain_vs_ntt > 10
    assert gain_vs_ks > 8


def test_hmvp_intensity_grows_with_amortization():
    small = hmvp_kernel(m=16)
    large = hmvp_kernel(m=4096)
    assert large.intensity >= small.intensity


@pytest.mark.benchmark(group="roofline")
def test_perf_roofline_eval(benchmark):
    benchmark(roofline_points)
