"""Property-based tests over the HE layer's algebraic laws.

Hypothesis drives random messages/shapes through the real pipeline and
checks the ring-homomorphism laws that every downstream protocol relies
on.  These complement the per-module unit tests: a unit test pins one
behaviour; these pin the *algebra*.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he.encoder import CoefficientEncoder
from repro.he.rlwe import decrypt, encrypt

N = 128

small_vecs = st.lists(
    st.integers(min_value=-(1 << 18), max_value=1 << 18), min_size=N, max_size=N
)


@pytest.fixture(scope="module")
def enc(params128):
    return CoefficientEncoder(params128)


@given(a=small_vecs, b=small_vecs)
@settings(max_examples=15, deadline=None)
def test_addition_is_homomorphic(ctx128, sk128, enc, a, b):
    av, bv = np.array(a), np.array(b)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(av), augmented=False) + encrypt(
        ctx128, sk128, enc.encode_coeffs(bv), augmented=False
    )
    assert np.array_equal(decrypt(ctx128, sk128, ct).centered(), av + bv)


@given(a=small_vecs, k=st.integers(min_value=-64, max_value=64))
@settings(max_examples=15, deadline=None)
def test_scalar_mult_is_homomorphic(ctx128, sk128, enc, a, k):
    av = np.array(a)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(av), augmented=False)
    # pass k signed: the limb reduction embeds it centered, so the noise
    # grows by |k|, not by the huge positive residue k mod t
    got = decrypt(ctx128, sk128, ct.multiply_scalar(k)).centered()
    t = ctx128.t
    want = np.array([((int(x) * k) % t) for x in av], dtype=object)
    half = t // 2
    want = np.where(want > half, want - t, want)
    assert np.array_equal(got.astype(object), want)


@given(
    a=st.lists(st.integers(min_value=-200, max_value=200), min_size=N, max_size=N),
    b=st.lists(st.integers(min_value=-200, max_value=200), min_size=N, max_size=N),
    c=st.lists(st.integers(min_value=-200, max_value=200), min_size=N, max_size=N),
)
@settings(max_examples=8, deadline=None)
def test_plain_mult_distributes_over_addition(ctx128, sk128, enc, a, b, c):
    """Enc(a) * (b + c) == Enc(a)*b + Enc(a)*c (up to exact decryption)."""
    av, bv, cv = np.array(a), np.array(b), np.array(c)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(av), augmented=True)
    lhs = ct.multiply_plain(enc.encode_coeffs((bv + cv))).rescale()
    rhs = (
        ct.multiply_plain(enc.encode_coeffs(bv)).rescale()
        + ct.multiply_plain(enc.encode_coeffs(cv)).rescale()
    )
    assert decrypt(ctx128, sk128, lhs) == decrypt(ctx128, sk128, rhs)


@given(
    m=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=8, deadline=None)
def test_hmvp_linearity(scheme128, m, seed):
    """HMVP(A, u + v) == HMVP(A, u) + HMVP(A, v) elementwise."""
    from repro.core.hmvp import hmvp

    r = np.random.default_rng(seed)
    a = r.integers(-40, 40, (m, N))
    u = r.integers(-40, 40, N)
    v = r.integers(-40, 40, N)
    lhs = hmvp(scheme128, a, scheme128.encrypt_vector(u + v)).decrypt(scheme128)
    rhs_u = hmvp(scheme128, a, scheme128.encrypt_vector(u)).decrypt(scheme128)
    rhs_v = hmvp(scheme128, a, scheme128.encrypt_vector(v)).decrypt(scheme128)
    assert np.array_equal(lhs, rhs_u + rhs_v)


@given(seed=st.integers(min_value=0, max_value=2**20))
@settings(max_examples=8, deadline=None)
def test_pack_order_independence(scheme128, seed):
    """Slot i of a pack always carries input i, for random subsets."""
    r = np.random.default_rng(seed)
    count = int(r.integers(1, 9))
    values = r.integers(-500, 500, count)
    lwes = []
    for v in values:
        coeffs = r.integers(-500, 500, N)
        coeffs[0] = v
        ct = scheme128.encrypt_plaintext(
            scheme128.encoder.encode_coeffs(coeffs), augmented=False
        )
        lwes.append(scheme128.extract(ct, 0))
    packed = scheme128.pack(lwes)
    got = scheme128.decrypt_packed(packed)
    assert [int(x) for x in got] == [int(v) for v in values]


@given(
    g=st.sampled_from([3, 5, 9, 17, 33, 65, 129]),
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=10, deadline=None)
def test_automorphism_commutes_with_addition(ctx128, sk128, galois128, enc, g, seed):
    from repro.he.automorphism import apply_automorphism

    r = np.random.default_rng(seed)
    a = r.integers(-300, 300, N)
    b = r.integers(-300, 300, N)
    ct_a = encrypt(ctx128, sk128, enc.encode_coeffs(a), augmented=False)
    ct_b = encrypt(ctx128, sk128, enc.encode_coeffs(b), augmented=False)
    lhs = apply_automorphism(ct_a + ct_b, g, galois128)
    rhs = apply_automorphism(ct_a, g, galois128) + apply_automorphism(
        ct_b, g, galois128
    )
    assert decrypt(ctx128, sk128, lhs) == decrypt(ctx128, sk128, rhs)


@given(seed=st.integers(min_value=0, max_value=2**20))
@settings(max_examples=6, deadline=None)
def test_tiled_hmvp_random_shapes(scheme128, seed):
    from repro.core.hmvp import TiledHmvp

    r = np.random.default_rng(seed)
    m = int(r.integers(1, 40))
    n = int(r.integers(1, 300))
    a = r.integers(-20, 20, (m, n))
    v = r.integers(-20, 20, n)
    tiler = TiledHmvp(scheme128)
    got = tiler(a, v)
    assert np.array_equal(got, a.astype(object) @ v.astype(object))
