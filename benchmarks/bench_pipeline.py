"""E12 — Section III-A pipeline behaviour.

Reproduces the textual claims about the macro-pipeline: a bubble-free
NTT dataflow, 4095 PACKTWOLWES reductions for a 4096-row pack, reduce-
buffer-mediated preemption of the preceding stages, and the fill/drain
amortization that makes Fig. 6 near-linear.
"""

import numpy as np
import pytest
from conftest import print_table, record_result

from repro.hw.arch import EngineConfig, NttUnitConfig, cham_default_config
from repro.hw.ntt_datapath import NttDatapathSim
from repro.hw.pipeline import MacroPipeline
from repro.math.primes import CHAM_Q0


@pytest.fixture(scope="module")
def pipe():
    return MacroPipeline(EngineConfig())


def test_pipeline_trace_table(pipe):
    cfg = cham_default_config()
    rows = []
    recorded = {}
    for m in (16, 256, 1024, 4096):
        s = pipe.simulate_hmvp(m)
        recorded[str(m)] = {
            "total_cycles": s.total_cycles,
            "reductions": s.reductions,
            "preemptions": s.preemptions,
            "dot_utilization": s.dot_utilization,
        }
        rows.append(
            (
                m,
                f"{s.total_cycles:,}",
                s.reductions,
                s.preemptions,
                s.reduce_buffer_peak,
                f"{s.dot_utilization:.2f}",
                f"{s.throughput_rows_per_sec(cfg.clock_hz):,.0f}",
            )
        )
    print_table(
        "Macro-pipeline traces (1 engine)",
        ["rows", "cycles", "reductions", "preempts", "buf peak", "dot util", "rows/s"],
        rows,
    )
    record_result(
        "pipeline",
        recorded,
        params={"engines": 1, "rows_sweep": [16, 256, 1024, 4096]},
    )


def test_4095_reductions_for_4096_rows(pipe):
    assert pipe.simulate_hmvp(4096).reductions == 4095


def test_bubble_free_ntt_issue():
    """Within a stage the BFUs issue every cycle: the simulated datapath
    total exceeds the ideal (N/2 log N)/n_bf only by per-stage drain."""
    sim = NttDatapathSim(NttUnitConfig(n=256, n_bfu=4, ram_banks=8), CHAM_Q0)
    a = np.arange(256, dtype=np.uint64)
    _, report = sim.forward(a)
    overhead = report.cycles - report.steady_cycles
    assert overhead <= 2 * 8  # two cycles per stage, log2(256)=8 stages
    print(f"\nNTT issue overhead: {overhead} cycles over {report.steady_cycles} ideal")


def test_preemption_and_stalls(pipe):
    s = pipe.simulate_hmvp(1024)
    assert s.preemptions > 0  # deeper reductions jump the queue
    # the default 16-entry buffer absorbs the tree without stalling
    assert s.stall_cycles == 0
    # the minimum viable buffer is exactly the tree depth + 1 (13 for a
    # 4096-row pack); one entry less deadlocks
    tight = MacroPipeline(EngineConfig(reduce_buffer_entries=13))
    assert tight.simulate_hmvp(4096).reductions == 4095
    with pytest.raises(RuntimeError, match="deadlock"):
        MacroPipeline(EngineConfig(reduce_buffer_entries=12)).simulate_hmvp(4096)


def test_fill_drain_amortization(pipe):
    """Per-row cycles converge to the dot-product interval from above."""
    cfg = cham_default_config()
    per_row = {
        m: pipe.simulate_hmvp(m).total_cycles / m for m in (16, 256, 4096)
    }
    assert per_row[16] > per_row[256] > per_row[4096]
    assert per_row[4096] == pytest.approx(
        cfg.engine.dot_product_interval, rel=0.03
    )


def test_pack_tail_is_logarithmic(pipe):
    """After the last dot product only ~log2(m) reductions remain."""
    m = 1024
    s = pipe.simulate_hmvp(m)
    dot_done = pipe.fill_cycles + m * pipe.dot_interval
    tail = s.total_cycles - dot_done
    assert tail <= (m.bit_length() + 2) * pipe.pack_interval + pipe.pack_latency


@pytest.mark.benchmark(group="pipeline")
def test_perf_pipeline_sim_4096(benchmark, pipe):
    benchmark(pipe.simulate_hmvp, 4096)


@pytest.mark.benchmark(group="pipeline")
def test_perf_pipeline_sim_tiled(benchmark, pipe):
    benchmark(pipe.simulate_hmvp, 1024, 4)
