"""Shared fixtures.

Schemes and keys are expensive (Galois keysets especially), so everything
here is session-scoped; tests must not mutate fixture state.  Toy rings
reuse the paper's production moduli (they are NTT-friendly for every
power-of-two degree up to 4096), so all arithmetic paths are identical to
the full-size configuration.
"""

import numpy as np
import pytest

from repro.he.bfv import BfvScheme
from repro.he.context import CheContext
from repro.he.keys import (
    generate_galois_keyset,
    generate_public_key,
    generate_secret_key,
    pack_galois_elements,
)
from repro.he.params import toy_params


@pytest.fixture(scope="session")
def params128():
    return toy_params(n=128, plain_bits=40)


@pytest.fixture(scope="session")
def params256():
    return toy_params(n=256, plain_bits=40)


@pytest.fixture(scope="session")
def ctx128(params128):
    return CheContext(params128, seed=1001)


@pytest.fixture(scope="session")
def sk128(ctx128):
    return generate_secret_key(ctx128)


@pytest.fixture(scope="session")
def pk128(ctx128, sk128):
    return generate_public_key(ctx128, sk128)


@pytest.fixture(scope="session")
def galois128(ctx128, sk128):
    return generate_galois_keyset(
        ctx128, sk128, pack_galois_elements(128, max_count=128)
    )


@pytest.fixture(scope="session")
def scheme128():
    """A full scheme at n=128 with pack keys for up to 128 rows."""
    return BfvScheme(toy_params(n=128, plain_bits=40), seed=7, max_pack=128)


@pytest.fixture(scope="session")
def scheme256():
    """A larger toy scheme for convolution / inference tests."""
    return BfvScheme(toy_params(n=256, plain_bits=40), seed=8, max_pack=16)


@pytest.fixture()
def rng():
    return np.random.default_rng(0xC4A)
