"""Software runtime / driver simulation with RAS features (Section III-C).

The paper: "In addition to provide APIs for application, the runtime also
support reliability, availability, and serviceability (RAS) features
including FPGA register loading error handling, FPGA hang/reset, and FPGA
health monitoring."  This module reproduces those control paths against a
fault-injectable virtual device:

* :class:`VirtualFpga` — register file, job execution with configurable
  fault injection (register-load bit flips, hangs);
* :class:`FpgaRuntime` — the host runtime: CRC-checked register loading
  with bounded retry, a watchdog that resets hung devices and requeues
  in-flight jobs, and a health monitor aggregating counters.

Applications drive jobs through :meth:`FpgaRuntime.submit` /
:meth:`FpgaRuntime.poll`; the test-suite injects every fault class and
asserts recovery.
"""

from __future__ import annotations

import asyncio
import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from .arch import ChamConfig, cham_default_config
from .pipeline import MacroPipeline

__all__ = [
    "JobScheduler",
    "QueueReport",
    "FaultInjector",
    "VirtualFpga",
    "JobState",
    "Job",
    "HealthReport",
    "FpgaRuntime",
    "RegisterLoadError",
    "DeviceHangError",
]


class RegisterLoadError(RuntimeError):
    """Register image failed CRC validation after all retries."""


class DeviceHangError(RuntimeError):
    """Device stopped making progress and reset did not recover it."""


@dataclass
class FaultInjector:
    """Deterministic fault injection knobs (all default off)."""

    register_flip_prob: float = 0.0
    hang_prob: float = 0.0
    #: device recovers after this many resets (simulates transient hangs)
    resets_to_recover: int = 1
    seed: int = 0
    #: scripted hang outcomes consumed *before* the probabilistic draw —
    #: lets tests stage exact fault sequences ("hang twice, then run")
    hang_script: Optional[Sequence[bool]] = None

    def __post_init__(self) -> None:
        self.rng = np.random.default_rng(self.seed)
        self._hang_script = list(self.hang_script or [])

    def corrupt_register(self) -> bool:
        return self.rng.random() < self.register_flip_prob

    def hang(self) -> bool:
        if self._hang_script:
            return bool(self._hang_script.pop(0))
        return self.rng.random() < self.hang_prob


class JobState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One offloaded HMVP job.

    ``batch_id`` tags jobs that arrived as one drained batch (see
    :class:`repro.core.batch.BatchQueue`), so the scheduler can report
    when an *entire batch* retires, not just individual jobs.
    ``ctx`` carries the originating request's frozen trace context, so
    device-side attempt spans land in the same trace tree as the serving
    layer that offloaded the job.
    """

    job_id: int
    rows: int
    col_tiles: int = 1
    state: JobState = JobState.QUEUED
    cycles: int = 0
    retries: int = 0
    batch_id: Optional[int] = None
    ctx: Optional[obs.TraceContext] = None


@dataclass
class HealthReport:
    """Snapshot of the health monitor (the paper's monitoring feature)."""

    jobs_completed: int
    jobs_failed: int
    register_retries: int
    hangs_detected: int
    resets: int
    busy_cycles: int
    temperature_c: float
    #: total per-job execution retries across the runtime's lifetime
    job_retries: int = 0

    @property
    def healthy(self) -> bool:
        return self.jobs_failed == 0 and self.temperature_c < 95.0

    def record_metrics(self, registry=None) -> None:
        """Re-export the RAS counters through the metrics registry, so
        the paper's health-monitoring endpoint and the rest of the stack
        share one sink.  Values are absolute snapshots, hence gauges."""
        reg = registry if registry is not None else obs.REGISTRY
        if not reg.enabled:
            return
        for name in (
            "jobs_completed",
            "jobs_failed",
            "register_retries",
            "hangs_detected",
            "resets",
            "busy_cycles",
            "temperature_c",
            "job_retries",
        ):
            reg.set_gauge(f"hw.runtime.{name}", getattr(self, name))
        reg.set_gauge("hw.runtime.healthy", float(self.healthy))


class VirtualFpga:
    """A fault-injectable device model executing pipeline jobs."""

    def __init__(
        self, cfg: ChamConfig, faults: Optional[FaultInjector] = None
    ) -> None:
        self.cfg = cfg
        self.faults = faults or FaultInjector()
        self.registers: Dict[int, int] = {}
        self.hung = False
        self._resets_seen = 0
        self._pipeline = MacroPipeline(cfg.engine)

    def load_register(self, addr: int, value: int) -> int:
        """Write a register, returning the readback value (maybe corrupt)."""
        stored = value
        if self.faults.corrupt_register():
            stored = value ^ (1 << int(self.faults.rng.integers(0, 32)))
        self.registers[addr] = stored
        return stored

    def estimate_cycles(self, rows: int, col_tiles: int = 1) -> int:
        """Cycle cost of a job without executing it (no fault draws).

        The cluster layer prices failover deadlines and partition plans
        with this: it must match what :meth:`run_job` would charge, and
        it must not advance the fault injector's RNG stream.
        """
        return self._pipeline.simulate_hmvp(rows, col_tiles).total_cycles

    def run_job(self, job: Job) -> int:
        """Execute a job; may hang (raises nothing — caller polls)."""
        if self.hung:
            raise DeviceHangError("device is hung")
        if self.faults.hang():
            self.hung = True
            raise DeviceHangError("device hang during job execution")
        stats = self._pipeline.simulate_hmvp(job.rows, job.col_tiles)
        return stats.total_cycles

    def reset(self) -> bool:
        """Full device reset; returns True if the device came back."""
        self._resets_seen += 1
        if self._resets_seen >= self.faults.resets_to_recover:
            self.hung = False
            self._resets_seen = 0
            return True
        return False


def _crc(value: int) -> int:
    return zlib.crc32(int(value).to_bytes(8, "little"))


class FpgaRuntime:
    """Host runtime with RAS: checked register loads, watchdog, health."""

    def __init__(
        self,
        cfg: Optional[ChamConfig] = None,
        faults: Optional[FaultInjector] = None,
        max_register_retries: int = 3,
        max_job_retries: int = 2,
        lane: Optional[int] = None,
    ) -> None:
        self.cfg = cfg or cham_default_config()
        self.device = VirtualFpga(self.cfg, faults)
        self.max_register_retries = max_register_retries
        self.max_job_retries = max_job_retries
        #: Chrome ``pid`` lane for this runtime's attempt spans (None =
        #: inherit from the job's trace context); serve/cluster layers
        #: assign one lane per engine/node so traces separate visually
        self.trace_lane = lane
        self._next_job = 0
        self.jobs: Dict[int, Job] = {}
        self._completed: List[int] = []
        # health counters
        self.register_retries = 0
        self.hangs_detected = 0
        self.resets = 0
        self.jobs_failed = 0
        self.busy_cycles = 0
        self.job_retries = 0

    # -- register loading with error handling -----------------------------------

    def load_register_checked(self, addr: int, value: int) -> None:
        """Write-and-verify a register, retrying on corruption.

        The paper's "FPGA register loading error handling": every write is
        read back and CRC-compared; mismatches retry up to the bound.
        """
        for _attempt in range(self.max_register_retries + 1):
            stored = self.device.load_register(addr, value)
            if _crc(stored) == _crc(value):
                return
            self.register_retries += 1
        raise RegisterLoadError(
            f"register 0x{addr:x} failed to load after "
            f"{self.max_register_retries} retries"
        )

    # -- job lifecycle with watchdog ----------------------------------------------

    def estimate_cycles(self, rows: int, col_tiles: int = 1) -> int:
        """Price a job on this runtime's device without submitting it."""
        return self.device.estimate_cycles(rows, col_tiles)

    def submit(
        self,
        rows: int,
        col_tiles: int = 1,
        ctx: Optional[obs.TraceContext] = None,
    ) -> int:
        """Queue an HMVP job; returns a job id.

        ``ctx`` tags the job with its request's trace context; when
        omitted, the ambient context (if any) is captured, so callers
        inside a traced region get attribution for free.
        """
        if ctx is None:
            ctx = obs.current_context()
        job = Job(
            job_id=self._next_job, rows=rows, col_tiles=col_tiles, ctx=ctx
        )
        self._next_job += 1
        self.jobs[job.job_id] = job
        return job.job_id

    def poll_once(self, job_id: int) -> JobState:
        """One execution attempt; ``RUNNING`` means a retry is pending.

        This is the async-pollable unit the serving layer drives: each
        call makes exactly one attempt at running the job on the device.
        A hang triggers one watchdog episode and consumes one unit of
        the job's retry budget; callers decide when to re-poll (e.g.
        after an ``await``).  The state machine is total: every call
        either returns a terminal state (``DONE``/``FAILED``) or leaves
        the job ``RUNNING`` with ``job.retries`` strictly increased, so
        at most ``max_job_retries + 1`` calls reach a terminal state.
        """
        job = self.jobs[job_id]
        if job.state in (JobState.DONE, JobState.FAILED):
            return job.state
        job.state = JobState.RUNNING
        with obs.span(
            "hw.job.attempt",
            ctx=job.ctx,
            pid=self.trace_lane,
            job=job_id,
            rows=job.rows,
            attempt=job.retries,
        ) as attempt_span:
            try:
                job.cycles = self.device.run_job(job)
            except DeviceHangError:
                self.hangs_detected += 1
                self._watchdog_reset()
                job.retries += 1
                self.job_retries += 1
                obs.inc("hw.runtime.job_retries")
                # A failed watchdog episode is NOT a failed job: the device
                # may need more resets than one episode performs (transient
                # hang with slow recovery), and the next attempt runs a new
                # episode.  Only an exhausted retry budget fails the job —
                # previously `not recovered` failed it immediately, stranding
                # recoverable jobs and leaving a hung device to fault every
                # subsequent submission.
                if job.retries > self.max_job_retries:
                    job.state = JobState.FAILED
                    self.jobs_failed += 1
                attempt_span.set(outcome=job.state.value)
                return job.state
            job.state = JobState.DONE
            self.busy_cycles += job.cycles
            self._completed.append(job_id)
            attempt_span.set(outcome="done", cycles=job.cycles)
            return job.state

    def poll(self, job_id: int) -> JobState:
        """Drive the job to completion (hang/reset handled transparently)."""
        while True:
            state = self.poll_once(job_id)
            if state is not JobState.RUNNING:
                return state

    async def poll_async(
        self, job_id: int, retry_delay_s: float = 0.0
    ) -> JobState:
        """Asynchronously drive the job to a terminal state.

        Yields to the event loop between execution attempts (sleeping
        ``retry_delay_s`` after each hang), so a serving front-end can
        overlap other requests with a device's recovery.  Bounded by the
        same retry budget as :meth:`poll`: never spins forever.
        """
        # defensive bound on top of poll_once's own budget accounting:
        # even a (hypothetical) state-machine regression that stopped
        # advancing `retries` could not wedge the event loop
        for _ in range(self.max_job_retries + 2):
            state = self.poll_once(job_id)
            if state is not JobState.RUNNING:
                return state
            await asyncio.sleep(retry_delay_s)
        job = self.jobs[job_id]
        job.state = JobState.FAILED
        self.jobs_failed += 1
        return job.state

    def _watchdog_reset(self) -> bool:
        """Reset until the device recovers or gives up (3 attempts)."""
        for _ in range(3):
            self.resets += 1
            if self.device.reset():
                return True
        return False

    # -- health monitoring ------------------------------------------------------------

    def health(self) -> HealthReport:
        """The monitoring endpoint (temperature modeled from utilization)."""
        completed = len(self._completed)
        # toy thermal model: idle 45C, + up to 30C with accumulated load
        temp = 45.0 + 30.0 * min(self.busy_cycles / 3e9, 1.0)
        report = HealthReport(
            jobs_completed=completed,
            jobs_failed=self.jobs_failed,
            register_retries=self.register_retries,
            hangs_detected=self.hangs_detected,
            resets=self.resets,
            busy_cycles=self.busy_cycles,
            temperature_c=temp,
            job_retries=self.job_retries,
        )
        report.record_metrics()
        return report


@dataclass
class QueueReport:
    """Outcome of scheduling a job queue across the engines."""

    completions: Dict[int, int]  # job_id -> completion cycle
    makespan: int
    per_engine_busy: List[int]
    #: batch_id -> cycle at which the batch's *last* job completed
    batch_completions: Dict[int, int] = field(default_factory=dict)
    #: total execution retries across the scheduled jobs (RAS accounting)
    retries: int = 0

    @property
    def utilization(self) -> float:
        if self.makespan == 0:
            return 0.0
        return sum(self.per_engine_busy) / (
            self.makespan * len(self.per_engine_busy)
        )


class JobScheduler:
    """Greedy multi-job scheduler over the accelerator's engines.

    The runtime batches queued HMVP jobs and dispatches each to the
    earliest-available engine (jobs are indivisible: one job's pack tree
    lives in one engine's reduce buffer).  Longest-job-first ordering
    keeps the makespan near the lower bound for the mixed job sizes the
    applications produce.
    """

    def __init__(self, cfg: Optional[ChamConfig] = None) -> None:
        self.cfg = cfg or cham_default_config()
        self._pipeline = MacroPipeline(self.cfg.engine)

    def schedule(self, jobs: List[Job]) -> QueueReport:
        costed = []
        for job in jobs:
            stats = self._pipeline.simulate_hmvp(job.rows, job.col_tiles)
            costed.append((stats.total_cycles, job))
        costed.sort(key=lambda item: -item[0])  # longest first
        engines = [0] * self.cfg.engines
        completions: Dict[int, int] = {}
        batch_completions: Dict[int, int] = {}
        for cycles, job in costed:
            idx = min(range(len(engines)), key=lambda i: engines[i])
            engines[idx] += cycles
            completions[job.job_id] = engines[idx]
            if job.batch_id is not None:
                batch_completions[job.batch_id] = max(
                    batch_completions.get(job.batch_id, 0), engines[idx]
                )
            job.cycles = cycles
            job.state = JobState.DONE
        return QueueReport(
            completions=completions,
            makespan=max(engines) if engines else 0,
            per_engine_busy=engines,
            batch_completions=batch_completions,
            retries=sum(job.retries for job in jobs),
        )
