"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_*.py`` module reproduces one table or figure of the paper
(see DESIGN.md §4 for the index).  Two kinds of entries coexist:

* ``test_table_* / test_figure_*`` — *reproduction* entries: they compute
  the paper's rows/series from the simulators and models, print them in
  the paper's layout (run with ``-s`` to see the tables), and assert the
  qualitative shape (who wins, by roughly what factor, where crossovers
  fall);
* ``test_perf_*`` — ``pytest-benchmark`` timings of the underlying
  Python kernels themselves (run with ``--benchmark-only``).
"""

import numpy as np
import pytest

from repro.he.bfv import BfvScheme
from repro.he.params import toy_params


def print_table(title, headers, rows):
    """Uniform fixed-width table printer for reproduction output."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def bench_scheme():
    """Toy-ring scheme for functional kernels in timing benchmarks."""
    return BfvScheme(toy_params(n=128, plain_bits=40), seed=41, max_pack=128)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0xBEEF)
