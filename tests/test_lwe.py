"""Tests for LWE extraction and the Eq. 3 embedding."""

import numpy as np
import pytest

from repro.he.encoder import CoefficientEncoder
from repro.he.lwe import LweCiphertext, decrypt_lwe, extract_lwe, lwe_to_rlwe
from repro.he.rlwe import decrypt, encrypt


@pytest.fixture(scope="module")
def enc(params128):
    return CoefficientEncoder(params128)


@pytest.mark.parametrize("idx", [0, 1, 63, 127])
def test_extract_recovers_coefficient(ctx128, sk128, enc, rng, idx):
    vals = rng.integers(-(1 << 20), 1 << 20, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(vals), augmented=False)
    lwe = extract_lwe(ct, idx)
    assert decrypt_lwe(ctx128, sk128, lwe) == vals[idx]


def test_extract_index_out_of_range(ctx128, sk128, enc, rng):
    ct = encrypt(ctx128, sk128, enc.encode_coeffs([1]), augmented=False)
    with pytest.raises(ValueError):
        extract_lwe(ct, 128)
    with pytest.raises(ValueError):
        extract_lwe(ct, -1)


def test_extract_from_augmented_basis(ctx128, sk128, enc, rng):
    """Extraction works in any basis (it is pure data movement)."""
    vals = rng.integers(-1000, 1000, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(vals), augmented=True)
    lwe = extract_lwe(ct, 3)
    assert decrypt_lwe(ctx128, sk128, lwe) == vals[3]


def test_lwe_addition(ctx128, sk128, enc, rng):
    a = rng.integers(-1000, 1000, 128)
    b = rng.integers(-1000, 1000, 128)
    lwe_a = extract_lwe(encrypt(ctx128, sk128, enc.encode_coeffs(a), augmented=False))
    lwe_b = extract_lwe(encrypt(ctx128, sk128, enc.encode_coeffs(b), augmented=False))
    assert decrypt_lwe(ctx128, sk128, lwe_a + lwe_b) == a[0] + b[0]


def test_lwe_scalar_mul(ctx128, sk128, enc, rng):
    a = rng.integers(-1000, 1000, 128)
    lwe = extract_lwe(encrypt(ctx128, sk128, enc.encode_coeffs(a), augmented=False))
    assert decrypt_lwe(ctx128, sk128, lwe.scalar_mul(9)) == 9 * a[0]


def test_lwe_basis_mismatch(ctx128, sk128, enc, rng):
    a = rng.integers(-10, 10, 128)
    lwe_n = extract_lwe(encrypt(ctx128, sk128, enc.encode_coeffs(a), augmented=False))
    lwe_a = extract_lwe(encrypt(ctx128, sk128, enc.encode_coeffs(a), augmented=True))
    with pytest.raises(ValueError):
        _ = lwe_n + lwe_a


def test_embed_preserves_constant_coefficient(ctx128, sk128, enc, rng):
    """Eq. 3: the RLWE embedding keeps the LWE message at coeff 0."""
    vals = rng.integers(-1000, 1000, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(vals), augmented=False)
    lwe = extract_lwe(ct, 7)
    emb = lwe_to_rlwe(lwe)
    out = decrypt(ctx128, sk128, emb)
    assert int(out.centered()[0]) == vals[7]


def test_extract_zero_then_embed_restores_mask(ctx128, sk128, enc, rng):
    """For idx=0 the embedding returns exactly the original c1 — the
    double-transformation identity behind the paper's Eq. 3."""
    vals = rng.integers(-1000, 1000, 128)
    ct = encrypt(ctx128, sk128, enc.encode_coeffs(vals), augmented=False)
    emb = lwe_to_rlwe(extract_lwe(ct, 0))
    assert np.array_equal(emb.c1, ct.c1)
    assert np.array_equal(emb.c0[:, 0], ct.c0[:, 0])
    assert (emb.c0[:, 1:] == 0).all()


def test_lwe_shape_validation(ctx128):
    basis = ctx128.ct_basis
    with pytest.raises(ValueError):
        LweCiphertext(
            ctx128, basis, np.zeros(3, np.uint64), np.zeros((2, 128), np.uint64)
        )
    with pytest.raises(ValueError):
        LweCiphertext(
            ctx128, basis, np.zeros(2, np.uint64), np.zeros((2, 64), np.uint64)
        )


def test_lwe_dimension(ctx128, sk128, enc, rng):
    a = rng.integers(-10, 10, 128)
    lwe = extract_lwe(encrypt(ctx128, sk128, enc.encode_coeffs(a), augmented=False))
    assert lwe.dimension == 128
