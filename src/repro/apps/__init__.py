"""Application layer: the paper's evaluation workloads.

* :mod:`repro.apps.heterolr` — federated logistic regression (Fig. 7a/b);
* :mod:`repro.apps.beaver` — Beaver triple generation (Fig. 7c);
* :mod:`repro.apps.inference` — private linear-layer inference;
* :mod:`repro.apps.datasets` — synthetic data generators.
"""

from .datasets import VerticalDataset, make_digit_images, make_vertical_dataset
from .heterolr import (
    BfvBackend,
    HeteroLrTrainer,
    LrConfig,
    PaillierBackend,
    PlainBackend,
    StepCounts,
    sigmoid,
    taylor_sigmoid,
)
from .beaver import BeaverGenerator, BeaverTriple, MatrixBeaverGenerator, verify_triple
from .protocol import Channel, Message, Party, wire_size
from .delphi import DelphiInference, LayerCorrelation
from .nn import (
    ConvLayer,
    FlattenLayer,
    LinearLayer,
    PrivateNetwork,
    ReluLayer,
    Sequential,
)
from .inference import PrivateInference, TinyModel

__all__ = [
    "VerticalDataset",
    "make_digit_images",
    "make_vertical_dataset",
    "BfvBackend",
    "HeteroLrTrainer",
    "LrConfig",
    "PaillierBackend",
    "PlainBackend",
    "StepCounts",
    "sigmoid",
    "taylor_sigmoid",
    "BeaverGenerator",
    "MatrixBeaverGenerator",
    "Channel",
    "Message",
    "Party",
    "wire_size",
    "DelphiInference",
    "LayerCorrelation",
    "ConvLayer",
    "FlattenLayer",
    "LinearLayer",
    "PrivateNetwork",
    "ReluLayer",
    "Sequential",
    "BeaverTriple",
    "verify_triple",
    "PrivateInference",
    "TinyModel",
]
