"""Baseline HMVP encodings the paper compares against (Section II-E).

Two families from GAZELLE [21] are implemented, both *functionally* (real
ciphertexts, real rotations) and as op-count models:

* **batch-encoded rotate-and-sum** — the vector lives in SIMD slots; each
  row is slot-multiplied and the product's slots are summed with
  ``log2`` rotations: ``O(m log2 N)`` rotations total.
* **diagonal-encoded** — the matrix is encoded along (extended)
  diagonals; one rotation + one plaintext multiply per diagonal:
  ``O(m)`` rotations, like Alg. 1's ``O(m)`` — but each step carries a
  full key-switch, whereas the coefficient method pays one key-switch
  per *packed output row* and nothing per multiply, which is the paper's
  "smaller overhead" argument.

SIMD batching needs an NTT-friendly *plaintext* modulus
(``t ≡ 1 mod 2N``); :func:`batch_friendly_plain_modulus` finds one.  We
use the natural ``N/2``-slot subgroup (the ⟨3⟩ orbit of the evaluation
points), which keeps the rotation group cyclic and the code honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence

import numpy as np

from ..he.bfv import BfvScheme
from ..he.automorphism import apply_automorphism
from ..he.encoder import Plaintext
from ..he.keys import generate_galois_keyset
from ..he.params import CheParams
from ..he.rlwe import RlweCiphertext
from ..math.ntt import NegacyclicNtt, bit_reverse
from ..math.primes import is_prime
from .hmvp import HmvpOpCount

__all__ = [
    "batch_friendly_plain_modulus",
    "BatchEncoder",
    "BaselineHmvp",
    "rotate_and_sum_op_count",
    "diagonal_op_count",
]


@lru_cache(maxsize=None)
def batch_friendly_plain_modulus(n: int, bits: int = 40) -> int:
    """Smallest ``bits``-bit prime ``≡ 1 (mod 2n)`` usable for batching."""
    step = 2 * n
    t = (1 << (bits - 1)) + 1
    t += (-(t - 1)) % step
    while True:
        if is_prime(t):
            return t
        t += step


class BatchEncoder:
    """SIMD slot encoder over an NTT-friendly plaintext modulus.

    Slot ``i`` (of ``n/2``) is the evaluation of the plaintext polynomial
    at ``ψ_t^{3^i mod 2n}``; the Galois map ``X -> X^{3^r}`` rotates the
    slots by ``r`` positions.  The merged-NTT output index of evaluation
    exponent ``2*brv(k)+1`` gives the slot ↔ transform-coefficient map.
    """

    def __init__(self, params: CheParams) -> None:
        n, t = params.n, params.plain_modulus
        if t % (2 * n) != 1:
            raise ValueError(
                f"plain modulus {t} is not ≡ 1 (mod {2 * n}); "
                "use batch_friendly_plain_modulus"
            )
        self.n = n
        self.t = t
        self.slots = n // 2
        self._ntt = NegacyclicNtt(n, t)
        bits = n.bit_length() - 1
        # NTT output index k evaluates at exponent 2*brv(k)+1
        exp_of_index = np.array(
            [2 * bit_reverse(k, bits) + 1 for k in range(n)], dtype=np.int64
        )
        index_of_exp = np.full(2 * n, -1, dtype=np.int64)
        index_of_exp[exp_of_index] = np.arange(n)
        # slot i lives at exponent 3^i mod 2n
        exps = []
        e = 1
        for _ in range(self.slots):
            exps.append(e)
            e = e * 3 % (2 * n)
        self.slot_exponents = np.array(exps, dtype=np.int64)
        self.slot_indices = index_of_exp[self.slot_exponents]
        if (self.slot_indices < 0).any():
            raise AssertionError("slot exponent not hit by NTT output map")
        # the conjugate orbit (exponents -3^i); mirrored values keep the
        # polynomial's slot vector consistent under encode/decode
        conj = (2 * n - self.slot_exponents) % (2 * n)
        self.conj_indices = index_of_exp[conj]

    def encode(self, values: Sequence[int]) -> Plaintext:
        """Encode up to ``n/2`` signed integers into SIMD slots."""
        vals = np.asarray(values)
        if vals.shape[0] > self.slots:
            raise ValueError(f"{vals.shape[0]} values exceed {self.slots} slots")
        reduced = np.mod(vals.astype(object), self.t).astype(np.uint64)
        evals = np.zeros(self.n, dtype=np.uint64)
        evals[self.slot_indices[: reduced.shape[0]]] = reduced
        # mirror into the conjugate orbit so rotations stay closed
        evals[self.conj_indices[: reduced.shape[0]]] = reduced
        coeffs = self._ntt.inverse(evals)
        return Plaintext(coeffs, self.t)

    def decode(self, pt: Plaintext, count: int) -> np.ndarray:
        """Centered slot values (first ``count`` slots)."""
        evals = self._ntt.forward(pt.coeffs.astype(np.uint64))
        vals = evals[self.slot_indices[:count]].astype(object)
        half = self.t // 2
        return np.where(vals > half, vals - self.t, vals)

    def rotation_element(self, r: int) -> int:
        """Galois element rotating the slots by ``r`` positions."""
        return pow(3, r % self.slots, 2 * self.n)


@dataclass
class BaselineHmvp:
    """Functional batch-encoded HMVP baselines over a real scheme.

    The scheme's plaintext modulus must be batching-friendly; rotation
    Galois keys are generated lazily for the elements each call needs.
    """

    scheme: BfvScheme

    def __post_init__(self) -> None:
        self.encoder = BatchEncoder(self.scheme.params)
        self._have_elements: set = set()

    def _ensure_keys(self, elements: List[int]) -> None:
        missing = [g for g in elements if g not in self._have_elements]
        if missing:
            ks = generate_galois_keyset(
                self.scheme.ctx, self.scheme.secret_key, missing
            )
            self.scheme.galois_keys.keys.update(ks.keys)
            self._have_elements.update(missing)

    def encrypt_slots(self, v: Sequence[int]) -> RlweCiphertext:
        """Encrypt a vector into SIMD slots (normal basis)."""
        pt = self.encoder.encode(v)
        from ..he.rlwe import encrypt

        return encrypt(self.scheme.ctx, self.scheme.secret_key, pt, augmented=False)

    def encrypt_slots_replicated(self, v: Sequence[int]) -> RlweCiphertext:
        """Encrypt ``v`` tiled across all slots (diagonal method input).

        Replication makes slot rotation behave as a cyclic shift of the
        length-``len(v)`` vector, which the diagonal layout relies on;
        ``len(v)`` must divide the slot count.
        """
        v = np.asarray(v)
        slots = self.encoder.slots
        if slots % v.shape[0]:
            raise ValueError(f"vector length {v.shape[0]} must divide {slots}")
        return self.encrypt_slots(np.tile(v, slots // v.shape[0]))

    def rotate(self, ct: RlweCiphertext, r: int) -> RlweCiphertext:
        g = self.encoder.rotation_element(r)
        self._ensure_keys([g])
        return apply_automorphism(ct, g, self.scheme.galois_keys)

    # -- rotate-and-sum (naive batch-encoded, O(m log N)) ---------------------------

    def rotate_and_sum(
        self, matrix: Sequence[Sequence[int]], ct_v: RlweCiphertext
    ) -> List[RlweCiphertext]:
        """One output ciphertext per row; result in every slot of each.

        For each row: slot-multiply, then fold the ``n/2`` slots with
        ``log2(n/2)`` rotations.
        """
        matrix = np.asarray(matrix)
        m, n_cols = matrix.shape
        if n_cols > self.encoder.slots:
            raise ValueError("row length exceeds slot count")
        outs = []
        for i in range(m):
            pt_row = self.encoder.encode(matrix[i])
            acc = ct_v.multiply_plain(pt_row)
            steps = 1
            while steps < self.encoder.slots:
                acc = acc + self.rotate(acc, steps)
                steps *= 2
            outs.append(acc)
        return outs

    def decode_rotate_and_sum(self, cts: List[RlweCiphertext]) -> np.ndarray:
        vals = []
        for ct in cts:
            pt = self.scheme.decrypt_plaintext(ct)
            vals.append(int(self.encoder.decode(pt, 1)[0]))
        return np.array(vals, dtype=object)

    # -- diagonal method (GAZELLE, O(m)) --------------------------------------------

    def diagonal(
        self, matrix: Sequence[Sequence[int]], ct_v: RlweCiphertext
    ) -> RlweCiphertext:
        """Extended-diagonal HMVP: ``sum_d diag_d ⊙ rot(v, d)``.

        ``ct_v`` must come from :meth:`encrypt_slots_replicated`.  Requires
        ``m <= n_cols <= slots``, ``m | n_cols`` and ``n_cols | slots``
        (the classic GAZELLE layout); the result occupies slots
        ``0..m-1`` after the final rotate-and-sum over ``n/m`` chunks.
        """
        matrix = np.asarray(matrix)
        m, n_cols = matrix.shape
        slots = self.encoder.slots
        if not (m <= n_cols <= slots):
            raise ValueError("need m <= n_cols <= slots")
        if n_cols % m or slots % n_cols:
            raise ValueError("diagonal method needs m | n_cols | slots")
        acc = None
        for d in range(m):
            # extended diagonal d: slot j carries A[j mod m][(j+d) mod n],
            # aligning with rot(v, d) whose slot j is v[(j+d) mod n]
            diag = np.array(
                [matrix[j % m][(j + d) % n_cols] for j in range(n_cols)],
                dtype=object,
            )
            rot_v = self.rotate(ct_v, d) if d else ct_v
            term = rot_v.multiply_plain(self.encoder.encode(diag))
            acc = term if acc is None else acc + term
        # fold the n_cols/m chunks: rot by m, 2m, 4m ...
        chunk = m
        while chunk < n_cols:
            acc = acc + self.rotate(acc, chunk)
            chunk *= 2
        return acc

    def decode_diagonal(self, ct: RlweCiphertext, m: int) -> np.ndarray:
        pt = self.scheme.decrypt_plaintext(ct)
        return self.encoder.decode(pt, m)


def rotate_and_sum_op_count(m: int, n: int, limbs: int, limbs_aug: int) -> HmvpOpCount:
    """Op-count model of the batch rotate-and-sum method: ``O(m log2 N)``.

    Per row: 1 plaintext multiply + ``log2(n/2)`` rotations, each rotation
    one automorphism + one hybrid key-switch.
    """
    log_rot = max((n // 2 - 1).bit_length(), 1)
    rot = m * log_rot
    return HmvpOpCount(
        rows=m,
        cols=n,
        dot_products=m,
        ntts=m * limbs + rot * limbs * limbs_aug,
        intts=m * 2 * limbs + rot * 2 * limbs_aug,
        pointwise_mults=m * 2 * limbs + rot * limbs * 2 * limbs_aug,
        rescales=rot * 2,
        keyswitches=rot,
        automorphisms=rot,
    )


def diagonal_op_count(m: int, n: int, limbs: int, limbs_aug: int) -> HmvpOpCount:
    """Op-count model of the GAZELLE diagonal method: ``O(m)`` rotations."""
    rot = m - 1 + max((max(n // m, 1) - 1).bit_length(), 0)
    return HmvpOpCount(
        rows=m,
        cols=n,
        dot_products=m,
        ntts=m * limbs + rot * limbs * limbs_aug,
        intts=m * 2 * limbs + rot * 2 * limbs_aug,
        pointwise_mults=m * 2 * limbs + rot * limbs * 2 * limbs_aug,
        rescales=rot * 2,
        keyswitches=rot,
        automorphisms=rot,
    )
