"""Property battery for the interconnect simulator (ISSUE 10).

Four families of statements about :mod:`repro.hw.netsim` that must hold
for *every* topology, load, and parameterization — not just the shapes
the cluster layer happens to generate:

* **conservation** — every injected flit is delivered exactly once
  (no drops, no duplicates), on any fabric, under any load, including
  cyclic ring traffic where bubble flow control is what prevents a
  credit deadlock;
* **FIFO links** — each link delivers flits in exactly the order it
  serialized them (credit flow control never reorders a FIFO buffer);
* **determinism** — a run is a pure function of the injected workload:
  same load, same trace digest, event for event; and the digest is
  sensitive enough to distinguish different loads;
* **ideal-fabric equivalence** — attaching the infinite-bandwidth
  ``ideal`` topology to a cluster run changes *nothing*: zero network
  cycles, identical report, identical plan, bit-identical ciphertexts
  versus ``topology=None`` (the historical free-comm path).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ClusterExecutor
from repro.hw.netsim import NetworkSimulator, SimulatorEngine
from repro.hw.topology import (
    COORDINATOR,
    TOPOLOGY_KINDS,
    TopologyError,
    build_topology,
)

REAL_KINDS = [k for k in TOPOLOGY_KINDS if k != "ideal"]


def _endpoints(nodes):
    return [COORDINATOR] + list(range(nodes))


def _run_load(kind, nodes, transfers, flit_bytes=32, buffer_flits=3,
              bandwidth=8, latency=2, record_orders=False):
    """Build a fabric, inject ``transfers`` as (src_i, dst_i, nbytes)."""
    topology = build_topology(
        kind, list(range(nodes)), bandwidth=bandwidth, latency=latency
    )
    sim = NetworkSimulator(
        topology,
        flit_bytes=flit_bytes,
        buffer_flits=buffer_flits,
        record_orders=record_orders,
    )
    eps = _endpoints(nodes)
    sim.begin_phase("load")
    for src_i, dst_i, nbytes in transfers:
        src = eps[src_i % len(eps)]
        dst = eps[dst_i % len(eps)]
        if src == dst:
            dst = eps[(dst_i + 1) % len(eps)]
        if src == dst:
            continue
        sim.inject(src, dst, nbytes)
    sim.drain()
    return sim


# -- conservation ---------------------------------------------------------


@given(
    kind=st.sampled_from(list(TOPOLOGY_KINDS)),
    nodes=st.integers(min_value=2, max_value=6),
    transfers=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=700),
        ),
        min_size=1,
        max_size=24,
    ),
    flit_bytes=st.sampled_from([16, 64, 100]),
    buffer_flits=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=40, deadline=None)
def test_flit_conservation(kind, nodes, transfers, flit_bytes, buffer_flits):
    """Every injected flit arrives exactly once on every fabric."""
    sim = _run_load(
        kind, nodes, transfers,
        flit_bytes=flit_bytes, buffer_flits=buffer_flits,
    )
    assert sim.flits_injected >= len(sim.messages)  # >= 1 flit per message
    assert sim.flits_delivered == sim.flits_injected
    assert sim.flits_dropped == 0
    assert sim.duplicates == 0
    for msg in sim.messages.values():
        assert msg.delivered_flits == msg.flits
        assert msg.delivered_at is not None
        assert msg.delivered_at >= msg.injected_at
    # bounded buffers really are bounded (credit invariant, observed)
    assert sim.max_queue_depth <= buffer_flits


def test_ring_all_to_all_does_not_deadlock():
    """Dense cyclic traffic on the ring: bubble flow control must keep
    the cycle from filling; with plain credit flow it wedges."""
    nodes = 6
    transfers = [
        (a, b, 512)
        for a in range(nodes + 1)
        for b in range(nodes + 1)
        if a != b
    ]
    sim = _run_load("ring", nodes, transfers, buffer_flits=2, bandwidth=4)
    assert sim.flits_dropped == 0
    assert sim.duplicates == 0
    assert sim.blocked_attempts > 0  # the fabric was actually contended


# -- FIFO links -----------------------------------------------------------


@given(
    kind=st.sampled_from(REAL_KINDS),
    nodes=st.integers(min_value=2, max_value=5),
    transfers=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=1, max_value=600),
        ),
        min_size=2,
        max_size=16,
    ),
)
@settings(max_examples=25, deadline=None)
def test_links_deliver_in_fifo_order(kind, nodes, transfers):
    """Per link: the arrive order equals the send order, flit for flit."""
    sim = _run_load(kind, nodes, transfers, record_orders=True)
    assert any(sim.sent_order.values())  # the load crossed at least a link
    for link_id, sent in sim.sent_order.items():
        assert sim.arrive_order[link_id] == sent


# -- determinism ----------------------------------------------------------


@given(
    kind=st.sampled_from(list(TOPOLOGY_KINDS)),
    nodes=st.integers(min_value=2, max_value=5),
    transfers=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=500),
        ),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=25, deadline=None)
def test_identical_loads_produce_identical_traces(kind, nodes, transfers):
    """The simulator is a pure function of the workload: two runs of the
    same load agree on the full event trace, not just the totals."""
    a = _run_load(kind, nodes, transfers)
    b = _run_load(kind, nodes, transfers)
    assert a.trace_digest() == b.trace_digest()
    assert a.stats() == b.stats()


def test_different_loads_produce_different_traces():
    sim_a = _run_load("mesh", 4, [(0, 1, 256)])
    sim_b = _run_load("mesh", 4, [(0, 2, 256)])
    assert sim_a.trace_digest() != sim_b.trace_digest()


def test_engine_orders_same_cycle_events_by_schedule_order():
    """Ties at the same cycle replay in scheduling order (stable seq)."""
    engine = SimulatorEngine()
    engine.schedule(5, ("b",))
    engine.schedule(5, ("c",))
    engine.schedule(2, ("a",))
    popped = [engine.pop()[2][0] for _ in range(3)]
    assert popped == ["a", "b", "c"]
    assert engine.now == 5
    with pytest.raises(ValueError, match="before now"):
        engine.schedule(4, ("late",))


def test_injection_validates_endpoints():
    topology = build_topology("mesh", [0, 1, 2, 3])
    sim = NetworkSimulator(topology)
    with pytest.raises(TopologyError, match="unknown source"):
        sim.inject(99, 0, 64)
    with pytest.raises(TopologyError, match="cannot message itself"):
        sim.inject(1, 1, 64)
    with pytest.raises(ValueError, match="buffer_flits"):
        NetworkSimulator(topology, buffer_flits=1)


# -- ideal-fabric equivalence --------------------------------------------


def _report_dict_sans_network(report):
    data = report.to_dict()
    data.pop("network")
    return data


def test_ideal_topology_reproduces_free_comm_exactly(scheme128):
    """``topology="ideal"`` must be a pure observer: same plan, same
    report, same ciphertext bits, zero network cycles — only the flit
    accounting (the ``network`` block) is new."""
    rng = np.random.default_rng(0x1DEA1)
    matrix = rng.integers(-100, 100, (13, 384))
    vectors = [rng.integers(-100, 100, 384) for _ in range(3)]

    free = ClusterExecutor(
        scheme128, matrix,
        config=ClusterConfig(nodes=3, replication=2, seed=5),
    )
    # one shared encryption: the scheme RNG advances per encrypt call,
    # so both executors must serve the *same* ciphertexts
    requests = [free.encrypt_vector(v) for v in vectors]
    ideal = ClusterExecutor(
        scheme128, matrix,
        config=ClusterConfig(nodes=3, replication=2, seed=5, topology="ideal"),
    )
    assert ideal.plan.to_dict() == free.plan.to_dict()

    free_results = free.execute_batch(requests)
    ideal_results = ideal.execute_batch(requests)
    for got, want in zip(ideal_results, free_results):
        for g, w in zip(got.packs, want.packs):
            np.testing.assert_array_equal(g.ct.c0, w.ct.c0)
            np.testing.assert_array_equal(g.ct.c1, w.ct.c1)

    free_report = free.report()
    ideal_report = ideal.report()
    assert ideal_report.network_cycles == 0
    assert ideal_report.makespan_cycles == free_report.makespan_cycles
    assert ideal_report.goodput_sim_rps == free_report.goodput_sim_rps
    assert _report_dict_sans_network(ideal_report) == \
        _report_dict_sans_network(free_report)
    # the observer still counted the traffic it watched teleport
    net = ideal_report.network
    assert net["flits_injected"] > 0
    assert net["flits_dropped"] == 0
    assert net["cycles"] == 0
    assert free_report.network == {}


def test_estimate_transfer_cycles_monotone_in_payload():
    """Bigger payloads never cost fewer cycles, and the ideal fabric
    prices everything at zero."""
    from repro.cluster import ClusterInterconnect

    ring = ClusterInterconnect("ring", [0, 1, 2, 3], bandwidth=8)
    sizes = [0, 64, 1024, 65536]
    costs = [ring.estimate_transfer_cycles(0, 2, s) for s in sizes]
    assert costs == sorted(costs)
    assert costs[-1] > costs[1] > 0
    ideal = ClusterInterconnect("ideal", [0, 1, 2, 3])
    assert all(
        ideal.estimate_transfer_cycles(0, 2, s) == 0 for s in sizes
    )
