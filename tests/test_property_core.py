"""Property-based correctness suite for the HE-facing core (ISSUE 3).

Complements :mod:`tests.test_math_properties` (ring axioms at full
length, Galois group, RNS isomorphism) with the properties the serving
stack leans on directly:

* NTT/INTT are mutually inverse and agree with the O(n²) schoolbook
  negacyclic convolution, over **both** CHAM ciphertext moduli;
* the wire format's ``pack_limbs``/``unpack_limbs`` is a byte-exact
  round-trip at each modulus's bit width;
* :class:`RingPoly` ring axioms hold for operands of random effective
  degree < N (short polynomials zero-padded), not only dense ones.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he.serialization import pack_limbs, unpack_limbs
from repro.math.ntt import (
    NegacyclicNtt,
    intt,
    negacyclic_convolution_schoolbook,
    ntt,
)
from repro.math.polynomial import RingPoly
from repro.math.primes import CHAM_Q0, CHAM_Q1

N = 32
CT_MODULI = (CHAM_Q0, CHAM_Q1)

modulus = st.sampled_from(CT_MODULI)


def coeffs(q, min_size=N, max_size=N):
    return st.lists(
        st.integers(min_value=0, max_value=q - 1),
        min_size=min_size,
        max_size=max_size,
    )


def _pad(vals, q):
    """Zero-pad a (possibly short) coefficient list to length N."""
    arr = np.zeros(N, dtype=np.uint64)
    arr[: len(vals)] = np.asarray(vals, dtype=np.uint64)
    return arr


# -- NTT / INTT round-trips over both ciphertext moduli -------------------


@given(q=modulus, data=st.data())
@settings(max_examples=40, deadline=None)
def test_intt_inverts_ntt(q, data):
    a = _pad(data.draw(coeffs(q)), q)
    assert np.array_equal(intt(ntt(a, q), q), a)


@given(q=modulus, data=st.data())
@settings(max_examples=40, deadline=None)
def test_ntt_inverts_intt(q, data):
    """The transforms invert in both compositions (bit-reversed domain
    values are arbitrary residues, so this is not implied by the other
    direction)."""
    a = _pad(data.draw(coeffs(q)), q)
    assert np.array_equal(ntt(intt(a, q), q), a)


@given(q=modulus, data=st.data())
@settings(max_examples=20, deadline=None)
def test_ntt_multiply_matches_schoolbook(q, data):
    a = _pad(data.draw(coeffs(q, min_size=1, max_size=N)), q)
    b = _pad(data.draw(coeffs(q, min_size=1, max_size=N)), q)
    ctx = NegacyclicNtt(N, q)
    assert np.array_equal(
        ctx.multiply(a, b), negacyclic_convolution_schoolbook(a, b, q)
    )


@given(q=modulus, data=st.data())
@settings(max_examples=10, deadline=None)
def test_ntt_batches_along_leading_axes(q, data):
    rows = [_pad(data.draw(coeffs(q)), q) for _ in range(3)]
    stacked = np.stack(rows)
    batched = intt(ntt(stacked, q), q)
    for row, out in zip(rows, batched):
        assert np.array_equal(out, row)


# -- wire-format round-trip ------------------------------------------------


@given(data=st.data(), n=st.sampled_from([1, 7, 32, 64]))
@settings(max_examples=30, deadline=None)
def test_pack_unpack_limbs_round_trip(data, n):
    limbs = np.stack(
        [
            np.array(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=q - 1),
                        min_size=n,
                        max_size=n,
                    )
                ),
                dtype=np.uint64,
            )
            for q in CT_MODULI
        ]
    )
    blob = pack_limbs(limbs, CT_MODULI)
    out, consumed = unpack_limbs(blob, CT_MODULI, n)
    assert consumed == len(blob)
    assert np.array_equal(out, limbs)
    # re-packing the decoded limbs is byte-identical (canonical encoding)
    assert pack_limbs(out, CT_MODULI) == blob


@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_pack_limbs_width_is_modulus_bits(data):
    n = 16
    limbs = np.stack(
        [
            np.array(
                data.draw(
                    st.lists(
                        st.integers(min_value=0, max_value=q - 1),
                        min_size=n,
                        max_size=n,
                    )
                ),
                dtype=np.uint64,
            )
            for q in CT_MODULI
        ]
    )
    expected = sum(((q - 1).bit_length() * n + 7) // 8 for q in CT_MODULI)
    assert len(pack_limbs(limbs, CT_MODULI)) == expected


# -- ring axioms with random effective degree ------------------------------


@given(
    q=modulus,
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_ring_axioms_hold_for_sparse_operands(q, data):
    """Short (degree < N) operands exercise the zero-coefficient paths
    the dense full-length suite never touches."""
    a = data.draw(coeffs(q, min_size=1, max_size=N))
    b = data.draw(coeffs(q, min_size=1, max_size=N))
    c = data.draw(coeffs(q, min_size=1, max_size=N))
    pa = RingPoly(_pad(a, q), q)
    pb = RingPoly(_pad(b, q), q)
    pc = RingPoly(_pad(c, q), q)
    assert pa * pb == pb * pa
    assert (pa * pb) * pc == pa * (pb * pc)
    assert pa * (pb + pc) == pa * pb + pa * pc
    one = RingPoly.constant(1, N, q)
    zero = RingPoly.zero(N, q)
    assert pa * one == pa
    assert pa + zero == pa
    assert pa + (-pa) == zero


@given(q=modulus, data=st.data(), k=st.integers(min_value=0, max_value=N - 1))
@settings(max_examples=25, deadline=None)
def test_monomial_multiplication_is_negacyclic_shift(q, data, k):
    """x^k · a(x) rotates coefficients with sign wrap — the identity
    the coefficient-encoded HMVP (paper Eq. 1) is built on."""
    a = data.draw(coeffs(q, min_size=1, max_size=N))
    pa = RingPoly(_pad(a, q), q)
    shifted = pa * RingPoly.monomial(k, N, q)
    dense = np.asarray(pa.coeffs, dtype=object)
    want = np.zeros(N, dtype=object)
    for i in range(N):
        j = i + k
        if j < N:
            want[j] += int(dense[i])
        else:
            want[j - N] -= int(dense[i])
    assert np.array_equal(
        np.asarray(shifted.coeffs, dtype=np.uint64),
        np.asarray(np.mod(want, q), dtype=np.uint64),
    )
