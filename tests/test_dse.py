"""Tests for the design-space exploration (Fig. 2b)."""

import pytest

from repro.hw.dse import DesignPoint, enumerate_design_space, pareto_front, run_dse


@pytest.fixture(scope="module")
def sweep():
    # large enough to saturate every configuration's pipeline
    return enumerate_design_space(bench_rows=2048)


def test_sweep_covers_the_axes(sweep):
    assert len(sweep) == 4 * 3 * 3 * 3  # stages x engines x units x PEs
    stages = {p.stages for p in sweep}
    assert stages == {5, 7, 9, 11}


def test_some_points_do_not_fit(sweep):
    assert any(not p.fits for p in sweep)
    assert any(p.fits for p in sweep)


def test_three_engine_max_configs_blow_the_budget(sweep):
    big = [p for p in sweep if p.engines == 3 and p.n_bfu == 8 and p.ntt_units_per_group == 8]
    assert all(not p.fits for p in big)


def test_frontier_is_nonempty_and_feasible(sweep):
    front = pareto_front(sweep)
    assert front
    assert all(p.fits and not p.deadlocked for p in front)


def test_frontier_is_nondominated(sweep):
    front = pareto_front(sweep)
    for p in front:
        for q in front:
            if p is q:
                continue
            dominates = (
                q.rows_per_sec >= p.rows_per_sec
                and q.max_utilization_pct <= p.max_utilization_pct
                and (
                    q.rows_per_sec > p.rows_per_sec
                    or q.max_utilization_pct < p.max_utilization_pct
                )
            )
            assert not dominates


def test_paper_optima_near_frontier(sweep):
    """The two published optima: (9st, 6ntt, 4PE, 2eng) and
    (9st, 6ntt, 8PE, 1eng).  Both must achieve frontier-level
    performance (within 1%) at their utilization."""
    front = pareto_front(sweep)

    def find(stages, engines, units, n_bfu):
        return next(
            p
            for p in sweep
            if (p.stages, p.engines, p.ntt_units_per_group, p.n_bfu)
            == (stages, engines, units, n_bfu)
        )

    deployed = find(9, 2, 6, 4)
    alt = find(9, 1, 6, 8)
    assert deployed.fits and alt.fits
    # the two optima deliver (nearly) identical performance
    assert deployed.rows_per_sec == pytest.approx(alt.rows_per_sec, rel=0.02)
    best_at_or_below = max(
        (
            p.rows_per_sec
            for p in front
            if p.max_utilization_pct <= deployed.max_utilization_pct + 0.5
        ),
        default=0.0,
    )
    assert deployed.rows_per_sec >= 0.99 * best_at_or_below


def test_labels(sweep):
    p = sweep[0]
    assert f"{p.stages}st" in p.label
    assert f"{p.engines}eng" in p.label


def test_run_dse_wrapper():
    pts, front = run_dse()
    assert len(front) <= len(pts)
    assert isinstance(front[0], DesignPoint)


def test_more_engines_scale_performance(sweep):
    one = next(p for p in sweep if (p.stages, p.engines, p.ntt_units_per_group, p.n_bfu) == (9, 1, 6, 4))
    two = next(p for p in sweep if (p.stages, p.engines, p.ntt_units_per_group, p.n_bfu) == (9, 2, 6, 4))
    assert two.rows_per_sec == pytest.approx(2 * one.rows_per_sec, rel=0.01)
    assert two.resources.dsp > one.resources.dsp


def test_fewer_stages_hurt_pack_throughput(sweep):
    nine = next(p for p in sweep if (p.stages, p.engines, p.ntt_units_per_group, p.n_bfu) == (9, 1, 6, 4))
    five = next(p for p in sweep if (p.stages, p.engines, p.ntt_units_per_group, p.n_bfu) == (5, 1, 6, 4))
    assert five.rows_per_sec <= nine.rows_per_sec


def test_timing_closure_model(sweep):
    from repro.hw.dse import achievable_clock_mhz, frequency_adjusted_rows_per_sec

    deployed = next(
        p
        for p in sweep
        if (p.stages, p.engines, p.ntt_units_per_group, p.n_bfu) == (9, 2, 6, 4)
    )
    clock = achievable_clock_mhz(deployed)
    # the deployed point closes at (about) the paper's 300 MHz
    assert 285 <= clock <= 315
    # lighter configurations close faster, crammed ones slower
    light = next(
        p
        for p in sweep
        if (p.stages, p.engines, p.ntt_units_per_group, p.n_bfu) == (9, 1, 4, 2)
    )
    heavy = max(sweep, key=lambda p: p.max_utilization_pct)
    assert achievable_clock_mhz(light) > clock > achievable_clock_mhz(heavy)
    # frequency adjustment preserves ordering for same-utilization points
    assert frequency_adjusted_rows_per_sec(deployed) == pytest.approx(
        deployed.rows_per_sec * clock / 300.0
    )
