"""Golden-vector regression for the HMVP pipeline (ISSUE 3).

``tests/vectors/hmvp_golden.json`` freezes one pinned-seed end-to-end
run: scheme seed, matrix, vector, the expected decrypted dot products,
and per-limb SHA-256 digests of the bit-packed ciphertext limbs (the
encrypted input and the packed result).  The replay test regenerates
the run from the stored seeds and compares everything — any drift in
key generation, encryption randomness, the NTT/pack pipeline, or the
wire format shows up as a digest mismatch here before it shows up as a
silent protocol break.

Regenerate (after an *intentional* format change) with::

    PYTHONPATH=src python tests/test_golden_vectors.py --regen
"""

import hashlib
import json
import sys
from pathlib import Path

import numpy as np

from repro.cluster import (
    ClusterConfig,
    ClusterExecutor,
    MembershipSchedule,
    PartitionPlanner,
)
from repro.core.hmvp import hmvp
from repro.he.bfv import BfvScheme
from repro.he.params import toy_params
from repro.he.serialization import pack_limbs

VECTOR_FILE = Path(__file__).parent / "vectors" / "hmvp_golden.json"

SCHEME_SEED = 0x601D  # pinned: changing it invalidates the golden file
DATA_SEED = 0x601D1
ROWS, COLS = 6, 128

# cluster-path golden run (ISSUE 5): same pinned scheme seed, its own
# data seed and a mixed row x column shard grid so the scatter, the
# additive merge, and the central pack are all on the frozen path
CLUSTER_DATA_SEED = 0x601D2
CLUSTER_ROWS, CLUSTER_COLS = 10, 256
CLUSTER_ROW_CUTS = (0, 6, 10)
CLUSTER_COL_CUTS = (0, 128, 256)

# elastic-membership golden runs (ISSUE 8): same pinned scheme seed, a
# third data seed, and two frozen schedules — one scale-down, one
# scale-up — over the same shard grid.  Both must produce the *same*
# per-limb result digests: the schedule moves work, never bits.
ELASTIC_DATA_SEED = 0x601D3
ELASTIC_REQUESTS = 3
ELASTIC_SCHEDULES = {
    "scale_down": "1:kill:2,2:leave:1",  # 3 nodes -> 1
    "scale_up": "1:join,2:join:5",  # 3 nodes -> 5
}


def _build():
    scheme = BfvScheme(
        toy_params(n=COLS, plain_bits=40), seed=SCHEME_SEED, max_pack=COLS
    )
    rng = np.random.default_rng(DATA_SEED)
    matrix = rng.integers(-100, 100, (ROWS, COLS))
    vector = rng.integers(-100, 100, COLS)
    return scheme, matrix, vector


def _limb_digests(ct):
    """SHA-256 of each limb's bit-packed wire bytes, both components."""
    out = []
    for component, limbs in (("c0", ct.c0), ("c1", ct.c1)):
        for i, q in enumerate(ct.basis.moduli):
            blob = pack_limbs(limbs[i : i + 1], (q,))
            out.append(
                {
                    "component": component,
                    "limb": i,
                    "modulus": str(q),
                    "sha256": hashlib.sha256(blob).hexdigest(),
                }
            )
    return out


def _generate():
    scheme, matrix, vector = _build()
    ct_v = scheme.encrypt_vector(vector)
    result = hmvp(scheme, matrix, ct_v)
    products = result.decrypt(scheme)[:ROWS]
    return {
        "description": (
            "Pinned-seed HMVP golden run: BfvScheme(toy n=128, 40-bit "
            "plaintext) seed 0x601D, data seed 0x601D1, 6x128 matrix."
        ),
        "params": {
            "n": COLS,
            "plain_bits": 40,
            "scheme_seed": SCHEME_SEED,
            "data_seed": DATA_SEED,
            "rows": ROWS,
            "cols": COLS,
        },
        "matrix": matrix.tolist(),
        "vector": vector.tolist(),
        "expected_products": [int(x) for x in products],
        "input_ct_digests": _limb_digests(ct_v),
        "result_ct_digests": _limb_digests(result.packs[0].ct),
    }


def _build_cluster():
    """A fresh scheme per generation keeps the legacy section's RNG
    streams untouched — the cluster run never perturbs the old digests."""
    scheme = BfvScheme(
        toy_params(n=COLS, plain_bits=40), seed=SCHEME_SEED, max_pack=COLS
    )
    rng = np.random.default_rng(CLUSTER_DATA_SEED)
    matrix = rng.integers(-100, 100, (CLUSTER_ROWS, CLUSTER_COLS))
    vector = rng.integers(-100, 100, CLUSTER_COLS)
    return scheme, matrix, vector


def _generate_cluster():
    scheme, matrix, vector = _build_cluster()
    plan = PartitionPlanner(COLS).plan_from_cuts(
        CLUSTER_ROWS, CLUSTER_COLS, CLUSTER_ROW_CUTS, CLUSTER_COL_CUTS
    )
    executor = ClusterExecutor(
        scheme,
        matrix,
        config=ClusterConfig(nodes=3, replication=2, seed=0),
        plan=plan,
    )
    ct_tiles = executor.encrypt_vector(vector)
    result = executor.execute(ct_tiles)
    products = result.decrypt(scheme)[:CLUSTER_ROWS]
    return {
        "description": (
            "Pinned-seed cluster-path golden run: same scheme seed, data "
            "seed 0x601D2, 10x256 matrix sharded 2x2 (row cuts 0/6/10, "
            "column cut at the 128-coefficient tile boundary) over 3 "
            "nodes — freezes scatter, additive merge, and central pack."
        ),
        "params": {
            "n": COLS,
            "plain_bits": 40,
            "scheme_seed": SCHEME_SEED,
            "data_seed": CLUSTER_DATA_SEED,
            "rows": CLUSTER_ROWS,
            "cols": CLUSTER_COLS,
            "row_cuts": list(CLUSTER_ROW_CUTS),
            "col_cuts": list(CLUSTER_COL_CUTS),
            "nodes": 3,
            "replication": 2,
        },
        "matrix": matrix.tolist(),
        "vector": vector.tolist(),
        "expected_products": [int(x) for x in products],
        "input_ct_digests": [
            d for ct in ct_tiles for d in _limb_digests(ct)
        ],
        "result_ct_digests": _limb_digests(result.packs[0].ct),
    }


def _build_elastic():
    scheme = BfvScheme(
        toy_params(n=COLS, plain_bits=40), seed=SCHEME_SEED, max_pack=COLS
    )
    rng = np.random.default_rng(ELASTIC_DATA_SEED)
    matrix = rng.integers(-100, 100, (CLUSTER_ROWS, CLUSTER_COLS))
    vectors = [
        rng.integers(-100, 100, CLUSTER_COLS)
        for _ in range(ELASTIC_REQUESTS)
    ]
    return scheme, matrix, vectors


def _run_elastic(spec):
    """One pinned-seed elastic run; scheme rebuilt so both schedules see
    identical key material and encryption randomness."""
    scheme, matrix, vectors = _build_elastic()
    plan = PartitionPlanner(COLS).plan_from_cuts(
        CLUSTER_ROWS, CLUSTER_COLS, CLUSTER_ROW_CUTS, CLUSTER_COL_CUTS
    )
    executor = ClusterExecutor(
        scheme,
        matrix,
        config=ClusterConfig(nodes=3, replication=2, seed=0),
        plan=plan,
        schedule=MembershipSchedule.parse(spec),
    )
    cts = [executor.encrypt_vector(v) for v in vectors]
    results = executor.execute_batch(cts)
    report = executor.report()
    return {
        "schedule": spec,
        "result_ct_digests": [
            _limb_digests(r.packs[0].ct) for r in results
        ],
        "final_nodes": report.nodes,
        "membership": {
            key: report.membership[key]
            for key in (
                "joins", "leaves", "kills", "replica_promotions",
                "drained_shards", "migrated_entries", "reencodes",
                "reencodes_avoided",
            )
        },
    }


def _generate_elastic():
    _scheme, matrix, vectors = _build_elastic()
    return {
        "description": (
            "Pinned-seed elastic membership golden runs: same scheme "
            "seed, data seed 0x601D3, the cluster shard grid, one "
            "scale-down and one scale-up schedule.  Result digests are "
            "identical across schedules by construction — membership "
            "moves work between nodes, never bits."
        ),
        "params": {
            "n": COLS,
            "plain_bits": 40,
            "scheme_seed": SCHEME_SEED,
            "data_seed": ELASTIC_DATA_SEED,
            "rows": CLUSTER_ROWS,
            "cols": CLUSTER_COLS,
            "row_cuts": list(CLUSTER_ROW_CUTS),
            "col_cuts": list(CLUSTER_COL_CUTS),
            "nodes": 3,
            "replication": 2,
            "requests": ELASTIC_REQUESTS,
        },
        "matrix": matrix.tolist(),
        "vectors": [v.tolist() for v in vectors],
        "runs": {
            name: _run_elastic(spec)
            for name, spec in ELASTIC_SCHEDULES.items()
        },
    }


# network-simulation golden run (ISSUE 10): same pinned scheme seed, a
# fourth data seed, the cluster shard grid over a 4-node 2x2 mesh with
# bandwidth-limited links.  Freezes the discrete-event schedule itself:
# per-phase flit counts, the coordinator's network-cycle bill, and the
# sha256 of the full event trace.  Any change to routing, arbitration
# order, credit timing, or flit sizing lands here as a digest mismatch.
NETSIM_DATA_SEED = 0x601D4
NETSIM_REQUESTS = 2
NETSIM_TOPOLOGY = "mesh"
NETSIM_BANDWIDTH = 8
NETSIM_LATENCY = 4
NETSIM_FLIT_BYTES = 64


def _build_netsim():
    scheme = BfvScheme(
        toy_params(n=COLS, plain_bits=40), seed=SCHEME_SEED, max_pack=COLS
    )
    rng = np.random.default_rng(NETSIM_DATA_SEED)
    matrix = rng.integers(-100, 100, (CLUSTER_ROWS, CLUSTER_COLS))
    vectors = [
        rng.integers(-100, 100, CLUSTER_COLS)
        for _ in range(NETSIM_REQUESTS)
    ]
    return scheme, matrix, vectors


def _run_netsim():
    scheme, matrix, vectors = _build_netsim()
    plan = PartitionPlanner(COLS).plan_from_cuts(
        CLUSTER_ROWS, CLUSTER_COLS, CLUSTER_ROW_CUTS, CLUSTER_COL_CUTS
    )
    executor = ClusterExecutor(
        scheme,
        matrix,
        config=ClusterConfig(
            nodes=4,
            replication=2,
            seed=0,
            topology=NETSIM_TOPOLOGY,
            link_bandwidth=NETSIM_BANDWIDTH,
            link_latency=NETSIM_LATENCY,
            flit_bytes=NETSIM_FLIT_BYTES,
        ),
        plan=plan,
    )
    cts = [executor.encrypt_vector(v) for v in vectors]
    results = executor.execute_batch(cts)
    report = executor.report()
    net = report.network
    return {
        "result_ct_digests": [
            _limb_digests(r.packs[0].ct) for r in results
        ],
        "network_cycles": report.network_cycles,
        "compute_makespan_cycles": report.compute_makespan_cycles,
        "trace_sha256": net["trace_sha256"],
        "flits_injected": net["flits_injected"],
        "flits_delivered": net["flits_delivered"],
        "flits_dropped": net["flits_dropped"],
        "blocked_attempts": net["blocked_attempts"],
        "max_queue_depth": net["max_queue_depth"],
        "phases": {
            name: {
                "cycles": row["cycles"],
                "flits": row["flits"],
                "messages": row["messages"],
                "nbytes": row["nbytes"],
            }
            for name, row in net["phases"].items()
        },
    }


def _generate_netsim():
    _scheme, matrix, vectors = _build_netsim()
    return {
        "description": (
            "Pinned-seed network-simulation golden run: same scheme "
            "seed, data seed 0x601D4, the cluster shard grid over a "
            "4-node 2x2 mesh (8 B/cycle links, latency 4, 64-byte "
            "flits).  Freezes per-phase flit counts, the network-cycle "
            "bill, and the sha256 of the full event trace."
        ),
        "params": {
            "n": COLS,
            "plain_bits": 40,
            "scheme_seed": SCHEME_SEED,
            "data_seed": NETSIM_DATA_SEED,
            "rows": CLUSTER_ROWS,
            "cols": CLUSTER_COLS,
            "row_cuts": list(CLUSTER_ROW_CUTS),
            "col_cuts": list(CLUSTER_COL_CUTS),
            "nodes": 4,
            "replication": 2,
            "requests": NETSIM_REQUESTS,
            "topology": NETSIM_TOPOLOGY,
            "bandwidth": NETSIM_BANDWIDTH,
            "latency": NETSIM_LATENCY,
            "flit_bytes": NETSIM_FLIT_BYTES,
        },
        "matrix": matrix.tolist(),
        "vectors": [v.tolist() for v in vectors],
        "run": _run_netsim(),
    }


def _generate_all():
    payload = _generate()
    payload["cluster"] = _generate_cluster()
    payload["elastic"] = _generate_elastic()
    payload["netsim"] = _generate_netsim()
    return payload


def _load():
    with VECTOR_FILE.open() as fh:
        return json.load(fh)


def test_golden_inputs_regenerate_identically():
    """The stored matrix/vector come back bit-identical from the pinned
    seeds — separates 'NumPy RNG stream drifted' from 'pipeline broke'
    when the digest test below fails."""
    _scheme, matrix, vector = _build()
    golden = _load()
    assert golden["params"]["scheme_seed"] == SCHEME_SEED
    assert golden["params"]["data_seed"] == DATA_SEED
    assert matrix.tolist() == golden["matrix"]
    assert vector.tolist() == golden["vector"]


def test_golden_products_are_the_true_dot_products():
    """The frozen expectations themselves satisfy A @ v (exact integer
    arithmetic) — the golden file cannot encode a wrong answer."""
    golden = _load()
    matrix = np.array(golden["matrix"], dtype=object)
    vector = np.array(golden["vector"], dtype=object)
    assert (matrix @ vector).tolist() == golden["expected_products"]


def test_golden_replay_matches_products_and_digests():
    golden = _load()
    fresh = _generate()
    assert fresh["expected_products"] == golden["expected_products"]
    assert fresh["input_ct_digests"] == golden["input_ct_digests"]
    assert fresh["result_ct_digests"] == golden["result_ct_digests"]


def test_golden_digest_shape():
    """Digests cover every limb of both components for both objects:
    the augmented input (q0, q1, p) and the rescaled result (q0, q1)."""
    golden = _load()
    assert len(golden["input_ct_digests"]) == 2 * 3
    assert len(golden["result_ct_digests"]) == 2 * 2
    for entry in golden["input_ct_digests"] + golden["result_ct_digests"]:
        assert len(entry["sha256"]) == 64


def test_cluster_golden_inputs_regenerate_identically():
    _scheme, matrix, vector = _build_cluster()
    golden = _load()["cluster"]
    assert golden["params"]["scheme_seed"] == SCHEME_SEED
    assert golden["params"]["data_seed"] == CLUSTER_DATA_SEED
    assert matrix.tolist() == golden["matrix"]
    assert vector.tolist() == golden["vector"]


def test_cluster_golden_products_are_the_true_dot_products():
    golden = _load()["cluster"]
    matrix = np.array(golden["matrix"], dtype=object)
    vector = np.array(golden["vector"], dtype=object)
    t = toy_params(n=COLS, plain_bits=40).plain_modulus
    half = t // 2
    centered = [((int(x) + half) % t) - half for x in matrix @ vector]
    assert centered == golden["expected_products"]


def test_cluster_golden_replay_matches_products_and_digests():
    """The sharded scatter/merge/pack path replays bit-identically from
    the pinned seeds — drift in the partition, placement, or gather
    algebra lands here before it lands in production traffic."""
    golden = _load()["cluster"]
    fresh = _generate_cluster()
    assert fresh["expected_products"] == golden["expected_products"]
    assert fresh["input_ct_digests"] == golden["input_ct_digests"]
    assert fresh["result_ct_digests"] == golden["result_ct_digests"]


def test_cluster_golden_digest_shape():
    """Two augmented input tiles (q0, q1, p each) and one rescaled
    result pack (q0, q1)."""
    golden = _load()["cluster"]
    assert len(golden["input_ct_digests"]) == 2 * 2 * 3
    assert len(golden["result_ct_digests"]) == 2 * 2
    for entry in golden["input_ct_digests"] + golden["result_ct_digests"]:
        assert len(entry["sha256"]) == 64


def test_elastic_golden_inputs_regenerate_identically():
    _scheme, matrix, vectors = _build_elastic()
    golden = _load()["elastic"]
    assert golden["params"]["scheme_seed"] == SCHEME_SEED
    assert golden["params"]["data_seed"] == ELASTIC_DATA_SEED
    assert matrix.tolist() == golden["matrix"]
    assert [v.tolist() for v in vectors] == golden["vectors"]


def test_elastic_golden_schedules_agree_bit_for_bit():
    """The frozen scale-down and scale-up runs carry identical per-limb
    result digests for every request: the schedule relocates shards,
    the ciphertext bits never notice."""
    golden = _load()["elastic"]
    down = golden["runs"]["scale_down"]
    up = golden["runs"]["scale_up"]
    assert down["result_ct_digests"] == up["result_ct_digests"]
    assert down["final_nodes"] == 1
    assert up["final_nodes"] == 5
    for run in (down, up):
        assert run["membership"]["reencodes"] == 0


def test_elastic_golden_replay_matches_digests_and_counters():
    """Both pinned schedules replay bit-identically — digest drift means
    the crypto pipeline moved; counter drift means the migration or
    placement policy moved.  Either demands an intentional --regen."""
    golden = _load()["elastic"]
    for name, spec in ELASTIC_SCHEDULES.items():
        fresh = _run_elastic(spec)
        pinned = golden["runs"][name]
        assert fresh["result_ct_digests"] == pinned["result_ct_digests"]
        assert fresh["membership"] == pinned["membership"]
        assert fresh["final_nodes"] == pinned["final_nodes"]


def test_elastic_golden_digest_shape():
    golden = _load()["elastic"]
    for run in golden["runs"].values():
        assert len(run["result_ct_digests"]) == ELASTIC_REQUESTS
        for per_request in run["result_ct_digests"]:
            assert len(per_request) == 2 * 2  # (c0, c1) x (q0, q1)
            for entry in per_request:
                assert len(entry["sha256"]) == 64


def test_netsim_golden_inputs_regenerate_identically():
    _scheme, matrix, vectors = _build_netsim()
    golden = _load()["netsim"]
    assert golden["params"]["scheme_seed"] == SCHEME_SEED
    assert golden["params"]["data_seed"] == NETSIM_DATA_SEED
    assert matrix.tolist() == golden["matrix"]
    assert [v.tolist() for v in vectors] == golden["vectors"]


def test_netsim_golden_replay_matches_trace_and_flits():
    """The event simulation replays cycle-for-cycle from the pinned
    seeds: per-phase flit counts, the network-cycle bill, and the full
    event-trace sha256.  Ciphertext digest drift means the crypto moved;
    trace drift with stable ciphertexts means the *network model* moved
    (routing, arbitration, credit timing, flit sizing) — either demands
    an intentional --regen."""
    golden = _load()["netsim"]["run"]
    fresh = _run_netsim()
    assert fresh["result_ct_digests"] == golden["result_ct_digests"]
    assert fresh["trace_sha256"] == golden["trace_sha256"]
    assert fresh == golden


def test_netsim_golden_conservation_and_contention():
    """The frozen run itself is evidence: a contended mesh (blocked
    head-flit attempts, full buffers) that still drops and duplicates
    nothing."""
    run = _load()["netsim"]["run"]
    assert run["flits_dropped"] == 0
    assert run["flits_injected"] == run["flits_delivered"] > 0
    assert run["blocked_attempts"] > 0
    assert run["network_cycles"] > 0
    assert len(run["trace_sha256"]) == 64
    flits_by_phase = sum(p["flits"] for p in run["phases"].values())
    assert flits_by_phase == run["flits_injected"]


def test_netsim_golden_bits_match_free_comm():
    """The pinned mesh run's per-limb digests equal a free-comm replay's
    — the golden file cannot encode a fabric that changed the bits."""
    golden = _load()["netsim"]["run"]
    scheme, matrix, vectors = _build_netsim()
    plan = PartitionPlanner(COLS).plan_from_cuts(
        CLUSTER_ROWS, CLUSTER_COLS, CLUSTER_ROW_CUTS, CLUSTER_COL_CUTS
    )
    executor = ClusterExecutor(
        scheme,
        matrix,
        config=ClusterConfig(nodes=4, replication=2, seed=0),
        plan=plan,
    )
    cts = [executor.encrypt_vector(v) for v in vectors]
    results = executor.execute_batch(cts)
    digests = [_limb_digests(r.packs[0].ct) for r in results]
    assert digests == golden["result_ct_digests"]


if __name__ == "__main__":
    if "--regen" not in sys.argv:
        sys.exit("refusing to overwrite golden vectors without --regen")
    VECTOR_FILE.parent.mkdir(parents=True, exist_ok=True)
    VECTOR_FILE.write_text(json.dumps(_generate_all(), indent=2) + "\n")
    print(f"wrote {VECTOR_FILE}")
