"""Rule framework for the HE-aware static-analysis subsystem.

CHAM's correctness rests on invariants the Python type system cannot
express: residue products must route through the split-multiply path of
:mod:`repro.math.modular` (35-bit moduli overflow ``uint64`` under a
naive ``(a * b) % q``), signed centering must stay in object dtype, the
serving layer must never block the event loop.  This module provides the
machinery that lets those invariants be *machine-checked* on every PR:

* :class:`Rule` — one registered invariant, with a stable ID
  (``REPRO1xx``), a severity, and an AST check over a parsed source file;
* :class:`SourceFile` — a parsed file plus its per-line
  ``# repro: noqa RULE-ID`` suppression table;
* :class:`Diagnostic` — one finding (file/line/col/rule/message);
* :func:`lint_paths` / :func:`lint_source` — the engine that applies a
  rule set to files or inline snippets (the latter is what the fixture
  tests in ``tests/test_analysis.py`` drive).

The concrete rules live in :mod:`repro.analysis.rules`; external tool
wrappers (ruff, mypy) in :mod:`repro.analysis.toolchain`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Diagnostic",
    "SourceFile",
    "Rule",
    "register",
    "all_rules",
    "get_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_text",
    "diagnostics_to_json",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: ID reserved for files the engine cannot parse at all.
SYNTAX_RULE_ID = "REPRO000"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\b(?P<ids>[ \t]+[A-Z0-9][A-Z0-9,\s-]*)?",
    re.IGNORECASE,
)


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule fired at a specific location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }


class SourceFile:
    """A source file plus its parsed AST and noqa suppression table.

    Suppressions are per-line: ``# repro: noqa REPRO101`` silences that
    rule on that line, ``# repro: noqa REPRO101, REPRO103`` several, and
    a bare ``# repro: noqa`` silences every rule on the line.
    """

    def __init__(self, text: str, rel: str, path: Optional[Path] = None) -> None:
        self.text = text
        self.rel = rel
        self.path = path
        self.lines = text.splitlines()
        self._tree: Optional[ast.Module] = None
        self._noqa: Optional[Dict[int, Optional[Set[str]]]] = None

    @classmethod
    def from_path(cls, path: Path, root: Optional[Path] = None) -> "SourceFile":
        rel = relativize(path, root)
        return cls(path.read_text(encoding="utf-8"), rel, path)

    @property
    def tree(self) -> ast.Module:
        """The parsed module (raises :class:`SyntaxError` on bad input)."""
        if self._tree is None:
            self._tree = ast.parse(self.text, filename=self.rel)
        return self._tree

    @property
    def noqa(self) -> Dict[int, Optional[Set[str]]]:
        """Line number -> suppressed rule IDs (``None`` = all rules)."""
        if self._noqa is None:
            table: Dict[int, Optional[Set[str]]] = {}
            for lineno, line in enumerate(self.lines, start=1):
                match = _NOQA_RE.search(line)
                if not match:
                    continue
                ids = match.group("ids")
                if ids is None:
                    table[lineno] = None  # blanket
                else:
                    table[lineno] = {
                        part.strip().upper()
                        for part in ids.replace(",", " ").split()
                        if part.strip()
                    }
            self._noqa = table
        return self._noqa

    def suppressed(self, line: int, rule_id: str) -> bool:
        if line not in self.noqa:
            return False
        ids = self.noqa[line]
        return ids is None or rule_id in ids


class Rule:
    """Base class for one registered lint rule.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` narrows the default file scope (paths are
    repo-relative POSIX strings, e.g. ``src/repro/he/bfv.py``).

    Rules with ``project = True`` implement :meth:`check_project`
    instead: they see every in-scope file at once (the lock-order
    analysis needs the cross-file call graph — a worker pool in
    ``serve`` reaches cache writes in ``core``).  :func:`lint_paths`
    runs them exactly once per invocation; :meth:`check` still works on
    a single file (degenerate one-module project) so the fixture tests
    and ``lint_source`` need no special casing.
    """

    id: str = ""
    name: str = ""
    severity: str = SEVERITY_ERROR
    rationale: str = ""
    #: project rules analyze all in-scope files together (call graphs)
    project: bool = False

    def applies_to(self, rel_path: str) -> bool:
        return True

    def check(self, src: SourceFile) -> List[Diagnostic]:
        if self.project:
            return self.check_project([src])
        raise NotImplementedError

    def check_project(
        self, sources: Sequence[SourceFile]
    ) -> List[Diagnostic]:
        raise NotImplementedError

    def diag(self, src: SourceFile, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=src.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            severity=self.severity,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and add the rule to the registry."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} needs an id and a name")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by ID."""
    _ensure_rules_loaded()
    return [_REGISTRY[rid] for rid in sorted(_REGISTRY)]


def get_rules(ids: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve rule IDs (case-insensitive); ``None`` selects all."""
    if not ids:
        return all_rules()
    _ensure_rules_loaded()
    out = []
    for rid in ids:
        key = rid.upper()
        if key not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown rule {rid!r} (known: {known})")
        out.append(_REGISTRY[key])
    return out


def _ensure_rules_loaded() -> None:
    # The concrete rules register themselves on import; pulling the
    # modules in here keeps `get_rules` usable without import-order care.
    from . import dataflow as _dataflow  # noqa: F401  (import side effect)
    from . import locks as _locks  # noqa: F401  (import for side effect)
    from . import rules as _rules  # noqa: F401  (import for side effect)


def relativize(path: Path, root: Optional[Path] = None) -> str:
    """Repo-relative POSIX path when possible, else the given path."""
    path = Path(path)
    candidates = [root] if root is not None else []
    candidates.append(Path.cwd())
    for base in candidates:
        if base is None:
            continue
        try:
            return path.resolve().relative_to(Path(base).resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.suffix == ".py" and path.is_file():
            out.append(path)
    seen: Set[Path] = set()
    unique = []
    for p in out:
        rp = p.resolve()
        if rp not in seen:
            seen.add(rp)
            unique.append(p)
    return unique


def lint_file(
    src: SourceFile,
    rules: Optional[Sequence[Rule]] = None,
    respect_scope: bool = True,
) -> List[Diagnostic]:
    """Apply rules to one parsed source file, honoring suppressions.

    Project rules run here too (as a one-module project), which is what
    :func:`lint_source` fixtures rely on; :func:`lint_paths` filters
    them out of its per-file pass and runs them once globally instead.
    """
    selected = list(rules) if rules is not None else all_rules()
    try:
        src.tree
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=src.rel,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id=SYNTAX_RULE_ID,
                severity=SEVERITY_ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    diags: List[Diagnostic] = []
    for rule in selected:
        if respect_scope and not rule.applies_to(src.rel):
            continue
        for diag in rule.check(src):
            if not src.suppressed(diag.line, diag.rule_id):
                diags.append(diag)
    return sorted(diags)


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[Path] = None,
    respect_scope: bool = True,
) -> List[Diagnostic]:
    """Lint files and/or directory trees; returns sorted diagnostics.

    Per-file rules run file by file; project rules run once over every
    parseable in-scope file together, then their findings pass through
    the same per-line noqa filter as everything else.
    """
    selected = list(rules) if rules is not None else all_rules()
    file_rules = [r for r in selected if not r.project]
    project_rules = [r for r in selected if r.project]
    diags: List[Diagnostic] = []
    sources: List[SourceFile] = []
    for path in iter_python_files(paths):
        src = SourceFile.from_path(path, root=root)
        diags.extend(
            lint_file(src, rules=file_rules, respect_scope=respect_scope)
        )
        try:
            src.tree
        except SyntaxError:
            continue  # REPRO000 already reported by lint_file
        sources.append(src)
    by_rel = {s.rel: s for s in sources}
    for rule in project_rules:
        scoped = [
            s
            for s in sources
            if not respect_scope or rule.applies_to(s.rel)
        ]
        if not scoped:
            continue
        for diag in rule.check_project(scoped):
            src = by_rel.get(diag.path)
            if src is None or not src.suppressed(diag.line, diag.rule_id):
                diags.append(diag)
    return sorted(diags)


def lint_source(
    text: str,
    filename: str = "snippet.py",
    rules: Optional[Sequence[Rule]] = None,
    respect_scope: bool = False,
) -> List[Diagnostic]:
    """Lint an in-memory snippet (the fixture-test entry point).

    Scope filters are off by default so a fixture exercises its rule
    regardless of the pretend filename; pass ``respect_scope=True`` with
    a realistic ``filename`` to test the scoping itself.
    """
    src = SourceFile(text, filename)
    return lint_file(src, rules=rules, respect_scope=respect_scope)


def render_text(diags: Sequence[Diagnostic]) -> str:
    """Human-readable report (one line per finding plus a summary)."""
    if not diags:
        return "repro.analysis: no findings"
    lines = [d.format() for d in diags]
    errors = sum(1 for d in diags if d.severity == SEVERITY_ERROR)
    warnings = len(diags) - errors
    lines.append(
        f"repro.analysis: {errors} error(s), {warnings} warning(s) "
        f"in {len({d.path for d in diags})} file(s)"
    )
    return "\n".join(lines)


def diagnostics_to_json(diags: Sequence[Diagnostic]) -> Dict[str, object]:
    """JSON-ready payload (the CI artifact shape)."""
    return {
        "diagnostics": [d.to_dict() for d in diags],
        "summary": {
            "errors": sum(1 for d in diags if d.severity == SEVERITY_ERROR),
            "warnings": sum(
                1 for d in diags if d.severity == SEVERITY_WARNING
            ),
            "files": len({d.path for d in diags}),
        },
    }
