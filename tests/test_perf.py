"""Tests for the calibrated performance models against the paper's anchors."""

import pytest

from repro.hw.perf import (
    ChamPerfModel,
    CpuCostModel,
    GpuCostModel,
    PaillierCostModel,
    hmvp_latency_all,
)


@pytest.fixture(scope="module")
def cham():
    return ChamPerfModel()


@pytest.fixture(scope="module")
def cpu():
    return CpuCostModel()


@pytest.fixture(scope="module")
def gpu():
    return GpuCostModel()


def test_ntt_offload_throughput_anchor(cham):
    """'60 NTT units which can perform 195 k ops/sec' — PCIe bound."""
    thr = cham.ntt_offload_throughput()
    assert thr == pytest.approx(195_000, rel=0.02)


def test_ntt_throughput_vs_heax_and_gpu(cham, gpu):
    """CHAM 195k vs HEAX 117k (1.67x) vs GPU 45k (4.3x)."""
    thr = cham.ntt_offload_throughput()
    assert 1.5 < thr / 117_000 < 1.9
    assert 4.0 < thr / gpu.ntt_throughput < 4.7


def test_keyswitch_anchor(cham, cpu):
    """'throughput of 65 k ops/sec that is 105x higher than CPU'."""
    ks = cham.keyswitch_throughput()
    assert ks == pytest.approx(65_000, rel=0.1)
    ratio = ks / cpu.keyswitch_throughput()
    assert 90 <= ratio <= 120  # paper: 105x


def test_saturated_rows_per_sec(cham):
    # 2 engines x (300 MHz / 6144 cycles)
    assert cham.saturated_rows_per_s() == pytest.approx(2 * 300e6 / 6144)


def test_hmvp_latency_ordering(cham, cpu, gpu):
    """Fig. 8: cham < gpu << cpu at every plotted point."""
    for m, n in [(2048, 256), (8192, 256), (8192, 4096), (16384, 4096)]:
        lat = hmvp_latency_all(m, n, cham, cpu, gpu)
        assert lat["cham"] < lat["gpu"] < lat["cpu"], (m, n)


def test_cham_gpu_latency_band(cham, cpu, gpu):
    """Paper: CHAM latency is 0.3x ~ 0.7x of the GPU's."""
    ratios = []
    for m, n in [(2048, 256), (8192, 256), (16384, 256), (8192, 4096)]:
        lat = hmvp_latency_all(m, n, cham, cpu, gpu)
        ratios.append(lat["cham"] / lat["gpu"])
    assert all(0.25 <= r <= 0.85 for r in ratios), ratios


def test_cpu_speedup_band(cham, cpu):
    """>10x over the BFV CPU baseline everywhere; ~30x at the small end."""
    for m, n in [(2048, 256), (8192, 4096), (8192, 8192)]:
        ratio = cpu.hmvp_s(m, n) / cham.hmvp_s(m, n)
        assert ratio > 10, (m, n, ratio)
    small = cpu.hmvp_s(2048, 256) / cham.hmvp_s(2048, 256)
    assert 40 <= small <= 130


def test_paillier_speedup_reaches_1800x(cham):
    """The abstract's 1800x HMVP speed-up (vs the Paillier incumbent)."""
    pail = PaillierCostModel()
    big = pail.matvec_s(8192, 4096) / cham.hmvp_s(8192, 4096)
    assert 1400 <= big <= 2400
    small = pail.matvec_s(2048, 256) / cham.hmvp_s(2048, 256)
    assert small < 200  # overheads compress the small end


def test_gpu_throughput_ratio(cham, gpu):
    """Fig. 6: CHAM sustains ~4.5x the GPU's HMVP throughput."""
    m, n = 16384, 4096
    cham_thr = cham.hmvp_throughput_rows_per_s(m, n)
    gpu_thr = m / gpu.hmvp_s(m, n, cham.saturated_rows_per_s())
    assert 2.5 <= cham_thr / gpu_thr <= 4.6


def test_hmvp_cycles_scale(cham):
    c1 = cham.hmvp_cycles(1024, 4096)
    c2 = cham.hmvp_cycles(2048, 4096)
    assert c2 == pytest.approx(2 * c1, rel=0.1)


def test_schedule_overlaps(cham):
    sched = cham.hmvp_schedule(4096, 4096)
    assert sched.overlap_speedup > 1.2
    assert sched.chunks == 8  # 4096 rows / 512 per chunk


def test_cpu_model_components(cpu):
    assert cpu.dot_product_s() > 0
    assert cpu.pack_reduction_s() == pytest.approx(1.61e-3)
    assert cpu.hmvp_s(100, 256) < cpu.hmvp_s(200, 256)
    assert cpu.hmvp_s(100, 8192) > cpu.hmvp_s(100, 4096)


def test_paillier_model_components():
    pail = PaillierCostModel()
    per_entry = (pail.mul_plain_us + pail.add_us) * 1e-6
    assert pail.matvec_s(10, 10) == pytest.approx(100 * per_entry)
    assert pail.encrypt_vec_s(100) == pytest.approx(100 * pail.encrypt_ms * 1e-3)
    assert pail.decrypt_vec_s(10) == pytest.approx(10 * pail.decrypt_ms * 1e-3)
    assert pail.add_vec_s(1000) == pytest.approx(1000 * pail.add_us * 1e-6)


def test_offloaded_fraction_of_cpu_work(cham, cpu):
    """'more than 90% computation has been offloaded': the HMVP the FPGA
    absorbs dominates what stays on the host."""
    m, n = 8192, 4096
    total_cpu = cpu.hmvp_s(m, n)
    host_side = m * cham.encode_row_us * 1e-6  # all that remains on CPU
    assert (total_cpu - host_side) / total_cpu > 0.9
