"""Tests for the BfvScheme facade."""

import numpy as np
import pytest

from repro.he.bfv import BfvScheme
from repro.he.params import toy_params


def test_default_params_are_production():
    # constructing at N=4096 is expensive; just check the wiring without keys
    from repro.he.params import cham_params

    p = cham_params()
    assert p.n == 4096


def test_encrypt_decrypt_vector(scheme128, rng):
    v = rng.integers(-1000, 1000, 128)
    ct = scheme128.encrypt_vector(v)
    got = scheme128.decrypt_coeffs(ct, 128)
    assert np.array_equal(got, v)


def test_public_encryption_path(scheme128, rng):
    v = rng.integers(-1000, 1000, 128)
    ct = scheme128.encrypt_vector(v, public=True)
    assert np.array_equal(scheme128.decrypt_coeffs(ct, 128), v)


def test_dot_product_end_to_end(scheme128, rng):
    v = rng.integers(-100, 100, 128)
    row = rng.integers(-100, 100, 128)
    ct = scheme128.encrypt_vector(v)
    out = scheme128.dot_product(ct, row)
    assert not out.is_augmented  # rescaled
    got = int(scheme128.decrypt_plaintext(out).centered()[0])
    assert got == int(np.dot(row.astype(object), v.astype(object)))


def test_dot_product_normal_basis_passthrough(scheme128, rng):
    v = rng.integers(-100, 100, 128)
    row = rng.integers(-100, 100, 128)
    ct = scheme128.encrypt_vector(v, augmented=False)
    out = scheme128.dot_product(ct, row)
    got = int(scheme128.decrypt_plaintext(out).centered()[0])
    assert got == int(np.dot(row.astype(object), v.astype(object)))


def test_extract_pack_decrypt_cycle(scheme128, rng):
    v = rng.integers(-50, 50, 128)
    ct = scheme128.encrypt_vector(v)
    rows = [rng.integers(-50, 50, 128) for _ in range(6)]
    lwes = [scheme128.extract(scheme128.dot_product(ct, r)) for r in rows]
    packed = scheme128.pack(lwes)
    got = scheme128.decrypt_packed(packed)
    want = [int(np.dot(r.astype(object), v.astype(object))) for r in rows]
    assert [int(x) for x in got] == want


def test_decrypt_lwe(scheme128, rng):
    v = rng.integers(-500, 500, 128)
    ct = scheme128.encrypt_vector(v, augmented=False)
    lwe = scheme128.extract(ct, 5)
    assert scheme128.decrypt_lwe(lwe) == v[5]


def test_fixed_point_helper(scheme128):
    codec = scheme128.fixed_point(frac_bits=10)
    assert codec.t == scheme128.params.plain_modulus
    assert codec.scale == 1024


def test_noise_helpers(scheme128, rng):
    v = rng.integers(-10, 10, 128)
    ct = scheme128.encrypt_vector(v)
    assert scheme128.noise_bits(ct) < 10
    assert scheme128.noise_budget(ct) > 20


def test_max_pack_limits_galois_keys():
    s = BfvScheme(toy_params(n=64, plain_bits=30), seed=1, max_pack=4)
    assert len(s.galois_keys.keys) == 2  # levels 1 and 2
