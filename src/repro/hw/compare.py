"""Published-accelerator comparison (the related-work landscape of §I).

Structured data for the accelerators the paper positions itself against,
with derived normalized metrics (ATP, NTT rate, technology class).  The
numbers are the papers' published figures — this module exists so the
comparison table the paper's introduction sketches can be regenerated
and extended programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Accelerator", "KNOWN_ACCELERATORS", "comparison_rows", "cham_entry"]


@dataclass(frozen=True)
class Accelerator:
    """One published HE accelerator's headline figures."""

    name: str
    venue: str
    technology: str  # "FPGA" | "ASIC" | "GPU"
    clock_mhz: float
    #: NTT latency in cycles at N=4096-class sizes (None if not quoted)
    ntt_cycles: Optional[int]
    #: butterfly parallelism of the NTT unit
    ntt_parallelism: Optional[int]
    #: chip/die area in mm^2 (ASICs; the §I "100-400 mm^2" criticism)
    area_mm2: Optional[float]
    #: target scope: "operator" (NTT/key-switch) or "kernel" (whole HMVP)
    scope: str
    multi_scheme: bool

    @property
    def atp(self) -> Optional[float]:
        """Area-time product proxy: cycles x parallelism (paper Table III)."""
        if self.ntt_cycles is None or self.ntt_parallelism is None:
            return None
        return self.ntt_cycles * self.ntt_parallelism

    @property
    def ntt_rate_per_unit(self) -> Optional[float]:
        if self.ntt_cycles is None:
            return None
        return self.clock_mhz * 1e6 / self.ntt_cycles


#: published figures, as quoted in the paper and the cited works
KNOWN_ACCELERATORS: Dict[str, Accelerator] = {
    "CHAM": Accelerator(
        name="CHAM",
        venue="DAC'23",
        technology="FPGA",
        clock_mhz=300,
        ntt_cycles=6144,
        ntt_parallelism=4,
        area_mm2=None,
        scope="kernel",
        multi_scheme=True,
    ),
    "HEAX": Accelerator(
        name="HEAX",
        venue="ASPLOS'20",
        technology="FPGA",
        clock_mhz=300,
        ntt_cycles=6144,
        ntt_parallelism=4,
        area_mm2=None,
        scope="operator",
        multi_scheme=False,
    ),
    "F1": Accelerator(
        name="F1",
        venue="MICRO'21",
        technology="ASIC",
        clock_mhz=1000,
        ntt_cycles=202,
        ntt_parallelism=896,
        area_mm2=151.0,
        scope="operator",
        multi_scheme=False,
    ),
    "CraterLake": Accelerator(
        name="CraterLake",
        venue="ISCA'22",
        technology="ASIC",
        clock_mhz=1000,
        ntt_cycles=None,
        ntt_parallelism=None,
        area_mm2=472.3,
        scope="kernel",
        multi_scheme=False,
    ),
    "BTS": Accelerator(
        name="BTS",
        venue="ISCA'22",
        technology="ASIC",
        clock_mhz=1200,
        ntt_cycles=None,
        ntt_parallelism=None,
        area_mm2=373.6,
        scope="kernel",
        multi_scheme=False,
    ),
    "cuHE/GPU": Accelerator(
        name="cuHE/GPU",
        venue="ePrint'16",
        technology="GPU",
        clock_mhz=1290,
        ntt_cycles=None,
        ntt_parallelism=None,
        area_mm2=815.0,  # V100 die
        scope="operator",
        multi_scheme=False,
    ),
}


def cham_entry() -> Accelerator:
    return KNOWN_ACCELERATORS["CHAM"]


def comparison_rows() -> List[List[str]]:
    """The §I landscape as printable rows, CHAM first."""
    order = ["CHAM", "HEAX", "F1", "CraterLake", "BTS", "cuHE/GPU"]
    rows = []
    cham_atp = cham_entry().atp
    for name in order:
        acc = KNOWN_ACCELERATORS[name]
        atp = acc.atp
        rows.append(
            [
                acc.name,
                acc.venue,
                acc.technology,
                f"{acc.clock_mhz:.0f} MHz",
                f"{atp / cham_atp:.2f}x" if atp else "-",
                f"{acc.area_mm2:.0f}" if acc.area_mm2 else "-",
                acc.scope,
                "yes" if acc.multi_scheme else "no",
            ]
        )
    return rows
