"""Tests for the Paillier baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he.paillier import Paillier, paillier_keygen
from repro.math.primes import is_prime


@pytest.fixture(scope="module")
def paillier():
    return Paillier(bits=256, seed=42)


def test_keygen_structure():
    sk = paillier_keygen(bits=128, seed=0)
    n = sk.public.n
    assert n.bit_length() in (127, 128)
    assert sk.public.g == n + 1
    # lam must invert correctly: decrypting Enc(0) gives 0
    p = Paillier(bits=128, seed=0)
    assert p.decrypt(p.encrypt(0)) == 0


def test_encrypt_decrypt_roundtrip(paillier, rng):
    for v in rng.integers(-(1 << 40), 1 << 40, 20):
        assert paillier.decrypt(paillier.encrypt(int(v))) == int(v)


def test_encryption_is_randomized(paillier):
    assert paillier.encrypt(7) != paillier.encrypt(7)


def test_homomorphic_addition(paillier, rng):
    a, b = int(rng.integers(-1000, 1000)), int(rng.integers(-1000, 1000))
    c = paillier.add(paillier.encrypt(a), paillier.encrypt(b))
    assert paillier.decrypt(c) == a + b


def test_add_plain(paillier):
    c = paillier.add_plain(paillier.encrypt(10), -25)
    assert paillier.decrypt(c) == -15


def test_mul_plain(paillier):
    c = paillier.mul_plain(paillier.encrypt(-7), 6)
    assert paillier.decrypt(c) == -42


def test_mul_plain_negative_scalar(paillier):
    c = paillier.mul_plain(paillier.encrypt(9), -3)
    assert paillier.decrypt(c) == -27


def test_vector_helpers(paillier):
    cts = paillier.encrypt_vector([1, -2, 3])
    assert paillier.decrypt_vector(cts) == [1, -2, 3]
    summed = paillier.add_vectors(cts, cts)
    assert paillier.decrypt_vector(summed) == [2, -4, 6]
    with pytest.raises(ValueError):
        paillier.add_vectors(cts, cts[:2])


def test_matvec(paillier, rng):
    import numpy as np

    a = rng.integers(-20, 20, (4, 6))
    v = rng.integers(-20, 20, 6)
    cts = paillier.encrypt_vector(v)
    out = paillier.decrypt_vector(paillier.matvec(a, cts))
    want = list(a.astype(object) @ v.astype(object))
    assert out == want


def test_matvec_shape_check(paillier):
    with pytest.raises(ValueError):
        paillier.matvec([[1, 2]], paillier.encrypt_vector([1, 2, 3]))


@given(
    a=st.integers(min_value=-(1 << 32), max_value=1 << 32),
    b=st.integers(min_value=-(1 << 32), max_value=1 << 32),
    k=st.integers(min_value=-1000, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_homomorphism_property(a, b, k):
    p = Paillier(bits=128, seed=3)
    lhs = p.decrypt(p.add(p.encrypt(a), p.encrypt(b)))
    assert lhs == a + b
    assert p.decrypt(p.mul_plain(p.encrypt(a), k)) == a * k
