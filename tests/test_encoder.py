"""Tests for plaintexts and the Eq. 1 coefficient encoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he.encoder import CoefficientEncoder, FixedPointCodec, Plaintext
from repro.he.params import toy_params
from repro.math.ntt import negacyclic_convolution_schoolbook


@pytest.fixture(scope="module")
def enc():
    return CoefficientEncoder(toy_params(n=64, plain_bits=30))


def test_plaintext_centered():
    pt = Plaintext(np.array([0, 1, 9, 10], dtype=np.uint64), 11)
    assert list(pt.centered()) == [0, 1, -2, -1]
    assert pt.infinity_norm() == 2


def test_plaintext_validation():
    with pytest.raises(ValueError):
        Plaintext(np.zeros((2, 2), dtype=np.uint64), 11)


def test_encode_decode_roundtrip(enc, rng):
    vals = rng.integers(-1000, 1000, 64)
    pt = enc.encode_coeffs(vals)
    assert np.array_equal(enc.decode_coeffs(pt, 64), vals)


def test_encode_short_vector_pads(enc):
    pt = enc.encode_coeffs([5, -3])
    assert pt.coeffs[0] == 5
    assert (pt.coeffs[2:] == 0).all()


def test_encode_rejects_long_input(enc):
    with pytest.raises(ValueError):
        enc.encode_coeffs(np.zeros(65))
    with pytest.raises(ValueError):
        enc.encode_row(np.zeros(65))


def test_row_encoding_layout(enc):
    """Eq. 1: A_{i,0} at X^0, -A_{i,j} at X^{N-j}."""
    row = np.array([7, 1, 2, 3])
    pt = enc.encode_row(row)
    t = enc.t
    assert pt.coeffs[0] == 7
    assert pt.coeffs[63] == t - 1
    assert pt.coeffs[62] == t - 2
    assert pt.coeffs[61] == t - 3
    assert (pt.coeffs[1:61] == 0).all()


def test_eq2_inner_product_in_constant_coefficient(enc, rng):
    """The defining property: const coeff of pt(row) * pt(vec) = <row, vec>."""
    t = enc.t
    for _ in range(10):
        row = rng.integers(-50, 50, 64)
        vec = rng.integers(-50, 50, 64)
        pt_r = enc.encode_row(row)
        pt_v = enc.encode_vector(vec)
        prod = negacyclic_convolution_schoolbook(pt_r.coeffs, pt_v.coeffs, t)
        got = int(prod[0])
        if got > t // 2:
            got -= t
        assert got == int(np.dot(row.astype(object), vec.astype(object)))


def test_eq2_short_row(enc, rng):
    row = rng.integers(-50, 50, 10)
    vec = rng.integers(-50, 50, 64)
    pt_r = enc.encode_row(row)
    pt_v = enc.encode_vector(vec)
    prod = negacyclic_convolution_schoolbook(pt_r.coeffs, pt_v.coeffs, enc.t)
    got = int(prod[0])
    if got > enc.t // 2:
        got -= enc.t
    assert got == int(np.dot(row.astype(object), vec[:10].astype(object)))


def test_encode_matrix_rows(enc, rng):
    m = rng.integers(-10, 10, (5, 64))
    pts = enc.encode_matrix_rows(m)
    assert len(pts) == 5
    assert pts[2] == enc.encode_row(m[2])
    with pytest.raises(ValueError):
        enc.encode_matrix_rows(np.zeros(64))


def test_decode_packed_scaling(enc):
    """decode_packed removes the 2^k PACKLWES factor mod t."""
    t = enc.t
    count, levels = 4, 2
    stride = 64 >> levels
    coeffs = np.zeros(64, dtype=np.uint64)
    values = [3, -7, 11, 0]
    for i, v in enumerate(values):
        coeffs[i * stride] = (v * (1 << levels)) % t
    pt = Plaintext(coeffs, t)
    got = enc.decode_packed(pt, count, levels)
    assert [int(x) for x in got] == values


def test_decode_packed_single(enc):
    coeffs = np.zeros(64, dtype=np.uint64)
    coeffs[0] = 42
    got = enc.decode_packed(Plaintext(coeffs, enc.t), 1, 0)
    assert list(got) == [42]


# -- fixed point --------------------------------------------------------------------


def test_fixed_point_roundtrip():
    codec = FixedPointCodec(t=(1 << 40) + 15, frac_bits=13)
    x = np.array([0.5, -1.25, 3.14159, 0.0])
    enc_x = codec.encode(x)
    dec = codec.decode(enc_x)
    assert np.allclose(dec, x, atol=2 ** -13)


def test_fixed_point_product_scale():
    codec = FixedPointCodec(t=(1 << 40) + 15, frac_bits=10)
    a, b = 1.5, -2.25
    ea = int(codec.encode(np.array([a]))[0])
    eb = int(codec.encode(np.array([b]))[0])
    prod = (ea * eb) % codec.t
    dec = codec.decode(np.array([prod], dtype=object), scale_bits=20)
    assert abs(dec[0] - a * b) < 2 ** -9


def test_fixed_point_huge_modulus():
    """Must stay exact for a 1024-bit Paillier modulus (regression)."""
    n = (1 << 512) + 951  # stand-in large odd modulus
    codec = FixedPointCodec(t=n, frac_bits=13)
    x = np.array([-1.999, 2.5])
    enc_x = codec.encode(x)
    assert int(enc_x[0]) == n - 16376
    assert np.allclose(codec.decode(enc_x), x, atol=2 ** -12)


def test_fixed_point_max_representable():
    codec = FixedPointCodec(t=(1 << 20) + 7, frac_bits=8)
    assert codec.max_representable() == pytest.approx((codec.t // 2) / 256.0)


@given(st.floats(min_value=-1000, max_value=1000, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_fixed_point_property(x):
    codec = FixedPointCodec(t=(1 << 40) + 15, frac_bits=13)
    dec = codec.decode(codec.encode(np.array([x])))
    assert abs(dec[0] - x) <= 2 ** -13
