"""The paper's primary contribution: coefficient-encoded HMVP (Alg. 1),
its tiling to arbitrary shapes, convolution lowerings, and the baseline
encodings + complexity models it is compared against (Section II-E).
"""

from .hmvp import HmvpOpCount, HmvpResult, TiledHmvp, hmvp
from .batch import BatchedHmvp
from .matmul import EncryptedMatmul
from .baselines import (
    BaselineHmvp,
    BatchEncoder,
    batch_friendly_plain_modulus,
    diagonal_op_count,
    rotate_and_sum_op_count,
)
from .conv import (
    Conv2dEncoder,
    conv2d_via_hmvp,
    im2col,
    Conv3dEncoder,
    conv2d_reference,
    conv3d_reference,
    homomorphic_conv2d,
    homomorphic_conv3d,
)
from .complexity import EncodingCost, batch_cost, coefficient_cost, diagonal_cost

__all__ = [
    "BatchedHmvp",
    "EncryptedMatmul",
    "HmvpOpCount",
    "HmvpResult",
    "TiledHmvp",
    "hmvp",
    "BaselineHmvp",
    "BatchEncoder",
    "batch_friendly_plain_modulus",
    "diagonal_op_count",
    "rotate_and_sum_op_count",
    "Conv2dEncoder",
    "conv2d_via_hmvp",
    "im2col",
    "Conv3dEncoder",
    "conv2d_reference",
    "conv3d_reference",
    "homomorphic_conv2d",
    "homomorphic_conv3d",
    "EncodingCost",
    "batch_cost",
    "coefficient_cost",
    "diagonal_cost",
]
