"""E3 — the key-switch throughput discussion of Section V-B1.

Paper: "CHAM achieves a throughput of 65 k ops/sec that is 105x higher
than the CPU baseline."  CHAM's rate comes from the pack pipeline's
initiation interval; the CPU anchor is fixed by the quoted ratio.
"""

import time

import numpy as np
import pytest
from conftest import print_table, record_result

from repro.he.keys import generate_keyswitch_key, generate_secret_key
from repro.he.keyswitch import apply_keyswitch, key_switch_raw
from repro.he.rlwe import encrypt
from repro.hw.perf import ChamPerfModel, CpuCostModel


def test_keyswitch_throughput_table():
    cham = ChamPerfModel()
    cpu = CpuCostModel()
    cham_ks = cham.keyswitch_throughput()
    cpu_ks = cpu.keyswitch_throughput()
    rows = [
        ("CHAM (1 engine pack pipeline)", f"{cham_ks:,.0f}", f"{cham_ks / cpu_ks:.0f}x"),
        ("CHAM (2 engines)", f"{cham.keyswitch_throughput(2):,.0f}", ""),
        ("CPU Xeon 6130 (model)", f"{cpu_ks:,.0f}", "1x"),
    ]
    print_table(
        "Key-switch throughput (ops/s, paper: 65 k @ 105x)",
        ["platform", "ops/s", "speedup"],
        rows,
    )
    assert cham_ks == pytest.approx(65_000, rel=0.1)
    assert 90 <= cham_ks / cpu_ks <= 120


def test_keyswitch_pipeline_interval_balances_row_rate():
    """The pack (key-switch) pipeline must keep up with the dot-product
    stage or Alg. 1 would bottleneck on stage 5-9."""
    from repro.hw.arch import EngineConfig

    engine = EngineConfig()
    assert engine.pack_interval <= engine.dot_product_interval


def test_keyswitch_wall_rate(bench_scheme, rng):
    """Wall-clock key-switch rate, recorded for the perfcheck gate.

    Two figures: the single-ciphertext :func:`apply_keyswitch` rate and
    the batched :func:`key_switch_raw` rate over a ``(L, 8, n)`` stack
    (the shape the batched PACKLWES kernel issues).  The fused-limb
    rewrite moved these from ~390 ops/s (per-digit double loop) to
    well over 5x that; ``benchmarks/floors.json`` pins the floors.
    """
    ctx = bench_scheme.ctx
    sk = bench_scheme.secret_key
    other = generate_secret_key(ctx)
    ksk = generate_keyswitch_key(ctx, other, sk)
    pt = bench_scheme.encoder.encode_coeffs(rng.integers(-100, 100, 128))
    ct = encrypt(ctx, other, pt, augmented=False)
    batch = 8
    stack = np.stack([ct.c1] * batch, axis=1)  # (L, batch, n)

    def rate(fn, per_call, min_time=0.5):
        fn()  # warm caches (twiddle slabs, key stacks, reducers)
        calls = 0
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < min_time:
            fn()
            calls += 1
        return calls * per_call / (time.perf_counter() - t0)

    single = rate(lambda: apply_keyswitch(ct, ksk), 1)
    batched = rate(lambda: key_switch_raw(ctx, stack, ksk), batch)
    print_table(
        "Key-switch wall rate (toy ring n=128, L=2)",
        ["path", "ops/s"],
        [
            ("apply_keyswitch (single)", f"{single:,.0f}"),
            (f"key_switch_raw (batch {batch})", f"{batched:,.0f}"),
        ],
    )
    record_result(
        "keyswitch",
        {"ops_per_s_single": single, "ops_per_s_batched": batched},
        params={"n": ctx.n, "limbs": len(ctx.params.ct_moduli), "batch": batch},
    )
    assert batched >= single * 0.9  # batching must never cost throughput


@pytest.mark.benchmark(group="keyswitch")
def test_perf_keyswitch_kernel(benchmark, bench_scheme, rng):
    """Time the real RNS-hybrid key-switch at the toy ring size."""
    ctx = bench_scheme.ctx
    sk = bench_scheme.secret_key
    other = generate_secret_key(ctx)
    ksk = generate_keyswitch_key(ctx, other, sk)
    pt = bench_scheme.encoder.encode_coeffs(rng.integers(-100, 100, 128))
    ct = encrypt(ctx, other, pt, augmented=False)
    benchmark(apply_keyswitch, ct, ksk)


@pytest.mark.benchmark(group="keyswitch")
def test_perf_keyswitch_keygen(benchmark, bench_scheme):
    ctx = bench_scheme.ctx
    sk = bench_scheme.secret_key
    other = generate_secret_key(ctx)
    benchmark(generate_keyswitch_key, ctx, other, sk)
