"""Key material: secret, public, key-switch and Galois keys.

Key-switch keys follow the RNS-decomposed *hybrid* construction with the
39-bit special modulus ``p`` (Section II-F): for each ciphertext limb
``q_i`` the key holds one RLWE sample under the augmented basis ``Qp``

``ksk_i = ( -a_i s + e_i + [p * Q̂_i * (Q̂_i^{-1} mod q_i)]_{Qp} * s_src , a_i )``

so that ``sum_i [c]_{q_i} * ksk_i`` evaluates (under ``s``) to
``p * c * s_src + sum_i [c]_{q_i} e_i  (mod Qp)`` and a divide-and-round
by ``p`` recovers ``c * s_src`` with only word-sized noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..math.modular import modadd_vec, modinv, modmul_vec, modneg_vec
from ..math.polynomial import automorph_permutation
from ..math.rns import RnsBasis
from .context import CheContext

__all__ = [
    "SecretKey",
    "PublicKey",
    "KeySwitchKey",
    "GaloisKeyset",
    "generate_secret_key",
    "generate_public_key",
    "generate_keyswitch_key",
    "generate_galois_key",
    "generate_galois_keyset",
    "pack_galois_elements",
]


@dataclass
class SecretKey:
    """Ternary RLWE secret ``s`` with cached per-basis limb/NTT forms."""

    signed: np.ndarray  # (n,) int64 in {-1, 0, 1}
    _limb_cache: Dict[Tuple[int, ...], np.ndarray] = field(default_factory=dict)
    _ntt_cache: Dict[Tuple[int, ...], np.ndarray] = field(default_factory=dict)

    def limbs(self, ctx: CheContext, basis: RnsBasis) -> np.ndarray:
        key = basis.moduli
        if key not in self._limb_cache:
            self._limb_cache[key] = ctx.signed_to_limbs(self.signed, basis)
        return self._limb_cache[key]

    def ntt_limbs(self, ctx: CheContext, basis: RnsBasis) -> np.ndarray:
        key = basis.moduli
        if key not in self._ntt_cache:
            self._ntt_cache[key] = ctx.ntt_limbs(self.limbs(ctx, basis), basis)
        return self._ntt_cache[key]

    def automorphed(self, k: int) -> "SecretKey":
        """The secret ``s(X^k)`` (source key of a Galois switch)."""
        n = self.signed.shape[0]
        src, flip = automorph_permutation(n, k)
        out = self.signed[src].copy()
        out[flip] = -out[flip]
        return SecretKey(out)

    @property
    def hamming_weight(self) -> int:
        return int(np.count_nonzero(self.signed))


@dataclass
class PublicKey:
    """An encryption of zero under the augmented basis: ``(b, a)``."""

    b: np.ndarray  # (L_aug, n)
    a: np.ndarray  # (L_aug, n)


@dataclass
class KeySwitchKey:
    """Hybrid key-switch key: one augmented RLWE pair per ciphertext limb.

    ``b[i], a[i]`` have shape ``(L_aug, n)`` and are stored in the NTT
    domain (the hardware keeps switching keys resident in transform form;
    Section III-A stage 5-9).
    """

    b_ntt: List[np.ndarray]
    a_ntt: List[np.ndarray]
    _stack: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    @property
    def decomp_count(self) -> int:
        return len(self.b_ntt)

    def fused_stack(self) -> np.ndarray:
        """The key as one frozen ``(L_aug, 2, L, n)`` stack, built lazily.

        Axis 0 is the augmented limb ``j``, axis 1 the component
        (``b`` then ``a``), axis 2 the decomposition digit ``i`` — the
        layout the fused key-switch broadcasts against its
        ``(L_aug, 1, L, *batch, n)`` digit stack, so *both* inner
        products come out of one modmul pass.  Cached on first use (keys
        are immutable after keygen) and frozen read-only because one key
        is shared across threads.
        """
        if self._stack is None:
            comb = np.stack(
                [np.stack(self.b_ntt, axis=1), np.stack(self.a_ntt, axis=1)],
                axis=1,
            )
            comb.flags.writeable = False
            self._stack = comb
        return self._stack

    def stacks(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``b`` and ``a`` halves of :meth:`fused_stack` as
        ``(L_aug, L, n)`` read-only views."""
        comb = self.fused_stack()
        return comb[:, 0], comb[:, 1]


@dataclass
class GaloisKeyset:
    """Galois element -> key-switch key for ``s(X^g) -> s``."""

    keys: Dict[int, KeySwitchKey] = field(default_factory=dict)

    def __contains__(self, g: int) -> bool:
        return g in self.keys

    def __getitem__(self, g: int) -> KeySwitchKey:
        if g not in self.keys:
            raise KeyError(
                f"missing Galois key for element {g}; generate it with "
                "generate_galois_keyset(..., elements=[...])"
            )
        return self.keys[g]


def generate_secret_key(ctx: CheContext) -> SecretKey:
    """Sample a uniform ternary secret."""
    return SecretKey(ctx.sample_ternary_signed())


def generate_public_key(ctx: CheContext, sk: SecretKey) -> PublicKey:
    """Standard RLWE public key ``(b, a) = (-(a s) + e, a)`` mod ``Qp``."""
    basis = ctx.aug_basis
    a = ctx.sample_uniform(basis)
    e = ctx.signed_to_limbs(ctx.sample_error_signed(), basis)
    a_s = ctx.negacyclic_multiply(a, sk.limbs(ctx, basis), basis)
    b = np.stack(
        [
            modadd_vec(modneg_vec(a_s[i], q), e[i], q)
            for i, q in enumerate(basis)
        ]
    )
    return PublicKey(b=b, a=a)


def generate_keyswitch_key(
    ctx: CheContext, src: SecretKey, dst: SecretKey
) -> KeySwitchKey:
    """Key-switch key converting ``c * src`` terms to the key ``dst``."""
    params = ctx.params
    aug = ctx.aug_basis
    p = params.special_modulus
    qp = params.qp_product
    src_limbs = src.limbs(ctx, aug)
    dst_limbs = dst.limbs(ctx, aug)

    b_parts: List[np.ndarray] = []
    a_parts: List[np.ndarray] = []
    for i, qi in enumerate(params.ct_moduli):
        # the CRT "selector" of limb i, scaled by p:  p * Q̂_i * (Q̂_i^{-1} mod q_i)
        q_hat = params.q_product // qi
        # scalar Python-int CRT precompute: exact at any width
        selector = (p * q_hat * modinv(q_hat % qi, qi)) % qp  # repro: noqa REPRO101
        a = ctx.sample_uniform(aug)
        e = ctx.signed_to_limbs(ctx.sample_error_signed(), aug)
        a_s = ctx.negacyclic_multiply(a, dst_limbs, aug)
        b_limbs = []
        for j, qj in enumerate(aug):
            sel_j = np.uint64(selector % qj)
            term = modmul_vec(src_limbs[j], sel_j, qj)
            limb = modadd_vec(modadd_vec(modneg_vec(a_s[j], qj), e[j], qj), term, qj)
            b_limbs.append(limb)
        b = np.stack(b_limbs)
        b_parts.append(ctx.ntt_limbs(b, aug))
        a_parts.append(ctx.ntt_limbs(a, aug))
    return KeySwitchKey(b_ntt=b_parts, a_ntt=a_parts)


def generate_galois_key(ctx: CheContext, sk: SecretKey, g: int) -> KeySwitchKey:
    """Key-switch key for the automorphism ``X -> X^g``."""
    return generate_keyswitch_key(ctx, sk.automorphed(g), sk)


def pack_galois_elements(n: int, max_count: Optional[int] = None) -> List[int]:
    """Galois elements PACKLWES needs: ``2**k + 1`` for each merge level.

    Packing ``m`` ciphertexts uses levels ``k = 1 .. ceil(log2 m)``; the
    default covers a full pack of ``n`` ciphertexts (``log2 n`` levels).
    """
    if max_count is None:
        levels = n.bit_length() - 1
    else:
        levels = max(max_count - 1, 0).bit_length()
    return [(1 << k) + 1 for k in range(1, levels + 1)]


def generate_galois_keyset(
    ctx: CheContext, sk: SecretKey, elements: Optional[List[int]] = None
) -> GaloisKeyset:
    """Generate the keyset for PACKLWES (all pack levels by default)."""
    if elements is None:
        elements = pack_galois_elements(ctx.n)
    keyset = GaloisKeyset()
    for g in elements:
        keyset.keys[g] = generate_galois_key(ctx, sk, g)
    return keyset
