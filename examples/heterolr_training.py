#!/usr/bin/env python3
"""Federated logistic regression over encrypted gradients (Fig. 7a/b).

Trains the Hardy et al. HeteroLR protocol on a synthetic vertically-
partitioned dataset three times — cleartext oracle, Paillier (FATE's
original), and B/FV with the real Alg. 1 HMVP pipeline — verifies the
three agree, then projects the training-step times onto the paper's
hardware targets with the calibrated performance models.

Usage: python examples/heterolr_training.py
"""

import time

import numpy as np

from repro.apps.datasets import make_vertical_dataset
from repro.apps.heterolr import (
    BfvBackend,
    HeteroLrTrainer,
    LrConfig,
    PaillierBackend,
    PlainBackend,
)
from repro.he.bfv import BfvScheme
from repro.he.params import toy_params
from repro.hw.perf import ChamPerfModel, CpuCostModel, PaillierCostModel


def main() -> None:
    print("HeteroLR: two-party logistic regression with HE gradients")
    print("=" * 64)
    data = make_vertical_dataset(n_samples=192, n_features=16, seed=3)
    print(f"dataset: {data.n_samples} samples, {data.n_features} features "
          f"({data.features_a.shape[1]} at party A, "
          f"{data.features_b.shape[1]} at party B)")
    cfg = LrConfig(epochs=4, batch_size=64, learning_rate=0.3)

    runs = {}
    for name, backend in [
        ("plain", PlainBackend()),
        ("paillier", PaillierBackend(key_bits=256, seed=4)),
        (
            "bfv",
            BfvBackend(BfvScheme(toy_params(n=64, plain_bits=40), seed=5, max_pack=64)),
        ),
    ]:
        t0 = time.time()
        weights, hist = HeteroLrTrainer(backend, cfg).train(data)
        runs[name] = weights
        print(
            f"{name:9s}: accuracy/epoch {[f'{a:.3f}' for a in hist.accuracies]} "
            f"final loss {hist.losses[-1]:.4f}  ({time.time() - t0:.1f}s)"
        )

    drift_p = float(np.max(np.abs(runs["plain"] - runs["paillier"])))
    drift_b = float(np.max(np.abs(runs["plain"] - runs["bfv"])))
    print(f"\nweight drift vs cleartext: paillier {drift_p:.2e}, bfv {drift_b:.2e}")
    assert drift_p < 1e-2 and drift_b < 1e-2

    # projection onto the paper's testbed (Fig. 7a/b scale)
    print("\nprojected full-batch iteration at production scale:")
    cham, cpu, pail = ChamPerfModel(), CpuCostModel(), PaillierCostModel()
    for samples, features in [(2048, 256), (8192, 4096), (8192, 8192)]:
        t_pail = (
            pail.encrypt_vec_s(samples)
            + pail.matvec_s(features, samples)
            + pail.decrypt_vec_s(features)
        )
        t_cpu = cpu.hmvp_s(features, samples)
        t_cham = cham.hmvp_s(features, samples)
        print(
            f"  {samples:5d}x{features:<5d}: paillier {t_pail:8.1f}s | "
            f"bfv-cpu {t_cpu:6.1f}s | bfv-cham {t_cham * 1e3:7.1f}ms | "
            f"matvec speedup {pail.matvec_s(features, samples) / t_cham:7.0f}x"
        )
    print("OK")


if __name__ == "__main__":
    main()
