"""Extension bench — cross-layer consistency sweep.

Prints the agreement matrix between the functional, driver and temporal
views of the same HMVP jobs (see `repro.hw.validation`): the regression
artifact that keeps the three layers from drifting apart.
"""

import pytest
from conftest import print_table

from repro.hw.validation import sweep, validate_consistency


def test_consistency_sweep_table():
    reports = sweep()
    rows = []
    for r in reports:
        rows.append(
            (
                f"{r.rows}x{r.col_tiles}t",
                r.dot_products,
                r.reductions,
                r.aggregations,
                f"{r.cycles:,}",
                "OK" if r.consistent else "; ".join(r.mismatches),
            )
        )
    print_table(
        "Cross-layer consistency (ISA = pipeline = tree)",
        ["job", "dots", "reductions", "aggs", "cycles", "status"],
        rows,
    )
    assert all(r.consistent for r in reports)


def test_functional_layer_in_the_loop(bench_scheme, rng):
    from repro.core.hmvp import hmvp

    a = rng.integers(-10, 10, (16, 128))
    v = rng.integers(-10, 10, 128)
    result = hmvp(bench_scheme, a, bench_scheme.encrypt_vector(v))
    report = validate_consistency(16, 1, functional_ops=result.ops)
    assert report.consistent, report.mismatches


@pytest.mark.benchmark(group="validation")
def test_perf_validation_sweep(benchmark):
    benchmark(sweep)
