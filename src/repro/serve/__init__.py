"""Async fault-tolerant serving layer over the batched HMVP engines.

See :mod:`repro.serve.server` for the full design; the short version:

* requests enter through :meth:`HmvpServer.submit` into a bounded queue
  (shed-on-full), carry per-request deadlines, and are micro-batched
  adaptively (``max_batch`` / ``max_wait_ms``);
* batches fan out across multiple engine workers (the paper's
  two-engine configuration and beyond), each with its own
  fault-injectable RAS runtime;
* faulted offloads retry with exponential backoff, then degrade to the
  CPU path — an admitted request always reaches a terminal
  :class:`ServeOutcome`, never a silent drop.
"""

from .server import (
    EngineWorker,
    HmvpServer,
    RequestStatus,
    ServeConfig,
    ServeOutcome,
    ServeReport,
    serve_requests,
)

__all__ = [
    "EngineWorker",
    "HmvpServer",
    "RequestStatus",
    "ServeConfig",
    "ServeOutcome",
    "ServeReport",
    "serve_requests",
]
