"""Tests for the two-party protocol harness."""

import numpy as np
import pytest

from repro.apps.protocol import Channel, Party, wire_size
from repro.he.serialization import rlwe_wire_bytes


@pytest.fixture()
def linked():
    ch = Channel("test")
    return Party("alice", ch), Party("bob", ch), ch


def test_send_recv(linked):
    alice, bob, _ch = linked
    alice.send(bob, "hello", b"1234")
    assert bob.recv("hello") == b"1234"


def test_recv_empty_raises(linked):
    alice, _bob, _ch = linked
    with pytest.raises(RuntimeError, match="no pending"):
        alice.recv()


def test_recv_label_mismatch(linked):
    alice, bob, _ch = linked
    alice.send(bob, "a", b"x")
    with pytest.raises(RuntimeError, match="expected"):
        bob.recv("b")


def test_fifo_order(linked):
    alice, bob, _ch = linked
    alice.send(bob, "m1", b"1")
    alice.send(bob, "m2", b"22")
    assert bob.recv() == b"1"
    assert bob.recv() == b"22"


def test_byte_accounting(linked):
    alice, bob, ch = linked
    alice.send(bob, "x", b"12345")
    bob.send(alice, "y", b"123")
    assert ch.total_bytes == 8
    assert ch.bytes_by_label() == {"x": 5, "y": 3}
    assert ch.bytes_by_direction() == {("alice", "bob"): 5, ("bob", "alice"): 3}


def test_round_counting(linked):
    alice, bob, ch = linked
    assert ch.rounds == 0
    alice.send(bob, "1", b"")
    alice.send(bob, "2", b"")  # same direction: same round
    assert ch.rounds == 1
    bob.send(alice, "3", b"")
    assert ch.rounds == 2
    alice.send(bob, "4", b"")
    assert ch.rounds == 3


def test_wire_size_rlwe(scheme128, rng):
    ct = scheme128.encrypt_vector(rng.integers(-5, 5, 128), augmented=False)
    assert wire_size(ct) == rlwe_wire_bytes(128, ct.basis.moduli)


def test_wire_size_arrays():
    assert wire_size(np.zeros(10, dtype=np.int64)) == 80
    assert wire_size(np.zeros(10, dtype=object)) == 50  # 5 B/field element
    assert wire_size([b"ab", b"c"]) == 3
    assert wire_size(7) == 8


def test_wire_size_unknown_type():
    with pytest.raises(TypeError):
        wire_size(object())
