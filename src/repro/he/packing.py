"""PACKTWOLWES / PACKLWES — Algorithms 2 and 3 of the paper.

``pack_lwes`` folds ``m`` LWE ciphertexts (each holding a dot-product
result in its constant coefficient, Eq. 3 form) into a *single* RLWE
ciphertext whose plaintext carries value ``i`` at coefficient
``i * N / 2**ceil(log2 m)``.

The merge at level ``k`` (combining two packs of ``2**(k-1)`` into one of
``2**k``) is Algorithm 2:

1. ``ct_mono = ct_odd * X^(N / 2**k)``             (MULTMONO)
2. ``ct_plus = ct_even + ct_mono``                 (MODADD)
3. ``ct_minus = ct_even - ct_mono``                (MODSUB)
4. ``ct_auto = automorph(ct_minus, g = 2**k + 1)`` (AUTOMORPH)
5. ``return ct_plus + keyswitch(ct_auto)``         (KEYSWITCH)

Correctness: the Galois element ``g = 2**k + 1`` maps slot position
``j * N / 2**k`` to itself with sign ``(-1)^j``, so the sum keeps the even
slots from ``ct_plus`` and the odd slots from ``ct_mono`` — doubling every
slot.  A full pack therefore scales the packed messages by
``2**ceil(log2 m)``; the factor is removed *after decryption*, mod the odd
plaintext modulus ``t`` (see ``CoefficientEncoder.decode_packed``), at the
cost of ``ceil(log2 m)`` bits of noise budget.

Packing 4096 rows issues exactly 4095 PACKTWOLWES reductions — the binary
tree the paper's reduce buffer walks (Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .. import obs
from ..math.modular import modadd_vec, modneg_vec, modsub_vec
from ..math.polynomial import automorph, shiftneg
from ..math.rns import RnsBasis
from .automorphism import apply_automorphism
from .context import CheContext
from .keys import GaloisKeyset
from .keyswitch import key_switch_raw
from .lwe import LweCiphertext, lwe_to_rlwe
from .rlwe import RlweCiphertext

__all__ = [
    "PackedResult",
    "pack_two_lwes",
    "pack_lwes",
    "pack_lwes_batched",
    "pack_stacked_lwes",
    "pack_stacked_lwes_many",
    "pack_reduction_count",
]


@dataclass
class PackedResult:
    """A packed RLWE ciphertext plus its bookkeeping.

    Attributes
    ----------
    ct:
        The packed ciphertext (normal basis).
    count:
        Number of source LWE ciphertexts (before zero-padding).
    scale_pow2:
        The pack multiplied every message by ``2**scale_pow2``.
    reductions:
        Number of PACKTWOLWES invocations performed (paper: ``m - 1`` for
        a power-of-two ``m``).
    """

    ct: RlweCiphertext
    count: int
    scale_pow2: int
    reductions: int

    @property
    def slot_stride(self) -> int:
        return self.ct.ctx.n >> self.scale_pow2


def pack_two_lwes(
    level: int,
    ct_even: RlweCiphertext,
    ct_odd: RlweCiphertext,
    galois_keys: GaloisKeyset,
) -> RlweCiphertext:
    """Algorithm 2: merge two level-``(k-1)`` packs into a level-``k`` pack."""
    n = ct_even.ctx.n
    stride = n >> level
    if stride < 1:
        raise ValueError(f"level {level} exceeds log2(n)={n.bit_length() - 1}")
    obs.inc("he.pack.reductions")
    g = (1 << level) + 1
    ct_mono = ct_odd.multiply_monomial(stride)
    ct_plus = ct_even + ct_mono
    ct_minus = ct_even - ct_mono
    ct_auto = apply_automorphism(ct_minus, g, galois_keys)
    return ct_plus + ct_auto


def pack_lwes(
    lwes: Sequence[LweCiphertext],
    galois_keys: GaloisKeyset,
) -> PackedResult:
    """Algorithm 3: recursively pack ``m`` LWE ciphertexts into one RLWE.

    Inputs are zero-padded to the next power of two with transparent
    zero ciphertexts, which is exact (zero message, zero noise).
    """
    if not lwes:
        raise ValueError("nothing to pack")
    ctx = lwes[0].ctx
    rlwes: List[RlweCiphertext] = [lwe_to_rlwe(lwe) for lwe in lwes]
    count = len(rlwes)
    levels = max(count - 1, 0).bit_length()
    target = 1 << levels
    if target > ctx.n:
        raise ValueError(f"cannot pack {count} > ring degree {ctx.n}")
    basis = rlwes[0].basis
    while len(rlwes) < target:
        rlwes.append(RlweCiphertext.zero(ctx, basis))

    stats = {"reductions": 0}

    def recurse(items: List[RlweCiphertext]) -> RlweCiphertext:
        # Algorithm 3: split by index parity so slot order comes out natural
        if len(items) == 1:
            return items[0]
        level = len(items).bit_length() - 1
        ct_even = recurse(items[0::2])
        ct_odd = recurse(items[1::2])
        stats["reductions"] += 1
        return pack_two_lwes(level, ct_even, ct_odd, galois_keys)

    with obs.span("PACK", count=count, levels=levels):
        packed = recurse(rlwes)
    obs.inc("he.pack.calls")
    return PackedResult(
        ct=packed, count=count, scale_pow2=levels, reductions=stats["reductions"]
    )


def pack_lwes_batched(
    lwes: Sequence[LweCiphertext],
    galois_keys: GaloisKeyset,
) -> PackedResult:
    """Vectorized PACKLWES: bit-identical to :func:`pack_lwes`.

    The recursion of Algorithm 3 is a perfect binary tree; all merges at
    tree level ``k`` share the same Galois element ``g = 2**k + 1`` and
    monomial stride ``n >> k``, so each level collapses into one pass of
    stacked ``(L, pairs, n)`` NumPy kernels plus a single *batched*
    key-switch (the per-pair Python dispatch of the sequential path is
    what dominates the software pack).  Level order: iterating levels
    ``1..log2(m)`` with ``next[r] = merge(k, cur[r], cur[r + half])``
    reproduces the recursion's parity splits exactly, so the output
    ciphertext is byte-for-byte the one :func:`pack_lwes` produces.
    """
    if not lwes:
        raise ValueError("nothing to pack")
    for lwe in lwes:
        if lwe.basis.moduli != lwes[0].basis.moduli:
            raise ValueError("LWE basis mismatch")
    return pack_stacked_lwes(
        lwes[0].ctx,
        lwes[0].basis,
        np.stack([lwe.b for lwe in lwes], axis=1),
        np.stack([lwe.a for lwe in lwes], axis=1),
        galois_keys,
    )


def pack_stacked_lwes(
    ctx: CheContext,
    basis: RnsBasis,
    b: np.ndarray,
    a: np.ndarray,
    galois_keys: GaloisKeyset,
) -> PackedResult:
    """Batched pack over pre-stacked LWE components.

    ``b`` has shape ``(L, m)`` and ``a`` has shape ``(L, m, n)`` — the
    layout the vectorized extract produces, so the batched HMVP engine
    never materializes per-row :class:`LweCiphertext` objects.
    """
    nlimbs, count = b.shape
    if a.shape != (nlimbs, count, ctx.n) or nlimbs != len(basis):
        raise ValueError(f"stacked LWE shapes {b.shape} / {a.shape} mismatch")
    c0, c1, levels, target = _pack_tree(
        ctx, basis, b[:, np.newaxis], a[:, np.newaxis], galois_keys
    )
    obs.inc("he.pack.calls")
    packed = RlweCiphertext(
        ctx,
        basis,
        np.ascontiguousarray(c0[:, 0]),
        np.ascontiguousarray(c1[:, 0]),
    )
    return PackedResult(
        ct=packed, count=count, scale_pow2=levels, reductions=target - 1
    )


def pack_stacked_lwes_many(
    ctx: CheContext,
    basis: RnsBasis,
    b: np.ndarray,
    a: np.ndarray,
    galois_keys: GaloisKeyset,
) -> List[PackedResult]:
    """Pack ``R`` independent stacked-LWE batches in lock-step.

    ``b`` has shape ``(L, R, m)`` and ``a`` shape ``(L, R, m, n)`` — one
    pack of ``m`` LWEs per request.  All ``R`` pack trees share the same
    level schedule (same Galois element and monomial stride at each
    level), so every level issues *one* SHIFTNEG/AUTOMORPH pass and one
    batched key-switch over all requests at once, instead of ``R``
    separate pack pipelines.  Each returned pack is bit-identical to
    running :func:`pack_stacked_lwes` on that request alone.
    """
    if b.ndim != 3:
        raise ValueError(f"expected (L, R, m) stacked b, got shape {b.shape}")
    nlimbs, reqs, count = b.shape
    if a.shape != (nlimbs, reqs, count, ctx.n) or nlimbs != len(basis):
        raise ValueError(f"stacked LWE shapes {b.shape} / {a.shape} mismatch")
    c0, c1, levels, target = _pack_tree(ctx, basis, b, a, galois_keys)
    obs.inc("he.pack.calls", reqs)
    return [
        PackedResult(
            ct=RlweCiphertext(
                ctx,
                basis,
                np.ascontiguousarray(c0[:, r]),
                np.ascontiguousarray(c1[:, r]),
            ),
            count=count,
            scale_pow2=levels,
            reductions=target - 1,
        )
        for r in range(reqs)
    ]


def _pack_tree(
    ctx: CheContext,
    basis: RnsBasis,
    b: np.ndarray,
    a: np.ndarray,
    galois_keys: GaloisKeyset,
) -> "tuple[np.ndarray, np.ndarray, int, int]":
    """The shared PACKLWES tree over ``(L, R, m)`` / ``(L, R, m, n)`` stacks.

    Returns ``(c0, c1, levels, target)`` with the packed components
    shaped ``(L, R, n)``.
    """
    nlimbs, reqs, count = b.shape
    if count < 1 or reqs < 1:
        raise ValueError("nothing to pack")
    levels = max(count - 1, 0).bit_length()
    target = 1 << levels
    if target > ctx.n:
        raise ValueError(f"cannot pack {count} > ring degree {ctx.n}")
    n = ctx.n

    # Eq. 3 embedding for every request at once, zero-padded to the
    # next power of two (transparent zero ciphertexts, exact).
    q_col = basis.modulus_column.reshape(-1, 1, 1, 1)
    c0 = np.zeros((nlimbs, reqs, target, n), dtype=np.uint64)
    c1 = np.zeros((nlimbs, reqs, target, n), dtype=np.uint64)
    c0[:, :, :count, 0] = b
    c1[:, :, :count, 0] = a[..., 0]
    c1[:, :, :count, 1:] = modneg_vec(a[..., :0:-1], q_col)

    with obs.span(
        "PACK", count=count, levels=levels, requests=reqs, mode="batched"
    ):
        for k in range(1, levels + 1):
            half = c0.shape[2] // 2
            with obs.span("PACK.level", level=k, pairs=half, requests=reqs):
                stride = n >> k
                g = (1 << k) + 1
                obs.inc("he.pack.reductions", half * reqs)
                # whole-stack passes with the per-limb modulus column:
                # SHIFTNEG / AUTOMORPH broadcast over requests, pairs
                # and limbs; one batched key-switch covers every merge
                # at this level across all R pack trees
                e0, e1 = c0[:, :, :half], c1[:, :, :half]
                o0, o1 = c0[:, :, half:], c1[:, :, half:]
                mono0 = shiftneg(o0, stride, q_col)
                mono1 = shiftneg(o1, stride, q_col)
                plus0 = modadd_vec(e0, mono0, q_col)
                plus1 = modadd_vec(e1, mono1, q_col)
                auto0 = automorph(modsub_vec(e0, mono0, q_col), g, q_col)
                auto1 = automorph(modsub_vec(e1, mono1, q_col), g, q_col)
                d0, d1 = key_switch_raw(ctx, auto1, galois_keys[g])
                c0 = modadd_vec(plus0, modadd_vec(auto0, d0, q_col), q_col)
                c1 = modadd_vec(plus1, d1, q_col)
    return c0[:, :, 0], c1[:, :, 0], levels, target


def pack_reduction_count(m: int) -> int:
    """PACKTWOLWES invocations to pack ``m`` inputs (paper: 4095 for 4096)."""
    if m < 1:
        raise ValueError("m must be positive")
    levels = max(m - 1, 0).bit_length()
    return (1 << levels) - 1
