"""Private linear-layer inference (the paper's motivating workload).

The GAZELLE/Cheetah-style hybrid protocol evaluates *linear* layers under
HE (exactly what CHAM accelerates) and non-linear layers under garbled
circuits / secret sharing.  This module implements the HE half for a tiny
two-layer network — one convolution, one fully-connected read-out — over
the coefficient encodings of :mod:`repro.core`:

* the client encrypts its image (one ciphertext);
* the server runs the convolution homomorphically
  (:func:`repro.core.conv.homomorphic_conv2d`), returns the encrypted
  feature map, and the client applies the non-linearity in the clear
  (standing in for the MPC step);
* the re-encrypted activations flow through the FC layer as an HMVP.

Integer arithmetic end-to-end, so the homomorphic prediction matches the
cleartext model exactly — asserted in tests and the example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.conv import Conv2dEncoder, conv2d_reference, homomorphic_conv2d
from ..core.hmvp import TiledHmvp
from ..he.bfv import BfvScheme

__all__ = ["TinyModel", "PrivateInference"]


@dataclass
class TinyModel:
    """A two-layer integer model: 3x3 conv -> ReLU -> dense read-out."""

    kernel: np.ndarray  # (3, 3) int
    fc: np.ndarray  # (classes, feature_count) int

    @classmethod
    def random(
        cls, image_size: int, classes: int = 2, seed: Optional[int] = 0
    ) -> "TinyModel":
        rng = np.random.default_rng(seed)
        kernel = rng.integers(-4, 5, (3, 3))
        out = image_size - 2
        fc = rng.integers(-3, 4, (classes, out * out))
        return cls(kernel=kernel, fc=fc)

    def predict_clear(self, image: np.ndarray) -> np.ndarray:
        """Cleartext forward pass (the oracle)."""
        fm = conv2d_reference(image, self.kernel)
        act = np.maximum(fm, 0).reshape(-1)
        return self.fc.astype(object) @ act.astype(object)


class PrivateInference:
    """Client/server private inference over one :class:`BfvScheme`.

    The scheme's key belongs to the client; the server methods only take
    ciphertexts (plus its own model weights).
    """

    def __init__(self, scheme: BfvScheme, model: TinyModel, image_size: int) -> None:
        self.scheme = scheme
        self.model = model
        self.image_size = image_size
        self.conv_encoder = Conv2dEncoder(
            scheme, image_size, image_size, *model.kernel.shape
        )
        self.tiler = TiledHmvp(scheme)

    # -- client -------------------------------------------------------------------

    def client_encrypt_image(self, image: np.ndarray):
        return self.conv_encoder.encrypt_image(image)

    def client_decrypt_feature_map(self, ct) -> np.ndarray:
        pt = self.scheme.decrypt_plaintext(ct)
        return self.conv_encoder.decode_output(pt)

    def client_nonlinear(self, feature_map: np.ndarray) -> np.ndarray:
        """ReLU in the clear — the stand-in for the MPC non-linearity."""
        return np.maximum(feature_map, 0)

    def client_encrypt_activations(self, act: np.ndarray):
        return self.tiler.encrypt_vector(act.reshape(-1))

    def client_decrypt_logits(self, result) -> np.ndarray:
        return result.decrypt(self.scheme)

    # -- server -------------------------------------------------------------------

    def server_conv(self, ct_image):
        return homomorphic_conv2d(self.conv_encoder, ct_image, self.model.kernel)

    def server_fc(self, ct_act_tiles):
        return self.tiler.multiply(self.model.fc, ct_act_tiles)

    # -- end-to-end ----------------------------------------------------------------

    def run(self, image: np.ndarray) -> np.ndarray:
        """Full protocol round-trip; returns the logits."""
        ct_img = self.client_encrypt_image(image)
        ct_fm = self.server_conv(ct_img)
        fm = self.client_decrypt_feature_map(ct_fm)
        act = self.client_nonlinear(fm)
        ct_act = self.client_encrypt_activations(act)
        result = self.server_fc(ct_act)
        return self.client_decrypt_logits(result)
