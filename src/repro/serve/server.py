"""Async fault-tolerant HMVP serving front-end.

The production deployment the paper targets (Section V) is a host
process fielding a stream of encrypted-vector requests against one
resident plaintext matrix, with the CPU+FPGA pipeline overlapping
transfer and compute across **two** engines.  This module is that
front-end for the reproduction:

* :class:`HmvpServer` — an asyncio server that admits requests into a
  bounded queue (shed-on-full: ``serve.rejected``), micro-batches them
  adaptively (drain on ``max_batch`` or ``max_wait_ms``), and dispatches
  batches across ``engines`` independent workers, each owning a
  :class:`~repro.core.batch.BatchedHmvp` engine (one shared
  encoded-matrix cache: the matrix is encoded once process-wide) and a
  fault-injectable :class:`~repro.hw.runtime.FpgaRuntime`;
* fault tolerance — a job whose simulated offload hits
  :class:`~repro.hw.runtime.DeviceHangError` /
  :class:`~repro.hw.runtime.RegisterLoadError` is retried with
  exponential backoff up to ``max_retries``, then **degraded** to the
  CPU path (same exact arithmetic, priced by
  :class:`~repro.hw.perf.CpuCostModel`) so no admitted request is ever
  silently dropped;
* deadlines — each request carries one; requests that expire while
  queued complete with :attr:`RequestStatus.DEADLINE` instead of
  consuming compute.

Every terminal state is an explicit :class:`ServeOutcome`; the invariant
the test-suite pins is *zero dropped*: ``submitted == ok + degraded +
rejected + deadline``.

:func:`serve_requests` is the synchronous convenience wrapper the CLI
(``python -m repro serve``), the benchmarks and most tests use.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from ..core.batch import BatchedHmvp, EncodedMatrixCache
from ..he.bfv import BfvScheme
from ..he.rlwe import RlweCiphertext
from ..hw.arch import ChamConfig, cham_default_config
from ..hw.perf import CpuCostModel
from ..hw.runtime import (
    DeviceHangError,
    FaultInjector,
    FpgaRuntime,
    HealthReport,
    JobState,
    RegisterLoadError,
)

__all__ = [
    "ServeConfig",
    "RequestStatus",
    "ServeOutcome",
    "ServeReport",
    "EngineWorker",
    "HmvpServer",
    "serve_requests",
]


@dataclass
class ServeConfig:
    """Serving-layer policy knobs (defaults model the paper's deployment)."""

    #: number of engine workers (CHAM ships 2; more models scaled parts)
    engines: int = 2
    #: micro-batch drain threshold: dispatch once this many are pending
    max_batch: int = 8
    #: ... or once the oldest pending request has waited this long
    max_wait_ms: float = 5.0
    #: admission bound; submissions beyond this are shed (never dropped
    #: silently: they resolve immediately as ``REJECTED``)
    queue_capacity: int = 256
    #: default per-request deadline (generous: serving must not time out
    #: under nominal load)
    deadline_ms: float = 60_000.0
    #: accelerator attempts = max_retries + 1, then degrade to CPU
    max_retries: int = 2
    backoff_base_ms: float = 1.0
    backoff_cap_ms: float = 20.0
    #: device hang probability per job execution (FaultInjector.hang_prob)
    fault_rate: float = 0.0
    #: register-load bit-flip probability (FaultInjector.register_flip_prob)
    register_flip_rate: float = 0.0
    #: resets one watchdog episode needs before a hung device recovers
    resets_to_recover: int = 1
    seed: int = 0
    #: NumPy worker-pool width inside each engine's multiply_batch
    workers_per_engine: int = 1


class RequestStatus(Enum):
    OK = "ok"  #: served on the accelerator path
    DEGRADED = "degraded"  #: accelerator gave up; served on the CPU path
    REJECTED = "rejected"  #: shed at admission (queue full)
    DEADLINE = "deadline"  #: expired while queued; not computed


@dataclass
class ServeOutcome:
    """Terminal record of one request (every request gets exactly one)."""

    request_id: int
    status: RequestStatus
    #: engine worker that served it; ``None`` for rejected/deadline,
    #: the worker that degraded it for CPU-path completions
    engine: Optional[int] = None
    retries: int = 0
    queue_ms: float = 0.0
    execute_ms: float = 0.0
    total_ms: float = 0.0
    #: simulated cost: device cycles (OK) or CPU-model cycles (DEGRADED)
    cycles: int = 0
    result: Optional[object] = None  #: HmvpResult for OK/DEGRADED

    @property
    def completed(self) -> bool:
        return self.status in (RequestStatus.OK, RequestStatus.DEGRADED)


@dataclass
class _Pending:
    """A request in flight between admission and its terminal outcome."""

    request_id: int
    ct: RlweCiphertext
    deadline_t: float  #: event-loop time after which it expires
    enqueue_t: float
    future: "asyncio.Future[ServeOutcome]"
    #: trace root minted at admission; every span this request produces
    #: (batch compute, offload attempts, degrade) joins this trace
    ctx: Optional[obs.TraceContext] = None


class EngineWorker:
    """One serving engine: a batched HMVP kernel plus its RAS runtime."""

    def __init__(
        self,
        engine_id: int,
        engine: BatchedHmvp,
        runtime: FpgaRuntime,
    ) -> None:
        self.engine_id = engine_id
        self.engine = engine
        self.runtime = runtime
        self.requests_served = 0
        self.batches_served = 0

    def health(self) -> HealthReport:
        return self.runtime.health()


@dataclass
class ServeReport:
    """Everything one serving run produced, percentiles included."""

    outcomes: List[ServeOutcome]
    wall_s: float
    engine_health: List[HealthReport]
    per_engine_busy_cycles: List[int]
    clock_hz: float
    config: ServeConfig

    def _count(self, status: RequestStatus) -> int:
        return sum(1 for o in self.outcomes if o.status is status)

    @property
    def submitted(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> int:
        return self._count(RequestStatus.OK)

    @property
    def degraded(self) -> int:
        return self._count(RequestStatus.DEGRADED)

    @property
    def rejected(self) -> int:
        return self._count(RequestStatus.REJECTED)

    @property
    def deadline_expired(self) -> int:
        return self._count(RequestStatus.DEADLINE)

    @property
    def completed(self) -> int:
        return self.ok + self.degraded

    @property
    def dropped(self) -> int:
        """Requests with no terminal outcome — the invariant is zero."""
        return self.submitted - (
            self.ok + self.degraded + self.rejected + self.deadline_expired
        )

    @property
    def retries(self) -> int:
        return sum(o.retries for o in self.outcomes)

    def latency_ms(self, p: float) -> float:
        """Nearest-rank percentile of completed-request total latency.

        With zero completed requests there is no population to take a
        percentile of: the result is ``nan``, not a fake ``0.0`` that
        would read as "instant" on a dashboard (and silently pass any
        ``latency < threshold`` alert).
        """
        lats = sorted(o.total_ms for o in self.outcomes if o.completed)
        if not lats:
            return float("nan")
        rank = max(1, -(-int(p * len(lats)) // 100))
        return lats[min(rank, len(lats)) - 1]

    @property
    def goodput_rps(self) -> float:
        """Completed requests per wall-clock second."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def makespan_cycles(self) -> int:
        """Simulated makespan: the busiest engine's device cycles."""
        return max(self.per_engine_busy_cycles, default=0)

    @property
    def goodput_sim_rps(self) -> float:
        """Completed requests per *simulated* second (device clock).

        The deterministic multi-engine figure: distributing the same
        job set across K engines divides the makespan, independent of
        host-side GIL effects.
        """
        if self.makespan_cycles == 0:
            return 0.0
        return self.completed / (self.makespan_cycles / self.clock_hz)

    def to_dict(self) -> Dict[str, object]:
        return {
            "submitted": self.submitted,
            "ok": self.ok,
            "degraded": self.degraded,
            "rejected": self.rejected,
            "deadline": self.deadline_expired,
            "completed": self.completed,
            "dropped": self.dropped,
            "retries": self.retries,
            "engines": len(self.per_engine_busy_cycles),
            "wall_s": self.wall_s,
            "goodput_rps": self.goodput_rps,
            # None (JSON null) when nothing completed: nan is not valid
            # JSON and 0.0 is a lie
            "latency_ms": {
                "p50": self.latency_ms(50) if self.completed else None,
                "p95": self.latency_ms(95) if self.completed else None,
                "p99": self.latency_ms(99) if self.completed else None,
            },
            "sim": {
                "per_engine_busy_cycles": self.per_engine_busy_cycles,
                "makespan_cycles": self.makespan_cycles,
                "goodput_rps": self.goodput_sim_rps,
            },
            "health": [
                {
                    "jobs_completed": h.jobs_completed,
                    "jobs_failed": h.jobs_failed,
                    "job_retries": h.job_retries,
                    "hangs_detected": h.hangs_detected,
                    "resets": h.resets,
                    "register_retries": h.register_retries,
                }
                for h in self.engine_health
            ],
        }


class HmvpServer:
    """Asyncio serving front-end over multiple batched HMVP engines.

    Lifecycle: construct, ``await start()``, ``await submit(ct)`` any
    number of times (each returns a future resolving to the request's
    :class:`ServeOutcome`), ``await close()``.  ``close`` drains the
    queue before stopping workers, so every admitted request reaches a
    terminal state.
    """

    _REGISTER_BASE = 0x1000  #: job-descriptor register file base address

    def __init__(
        self,
        scheme: BfvScheme,
        matrix: Sequence[Sequence[int]],
        config: Optional[ServeConfig] = None,
        cham: Optional[ChamConfig] = None,
        cache: Optional[EncodedMatrixCache] = None,
        fault_injectors: Optional[Sequence[FaultInjector]] = None,
    ) -> None:
        self.config = config or ServeConfig()
        if self.config.engines < 1:
            raise ValueError("need at least one engine")
        if fault_injectors is not None and len(fault_injectors) != self.config.engines:
            raise ValueError("one fault injector per engine")
        self.cham = cham or cham_default_config()
        self.scheme = scheme
        matrix = np.asarray(matrix)
        # one shared cache: the first engine encodes, the rest hit
        shared_cache = cache if cache is not None else EncodedMatrixCache()
        self.workers: List[EngineWorker] = []
        for engine_id in range(self.config.engines):
            engine = BatchedHmvp(
                scheme,
                matrix,
                cache=shared_cache,
                workers=self.config.workers_per_engine,
            )
            if fault_injectors is not None:
                faults = fault_injectors[engine_id]
            else:
                faults = FaultInjector(
                    hang_prob=self.config.fault_rate,
                    register_flip_prob=self.config.register_flip_rate,
                    resets_to_recover=self.config.resets_to_recover,
                    seed=self.config.seed + engine_id,
                )
            # max_job_retries=0: a hang surfaces as one FAILED attempt so
            # retry policy (backoff, budget, degrade) lives up here where
            # it is observable, not inside the driver's blind loop
            runtime = FpgaRuntime(
                cfg=self.cham,
                faults=faults,
                max_job_retries=0,
                lane=engine_id + 1,
            )
            self.workers.append(EngineWorker(engine_id, engine, runtime))
        if self.workers[0].engine.encoded.col_tiles != 1:
            raise ValueError(
                "serving covers single-column-tile matrices "
                "(cols <= ring degree); shard wider matrices upstream"
            )
        self.cache = shared_cache
        self.rows = int(matrix.shape[0])
        self.cols = int(matrix.shape[1])
        self._cpu_model = CpuCostModel()
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue(
            maxsize=self.config.queue_capacity
        )
        self._next_request = 0
        self._tasks: List["asyncio.Task[None]"] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn one dispatch loop per engine worker."""
        if self._tasks:
            raise RuntimeError("server already started")
        if obs.TRACER.enabled:
            obs.TRACER.name_process(0, "serve.coordinator")
            for worker in self.workers:
                obs.TRACER.name_process(
                    worker.engine_id + 1, f"engine{worker.engine_id}"
                )
        self._closing = False
        self._pool = ThreadPoolExecutor(
            max_workers=len(self.workers),
            thread_name_prefix="serve-engine",
        )
        for worker in self.workers:
            self._tasks.append(
                asyncio.create_task(self._worker_loop(worker))
            )

    async def close(self) -> None:
        """Drain remaining work, then stop the workers."""
        self._closing = True
        await self._queue.join()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- admission ---------------------------------------------------------

    async def submit(
        self,
        ct: RlweCiphertext,
        deadline_ms: Optional[float] = None,
    ) -> "asyncio.Future[ServeOutcome]":
        """Admit one encrypted vector; resolves to its terminal outcome.

        Shed-on-full: when the queue is at capacity the returned future
        is already resolved with ``REJECTED`` — backpressure is an
        explicit outcome, not an exception and not a silent drop.
        """
        if not ct.is_augmented:
            raise ValueError("vector ciphertext must be augmented")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ServeOutcome]" = loop.create_future()
        request_id = self._next_request
        self._next_request += 1
        now = loop.time()
        budget_ms = (
            deadline_ms if deadline_ms is not None else self.config.deadline_ms
        )
        pending = _Pending(
            request_id=request_id,
            ct=ct,
            deadline_t=now + budget_ms / 1000.0,
            enqueue_t=now,
            future=future,
            ctx=obs.TRACER.new_trace() if obs.TRACER.enabled else None,
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            obs.inc("serve.rejected")
            future.set_result(
                ServeOutcome(
                    request_id=request_id, status=RequestStatus.REJECTED
                )
            )
            return future
        obs.inc("serve.accepted")
        obs.set_gauge("serve.queue.depth", self._queue.qsize())
        return future

    # -- dispatch ----------------------------------------------------------

    async def _worker_loop(self, worker: EngineWorker) -> None:
        """Pull micro-batches off the shared queue and serve them.

        Adaptive micro-batching: the first request opens a window; the
        batch dispatches when it reaches ``max_batch`` or the window
        has been open ``max_wait_ms``, whichever first.  Workers pull
        work as they free up, so load balances across engines without a
        central placement step.
        """
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            window_end = loop.time() + self.config.max_wait_ms / 1000.0
            while len(batch) < self.config.max_batch:
                timeout = window_end - loop.time()
                if timeout <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), timeout)
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    break
            obs.set_gauge("serve.queue.depth", self._queue.qsize())
            obs.observe("serve.batch.size", len(batch))
            try:
                await self._execute_batch(worker, batch)
            finally:
                for _ in batch:
                    self._queue.task_done()

    async def _execute_batch(
        self, worker: EngineWorker, batch: List[_Pending]
    ) -> None:
        loop = asyncio.get_running_loop()
        start_t = loop.time()
        live: List[_Pending] = []
        for pending in batch:
            if start_t > pending.deadline_t:
                obs.inc("serve.deadline")
                self._resolve(
                    pending,
                    ServeOutcome(
                        request_id=pending.request_id,
                        status=RequestStatus.DEADLINE,
                        queue_ms=1e3 * (start_t - pending.enqueue_t),
                        total_ms=1e3 * (start_t - pending.enqueue_t),
                    ),
                )
            else:
                live.append(pending)
        if not live:
            return
        with obs.span(
            "serve.batch",
            engine=worker.engine_id,
            size=len(live),
            rids=[p.request_id for p in live],
        ) as batch_span:
            # exact functional results, off the event loop (the NumPy
            # kernels release the GIL, so engine workers overlap); the
            # batch's trace context is bridged across the executor hop
            # so the kernel spans land under serve.batch
            results = await loop.run_in_executor(
                self._pool,
                obs.run_with_context,
                obs.current_context(),
                worker.engine.multiply_batch,
                [p.ct for p in live],
            )
            exec_done_t = loop.time()
            # simulated accelerator offload per request: this decides
            # whether the request was served by the FPGA or degraded,
            # and what it cost on the device clock
            for pending, result in zip(live, results):
                outcome = await self._offload(
                    worker, pending, batch_span.span_id
                )
                outcome.result = result
                outcome.queue_ms = 1e3 * (start_t - pending.enqueue_t)
                outcome.execute_ms = 1e3 * (exec_done_t - start_t)
                outcome.total_ms = 1e3 * (loop.time() - pending.enqueue_t)
                self._resolve(pending, outcome)
        worker.batches_served += 1
        worker.requests_served += len(live)

    async def _offload(
        self, worker: EngineWorker, pending: _Pending, batch_span_id: str = ""
    ) -> ServeOutcome:
        """Drive one request's job through the RAS runtime with retries.

        The span opens under the request's own trace root (minted at
        admission) and links back to the ``serve.batch`` span that
        computed its ciphertext, so the exported trace connects the
        shared batch work to each per-request offload tree.
        """
        cfg = self.config
        runtime = worker.runtime
        retries = 0
        with obs.span(
            "serve.request",
            ctx=pending.ctx,
            links=(batch_span_id,) if batch_span_id else None,
            rid=pending.request_id,
            engine=worker.engine_id,
        ) as request_span:
            while True:
                try:
                    # register-load fault class: the job descriptor write
                    runtime.load_register_checked(
                        self._REGISTER_BASE + (pending.request_id % 256),
                        (self.rows << 16) | (pending.request_id & 0xFFFF),
                    )
                    job_id = runtime.submit(rows=self.rows, col_tiles=1)
                    state = await runtime.poll_async(job_id)
                    if state is JobState.DONE:
                        obs.inc("serve.completed")
                        request_span.set(status="ok", retries=retries)
                        return ServeOutcome(
                            request_id=pending.request_id,
                            status=RequestStatus.OK,
                            engine=worker.engine_id,
                            retries=retries,
                            cycles=runtime.jobs[job_id].cycles,
                        )
                    # FAILED: fall through to the retry/degrade policy
                except (DeviceHangError, RegisterLoadError):
                    pass
                if retries >= cfg.max_retries:
                    break
                retries += 1
                obs.inc("serve.retries")
                backoff_ms = min(
                    cfg.backoff_cap_ms,
                    cfg.backoff_base_ms * (2 ** (retries - 1)),
                )
                await asyncio.sleep(backoff_ms / 1000.0)
            # accelerator budget exhausted: degrade to the CPU path (the
            # functional result is already exact; this prices it)
            obs.inc("serve.degraded")
            request_span.set(status="degraded", retries=retries)
            cpu_s = self._cpu_model.hmvp_s(
                self.rows, self.cols, ring_n=self.scheme.params.n
            )
            return ServeOutcome(
                request_id=pending.request_id,
                status=RequestStatus.DEGRADED,
                engine=worker.engine_id,
                retries=retries,
                cycles=int(cpu_s * self.cham.clock_hz),
            )

    @staticmethod
    def _resolve(pending: _Pending, outcome: ServeOutcome) -> None:
        obs.observe("serve.latency.queue_ms", outcome.queue_ms)
        obs.observe("serve.latency.execute_ms", outcome.execute_ms)
        obs.observe("serve.latency.total_ms", outcome.total_ms)
        if not pending.future.done():
            pending.future.set_result(outcome)

    # -- reporting ---------------------------------------------------------

    def report(
        self, outcomes: List[ServeOutcome], wall_s: float
    ) -> ServeReport:
        return ServeReport(
            outcomes=outcomes,
            wall_s=wall_s,
            engine_health=[w.health() for w in self.workers],
            per_engine_busy_cycles=[
                w.runtime.busy_cycles for w in self.workers
            ],
            clock_hz=self.cham.clock_hz,
            config=self.config,
        )


def serve_requests(
    scheme: BfvScheme,
    matrix: Sequence[Sequence[int]],
    cts: Sequence[RlweCiphertext],
    config: Optional[ServeConfig] = None,
    deadlines_ms: Optional[Sequence[Optional[float]]] = None,
) -> ServeReport:
    """Serve a fixed request list end to end and report.

    The synchronous entry point (CLI load generator, benchmarks,
    tests): starts a server, submits every ciphertext, awaits every
    outcome, closes the server, returns the :class:`ServeReport`.
    """
    if deadlines_ms is not None and len(deadlines_ms) != len(cts):
        raise ValueError("one deadline per request (or None)")

    async def _run() -> ServeReport:
        server = HmvpServer(scheme, matrix, config)
        await server.start()
        start = time.perf_counter()
        futures = []
        for i, ct in enumerate(cts):
            deadline = deadlines_ms[i] if deadlines_ms is not None else None
            futures.append(await server.submit(ct, deadline_ms=deadline))
        outcomes = list(await asyncio.gather(*futures))
        wall_s = time.perf_counter() - start
        await server.close()
        return server.report(outcomes, wall_s)

    return asyncio.run(_run())
