"""Elastic membership property suite (ISSUE 8): bit-identity under churn.

The elastic cluster's headline claim: for **any** valid membership
schedule — joins, graceful leaves, kills, including "all but one node
dies" and "a node rejoins with a cold cache" — every request's output is
bit-identical per RNS limb (sha256) to :class:`~repro.core.batch.BatchedHmvp`
on one node, no request is ever dropped, and scale events never trigger
a matrix re-encode when the encoded entry still lives on any surviving
node's cache (entries *migrate*; the ``EncodedMatrix.encode`` kernel is
instrumented here to prove it is simply never called).

The claim is structural: the :class:`PartitionPlan` shard grid is fixed
for the executor's lifetime, so membership changes only move *where*
shards run — the merge algebra never changes.  These tests fuzz the
"where" as hard as hypothesis can and pin the "what" to the single-node
oracle, bit for bit.
"""

import hashlib
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    ClusterConfig,
    ClusterExecutor,
    MembershipError,
    MembershipEvent,
    MembershipSchedule,
    PartitionPlanner,
    ShardPlacement,
)
from repro.core import batch as batch_mod
from repro.core.batch import BatchedHmvp, EncodedMatrixCache

ROWS, COLS, RING = 10, 256, 128
ROW_CUTS = (0, 6, 10)
COL_CUTS = (0, 128, 256)
REQUESTS = 4
INITIAL_NODES = 3


def _limb_digests(result):
    """Per-limb SHA-256 of every output pack's (c0, c1) arrays."""
    digests = []
    for pack in result.packs:
        for component in (pack.ct.c0, pack.ct.c1):
            arr = np.asarray(component)
            for limb in range(arr.shape[0]):
                digests.append(
                    hashlib.sha256(
                        np.ascontiguousarray(arr[limb]).tobytes()
                    ).hexdigest()
                )
    return digests


@pytest.fixture(scope="module")
def workload(scheme128):
    """Fixed matrix + pre-encrypted requests + single-node oracle digests.

    The requests are encrypted **once**; every schedule below replays the
    same ciphertexts, so the cluster output must match the oracle's down
    to the last limb bit regardless of what membership does in between.
    """
    rng = np.random.default_rng(0xE1A5)
    matrix = rng.integers(-80, 80, (ROWS, COLS))
    vectors = [rng.integers(-80, 80, COLS) for _ in range(REQUESTS)]
    plan = PartitionPlanner(RING).plan_from_cuts(
        ROWS, COLS, ROW_CUTS, COL_CUTS
    )
    ring = scheme128.params.n
    cts = [
        [
            scheme128.encrypt_vector(np.asarray(v)[s : s + ring])
            for s in range(0, COLS, ring)
        ]
        for v in vectors
    ]
    oracle = BatchedHmvp(scheme128, matrix, cache=EncodedMatrixCache())
    reference = [_limb_digests(oracle.multiply_tiles(ct)) for ct in cts]
    return matrix, plan, cts, reference


@contextmanager
def _count_encodes():
    """Count every real ``EncodedMatrix.encode`` call while active."""
    calls = []
    original = batch_mod.EncodedMatrix.encode.__func__

    def counting(cls, scheme, matrix, tile_rows=None):
        calls.append(np.asarray(matrix).shape)
        return original(cls, scheme, matrix, tile_rows)

    batch_mod.EncodedMatrix.encode = classmethod(counting)
    try:
        yield calls
    finally:
        batch_mod.EncodedMatrix.encode = classmethod(original)


def _run(workload, schedule, replication=2, initial=INITIAL_NODES):
    """Build an executor, replay the fixed requests under ``schedule``.

    Returns ``(digests per request, report, encode calls made after the
    initial staging)`` — the encode count is the no-re-encode proof.
    """
    matrix, plan, cts, _ = workload
    executor = ClusterExecutor(
        _run.scheme,
        matrix,
        config=ClusterConfig(
            nodes=initial,
            replication=min(replication, initial),
            seed=0,
        ),
        plan=plan,
        schedule=schedule,
    )
    with _count_encodes() as calls:
        results = executor.execute_batch(cts)
    return [_limb_digests(r) for r in results], executor.report(), calls


@pytest.fixture(scope="module", autouse=True)
def _bind_scheme(scheme128):
    _run.scheme = scheme128
    yield


@st.composite
def schedules(draw):
    """Valid random schedules over the fixed request window.

    Mirrors the controller's validity rules during generation: events
    fire in seq order, leaves/kills only target then-active nodes, and
    the pool never empties.  Node ids are explicit so an example prints
    exactly what it did.
    """
    active = set(range(INITIAL_NODES))
    departed = []
    next_id = INITIAL_NODES
    events = []
    seq = 0
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        seq = draw(st.integers(min_value=seq, max_value=REQUESTS - 1))
        kinds = []
        if len(active) < 6:
            kinds.append("join")
        if len(active) > 1:
            kinds.extend(["leave", "kill"])
        kind = draw(st.sampled_from(kinds))
        if kind == "join":
            rejoin = departed and draw(st.booleans())
            if rejoin:
                node = draw(st.sampled_from(sorted(departed)))
                departed.remove(node)
            else:
                node, next_id = next_id, next_id + 1
            active.add(node)
        else:
            node = draw(st.sampled_from(sorted(active)))
            active.remove(node)
            departed.append(node)
        events.append(MembershipEvent(seq=seq, kind=kind, node_id=node))
    return MembershipSchedule(events)


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=schedules())
def test_bit_identity_under_any_schedule(workload, schedule):
    """THE elastic property: any join/leave/kill schedule, replication 2,
    yields per-limb bit-identical outputs, zero dropped requests, and —
    because single events always leave a surviving replica — **zero**
    re-encodes: every post-build ``EncodedMatrix.encode`` call is
    accounted for by the controller's ``reencodes`` counter, and that
    counter stays 0."""
    _matrix, _plan, _cts, reference = workload
    digests, report, encode_calls = _run(workload, schedule)
    assert digests == reference
    assert report.dropped == 0
    membership = report.membership
    # migration bookkeeping: an entry is only ever copied, never rebuilt
    assert len(encode_calls) == membership["reencodes"]
    assert membership["reencodes"] == 0
    events = membership["applied_events"]
    assert len(events) == len(schedule.events)
    kinds = [e["kind"] for e in events]
    assert membership["joins"] == kinds.count("join")
    assert membership["leaves"] == kinds.count("leave")
    assert membership["kills"] == kinds.count("kill")
    # every migration avoided exactly one re-encode; nothing double-counts
    assert membership["reencodes_avoided"] >= membership["migrated_entries"]


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_all_but_one_node_dies(workload, data):
    """Kill every node but one (order drawn at random) in one burst:
    the survivor inherits every shard via migration — still bit-exact,
    still no re-encode, because each kill re-replicates before the
    next one fires."""
    _matrix, _plan, _cts, reference = workload
    victims = data.draw(
        st.permutations(list(range(1, INITIAL_NODES)))
    )
    at = data.draw(st.integers(min_value=0, max_value=REQUESTS - 1))
    schedule = MembershipSchedule(
        [MembershipEvent(seq=at, kind="kill", node_id=v) for v in victims]
    )
    digests, report, encode_calls = _run(workload, schedule)
    assert digests == reference
    assert report.dropped == 0
    assert report.nodes == 1
    assert report.membership["reencodes"] == 0 == len(encode_calls)
    assert report.membership["replica_promotions"] >= 1


def test_node_rejoins_with_cold_cache(workload):
    """A node leaves gracefully, then rejoins under its old id with a
    cold cache: the rebalance migrates entries onto it (never encodes),
    and the output never wavers."""
    _matrix, _plan, _cts, reference = workload
    schedule = MembershipSchedule(
        [
            MembershipEvent(seq=1, kind="leave", node_id=1),
            MembershipEvent(seq=3, kind="join", node_id=1),
        ]
    )
    digests, report, encode_calls = _run(workload, schedule)
    assert digests == reference
    assert report.dropped == 0
    assert not encode_calls
    membership = report.membership
    assert membership["leaves"] == 1 and membership["joins"] == 1
    assert membership["migrated_entries"] > 0
    assert membership["reencodes"] == 0


def test_replication_one_kill_forces_the_only_legal_reencode(workload):
    """With replication 1, killing a shard's only holder loses the
    encoding with the node — the *one* case a re-encode is allowed.
    The controller counts it, the instrumentation confirms it, and the
    output is still bit-identical (the encode is deterministic)."""
    _matrix, _plan, _cts, reference = workload
    schedule = MembershipSchedule(
        [MembershipEvent(seq=1, kind="kill", node_id=0)]
    )
    digests, report, encode_calls = _run(workload, schedule, replication=1)
    assert digests == reference
    assert report.dropped == 0
    membership = report.membership
    assert membership["reencodes"] >= 1
    assert len(encode_calls) == membership["reencodes"]


def test_graceful_leave_drains_without_reencode(workload):
    """Drain-before-leave: every shard hosted on the departing node is
    re-homed from its (still live) cache even at replication 1."""
    _matrix, _plan, _cts, reference = workload
    schedule = MembershipSchedule(
        [MembershipEvent(seq=1, kind="leave", node_id=0)]
    )
    digests, report, encode_calls = _run(workload, schedule, replication=1)
    assert digests == reference
    assert not encode_calls
    membership = report.membership
    assert membership["reencodes"] == 0
    assert membership["migrated_entries"] > 0


def test_invalid_events_are_rejected():
    with pytest.raises(MembershipError):
        MembershipEvent(seq=0, kind="explode", node_id=1)
    with pytest.raises(MembershipError):
        MembershipEvent(seq=-1, kind="join")
    with pytest.raises(MembershipError):
        MembershipEvent(seq=0, kind="kill")  # kill needs a node id
    with pytest.raises(MembershipError):
        MembershipSchedule.parse("1:kill:2:oops")


def test_schedule_round_trips():
    schedule = MembershipSchedule.parse("4:kill:3,4:kill:2,8:join,2:leave:1")
    # stable sort by seq, authored order preserved within a seq
    assert [e.seq for e in schedule] == [2, 4, 4, 8]
    assert MembershipSchedule.parse(schedule.to_spec()).to_dict() == (
        schedule.to_dict()
    )
    assert MembershipSchedule.from_dict(schedule.to_dict()).to_spec() == (
        schedule.to_spec()
    )


@pytest.mark.parametrize("seed", range(8))
def test_random_schedules_are_valid_and_deterministic(seed):
    a = MembershipSchedule.random(seed, requests=6, initial_nodes=3)
    b = MembershipSchedule.random(seed, requests=6, initial_nodes=3)
    assert a.to_dict() == b.to_dict()
    # replay validity: simulate the active set
    active = set(range(3))
    for event in a:
        if event.kind == "join":
            assert event.node_id not in active
            active.add(event.node_id)
        else:
            assert event.node_id in active
            active.remove(event.node_id)
        assert active, "schedule emptied the pool"


# -- LPT tie-break regression (satellite) ---------------------------------


def test_lpt_tie_break_is_by_node_id():
    """Equal-load ties break by node id explicitly, so plans are stable
    across Python versions, container orderings, and churn renumbering."""
    planner = PartitionPlanner(128)
    plan = planner.plan_from_cuts(
        8, 512, (0, 4, 8), (0, 128, 256, 384, 512)
    )
    costs = [10] * len(plan.shards)
    placement = ShardPlacement.place(
        plan, nodes=3, replication=2, shard_costs=costs
    )
    primaries = [
        placement.nodes_for(s.shard_id)[0] for s in plan.shards
    ]
    # all-equal costs: LPT degrades to round-robin over ascending node id
    assert primaries == [0, 1, 2, 0, 1, 2, 0, 1]


def test_lpt_placement_is_order_independent_over_renumbered_nodes():
    planner = PartitionPlanner(128)
    plan = planner.plan_from_cuts(8, 256, (0, 4, 8), (0, 128, 256))
    costs = [7] * len(plan.shards)
    a = ShardPlacement.place(
        plan, nodes=[11, 3, 7], replication=2, shard_costs=costs
    )
    b = ShardPlacement.place(
        plan, nodes=[3, 7, 11], replication=2, shard_costs=costs
    )
    assert a.assignments == b.assignments
    assert a.node_ids == b.node_ids == (3, 7, 11)
    # ties go to the smallest surviving id, not to "the first in the dict"
    assert a.nodes_for(plan.shards[0].shard_id)[0] == 3


# -- autoscaler hysteresis -------------------------------------------------


def test_autoscaler_scales_up_only_on_sustained_backlog():
    scaler = Autoscaler(
        AutoscalerConfig(
            high_queue_depth=8, low_queue_depth=1, up_after=2,
            down_after=3, cooldown=2,
        )
    )
    # one blip is not pressure
    assert scaler.observe(queue_depth=20, nodes=2) is None
    assert scaler.observe(queue_depth=0, nodes=2) is None
    # two consecutive breaches are
    assert scaler.observe(queue_depth=12, nodes=2) is None
    assert scaler.observe(queue_depth=12, nodes=2) == "up"
    # cooldown: even a screaming backlog is ignored for two observations,
    # but the streak keeps building so the first post-cooldown breach fires
    assert scaler.observe(queue_depth=50, nodes=3) is None
    assert scaler.observe(queue_depth=50, nodes=3) is None
    assert scaler.observe(queue_depth=50, nodes=3) == "up"


def test_autoscaler_scales_down_on_sustained_idle_with_floor():
    scaler = Autoscaler(
        AutoscalerConfig(
            high_queue_depth=8, low_queue_depth=1, up_after=2,
            down_after=3, cooldown=0, min_nodes=2,
        )
    )
    assert scaler.observe(queue_depth=0, nodes=3) is None
    assert scaler.observe(queue_depth=1, nodes=3) is None
    assert scaler.observe(queue_depth=0, nodes=3) == "down"
    # at the floor the policy goes quiet instead of draining the pool
    for _ in range(5):
        assert scaler.observe(queue_depth=0, nodes=2) is None


def test_autoscaler_dead_band_resets_streaks():
    scaler = Autoscaler(
        AutoscalerConfig(
            high_queue_depth=8, low_queue_depth=1, up_after=2,
            down_after=2, cooldown=0,
        )
    )
    assert scaler.observe(queue_depth=9, nodes=2) is None
    assert scaler.observe(queue_depth=4, nodes=2) is None  # dead band
    assert scaler.observe(queue_depth=9, nodes=2) is None  # streak reset
    assert scaler.observe(queue_depth=9, nodes=2) == "up"


def test_autoscaler_wired_into_execute_batch(workload):
    """End to end: a synthetic backlog long enough to trip the scale-up
    hysteresis grows the pool mid-batch via a real join event — and the
    outputs stay bit-identical to the oracle throughout."""
    matrix, plan, cts, reference = workload
    executor = ClusterExecutor(
        _run.scheme,
        matrix,
        config=ClusterConfig(nodes=2, replication=2, seed=0),
        plan=plan,
        autoscaler=Autoscaler(
            AutoscalerConfig(
                high_queue_depth=2, low_queue_depth=0, up_after=1,
                cooldown=0, max_nodes=3,
            )
        ),
    )
    results = executor.execute_batch(cts)
    report = executor.report()
    assert [_limb_digests(r) for r in results] == reference
    assert report.dropped == 0
    assert report.membership["joins"] >= 1
    assert report.membership["autoscale_actions"] >= 1
    assert report.nodes == 3
