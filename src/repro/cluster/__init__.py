"""Sharded multi-engine HMVP cluster layer.

One CHAM accelerator is one ``N``-row engine pass; this package scales
the reproduction's serving story *out*: a cost-model-driven
:class:`PartitionPlanner` tiles the matrix into shards, a
:class:`ShardPlacement` maps shards (with replicas) onto K simulated
accelerator nodes, and a :class:`ClusterExecutor` scatters encrypted
requests, fails over around injected node hangs, and gathers partials
into a result **bit-identical** to the unsharded engine's — the merge is
exact modular addition of column-shard LWE stacks plus row-order
concatenation through the same central pack.

Membership is elastic (:mod:`repro.cluster.membership`): seeded
join/leave/kill schedules and an autoscaler policy
(:mod:`repro.cluster.autoscaler`) morph the node set between requests —
the shard grid stays fixed, only the affected shards' encoded-matrix
cache entries migrate, and the output stays bit-identical per RNS limb
under any scale schedule (the chaos/property battery in
``tests/test_cluster_elastic.py`` / ``tests/test_cluster_chaos.py``
pins exactly that).

Entry points: ``repro cluster`` (``--elastic --schedule``) on the CLI,
``benchmarks/bench_cluster.py`` / ``benchmarks/bench_elastic.py`` for
the scale-out numbers, and ``docs/ARCHITECTURE.md`` sections 9 and 12
for the partitioning and migration algebra.
"""

from .autoscaler import Autoscaler, AutoscalerConfig
from .executor import ClusterConfig, ClusterExecutor, ClusterReport, ShardOutcome
from .interconnect import ClusterInterconnect
from .membership import (
    ClusterController,
    MembershipError,
    MembershipEvent,
    MembershipSchedule,
)
from .partition import (
    CommSpec,
    PartitionError,
    PartitionPlan,
    PartitionPlanner,
    Shard,
    balanced_cuts,
)
from .placement import ClusterNode, ShardPlacement, build_nodes, make_cluster_node

__all__ = [
    "CommSpec",
    "ClusterInterconnect",
    "PartitionError",
    "Shard",
    "PartitionPlan",
    "PartitionPlanner",
    "balanced_cuts",
    "ClusterNode",
    "ShardPlacement",
    "build_nodes",
    "make_cluster_node",
    "ClusterConfig",
    "ClusterExecutor",
    "ClusterReport",
    "ShardOutcome",
    "MembershipError",
    "MembershipEvent",
    "MembershipSchedule",
    "ClusterController",
    "Autoscaler",
    "AutoscalerConfig",
]
