"""Differential cluster tests (ISSUE 5): sharded vs unsharded, bit for bit.

The cluster's correctness claim is stronger than "decrypts to the same
plaintext": the gathered RLWE ciphertext must be **bit-identical** to
the unsharded engine's output, per RNS limb.  That holds because the
merge algebra is exact — column-shard partials add modularly *before*
the (non-linear) pack, row bands concatenate in the pack order the
single-engine path uses, and column cuts are constrained to ciphertext
tile boundaries so every shard rescales exactly what the unsharded path
rescales.  Any divergence is a bug in the scatter/merge layer, never
noise.

References: :class:`repro.core.batch.BatchedHmvp` for ``m <= N`` and the
scalar :class:`repro.core.hmvp.TiledHmvp` for ``m > N`` (which the
batched engine itself was differentially tested against).
"""

import hashlib

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterExecutor,
    PartitionError,
    PartitionPlanner,
)
from repro.core.batch import BatchedHmvp
from repro.core.hmvp import TiledHmvp
from repro.hw.runtime import FaultInjector

#: (rows, cols) at ring degree 128 — single-row, single-column,
#: non-power-of-two, multi-tile, and beyond-ring shapes on purpose
SHAPES = [
    (1, 128),   # single row, one tile
    (3, 1),     # single column (narrower than a tile)
    (5, 128),   # row-only sharding, non-power-of-two rows
    (8, 256),   # column sharding across two tiles
    (13, 384),  # mixed row x column, non-power-of-two rows
    (96, 256),  # mixed, larger bands
    (160, 128), # m > ring degree: multiple output packs
]


def _reference(scheme, matrix, ct_tiles):
    """The unsharded result for any shape (the two engines agree)."""
    if matrix.shape[0] <= scheme.params.n:
        return BatchedHmvp(scheme, matrix).multiply_tiles(ct_tiles)
    return TiledHmvp(scheme).multiply(matrix, ct_tiles)


def _limb_digests(result):
    """Per-limb SHA-256 of every output pack's (c0, c1) arrays."""
    digests = []
    for pack in result.packs:
        for component in (pack.ct.c0, pack.ct.c1):
            arr = np.asarray(component)
            for limb in range(arr.shape[0]):
                digests.append(
                    hashlib.sha256(
                        np.ascontiguousarray(arr[limb]).tobytes()
                    ).hexdigest()
                )
    return digests


def _assert_bit_identical(got, want):
    assert len(got.packs) == len(want.packs)
    for g, w in zip(got.packs, want.packs):
        np.testing.assert_array_equal(g.ct.c0, w.ct.c0)
        np.testing.assert_array_equal(g.ct.c1, w.ct.c1)
    # the digest form is what the golden vectors pin; keep both honest
    assert _limb_digests(got) == _limb_digests(want)


@pytest.mark.parametrize("rows,cols", SHAPES)
def test_cluster_matches_unsharded_bitwise(scheme128, rows, cols):
    rng = np.random.default_rng(0xC105 + rows * 37 + cols)
    matrix = rng.integers(-100, 100, (rows, cols))
    vector = rng.integers(-100, 100, cols)
    executor = ClusterExecutor(
        scheme128,
        matrix,
        config=ClusterConfig(nodes=4, replication=2, seed=1),
    )
    ct_tiles = executor.encrypt_vector(vector)
    got = executor.execute(ct_tiles)
    _assert_bit_identical(got, _reference(scheme128, matrix, ct_tiles))
    assert executor.report().dropped == 0


@pytest.mark.parametrize(
    "row_cuts,col_cuts,label",
    [
        ((0, 4, 9, 13), (0, 384), "row-only"),
        ((0, 13), (0, 128, 256, 384), "column-only"),
        ((0, 7, 13), (0, 256, 384), "mixed"),
    ],
)
def test_explicit_partition_kinds(scheme128, row_cuts, col_cuts, label):
    """Row-only, column-only, and mixed grids all gather exactly."""
    rng = np.random.default_rng(0xC106)
    matrix = rng.integers(-100, 100, (13, 384))
    vector = rng.integers(-100, 100, 384)
    planner = PartitionPlanner(scheme128.params.n)
    plan = planner.plan_from_cuts(13, 384, row_cuts, col_cuts)
    executor = ClusterExecutor(
        scheme128,
        matrix,
        config=ClusterConfig(nodes=3, replication=1, seed=2),
        plan=plan,
    )
    ct_tiles = executor.encrypt_vector(vector)
    got = executor.execute(ct_tiles)
    _assert_bit_identical(got, _reference(scheme128, matrix, ct_tiles))


def test_unaligned_column_cut_rejected(scheme128):
    """A cut inside a ciphertext tile cannot merge exactly -> refused."""
    planner = PartitionPlanner(scheme128.params.n)
    with pytest.raises(PartitionError, match="rescale is non-linear"):
        planner.plan_from_cuts(8, 256, (0, 8), (0, 100, 256))


def test_failover_preserves_bit_identity(scheme128):
    """Scripted node hangs reroute shards to replicas; the rerouted
    request's ciphertext is still bit-identical to the unsharded one —
    replicas hold the same shard encoding, so *where* a shard runs can
    never change *what* it computes."""
    rng = np.random.default_rng(0xC107)
    matrix = rng.integers(-100, 100, (24, 256))
    vector = rng.integers(-100, 100, 256)
    # node 0 hangs on its first two offloads, the rest are healthy
    injectors = [
        FaultInjector(hang_script=[True, True], seed=11),
        FaultInjector(seed=12),
        FaultInjector(seed=13),
    ]
    executor = ClusterExecutor(
        scheme128,
        matrix,
        config=ClusterConfig(nodes=3, replication=2, seed=3),
        fault_injectors=injectors,
    )
    ct_tiles = executor.encrypt_vector(vector)
    got = executor.execute(ct_tiles)
    _assert_bit_identical(got, _reference(scheme128, matrix, ct_tiles))
    report = executor.report()
    assert report.shard_retries >= 1
    assert report.rebalance_events >= 1
    assert report.dropped == 0
    assert report.degraded_shards == 0  # replicas absorbed every hang


def test_degraded_cpu_path_preserves_bit_identity(scheme128):
    """Even a full CPU degrade (every node hangs forever) returns the
    exact ciphertext: degradation reprices the shard, never recomputes
    it differently."""
    rng = np.random.default_rng(0xC108)
    matrix = rng.integers(-100, 100, (8, 128))
    vector = rng.integers(-100, 100, 128)
    injectors = [
        FaultInjector(hang_prob=1.0, resets_to_recover=10_000, seed=s)
        for s in (21, 22)
    ]
    executor = ClusterExecutor(
        scheme128,
        matrix,
        config=ClusterConfig(nodes=2, replication=2, max_retries=1, seed=4),
        fault_injectors=injectors,
    )
    ct = executor.encrypt_vector(vector)
    got = executor.execute(ct)
    _assert_bit_identical(got, _reference(scheme128, matrix, ct))
    report = executor.report()
    assert report.degraded_shards == len(executor.plan.shards)
    assert report.dropped == 0
