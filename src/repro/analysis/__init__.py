"""HE-aware static analysis for the CHAM reproduction.

A rule-based AST lint framework plus codebase-specific rules that
machine-check the paper's arithmetic contracts (CHAM, Ren et al.,
DAC 2023) on every PR.  Two generations of rules coexist:

**Pattern rules** (:mod:`repro.analysis.rules`) check single
expressions:

========  ========================  =====================================
ID        name                      invariant
========  ========================  =====================================
REPRO101  overflow-unsafe-modmul    residue products go through
                                    ``modular.modmul_vec`` (35-bit moduli
                                    overflow uint64 under ``(a*b) % q``)
REPRO102  dtype-discipline          no lossy int64/float casts on residue
                                    arrays; no ``np.mod`` on floats
REPRO103  unseeded-randomness       every RNG in ``src/repro`` takes an
                                    explicit deterministic seed
REPRO104  blocking-call-in-async    the serving layer never blocks the
                                    event loop
REPRO105  bare-modulus-guard        literal moduli respect
                                    ``MAX_MODULUS_BITS``
REPRO106  mutable-default           no shared mutable defaults in
                                    functions or config dataclasses
REPRO107  silent-broad-except       fault-path errors are never silently
                                    swallowed
REPRO108  print-instead-of-obs      library layers report via
                                    ``repro.obs``, not stdout
========  ========================  =====================================

**Dataflow rules** (:mod:`repro.analysis.dataflow`) run an abstract
interpreter tracking each value's HE state — RNS basis, NTT-vs-coeff
domain, chain level, rescaled-ness — through assignments, calls,
branches and loops (fixed point with widening):

========  ========================  =====================================
REPRO201  domain-mismatch           NTT/coeff operands are never paired
                                    (and never double-transformed)
REPRO202  level-mismatch            modadd/modsub operands share a
                                    modulus-chain level
REPRO203  multiply-without-rescale  products pass through rescale_last
                                    before pack/key-switch
REPRO204  augmented-basis-escape    {q0,q1,p}-basis values never leave
                                    the key-switch region
REPRO205  chain-underflow           rescale_last never drops past the
                                    chain floor
REPRO206  state-lost-in-container   ciphertext state survives untyped
                                    containers (warning)
========  ========================  =====================================

**Concurrency rules** (:mod:`repro.analysis.locks`) build the project
lock-acquisition graph and the worker-thread call graph:

========  ========================  =====================================
REPRO210  lock-order-cycle          locks are acquired in one global
                                    order (incl. self-deadlock on
                                    re-acquiring a held Lock)
REPRO211  unguarded-shared-write    attributes of lock-owning classes
                                    are only written with the lock held
                                    on worker-thread-reachable paths
========  ========================  =====================================

Suppress a finding in place with ``# repro: noqa RULE-ID`` plus a
justification comment.  CLI: ``python -m repro lint [--json] [--ci]
[--rule ID] [--diff BASE] [--sarif FILE] [paths]``.  See
``docs/ARCHITECTURE.md`` sections 8 and 13 for the full catalog and
policy.
"""

from .core import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    Rule,
    SourceFile,
    all_rules,
    diagnostics_to_json,
    get_rules,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    register,
    render_text,
)
from .dataflow import HEState, TRANSFERS, analyze_source
from .locks import analyze_project
from .rules import MAX_MODULUS_BITS
from .sarif import SARIF_VERSION, diagnostics_to_sarif
from .toolchain import (
    ToolResult,
    changed_python_files,
    repo_root,
    run_ci,
    run_mypy,
    run_ruff,
    tool_available,
)

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "Diagnostic",
    "Rule",
    "SourceFile",
    "all_rules",
    "diagnostics_to_json",
    "get_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "render_text",
    "HEState",
    "TRANSFERS",
    "analyze_source",
    "analyze_project",
    "MAX_MODULUS_BITS",
    "SARIF_VERSION",
    "diagnostics_to_sarif",
    "ToolResult",
    "changed_python_files",
    "repo_root",
    "run_ci",
    "run_mypy",
    "run_ruff",
    "tool_available",
]
