"""Extension bench — communication costs of the paper's protocols.

The paper's introduction motivates acceleration with HE's data-size
explosion ("×10² to ×10⁵").  This bench measures, on real protocol
transcripts:

* the ciphertext expansion factor of CHAM's parameters;
* HeteroLR's per-iteration traffic under Paillier vs B/FV — the second,
  quieter reason the paper replaced Paillier: one RLWE ciphertext
  carries 4096 values where Paillier ships one ciphertext *per value*;
* Delphi's offline/online byte split (the online phase ships only
  cleartext shares).
"""

import numpy as np
import pytest
from conftest import print_table

from repro.apps.datasets import make_digit_images
from repro.apps.delphi import DelphiInference
from repro.apps.inference import TinyModel
from repro.he.bfv import BfvScheme
from repro.he.params import toy_params
from repro.he.serialization import rlwe_wire_bytes
from repro.math.primes import CHAM_P, CHAM_Q0, CHAM_Q1

RING_N = 4096
#: Paillier (1024-bit keys): one 2048-bit ciphertext per value
PAILLIER_CT_BYTES = 256
#: cleartext field element at the 40-bit plaintext modulus
CLEAR_BYTES = 5


def test_ciphertext_expansion():
    normal = rlwe_wire_bytes(RING_N, (CHAM_Q0, CHAM_Q1))
    augmented = rlwe_wire_bytes(RING_N, (CHAM_Q0, CHAM_Q1, CHAM_P))
    clear = RING_N * CLEAR_BYTES
    pail = RING_N * PAILLIER_CT_BYTES
    rows = [
        ("cleartext (4096 x 40b)", f"{clear / 1024:.1f} KiB", "1.0x"),
        ("BFV normal ct", f"{normal / 1024:.1f} KiB", f"{normal / clear:.1f}x"),
        ("BFV augmented ct", f"{augmented / 1024:.1f} KiB", f"{augmented / clear:.1f}x"),
        ("Paillier (4096 cts)", f"{pail / 1024:.0f} KiB", f"{pail / clear:.0f}x"),
    ]
    print_table(
        "Ciphertext expansion at production parameters",
        ["representation", "bytes", "vs cleartext"],
        rows,
    )
    assert 3 < normal / clear < 6  # RLWE amortizes beautifully
    assert pail / clear > 40  # Paillier's per-value blow-up


def test_heterolr_traffic():
    """Per-iteration bytes exchanged, Paillier vs B/FV (8192 samples)."""
    samples, features = 8192, 4096
    # Paillier: one ct per residual value + one per gradient entry
    pail = (samples + features) * PAILLIER_CT_BYTES
    # BFV: ceil(samples/N) augmented cts up + ceil(features/N) packed down
    up = -(-samples // RING_N) * rlwe_wire_bytes(
        RING_N, (CHAM_Q0, CHAM_Q1, CHAM_P)
    )
    down = -(-features // RING_N) * rlwe_wire_bytes(RING_N, (CHAM_Q0, CHAM_Q1))
    bfv = up + down
    rows = [
        ("Paillier (FATE)", f"{pail / 2**20:.1f} MiB"),
        ("B/FV + PACKLWES", f"{bfv / 2**20:.2f} MiB"),
        ("reduction", f"{pail / bfv:.0f}x"),
    ]
    print_table(
        f"HeteroLR traffic per iteration ({samples}x{features})",
        ["backend", "bytes"],
        rows,
    )
    assert pail / bfv > 8  # packing pays for itself on the wire too


def test_delphi_offline_online_split():
    """Delphi's split measured on a real transcript (toy ring)."""
    scheme = BfvScheme(toy_params(n=256, plain_bits=40), seed=71, max_pack=4)
    model = TinyModel.random(12, classes=2, seed=72)
    proto = DelphiInference(scheme, model, 12, seed=73)
    proto.offline()
    imgs, _ = make_digit_images(1, 12, seed=74)
    got = proto.online(imgs[0])
    assert np.array_equal(got, model.predict_clear(imgs[0]))
    summary = proto.communication_summary()
    rows = [
        ("offline (HE ciphertexts)", f"{summary['offline_bytes']:,} B"),
        ("online (cleartext shares)", f"{summary['online_bytes']:,} B"),
        ("rounds (total)", summary["rounds"]),
    ]
    print_table("Delphi inference traffic (toy ring)", ["phase", "amount"], rows)
    assert summary["online_bytes"] < summary["offline_bytes"]


@pytest.mark.benchmark(group="communication")
def test_perf_transcript_accounting(benchmark):
    from repro.apps.protocol import Channel, Party

    def run():
        ch = Channel()
        a, b = Party("a", ch), Party("b", ch)
        for i in range(200):
            a.send(b, "x", b"\0" * 64)
            b.recv()
        return ch.total_bytes

    assert benchmark(run) == 200 * 64
