"""E2/E3 — Table III (single NTT module) and the NTT throughput text.

Reproduces:

* Table III rows: latency cycles, parallelism, normalized ATP, LUT/BRAM
  for CHAM's three memory variants vs HEAX and F1;
* the "60 NTT units / 195 k ops/s vs HEAX 117 k vs GPU 45 k" discussion;
* the constant-geometry vs stage-variant-mux ablation (DESIGN.md §5).
"""

import numpy as np
import pytest
from conftest import print_table, record_result

from repro.hw.arch import NttUnitConfig, cham_default_config
from repro.hw.ntt_datapath import NttDatapathSim
from repro.hw.perf import ChamPerfModel, CpuCostModel, GpuCostModel
from repro.hw.resources import ntt_unit_resources
from repro.math.cg_ntt import CgNtt, cg_ntt_cycles
from repro.math.ntt import NegacyclicNtt
from repro.math.primes import CHAM_Q0

#: Table III reference rows: (latency, parallelism, ATP, LUT, BRAM, LBP)
TABLE3_PAPER = {
    "CHAM (BRAM only)": (6144, 4, 1.0, 3324, 14, 1.0),
    "CHAM (BRAM+dRAM)": (6144, 4, 1.0, 6508, 6, 1.96),
    "CHAM (dRAM only)": (6144, 4, 1.0, 9248, 0, 2.78),
    "HEAX [31]": (6144, 4, 1.0, 22316, 11, 6.71),
    "F1 [13]": (202, 896, 7.36, None, None, None),
}


def test_table3_cham_rows():
    """Our model reproduces the three CHAM rows of Table III exactly."""
    rows = []
    base_lut = None
    for label, memory in [
        ("CHAM (BRAM only)", "bram"),
        ("CHAM (BRAM+dRAM)", "bram+dram"),
        ("CHAM (dRAM only)", "dram"),
    ]:
        unit = NttUnitConfig(memory=memory)
        res = ntt_unit_resources(unit)
        if base_lut is None:
            base_lut = res.lut
        lbp = res.lut / base_lut
        paper = TABLE3_PAPER[label]
        rows.append(
            (label, unit.cycles, unit.n_bfu, res.lut, res.bram, f"{lbp:.2f}x")
        )
        assert unit.cycles == paper[0]
        assert res.lut == paper[3]
        assert res.bram == paper[4]
        assert lbp == pytest.approx(paper[5], abs=0.05)
    rows.append(("HEAX [31] (paper)", 6144, 4, 22316, 11, "6.71x"))
    rows.append(("F1 [13] (paper)", 202, 896, "-", "-", "-"))
    print_table(
        "Table III: single NTT module",
        ["design", "latency", "parallel", "LUT", "BRAM", "LUT ratio"],
        rows,
    )


def test_table3_heax_comparison():
    """CHAM's BRAM-only variant is ~6.7x more LUT-compact than HEAX at
    the same latency (hardware-friendly moduli + constant geometry)."""
    cham = ntt_unit_resources(NttUnitConfig())
    heax_lut = TABLE3_PAPER["HEAX [31]"][3]
    assert heax_lut / cham.lut == pytest.approx(6.71, abs=0.1)


def test_table3_f1_atp():
    """F1's ASIC point: 202 cycles at 896 butterflies, ATP 7.36x worse."""
    f1_latency, f1_parallel, f1_atp = TABLE3_PAPER["F1 [13]"][:3]
    cham_atp = 6144 * 4
    assert (f1_latency * f1_parallel) / cham_atp == pytest.approx(
        f1_atp, abs=0.05
    )


def test_ntt_throughput_anchors():
    """'60 NTT units which can perform 195 k ops/sec' vs HEAX 117 k and
    the GPU's 45 k single-kernel rate."""
    cham = ChamPerfModel()
    gpu = GpuCostModel()
    thr = cham.ntt_offload_throughput()
    rows = [
        ("CHAM (60 units, PCIe-bound)", f"{thr:,.0f}"),
        ("HEAX [31] (paper)", "117,000"),
        ("GPU V100 (paper)", f"{gpu.ntt_throughput:,.0f}"),
        ("CPU Xeon (model)", f"{CpuCostModel().ntt_throughput():,.0f}"),
    ]
    print_table("NTT throughput (ops/s, N=4096)", ["platform", "ops/s"], rows)
    record_result(
        "ntt",
        {
            "cham_ops_per_s": thr,
            "heax_ops_per_s": 117_000,
            "gpu_ops_per_s": gpu.ntt_throughput,
        },
        params={"n": 4096, "ntt_units": cham_default_config().total_ntt_units},
    )
    assert thr == pytest.approx(195_000, rel=0.02)
    assert thr > 117_000 > gpu.ntt_throughput
    assert cham_default_config().total_ntt_units == 60


def test_ablation_constant_geometry_routing():
    """CG keeps a single bank->BFU routing pattern; a standard in-place
    Cooley-Tukey network needs a different pattern per stage — the mux
    cost HEAX pays in LUTs."""
    sim = NttDatapathSim(NttUnitConfig(n=256, n_bfu=4, ram_banks=8), CHAM_Q0)
    a = np.arange(256, dtype=np.uint64)
    _, report = sim.forward(a)
    cg_patterns = len(report.routing_patterns)
    # a stage-variant network touches banks in a stage-dependent stride:
    # count the distinct read-address strides the merged CT NTT would need
    ct_patterns = len({256 >> (s + 1) for s in range(8)})
    print_table(
        "Ablation: datapath routing patterns",
        ["network", "distinct patterns"],
        [("constant geometry (CHAM)", cg_patterns), ("in-place CT (HEAX-style)", ct_patterns)],
    )
    assert cg_patterns == 1
    assert ct_patterns > cg_patterns


def test_ablation_bfu_scaling():
    """Cycles halve per doubling of n_bfu while DSPs double: constant ATP."""
    rows = []
    for n_bfu in (2, 4, 8):
        unit = NttUnitConfig(n_bfu=n_bfu)
        res = ntt_unit_resources(unit)
        rows.append((n_bfu, unit.cycles, res.dsp, unit.cycles * res.dsp))
    print_table(
        "Ablation: butterfly parallelism", ["n_bfu", "cycles", "DSP", "cycle*DSP"], rows
    )
    assert rows[0][3] == rows[1][3] == rows[2][3]


# -- kernel timings -------------------------------------------------------------------


@pytest.mark.benchmark(group="ntt")
def test_perf_gold_ntt_4096(benchmark, rng):
    ctx = NegacyclicNtt(4096, CHAM_Q0)
    a = rng.integers(0, CHAM_Q0, 4096, dtype=np.uint64)
    benchmark(ctx.forward, a)


@pytest.mark.benchmark(group="ntt")
def test_perf_cg_ntt_4096(benchmark, rng):
    ctx = CgNtt(4096, CHAM_Q0)
    a = rng.integers(0, CHAM_Q0, 4096, dtype=np.uint64)
    benchmark(ctx.forward, a)


@pytest.mark.benchmark(group="ntt")
def test_perf_negacyclic_multiply(benchmark, rng):
    ctx = NegacyclicNtt(4096, CHAM_Q0)
    a = rng.integers(0, CHAM_Q0, 4096, dtype=np.uint64)
    b = rng.integers(0, CHAM_Q0, 4096, dtype=np.uint64)
    benchmark(ctx.multiply, a, b)


@pytest.mark.benchmark(group="ntt")
def test_perf_datapath_sim_256(benchmark, rng):
    sim = NttDatapathSim(NttUnitConfig(n=256, n_bfu=4, ram_banks=8), CHAM_Q0)
    a = rng.integers(0, CHAM_Q0, 256, dtype=np.uint64)
    benchmark(sim.forward, a)


def test_cycles_formula_consistency():
    for n in (1024, 4096):
        for n_bfu in (2, 4, 8):
            assert cg_ntt_cycles(n, n_bfu) == NttUnitConfig(n=n, n_bfu=n_bfu).cycles
