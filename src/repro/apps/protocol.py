"""Two-party protocol harness with communication accounting.

The paper's motivating applications are *protocols*: HeteroLR exchanges
encrypted residuals and masked gradients; Delphi exchanges encrypted
randomness offline and masked shares online.  This module provides the
plumbing those protocols run on:

* :class:`Channel` — an in-process duplex link that counts every message
  (bytes, per-label tallies) and the number of communication *rounds*
  (direction changes), the two quantities 2PC papers report;
* :class:`Party` — a named endpoint bound to one side of a channel;
* sizing helpers that price HE objects at their true wire size
  (:mod:`repro.he.serialization`) without always materializing bytes.

The harness is deliberately synchronous and deterministic so protocol
tests stay exact.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..he.rlwe import RlweCiphertext
from ..he.serialization import rlwe_wire_bytes

__all__ = ["Message", "Channel", "Party", "wire_size"]


def wire_size(obj: Any) -> int:
    """Best-effort wire size in bytes for protocol payloads."""
    import numpy as np

    if isinstance(obj, RlweCiphertext):
        return rlwe_wire_bytes(obj.ctx.n, obj.basis.moduli)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, np.ndarray):
        if obj.dtype == object:
            # field elements: price at 5 bytes (40-bit plaintext modulus)
            return 5 * obj.size
        return obj.nbytes
    if isinstance(obj, (list, tuple)):
        return sum(wire_size(x) for x in obj)
    if isinstance(obj, (int, float)):
        return 8
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")


@dataclass
class Message:
    sender: str
    receiver: str
    label: str
    payload: Any
    size: int


@dataclass
class Channel:
    """Duplex in-process channel with byte and round accounting."""

    name: str = "channel"
    _queues: Dict[str, Deque[Message]] = field(default_factory=dict)
    log: List[Message] = field(default_factory=list)

    def send(self, sender: str, receiver: str, label: str, payload: Any) -> None:
        msg = Message(sender, receiver, label, payload, wire_size(payload))
        self._queues.setdefault(receiver, deque()).append(msg)
        self.log.append(msg)

    def account(self, sender: str, receiver: str, label: str, size: int) -> None:
        """Record traffic without enqueueing a payload (for flows whose
        computation happens out of band but whose bytes must be billed)."""
        self.log.append(Message(sender, receiver, label, None, size))

    def recv(self, receiver: str, label: Optional[str] = None) -> Any:
        queue = self._queues.get(receiver)
        if not queue:
            raise RuntimeError(f"{receiver} has no pending messages")
        msg = queue.popleft()
        if label is not None and msg.label != label:
            raise RuntimeError(
                f"{receiver} expected {label!r}, got {msg.label!r}"
            )
        return msg.payload

    # -- accounting -----------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(m.size for m in self.log)

    def bytes_by_label(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for m in self.log:
            out[m.label] = out.get(m.label, 0) + m.size
        return out

    def bytes_by_direction(self) -> Dict[Tuple[str, str], int]:
        out: Dict[Tuple[str, str], int] = {}
        for m in self.log:
            key = (m.sender, m.receiver)
            out[key] = out.get(key, 0) + m.size
        return out

    @property
    def rounds(self) -> int:
        """Communication rounds = number of direction changes + 1."""
        if not self.log:
            return 0
        rounds = 1
        last = self.log[0].sender
        for m in self.log[1:]:
            if m.sender != last:
                rounds += 1
                last = m.sender
        return rounds


@dataclass
class Party:
    """A named protocol endpoint bound to a channel."""

    name: str
    channel: Channel

    def send(self, to: "Party", label: str, payload: Any) -> None:
        self.channel.send(self.name, to.name, label, payload)

    def recv(self, label: Optional[str] = None) -> Any:
        return self.channel.recv(self.name, label)
