"""E7/E10 — Fig. 8: HMVP latency on CPU / GPU / CHAM.

Reproduces both panels (n = 256 and n = 4096) across the row sweep and
asserts the paper's quantitative bands: CHAM at 0.3-0.7x the GPU's
latency, >10x over the BFV CPU baseline, up to ~1800x over the Paillier
incumbent, and >90% of the baseline's compute offloaded.
"""

import pytest
from conftest import print_table, record_result

from repro.hw.perf import (
    ChamPerfModel,
    CpuCostModel,
    GpuCostModel,
    PaillierCostModel,
    hmvp_latency_all,
)

M_SWEEP = [2048, 4096, 8192, 16384]


@pytest.fixture(scope="module")
def models():
    return ChamPerfModel(), CpuCostModel(), GpuCostModel(), PaillierCostModel()


@pytest.mark.parametrize("n", [256, 4096])
def test_figure_8_panel(models, n):
    cham, cpu, gpu, pail = models
    rows = []
    for m in M_SWEEP:
        lat = hmvp_latency_all(m, n, cham, cpu, gpu)
        rows.append(
            (
                m,
                f"{lat['cpu'] * 1e3:,.0f}",
                f"{lat['gpu'] * 1e3:,.0f}",
                f"{lat['cham'] * 1e3:,.0f}",
                f"{lat['cham'] / lat['gpu']:.2f}",
                f"{lat['cpu'] / lat['cham']:.0f}x",
            )
        )
        assert lat["cham"] < lat["gpu"] < lat["cpu"]
        assert 0.25 <= lat["cham"] / lat["gpu"] <= 0.85  # paper: 0.3-0.7
        assert lat["cpu"] / lat["cham"] > 10  # paper: >10x offload gain
    print_table(
        f"Fig. 8 (n={n}): HMVP latency (ms)",
        ["m", "CPU", "GPU", "CHAM", "cham/gpu", "cpu/cham"],
        rows,
    )
    record_result(
        "hmvp_latency",
        {
            str(m): hmvp_latency_all(m, n, cham, cpu, gpu) for m in M_SWEEP
        },
        params={"n": n, "m_sweep": M_SWEEP},
    )


def test_headline_1800x(models):
    """Abstract: '1800x speed-up for matrix-vector product' — vs the
    Paillier matvec FATE shipped, at the large-matrix end."""
    cham, _cpu, _gpu, pail = models
    rows = []
    best = 0.0
    for m, n in [(2048, 256), (8192, 4096), (8192, 8192), (16384, 4096)]:
        ratio = pail.matvec_s(m, n) / cham.hmvp_s(m, n)
        best = max(best, ratio)
        rows.append((f"{m}x{n}", f"{ratio:,.0f}x"))
    print_table("HMVP speedup vs Paillier (FATE)", ["matrix", "speedup"], rows)
    assert 1400 <= best <= 2400  # ~1800x


def test_matvec_speedup_band_30_to_1800(models):
    """Section V-B3: 'faster than its CPU baseline by 30x to 1800x' —
    the band spanned by BFV-CPU (small) .. Paillier (large)."""
    cham, cpu, _gpu, pail = models
    low = cpu.hmvp_s(2048, 256) / cham.hmvp_s(2048, 256)
    high = pail.matvec_s(16384, 4096) / cham.hmvp_s(16384, 4096)
    print(f"\nmatvec speedup band: {low:.0f}x .. {high:,.0f}x (paper: 30x..1800x)")
    assert 25 <= low <= 160
    assert 1400 <= high <= 2400


def test_offload_fraction(models):
    """'more than 90% computation has been offloaded to FPGA'."""
    cham, cpu, _gpu, _p = models
    m, n = 8192, 4096
    baseline = cpu.hmvp_s(m, n)
    host_residual = m * cham.encode_row_us * 1e-6
    frac = (baseline - host_residual) / baseline
    print(f"\noffloaded fraction of baseline compute: {100 * frac:.1f}%")
    assert frac > 0.9


def test_larger_matrices_amortize_better(models):
    """Fig. 8 text: 'matrices with more rows demonstrate a higher
    performance gain'."""
    cham, cpu, _gpu, _p = models
    gains = [
        cpu.hmvp_s(m, 256) / cham.hmvp_s(m, 256) for m in M_SWEEP
    ]
    assert gains == sorted(gains)


@pytest.mark.benchmark(group="latency-model")
def test_perf_latency_model_eval(benchmark, models):
    cham, cpu, gpu, _p = models
    benchmark(hmvp_latency_all, 8192, 4096, cham, cpu, gpu)
