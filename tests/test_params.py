"""Tests for the parameter layer (Section II-F)."""

import pytest

from repro.he.params import (
    CheParams,
    cham_params,
    default_plain_modulus,
    estimate_security,
    toy_params,
)
from repro.math.primes import CHAM_P, CHAM_Q0, CHAM_Q1, is_prime


def test_default_plain_modulus_is_odd_prime():
    t = default_plain_modulus(40)
    assert t > 1 << 40
    assert t % 2 == 1
    assert is_prime(t)


def test_cham_params_match_paper():
    p = cham_params()
    assert p.n == 4096
    assert p.ct_moduli == (CHAM_Q0, CHAM_Q1)
    assert p.special_modulus == CHAM_P


def test_polynomial_counts_match_paper():
    """'a ciphertext consists of four 4096-degree polynomials, while a
    plaintext consists of two ... augmented: six and three.'"""
    p = cham_params()
    assert p.ct_poly_count == 4
    assert p.pt_poly_count == 2
    assert p.ct_poly_count_aug == 6
    assert p.pt_poly_count_aug == 3


def test_security_production_level():
    p = cham_params()
    assert p.security_bits >= 128


def test_security_toy_is_zero():
    assert toy_params(n=64).security_bits == 0


def test_estimate_security_errors():
    with pytest.raises(ValueError):
        estimate_security(5000, 100)


def test_validation_even_plain_modulus():
    with pytest.raises(ValueError, match="odd"):
        CheParams(n=4096, plain_modulus=1 << 30)


def test_validation_plain_modulus_too_large():
    with pytest.raises(ValueError, match="below Q"):
        CheParams(n=4096, plain_modulus=CHAM_Q0 * CHAM_Q1 + 2)


def test_validation_duplicate_special():
    with pytest.raises(ValueError, match="differ"):
        CheParams(ct_moduli=(CHAM_Q0, CHAM_P), special_modulus=CHAM_P)


def test_validation_small_special():
    with pytest.raises(ValueError, match="dominate"):
        CheParams(ct_moduli=(CHAM_P, CHAM_Q1), special_modulus=CHAM_Q0)


def test_validation_bad_n():
    with pytest.raises(ValueError):
        CheParams(n=100)


def test_toy_params_rejects_large_n():
    with pytest.raises(ValueError):
        toy_params(n=8192)


def test_bases(params256):
    assert len(params256.ct_basis) == 2
    assert len(params256.aug_basis) == 3
    assert params256.aug_basis.moduli[-1] == CHAM_P
    assert params256.q_product == CHAM_Q0 * CHAM_Q1
    assert params256.qp_product == CHAM_Q0 * CHAM_Q1 * CHAM_P


def test_delta_values(params256):
    assert params256.delta == params256.q_product // params256.plain_modulus
    assert params256.delta_aug == params256.qp_product // params256.plain_modulus


def test_describe(params256):
    desc = params256.describe()
    assert "n=256" in desc
    assert "35+35" in desc
