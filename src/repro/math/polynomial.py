"""Ring polynomials in ``Z_q[X]/(X^N + 1)`` and the Table I PPU operations.

CHAM's polynomial processing units (PPUs, Section IV-B) operate on the
coefficient vector of a polynomial; LWE ciphertext vectors share the same
storage, so all of Table I is exposed here both as methods of
:class:`RingPoly` and as free functions over raw coefficient arrays:

=============  ==========================================================
MODADD(A, B)   coefficient-wise modular addition
MODMUL(A, B)   coefficient-wise modular multiplication
REV(A)         coefficient order reversal
SHIFTNEG(A,s)  negacyclic circular shift (multiply by ``X^s``)
AUTOMORPH(A,k) the Galois map ``a(X) -> a(X^k)``
=============  ==========================================================
"""

from __future__ import annotations

from functools import lru_cache
from typing import Union

import numpy as np

from .modular import (
    ModulusLike,
    modadd_vec,
    modinv,
    modmul_vec,
    modneg_vec,
    modsub_vec,
)
from .ntt import NegacyclicNtt, freeze_array

__all__ = [
    "RingPoly",
    "rev",
    "shiftneg",
    "automorph",
    "automorph_permutation",
    "monomial_multiply",
]


def rev(coeffs: np.ndarray, q: int) -> np.ndarray:
    """REV of Table I: ``[a_{N-1}, ..., a_1, a_0]``."""
    del q  # REV is modulus-independent; kept for a uniform PPU signature
    return np.asarray(coeffs, dtype=np.uint64)[..., ::-1].copy()


def shiftneg(coeffs: np.ndarray, s: int, q: ModulusLike) -> np.ndarray:
    """SHIFTNEG of Table I: multiply by the monomial ``X^s`` in
    ``Z_q[X]/(X^N+1)``.

    A shift by ``s`` rotates the coefficients right by ``s`` positions and
    negates the ``s`` coefficients that wrap around (``X^N = -1``).
    Negative ``s`` (multiplication by ``X^{-s} = -X^{N-s}``) is supported,
    as are shifts ``>= 2N`` (period ``2N`` with a sign flip at ``N``).
    """
    a = np.asarray(coeffs, dtype=np.uint64)
    n = a.shape[-1]
    s %= 2 * n
    negate_all = s >= n
    s %= n
    if s:
        rolled = np.concatenate([a[..., n - s :], a[..., : n - s]], axis=-1)
        wrapped = np.zeros(a.shape, dtype=bool)
        wrapped[..., :s] = True
        out = np.where(wrapped, modneg_vec(rolled, q), rolled)
    else:
        out = a.copy()
    if negate_all:
        out = modneg_vec(out, q)
    return out


@lru_cache(maxsize=None)
def automorph_permutation(n: int, k: int) -> "tuple[np.ndarray, np.ndarray]":
    """Index/sign tables for AUTOMORPH (Table I).

    The Galois map ``a(X) -> a(X^k)`` sends coefficient ``i`` to position
    ``ik mod N`` with sign ``(-1)^{floor(ik / N)}`` (because ``X^N = -1``).
    ``k`` must be odd so the map is a ring automorphism.

    Returns ``(src, flip)`` such that ``out[j] = ±a[src[j]]`` with the sign
    negative where ``flip[j]`` is ``True``.
    """
    if k % 2 == 0:
        raise ValueError(f"automorphism index k={k} must be odd")
    k %= 2 * n
    # index arithmetic, not residues: values < 2n * n << 2**63
    idx = (np.arange(n, dtype=np.int64) * k) % (2 * n)  # repro: noqa REPRO101
    dest = idx % n
    neg = idx >= n
    src = np.empty(n, dtype=np.int64)
    flip = np.empty(n, dtype=bool)
    src[dest] = np.arange(n)
    flip[dest] = neg
    return freeze_array(src), freeze_array(flip)


def automorph(coeffs: np.ndarray, k: int, q: ModulusLike) -> np.ndarray:
    """AUTOMORPH of Table I: ``a_i -> (-1)^{floor(ik/N)} a_{ik mod N}``."""
    a = np.asarray(coeffs, dtype=np.uint64)
    src, flip = automorph_permutation(a.shape[-1], k)
    out = a[..., src]
    return np.where(flip, modneg_vec(out, q), out)


def monomial_multiply(coeffs: np.ndarray, exponent: int, q: int) -> np.ndarray:
    """MULTMONO: multiply a polynomial by ``X^exponent`` (alias of SHIFTNEG)."""
    return shiftneg(coeffs, exponent, q)


class RingPoly:
    """A polynomial in ``Z_q[X]/(X^N + 1)``, stored as ``uint64`` residues.

    Arithmetic operators return new polynomials; the negacyclic product
    uses the cached gold-model NTT.  The class is deliberately small: HE
    objects hold stacks of raw coefficient arrays (one per RNS limb) for
    speed, and drop into :class:`RingPoly` at API boundaries and in tests.
    """

    __slots__ = ("coeffs", "q")

    def __init__(self, coeffs: Union[np.ndarray, list], q: int) -> None:
        arr = np.asarray(coeffs)
        if arr.ndim != 1:
            raise ValueError("RingPoly is one-dimensional")
        n = arr.shape[0]
        if n & (n - 1):
            raise ValueError(f"degree {n} must be a power of two")
        if arr.dtype == object or np.issubdtype(arr.dtype, np.signedinteger):
            arr = np.asarray(np.mod(arr.astype(object), q), dtype=np.uint64)
        else:
            arr = arr.astype(np.uint64) % np.uint64(q)
        self.coeffs = arr
        self.q = q

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls, n: int, q: int) -> "RingPoly":
        return cls(np.zeros(n, dtype=np.uint64), q)

    @classmethod
    def constant(cls, value: int, n: int, q: int) -> "RingPoly":
        c = np.zeros(n, dtype=np.uint64)
        c[0] = value % q
        return cls(c, q)

    @classmethod
    def monomial(cls, exponent: int, n: int, q: int) -> "RingPoly":
        """The monomial ``X^exponent`` (any integer exponent)."""
        return cls.constant(1, n, q).multmono(exponent)

    @classmethod
    def random(cls, n: int, q: int, rng: np.random.Generator) -> "RingPoly":
        return cls(rng.integers(0, q, n, dtype=np.uint64), q)

    # -- properties ----------------------------------------------------------

    @property
    def n(self) -> int:
        return self.coeffs.shape[0]

    def _check(self, other: "RingPoly") -> None:
        if self.q != other.q or self.n != other.n:
            raise ValueError(
                f"ring mismatch: (n={self.n}, q={self.q}) vs "
                f"(n={other.n}, q={other.q})"
            )

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "RingPoly") -> "RingPoly":
        self._check(other)
        return RingPoly(modadd_vec(self.coeffs, other.coeffs, self.q), self.q)

    def __sub__(self, other: "RingPoly") -> "RingPoly":
        self._check(other)
        return RingPoly(modsub_vec(self.coeffs, other.coeffs, self.q), self.q)

    def __neg__(self) -> "RingPoly":
        return RingPoly(modneg_vec(self.coeffs, self.q), self.q)

    def __mul__(self, other: Union["RingPoly", int]) -> "RingPoly":
        if isinstance(other, int):
            return self.scalar_mul(other)
        self._check(other)
        ntt = NegacyclicNtt(self.n, self.q)
        return RingPoly(ntt.multiply(self.coeffs, other.coeffs), self.q)

    __rmul__ = __mul__

    def scalar_mul(self, s: int) -> "RingPoly":
        return RingPoly(
            modmul_vec(self.coeffs, np.uint64(s % self.q), self.q), self.q
        )

    def hadamard(self, other: "RingPoly") -> "RingPoly":
        """MODMUL of Table I (coefficient-wise product)."""
        self._check(other)
        return RingPoly(modmul_vec(self.coeffs, other.coeffs, self.q), self.q)

    # -- Table I PPU operations ----------------------------------------------

    def rev(self) -> "RingPoly":
        return RingPoly(rev(self.coeffs, self.q), self.q)

    def multmono(self, exponent: int) -> "RingPoly":
        return RingPoly(monomial_multiply(self.coeffs, exponent, self.q), self.q)

    def shiftneg(self, s: int) -> "RingPoly":
        return RingPoly(shiftneg(self.coeffs, s, self.q), self.q)

    def automorph(self, k: int) -> "RingPoly":
        return RingPoly(automorph(self.coeffs, k, self.q), self.q)

    # -- evaluation / misc -----------------------------------------------------

    def evaluate(self, x: int) -> int:
        """Horner evaluation at an integer point (testing aid)."""
        acc = 0
        for c in self.coeffs[::-1]:
            acc = (acc * x + int(c)) % self.q
        return acc

    def inverse_scalar(self, s: int) -> "RingPoly":
        """Multiply by ``s^{-1} mod q``."""
        return self.scalar_mul(modinv(s, self.q))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RingPoly)
            and self.q == other.q
            and np.array_equal(self.coeffs, other.coeffs)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash unused
        return id(self)

    def __repr__(self) -> str:
        head = ", ".join(str(int(c)) for c in self.coeffs[:4])
        return f"RingPoly(n={self.n}, q={self.q}, coeffs=[{head}, ...])"
