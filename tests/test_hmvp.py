"""Tests for the core contribution: Algorithm 1 HMVP and tiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hmvp import HmvpOpCount, TiledHmvp, hmvp


def matmul_obj(a, v):
    return a.astype(object) @ v.astype(object)


@pytest.mark.parametrize("m", [1, 2, 3, 7, 16])
def test_hmvp_correctness(scheme128, rng, m):
    a = rng.integers(-100, 100, (m, 128))
    v = rng.integers(-100, 100, 128)
    res = hmvp(scheme128, a, scheme128.encrypt_vector(v))
    assert np.array_equal(res.decrypt(scheme128), matmul_obj(a, v))


def test_hmvp_short_rows(scheme128, rng):
    a = rng.integers(-100, 100, (4, 60))  # n < ring degree
    v = rng.integers(-100, 100, 60)
    ct = scheme128.encrypt_vector(v)
    res = hmvp(scheme128, a, ct)
    assert np.array_equal(res.decrypt(scheme128), matmul_obj(a, v))


def test_hmvp_rejects_oversized(scheme128, rng):
    with pytest.raises(ValueError, match="TiledHmvp"):
        hmvp(scheme128, np.zeros((129, 128)), scheme128.encrypt_vector([1]))
    with pytest.raises(ValueError):
        hmvp(scheme128, np.zeros(128), scheme128.encrypt_vector([1]))


def test_hmvp_op_counts(scheme128, rng):
    a = rng.integers(-10, 10, (8, 128))
    v = rng.integers(-10, 10, 128)
    res = hmvp(scheme128, a, scheme128.encrypt_vector(v))
    ops = res.ops
    assert ops.dot_products == 8
    assert ops.extracts == 8
    assert ops.pack_reductions == 7
    assert ops.keyswitches == 7
    assert ops.automorphisms == 7
    # 3 plaintext limbs per row + 6 one-off ciphertext transforms, plus
    # the pack key-switch transforms
    assert ops.ntts == 8 * 3 + 6 + 7 * 2 * 3


def test_op_count_addition():
    a = HmvpOpCount(rows=1, ntts=5)
    b = HmvpOpCount(rows=2, ntts=7, keyswitches=1)
    c = a + b
    assert c.rows == 3 and c.ntts == 12 and c.keyswitches == 1


def test_tiled_column_and_row_counts(scheme128):
    tiler = TiledHmvp(scheme128)
    assert tiler.column_tiles(128) == 1
    assert tiler.column_tiles(129) == 2
    assert tiler.row_tiles(257) == 3


def test_tiled_wide_matrix(scheme128, rng):
    """n > N: partial dot products aggregate as LWE additions."""
    a = rng.integers(-50, 50, (6, 300))
    v = rng.integers(-50, 50, 300)
    tiler = TiledHmvp(scheme128)
    got = tiler(a, v)
    assert np.array_equal(got, matmul_obj(a, v))


def test_tiled_tall_matrix(scheme128, rng):
    """m > N: multiple packed outputs."""
    a = rng.integers(-20, 20, (150, 64))
    v = rng.integers(-20, 20, 64)
    tiler = TiledHmvp(scheme128)
    ct_tiles = tiler.encrypt_vector(v)
    res = tiler.multiply(a, ct_tiles)
    assert len(res.packs) == 2
    assert np.array_equal(res.decrypt(scheme128), matmul_obj(a, v))


def test_tiled_records_lwe_additions(scheme128, rng):
    a = rng.integers(-10, 10, (3, 256))
    v = rng.integers(-10, 10, 256)
    tiler = TiledHmvp(scheme128)
    res = tiler.multiply(a, tiler.encrypt_vector(v))
    assert res.ops.lwe_additions == 3  # one extra tile of 3 rows


def test_tiled_rows_per_pack(scheme128, rng):
    a = rng.integers(-10, 10, (8, 32))
    v = rng.integers(-10, 10, 32)
    tiler = TiledHmvp(scheme128)
    res = tiler.multiply(a, tiler.encrypt_vector(v), rows_per_pack=4)
    assert len(res.packs) == 2
    assert np.array_equal(res.decrypt(scheme128), matmul_obj(a, v))
    with pytest.raises(ValueError):
        tiler.multiply(a, tiler.encrypt_vector(v), rows_per_pack=256)


def test_tiled_tile_count_mismatch(scheme128, rng):
    tiler = TiledHmvp(scheme128)
    a = rng.integers(-10, 10, (3, 256))
    single = tiler.encrypt_vector(np.zeros(128, dtype=np.int64))
    with pytest.raises(ValueError, match="vector tiles"):
        tiler.multiply(a, single)


def test_hmvp_matches_plain_reference_property(scheme128):
    @given(
        m=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=8, deadline=None)
    def inner(m, seed):
        r = np.random.default_rng(seed)
        a = r.integers(-30, 30, (m, 128))
        v = r.integers(-30, 30, 128)
        res = hmvp(scheme128, a, scheme128.encrypt_vector(v))
        assert np.array_equal(res.decrypt(scheme128), matmul_obj(a, v))

    inner()
