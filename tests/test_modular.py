"""Unit and property tests for repro.math.modular."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math.modular import (
    MAX_MODULUS_BITS,
    LowHammingModulus,
    center_lift,
    decompose_low_hamming,
    hamming_weight,
    modadd_vec,
    modinv,
    modmul_vec,
    modmul_scalar_vec,
    modneg_vec,
    modpow,
    modsub_vec,
    reduce_signed_vec,
)
from repro.math.primes import CHAM_P, CHAM_Q0, CHAM_Q1

MODULI = [17, 12289, CHAM_Q0, CHAM_Q1, CHAM_P, (1 << 41) - 21]


@pytest.mark.parametrize("q", MODULI)
def test_modadd_matches_bigint(q, rng):
    a = rng.integers(0, q, 257, dtype=np.uint64)
    b = rng.integers(0, q, 257, dtype=np.uint64)
    got = modadd_vec(a, b, q)
    want = (a.astype(object) + b.astype(object)) % q
    assert np.array_equal(got.astype(object), want)


@pytest.mark.parametrize("q", MODULI)
def test_modsub_matches_bigint(q, rng):
    a = rng.integers(0, q, 257, dtype=np.uint64)
    b = rng.integers(0, q, 257, dtype=np.uint64)
    got = modsub_vec(a, b, q)
    want = (a.astype(object) - b.astype(object)) % q
    assert np.array_equal(got.astype(object), want)


@pytest.mark.parametrize("q", MODULI)
def test_modmul_matches_bigint(q, rng):
    a = rng.integers(0, q, 257, dtype=np.uint64)
    b = rng.integers(0, q, 257, dtype=np.uint64)
    got = modmul_vec(a, b, q)
    want = (a.astype(object) * b.astype(object)) % q
    assert np.array_equal(got.astype(object), want)


@pytest.mark.parametrize("q", MODULI)
def test_modmul_extreme_operands(q):
    """q-1 squared is the worst case for intermediate overflow."""
    a = np.array([q - 1, q - 1, 0, 1], dtype=np.uint64)
    b = np.array([q - 1, 1, q - 1, q - 1], dtype=np.uint64)
    got = modmul_vec(a, b, q)
    want = (a.astype(object) * b.astype(object)) % q
    assert np.array_equal(got.astype(object), want)


def test_modmul_rejects_oversized_modulus():
    with pytest.raises(ValueError, match="bits"):
        modmul_vec(np.array([1], np.uint64), np.array([1], np.uint64), 1 << 42)


def test_modneg():
    q = CHAM_Q0
    a = np.array([0, 1, q - 1], dtype=np.uint64)
    got = modneg_vec(a, q)
    assert list(got) == [0, q - 1, 1]


def test_modmul_scalar(rng):
    q = CHAM_Q1
    a = rng.integers(0, q, 64, dtype=np.uint64)
    got = modmul_scalar_vec(a, 123456789, q)
    want = (a.astype(object) * 123456789) % q
    assert np.array_equal(got.astype(object), want)


def test_modmul_scalar_negative_and_np_integer(rng):
    """Regression: negative and ``np.integer`` scalars must normalize
    exactly once into [0, q) — the old path double-reduced ``np.int64``
    inputs and crashed on negatives with an opaque cast error."""
    q = CHAM_Q1
    a = rng.integers(0, q, 64, dtype=np.uint64)
    for s in (-123456789, np.int64(-5), np.int64(7), -1, q - 1, -(q + 3)):
        got = modmul_scalar_vec(a, s, q)
        want = (a.astype(object) * (int(s) % q)) % q
        assert np.array_equal(got.astype(object), want), s


def test_modmul_scalar_rejects_non_integer():
    a = np.array([1, 2], dtype=np.uint64)
    for bad in (1.5, True, "3", None):
        with pytest.raises(TypeError, match="integer scalar"):
            modmul_scalar_vec(a, bad, CHAM_Q0)


def test_modmul_metrics_count_broadcast_result(rng):
    """Regression: the coefficient counter must report the *broadcast*
    result size — ``max(a.size, b.size)`` undercounted a ``(L, 1, n) x
    (L, rows, n)`` product by a factor of ``rows``."""
    from repro.obs.metrics import REGISTRY

    q = CHAM_Q0
    a = rng.integers(0, q, (3, 1, 16), dtype=np.uint64)
    b = rng.integers(0, q, (3, 5, 16), dtype=np.uint64)
    REGISTRY.enabled = True
    before = REGISTRY.snapshot()["counters"].get("math.modmul.coefficients", 0)
    modmul_vec(a, b, q)
    after = REGISTRY.snapshot()["counters"]["math.modmul.coefficients"]
    assert after - before == 3 * 5 * 16


def test_modpow_and_modinv():
    q = CHAM_Q0
    assert modpow(3, q - 1, q) == 1  # Fermat
    x = 987654321
    assert (modinv(x, q) * x) % q == 1
    with pytest.raises(ZeroDivisionError):
        modinv(0, q)
    with pytest.raises(ValueError):
        modinv(6, 9)  # gcd != 1


def test_center_lift():
    q = 17
    assert center_lift(0, q) == 0
    assert center_lift(8, q) == 8
    assert center_lift(9, q) == -8
    assert center_lift(16, q) == -1


def test_reduce_signed_vec():
    q = 97
    a = np.array([-1, -96, 98, 0], dtype=object)
    assert list(reduce_signed_vec(a, q)) == [96, 1, 1, 0]


# -- low-Hamming-weight reduction (Section IV-A3) ------------------------------


@pytest.mark.parametrize("q", [CHAM_Q0, CHAM_Q1, CHAM_P])
def test_cham_moduli_have_weight_three(q):
    assert hamming_weight(q) == 3


def test_decompose_low_hamming():
    assert decompose_low_hamming(CHAM_Q0) == [34, 27, 0]
    assert decompose_low_hamming(CHAM_Q1) == [34, 19, 0]
    assert decompose_low_hamming(CHAM_P) == [38, 23, 0]


@pytest.mark.parametrize("q", [CHAM_Q0, CHAM_Q1, CHAM_P])
def test_low_hamming_reduce_matches_mod(q, rng):
    lhm = LowHammingModulus(q)
    for _ in range(200):
        x = int(rng.integers(0, 1 << 63)) * int(rng.integers(0, 1 << 15))
        assert lhm.reduce(x) == x % q


@pytest.mark.parametrize("q", [CHAM_Q0, CHAM_P])
def test_low_hamming_mulmod(q, rng):
    lhm = LowHammingModulus(q)
    for _ in range(100):
        a = int(rng.integers(0, q))
        b = int(rng.integers(0, q))
        assert lhm.mulmod(a, b) == a * b % q


def test_low_hamming_accepts_weight_three_prime():
    # 12289 = 2^12 + 2^13 + 1 also has weight three (the Kyber prime)
    assert LowHammingModulus(12289).exponents == [13, 12, 0]


def test_low_hamming_rejects_generic_prime():
    with pytest.raises(ValueError, match="Hamming"):
        LowHammingModulus(1000003)


def test_low_hamming_rejects_even_modulus():
    with pytest.raises(ValueError):
        LowHammingModulus(2**10 + 2**5 + 2)


def test_low_hamming_shift_add_count_monotone():
    lhm = LowHammingModulus(CHAM_Q0)
    narrow = lhm.shift_add_count(35)
    wide = lhm.shift_add_count(70)
    assert narrow <= wide
    assert wide >= 3  # a double-width product needs several folds


def test_fold_once_preserves_residue():
    lhm = LowHammingModulus(CHAM_Q0)
    x = (CHAM_Q0 - 1) ** 2
    assert lhm.fold_once(x) % CHAM_Q0 == x % CHAM_Q0


# -- hypothesis property tests ---------------------------------------------------


@given(
    a=st.integers(min_value=0, max_value=CHAM_P - 1),
    b=st.integers(min_value=0, max_value=CHAM_P - 1),
)
@settings(max_examples=200, deadline=None)
def test_modmul_property(a, b):
    got = modmul_vec(np.array([a], np.uint64), np.array([b], np.uint64), CHAM_P)
    assert int(got[0]) == a * b % CHAM_P


@given(
    a=st.integers(min_value=0, max_value=(1 << MAX_MODULUS_BITS) - 1),
    b=st.integers(min_value=0, max_value=(1 << MAX_MODULUS_BITS) - 1),
)
@settings(max_examples=200, deadline=None)
def test_modmul_property_max_width(a, b):
    q = (1 << 41) - 21  # largest supported width
    a %= q
    b %= q
    got = modmul_vec(np.array([a], np.uint64), np.array([b], np.uint64), q)
    assert int(got[0]) == a * b % q


@given(x=st.integers(min_value=0, max_value=(1 << 78) - 1))
@settings(max_examples=200, deadline=None)
def test_low_hamming_reduce_property(x):
    lhm = LowHammingModulus(CHAM_P)
    assert lhm.reduce(x) == x % CHAM_P


# -- generic Barrett reduction (the §IV-A3 ablation counterpart) -----------------


@pytest.mark.parametrize("q", [12289, CHAM_Q0, CHAM_P, 1000003])
def test_barrett_matches_mod(q, rng):
    from repro.math.modular import BarrettReducer

    br = BarrettReducer(q)
    for _ in range(300):
        x = int(rng.integers(0, q)) * int(rng.integers(0, q))
        assert br.reduce(x) == x % q


def test_barrett_agrees_with_low_hamming(rng):
    from repro.math.modular import BarrettReducer

    br = BarrettReducer(CHAM_Q1)
    lh = LowHammingModulus(CHAM_Q1)
    for _ in range(200):
        a = int(rng.integers(0, CHAM_Q1))
        b = int(rng.integers(0, CHAM_Q1))
        assert br.mulmod(a, b) == lh.mulmod(a, b)


def test_barrett_input_domain():
    from repro.math.modular import BarrettReducer

    br = BarrettReducer(97)
    with pytest.raises(ValueError):
        br.reduce(-1)
    with pytest.raises(ValueError):
        br.reduce(97 * 97)
    assert br.reduce(97 * 97 - 1) == (97 * 97 - 1) % 97


def test_barrett_rejects_even_modulus():
    from repro.math.modular import BarrettReducer

    with pytest.raises(ValueError):
        BarrettReducer(100)
