"""Tests for the lock-order / worker-thread analysis (REPRO210/211).

Fixture layers:

* REPRO210 — opposite-order ``with`` nests, cycles assembled across
  helper calls, self-deadlock on re-acquiring a held ``Lock`` (directly
  and through a call), and the RLock/consistent-order clean cases;
* REPRO211 — unguarded writes reached through every spawn shape the
  serving stack uses (``Thread(target=)``, ``pool.submit``,
  ``pool.map`` with a lambda, ``loop.run_in_executor`` bridged through
  ``obs.run_with_context``), plus guarded/noqa/clean variants;
* the ISSUE-9 satellite: the cross-cache migration path
  (``ClusterController`` driving ``EncodedMatrixCache.install``) is
  **clean** — the controller advances on the executor's main thread and
  every cache mutation happens under the cache lock.  The regression
  test pins that verdict against the real tree and asserts the
  worker-reachability analysis actually traced the serve/batch spawn
  chain (a vacuously-empty call graph would also report "clean").
"""

from pathlib import Path

import pytest

from repro.analysis import get_rules, lint_paths, lint_source
from repro.analysis.core import SourceFile, iter_python_files
from repro.analysis.locks import analyze_project

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def run_rule(rule_id, text):
    return lint_source(text, rules=get_rules([rule_id]))


def fired(rule_id, text):
    return [d.line for d in run_rule(rule_id, text)]


# ---------------------------------------------------------------------------
# REPRO210: lock ordering


class TestLockOrderCycle:
    def test_fires_on_opposite_order_with_nests(self):
        text = (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def f():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
            "def g():\n"
            "    with B:\n"
            "        with A:\n"
            "            pass\n"
        )
        assert len(run_rule("REPRO210", text)) == 1

    def test_fires_on_cycle_through_helper_calls(self):
        text = (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def hold_a_then_b():\n"
            "    with A:\n"
            "        take_b()\n"
            "def take_b():\n"
            "    with B:\n"
            "        pass\n"
            "def hold_b_then_a():\n"
            "    with B:\n"
            "        take_a()\n"
            "def take_a():\n"
            "    with A:\n"
            "        pass\n"
        )
        assert len(run_rule("REPRO210", text)) == 1

    def test_fires_on_self_deadlock_through_call(self):
        text = (
            "import threading\n"
            "class T:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        assert len(run_rule("REPRO210", text)) == 1

    def test_fires_on_directly_nested_reacquire(self):
        text = (
            "import threading\n"
            "class T:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            with self._lock:\n"
            "                pass\n"
        )
        assert fired("REPRO210", text) == [7]

    def test_rlock_reentry_is_clean(self):
        text = (
            "import threading\n"
            "class T:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self.inner()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        assert fired("REPRO210", text) == []

    def test_consistent_order_is_clean(self):
        text = (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def f():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
            "def g():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n"
        )
        assert fired("REPRO210", text) == []

    def test_explicit_acquire_release_pairs_are_tracked(self):
        text = (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def f():\n"
            "    A.acquire()\n"
            "    with B:\n"
            "        pass\n"
            "    A.release()\n"
            "def g():\n"
            "    with B:\n"
            "        A.acquire()\n"
            "        A.release()\n"
        )
        assert len(run_rule("REPRO210", text)) == 1

    def test_release_before_next_acquire_is_clean(self):
        text = (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def f():\n"
            "    A.acquire()\n"
            "    A.release()\n"
            "    with B:\n"
            "        pass\n"
            "def g():\n"
            "    with B:\n"
            "        pass\n"
            "    A.acquire()\n"
            "    A.release()\n"
        )
        assert fired("REPRO210", text) == []

    def test_noqa_suppresses(self):
        text = (
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.Lock()\n"
            "def f():\n"
            "    with A:\n"
            "        with B:  # repro: noqa REPRO210\n"
            "            pass\n"
            "def g():\n"
            "    with B:\n"
            "        with A:\n"
            "            pass\n"
        )
        # the cycle is reported at its smallest edge site; whichever
        # line that is, suppressing it must silence the finding when it
        # lands there and the unsuppressed line still reports otherwise
        diags = run_rule("REPRO210", text)
        assert all(d.line != 6 for d in diags)


class TestLockGraph:
    def test_edges_and_lock_table_are_exposed(self):
        src = SourceFile(
            "import threading\n"
            "A = threading.Lock()\n"
            "B = threading.RLock()\n"
            "def f():\n"
            "    with A:\n"
            "        with B:\n"
            "            pass\n",
            "m.py",
        )
        analysis = analyze_project([src])
        assert analysis.locks["m.py::A"] is False
        assert analysis.locks["m.py::B"] is True
        assert ("m.py::A", "m.py::B") in analysis.edges


# ---------------------------------------------------------------------------
# REPRO211: unguarded writes on worker-reachable paths


_CACHE_PREAMBLE = (
    "import threading\n"
    "class Cache:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self.hits = 0\n"
)


class TestUnguardedSharedWrite:
    def test_fires_via_thread_target(self):
        text = _CACHE_PREAMBLE + (
            "    def bump(self):\n"
            "        self.hits += 1\n"
            "def main(cache: Cache):\n"
            "    threading.Thread(target=cache.bump).start()\n"
        )
        assert fired("REPRO211", text) == [7]

    def test_fires_via_pool_submit(self):
        text = _CACHE_PREAMBLE + (
            "    def bump(self):\n"
            "        self.hits += 1\n"
            "def main(pool, cache: Cache):\n"
            "    pool.submit(cache.bump)\n"
        )
        assert fired("REPRO211", text) == [7]

    def test_fires_via_pool_map_lambda_bridge(self):
        # the exact shape multiply_batch uses: a lambda wrapping
        # obs.run_with_context(ctx, self._row_tile_pack, ...)
        text = _CACHE_PREAMBLE + (
            "    def bump(self, task):\n"
            "        self.hits += 1\n"
            "def main(pool, cache: Cache, ctx, tasks):\n"
            "    pool.map(lambda t: run_with_context(ctx, cache.bump, t),\n"
            "             tasks)\n"
        )
        assert fired("REPRO211", text) == [7]

    def test_fires_via_run_in_executor_bridge(self):
        # the serve/server.py shape: loop.run_in_executor(pool,
        # run_with_context, ctx, engine.multiply_batch, args)
        text = _CACHE_PREAMBLE + (
            "    def bump(self, arg):\n"
            "        self.hits += 1\n"
            "async def main(loop, pool, cache: Cache, ctx, arg):\n"
            "    await loop.run_in_executor(\n"
            "        pool, run_with_context, ctx, cache.bump, arg)\n"
        )
        assert fired("REPRO211", text) == [7]

    def test_fires_transitively_through_helpers(self):
        text = _CACHE_PREAMBLE + (
            "    def bump(self):\n"
            "        self.hits += 1\n"
            "    def entry(self):\n"
            "        self.bump()\n"
            "def main(cache: Cache):\n"
            "    threading.Thread(target=cache.entry).start()\n"
        )
        assert fired("REPRO211", text) == [7]

    def test_guarded_write_is_clean(self):
        text = _CACHE_PREAMBLE + (
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self.hits += 1\n"
            "def main(cache: Cache):\n"
            "    threading.Thread(target=cache.bump).start()\n"
        )
        assert fired("REPRO211", text) == []

    def test_caller_held_lock_guards_the_callee(self):
        # the lock is taken one frame up: intersection propagation must
        # see it held on every path into the writer
        text = _CACHE_PREAMBLE + (
            "    def bump(self):\n"
            "        self.hits += 1\n"
            "    def entry(self):\n"
            "        with self._lock:\n"
            "            self.bump()\n"
            "def main(cache: Cache):\n"
            "    threading.Thread(target=cache.entry).start()\n"
        )
        assert fired("REPRO211", text) == []

    def test_write_not_reachable_from_workers_is_clean(self):
        # same unguarded write, but only ever called on the main
        # thread: the single-threaded path is not a data race
        text = _CACHE_PREAMBLE + (
            "    def bump(self):\n"
            "        self.hits += 1\n"
            "def main(cache: Cache):\n"
            "    cache.bump()\n"
        )
        assert fired("REPRO211", text) == []

    def test_lockless_class_is_never_flagged(self):
        # no lock attribute -> the class never declared its attributes
        # shared; flagging it would drown real findings
        text = (
            "import threading\n"
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            "    def bump(self):\n"
            "        self.n += 1\n"
            "def main(p: Plain):\n"
            "    threading.Thread(target=p.bump).start()\n"
        )
        assert fired("REPRO211", text) == []

    def test_constructor_writes_are_exempt(self):
        text = _CACHE_PREAMBLE + (
            "def build():\n"
            "    return Cache()\n"
            "def main(pool):\n"
            "    pool.submit(build)\n"
        )
        assert fired("REPRO211", text) == []

    def test_noqa_suppresses(self):
        text = _CACHE_PREAMBLE + (
            "    def bump(self):\n"
            "        self.hits += 1  # repro: noqa REPRO211\n"
            "def main(cache: Cache):\n"
            "    threading.Thread(target=cache.bump).start()\n"
        )
        assert fired("REPRO211", text) == []


# ---------------------------------------------------------------------------
# the ISSUE-9 satellite: cross-cache migration verdict, pinned


class TestMigrationVerdict:
    """`ClusterController` / `EncodedMatrixCache.install` is clean.

    The hazard under suspicion: scale events migrate encoded entries
    between node caches while executor worker threads serve requests
    from those caches.  The analysis verdict is CLEAN because (a) the
    controller's `advance` runs on the executor's request loop (main
    thread), never on a pool worker, and (b) every `EncodedMatrixCache`
    mutation (`peek`/`install`/`get_or_encode`/`clear`) takes
    `self._lock`.  These tests pin both halves so a refactor that moves
    migration onto a worker, or adds an unlocked cache write, fails.
    """

    @pytest.fixture(scope="class")
    def project(self):
        sources = [
            SourceFile.from_path(p, root=SRC.parents[1])
            for p in iter_python_files([SRC])
        ]
        return analyze_project(sources)

    def test_real_tree_is_clean_under_lock_rules(self):
        diags = lint_paths(
            [SRC],
            rules=get_rules(["REPRO210", "REPRO211"]),
            root=SRC.parents[1],
        )
        assert diags == [], "\n".join(d.format() for d in diags)

    def test_worker_reachability_traced_the_serving_stack(self, project):
        # guard against a vacuous verdict: both spawn chains (the
        # batch pool.map lambda and the serve run_in_executor bridge)
        # must have been resolved into the kernel call graph
        reached = project.worker_reachable
        assert any(
            key.endswith("BatchedHmvp._row_tile_pack") for key in reached
        ), sorted(reached)
        assert any(
            key.endswith("BatchedHmvp.multiply_batch") for key in reached
        ), sorted(reached)
        # and the reachable set crosses into the HE kernel layer
        assert any("src/repro/he/" in key for key in reached)

    def test_lock_table_covers_the_known_locks(self, project):
        assert {
            "EncodedMatrixCache._lock",
            "Tracer._lock",
            "MetricsRegistry._lock",
            "Counter._lock",
            "Histogram._lock",
        } <= set(project.locks)

    def test_no_lock_order_edges_in_the_tree(self, project):
        # every lock in src/repro is a leaf: nothing is acquired while
        # another lock is held, so ordering deadlocks are impossible by
        # construction — pin that structural property
        assert project.edges == {}

    def test_migration_shape_fires_when_made_hazardous(self):
        # the counterfactual: put the install counter OUTSIDE the lock
        # and drive migration from a pool worker — the rule must fire
        # (this is the bug class the satellite asked the analysis to
        # check the real migration path for)
        text = (
            "import threading\n"
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._entries = {}\n"
            "        self.installs = 0\n"
            "    def install(self, key, entry):\n"
            "        with self._lock:\n"
            "            self._entries[key] = entry\n"
            "        self.installs += 1\n"
            "class Controller:\n"
            "    def migrate(self, source: Cache, target: Cache, key):\n"
            "        target.install(key, source)\n"
            "def main(pool, ctl: Controller, a: Cache, b: Cache, key):\n"
            "    pool.submit(ctl.migrate, a, b, key)\n"
        )
        assert fired("REPRO211", text) == [10]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
