"""Tests for the FPGA resource model against Tables II and III."""

import pytest

from repro.hw.arch import ChamConfig, EngineConfig, NttUnitConfig, VU9P, cham_default_config
from repro.hw.resources import (
    ResourceVector,
    TABLE2_REFERENCE,
    TABLE3_NTT_VARIANTS,
    engine_resources,
    ntt_unit_resources,
    platform_resources,
    total_resources,
    utilization,
)

#: Table II bottom row
PAPER_UTIL = {"LUT": 63.68, "FF": 20.41, "BRAM": 72.13, "URAM": 61.98, "DSP": 29.04}


def test_ntt_unit_matches_table3_variants():
    for memory, (lut, bram) in TABLE3_NTT_VARIANTS.items():
        vec = ntt_unit_resources(NttUnitConfig(memory=memory))
        assert vec.lut == lut
        assert vec.bram == bram


def test_ntt_unit_rejects_unknown_memory():
    with pytest.raises(ValueError):
        ntt_unit_resources(NttUnitConfig(memory="hbm"))


def test_dram_variant_trades_bram_for_lut():
    """Table III: dRAM variants remove BRAM at a LUT cost (ATP 1x->2.78x)."""
    bram_only = ntt_unit_resources(NttUnitConfig(memory="bram"))
    hybrid = ntt_unit_resources(NttUnitConfig(memory="bram+dram"))
    dram_only = ntt_unit_resources(NttUnitConfig(memory="dram"))
    assert bram_only.lut < hybrid.lut < dram_only.lut
    assert bram_only.bram > hybrid.bram > dram_only.bram == 0


def test_engine_matches_table2_within_tolerance():
    got = engine_resources(EngineConfig())
    ref = TABLE2_REFERENCE["Compute Engine 0"]
    for name in ("lut", "ff", "bram", "uram", "dsp"):
        g, r = getattr(got, name), getattr(ref, name)
        assert abs(g - r) / max(r, 1) < 0.02, (name, g, r)


def test_total_utilization_matches_table2():
    util = utilization(total_resources(cham_default_config()))
    for key, want in PAPER_UTIL.items():
        assert util[key] == pytest.approx(want, abs=1.0), key


def test_platform_is_table2_row():
    assert platform_resources() == TABLE2_REFERENCE["Platform"]


def test_resource_vector_arithmetic():
    a = ResourceVector(1, 2, 3, 4, 5)
    b = ResourceVector(10, 20, 30, 40, 50)
    assert (a + b).lut == 11
    assert a.scale(3).dsp == 15
    assert a.as_dict()["BRAM"] == 3


def test_fits_honors_cap():
    small = ResourceVector(lut=100, ff=100, bram=1, uram=1, dsp=1)
    assert small.fits(VU9P)
    huge = ResourceVector(lut=2 * VU9P.luts)
    assert not huge.fits(VU9P)
    edge = ResourceVector(lut=int(VU9P.luts * 0.8))
    assert edge.fits(VU9P)
    assert not edge.fits(VU9P, max_util=0.75)


def test_barrett_ablation_costs_dsps():
    """Section IV-A3 ablation: generic Barrett reduction doubles the DSP
    bill of every butterfly and burns extra LUT carry logic."""
    lh = ntt_unit_resources(NttUnitConfig())
    barrett = ntt_unit_resources(NttUnitConfig(), barrett=True)
    assert barrett.dsp == 2 * lh.dsp
    assert barrett.lut > lh.lut


def test_barrett_whole_design_still_fits_but_hotter():
    cfg = cham_default_config()
    lh = total_resources(cfg)
    barrett = total_resources(cfg, barrett=True)
    assert barrett.dsp > lh.dsp
    assert utilization(barrett)["DSP"] > utilization(lh)["DSP"]


def test_dsp_scale_with_bfus():
    small = ntt_unit_resources(NttUnitConfig(n_bfu=2))
    big = ntt_unit_resources(NttUnitConfig(n_bfu=8))
    assert big.dsp == 4 * small.dsp


def test_more_engines_more_resources():
    one = total_resources(ChamConfig(engines=1))
    two = total_resources(ChamConfig(engines=2))
    assert two.lut > one.lut
    assert two.dsp - one.dsp == engine_resources(EngineConfig()).dsp
