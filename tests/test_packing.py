"""Tests for PACKTWOLWES / PACKLWES (Algorithms 2 and 3)."""

import numpy as np
import pytest

from repro.he.encoder import CoefficientEncoder
from repro.he.lwe import extract_lwe
from repro.he.noise import invariant_noise_budget, packed_slot_positions
from repro.he.packing import (
    pack_lwes,
    pack_lwes_batched,
    pack_reduction_count,
    pack_two_lwes,
)
from repro.he.rlwe import encrypt


@pytest.fixture(scope="module")
def enc(params128):
    return CoefficientEncoder(params128)


def make_lwes(ctx, sk, enc, values, rng):
    """One LWE per value, each extracted from a fresh RLWE ciphertext."""
    out = []
    for v in values:
        coeffs = rng.integers(-1000, 1000, 128)
        coeffs[0] = v
        ct = encrypt(ctx, sk, enc.encode_coeffs(coeffs), augmented=False)
        out.append(extract_lwe(ct, 0))
    return out


@pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 8, 16, 128])
def test_pack_roundtrip(ctx128, sk128, galois128, enc, rng, count):
    values = [int(v) for v in rng.integers(-1000, 1000, count)]
    lwes = make_lwes(ctx128, sk128, enc, values, rng)
    packed = pack_lwes(lwes, galois128)
    from repro.he.rlwe import decrypt

    pt = decrypt(ctx128, sk128, packed.ct)
    got = enc.decode_packed(pt, count, packed.scale_pow2)
    assert [int(x) for x in got] == values


@pytest.mark.parametrize("count,expected", [(1, 0), (2, 1), (3, 3), (4, 3), (5, 7), (4096, 4095)])
def test_reduction_count(count, expected):
    """The paper: 'Totally 4095 reductions are required to pack 4096'."""
    assert pack_reduction_count(count) == expected


def test_pack_reports_actual_reductions(ctx128, sk128, galois128, enc, rng):
    lwes = make_lwes(ctx128, sk128, enc, [1, 2, 3, 4, 5], rng)
    packed = pack_lwes(lwes, galois128)
    assert packed.reductions == pack_reduction_count(5) == 7
    assert packed.count == 5
    assert packed.scale_pow2 == 3


def test_pack_slot_stride(ctx128, sk128, galois128, enc, rng):
    lwes = make_lwes(ctx128, sk128, enc, [1, 2, 3, 4], rng)
    packed = pack_lwes(lwes, galois128)
    assert packed.slot_stride == 128 // 4
    assert packed_slot_positions(128, 4) == [0, 32, 64, 96]


def test_pack_empty_raises(galois128):
    with pytest.raises(ValueError):
        pack_lwes([], galois128)


def test_pack_too_many_raises(ctx128, sk128, galois128, enc, rng):
    lwes = make_lwes(ctx128, sk128, enc, [0], rng) * 129
    with pytest.raises(ValueError, match="ring degree"):
        pack_lwes(lwes, galois128)


def test_pack_two_level_bound(ctx128, sk128, galois128, enc, rng):
    lwes = make_lwes(ctx128, sk128, enc, [1, 2], rng)
    from repro.he.lwe import lwe_to_rlwe

    a, b = lwe_to_rlwe(lwes[0]), lwe_to_rlwe(lwes[1])
    with pytest.raises(ValueError, match="level"):
        pack_two_lwes(8, a, b, galois128)  # 2^8 > n=128


def test_pack_scale_is_power_of_two_per_level(ctx128, sk128, galois128, enc, rng):
    """Each merge doubles the message: packing 2^k scales by exactly 2^k."""
    values = [17]
    lwes = make_lwes(ctx128, sk128, enc, values, rng)
    single = pack_lwes(lwes, galois128)
    assert single.scale_pow2 == 0

    values = [17, -5]
    lwes = make_lwes(ctx128, sk128, enc, values, rng)
    packed = pack_lwes(lwes, galois128)
    from repro.he.rlwe import decrypt

    pt = decrypt(ctx128, sk128, packed.ct)
    raw = pt.centered()
    assert raw[0] == 2 * 17  # undecoded slot carries the doubled value
    assert raw[64] == 2 * -5


def test_pack_budget_stays_positive(ctx128, sk128, galois128, enc, rng):
    """After a full 128-way pack the slot budget must still be healthy."""
    values = [int(v) for v in rng.integers(-1000, 1000, 128)]
    lwes = make_lwes(ctx128, sk128, enc, values, rng)
    packed = pack_lwes(lwes, galois128)
    pos = packed_slot_positions(128, 128)
    budget = invariant_noise_budget(ctx128, sk128, packed.ct, pos)
    assert budget > 5


def test_pack_zero_padding_is_exact(ctx128, sk128, galois128, enc, rng):
    """Non-power-of-two counts pad with transparent zeros; the padded
    slots decode to exactly zero."""
    values = [3, 1, 4]
    lwes = make_lwes(ctx128, sk128, enc, values, rng)
    packed = pack_lwes(lwes, galois128)
    from repro.he.rlwe import decrypt

    pt = decrypt(ctx128, sk128, packed.ct)
    got4 = enc.decode_packed(pt, 4, packed.scale_pow2)
    assert [int(x) for x in got4] == [3, 1, 4, 0]


def test_pack_reduction_count_validation():
    with pytest.raises(ValueError):
        pack_reduction_count(0)


# -- batched (vectorized level-order) pack -------------------------------------


@pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 8, 16])
def test_batched_pack_bit_identical(ctx128, sk128, galois128, enc, rng, count):
    """pack_lwes_batched must reproduce the recursive pack byte-for-byte:
    same merge tree, same slot order, same noise."""
    values = [int(v) for v in rng.integers(-1000, 1000, count)]
    lwes = make_lwes(ctx128, sk128, enc, values, rng)
    ref = pack_lwes(lwes, galois128)
    got = pack_lwes_batched(lwes, galois128)
    assert np.array_equal(got.ct.c0, ref.ct.c0)
    assert np.array_equal(got.ct.c1, ref.ct.c1)
    assert got.count == ref.count
    assert got.scale_pow2 == ref.scale_pow2
    assert got.reductions == ref.reductions == pack_reduction_count(count)


@pytest.mark.parametrize("count", [1, 3, 5, 16])
def test_batched_pack_decodes(ctx128, sk128, galois128, enc, rng, count):
    """Edge-case audit: m = 1 (no merge), non-power-of-two remainders
    (m = 3, 5, as left by a 4096-row matrix tiled into 128-row packs),
    and a full power of two all decode with the stride/scale implied by
    pack_reduction_count's level count."""
    values = [int(v) for v in rng.integers(-1000, 1000, count)]
    lwes = make_lwes(ctx128, sk128, enc, values, rng)
    packed = pack_lwes_batched(lwes, galois128)
    levels = max(count - 1, 0).bit_length()
    assert packed.scale_pow2 == levels
    assert packed.slot_stride == 128 >> levels
    from repro.he.rlwe import decrypt

    pt = decrypt(ctx128, sk128, packed.ct)
    got = enc.decode_packed(pt, count, packed.scale_pow2)
    assert [int(x) for x in got] == values


def test_batched_pack_empty_raises(galois128):
    with pytest.raises(ValueError):
        pack_lwes_batched([], galois128)


def test_batched_pack_too_many_raises(ctx128, sk128, galois128, enc, rng):
    lwes = make_lwes(ctx128, sk128, enc, [0], rng) * 129
    with pytest.raises(ValueError, match="ring degree"):
        pack_lwes_batched(lwes, galois128)


@pytest.mark.parametrize("reqs,count", [(1, 4), (3, 4), (4, 7)])
def test_pack_many_matches_per_request(ctx128, sk128, galois128, enc, rng, reqs, count):
    """Cross-request pack: pack_stacked_lwes_many must return, for every
    request, exactly the ciphertext pack_stacked_lwes yields when run on
    that request alone — the R pack trees share one level schedule but
    must not mix data across the request axis."""
    from repro.he.packing import pack_stacked_lwes, pack_stacked_lwes_many

    basis = ctx128.ct_basis
    b = np.stack(
        [
            np.stack(
                [rng.integers(0, q, count, dtype=np.uint64) for q in basis]
            )
            for _ in range(reqs)
        ],
        axis=1,
    )  # (L, R, m)
    a = np.stack(
        [
            np.stack(
                [rng.integers(0, q, (count, 128), dtype=np.uint64) for q in basis]
            )
            for _ in range(reqs)
        ],
        axis=1,
    )  # (L, R, m, n)
    many = pack_stacked_lwes_many(ctx128, basis, b, a, galois128)
    assert len(many) == reqs
    for r in range(reqs):
        one = pack_stacked_lwes(ctx128, basis, b[:, r], a[:, r], galois128)
        assert np.array_equal(many[r].ct.c0, one.ct.c0)
        assert np.array_equal(many[r].ct.c1, one.ct.c1)
        assert many[r].count == one.count == count
        assert many[r].scale_pow2 == one.scale_pow2
        assert many[r].reductions == one.reductions


def test_pack_many_rejects_flat_stack(ctx128, galois128):
    from repro.he.packing import pack_stacked_lwes_many

    basis = ctx128.ct_basis
    b = np.zeros((len(basis), 4), dtype=np.uint64)
    a = np.zeros((len(basis), 4, 128), dtype=np.uint64)
    with pytest.raises(ValueError, match=r"\(L, R, m\)"):
        pack_stacked_lwes_many(ctx128, basis, b, a, galois128)


def test_batched_keyswitch_matches_sequential(ctx128, sk128, galois128, rng):
    """key_switch_raw over a (L, batch, n) stack equals per-poly calls."""
    from repro.he.keyswitch import key_switch_raw

    g = next(iter(galois128.keys))
    ksk = galois128[g]
    basis = ctx128.ct_basis
    stack = np.stack(
        [
            np.stack(
                [rng.integers(0, q, 128, dtype=np.uint64) for q in basis]
            )
            for _ in range(4)
        ],
        axis=1,
    )  # (L, 4, n)
    d0_b, d1_b = key_switch_raw(ctx128, stack, ksk)
    for j in range(4):
        d0, d1 = key_switch_raw(ctx128, stack[:, j], ksk)
        assert np.array_equal(d0_b[:, j], d0)
        assert np.array_equal(d1_b[:, j], d1)
