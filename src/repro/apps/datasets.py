"""Synthetic datasets for the application-level experiments.

The paper evaluates HeteroLR on datasets of shape 2048×256 up to
8192×8192 (Fig. 7a/7b) from a production federated-learning deployment we
cannot access; :func:`make_vertical_dataset` generates a statistically
equivalent vertically-partitioned binary classification task (a logistic
ground-truth model over Gaussian features, split column-wise between the
two parties).  :func:`make_digit_images` provides small synthetic images
for the private-inference example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["VerticalDataset", "make_vertical_dataset", "make_digit_images"]


@dataclass
class VerticalDataset:
    """A vertically-partitioned binary classification dataset.

    Attributes
    ----------
    features_a, features_b:
        Party A's and party B's feature blocks (same rows, disjoint
        columns), standardized to roughly unit scale.
    labels:
        0/1 labels, held by party B (the *guest* in FATE terms).
    true_weights:
        The generating logistic model (for sanity checks only).
    """

    features_a: np.ndarray
    features_b: np.ndarray
    labels: np.ndarray
    true_weights: np.ndarray

    @property
    def n_samples(self) -> int:
        return self.features_a.shape[0]

    @property
    def n_features(self) -> int:
        return self.features_a.shape[1] + self.features_b.shape[1]

    @property
    def full_features(self) -> np.ndarray:
        return np.concatenate([self.features_a, self.features_b], axis=1)

    def batches(self, batch_size: int):
        """Yield ``(rows_slice, X_a, X_b, y)`` mini-batches in order."""
        for start in range(0, self.n_samples, batch_size):
            sl = slice(start, min(start + batch_size, self.n_samples))
            yield sl, self.features_a[sl], self.features_b[sl], self.labels[sl]


def make_vertical_dataset(
    n_samples: int,
    n_features: int,
    party_a_fraction: float = 0.5,
    noise: float = 0.5,
    seed: Optional[int] = 0,
) -> VerticalDataset:
    """Generate a separable-ish logistic task split between two parties."""
    if n_features < 2:
        raise ValueError("need at least two features to split")
    rng = np.random.default_rng(seed)
    x = rng.normal(0.0, 1.0, (n_samples, n_features))
    w = rng.normal(0.0, 1.0, n_features)
    w /= np.linalg.norm(w)
    logits = x @ w * 3.0 + rng.normal(0.0, noise, n_samples)
    y = (logits > 0).astype(np.int64)
    split = max(1, min(n_features - 1, int(round(n_features * party_a_fraction))))
    # clip features so fixed-point encodings stay well inside range
    x = np.clip(x, -4.0, 4.0)
    return VerticalDataset(
        features_a=x[:, :split],
        features_b=x[:, split:],
        labels=y,
        true_weights=w,
    )


def make_digit_images(
    count: int, size: int = 12, seed: Optional[int] = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Tiny synthetic two-class images (bright blob top-left vs bottom-right).

    Returns ``(images, labels)`` with integer pixel values in ``[0, 31]``,
    suitable for exact integer convolution tests and the inference demo.
    """
    rng = np.random.default_rng(seed)
    images = rng.integers(0, 8, (count, size, size))
    labels = rng.integers(0, 2, count)
    blob = size // 3
    for i in range(count):
        if labels[i] == 0:
            images[i, :blob, :blob] += 20
        else:
            images[i, -blob:, -blob:] += 20
    return np.clip(images, 0, 31), labels
