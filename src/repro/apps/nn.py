"""A small integer neural-network library with private evaluation.

Generalizes the two-layer Delphi demo to arbitrary sequential models —
the LeNet-style workloads the paper's introduction surveys (CryptoNets,
Gazelle, Cheetah).  Layers:

* :class:`ConvLayer` — valid 2-D convolution (one output channel per
  kernel), evaluated homomorphically in ONE ciphertext multiplication
  per kernel via the coefficient packing of :mod:`repro.core.conv`;
* :class:`LinearLayer` — dense matrix, evaluated as a CHAM HMVP;
* :class:`ReluLayer` / :class:`FlattenLayer` — structural layers run in
  the clear at the client (the MPC stand-in, as in
  :mod:`repro.apps.delphi`).

:class:`PrivateNetwork` drives a :class:`Sequential` model through the
Delphi offline/online split: every linear layer gets a correlation
``(r, L(r) - s, s)`` minted with real HE offline; the online phase
exchanges only masked cleartext shares.  Integer arithmetic end to end,
so private and clear evaluation agree exactly — the paper's "no
approximation error" argument for hybrid protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.conv import Conv2dEncoder, conv2d_reference, homomorphic_conv2d
from ..core.hmvp import TiledHmvp
from ..he.bfv import BfvScheme
from .protocol import Channel, Party

__all__ = [
    "ConvLayer",
    "LinearLayer",
    "ReluLayer",
    "FlattenLayer",
    "Sequential",
    "PrivateNetwork",
]


def _mod(x, t):
    return np.mod(np.asarray(x, dtype=object), t)


def _center(x, t):
    half = t // 2
    return np.where(x > half, x - t, x)


@dataclass
class ConvLayer:
    """Valid 2-D convolution with ``k`` kernels (output: k feature maps)."""

    kernels: np.ndarray  # (k, kh, kw) int

    is_linear = True

    def out_shape(self, in_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        h, w = in_shape
        _k, kh, kw = self.kernels.shape
        return (self.kernels.shape[0], h - kh + 1, w - kw + 1)

    def clear_forward(self, x: np.ndarray) -> np.ndarray:
        return np.stack(
            [conv2d_reference(x, k) for k in self.kernels]
        )

    def homomorphic(self, scheme: BfvScheme, x: np.ndarray) -> np.ndarray:
        """Evaluate on a cleartext input *homomorphically* (one encrypt,
        k ciphertext multiplications) — used to mint correlations."""
        h, w = x.shape
        _k, kh, kw = self.kernels.shape
        enc = Conv2dEncoder(scheme, h, w, kh, kw)
        ct = enc.encrypt_image(x)
        outs = []
        for kernel in self.kernels:
            res = homomorphic_conv2d(enc, ct, kernel)
            outs.append(enc.decode_output(scheme.decrypt_plaintext(res)))
        return np.stack(outs)


@dataclass
class LinearLayer:
    """Dense integer layer ``y = W x``."""

    weights: np.ndarray  # (out, in) int

    is_linear = True

    def out_shape(self, in_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.weights.shape[0],)

    def clear_forward(self, x: np.ndarray) -> np.ndarray:
        return self.weights.astype(object) @ np.asarray(x, dtype=object)

    def homomorphic(self, scheme: BfvScheme, x: np.ndarray) -> np.ndarray:
        tiler = TiledHmvp(scheme)
        return tiler(self.weights, np.asarray(x, dtype=np.int64))


@dataclass
class ReluLayer:
    is_linear = False

    def out_shape(self, in_shape):
        return in_shape

    def clear_forward(self, x):
        return np.maximum(np.asarray(x, dtype=object), 0)


@dataclass
class FlattenLayer:
    is_linear = False

    def out_shape(self, in_shape):
        total = 1
        for d in in_shape:
            total *= d
        return (total,)

    def clear_forward(self, x):
        return np.asarray(x, dtype=object).reshape(-1)


@dataclass
class Sequential:
    """An ordered integer model."""

    layers: List
    input_shape: Tuple[int, ...]

    def predict_clear(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=object)
        for layer in self.layers:
            out = layer.clear_forward(out)
        return out

    def shapes(self) -> List[Tuple[int, ...]]:
        """Input shape of every layer (index-aligned with ``layers``)."""
        shapes = [self.input_shape]
        for layer in self.layers:
            shapes.append(layer.out_shape(shapes[-1]))
        return shapes[:-1]


@dataclass
class _Correlation:
    r: np.ndarray
    c: np.ndarray  # L(r) - s  (client share)
    s: np.ndarray  # server share


@dataclass
class PrivateNetwork:
    """Delphi-style private evaluation of a :class:`Sequential` model.

    The client holds the key; the server holds the weights.  Offline,
    one HE pass per linear layer mints the correlation; online, masked
    cleartext shares flow through the channel (structural layers run at
    the client, where activations are reconstructed — the GC stand-in).
    """

    scheme: BfvScheme
    model: Sequential
    seed: Optional[int] = None
    channel: Channel = field(default_factory=lambda: Channel("nn"))

    def __post_init__(self) -> None:
        self.client = Party("client", self.channel)
        self.server = Party("server", self.channel)
        self.rng = np.random.default_rng(self.seed)
        self.t = self.scheme.params.plain_modulus
        self._correlations: List[Optional[_Correlation]] = []

    # -- offline -------------------------------------------------------------------

    def offline(self) -> None:
        self._correlations = []
        shapes = self.model.shapes()
        for layer, in_shape in zip(self.model.layers, shapes):
            if not layer.is_linear:
                self._correlations.append(None)
                continue
            r = self.rng.integers(-(1 << 10), 1 << 10, in_shape)
            # client ships [[r]]; the server evaluates under encryption.
            # homomorphic() folds encrypt/eval/decrypt into one call, so
            # the bytes are billed with account() at true ciphertext sizes
            from ..he.serialization import rlwe_wire_bytes

            n = self.scheme.params.n
            cts_up = -(-int(np.prod(in_shape)) // n)
            self.channel.account(
                "client", "server", "offline/enc_r",
                cts_up * rlwe_wire_bytes(n, self.scheme.ctx.aug_basis.moduli),
            )
            l_of_r = layer.homomorphic(self.scheme, r)
            s = self.rng.integers(0, self.t, l_of_r.shape, dtype=np.uint64).astype(object)
            c = _mod(np.asarray(l_of_r, dtype=object) - s, self.t)
            cts_down = -(-int(np.prod(l_of_r.shape)) // n)
            self.channel.account(
                "server", "client", "offline/blinded",
                cts_down * rlwe_wire_bytes(n, self.scheme.ctx.ct_basis.moduli),
            )
            self._correlations.append(_Correlation(r=r, c=c, s=s))

    # -- online ----------------------------------------------------------------------

    def online(self, x: np.ndarray) -> np.ndarray:
        if len(self._correlations) != len(self.model.layers):
            raise RuntimeError("run offline() first")
        t = self.t
        current = np.asarray(x, dtype=object)  # client-held activation
        for layer, corr in zip(self.model.layers, self._correlations):
            if not layer.is_linear:
                current = layer.clear_forward(current)
                continue
            masked = _mod(current - corr.r.astype(object), t)
            self.client.send(self.server, "online/masked", masked)
            x_minus_r = _center(self.server.recv("online/masked"), t)
            share = _mod(
                np.asarray(layer.clear_forward(x_minus_r), dtype=object) + corr.s,
                t,
            )
            self.server.send(self.client, "online/share", share)
            received = self.client.recv("online/share")
            current = _center(_mod(received + corr.c, t), t)
        return current

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Offline-once-then-online convenience."""
        if not self._correlations:
            self.offline()
        return self.online(x)
