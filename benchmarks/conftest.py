"""Shared fixtures and reporting helpers for the benchmark harness.

Every ``bench_*.py`` module reproduces one table or figure of the paper
(see DESIGN.md §4 for the index).  Two kinds of entries coexist:

* ``test_table_* / test_figure_*`` — *reproduction* entries: they compute
  the paper's rows/series from the simulators and models, print them in
  the paper's layout (run with ``-s`` to see the tables), and assert the
  qualitative shape (who wins, by roughly what factor, where crossovers
  fall);
* ``test_perf_*`` — ``pytest-benchmark`` timings of the underlying
  Python kernels themselves (run with ``--benchmark-only``).
"""

import json
import os
import time

import numpy as np
import pytest

from repro.he.bfv import BfvScheme
from repro.he.params import toy_params
from repro.obs.perfcheck import run_metadata

#: where record_result() writes; override with BENCH_RESULTS_DIR
RESULTS_DIR = os.environ.get(
    "BENCH_RESULTS_DIR", os.path.join(os.path.dirname(__file__), "results")
)


def record_result(name, metrics, params=None):
    """Append one benchmark record to ``BENCH_<name>.json``.

    Each file is a JSON array of ``{"params", "metrics", "timestamp",
    "meta"}`` records, one appended per run, so successive runs can be
    diffed or plotted without re-running the sweep.  ``meta`` carries
    the machine annotation (git SHA, UTC timestamp, hostname,
    python/numpy versions) the ``repro perfcheck`` gate reports, so a
    regression is attributable to a commit and a runner.  Returns the
    file path.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    records = []
    if os.path.exists(path):
        with open(path) as fh:
            records = json.load(fh)
    records.append(
        {
            "params": params or {},
            "metrics": metrics,
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "meta": run_metadata(os.path.dirname(os.path.dirname(__file__))),
        }
    )
    with open(path, "w") as fh:
        json.dump(records, fh, indent=2)
    return path


def print_table(title, headers, rows):
    """Uniform fixed-width table printer for reproduction output."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def bench_scheme():
    """Toy-ring scheme for functional kernels in timing benchmarks."""
    return BfvScheme(toy_params(n=128, plain_bits=40), seed=41, max_pack=128)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0xBEEF)
