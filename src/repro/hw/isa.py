"""Command-stream interface between the runtime and the accelerator.

The paper's Section III-C describes "a software stack with runtime and
driver ... to support high-level application".  This module models the
driver's job description format: a host-side *compiler* lowers an HMVP
job into the command stream the engines consume, and an *executor*
replays a stream against the virtual device with cycle accounting that
agrees with the macro-pipeline simulator.

The command set mirrors the pipeline's units:

========================  =====================================================
``LOAD_VECTOR``           DMA one augmented vector-ciphertext tile + forward NTT
``LOAD_KSK``              stage the pack-tree switching keys (resident)
``DOT_PRODUCT``           stages 1-4 for one row (plaintext streamed)
``LWE_AGGREGATE``         add a partial LWE into the row accumulator (col tiles)
``PACK_REDUCE``           one PACKTWOLWES reduction (stages 5-9)
``READ_RESULT``           DMA the packed ciphertext back
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List

from .arch import ChamConfig, cham_default_config
from .pipeline import MacroPipeline

__all__ = ["Opcode", "Command", "CommandStream", "compile_hmvp", "StreamExecutor"]


class Opcode(Enum):
    LOAD_VECTOR = "load_vector"
    LOAD_KSK = "load_ksk"
    DOT_PRODUCT = "dot_product"
    LWE_AGGREGATE = "lwe_aggregate"
    PACK_REDUCE = "pack_reduce"
    READ_RESULT = "read_result"


@dataclass(frozen=True)
class Command:
    """One driver command with its operand indices."""

    opcode: Opcode
    #: row index for DOT_PRODUCT/LWE_AGGREGATE, tree level for PACK_REDUCE,
    #: tile index for LOAD_VECTOR
    operand: int = 0
    tile: int = 0


@dataclass
class CommandStream:
    """An ordered command list plus its static properties."""

    commands: List[Command] = field(default_factory=list)
    rows: int = 0
    col_tiles: int = 1

    def count(self, opcode: Opcode) -> int:
        return sum(1 for c in self.commands if c.opcode is opcode)

    def __len__(self) -> int:
        return len(self.commands)


def compile_hmvp(rows: int, col_tiles: int = 1) -> CommandStream:
    """Lower one HMVP job into the driver command stream.

    Command counts are exactly the functional pipeline's op counts:
    ``col_tiles`` vector loads, ``rows * col_tiles`` dot products,
    ``rows * (col_tiles - 1)`` aggregations, ``2^ceil(log2 rows) - 1``
    pack reductions (4095 for 4096 rows), one key load, one readback.
    """
    if rows < 1 or col_tiles < 1:
        raise ValueError("rows and col_tiles must be positive")
    stream = CommandStream(rows=rows, col_tiles=col_tiles)
    cmds = stream.commands
    cmds.append(Command(Opcode.LOAD_KSK))
    for tile in range(col_tiles):
        cmds.append(Command(Opcode.LOAD_VECTOR, operand=tile, tile=tile))
    for row in range(rows):
        for tile in range(col_tiles):
            cmds.append(Command(Opcode.DOT_PRODUCT, operand=row, tile=tile))
            if tile > 0:
                cmds.append(Command(Opcode.LWE_AGGREGATE, operand=row, tile=tile))
    levels = max(rows - 1, 0).bit_length()
    reductions_per_level = [
        (1 << levels) >> (lvl + 1) for lvl in range(levels)
    ]
    for lvl, count in enumerate(reductions_per_level):
        for _ in range(count):
            cmds.append(Command(Opcode.PACK_REDUCE, operand=lvl + 1))
    cmds.append(Command(Opcode.READ_RESULT))
    return stream


@dataclass
class ExecutionReport:
    """Cycle accounting of one stream replay."""

    cycles: int
    commands_executed: int
    dot_products: int
    reductions: int


class StreamExecutor:
    """Replays a command stream with macro-pipeline-consistent timing.

    The executor validates stream structure (every consumed operand was
    produced) and reports cycles from the same pipeline simulator the
    performance model uses, so driver-level and model-level timings can
    never drift apart.
    """

    def __init__(self, cfg: ChamConfig = None) -> None:
        self.cfg = cfg or cham_default_config()
        self._pipeline = MacroPipeline(self.cfg.engine)

    def validate(self, stream: CommandStream) -> None:
        produced_rows = set()
        ksk_loaded = False
        vector_tiles = set()
        reductions = 0
        for cmd in stream.commands:
            if cmd.opcode is Opcode.LOAD_KSK:
                ksk_loaded = True
            elif cmd.opcode is Opcode.LOAD_VECTOR:
                vector_tiles.add(cmd.tile)
            elif cmd.opcode is Opcode.DOT_PRODUCT:
                if cmd.tile not in vector_tiles:
                    raise ValueError(
                        f"DOT_PRODUCT tile {cmd.tile} before LOAD_VECTOR"
                    )
                produced_rows.add(cmd.operand)
            elif cmd.opcode is Opcode.LWE_AGGREGATE:
                if cmd.operand not in produced_rows:
                    raise ValueError("aggregate before any dot product")
            elif cmd.opcode is Opcode.PACK_REDUCE:
                if not ksk_loaded:
                    raise ValueError("PACK_REDUCE before LOAD_KSK")
                reductions += 1
        expect = max((1 << max(stream.rows - 1, 0).bit_length()) - 1, 0)
        if stream.rows > 1 and reductions != expect:
            raise ValueError(
                f"stream has {reductions} reductions, tree needs {expect}"
            )
        if len(produced_rows) != stream.rows:
            raise ValueError("not every row has a dot product")

    def execute(self, stream: CommandStream) -> ExecutionReport:
        """Validate, then price the stream with the pipeline simulator."""
        self.validate(stream)
        stats = self._pipeline.simulate_hmvp(stream.rows, stream.col_tiles)
        return ExecutionReport(
            cycles=stats.total_cycles,
            commands_executed=len(stream.commands),
            dot_products=stream.count(Opcode.DOT_PRODUCT),
            reductions=stream.count(Opcode.PACK_REDUCE),
        )
