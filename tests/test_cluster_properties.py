"""Metamorphic cluster properties (ISSUE 5): the algebra behind sharding.

Three families, each a statement about *relations* between runs rather
than fixed expected values:

* **merge linearity** — the modular sum of column-shard partial LWE
  stacks equals the full matrix's partial, limb by limb over the
  ciphertext basis (q0, q1).  This is the precise sense in which the
  gather's additive merge is exact: rescale already happened per tile,
  and what remains is plain RNS addition;
* **partition invariance** — any two valid partition plans of the same
  matrix produce bit-identical gathered ciphertexts (the plan is a
  performance choice, never a semantic one);
* **replication invariance** — the replication degree and injected node
  hangs change *where* shards run, never the output: a faulty run with
  any replication equals the fault-free run bit for bit, with zero
  dropped shards.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, ClusterExecutor, PartitionPlanner
from repro.core.batch import BatchedHmvp
from repro.math.modular import modadd_vec

RING = 128


def _assert_same_ciphertexts(got, want):
    assert len(got.packs) == len(want.packs)
    for g, w in zip(got.packs, want.packs):
        np.testing.assert_array_equal(g.ct.c0, w.ct.c0)
        np.testing.assert_array_equal(g.ct.c1, w.ct.c1)


# -- merge linearity ------------------------------------------------------


@given(
    rows=st.integers(min_value=1, max_value=16),
    col_tiles=st.integers(min_value=2, max_value=3),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=6, deadline=None)
def test_column_shard_partials_sum_to_full_partial(
    scheme128, rows, col_tiles, seed
):
    """sum_c partial(A[:, c]) == partial(A) over each ciphertext limb."""
    rng = np.random.default_rng(seed)
    cols = col_tiles * RING
    matrix = rng.integers(-100, 100, (rows, cols))
    vector = rng.integers(-100, 100, cols)
    ct_tiles = [
        scheme128.encrypt_vector(vector[s : s + RING])
        for s in range(0, cols, RING)
    ]
    full_b, full_a = BatchedHmvp(scheme128, matrix).multiply_partial(
        ct_tiles
    )[0]
    acc_b = acc_a = None
    for tile, start in enumerate(range(0, cols, RING)):
        band = matrix[:, start : start + RING]
        b, a = BatchedHmvp(scheme128, band).multiply_partial(
            [ct_tiles[tile]]
        )[0]
        if acc_b is None:
            acc_b, acc_a = b, a
        else:
            ct_basis = scheme128.ctx.ct_basis
            acc_b = np.stack(
                [modadd_vec(acc_b[i], b[i], q) for i, q in enumerate(ct_basis)]
            )
            acc_a = np.stack(
                [modadd_vec(acc_a[i], a[i], q) for i, q in enumerate(ct_basis)]
            )
    np.testing.assert_array_equal(acc_b, full_b)
    np.testing.assert_array_equal(acc_a, full_a)


# -- partition invariance -------------------------------------------------


def _random_plan(planner, rows, cols, rng):
    """A uniformly random *valid* plan: any row cuts, tile-aligned col cuts."""
    n_row_cuts = int(rng.integers(0, min(rows - 1, 3) + 1)) if rows > 1 else 0
    interior_rows = sorted(
        int(c) for c in rng.choice(
            np.arange(1, rows), size=n_row_cuts, replace=False
        )
    ) if n_row_cuts else []
    col_tiles = -(-cols // RING)
    tile_cut_choices = np.arange(1, col_tiles)
    n_col_cuts = (
        int(rng.integers(0, col_tiles)) if col_tiles > 1 else 0
    )
    interior_cols = sorted(
        int(c) * RING for c in rng.choice(
            tile_cut_choices, size=n_col_cuts, replace=False
        )
    ) if n_col_cuts else []
    return planner.plan_from_cuts(
        rows,
        cols,
        [0, *interior_rows, rows],
        [0, *interior_cols, cols],
    )


@given(
    rows=st.integers(min_value=2, max_value=20),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=6, deadline=None)
def test_partition_invariance(scheme128, rows, seed):
    """Two random valid plans for one matrix: identical ciphertexts."""
    rng = np.random.default_rng(seed)
    cols = 3 * RING
    matrix = rng.integers(-100, 100, (rows, cols))
    vector = rng.integers(-100, 100, cols)
    planner = PartitionPlanner(RING)
    plan_a = _random_plan(planner, rows, cols, rng)
    plan_b = _random_plan(planner, rows, cols, rng)
    # one encryption, reused: encryption is randomized, the data path is
    # deterministic — invariance is a statement about the latter
    ct_tiles = [
        scheme128.encrypt_vector(vector[s : s + RING])
        for s in range(0, cols, RING)
    ]
    results = []
    for plan in (plan_a, plan_b):
        executor = ClusterExecutor(
            scheme128,
            matrix,
            config=ClusterConfig(nodes=3, replication=1, seed=0),
            plan=plan,
        )
        results.append(executor.execute(ct_tiles))
    _assert_same_ciphertexts(results[0], results[1])


# -- replication invariance under faults ----------------------------------


@given(
    replication=st.integers(min_value=1, max_value=3),
    fault_seed=st.integers(min_value=0, max_value=2**16 - 1),
)
@settings(max_examples=6, deadline=None)
def test_replication_invariance_under_hangs(scheme128, replication, fault_seed):
    """Faulty runs at any replication degree equal the fault-free run."""
    rng = np.random.default_rng(0xFA11)
    matrix = rng.integers(-100, 100, (12, 2 * RING))
    vector = rng.integers(-100, 100, 2 * RING)
    ct_tiles = [
        scheme128.encrypt_vector(vector[s : s + RING])
        for s in range(0, 2 * RING, RING)
    ]

    def run(fault_rate, repl, seed):
        executor = ClusterExecutor(
            scheme128,
            matrix,
            config=ClusterConfig(
                nodes=3,
                replication=repl,
                fault_rate=fault_rate,
                seed=seed,
            ),
        )
        result = executor.execute(ct_tiles)
        return result, executor.report()

    clean, _ = run(0.0, 1, 0)
    faulty, report = run(0.35, replication, fault_seed)
    _assert_same_ciphertexts(faulty, clean)
    assert report.dropped == 0
    # every shard reached a terminal outcome on some resource
    assert report.shard_executions == report.shards_per_request
