"""Encrypted matrix-matrix products: ``A · [[B]]`` column by column.

The natural composition of the paper's primitive: a cleartext matrix
``A`` against an *encrypted* matrix ``B`` — e.g. a weight matrix against
a batch of encrypted activation vectors (the batched-inference shape) or
the second half of a two-sided secure multiplication.  Each column of
``B`` is one encrypted vector; the row encodings of ``A`` are hoisted
once via :class:`~repro.core.batch.BatchedHmvp`, and each column costs
one Alg. 1 pass.

The result is one packed ciphertext per column (a column of ``A·B``),
decryptable independently — which is exactly how a batch of inference
results would be returned to distinct clients.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..he.bfv import BfvScheme
from ..he.rlwe import RlweCiphertext
from .batch import BatchedHmvp
from .hmvp import HmvpOpCount, HmvpResult

__all__ = ["EncryptedMatmul"]


class EncryptedMatmul:
    """``A · [[B]]`` with ``A`` cleartext ``(m, k)`` and ``B`` encrypted
    column-wise (``k``-vectors)."""

    def __init__(self, scheme: BfvScheme, matrix: Sequence[Sequence[int]]) -> None:
        self.scheme = scheme
        self.batched = BatchedHmvp(scheme, matrix)

    @property
    def shape(self) -> "tuple[int, int]":
        return self.batched.shape

    def encrypt_matrix(self, b: np.ndarray) -> List[RlweCiphertext]:
        """Encrypt ``B`` (shape ``(k, cols)``) as one ciphertext per column."""
        b = np.asarray(b)
        if b.ndim != 2:
            raise ValueError("B must be 2-D")
        if b.shape[0] != self.shape[1]:
            raise ValueError(
                f"inner dimensions differ: A is {self.shape}, B has "
                f"{b.shape[0]} rows"
            )
        return [self.scheme.encrypt_vector(b[:, j]) for j in range(b.shape[1])]

    def multiply(self, encrypted_cols: List[RlweCiphertext]) -> List[HmvpResult]:
        """One packed result per column of ``A·B``."""
        return self.batched.multiply_batch(encrypted_cols)

    def decrypt_product(self, results: List[HmvpResult]) -> np.ndarray:
        """Assemble the full ``(m, cols)`` product matrix."""
        cols = [res.decrypt(self.scheme) for res in results]
        return np.stack(cols, axis=1)

    def __call__(self, b: np.ndarray) -> np.ndarray:
        """Encrypt, multiply, decrypt: returns ``A·B`` exactly."""
        return self.decrypt_product(self.multiply(self.encrypt_matrix(b)))

    def op_count(self, cols: int) -> HmvpOpCount:
        """Total operation count for a ``cols``-column product."""
        return self.batched.amortized_op_count(cols)
