"""Tests for private linear-layer inference."""

import numpy as np
import pytest

from repro.apps.datasets import make_digit_images
from repro.apps.inference import PrivateInference, TinyModel


@pytest.fixture(scope="module")
def model():
    return TinyModel.random(image_size=12, classes=2, seed=3)


@pytest.fixture(scope="module")
def protocol(scheme256, model):
    return PrivateInference(scheme256, model, image_size=12)


def test_model_shapes(model):
    assert model.kernel.shape == (3, 3)
    assert model.fc.shape == (2, 100)  # (12-2)^2 features


def test_end_to_end_matches_clear(protocol, model):
    imgs, _labels = make_digit_images(3, 12, seed=5)
    for img in imgs:
        got = protocol.run(img)
        assert np.array_equal(got, model.predict_clear(img))


def test_conv_stage_alone(protocol, model, rng):
    img = rng.integers(0, 32, (12, 12))
    ct = protocol.client_encrypt_image(img)
    fm = protocol.client_decrypt_feature_map(protocol.server_conv(ct))
    from repro.core.conv import conv2d_reference

    assert np.array_equal(fm, conv2d_reference(img, model.kernel))


def test_fc_stage_alone(protocol, model, rng):
    act = rng.integers(0, 50, 100)
    ct = protocol.client_encrypt_activations(act)
    logits = protocol.client_decrypt_logits(protocol.server_fc(ct))
    assert np.array_equal(logits, model.fc.astype(object) @ act.astype(object))


def test_relu_stage(protocol):
    fm = np.array([[-5, 3], [0, -1]], dtype=object)
    assert np.array_equal(
        protocol.client_nonlinear(fm), np.array([[0, 3], [0, 0]], dtype=object)
    )


def test_predictions_separate_classes(protocol, model):
    """The homomorphic pipeline preserves whatever signal the model has:
    predictions agree with the cleartext model on every image."""
    imgs, _ = make_digit_images(4, 12, seed=9)
    for img in imgs:
        enc_pred = int(np.argmax(protocol.run(img)))
        clear_pred = int(np.argmax(model.predict_clear(img)))
        assert enc_pred == clear_pred
