"""E3 — the key-switch throughput discussion of Section V-B1.

Paper: "CHAM achieves a throughput of 65 k ops/sec that is 105x higher
than the CPU baseline."  CHAM's rate comes from the pack pipeline's
initiation interval; the CPU anchor is fixed by the quoted ratio.
"""

import numpy as np
import pytest
from conftest import print_table

from repro.he.keys import generate_keyswitch_key, generate_secret_key
from repro.he.keyswitch import apply_keyswitch
from repro.he.rlwe import encrypt
from repro.hw.perf import ChamPerfModel, CpuCostModel


def test_keyswitch_throughput_table():
    cham = ChamPerfModel()
    cpu = CpuCostModel()
    cham_ks = cham.keyswitch_throughput()
    cpu_ks = cpu.keyswitch_throughput()
    rows = [
        ("CHAM (1 engine pack pipeline)", f"{cham_ks:,.0f}", f"{cham_ks / cpu_ks:.0f}x"),
        ("CHAM (2 engines)", f"{cham.keyswitch_throughput(2):,.0f}", ""),
        ("CPU Xeon 6130 (model)", f"{cpu_ks:,.0f}", "1x"),
    ]
    print_table(
        "Key-switch throughput (ops/s, paper: 65 k @ 105x)",
        ["platform", "ops/s", "speedup"],
        rows,
    )
    assert cham_ks == pytest.approx(65_000, rel=0.1)
    assert 90 <= cham_ks / cpu_ks <= 120


def test_keyswitch_pipeline_interval_balances_row_rate():
    """The pack (key-switch) pipeline must keep up with the dot-product
    stage or Alg. 1 would bottleneck on stage 5-9."""
    from repro.hw.arch import EngineConfig

    engine = EngineConfig()
    assert engine.pack_interval <= engine.dot_product_interval


@pytest.mark.benchmark(group="keyswitch")
def test_perf_keyswitch_kernel(benchmark, bench_scheme, rng):
    """Time the real RNS-hybrid key-switch at the toy ring size."""
    ctx = bench_scheme.ctx
    sk = bench_scheme.secret_key
    other = generate_secret_key(ctx)
    ksk = generate_keyswitch_key(ctx, other, sk)
    pt = bench_scheme.encoder.encode_coeffs(rng.integers(-100, 100, 128))
    ct = encrypt(ctx, other, pt, augmented=False)
    benchmark(apply_keyswitch, ct, ksk)


@pytest.mark.benchmark(group="keyswitch")
def test_perf_keyswitch_keygen(benchmark, bench_scheme):
    ctx = bench_scheme.ctx
    sk = bench_scheme.secret_key
    other = generate_secret_key(ctx)
    benchmark(generate_keyswitch_key, ctx, other, sk)
