"""Tests for the constant-geometry (Pease) NTT — Algorithm 4."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math.cg_ntt import (
    CgNtt,
    cg_ntt_cycles,
    constant_geometry_schedule,
)
from repro.math.ntt import NegacyclicNtt, negacyclic_convolution_schoolbook
from repro.math.primes import CHAM_P, CHAM_Q0, CHAM_Q1

MODULI = [CHAM_Q0, CHAM_Q1, CHAM_P]


@pytest.mark.parametrize("q", MODULI)
@pytest.mark.parametrize("n", [4, 16, 64, 256])
def test_forward_matches_gold_after_permutation(q, n, rng):
    a = rng.integers(0, q, n, dtype=np.uint64)
    cg = CgNtt(n, q)
    gold = NegacyclicNtt(n, q)
    assert np.array_equal(cg.to_gold_order(cg.forward(a)), gold.forward(a))


@pytest.mark.parametrize("q", MODULI)
@pytest.mark.parametrize("n", [8, 64, 512])
def test_roundtrip(q, n, rng):
    a = rng.integers(0, q, n, dtype=np.uint64)
    cg = CgNtt(n, q)
    assert np.array_equal(cg.inverse(cg.forward(a)), a)


@pytest.mark.parametrize("n", [8, 32])
def test_multiply_matches_schoolbook(n, rng):
    q = CHAM_Q0
    a = rng.integers(0, q, n, dtype=np.uint64)
    b = rng.integers(0, q, n, dtype=np.uint64)
    cg = CgNtt(n, q)
    assert np.array_equal(
        cg.multiply(a, b), negacyclic_convolution_schoolbook(a, b, q)
    )


def test_schedule_shapes():
    sched = constant_geometry_schedule(64, CHAM_Q0)
    assert sched.twiddles.shape == (6, 32)
    assert sched.inv_twiddles.shape == (6, 32)
    assert sched.output_perm.shape == (64,)
    # output_perm is a permutation
    assert sorted(sched.output_perm) == list(range(64))


def test_schedule_inverse_twiddles():
    sched = constant_geometry_schedule(32, CHAM_Q1)
    prod = (
        sched.twiddles.astype(object) * sched.inv_twiddles.astype(object)
    ) % CHAM_Q1
    assert (prod == 1).all()


def test_stage_zero_uses_single_twiddle():
    """Stage 0 of the merged CT network uses ψ^brv(1) for every butterfly."""
    sched = constant_geometry_schedule(64, CHAM_Q0)
    assert len(set(int(w) for w in sched.twiddles[0])) == 1


def test_total_distinct_twiddles_at_most_n():
    """Section IV-A2: 'the size of twiddle factors is equal to ... N'."""
    sched = constant_geometry_schedule(64, CHAM_Q0)
    distinct = set(int(w) for w in sched.twiddles.reshape(-1))
    assert len(distinct) <= 64


def test_rom_bank_contents_partition_schedule():
    sched = constant_geometry_schedule(64, CHAM_Q0)
    banks = sched.rom_bank_contents(4)
    assert len(banks) == 4
    # each bank holds (n/2 * log2 n)/4 words
    assert all(len(b) == 32 * 6 // 4 for b in banks)
    # interleaving the banks reconstructs each stage's schedule
    for stage in range(6):
        per_stage = 32 // 4
        rebuilt = np.empty(32, dtype=np.uint64)
        for b in range(4):
            rebuilt[b::4] = banks[b][stage * per_stage : (stage + 1) * per_stage]
        assert np.array_equal(rebuilt, sched.twiddles[stage])


def test_rom_bank_bad_split():
    sched = constant_geometry_schedule(16, CHAM_Q0)
    with pytest.raises(ValueError):
        sched.rom_bank_contents(3)


def test_cg_cycles_production_point():
    """Table III: 6144 cycles for N=4096 with 4 BFUs."""
    assert cg_ntt_cycles(4096, 4) == 6144
    assert cg_ntt_cycles(4096, 8) == 3072
    assert cg_ntt_cycles(4096, 2) == 12288


def test_cg_cycles_validation():
    with pytest.raises(ValueError):
        cg_ntt_cycles(100, 4)
    with pytest.raises(ValueError):
        cg_ntt_cycles(16, 7)


def test_batch_forward(rng):
    q = CHAM_Q0
    cg = CgNtt(32, q)
    batch = rng.integers(0, q, (4, 32), dtype=np.uint64)
    out = cg.forward(batch)
    for i in range(4):
        assert np.array_equal(out[i], cg.forward(batch[i]))


def test_rejects_bad_length(rng):
    cg = CgNtt(32, CHAM_Q0)
    with pytest.raises(ValueError):
        cg.forward(rng.integers(0, 5, 16, dtype=np.uint64))
    with pytest.raises(ValueError):
        cg.inverse(rng.integers(0, 5, 64, dtype=np.uint64))


@given(st.lists(st.integers(min_value=0, max_value=CHAM_P - 1), min_size=16, max_size=16))
@settings(max_examples=50, deadline=None)
def test_cg_equals_gold_property(coeffs):
    a = np.array(coeffs, dtype=np.uint64)
    cg = CgNtt(16, CHAM_P)
    gold = NegacyclicNtt(16, CHAM_P)
    assert np.array_equal(cg.to_gold_order(cg.forward(a)), gold.forward(a))
