#!/usr/bin/env python3
"""Tour of the CHAM hardware simulators (Sections III-V).

Walks through: the constant-geometry NTT datapath (Fig. 3/4), the
9-stage macro-pipeline (Fig. 1a), the roofline argument (Fig. 2a), the
design-space exploration (Fig. 2b), the Table II resource model, and the
RAS runtime — printing the key numbers next to the paper's.

Usage: python examples/hardware_walkthrough.py
"""

import numpy as np

from repro.hw.arch import NttUnitConfig, cham_default_config
from repro.hw.dse import enumerate_design_space, pareto_front
from repro.hw.ntt_datapath import NttDatapathSim
from repro.hw.pipeline import MacroPipeline
from repro.hw.resources import total_resources, utilization
from repro.hw.roofline import roofline_points
from repro.hw.runtime import FaultInjector, FpgaRuntime
from repro.math.cg_ntt import CgNtt
from repro.math.primes import CHAM_Q0


def main() -> None:
    cfg = cham_default_config()
    print("CHAM hardware walkthrough")
    print("=" * 60)

    # 1. constant-geometry NTT datapath
    print("\n[1] constant-geometry NTT unit (Fig. 3/4)")
    unit = NttUnitConfig(n=256, n_bfu=4, ram_banks=8)
    sim = NttDatapathSim(unit, CHAM_Q0)
    a = np.random.default_rng(0).integers(0, CHAM_Q0, 256, dtype=np.uint64)
    out, report = sim.forward(a)
    assert np.array_equal(out, CgNtt(256, CHAM_Q0).forward(a))
    print(f"  functional match vs gold NTT: yes")
    print(f"  schedule violations: {len(report.log.violations())}, "
          f"routing patterns: {len(report.routing_patterns)} (constant geometry)")
    print(f"  production unit: {NttUnitConfig().cycles} cycles "
          "(Table III: 6144)")

    # 2. macro-pipeline
    print("\n[2] 9-stage macro-pipeline (Section III-A)")
    pipe = MacroPipeline(cfg.engine)
    stats = pipe.simulate_hmvp(4096)
    print(f"  4096-row HMVP: {stats.total_cycles:,} cycles, "
          f"{stats.reductions} reductions (paper: 4095), "
          f"{stats.preemptions} preemptions, buffer peak {stats.reduce_buffer_peak}")
    print(f"  throughput: {stats.throughput_rows_per_sec(cfg.clock_hz):,.0f} "
          f"rows/s/engine; {cfg.engines} engines deployed")

    # 3. roofline
    print("\n[3] roofline on U200 (Fig. 2a)")
    for name, k in roofline_points().items():
        print(f"  {name:9s}: {k.intensity:6.2f} ops/B -> "
              f"{100 * k.peak_fraction:5.1f}% of peak "
              f"({'memory' if k.memory_bound else 'compute'}-bound)")

    # 4. design space
    print("\n[4] design-space exploration (Fig. 2b)")
    points = enumerate_design_space(bench_rows=1024)
    front = pareto_front(points)
    print(f"  {len(points)} points evaluated, {sum(p.fits for p in points)} "
          f"fit at <75% utilization, {len(front)} on the frontier")
    deployed = next(
        p for p in points
        if (p.stages, p.engines, p.ntt_units_per_group, p.n_bfu) == (9, 2, 6, 4)
    )
    print(f"  deployed point {deployed.label}: "
          f"{deployed.rows_per_sec:,.0f} rows/s at "
          f"{deployed.max_utilization_pct:.1f}% max utilization")

    # 5. resources
    print("\n[5] resource model (Table II)")
    util = utilization(total_resources(cfg))
    paper = {"LUT": 63.68, "FF": 20.41, "BRAM": 72.13, "URAM": 61.98, "DSP": 29.04}
    for key in ("LUT", "FF", "BRAM", "URAM", "DSP"):
        print(f"  {key:4s}: model {util[key]:6.2f}%   paper {paper[key]:6.2f}%")

    # 6. RAS runtime
    print("\n[6] RAS runtime (Section III-C)")
    rt = FpgaRuntime(faults=FaultInjector(hang_prob=0.4, seed=5), max_job_retries=10)
    rt.load_register_checked(0x0, 0xC0FFEE)
    for _ in range(4):
        rt.poll(rt.submit(rows=512))
    h = rt.health()
    print(f"  4 jobs done with {h.hangs_detected} injected hangs, "
          f"{h.resets} watchdog resets; healthy={h.healthy}, "
          f"temp={h.temperature_c:.1f}C")
    print("\nOK")


if __name__ == "__main__":
    main()
