"""Vectorized modular arithmetic over word-sized NTT moduli.

CHAM's moduli are at most 39 bits wide (``p = 2**38 + 2**23 + 1``), so a
product of two residues can reach 78 bits and does not fit in a NumPy
``uint64``.  :func:`modmul_vec` therefore splits the left operand at
``SPLIT_BITS`` bits so that every intermediate product stays below 2**60.

The module also provides the *hardware* reduction path used by CHAM: the
paper chooses low-Hamming-weight primes (three non-zero bits each) so that
multiplication by ``q`` — and hence Barrett-style reduction — collapses to
three shifts and adds (Section IV-A3).  :class:`LowHammingModulus` models
that datapath exactly and is cross-checked against the generic path in the
test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple, Union

import numpy as np

from ..obs.metrics import REGISTRY as _METRICS

__all__ = [
    "MAX_MODULUS_BITS",
    "SPLIT_BITS",
    "modadd_vec",
    "modsub_vec",
    "modneg_vec",
    "modmul_vec",
    "modmul_scalar_vec",
    "modpow",
    "modinv",
    "center_lift",
    "center_lift_vec",
    "reduce_signed_vec",
    "LowHammingModulus",
    "BarrettReducer",
    "hamming_weight",
    "decompose_low_hamming",
]

#: Largest modulus width (bits) for which :func:`modmul_vec` is exact.
#: With the 20-bit split every intermediate stays below 2**62 for
#: 41-bit moduli (see :func:`modmul_vec`), comfortably inside uint64.
MAX_MODULUS_BITS = 41

#: The left operand of a product is split at this many low bits.
SPLIT_BITS = 20

_LOW_MASK = np.uint64((1 << SPLIT_BITS) - 1)
_SHIFT = np.uint64(SPLIT_BITS)

IntArray = np.ndarray


def _as_u64(a: Union[IntArray, int, Iterable[int]]) -> IntArray:
    return np.asarray(a, dtype=np.uint64)


def modadd_vec(a: IntArray, b: IntArray, q: int) -> IntArray:
    """Coefficient-wise ``(a + b) mod q`` (the MODADD unit of Table I)."""
    a = _as_u64(a)
    b = _as_u64(b)
    s = a + b
    return np.where(s >= np.uint64(q), s - np.uint64(q), s)


def modsub_vec(a: IntArray, b: IntArray, q: int) -> IntArray:
    """Coefficient-wise ``(a - b) mod q``."""
    a = _as_u64(a)
    b = _as_u64(b)
    qq = np.uint64(q)
    return np.where(a >= b, a - b, a + qq - b)


def modneg_vec(a: IntArray, q: int) -> IntArray:
    """Coefficient-wise ``(-a) mod q``."""
    a = _as_u64(a)
    qq = np.uint64(q)
    return np.where(a == 0, a, qq - a)


def modmul_vec(a: IntArray, b: IntArray, q: int) -> IntArray:
    """Coefficient-wise ``(a * b) mod q`` for ``q < 2**MAX_MODULUS_BITS``.

    Exactness argument: write ``a = a_hi * 2**20 + a_lo``.  With
    ``a, b < q < 2**41`` every intermediate below is at most
    ``2**21 * 2**41 = 2**62`` (``a_hi * b``), ``(q-1) * 2**20 < 2**61``
    (the shifted reduced high part), ``2**20 * 2**41 = 2**61``
    (``a_lo * b``), or their sum ``< 2**62`` — all inside ``uint64``.
    """
    if q.bit_length() > MAX_MODULUS_BITS:
        raise ValueError(
            f"modulus {q} is {q.bit_length()} bits; "
            f"modmul_vec supports at most {MAX_MODULUS_BITS}"
        )
    a = _as_u64(a)
    b = _as_u64(b)
    if _METRICS.enabled:
        _METRICS.inc("math.modmul.calls")
        _METRICS.inc("math.modmul.coefficients", int(max(a.size, b.size)))
    qq = np.uint64(q)
    hi = (a >> _SHIFT) * b % qq
    lo = (a & _LOW_MASK) * b % qq
    return ((hi << _SHIFT) + lo) % qq


def modmul_scalar_vec(a: IntArray, s: int, q: int) -> IntArray:
    """``(a * s) mod q`` with a scalar right operand."""
    return modmul_vec(a, np.uint64(s % q), q)


def modpow(base: int, exp: int, q: int) -> int:
    """Scalar modular exponentiation (delegates to ``pow``)."""
    return pow(base % q, exp, q)


def modinv(a: int, q: int) -> int:
    """Multiplicative inverse of ``a`` modulo prime or coprime ``q``."""
    a %= q
    if a == 0:
        raise ZeroDivisionError("0 has no inverse")
    g, x = _ext_gcd(a, q)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {q}")
    return x % q


def _ext_gcd(a: int, b: int) -> Tuple[int, int]:
    """Return ``(gcd(a, b), x)`` with ``a*x ≡ gcd (mod b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    while r:
        k = old_r // r
        old_r, r = r, old_r - k * r
        old_x, x = x, old_x - k * x
    return old_r, old_x


def center_lift(a: int, q: int) -> int:
    """Map ``a mod q`` to the centered representative in ``(-q/2, q/2]``."""
    a %= q
    return a - q if a > q // 2 else a


def center_lift_vec(a: IntArray, q: int) -> np.ndarray:
    """Vectorized centered lift, returned as Python-int object array.

    An object array is used because centered values for a 39-bit modulus fit
    in int64, but callers combine limbs into >64-bit integers.
    """
    a = _as_u64(a)
    out = a.astype(object)
    half = q // 2
    return np.where(out > half, out - q, out)


def reduce_signed_vec(a: np.ndarray, q: int) -> IntArray:
    """Reduce a signed integer array (any dtype, incl. object) into [0, q)."""
    arr = np.asarray(a, dtype=object)
    return np.asarray(np.mod(arr, q), dtype=np.uint64)


class BarrettReducer:
    """Generic Barrett reduction — the ablation counterpart of
    :class:`LowHammingModulus` (Section IV-A3).

    Precomputes ``mu = floor(2**(2k) / q)`` for ``k = bitlen(q)``; a
    double-width product then reduces with two extra wide multiplies —
    exactly the DSP cost the paper's low-Hamming moduli avoid.
    """

    def __init__(self, q: int) -> None:
        if q < 3 or q % 2 == 0:
            raise ValueError("modulus must be odd and > 2")
        self.q = q
        self.k = q.bit_length()
        self.mu = (1 << (2 * self.k)) // q

    def reduce(self, x: int) -> int:
        """Reduce ``0 <= x < q**2`` mod ``q`` (two multiplies, one cond sub)."""
        if x < 0 or x >= self.q * self.q:
            raise ValueError("Barrett input must lie in [0, q^2)")
        approx_quotient = (x * self.mu) >> (2 * self.k)
        r = x - approx_quotient * self.q
        while r >= self.q:  # at most two corrections by construction
            r -= self.q
        return r

    def mulmod(self, a: int, b: int) -> int:
        return self.reduce((a % self.q) * (b % self.q))

    #: wide multiplies a hardware Barrett unit spends per reduction
    MULTIPLIES_PER_REDUCTION = 2


def hamming_weight(n: int) -> int:
    """Number of set bits of ``n``."""
    return bin(n).count("1")


def decompose_low_hamming(q: int) -> List[int]:
    """Return the exponents of the set bits of ``q`` (descending).

    For CHAM's ``q0 = 2**34 + 2**27 + 1`` this is ``[34, 27, 0]``: the three
    shift amounts of the hardware reduction datapath.
    """
    return [i for i in range(q.bit_length() - 1, -1, -1) if (q >> i) & 1]


@dataclass(frozen=True)
class LowHammingModulus:
    """Model of CHAM's shift-add modular reduction (Section IV-A3).

    A modulus ``q = 2**e2 + 2**e1 + 1`` with exactly three set bits lets the
    hardware reduce a double-width product without DSP multipliers: since
    ``2**e2 ≡ -(2**e1 + 1) (mod q)``, high bits fold back with two shifted
    additions per iteration.

    Attributes
    ----------
    q:
        The modulus.
    exponents:
        Set-bit positions of ``q``, descending (``[e2, e1, 0]``).
    """

    q: int

    def __post_init__(self) -> None:
        if hamming_weight(self.q) != 3:
            raise ValueError(
                f"modulus {self.q} has Hamming weight {hamming_weight(self.q)}; "
                "the CHAM reduction datapath requires exactly 3 set bits"
            )
        if self.q & 1 == 0:
            raise ValueError("modulus must be odd")

    @property
    def exponents(self) -> List[int]:
        return decompose_low_hamming(self.q)

    @property
    def top_exponent(self) -> int:
        """Position of the leading bit (``e2``), the fold boundary."""
        return self.exponents[0]

    def fold_once(self, x: int) -> int:
        """One shift-add folding iteration: replace ``hi*2**e2`` by
        ``-hi*(2**e1 + 1)`` which may go negative; callers iterate to a
        fixed narrow range and then take one conditional correction."""
        e2, e1, _ = self.exponents
        hi, lo = x >> e2, x & ((1 << e2) - 1)
        return lo - (hi << e1) - hi

    def reduce(self, x: int) -> int:
        """Reduce any (possibly double-width) non-negative ``x`` mod ``q``
        using only shifts/adds, mirroring the FPGA datapath."""
        e2 = self.top_exponent
        # Each fold shrinks |x| by roughly e2 - e1 bits; iterate until the
        # value fits in e2 + 1 bits, then correct into [0, q).
        while x >= (1 << (e2 + 1)) or x < -(1 << (e2 + 1)):
            x = self.fold_once(x) if x >= 0 else -self.fold_once(-x)
        x %= self.q
        return x

    def shift_add_count(self, x_bits: int) -> int:
        """Number of shift/add operations to reduce an ``x_bits``-wide value.

        Used by the resource model: a generic Barrett reduction would need
        two extra wide multipliers (DSP slices); the low-Hamming path needs
        only this many adders.
        """
        e2, e1, _ = self.exponents
        step = e2 - e1
        excess = max(0, x_bits - e2)
        iterations = -(-excess // step) if excess else 0
        return 2 * iterations + 1  # two adds per fold + final correction

    def mulmod(self, a: int, b: int) -> int:
        """Scalar modular multiplication via the shift-add reduction."""
        return self.reduce((a % self.q) * (b % self.q))
