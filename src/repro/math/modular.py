"""Vectorized modular arithmetic over word-sized NTT moduli.

CHAM's moduli are at most 39 bits wide (``p = 2**38 + 2**23 + 1``), so a
product of two residues can reach 78 bits and does not fit in a NumPy
``uint64``.  Three exact multiply paths coexist:

* :func:`modmul_vec_split` — the original reference path: split the left
  operand at ``SPLIT_BITS`` bits so every intermediate stays below
  2**62.  This is the **differential oracle** the fast paths are
  cross-checked against; it is deliberately left untouched.
* :func:`modmul_vec_barrett` — the default fast path: a floating-point
  Barrett reduction with the per-modulus reciprocal ``mu = RN(1/q)``
  precomputed in :class:`_ReducerCache`.  One float multiply estimates
  the quotient to within ±1; wrap-around ``uint64`` arithmetic recovers
  the exact remainder with two conditional subtractions (proof in the
  docstring).  Roughly 3x fewer integer divisions per element than the
  split path.
* an opt-in numba JIT kernel set (:mod:`repro.math.jit`) behind the
  ``REPRO_JIT=1`` feature flag — same split-multiply formula compiled
  per element, used only when numba is importable.

:func:`modmul_vec` dispatches between them; all three are bit-identical
by construction and by the property tests in
``tests/test_fastpath_properties.py``.

The module also provides the *hardware* reduction path used by CHAM: the
paper chooses low-Hamming-weight primes (three non-zero bits each) so that
multiplication by ``q`` — and hence Barrett-style reduction — collapses to
three shifts and adds (Section IV-A3).  :class:`LowHammingModulus` models
that datapath exactly and is cross-checked against the generic path in the
test-suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple, Union

import numpy as np

from ..obs.metrics import REGISTRY as _METRICS
from . import jit as _jit

__all__ = [
    "MAX_MODULUS_BITS",
    "SPLIT_BITS",
    "modadd_vec",
    "modsub_vec",
    "modneg_vec",
    "modmul_vec",
    "modmul_vec_split",
    "modmul_vec_barrett",
    "modmul_scalar_vec",
    "modpow",
    "modinv",
    "center_lift",
    "center_lift_vec",
    "reduce_signed_vec",
    "LowHammingModulus",
    "BarrettReducer",
    "hamming_weight",
    "decompose_low_hamming",
]

#: Largest modulus width (bits) for which :func:`modmul_vec` is exact.
#: With the 20-bit split every intermediate stays below 2**62 for
#: 41-bit moduli (see :func:`modmul_vec`), comfortably inside uint64.
MAX_MODULUS_BITS = 41

#: The left operand of a product is split at this many low bits.
SPLIT_BITS = 20

_LOW_MASK = np.uint64((1 << SPLIT_BITS) - 1)
_SHIFT = np.uint64(SPLIT_BITS)

IntArray = np.ndarray

#: A modulus argument: a plain int, or a ``uint64`` array broadcastable
#: against the operands (one modulus per RNS limb slice — the fused-limb
#: kernels pass a ``(L, 1, ..., 1)`` column).
ModulusLike = Union[int, np.integer, IntArray]


def _as_u64(a: Union[IntArray, int, Iterable[int]]) -> IntArray:
    return np.asarray(a, dtype=np.uint64)


def _q_u64(q: ModulusLike) -> Union[np.uint64, IntArray]:
    """The modulus as a ``uint64`` scalar (int input) or array (column)."""
    if isinstance(q, (int, np.integer)):
        return np.uint64(q)
    return _as_u64(q)


def modadd_vec(a: IntArray, b: IntArray, q: ModulusLike) -> IntArray:
    """Coefficient-wise ``(a + b) mod q`` (the MODADD unit of Table I).

    Selection by unsigned minimum: with ``a, b < q`` the sum is below
    ``2q``, so exactly one of ``s`` and ``s - q`` lies in ``[0, q)`` and
    the other is either ``>= q`` or wraps around to an enormous value —
    ``min`` picks the reduced one in one pass fewer than a masked
    ``where``.
    """
    a = _as_u64(a)
    b = _as_u64(b)
    qq = _q_u64(q)
    s = a + b
    return np.minimum(s, s - qq)


def modsub_vec(a: IntArray, b: IntArray, q: ModulusLike) -> IntArray:
    """Coefficient-wise ``(a - b) mod q`` (unsigned-min selection)."""
    a = _as_u64(a)
    b = _as_u64(b)
    qq = _q_u64(q)
    d = a - b  # wraps around when a < b
    return np.minimum(d, d + qq)


def modneg_vec(a: IntArray, q: ModulusLike) -> IntArray:
    """Coefficient-wise ``(-a) mod q``."""
    a = _as_u64(a)
    qq = _q_u64(q)
    return np.where(a == 0, a, qq - a)


class _Reducer:
    """Precomputed Barrett constants for one modulus.

    ``mu`` is the round-to-nearest ``float64`` reciprocal ``RN(1/q)`` —
    the 53-bit analogue of the classical integer ``mu = floor(2^2k/q)``.
    """

    __slots__ = ("qq", "mu")

    def __init__(self, q: int) -> None:
        self.qq = np.uint64(q)
        self.mu = np.float64(1.0) / np.float64(q)


class _ReducerCache:
    """Tiny per-modulus cache of :class:`_Reducer` constants.

    The working set is the handful of RNS moduli of the active parameter
    set, so an unbounded dict is fine; lookups are one hash of an int.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, _Reducer] = {}

    def get(self, q: int) -> _Reducer:
        entry = self._entries.get(q)
        if entry is None:
            entry = self._entries[q] = _Reducer(q)
        return entry

    def __len__(self) -> int:
        return len(self._entries)


_REDUCERS = _ReducerCache()

#: Reciprocal cache for *frozen* modulus columns, keyed by ``id`` of the
#: read-only root array.  Entries hold a strong reference to the root, so
#: an id can never be recycled while its entry lives — the ``is`` check
#: on lookup is belt-and-braces.  The working set is one column per RNS
#: basis in the process.
_COLUMN_CACHE: Dict[int, Tuple[IntArray, np.ndarray]] = {}


def _column_mu(qq: IntArray) -> Union[np.ndarray, None]:
    """Cached ``RN(1/q)`` for a frozen modulus column, else ``None``.

    The fused-limb kernels pass reshaped *views* of a per-basis frozen
    ``modulus_column`` on every call; resolving the view to its read-only
    root array lets us validate the bit width and compute the Barrett
    reciprocal once per basis instead of once per modmul.  Returns the
    reciprocal shaped like ``qq``, or ``None`` when ``qq`` is not a
    cacheable view (mutable, sliced, or non-contiguous — the caller then
    computes ``mu`` directly).
    """
    root = qq.base if qq.base is not None else qq
    if (
        not isinstance(root, np.ndarray)
        or root.flags.writeable
        or root.dtype != np.uint64
        or root.size != qq.size
        or not qq.flags.c_contiguous
    ):
        return None
    entry = _COLUMN_CACHE.get(id(root))
    if entry is None or entry[0] is not root:
        flat = np.ascontiguousarray(root).reshape(-1)
        bits = int(flat.max()).bit_length()
        if bits > MAX_MODULUS_BITS:
            raise ValueError(
                f"modulus column max is {bits} bits; "
                f"modmul_vec supports at most {MAX_MODULUS_BITS}"
            )
        entry = (root, 1.0 / flat.astype(np.float64))
        _COLUMN_CACHE[id(root)] = entry
    return entry[1].reshape(qq.shape)


def _check_modulus_bits(q: ModulusLike) -> None:
    if isinstance(q, (int, np.integer)):
        bits = int(q).bit_length()
    else:
        qq = _as_u64(q)
        if _column_mu(qq) is not None:
            return  # validated when the column entered the cache
        bits = int(qq.max()).bit_length()
    if bits > MAX_MODULUS_BITS:
        raise ValueError(
            f"modulus {q} is {bits} bits; "
            f"modmul_vec supports at most {MAX_MODULUS_BITS}"
        )


def modmul_vec_split(a: IntArray, b: IntArray, q: int) -> IntArray:
    """Coefficient-wise ``(a * b) mod q`` via the split-operand path.

    This is the original reference implementation and the differential
    oracle of the Barrett/JIT fast paths — do not "optimize" it.

    Exactness argument: write ``a = a_hi * 2**20 + a_lo``.  With
    ``a, b < q < 2**41`` every intermediate below is at most
    ``2**21 * 2**41 = 2**62`` (``a_hi * b``), ``(q-1) * 2**20 < 2**61``
    (the shifted reduced high part), ``2**20 * 2**41 = 2**61``
    (``a_lo * b``), or their sum ``< 2**62`` — all inside ``uint64``.
    """
    a = _as_u64(a)
    b = _as_u64(b)
    qq = np.uint64(q)
    hi = (a >> _SHIFT) * b % qq
    lo = (a & _LOW_MASK) * b % qq
    return ((hi << _SHIFT) + lo) % qq


def modmul_vec_barrett(a: IntArray, b: IntArray, q: ModulusLike) -> IntArray:
    """Coefficient-wise ``(a * b) mod q`` via floating-point Barrett.

    Exactness: with ``a, b < q < 2**41`` the true product ``p = a*b`` is
    below ``2**82`` and the true quotient ``p/q`` below ``2**41``.  The
    estimate ``est = fl(fl(a) * fl(b) * mu)`` accumulates at most three
    roundings of relative size ``2**-53`` on top of ``mu``'s own, so
    ``|est - p/q| < 2**41 * 2**-51 < 1``, hence
    ``floor(est) in {Q-1, Q, Q+1}`` for ``Q = floor(p/q)``.  The raw
    residue ``r = p - floor(est)*q`` then lies in ``(-q, 2q)``; computed
    in wrap-around ``uint64`` arithmetic exactly one of
    ``{r, r+q, r-q}`` equals the true remainder in ``[0, q)`` while the
    other two either exceed ``q`` or wrap around to values near
    ``2**64`` — an unsigned minimum selects it exactly.

    ``q`` may be an array column (one modulus per leading slice), which
    is what the fused-limb NTT and key-switch kernels rely on.
    """
    a = _as_u64(a)
    b = _as_u64(b)
    if isinstance(q, (int, np.integer)):
        red = _REDUCERS.get(int(q))
        return _barrett_core(a, b, red.qq, red.mu)
    qq = _as_u64(q)
    mu = _column_mu(qq)
    if mu is None:
        mu = 1.0 / qq.astype(np.float64)
    return _barrett_core(a, b, qq, mu)


def _barrett_core(
    a: IntArray,
    b: IntArray,
    qq: Union[np.uint64, IntArray],
    mu: Union[np.float64, np.ndarray],
) -> IntArray:
    est = (a.astype(np.float64) * b.astype(np.float64) * mu).astype(np.uint64)
    # the quotient estimate is off by at most one, so the raw residue is
    # in (-q, 2q): exactly one of {r, r+q, r-q} lands in [0, q) and
    # uint64 wrap-around makes the other two enormous — unsigned min
    # selects the exact remainder (see modmul_vec_barrett docstring)
    r = a * b - est * qq
    return np.minimum(np.minimum(r, r + qq), r - qq)


def modmul_vec(a: IntArray, b: IntArray, q: ModulusLike) -> IntArray:
    """Coefficient-wise ``(a * b) mod q`` for ``q < 2**MAX_MODULUS_BITS``.

    Dispatches to the numba JIT kernels when the ``REPRO_JIT=1`` feature
    flag is active (and numba is importable), else to the Barrett fast
    path (:func:`modmul_vec_barrett`).  Both are bit-identical to the
    :func:`modmul_vec_split` oracle.
    """
    a = _as_u64(a)
    b = _as_u64(b)
    if _METRICS.enabled:
        _METRICS.inc("math.modmul.calls")
        # count the *broadcast* result size, not the larger operand: a
        # (L, 1, n) x (L, rows, n) product touches L*rows*n coefficients
        _METRICS.inc(
            "math.modmul.coefficients",
            int(np.prod(np.broadcast_shapes(a.shape, b.shape), dtype=np.int64)),
        )
    if isinstance(q, (int, np.integer)):
        _check_modulus_bits(q)
        if _jit.enabled():
            return _jit.modmul(a, b, int(q))
        red = _REDUCERS.get(int(q))
        return _barrett_core(a, b, red.qq, red.mu)
    qq = _as_u64(q)
    mu = _column_mu(qq)
    if mu is None:
        _check_modulus_bits(qq)
        mu = 1.0 / qq.astype(np.float64)
    return _barrett_core(a, b, qq, mu)


def modmul_scalar_vec(a: IntArray, s: Union[int, np.integer], q: int) -> IntArray:
    """``(a * s) mod q`` with a scalar right operand.

    The scalar is normalized exactly once (Python-int arithmetic, so
    negative and ``np.integer`` scalars reduce correctly into ``[0, q)``)
    and the product then goes through the already-reduced fast path.
    """
    if isinstance(s, bool) or not isinstance(s, (int, np.integer)):
        raise TypeError(
            f"modmul_scalar_vec needs an integer scalar, got {type(s).__name__}"
        )
    return modmul_vec(a, np.uint64(int(s) % q), q)


def modpow(base: int, exp: int, q: int) -> int:
    """Scalar modular exponentiation (delegates to ``pow``)."""
    return pow(base % q, exp, q)


def modinv(a: int, q: int) -> int:
    """Multiplicative inverse of ``a`` modulo prime or coprime ``q``."""
    a %= q
    if a == 0:
        raise ZeroDivisionError("0 has no inverse")
    g, x = _ext_gcd(a, q)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {q}")
    return x % q


def _ext_gcd(a: int, b: int) -> Tuple[int, int]:
    """Return ``(gcd(a, b), x)`` with ``a*x ≡ gcd (mod b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    while r:
        k = old_r // r
        old_r, r = r, old_r - k * r
        old_x, x = x, old_x - k * x
    return old_r, old_x


def center_lift(a: int, q: int) -> int:
    """Map ``a mod q`` to the centered representative in ``(-q/2, q/2]``."""
    a %= q
    return a - q if a > q // 2 else a


def center_lift_vec(a: IntArray, q: int) -> np.ndarray:
    """Vectorized centered lift, returned as Python-int object array.

    An object array is used because centered values for a 39-bit modulus fit
    in int64, but callers combine limbs into >64-bit integers.
    """
    a = _as_u64(a)
    out = a.astype(object)
    half = q // 2
    return np.where(out > half, out - q, out)


def reduce_signed_vec(a: np.ndarray, q: int) -> IntArray:
    """Reduce a signed integer array (any dtype, incl. object) into [0, q)."""
    arr = np.asarray(a, dtype=object)
    return np.asarray(np.mod(arr, q), dtype=np.uint64)


class BarrettReducer:
    """Generic Barrett reduction — the ablation counterpart of
    :class:`LowHammingModulus` (Section IV-A3).

    Precomputes ``mu = floor(2**(2k) / q)`` for ``k = bitlen(q)``; a
    double-width product then reduces with two extra wide multiplies —
    exactly the DSP cost the paper's low-Hamming moduli avoid.
    """

    def __init__(self, q: int) -> None:
        if q < 3 or q % 2 == 0:
            raise ValueError("modulus must be odd and > 2")
        self.q = q
        self.k = q.bit_length()
        self.mu = (1 << (2 * self.k)) // q

    def reduce(self, x: int) -> int:
        """Reduce ``0 <= x < q**2`` mod ``q`` (two multiplies, one cond sub)."""
        if x < 0 or x >= self.q * self.q:
            raise ValueError("Barrett input must lie in [0, q^2)")
        approx_quotient = (x * self.mu) >> (2 * self.k)
        r = x - approx_quotient * self.q
        while r >= self.q:  # at most two corrections by construction
            r -= self.q
        return r

    def mulmod(self, a: int, b: int) -> int:
        return self.reduce((a % self.q) * (b % self.q))

    #: wide multiplies a hardware Barrett unit spends per reduction
    MULTIPLIES_PER_REDUCTION = 2


def hamming_weight(n: int) -> int:
    """Number of set bits of ``n``."""
    return bin(n).count("1")


def decompose_low_hamming(q: int) -> List[int]:
    """Return the exponents of the set bits of ``q`` (descending).

    For CHAM's ``q0 = 2**34 + 2**27 + 1`` this is ``[34, 27, 0]``: the three
    shift amounts of the hardware reduction datapath.
    """
    return [i for i in range(q.bit_length() - 1, -1, -1) if (q >> i) & 1]


@dataclass(frozen=True)
class LowHammingModulus:
    """Model of CHAM's shift-add modular reduction (Section IV-A3).

    A modulus ``q = 2**e2 + 2**e1 + 1`` with exactly three set bits lets the
    hardware reduce a double-width product without DSP multipliers: since
    ``2**e2 ≡ -(2**e1 + 1) (mod q)``, high bits fold back with two shifted
    additions per iteration.

    Attributes
    ----------
    q:
        The modulus.
    exponents:
        Set-bit positions of ``q``, descending (``[e2, e1, 0]``).
    """

    q: int

    def __post_init__(self) -> None:
        if hamming_weight(self.q) != 3:
            raise ValueError(
                f"modulus {self.q} has Hamming weight {hamming_weight(self.q)}; "
                "the CHAM reduction datapath requires exactly 3 set bits"
            )
        if self.q & 1 == 0:
            raise ValueError("modulus must be odd")

    @property
    def exponents(self) -> List[int]:
        return decompose_low_hamming(self.q)

    @property
    def top_exponent(self) -> int:
        """Position of the leading bit (``e2``), the fold boundary."""
        return self.exponents[0]

    def fold_once(self, x: int) -> int:
        """One shift-add folding iteration: replace ``hi*2**e2`` by
        ``-hi*(2**e1 + 1)`` which may go negative; callers iterate to a
        fixed narrow range and then take one conditional correction."""
        e2, e1, _ = self.exponents
        hi, lo = x >> e2, x & ((1 << e2) - 1)
        return lo - (hi << e1) - hi

    def reduce(self, x: int) -> int:
        """Reduce any (possibly double-width) non-negative ``x`` mod ``q``
        using only shifts/adds, mirroring the FPGA datapath."""
        e2 = self.top_exponent
        # Each fold shrinks |x| by roughly e2 - e1 bits; iterate until the
        # value fits in e2 + 1 bits, then correct into [0, q).
        while x >= (1 << (e2 + 1)) or x < -(1 << (e2 + 1)):
            x = self.fold_once(x) if x >= 0 else -self.fold_once(-x)
        x %= self.q
        return x

    def shift_add_count(self, x_bits: int) -> int:
        """Number of shift/add operations to reduce an ``x_bits``-wide value.

        Used by the resource model: a generic Barrett reduction would need
        two extra wide multipliers (DSP slices); the low-Hamming path needs
        only this many adders.
        """
        e2, e1, _ = self.exponents
        step = e2 - e1
        excess = max(0, x_bits - e2)
        iterations = -(-excess // step) if excess else 0
        return 2 * iterations + 1  # two adds per fold + final correction

    def mulmod(self, a: int, b: int) -> int:
        """Scalar modular multiplication via the shift-add reduction."""
        return self.reduce((a % self.q) * (b % self.q))
