"""Shared fixtures.

Schemes and keys are expensive (Galois keysets especially), so everything
here is session-scoped; tests must not mutate fixture state.  Toy rings
reuse the paper's production moduli (they are NTT-friendly for every
power-of-two degree up to 4096), so all arithmetic paths are identical to
the full-size configuration.
"""

import numpy as np
import pytest

from repro import obs
from repro.he.bfv import BfvScheme
from repro.he.context import CheContext
from repro.he.keys import (
    generate_galois_keyset,
    generate_public_key,
    generate_secret_key,
    pack_galois_elements,
)
from repro.he.params import toy_params


@pytest.fixture(autouse=True)
def _isolate_obs_defaults():
    """Snapshot/restore the default REGISTRY and TRACER around every test.

    The observability singletons are process globals; a test that enables
    metrics or tracing and leaks state would poison any test that runs
    after it in the same worker — nondeterministically under ``-n auto``,
    where the schedule decides who runs after whom.  Restoring both the
    enabled flags and the recorded contents makes every test start from
    the same blank default, whatever worker it lands on.
    """
    reg, tr = obs.REGISTRY, obs.TRACER
    reg_enabled = reg.enabled
    reg_state = (
        dict(reg._counters), dict(reg._gauges), dict(reg._histograms)
    )
    tr_enabled = tr.enabled
    with tr._lock:
        tr_state = (
            list(tr._spans),
            dict(tr._track_names),
            dict(tr._process_names),
            dict(tr._thread_tracks),
            tr._epoch,
        )
    yield
    reg.enabled = reg_enabled
    with reg._lock:
        reg._counters.clear()
        reg._counters.update(reg_state[0])
        reg._gauges.clear()
        reg._gauges.update(reg_state[1])
        reg._histograms.clear()
        reg._histograms.update(reg_state[2])
    tr.enabled = tr_enabled
    with tr._lock:
        tr._spans[:] = tr_state[0]
        tr._track_names.clear()
        tr._track_names.update(tr_state[1])
        tr._process_names.clear()
        tr._process_names.update(tr_state[2])
        tr._thread_tracks.clear()
        tr._thread_tracks.update(tr_state[3])
        tr._epoch = tr_state[4]


@pytest.fixture(scope="session")
def params128():
    return toy_params(n=128, plain_bits=40)


@pytest.fixture(scope="session")
def params256():
    return toy_params(n=256, plain_bits=40)


@pytest.fixture(scope="session")
def ctx128(params128):
    return CheContext(params128, seed=1001)


@pytest.fixture(scope="session")
def sk128(ctx128):
    return generate_secret_key(ctx128)


@pytest.fixture(scope="session")
def pk128(ctx128, sk128):
    return generate_public_key(ctx128, sk128)


@pytest.fixture(scope="session")
def galois128(ctx128, sk128):
    return generate_galois_keyset(
        ctx128, sk128, pack_galois_elements(128, max_count=128)
    )


@pytest.fixture(scope="session")
def scheme128():
    """A full scheme at n=128 with pack keys for up to 128 rows."""
    return BfvScheme(toy_params(n=128, plain_bits=40), seed=7, max_pack=128)


@pytest.fixture(scope="session")
def scheme256():
    """A larger toy scheme for convolution / inference tests."""
    return BfvScheme(toy_params(n=256, plain_bits=40), seed=8, max_pack=16)


@pytest.fixture()
def rng():
    return np.random.default_rng(0xC4A)
