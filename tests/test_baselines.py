"""Tests for the batch-encoded baseline HMVPs (Section II-E)."""

import numpy as np
import pytest

from repro.core.baselines import (
    BaselineHmvp,
    BatchEncoder,
    batch_friendly_plain_modulus,
    diagonal_op_count,
    rotate_and_sum_op_count,
)
from repro.he.bfv import BfvScheme
from repro.he.params import CheParams


@pytest.fixture(scope="module")
def batch_scheme():
    t = batch_friendly_plain_modulus(128, 20)
    return BfvScheme(CheParams(n=128, plain_modulus=t), seed=13, max_pack=2)


@pytest.fixture(scope="module")
def baseline(batch_scheme):
    return BaselineHmvp(batch_scheme)


def test_batch_friendly_modulus():
    t = batch_friendly_plain_modulus(128, 20)
    assert t % 256 == 1
    from repro.math.primes import is_prime

    assert is_prime(t)


def test_encoder_rejects_unfriendly_modulus():
    with pytest.raises(ValueError, match="not ≡ 1"):
        BatchEncoder(CheParams(n=128, plain_modulus=(1 << 40) + 15))


def test_encode_decode_roundtrip(baseline, rng):
    v = rng.integers(-100, 100, 64)
    pt = baseline.encoder.encode(v)
    assert np.array_equal(baseline.encoder.decode(pt, 64), v.astype(object))


def test_encode_too_many_values(baseline):
    with pytest.raises(ValueError):
        baseline.encoder.encode(np.zeros(65))


def test_slot_product_is_pointwise(baseline, rng):
    enc = baseline.encoder
    a = rng.integers(-10, 10, 64)
    b = rng.integers(-10, 10, 64)
    from repro.math.ntt import NegacyclicNtt

    ntt = NegacyclicNtt(128, enc.t)
    prod = ntt.multiply(enc.encode(a).coeffs, enc.encode(b).coeffs)
    from repro.he.encoder import Plaintext

    got = enc.decode(Plaintext(prod, enc.t), 64)
    assert np.array_equal(got, (a * b).astype(object))


def test_encrypted_rotation(baseline, batch_scheme, rng):
    v = rng.integers(-50, 50, 64)
    ct = baseline.encrypt_slots(v)
    for r in (1, 3, 17):
        rot = baseline.rotate(ct, r)
        got = baseline.encoder.decode(batch_scheme.decrypt_plaintext(rot), 64)
        assert np.array_equal(got, np.roll(v, -r).astype(object)), f"r={r}"


def test_rotation_element_wraps(baseline):
    assert baseline.encoder.rotation_element(0) == 1
    assert baseline.encoder.rotation_element(64) == 1  # full cycle at n/2


def test_rotate_and_sum_hmvp(baseline, rng):
    a = rng.integers(-8, 8, (4, 64))
    v = rng.integers(-8, 8, 64)
    ct = baseline.encrypt_slots(v)
    outs = baseline.rotate_and_sum(a, ct)
    got = baseline.decode_rotate_and_sum(outs)
    assert np.array_equal(got, a.astype(object) @ v.astype(object))


def test_rotate_and_sum_rejects_long_rows(baseline, rng):
    with pytest.raises(ValueError):
        baseline.rotate_and_sum(np.zeros((2, 65)), baseline.encrypt_slots([1]))


def test_diagonal_hmvp(baseline, rng):
    a = rng.integers(-8, 8, (4, 16))
    v = rng.integers(-8, 8, 16)
    ct = baseline.encrypt_slots_replicated(v)
    out = baseline.diagonal(a, ct)
    got = baseline.decode_diagonal(out, 4)
    assert np.array_equal(got, a.astype(object) @ v.astype(object))


def test_diagonal_square(baseline, rng):
    a = rng.integers(-8, 8, (8, 8))
    v = rng.integers(-8, 8, 8)
    out = baseline.diagonal(a, baseline.encrypt_slots_replicated(v))
    got = baseline.decode_diagonal(out, 8)
    assert np.array_equal(got, a.astype(object) @ v.astype(object))


def test_diagonal_layout_validation(baseline, rng):
    with pytest.raises(ValueError, match="m <= n_cols"):
        baseline.diagonal(np.zeros((8, 4)), baseline.encrypt_slots([0]))
    with pytest.raises(ValueError, match="m \\| n_cols"):
        baseline.diagonal(np.zeros((3, 16)), baseline.encrypt_slots([0]))


def test_replication_validation(baseline):
    with pytest.raises(ValueError, match="divide"):
        baseline.encrypt_slots_replicated(np.zeros(3))


# -- op-count models ----------------------------------------------------------------


def test_rotate_and_sum_scales_m_log_n():
    small = rotate_and_sum_op_count(16, 4096, 2, 3)
    big = rotate_and_sum_op_count(32, 4096, 2, 3)
    assert big.automorphisms == 2 * small.automorphisms
    # log2(4096/2) = 11 rotations per row
    assert small.automorphisms == 16 * 11


def test_diagonal_scales_m():
    c = diagonal_op_count(64, 64, 2, 3)
    assert c.automorphisms == 63  # m-1 diagonal rotations, no fold needed
    c2 = diagonal_op_count(64, 256, 2, 3)
    assert c2.automorphisms == 63 + 2  # + log2(256/64) fold rotations


def test_coefficient_beats_baselines_in_keyswitches():
    """The paper's core §II-E claim, in key-switch counts."""
    from repro.core.complexity import batch_cost, coefficient_cost, diagonal_cost

    m, n = 4096, 4096
    coeff = coefficient_cost(m, n, 4096)
    batch = batch_cost(m, n, 4096)
    diag = diagonal_cost(m, n, 4096)
    assert coeff.rotations == 0
    assert batch.he_ops > diag.he_ops > coeff.he_ops * 1.5
    assert coeff.keyswitches <= diag.keyswitches
