"""Interconnect topology graphs for the cluster network simulator.

A :class:`Topology` is a directed multigraph of named routers joined by
:class:`Link` edges, plus an ``endpoints`` map from cluster endpoint ids
(node ids, and :data:`COORDINATOR` for the host) to the router each one
injects into and drains from.  The graph is *pure data*: bandwidth is
bytes per cycle, latency is pipeline cycles per hop, and routing is a
precomputed deterministic next-hop table (BFS shortest paths, ties broken
by lowest link id) so the event simulator in :mod:`repro.hw.netsim` never
has to make a choice at run time.

Four builders cover the design space the partition planner explores:

``ideal``
    No links at all.  Messages teleport with zero cycles — this is the
    calibration topology that must reproduce the pre-netsim free-comm
    behaviour bit-exactly (flits are still counted, cycles are not).
``ring``
    One router per node on a bidirectional ring, host attached to the
    lowest-rank router.  Worst-case hop count grows with K/2 and every
    hop re-serialises the flit, so gather traffic melts under load.
``mesh``
    Near-square 2D mesh with XY dimension-ordered shortest paths (the
    BFS table reproduces XY order through the tie-break), host attached
    at the (0, 0) corner.
``fat-tree``
    Two-level tree: leaf switches with ``arity`` nodes each, uplinks and
    the host link fattened by ``arity`` so the core is non-blocking —
    the "spend wires to buy back cycles" end of the DSE axis.

Node ids are *persistent* ids, not dense indices — the elastic
membership layer hands us sets like ``{0, 2, 5}`` after churn.  Builders
sort the ids and assign positions by rank, so the same id set always
yields the same wiring.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = [
    "COORDINATOR",
    "HOST_ROUTER",
    "Link",
    "Topology",
    "TopologyError",
    "TOPOLOGY_KINDS",
    "build_topology",
    "fat_tree_topology",
    "ideal_topology",
    "mesh2d_topology",
    "ring_topology",
]

#: Endpoint id of the coordinator/host in every topology.
COORDINATOR = -1

#: Router name the coordinator endpoint attaches to.
HOST_ROUTER = "host"


class TopologyError(ValueError):
    """Raised for malformed graphs or unroutable endpoint pairs."""


@dataclass(frozen=True)
class Link:
    """One directed wire between two routers."""

    link_id: int
    src: str
    dst: str
    #: bytes accepted per cycle once the head flit wins arbitration
    bandwidth: int
    #: pipeline cycles between leaving ``src`` and entering ``dst``
    latency: int
    #: non-empty on links that form a dependency cycle (e.g. one ring
    #: direction); the simulator applies bubble flow control when a flit
    #: *enters* a labelled channel so the cycle can never fill and
    #: deadlock.  Acyclic fabrics (mesh, tree) leave this empty.
    channel: str = ""

    @property
    def name(self) -> str:
        return f"{self.src}->{self.dst}"

    def serialization_cycles(self, nbytes: int) -> int:
        """Cycles the link stays busy shifting ``nbytes`` out."""
        if self.bandwidth <= 0:
            raise TopologyError(f"link {self.name} has no bandwidth")
        return max(1, -(-int(nbytes) // self.bandwidth))


@dataclass
class Topology:
    """Routers + links + endpoint attachment, with routing precomputed."""

    name: str
    kind: str
    routers: Tuple[str, ...]
    endpoints: Dict[int, str]
    links: Tuple[Link, ...]
    #: ideal topologies teleport: no links, no cycles, flits still counted
    ideal: bool = False
    _next_hop: Dict[Tuple[str, str], Link] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        router_set = set(self.routers)
        if len(router_set) != len(self.routers):
            raise TopologyError(f"duplicate router names in {self.routers}")
        for ep, router in self.endpoints.items():
            if router not in router_set:
                raise TopologyError(
                    f"endpoint {ep} attaches to unknown router {router!r}"
                )
        seen_ids: Set[int] = set()
        for link in self.links:
            if link.src not in router_set or link.dst not in router_set:
                raise TopologyError(f"link {link.name} touches unknown router")
            if link.src == link.dst:
                raise TopologyError(f"self-loop link {link.name}")
            if link.link_id in seen_ids:
                raise TopologyError(f"duplicate link id {link.link_id}")
            seen_ids.add(link.link_id)
        if not self.ideal:
            self._build_routing()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _build_routing(self) -> None:
        """BFS shortest-path next-hop table, lowest link id breaks ties.

        One BFS per destination router over the *reversed* graph gives
        hop distances; the next hop from ``r`` toward ``d`` is the
        outgoing link whose far end is strictly closer, picking the
        smallest ``link_id`` among equals.  Pure function of the graph —
        no iteration-order or hash dependence.
        """
        out_links: Dict[str, List[Link]] = {r: [] for r in self.routers}
        in_links: Dict[str, List[Link]] = {r: [] for r in self.routers}
        for link in sorted(self.links, key=lambda l: l.link_id):
            out_links[link.src].append(link)
            in_links[link.dst].append(link)
        for dst in self.routers:
            dist = {dst: 0}
            frontier = [dst]
            while frontier:
                nxt: List[str] = []
                for router in frontier:
                    for link in in_links[router]:
                        if link.src not in dist:
                            dist[link.src] = dist[router] + 1
                            nxt.append(link.src)
                nxt.sort()
                frontier = nxt
            for router in self.routers:
                if router == dst:
                    continue
                if router not in dist:
                    continue
                for link in out_links[router]:
                    if dist.get(link.dst, math.inf) == dist[router] - 1:
                        self._next_hop[(router, dst)] = link
                        break
        # every endpoint pair must be mutually routable
        attach = sorted(set(self.endpoints.values()))
        for a in attach:
            for b in attach:
                if a != b and (a, b) not in self._next_hop:
                    raise TopologyError(
                        f"no route between routers {a!r} and {b!r}"
                    )

    def next_link(self, router: str, dst_router: str) -> Link:
        try:
            return self._next_hop[(router, dst_router)]
        except KeyError:
            raise TopologyError(
                f"no route from {router!r} to {dst_router!r}"
            ) from None

    def route(self, src_ep: int, dst_ep: int) -> List[Link]:
        """Full link path between two endpoints ([] on ideal graphs)."""
        if self.ideal:
            return []
        here = self.endpoints[src_ep]
        there = self.endpoints[dst_ep]
        path: List[Link] = []
        while here != there:
            link = self.next_link(here, there)
            path.append(link)
            here = link.dst
            if len(path) > len(self.links):
                raise TopologyError("routing loop detected")
        return path

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(e for e in self.endpoints if e != COORDINATOR))

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "ideal": self.ideal,
            "routers": list(self.routers),
            "endpoints": {str(k): v for k, v in sorted(self.endpoints.items())},
            "links": [
                {
                    "id": l.link_id,
                    "src": l.src,
                    "dst": l.dst,
                    "bandwidth": l.bandwidth,
                    "latency": l.latency,
                    "channel": l.channel,
                }
                for l in self.links
            ],
        }


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def _sorted_ids(node_ids: Iterable[int]) -> List[int]:
    ids = sorted(int(n) for n in node_ids)
    if not ids:
        raise TopologyError("need at least one node endpoint")
    if len(set(ids)) != len(ids):
        raise TopologyError(f"duplicate node ids {ids}")
    if COORDINATOR in ids:
        raise TopologyError("coordinator id is implicit, not a node id")
    return ids


class _LinkFactory:
    """Hands out links with dense deterministic ids."""

    def __init__(self) -> None:
        self._links: List[Link] = []

    def pair(
        self,
        a: str,
        b: str,
        bandwidth: int,
        latency: int,
        channel_ab: str = "",
        channel_ba: str = "",
    ) -> None:
        """One link in each direction."""
        self.one(a, b, bandwidth, latency, channel_ab)
        self.one(b, a, bandwidth, latency, channel_ba)

    def one(
        self,
        src: str,
        dst: str,
        bandwidth: int,
        latency: int,
        channel: str = "",
    ) -> None:
        self._links.append(
            Link(
                link_id=len(self._links),
                src=src,
                dst=dst,
                bandwidth=int(bandwidth),
                latency=int(latency),
                channel=channel,
            )
        )

    def done(self) -> Tuple[Link, ...]:
        return tuple(self._links)


def ideal_topology(node_ids: Iterable[int]) -> Topology:
    """Zero-cost teleport fabric: the free-comm calibration point."""
    ids = _sorted_ids(node_ids)
    endpoints = {nid: "ether" for nid in ids}
    endpoints[COORDINATOR] = "ether"
    return Topology(
        name="ideal",
        kind="ideal",
        routers=("ether",),
        endpoints=endpoints,
        links=(),
        ideal=True,
    )


def ring_topology(
    node_ids: Iterable[int],
    bandwidth: int = 64,
    latency: int = 4,
) -> Topology:
    """Bidirectional ring, host hung off the lowest-rank router."""
    ids = _sorted_ids(node_ids)
    k = len(ids)
    routers = tuple(f"r{i}" for i in range(k)) + (HOST_ROUTER,)
    endpoints = {nid: f"r{rank}" for rank, nid in enumerate(ids)}
    endpoints[COORDINATOR] = HOST_ROUTER
    lf = _LinkFactory()
    if k > 1:
        for i in range(k):
            j = (i + 1) % k
            if k == 2 and i == 1:
                break  # a 2-ring is a single bidirectional pair
            lf.pair(f"r{i}", f"r{j}", bandwidth, latency, "cw", "ccw")
    lf.pair(HOST_ROUTER, "r0", bandwidth, latency)
    return Topology(
        name=f"ring{k}",
        kind="ring",
        routers=routers,
        endpoints=endpoints,
        links=lf.done(),
    )


def mesh2d_topology(
    node_ids: Iterable[int],
    bandwidth: int = 64,
    latency: int = 4,
) -> Topology:
    """Near-square 2D mesh, nodes placed row-major, host at (0, 0)."""
    ids = _sorted_ids(node_ids)
    k = len(ids)
    width = max(1, math.ceil(math.sqrt(k)))
    height = math.ceil(k / width)
    routers = tuple(
        f"m{x}_{y}" for y in range(height) for x in range(width)
    ) + (HOST_ROUTER,)
    endpoints: Dict[int, str] = {}
    for rank, nid in enumerate(ids):
        x, y = rank % width, rank // width
        endpoints[nid] = f"m{x}_{y}"
    endpoints[COORDINATOR] = HOST_ROUTER
    lf = _LinkFactory()
    for y in range(height):
        for x in range(width):
            if x + 1 < width:
                lf.pair(f"m{x}_{y}", f"m{x + 1}_{y}", bandwidth, latency)
            if y + 1 < height:
                lf.pair(f"m{x}_{y}", f"m{x}_{y + 1}", bandwidth, latency)
    lf.pair(HOST_ROUTER, "m0_0", bandwidth, latency)
    return Topology(
        name=f"mesh{width}x{height}",
        kind="mesh",
        routers=routers,
        endpoints=endpoints,
        links=lf.done(),
    )


def fat_tree_topology(
    node_ids: Iterable[int],
    bandwidth: int = 64,
    latency: int = 4,
    arity: int = 2,
) -> Topology:
    """Two-level tree with ``arity``-fattened uplinks and host link."""
    if arity < 1:
        raise TopologyError(f"arity must be >= 1, got {arity}")
    ids = _sorted_ids(node_ids)
    k = len(ids)
    leaves = math.ceil(k / arity)
    routers = tuple(f"l{i}" for i in range(leaves)) + ("root", HOST_ROUTER)
    endpoints: Dict[int, str] = {}
    for rank, nid in enumerate(ids):
        endpoints[nid] = f"l{rank // arity}"
    endpoints[COORDINATOR] = HOST_ROUTER
    lf = _LinkFactory()
    fat = int(bandwidth) * arity
    for i in range(leaves):
        lf.pair(f"l{i}", "root", fat, latency)
    lf.pair(HOST_ROUTER, "root", fat, latency)
    return Topology(
        name=f"fat-tree{k}",
        kind="fat-tree",
        routers=routers,
        endpoints=endpoints,
        links=lf.done(),
    )


TOPOLOGY_KINDS: Tuple[str, ...] = ("ideal", "ring", "mesh", "fat-tree")


def build_topology(
    kind: str,
    node_ids: Sequence[int],
    bandwidth: int = 64,
    latency: int = 4,
    arity: int = 2,
) -> Topology:
    """Build a topology by name (``fat_tree`` accepted as an alias)."""
    canonical = kind.strip().lower().replace("_", "-")
    if canonical == "ideal":
        return ideal_topology(node_ids)
    if canonical == "ring":
        return ring_topology(node_ids, bandwidth=bandwidth, latency=latency)
    if canonical == "mesh":
        return mesh2d_topology(node_ids, bandwidth=bandwidth, latency=latency)
    if canonical == "fat-tree":
        return fat_tree_topology(
            node_ids, bandwidth=bandwidth, latency=latency, arity=arity
        )
    raise TopologyError(
        f"unknown topology {kind!r}; expected one of {TOPOLOGY_KINDS}"
    )
