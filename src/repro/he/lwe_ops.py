"""LWE-domain operations: modulus switching and LWE→LWE key switching.

The Chen et al. conversion toolkit [7] the paper builds on covers more
than extraction and packing: once a value lives in an LWE ciphertext it
can be *shrunk* — switched to a smaller modulus and to a shorter secret
— before being shipped or fed to an LWE-native scheme (the TFHE leg of
the hybrid schemes the paper's introduction mentions).  This module
implements both primitives over the CHAM parameter family:

* :func:`lwe_modswitch` — rescale an RNS LWE ciphertext from ``Q`` to a
  single word-sized modulus ``q'`` (round each component); the message
  scale shrinks from ``Q/t`` to ``q'/t`` and the noise to
  ``noise * q'/Q + O(||s||_1)``;
* :class:`LweKeySwitchKey` / :func:`lwe_keyswitch` — re-encrypt under a
  shorter LWE secret with base-``2^w`` gadget decomposition, the standard
  dimension-reduction step (e.g. 4096 → 512) that makes LWE ciphertexts
  cheap to transmit: a switched ciphertext is ``(dim+1)`` words instead
  of ``2 * L * N``.

Everything here is plain integer arithmetic over vectors; none of it
needs the ring structure, which is why CHAM leaves these steps to the
host CPU (they are far below the roofline's memory ridge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .context import CheContext
from .lwe import LweCiphertext

__all__ = [
    "PlainLwe",
    "lwe_modswitch",
    "LweKeySwitchKey",
    "generate_lwe_keyswitch_key",
    "lwe_keyswitch",
    "decrypt_plain_lwe",
]


@dataclass
class PlainLwe:
    """A single-modulus LWE ciphertext ``(b, a_vec)`` mod ``q``."""

    q: int
    b: int
    a: np.ndarray  # (dim,) object ints in [0, q)

    @property
    def dimension(self) -> int:
        return int(self.a.shape[0])

    def __add__(self, other: "PlainLwe") -> "PlainLwe":
        if self.q != other.q or self.dimension != other.dimension:
            raise ValueError("LWE mismatch")
        return PlainLwe(
            self.q,
            (self.b + other.b) % self.q,
            (self.a + other.a) % self.q,
        )


def _round_div(x: int, num: int, den: int) -> int:
    """round(x * num / den) with exact integer arithmetic."""
    return (2 * x * num + den) // (2 * den)


def lwe_modswitch(lwe: LweCiphertext, q_new: int) -> PlainLwe:
    """Switch an RNS LWE ciphertext from ``Q = prod(basis)`` down to
    ``q_new`` (single word) by coordinate-wise rounding."""
    basis = lwe.basis
    big_q = basis.product
    if q_new >= big_q:
        raise ValueError("modulus switching must go downward")
    # compose the RNS coordinates exactly (LWE objects are small)
    b_int = int(basis.compose(lwe.b.reshape(len(basis), 1))[0])
    a_int = basis.compose(lwe.a)
    b_new = _round_div(b_int, q_new, big_q) % q_new
    a_new = np.array(
        [_round_div(int(v), q_new, big_q) % q_new for v in a_int], dtype=object
    )
    return PlainLwe(q=q_new, b=b_new, a=a_new)


def decrypt_plain_lwe(
    ctx: CheContext, sk_vec: np.ndarray, lwe: PlainLwe, t: Optional[int] = None
) -> int:
    """Decrypt a single-modulus LWE: ``round(t*(b + <a,s>)/q) mod t``."""
    t = t if t is not None else ctx.t
    phase = (lwe.b + int(np.dot(lwe.a, sk_vec.astype(object)))) % lwe.q
    if phase > lwe.q // 2:
        phase -= lwe.q
    m = (2 * phase * t + lwe.q) // (2 * lwe.q) % t
    return int(m - t) if m > t // 2 else int(m)


@dataclass
class LweKeySwitchKey:
    """Gadget-decomposed LWE→LWE switching key.

    ``key[i][d]`` encrypts ``2^(d*w) * s_src[i]`` under the destination
    secret: shape ``(src_dim, digits)`` of :class:`PlainLwe`.
    """

    q: int
    base_bits: int
    digits: int
    dst_dim: int
    b: np.ndarray  # (src_dim, digits) object
    a: np.ndarray  # (src_dim, digits, dst_dim) object


def generate_lwe_keyswitch_key(
    ctx: CheContext,
    src_key: np.ndarray,
    dst_key: np.ndarray,
    q: int,
    base_bits: int = 7,
    sigma: float = 3.2,
) -> LweKeySwitchKey:
    """Switching key from secret vector ``src_key`` to ``dst_key`` mod ``q``."""
    src_dim = src_key.shape[0]
    dst_dim = dst_key.shape[0]
    digits = -(-q.bit_length() // base_bits)
    rng = ctx.rng
    b = np.empty((src_dim, digits), dtype=object)
    a = np.empty((src_dim, digits, dst_dim), dtype=object)
    dst_obj = dst_key.astype(object)
    for i in range(src_dim):
        for d in range(digits):
            mask = rng.integers(0, q, dst_dim, dtype=np.uint64).astype(object) % q
            e = int(np.rint(rng.normal(0.0, sigma)))
            msg = (int(src_key[i]) << (d * base_bits)) % q
            b[i, d] = (msg + e - int(np.dot(mask, dst_obj))) % q
            a[i, d] = mask
    return LweKeySwitchKey(
        q=q, base_bits=base_bits, digits=digits, dst_dim=dst_dim, b=b, a=a
    )


def lwe_keyswitch(lwe: PlainLwe, ksk: LweKeySwitchKey) -> PlainLwe:
    """Re-encrypt ``lwe`` under the key-switch key's destination secret.

    Decomposes each mask coordinate into base-``2^w`` digits and takes
    the inner product with the switching key; noise grows by
    ``src_dim * digits * 2^(w-1) * sigma`` — a few bits for the defaults.
    """
    if lwe.q != ksk.q:
        raise ValueError("modulus mismatch between ciphertext and key")
    q = lwe.q
    base = 1 << ksk.base_bits
    b_acc = lwe.b
    a_acc = np.zeros(ksk.dst_dim, dtype=object)
    for i in range(lwe.dimension):
        coeff = int(lwe.a[i])
        for d in range(ksk.digits):
            digit = (coeff >> (d * ksk.base_bits)) & (base - 1)
            if digit == 0:
                continue
            # subtract digit * Enc(2^(dw) * s_src[i]) to cancel <a, s_src>
            b_acc = (b_acc + digit * int(ksk.b[i, d])) % q
            a_acc = (a_acc + digit * ksk.a[i, d]) % q
    return PlainLwe(q=q, b=b_acc, a=a_acc)
