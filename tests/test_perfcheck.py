"""Tests for the perf-regression gate (repro.obs.perfcheck)."""

import json

import pytest

from repro.obs.perfcheck import (
    check_floors,
    evaluate_check,
    latest_record,
    run_metadata,
)


def _write_results(tmp_path, bench, metrics, meta=None):
    record = {"params": {}, "metrics": metrics, "timestamp": "t"}
    if meta is not None:
        record["meta"] = meta
    path = tmp_path / f"BENCH_{bench}.json"
    path.write_text(json.dumps([record]))
    return path


def _write_floors(tmp_path, checks):
    path = tmp_path / "floors.json"
    path.write_text(json.dumps({"version": 1, "checks": checks}))
    return path


# -- run metadata -------------------------------------------------------------


def test_run_metadata_fields():
    meta = run_metadata()
    assert set(meta) == {
        "git_sha", "timestamp_utc", "hostname", "python", "numpy"
    }
    assert all(isinstance(v, str) and v for v in meta.values())
    # inside this repo the SHA resolves to a real 40-hex commit
    import pathlib

    repo = pathlib.Path(__file__).resolve().parents[1]
    if (repo / ".git").exists():
        sha = run_metadata(str(repo))["git_sha"]
        assert len(sha) == 40 and all(c in "0123456789abcdef" for c in sha)


def test_run_metadata_outside_a_repo(tmp_path):
    assert run_metadata(str(tmp_path))["git_sha"] == "unknown"


# -- single-check comparator --------------------------------------------------


def test_floor_passes_within_tolerance_band():
    record = {"metrics": {"speedup": 1.7}}
    check = {"bench": "b", "metric": "speedup", "kind": "floor",
             "value": 2.0, "tolerance": 0.25}
    result = evaluate_check(check, record)
    assert result.passed  # bound = 2.0 * 0.75 = 1.5 <= 1.7
    assert result.bound == pytest.approx(1.5)


def test_floor_fails_on_synthetic_2x_slowdown():
    """Acceptance: the gate demonstrably fails when the measured figure
    halves (a 2x slowdown) against the same pinned floor."""
    check = {"bench": "b", "metric": "goodput", "kind": "floor",
             "value": 100.0, "tolerance": 0.25}
    assert evaluate_check(check, {"metrics": {"goodput": 100.0}}).passed
    slow = evaluate_check(check, {"metrics": {"goodput": 50.0}})
    assert not slow.passed
    assert "floor bound" in slow.reason


def test_ceiling_fails_on_synthetic_2x_slowdown():
    check = {"bench": "b", "metric": "warm_s", "kind": "ceiling",
             "value": 0.1, "tolerance": 0.5}
    assert evaluate_check(check, {"metrics": {"warm_s": 0.1}}).passed
    slow = evaluate_check(check, {"metrics": {"warm_s": 0.2}})
    assert not slow.passed
    assert "ceiling bound" in slow.reason


def test_missing_record_and_metric_fail_explicitly():
    check = {"bench": "b", "metric": "m", "kind": "floor", "value": 1.0}
    gone = evaluate_check(check, None)
    assert not gone.passed and gone.reason == "no benchmark record"
    empty = evaluate_check(check, {"metrics": {}})
    assert not empty.passed and "missing" in empty.reason


def test_invalid_checks_raise():
    with pytest.raises(ValueError):
        evaluate_check(
            {"bench": "b", "metric": "m", "kind": "target", "value": 1.0}, {}
        )
    with pytest.raises(ValueError):
        evaluate_check(
            {"bench": "b", "metric": "m", "value": 1.0, "tolerance": -0.1}, {}
        )


# -- whole-report gate --------------------------------------------------------


def test_check_floors_reads_latest_record(tmp_path):
    path = tmp_path / "BENCH_b.json"
    path.write_text(json.dumps([
        {"metrics": {"speedup": 9.0}},   # stale run
        {"metrics": {"speedup": 3.0}},   # latest run wins
    ]))
    assert latest_record(tmp_path, "b")["metrics"]["speedup"] == 3.0
    floors = _write_floors(tmp_path, [
        {"bench": "b", "metric": "speedup", "kind": "floor",
         "value": 4.0, "tolerance": 0.1},
    ])
    report = check_floors(tmp_path, floors)
    assert not report.passed  # 3.0 < 3.6, despite the stale 9.0


def test_check_floors_report_shape(tmp_path):
    meta = {"git_sha": "f" * 40, "timestamp_utc": "2026-08-08T00:00:00+00:00",
            "hostname": "ci", "python": "3.11.7", "numpy": "2.4.6"}
    _write_results(tmp_path, "batch", {"speedup": 3.3, "warm_s": 0.09}, meta)
    floors = _write_floors(tmp_path, [
        {"bench": "batch", "metric": "speedup", "kind": "floor",
         "value": 3.3, "tolerance": 0.4},
        {"bench": "batch", "metric": "warm_s", "kind": "ceiling",
         "value": 0.1, "tolerance": 1.0},
    ])
    report = check_floors(tmp_path, floors)
    assert report.passed and not report.failures
    assert report.metadata["batch"]["git_sha"] == "f" * 40
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["passed"] is True
    assert len(payload["checks"]) == 2
    text = report.render_text()
    assert "PASS" in text and "FAIL" not in text


def test_check_floors_fails_on_2x_regression(tmp_path):
    """End-to-end: halve both gated metrics and the report must fail with
    each regressed check named."""
    _write_results(tmp_path, "serve",
                   {"ratio_2e_vs_1e": 1.0, "goodput_wall_rps_2e": 34.0})
    floors = _write_floors(tmp_path, [
        {"bench": "serve", "metric": "ratio_2e_vs_1e", "kind": "floor",
         "value": 2.0, "tolerance": 0.25},
        {"bench": "serve", "metric": "goodput_wall_rps_2e", "kind": "floor",
         "value": 65.0, "tolerance": 0.5},
    ])
    report = check_floors(tmp_path, floors)
    assert not report.passed
    failed = {r.metric for r in report.failures}
    assert failed == {"ratio_2e_vs_1e"}  # 34.0 clears the wide wall band
    assert "FAIL" in report.render_text()


def test_empty_floors_raise(tmp_path):
    floors = _write_floors(tmp_path, [])
    with pytest.raises(ValueError):
        check_floors(tmp_path, floors)


def test_shipped_floors_match_bench_metrics():
    """Every check in benchmarks/floors.json names a metric the benches
    actually record, so the gate can never silently rot."""
    import pathlib

    repo = pathlib.Path(__file__).resolve().parents[1]
    floors = json.loads((repo / "benchmarks" / "floors.json").read_text())
    recorded = {
        "serve": {
            "p50_ms_1e", "p95_ms_1e", "p99_ms_1e", "p50_ms_2e", "p95_ms_2e",
            "p99_ms_2e", "goodput_sim_rps_1e", "goodput_sim_rps_2e",
            "goodput_wall_rps_2e", "ratio_2e_vs_1e", "retries_1e",
            "retries_2e",
        },
        "batch": {
            "cold_s", "warm_s", "speedup", "amortized_ntts_per_vector",
        },
        "keyswitch": {
            "ops_per_s_single", "ops_per_s_batched",
        },
        "elastic": {
            "goodput_sim_rps_static", "goodput_sim_rps_elastic",
            "goodput_ratio_vs_static", "makespan_cycles_elastic",
            "migrated_entries", "reencodes", "reencodes_avoided",
            "replica_promotions", "dropped_total",
        },
        "topology": {
            "goodput_sim_rps_ideal", "goodput_sim_rps_ring",
            "goodput_sim_rps_mesh", "goodput_sim_rps_fat_tree",
            "network_cycles_ring", "network_cycles_mesh",
            "network_cycles_fat_tree", "ratio_ideal_vs_ring",
            "ratio_ideal_vs_mesh", "flits_dropped_total",
        },
    }
    assert floors["checks"], "shipped floors pin no checks"
    for check in floors["checks"]:
        assert check["metric"] in recorded[check["bench"]], check
        assert check["kind"] in ("floor", "ceiling")
        assert check["tolerance"] >= 0.0
