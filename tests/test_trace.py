"""Tests for pipeline trace capture and rendering."""

import pytest

from repro.hw.arch import EngineConfig
from repro.hw.trace import capture_trace, render_gantt


@pytest.fixture(scope="module")
def trace64():
    return capture_trace(EngineConfig(), rows=64)


def test_event_counts(trace64):
    assert len(trace64.dot_events) == 64
    assert len(trace64.pack_events) == 63


def test_events_are_ordered(trace64):
    cycles = [e.cycle for e in trace64.events]
    assert cycles == sorted(cycles)


def test_trace_levels_cover_tree(trace64):
    assert trace64.max_pack_level() == 6  # log2(64)
    per_level = {}
    for e in trace64.pack_events:
        per_level[e.detail] = per_level.get(e.detail, 0) + 1
    assert per_level == {1: 32, 2: 16, 3: 8, 4: 4, 5: 2, 6: 1}


def test_overlap_exists(trace64):
    """Pack reductions start while dot products still stream — the
    macro-pipeline overlap of Fig. 1b."""
    overlap = trace64.first_overlap_cycle()
    assert overlap is not None
    assert overlap < trace64.dot_events[-1].cycle


def test_trace_agrees_with_stats(trace64):
    assert trace64.stats.reductions == len(trace64.pack_events)
    assert trace64.events[-1].cycle <= trace64.stats.total_cycles


def test_render_gantt(trace64):
    art = render_gantt(trace64, width=60)
    lines = art.splitlines()
    assert lines[0].startswith("cycles 0 ..")
    assert any(line.startswith("dot ") for line in lines)
    assert any(line.startswith("pack L1") for line in lines)
    assert any(line.startswith("pack L6") for line in lines)
    # the dot lane is busy from early on
    dot_line = next(line for line in lines if line.startswith("dot"))
    assert "#" in dot_line


def test_trace_with_column_tiles():
    trace = capture_trace(EngineConfig(), rows=8, col_tiles=2)
    # only fully-aggregated rows reach the pack side
    assert len(trace.dot_events) == 8
    assert trace.stats.dot_products == 16
