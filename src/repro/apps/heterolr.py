"""Heterogeneous (vertically partitioned) logistic regression — §V-B3.

Implements the Hardy et al. HeteroLR protocol the paper accelerates:
party A and party B hold disjoint feature columns of the same samples,
party B additionally holds the labels, and a semi-honest *arbiter* holds
the decryption key.  Per mini-batch:

1. each party computes its half of the logit ``z = X_A w_A + X_B w_B``;
2. A encrypts its half; B forms the encrypted Taylor residual
   ``[[e]] = [[z_A]] + z_B + (2 - 4y)`` (so that the gradient of the
   degree-1 sigmoid approximation is ``X^T e / (4m)`` — the 1/4 stays in
   the clear and no encrypted scalar multiplication is needed);
3. both parties compute their encrypted gradient block ``X_P^T [[e]]``
   — the homomorphic matrix-vector product CHAM accelerates — and blind
   it with an additive mask before the arbiter decrypts.

Three interchangeable crypto backends mirror Fig. 7's systems:
:class:`PlainBackend` (cleartext oracle), :class:`PaillierBackend`
(FATE's original), and :class:`BfvBackend` (the paper's replacement,
running the real Alg. 1 pipeline).  The trainer records per-step
operation tallies so the performance benchmark can price each backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import obs
from ..core.hmvp import TiledHmvp
from ..he.bfv import BfvScheme
from ..he.encoder import FixedPointCodec
from ..he.paillier import Paillier
from .datasets import VerticalDataset

__all__ = [
    "LrConfig",
    "StepCounts",
    "PlainBackend",
    "PaillierBackend",
    "BfvBackend",
    "HeteroLrTrainer",
    "sigmoid",
    "taylor_sigmoid",
]


def sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-z))


def taylor_sigmoid(z: np.ndarray) -> np.ndarray:
    """The degree-1 approximation HeteroLR trains against: 0.25 z + 0.5."""
    return 0.25 * z + 0.5


@dataclass
class LrConfig:
    """Training hyper-parameters."""

    learning_rate: float = 0.15
    epochs: int = 5
    batch_size: int = 64
    frac_bits: int = 13
    l2: float = 0.0


@dataclass
class StepCounts:
    """Homomorphic operation tallies per protocol step (for perf models)."""

    encryptions: int = 0
    decryptions: int = 0
    ct_additions: int = 0
    matvec_rows: int = 0
    matvec_cols: int = 0
    matvecs: int = 0

    def merge(self, other: "StepCounts") -> None:
        for name in vars(self):
            setattr(self, name, getattr(self, name) + getattr(other, name))


class PlainBackend:
    """Cleartext oracle backend (no crypto, exact floats)."""

    name = "plain"

    def __init__(self) -> None:
        self.counts = StepCounts()

    def encrypt_residual(self, e: np.ndarray) -> np.ndarray:
        return e.copy()

    def combine_residual(self, enc_e, z_own: np.ndarray, offset: np.ndarray):
        return enc_e + z_own + offset

    def gradient(self, features: np.ndarray, enc_e) -> np.ndarray:
        return features.T @ enc_e

    def decrypt_gradient(self, enc_grad, count: int) -> np.ndarray:
        return np.asarray(enc_grad[:count], dtype=np.float64)


class PaillierBackend:
    """FATE's original Paillier backend (real Paillier, fixed-point)."""

    name = "paillier"

    def __init__(
        self, key_bits: int = 512, frac_bits: int = 13, seed: Optional[int] = 0
    ) -> None:
        self.paillier = Paillier(bits=key_bits, seed=seed)
        self.codec = FixedPointCodec(self.paillier.pk.n, frac_bits)
        self.frac_bits = frac_bits
        self.counts = StepCounts()

    def encrypt_residual(self, e: np.ndarray) -> List[int]:
        enc = self.codec.encode(e)
        self.counts.encryptions += len(enc)
        return self.paillier.encrypt_vector(enc)

    def combine_residual(
        self, enc_e: List[int], z_own: np.ndarray, offset: np.ndarray
    ) -> List[int]:
        add = self.codec.encode(z_own + offset)
        self.counts.ct_additions += len(enc_e)
        return [
            self.paillier.add_plain(c, int(v)) for c, v in zip(enc_e, add)
        ]

    def gradient(self, features: np.ndarray, enc_e: List[int]) -> List[int]:
        fixed = np.rint(features.T * (1 << self.frac_bits)).astype(object)
        self.counts.matvecs += 1
        self.counts.matvec_rows += fixed.shape[0]
        self.counts.matvec_cols += fixed.shape[1]
        return self.paillier.matvec(fixed, enc_e)

    def decrypt_gradient(self, enc_grad: List[int], count: int) -> np.ndarray:
        self.counts.decryptions += count
        vals = self.paillier.decrypt_vector(enc_grad[:count])
        return np.array(vals, dtype=np.float64) / float(
            1 << (2 * self.frac_bits)
        )


class BfvBackend:
    """The paper's B/FV backend running the real Alg. 1 HMVP pipeline."""

    name = "bfv"

    def __init__(
        self, scheme: BfvScheme, frac_bits: int = 13, mask_gradients: bool = True
    ) -> None:
        self.scheme = scheme
        self.tiler = TiledHmvp(scheme)
        self.codec = FixedPointCodec(scheme.params.plain_modulus, frac_bits)
        self.frac_bits = frac_bits
        #: blind gradients before the arbiter decrypts (Hardy et al.'s
        #: masking step); exact in Z_t, so results are unchanged
        self.mask_gradients = mask_gradients
        self._mask_rng = np.random.default_rng(0xA5C0)
        self.counts = StepCounts()

    def encrypt_residual(self, e: np.ndarray):
        fixed = self.codec.encode(e)
        self.counts.encryptions += 1
        return self.tiler.encrypt_vector(fixed)

    def combine_residual(self, enc_e, z_own: np.ndarray, offset: np.ndarray):
        add = self.codec.encode(z_own + offset)
        ring_n = self.scheme.params.n
        out = []
        for i, ct in enumerate(enc_e):
            chunk = add[i * ring_n : (i + 1) * ring_n]
            pt = self.scheme.encoder.encode_vector(chunk)
            out.append(ct.add_plain(pt))
            self.counts.ct_additions += 1
        return out

    def gradient(self, features: np.ndarray, enc_e):
        fixed = np.asarray(
            np.rint(features.T * (1 << self.frac_bits)), dtype=np.int64
        )
        self.counts.matvecs += 1
        self.counts.matvec_rows += fixed.shape[0]
        self.counts.matvec_cols += fixed.shape[1]
        return self.tiler.multiply(fixed, enc_e)

    def decrypt_gradient(self, result, count: int) -> np.ndarray:
        t = self.scheme.params.plain_modulus
        if self.mask_gradients:
            # the party blinds each packed ciphertext before handing it
            # to the arbiter, then removes the mask from the decryption
            masks = []
            blinded_packs = []
            n = self.scheme.params.n
            for pack in result.packs:
                mask = self._mask_rng.integers(
                    0, t, pack.count, dtype=np.uint64
                ).astype(object)
                coeffs = np.zeros(n, dtype=object)
                stride = n >> pack.scale_pow2
                scale = 1 << pack.scale_pow2
                for i in range(pack.count):
                    coeffs[i * stride] = int(mask[i]) * scale % t
                pt_mask = self.scheme.encoder.encode_coeffs(coeffs)
                blinded_packs.append(
                    (pack.ct.add_plain(pt_mask), pack.count, pack.scale_pow2)
                )
                masks.append(mask)
            vals = []
            for (ct, cnt, scale_pow2), mask in zip(blinded_packs, masks):
                pt = self.scheme.decrypt_plaintext(ct)  # arbiter
                decoded = self.scheme.encoder.decode_packed(pt, cnt, scale_pow2)
                unmasked = (np.asarray(decoded, dtype=object) - mask) % t
                half = t // 2
                vals.append(np.where(unmasked > half, unmasked - t, unmasked))
            self.counts.decryptions += len(result.packs)
            flat = np.concatenate(vals)[:count]
            return flat.astype(np.float64) / float(1 << (2 * self.frac_bits))
        self.counts.decryptions += len(result.packs)
        vals = result.decrypt(self.scheme)[:count]
        return vals.astype(np.float64) / float(1 << (2 * self.frac_bits))


@dataclass
class TrainHistory:
    """Loss/accuracy per epoch plus accumulated op tallies."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)
    counts: StepCounts = field(default_factory=StepCounts)


class HeteroLrTrainer:
    """Two-party HeteroLR with a pluggable crypto backend."""

    def __init__(self, backend, config: Optional[LrConfig] = None) -> None:
        self.backend = backend
        self.config = config or LrConfig()

    # -- protocol steps ----------------------------------------------------------

    def _batch_gradients(
        self,
        x_a: np.ndarray,
        x_b: np.ndarray,
        y: np.ndarray,
        w_a: np.ndarray,
        w_b: np.ndarray,
    ):
        """One encrypted mini-batch: returns (grad_a, grad_b)."""
        m = x_a.shape[0]
        z_a = x_a @ w_a
        z_b = x_b @ w_b
        # Party A encrypts its half of the logit
        enc = self.backend.encrypt_residual(z_a)
        # Party B folds in its half and the label offset: e = z + 2 - 4y
        offset = 2.0 - 4.0 * y
        enc_e = self.backend.combine_residual(enc, z_b, offset)
        # both parties compute their gradient block homomorphically
        enc_ga = self.backend.gradient(x_a, enc_e)
        enc_gb = self.backend.gradient(x_b, enc_e)
        # the arbiter decrypts; BFV/Paillier backends blind the gradient
        # first and strip the mask afterwards (exact in Z_t)
        g_a = self.backend.decrypt_gradient(enc_ga, x_a.shape[1]) / (4.0 * m)
        g_b = self.backend.decrypt_gradient(enc_gb, x_b.shape[1]) / (4.0 * m)
        return g_a, g_b

    def train(self, data: VerticalDataset) -> "tuple[np.ndarray, TrainHistory]":
        """Run the federated training loop; returns (weights, history)."""
        cfg = self.config
        w_a = np.zeros(data.features_a.shape[1])
        w_b = np.zeros(data.features_b.shape[1])
        history = TrainHistory()
        for epoch in range(cfg.epochs):
            with obs.span(
                "heterolr.epoch", epoch=epoch, backend=self.backend.name
            ):
                for batch_idx, (_sl, x_a, x_b, y) in enumerate(
                    data.batches(cfg.batch_size)
                ):
                    with obs.span(
                        "heterolr.batch", epoch=epoch, batch=batch_idx
                    ):
                        g_a, g_b = self._batch_gradients(x_a, x_b, y, w_a, w_b)
                    obs.inc("apps.heterolr.batches")
                    if cfg.l2:
                        g_a = g_a + cfg.l2 * w_a
                        g_b = g_b + cfg.l2 * w_b
                    w_a = w_a - cfg.learning_rate * g_a
                    w_b = w_b - cfg.learning_rate * g_b
            w = np.concatenate([w_a, w_b])
            z = data.full_features @ w
            pred = taylor_sigmoid(z)
            eps = 1e-9
            clipped = np.clip(pred, eps, 1 - eps)
            loss = -np.mean(
                data.labels * np.log(clipped)
                + (1 - data.labels) * np.log(1 - clipped)
            )
            acc = float(np.mean((z > 0) == (data.labels == 1)))
            obs.inc("apps.heterolr.epochs")
            obs.set_gauge("apps.heterolr.loss", float(loss))
            obs.set_gauge("apps.heterolr.accuracy", acc)
            history.losses.append(float(loss))
            history.accuracies.append(acc)
        history.counts.merge(self.backend.counts)
        return np.concatenate([w_a, w_b]), history
