"""Extension bench — elastic membership under churn (ISSUE 8).

The elastic controller's economic claim: scale events cost *migrations*
(cache-to-cache copies of already-NTT'd matrix entries), never matrix
re-encodes, and churn barely dents goodput.  This bench drives one
request list through a 4 -> 2 -> 6 node schedule (two kills mid-run,
then four joins) at a 5% injected node-hang rate and records:

* simulated goodput vs the *static* 4-node run on identical data —
  acceptance is elastic goodput >= 0.8x static, with zero dropped
  requests on both;
* the migration ledger: ``migrated_entries`` must be positive (shards
  really moved) and ``reencodes`` must be **zero** (nothing was ever
  re-encoded — the proof the re-partitioning is incremental).

Results append to ``BENCH_elastic.json`` via ``record_result``.
"""

import numpy as np
import pytest
from conftest import print_table, record_result

from repro.cluster import (
    ClusterConfig,
    ClusterExecutor,
    MembershipSchedule,
    PartitionPlanner,
)

REQUESTS = 18
ROWS, COLS = 96, 256
#: a 4x2 shard grid (8 shards) so the incremental rebalance has real
#: granularity to shift load onto joiners — 2 primaries per node at 4
ROW_CUTS = (0, 24, 48, 72, 96)
COL_CUTS = (0, 128, 256)
FAULT_RATE = 0.05
INITIAL_NODES = 4
#: 4 -> 2 at request 8 (two abrupt kills), 2 -> 6 at request 12 (four joins)
SCHEDULE_SPEC = "8:kill:3,8:kill:2,12:join,12:join,12:join,12:join"


@pytest.fixture(scope="module")
def workload(bench_scheme, rng):
    matrix = rng.integers(-30, 30, (ROWS, COLS))
    vectors = [rng.integers(-30, 30, COLS) for _ in range(REQUESTS)]
    return matrix, vectors


def _run(bench_scheme, workload, schedule=None):
    matrix, vectors = workload
    plan = PartitionPlanner(bench_scheme.params.n).plan_from_cuts(
        ROWS, COLS, ROW_CUTS, COL_CUTS
    )
    executor = ClusterExecutor(
        bench_scheme,
        matrix,
        config=ClusterConfig(
            nodes=INITIAL_NODES,
            replication=2,
            max_retries=1,
            fault_rate=FAULT_RATE,
            seed=17,
        ),
        plan=plan,
        schedule=schedule,
    )
    requests = [executor.encrypt_vector(v) for v in vectors]
    results = executor.execute_batch(requests)
    return executor, results


def test_elastic_goodput_survives_scale_schedule(bench_scheme, workload):
    """Acceptance: the 4 -> 2 -> 6 churn run keeps >= 0.8x the static
    4-node goodput, drops nothing, migrates entries, re-encodes never."""
    matrix, vectors = workload
    static_exec, _ = _run(bench_scheme, workload)
    static = static_exec.report()
    assert static.dropped == 0

    schedule = MembershipSchedule.parse(SCHEDULE_SPEC)
    elastic_exec, results = _run(bench_scheme, workload, schedule=schedule)
    elastic = elastic_exec.report()
    membership = elastic.membership

    assert elastic.dropped == 0, "elastic run dropped shards"
    # exactness spot-checks either side of both scale events
    for idx in (0, 9, REQUESTS - 1):
        got = results[idx].decrypt(bench_scheme)[:ROWS]
        want = matrix.astype(object) @ vectors[idx].astype(object)
        assert np.array_equal(got, want)
    assert membership["kills"] == 2 and membership["joins"] == 4
    assert membership["migrated_entries"] > 0, "scale events moved nothing"
    assert membership["reencodes"] == 0, (
        "a scale event re-encoded the matrix — migration is broken"
    )

    ratio = elastic.goodput_sim_rps / static.goodput_sim_rps
    rows = [
        (
            label,
            rep.nodes,
            f"{rep.shard_retries}",
            f"{rep.makespan_cycles:,}",
            f"{rep.goodput_sim_rps:,.1f}",
        )
        for label, rep in (("static 4n", static), ("elastic 4-2-6", elastic))
    ]
    print_table(
        f"Elastic 4->2->6 schedule vs static 4 nodes "
        f"({REQUESTS} reqs, {ROWS}x{COLS}, {FAULT_RATE:.0%} hang rate)",
        ["run", "final nodes", "retries", "makespan cyc",
         "goodput req/s (sim)"],
        rows,
    )
    print_table(
        "Migration ledger (elastic run)",
        ["kills", "joins", "promotions", "migrated", "reencodes",
         "avoided", "goodput ratio"],
        [(membership["kills"], membership["joins"],
          membership["replica_promotions"], membership["migrated_entries"],
          membership["reencodes"], membership["reencodes_avoided"],
          f"{ratio:.2f}x")],
    )
    record_result(
        "elastic",
        {
            "goodput_sim_rps_static": static.goodput_sim_rps,
            "goodput_sim_rps_elastic": elastic.goodput_sim_rps,
            "goodput_ratio_vs_static": ratio,
            "makespan_cycles_elastic": elastic.makespan_cycles,
            "migrated_entries": membership["migrated_entries"],
            "reencodes": membership["reencodes"],
            "reencodes_avoided": membership["reencodes_avoided"],
            "replica_promotions": membership["replica_promotions"],
            "dropped_total": static.dropped + elastic.dropped,
        },
        params={
            "requests": REQUESTS,
            "rows": ROWS,
            "cols": COLS,
            "fault_rate": FAULT_RATE,
            "replication": 2,
            "initial_nodes": INITIAL_NODES,
            "schedule": SCHEDULE_SPEC,
        },
    )
    assert ratio >= 0.8, (
        f"elastic goodput only {ratio:.2f}x the static 4-node figure "
        f"(per-node busy {elastic.per_node_busy_cycles})"
    )
