"""Extension bench — batched-processing amortization (§I's motivation).

The introduction cites batching as the standard HE amortization ("up to
4096 encrypted images can be evaluated simultaneously").  For CHAM's
workload the batched shape is one plaintext matrix against many
encrypted vectors: the row encodings and their forward NTTs are hoisted
once (URAM-resident) and reused, so per-vector cost drops by exactly the
hoisted transforms.  This bench measures the functional amortization and
prices it with the hardware model.
"""

import time

import numpy as np
import pytest
from conftest import print_table, record_result

from repro.core.batch import BatchedHmvp
from repro.core.hmvp import hmvp


@pytest.fixture(scope="module")
def batched(bench_scheme, rng):
    matrix = rng.integers(-30, 30, (8, 128))
    return BatchedHmvp(bench_scheme, matrix)


def test_amortization_table(bench_scheme, batched):
    rows = []
    m = batched.shape[0]
    for batch in (1, 4, 16, 64):
        total = batched.amortized_op_count(batch)
        per_vec = total.ntts / batch
        rows.append((batch, f"{total.ntts:,}", f"{per_vec:,.1f}"))
    print_table(
        "Batched HMVP: forward NTTs vs batch size (8x128 matrix)",
        ["batch", "total NTTs", "NTTs/vector"],
        rows,
    )
    # per-vector transforms fall monotonically toward the cached floor
    per_vec = [batched.amortized_op_count(b).ntts / b for b in (1, 4, 16, 64)]
    assert per_vec == sorted(per_vec, reverse=True)
    # the floor excludes the m*limbs_aug row transforms entirely
    uncached = 8 * 3  # what the unbatched path pays per vector for rows
    assert per_vec[-1] < per_vec[0]
    assert per_vec[0] - per_vec[-1] > uncached * 0.8


def test_batched_equals_unbatched_functionally(bench_scheme, batched, rng):
    v = rng.integers(-30, 30, 128)
    ct = bench_scheme.encrypt_vector(v)
    got = batched.multiply_one(ct).decrypt(bench_scheme)
    ref = hmvp(bench_scheme, batched.matrix, bench_scheme.encrypt_vector(v)).decrypt(
        bench_scheme
    )
    assert np.array_equal(got, ref)


def test_hardware_batching_throughput():
    """At the hardware level batching keeps the dot stage fed: per-vector
    latency at batch b amortizes the pipeline fill."""
    from repro.hw.arch import cham_default_config
    from repro.hw.pipeline import MacroPipeline

    cfg = cham_default_config()
    pipe = MacroPipeline(cfg.engine)
    single = pipe.simulate_hmvp(64).total_cycles
    # a batch of 16 64-row jobs back to back shares fill/drain
    batched_cycles = pipe.simulate_hmvp(64 * 16).total_cycles
    per_job = batched_cycles / 16
    rows = [
        ("single 64-row job", f"{single:,}"),
        ("per job in a 16-batch", f"{per_job:,.0f}"),
        ("amortization", f"{single / per_job:.2f}x"),
    ]
    print_table("Hardware batching (cycles)", ["scenario", "cycles"], rows)
    assert per_job < single


def test_warm_vs_cold_latency(bench_scheme, batched, rng):
    """Acceptance: serving a batch through the warm (matrix-resident)
    engine is at least 2x faster than the cold per-call path.

    Cold re-encodes and re-transforms every row per vector and packs
    recursively; warm reuses the NTT-domain tiles, hoists the vector
    transform, and runs the vectorized level-order pack.  Results are
    appended to BENCH_batch.json via record_result.
    """
    batch = 8
    vs = [rng.integers(-30, 30, 128) for _ in range(batch)]
    cts = [bench_scheme.encrypt_vector(v) for v in vs]

    # one untimed round of each so caches/JIT-ish warmup cancel out
    batched.multiply_batch(cts[:1])
    hmvp(bench_scheme, batched.matrix, cts[0])

    start = time.perf_counter()
    warm_results = batched.multiply_batch(cts)
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    cold_results = [hmvp(bench_scheme, batched.matrix, ct) for ct in cts]
    cold_s = time.perf_counter() - start

    for w, c in zip(warm_results, cold_results):
        assert np.array_equal(
            w.decrypt(bench_scheme), c.decrypt(bench_scheme)
        )
    speedup = cold_s / warm_s
    print_table(
        f"Warm vs cold batched HMVP (8x128 matrix, batch={batch})",
        ["path", "seconds", "per vector (ms)"],
        [
            ("cold (per-call hmvp)", f"{cold_s:.3f}", f"{1e3 * cold_s / batch:.1f}"),
            ("warm (matrix-resident)", f"{warm_s:.3f}", f"{1e3 * warm_s / batch:.1f}"),
            ("speedup", f"{speedup:.2f}x", ""),
        ],
    )
    record_result(
        "batch",
        {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": speedup,
            "amortized_ntts_per_vector": batched.amortized_op_count(batch).ntts
            / batch,
        },
        params={"rows": 8, "cols": 128, "batch": batch},
    )
    assert speedup >= 2.0, f"warm path only {speedup:.2f}x faster than cold"


@pytest.mark.benchmark(group="batch")
def test_perf_batched_multiply(benchmark, bench_scheme, batched, rng):
    ct = bench_scheme.encrypt_vector(rng.integers(-30, 30, 128))
    benchmark(batched.multiply_one, ct)


@pytest.mark.benchmark(group="batch")
def test_perf_unbatched_multiply(benchmark, bench_scheme, batched, rng):
    v = rng.integers(-30, 30, 128)

    def run():
        return hmvp(bench_scheme, batched.matrix, bench_scheme.encrypt_vector(v))

    benchmark(run)
