"""Tests for the observability layer: metrics registry and span tracer."""

import json
import threading

import pytest

from repro import obs
from repro.obs import MetricsRegistry, Tracer
from repro.obs.tracing import _NULL_SPAN


@pytest.fixture(autouse=True)
def _clean_defaults():
    """Leave the process-wide default instances in their off state."""
    yield
    obs.disable_metrics()
    obs.REGISTRY.reset()
    obs.disable_tracing()
    obs.TRACER.reset()


# -- instruments --------------------------------------------------------------


def test_counter_monotonic():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.inc("a", 5)
    assert reg.counter("a").value == 6
    with pytest.raises(ValueError):
        reg.counter("a").inc(-1)


def test_gauge_last_value_wins():
    reg = MetricsRegistry()
    reg.set_gauge("g", 1.0)
    reg.set_gauge("g", -3.5)
    assert reg.gauge("g").value == -3.5


def test_histogram_streaming_stats():
    reg = MetricsRegistry()
    for v in (2.0, 8.0, 5.0):
        reg.observe("h", v)
    h = reg.histogram("h")
    assert h.count == 3
    assert h.mean == pytest.approx(5.0)
    assert h.summary() == {
        "count": 3, "sum": 15.0, "mean": 5.0, "min": 2.0, "max": 8.0,
    }


def test_empty_histogram_summary_is_defined():
    h = MetricsRegistry().histogram("h")
    assert h.mean == 0.0
    assert h.summary()["count"] == 0


def test_histogram_reservoir_sees_the_late_tail():
    """Regression: the old reservoir kept only the first 65,536 samples,
    so a latency tail arriving after warm-up never moved the percentiles.
    Algorithm R keeps every sample's inclusion probability uniform, so a
    late 50% tail of slow observations must dominate the upper
    percentiles (seeded RNG — deterministic)."""
    from repro.obs.metrics import Histogram

    h = Histogram("lat")
    cap = Histogram.RESERVOIR_CAP
    for _ in range(cap):
        h.observe(1.0)
    # pre-fix these percentiles were frozen at 1.0 forever after
    assert h.percentile(99) == 1.0
    for _ in range(cap):
        h.observe(100.0)
    assert h.count == 2 * cap
    assert h.max == 100.0
    # ~half the reservoir is now late-tail samples; the upper percentiles
    # must reflect them while the lower ones still see the early phase
    assert h.percentile(99) == 100.0
    assert h.percentile(90) == 100.0
    assert h.percentile(10) == 1.0


def test_histogram_reservoir_is_deterministic():
    """Two same-named histograms fed the same stream agree exactly (the
    RNG is seeded from the instrument name)."""
    from repro.obs.metrics import Histogram

    def fill(h):
        for i in range(Histogram.RESERVOIR_CAP + 5000):
            h.observe(float(i))
        return sorted(h._values)

    assert fill(Histogram("a")) == fill(Histogram("a"))


def test_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.gauge("y") is reg.gauge("y")
    assert reg.histogram("z") is reg.histogram("z")


# -- registry behaviour -------------------------------------------------------


def test_disabled_registry_is_a_noop():
    reg = MetricsRegistry(enabled=False)
    reg.inc("a")
    reg.set_gauge("g", 1.0)
    reg.observe("h", 1.0)
    assert len(reg) == 0


def test_snapshot_shape_and_reset():
    reg = MetricsRegistry()
    reg.inc("c", 2)
    reg.set_gauge("g", 7.0)
    reg.observe("h", 1.0)
    snap = reg.snapshot()
    assert snap["counters"] == {"c": 2}
    assert snap["gauges"] == {"g": 7.0}
    assert snap["histograms"]["h"]["count"] == 1
    json.dumps(snap)  # must be JSON-serializable
    reg.reset()
    assert len(reg) == 0
    assert reg.enabled  # reset keeps the switch


def test_registry_thread_safety():
    reg = MetricsRegistry()

    def work():
        for _ in range(1000):
            reg.inc("shared")

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counter("shared").value == 8000


def test_default_registry_enable_disable():
    assert not obs.metrics_enabled()
    obs.inc("off")  # no-op while disabled
    reg = obs.enable_metrics()
    assert reg is obs.default_registry()
    obs.inc("on", 3)
    assert reg.counter("on").value == 3
    assert "off" not in reg.snapshot()["counters"]
    obs.disable_metrics()
    obs.inc("on")
    assert reg.counter("on").value == 3


# -- tracer -------------------------------------------------------------------


def test_disabled_tracer_returns_shared_null_span():
    assert obs.span("x") is _NULL_SPAN
    with obs.span("x") as s:
        s.set(k=1)  # must exist and do nothing
    assert len(obs.TRACER) == 0


def test_span_nesting_depth():
    tr = Tracer()
    with tr.span("outer"):
        with tr.span("inner"):
            pass
    by_name = {s.name: s for s in tr.spans}
    assert by_name["outer"].depth == 0
    assert by_name["inner"].depth == 1
    assert by_name["inner"].ts_us >= by_name["outer"].ts_us
    assert by_name["inner"].dur_us <= by_name["outer"].dur_us


def test_span_args_and_set():
    tr = Tracer()
    with tr.span("op", rows=8) as s:
        s.set(result="ok")
    (spn,) = tr.spans
    assert spn.args == {"rows": 8, "result": "ok"}


def test_add_span_synthetic_timebase():
    tr = Tracer()
    tr.add_span("DOT", ts_us=100.0, dur_us=50.0, track=3, row=7)
    (spn,) = tr.spans
    assert (spn.ts_us, spn.dur_us, spn.track) == (100.0, 50.0, 3)
    assert spn.args == {"row": 7}


def test_chrome_events_metadata_and_order():
    tr = Tracer()
    tr.name_track(1, "lane one")
    tr.add_span("b", ts_us=20.0, dur_us=1.0, track=1)
    tr.add_span("a", ts_us=10.0, dur_us=1.0, track=1)
    events = tr.chrome_events()
    assert events[0]["ph"] == "M"
    assert events[0]["args"]["name"] == "lane one"
    xs = [e for e in events if e["ph"] == "X"]
    assert [e["name"] for e in xs] == ["a", "b"]
    for e in xs:
        assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)


def test_chrome_export_roundtrip(tmp_path):
    tr = Tracer()
    with tr.span("outer"):
        with tr.span("inner"):
            pass
    tr.add_span("sim", ts_us=0.0, dur_us=5.0, track=9)
    path = tmp_path / "trace.json"
    tr.export_chrome_trace(str(path))
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    assert len([e for e in events if e["ph"] == "X"]) == 3
    # ts is monotonically non-decreasing within each track
    per_track = {}
    for e in events:
        if e["ph"] == "X":
            per_track.setdefault(e["tid"], []).append(e["ts"])
    for ts_list in per_track.values():
        assert ts_list == sorted(ts_list)


def test_jsonl_export(tmp_path):
    tr = Tracer()
    with tr.span("one", k=1):
        pass
    path = tmp_path / "spans.jsonl"
    tr.export_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    rec = json.loads(lines[0])
    assert rec["name"] == "one"
    assert rec["args"] == {"k": 1}
    assert rec["dur_us"] >= 0


def test_tracer_reset():
    tr = Tracer()
    with tr.span("x"):
        pass
    assert len(tr) == 1
    tr.reset()
    assert len(tr) == 0


def test_spans_from_threads_get_distinct_tracks():
    tr = Tracer()
    barrier = threading.Barrier(3)  # keep all threads alive at once so
    # the OS cannot reuse thread identities between them

    def work():
        barrier.wait()
        with tr.span("threaded"):
            barrier.wait()

    threads = [threading.Thread(target=work) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    tracks = {s.track for s in tr.spans}
    assert len(tracks) == 3


# -- instrumentation wiring ---------------------------------------------------


def test_ntt_and_noise_instrumentation_end_to_end():
    """Running a small HMVP with the default instances on populates NTT
    counters, the noise-budget gauge, and the required span names."""
    import numpy as np

    from repro.core.hmvp import hmvp
    from repro.he.bfv import BfvScheme
    from repro.he.noise import packed_slot_positions
    from repro.he.params import toy_params

    reg = obs.enable_metrics()
    obs.enable_tracing()
    rows = 4
    params = toy_params(n=64, plain_bits=30)
    scheme = BfvScheme(params, seed=3, max_pack=rows)
    rng = np.random.default_rng(3)
    matrix = rng.integers(-8, 8, (rows, params.n))
    vector = rng.integers(-8, 8, params.n)
    result = hmvp(scheme, matrix, scheme.encrypt_vector(vector))
    scheme.noise_budget(
        result.packs[0].ct, packed_slot_positions(params.n, rows)
    )
    snap = reg.snapshot()
    assert snap["counters"]["math.ntt.forward"] > 0
    assert snap["counters"]["he.pack.reductions"] == rows - 1
    assert snap["gauges"]["he.noise.budget_bits"] > 0
    names = {s.name for s in obs.TRACER.spans}
    assert {"NTT", "MULTPOLY", "INTT", "RESCALE+EXTRACT", "PACK"} <= names


def test_pipeline_and_runtime_instrumentation():
    from repro.hw.arch import EngineConfig
    from repro.hw.pipeline import MacroPipeline
    from repro.hw.runtime import FpgaRuntime

    reg = obs.enable_metrics()
    MacroPipeline(EngineConfig()).simulate_hmvp(256)
    snap = reg.snapshot()
    assert snap["counters"]["hw.pipeline.reductions"] == 255
    assert 0 < snap["gauges"]["hw.pipeline.dot_occupancy"] <= 1
    # the runtime simulates its own pipeline jobs on top
    runtime = FpgaRuntime()
    runtime.poll(runtime.submit(16))
    runtime.health()
    snap = reg.snapshot()
    assert snap["counters"]["hw.pipeline.reductions"] > 255
    assert snap["gauges"]["hw.runtime.jobs_completed"] == 1
    assert snap["gauges"]["hw.runtime.healthy"] == 1.0


# -- thread-safety under worker pools ------------------------------------------


def test_registry_concurrent_increments_are_exact():
    """N workers hammering one counter must lose no increments."""
    from concurrent.futures import ThreadPoolExecutor

    reg = MetricsRegistry()

    def work(_):
        for _ in range(500):
            reg.inc("c")
            reg.observe("h", 1.0)
        return True

    with ThreadPoolExecutor(max_workers=8) as pool:
        assert all(pool.map(work, range(8)))
    assert reg.counter("c").value == 8 * 500
    assert reg.histogram("h").count == 8 * 500


def test_tracer_concurrent_spans_keep_thread_nesting():
    """Each worker's spans nest within its own track; none are lost."""
    from concurrent.futures import ThreadPoolExecutor

    tracer = Tracer(enabled=True)

    def work(i):
        with tracer.span("outer", worker=i):
            with tracer.span("inner", worker=i):
                pass
        return True

    with ThreadPoolExecutor(max_workers=4) as pool:
        assert all(pool.map(work, range(12)))
    outers = [s for s in tracer.spans if s.name == "outer"]
    inners = [s for s in tracer.spans if s.name == "inner"]
    assert len(outers) == 12 and len(inners) == 12
    for s in inners:
        assert s.depth == 1  # nested under that thread's outer, not another's


def test_tracer_readers_race_writers_without_corruption():
    """Regression: ``name_track``/``chrome_events``/``__len__`` used to
    read shared dicts and the span list without the lock, so a reader
    iterating while a writer recorded raised ``RuntimeError: dictionary
    changed size during iteration`` (nondeterministically under
    ``-n auto``).  Hammer all of them at once; nothing may raise and no
    span may be lost."""
    from concurrent.futures import ThreadPoolExecutor

    tracer = Tracer(enabled=True)
    spans_per_writer, writers, readers = 200, 4, 3

    def write(i):
        for j in range(spans_per_writer):
            tracer.name_track(j % 7, f"lane{j % 7}")
            with tracer.span("w", worker=i, j=j):
                pass
        return True

    def read(_):
        for _ in range(150):
            events = tracer.chrome_events()
            assert len(tracer) >= 0
            assert all("ph" in e for e in events)
        return True

    with ThreadPoolExecutor(max_workers=writers + readers) as pool:
        futures = [pool.submit(write, i) for i in range(writers)]
        futures += [pool.submit(read, i) for i in range(readers)]
        assert all(f.result() for f in futures)
    assert len(tracer) == writers * spans_per_writer


def test_batched_engine_counters_exact_under_pool():
    """The batched HMVP worker pool reports the same counter totals as a
    serial run (per-request work is identical, just interleaved)."""
    import numpy as np

    from repro.core.batch import BatchedHmvp, EncodedMatrixCache
    from repro.he.bfv import BfvScheme
    from repro.he.params import toy_params

    scheme = BfvScheme(toy_params(n=64, plain_bits=30), seed=5, max_pack=4)
    rng = np.random.default_rng(5)
    matrix = rng.integers(-8, 8, (4, 64))
    engine = BatchedHmvp(scheme, matrix, cache=EncodedMatrixCache())
    cts = [scheme.encrypt_vector(rng.integers(-8, 8, 64)) for _ in range(6)]

    def run(workers):
        reg = obs.enable_metrics()
        try:
            engine.multiply_batch(cts, workers=workers)
            return reg.snapshot()["counters"]
        finally:
            obs.disable_metrics()
            obs.REGISTRY.reset()

    serial = run(1)
    pooled = run(4)
    # the serial path fuses all requests into stacked lock-step kernels,
    # so it issues fewer (bigger) modmul dispatches than the pooled
    # per-request path — but every semantic total (coefficients touched,
    # key-switches, pack reductions) must agree exactly
    serial_calls = serial.pop("math.modmul.calls")
    pooled_calls = pooled.pop("math.modmul.calls")
    assert serial_calls <= pooled_calls
    assert pooled == serial
    assert pooled["math.modmul.coefficients"] == serial["math.modmul.coefficients"]
    assert pooled["he.keyswitch.calls"] == serial["he.keyswitch.calls"]
    assert pooled["he.pack.reductions"] == serial["he.pack.reductions"]
    assert pooled["batch.requests"] == 6
    assert pooled["he.pack.calls"] == 6
