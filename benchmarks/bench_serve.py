"""Extension bench — serving-layer latency and goodput under faults.

CHAM's end-to-end story is a host serving heavy request traffic across
*two* compute engines with the CPU+FPGA pipeline overlapped; Chameleon
and FAME both locate the end-to-end win at this scheduling layer.  This
bench drives the async front-end (:mod:`repro.serve`) with a fixed
request list at a 5% injected device-hang rate and records:

* p50/p95/p99 total latency (wall clock, per completed request);
* wall goodput and *simulated* goodput (completed requests per device
  second, from the busiest engine's cycle counter — the deterministic
  multi-engine figure, independent of host GIL effects);
* the acceptance ratio: 2 engines must clear >= 1.5x the simulated
  goodput of 1 engine at micro-batch depth 8.

Results append to ``BENCH_serve.json`` via ``record_result``.
"""

import numpy as np
import pytest
from conftest import print_table, record_result

from repro.serve import ServeConfig, serve_requests

REQUESTS = 64
FAULT_RATE = 0.05
MAX_BATCH = 8


@pytest.fixture(scope="module")
def workload(bench_scheme, rng):
    matrix = rng.integers(-30, 30, (8, 128))
    vectors = [rng.integers(-30, 30, 128) for _ in range(REQUESTS)]
    cts = [bench_scheme.encrypt_vector(v) for v in vectors]
    return matrix, vectors, cts


def _serve(bench_scheme, workload, engines):
    matrix, _vectors, cts = workload
    config = ServeConfig(
        engines=engines,
        max_batch=MAX_BATCH,
        max_wait_ms=2.0,
        queue_capacity=REQUESTS,
        fault_rate=FAULT_RATE,
        max_retries=2,
        backoff_base_ms=0.5,
        seed=11,
    )
    return serve_requests(bench_scheme, matrix, cts, config)


def test_serving_goodput_scales_with_engines(bench_scheme, workload):
    """Acceptance: >= 1.5x simulated goodput for 2 engines vs 1 at
    micro-batch depth 8, with zero dropped requests on both runs."""
    reports = {k: _serve(bench_scheme, workload, k) for k in (1, 2)}
    rows = []
    for k, rep in reports.items():
        assert rep.dropped == 0, f"{k}-engine run dropped requests"
        assert rep.completed == rep.submitted
        rows.append(
            (
                k,
                f"{rep.latency_ms(50):,.1f}",
                f"{rep.latency_ms(95):,.1f}",
                f"{rep.latency_ms(99):,.1f}",
                f"{rep.retries}",
                f"{rep.makespan_cycles:,}",
                f"{rep.goodput_sim_rps:,.0f}",
            )
        )
    print_table(
        f"Serving under {FAULT_RATE:.0%} fault injection "
        f"({REQUESTS} reqs, 8x128 matrix, batch {MAX_BATCH})",
        ["engines", "p50 ms", "p95 ms", "p99 ms", "retries",
         "makespan cyc", "goodput req/s (sim)"],
        rows,
    )
    ratio = reports[2].goodput_sim_rps / reports[1].goodput_sim_rps
    record_result(
        "serve",
        {
            "p50_ms_1e": reports[1].latency_ms(50),
            "p95_ms_1e": reports[1].latency_ms(95),
            "p99_ms_1e": reports[1].latency_ms(99),
            "p50_ms_2e": reports[2].latency_ms(50),
            "p95_ms_2e": reports[2].latency_ms(95),
            "p99_ms_2e": reports[2].latency_ms(99),
            "goodput_sim_rps_1e": reports[1].goodput_sim_rps,
            "goodput_sim_rps_2e": reports[2].goodput_sim_rps,
            "goodput_wall_rps_2e": reports[2].goodput_rps,
            "ratio_2e_vs_1e": ratio,
            "retries_1e": reports[1].retries,
            "retries_2e": reports[2].retries,
        },
        params={
            "requests": REQUESTS,
            "rows": 8,
            "cols": 128,
            "max_batch": MAX_BATCH,
            "fault_rate": FAULT_RATE,
        },
    )
    assert ratio >= 1.5, (
        f"2-engine goodput only {ratio:.2f}x the 1-engine figure "
        f"(busy cycles {reports[2].per_engine_busy_cycles})"
    )


def test_serving_survives_heavy_faults(bench_scheme, workload):
    """At a 30% hang rate every request still terminates: served,
    retried, or degraded to CPU — never dropped."""
    matrix, vectors, cts = workload
    config = ServeConfig(
        engines=2,
        max_batch=MAX_BATCH,
        queue_capacity=REQUESTS,
        fault_rate=0.30,
        max_retries=2,
        backoff_base_ms=0.5,
        seed=13,
    )
    rep = serve_requests(bench_scheme, matrix, cts, config)
    assert rep.dropped == 0
    assert rep.completed == rep.submitted
    assert rep.retries > 0
    # spot-check exactness straight through the degraded path
    sample = [o for o in rep.outcomes if o.completed][:4]
    for o in sample:
        got = o.result.decrypt(bench_scheme)
        want = matrix.astype(object) @ vectors[o.request_id].astype(object)
        assert np.array_equal(got, want)
    print_table(
        "Heavy-fault serving (30% hang rate)",
        ["ok", "degraded", "retries", "p95 ms"],
        [(rep.ok, rep.degraded, rep.retries, f"{rep.latency_ms(95):,.1f}")],
    )
