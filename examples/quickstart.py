#!/usr/bin/env python3
"""Quickstart: an encrypted matrix-vector product with CHAM's pipeline.

Runs Algorithm 1 end-to-end at the paper's production parameters
(N = 4096, the exact low-Hamming-weight moduli of Section II-F):
encode -> encrypt -> DOTPRODUCT -> EXTRACTLWES -> PACKLWES -> decrypt,
then prints the noise at each pipeline stage and the hardware cycle
count the CHAM simulator assigns to the same job.

Usage: python examples/quickstart.py
"""

import numpy as np

from repro.core.hmvp import hmvp
from repro.he.bfv import BfvScheme
from repro.he.params import cham_params
from repro.hw.perf import ChamPerfModel


def main() -> None:
    rows, cols = 8, 4096
    print("CHAM reproduction quickstart")
    print("=" * 60)

    params = cham_params()
    print(f"parameters : {params.describe()}")

    # keygen (Galois keys sized for the pack we plan to run)
    scheme = BfvScheme(params, seed=0, max_pack=rows)
    print(f"secret key : ternary, hamming weight {scheme.secret_key.hamming_weight}")

    # the data: party B's matrix, party A's vector
    rng = np.random.default_rng(1)
    matrix = rng.integers(-(1 << 15), 1 << 15, (rows, cols))
    vector = rng.integers(-(1 << 15), 1 << 15, cols)

    # party A encrypts (augmented form: 6 polynomials, Section II-F)
    ct = scheme.encrypt_vector(vector)
    print(f"ciphertext : {ct.poly_count} polynomials of degree {params.n}")
    print(f"fresh noise: {scheme.noise_bits(ct):.1f} bits")

    # party B runs Algorithm 1
    result = hmvp(scheme, matrix, ct)
    print(f"pipeline   : {result.ops.dot_products} dot products, "
          f"{result.ops.pack_reductions} PACKTWOLWES reductions, "
          f"{result.ops.keyswitches} key-switches")

    # arbiter decrypts the single packed ciphertext
    decrypted = result.decrypt(scheme)
    expected = matrix.astype(object) @ vector.astype(object)
    assert np.array_equal(decrypted, expected), "decryption mismatch!"
    print(f"result     : {[int(x) for x in decrypted[:4]]} ... all "
          f"{rows} inner products correct")

    # what would the FPGA do with this job?
    perf = ChamPerfModel()
    cycles = perf.hmvp_cycles(rows, cols)
    print(f"hardware   : {cycles:,} cycles @300 MHz "
          f"= {cycles / 300e6 * 1e6:.0f} us on the simulated CHAM")
    print("OK")


if __name__ == "__main__":
    main()
