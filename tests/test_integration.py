"""Cross-layer integration tests, including one pass at the production
ring degree (N = 4096, the paper's Section II-F parameters)."""

import numpy as np
import pytest

from repro.core.hmvp import hmvp
from repro.he.bfv import BfvScheme
from repro.he.params import cham_params, toy_params


@pytest.fixture(scope="module")
def production_scheme():
    """N=4096 with the paper's exact moduli; pack keys for 8 rows only
    (keyset generation dominates the cost)."""
    return BfvScheme(cham_params(), seed=2023, max_pack=8)


def test_production_dot_product_and_pack(production_scheme, rng):
    scheme = production_scheme
    n = scheme.params.n
    assert n == 4096
    v = rng.integers(-(1 << 15), 1 << 15, n)
    ct = scheme.encrypt_vector(v)
    rows = rng.integers(-(1 << 15), 1 << 15, (4, n))
    res = hmvp(scheme, rows, ct)
    got = res.decrypt(scheme)
    want = rows.astype(object) @ v.astype(object)
    assert np.array_equal(got, want)


def test_production_noise_profile(production_scheme, rng):
    """Rescale must decisively reduce the multiplication noise at the
    production parameters (the paper's 30->26 bit claim territory)."""
    scheme = production_scheme
    n = scheme.params.n
    v = rng.integers(-(1 << 15), 1 << 15, n)
    row = rng.integers(-(1 << 15), 1 << 15, n)
    ct = scheme.encrypt_vector(v)
    prod = ct.multiply_plain(scheme.encoder.encode_row(row))
    pre = scheme.noise_bits(prod)
    post = scheme.noise_bits(prod.rescale())
    assert pre > 20
    assert post < pre - 8
    assert scheme.noise_budget(prod.rescale()) > 15


def test_production_security_level(production_scheme):
    assert production_scheme.params.security_bits >= 128


def test_hw_functional_agreement(rng):
    """The hardware NTT datapath and the HE layer share arithmetic: a
    multiply_plain computed via datapath-transformed operands matches."""
    from repro.hw.arch import NttUnitConfig
    from repro.hw.ntt_datapath import NttDatapathSim
    from repro.math.cg_ntt import CgNtt
    from repro.math.modular import modmul_vec
    from repro.math.primes import CHAM_Q0

    n, q = 256, CHAM_Q0
    a = rng.integers(0, q, n, dtype=np.uint64)
    b = rng.integers(0, q, n, dtype=np.uint64)
    sim = NttDatapathSim(NttUnitConfig(n=n, n_bfu=4, ram_banks=8), q)
    ha, _ = sim.forward(a)
    hb, _ = sim.forward(b)
    prod = sim.inverse(modmul_vec(ha, hb, q))
    from repro.math.ntt import NegacyclicNtt

    want = NegacyclicNtt(n, q).multiply(a, b)
    assert np.array_equal(prod, want)


def test_end_to_end_perf_and_function_share_op_counts(scheme128, rng):
    """The op counts the functional path reports drive the perf model's
    pricing: check the wiring end to end."""
    from repro.hw.perf import CpuCostModel

    a = rng.integers(-20, 20, (8, 128))
    v = rng.integers(-20, 20, 128)
    res = hmvp(scheme128, a, scheme128.encrypt_vector(v))
    cpu = CpuCostModel()
    priced = (
        res.ops.dot_products * cpu.dot_product_s()
        + res.ops.pack_reductions * cpu.pack_reduction_s()
    )
    assert priced > 0
    # pricing must scale with the functional op counts
    res2 = hmvp(scheme128, np.vstack([a, a]), scheme128.encrypt_vector(v))
    priced2 = (
        res2.ops.dot_products * cpu.dot_product_s()
        + res2.ops.pack_reductions * cpu.pack_reduction_s()
    )
    assert priced2 > 1.8 * priced


def test_runtime_serves_hmvp_jobs_sized_from_apps(scheme128, rng):
    """Submit the LR workload's matvec shapes through the RAS runtime."""
    from repro.hw.runtime import FpgaRuntime, JobState

    rt = FpgaRuntime()
    jid = rt.submit(rows=12, col_tiles=1)  # a HeteroLR gradient block
    assert rt.poll(jid) == JobState.DONE
