"""Mapping shards onto simulated accelerator nodes, with replication.

A :class:`ClusterNode` is one simulated accelerator host: an RAS runtime
(:class:`repro.hw.runtime.FpgaRuntime` with its own fault injector), a
per-node :class:`repro.core.batch.EncodedMatrixCache`, and one
matrix-resident :class:`repro.core.batch.BatchedHmvp` engine per shard
hosted there (primary or replica) — the same engine-pool shape
:class:`repro.serve.HmvpServer` runs per process, scaled out to K
processes.

:class:`ShardPlacement` assigns every shard a primary node and
``replication - 1`` replicas on distinct nodes.  Primaries are placed by
LPT greedy (longest shard first onto the least-loaded node, the policy
:class:`repro.cluster.partition.PartitionPlanner` estimates with);
replicas go to the least-loaded nodes not already holding the shard.
Ties between equal-load nodes break by **node id**, explicitly — the
elastic membership layer (:mod:`repro.cluster.membership`) renumbers
nodes as they churn, so plans must not depend on container iteration
order.  Replicas encode the shard into their node's cache at placement
time, so failover never pays an encode on the critical path.

Node identity is a persistent integer id, *not* a dense index: after a
node dies and another joins, the pool might be ``{0, 2, 4}``.  Both
:class:`ShardPlacement` and :func:`build_nodes` therefore speak id sets
(``nodes`` may still be passed as a plain count for the static case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.batch import BatchedHmvp, EncodedMatrixCache
from ..he.bfv import BfvScheme
from ..hw.arch import ChamConfig, cham_default_config
from ..hw.runtime import FaultInjector, FpgaRuntime, HealthReport
from .partition import PartitionError, PartitionPlan

__all__ = [
    "ClusterNode",
    "ShardPlacement",
    "build_nodes",
    "make_cluster_node",
]


@dataclass
class ClusterNode:
    """One simulated accelerator host in the cluster."""

    node_id: int
    runtime: FpgaRuntime
    cache: EncodedMatrixCache
    #: shard_id -> resident engine over that shard's submatrix
    engines: Dict[int, BatchedHmvp] = field(default_factory=dict)
    shards_served: int = 0

    @property
    def busy_cycles(self) -> int:
        return self.runtime.busy_cycles

    def health(self) -> HealthReport:
        return self.runtime.health()


def _normalize_node_ids(
    nodes: Union[int, Sequence[int]]
) -> Tuple[int, ...]:
    """A count becomes ``0..K-1``; an id collection is sorted and checked."""
    if isinstance(nodes, int):
        if nodes < 1:
            raise PartitionError("need at least one node")
        return tuple(range(nodes))
    ids = sorted(int(n) for n in nodes)
    if not ids:
        raise PartitionError("need at least one node")
    if len(set(ids)) != len(ids):
        raise PartitionError(f"duplicate node ids in {ids}")
    if any(n < 0 for n in ids):
        raise PartitionError(f"negative node ids in {ids}")
    return tuple(ids)


class ShardPlacement:
    """Shard -> ``[primary, replica, ...]`` node assignment."""

    def __init__(
        self,
        assignments: Dict[int, List[int]],
        nodes: Union[int, Sequence[int]],
        replication: int,
    ) -> None:
        self.assignments = assignments
        self.node_ids: Tuple[int, ...] = _normalize_node_ids(nodes)
        self.replication = replication

    @property
    def nodes(self) -> int:
        """Active node *count* (kept for the pre-elastic call sites)."""
        return len(self.node_ids)

    @classmethod
    def place(
        cls,
        plan: PartitionPlan,
        nodes: Union[int, Sequence[int]],
        replication: int,
        shard_costs: Optional[Sequence[int]] = None,
    ) -> "ShardPlacement":
        """LPT-greedy primaries plus least-loaded distinct replicas.

        All load ties break by ``(load, node_id)`` so the plan is a pure
        function of ``(plan, node id set, costs)`` — stable across Python
        versions, container ordering, and elastic churn renumbering.
        """
        node_ids = _normalize_node_ids(nodes)
        if not 1 <= replication <= len(node_ids):
            raise PartitionError(
                f"replication {replication} must be in "
                f"1..nodes ({len(node_ids)})"
            )
        costs = (
            list(shard_costs)
            if shard_costs is not None
            else [s.rows * max(s.col_tiles(plan.ring_n), 1) for s in plan.shards]
        )
        if len(costs) != len(plan.shards):
            raise PartitionError("one cost per shard required")
        loads = {nid: 0 for nid in node_ids}
        # replicas add standby load only; bias placement by primary load
        assignments: Dict[int, List[int]] = {}
        order = sorted(
            range(len(plan.shards)),
            key=lambda i: (-costs[i], plan.shards[i].shard_id),
        )
        for idx in order:
            primary = min(node_ids, key=lambda n: (loads[n], n))
            loads[primary] += costs[idx]
            chosen = [primary]
            while len(chosen) < replication:
                replica = min(
                    (n for n in node_ids if n not in chosen),
                    key=lambda n: (loads[n], n),
                )
                chosen.append(replica)
            assignments[plan.shards[idx].shard_id] = chosen
        return cls(assignments, nodes=node_ids, replication=replication)

    def nodes_for(self, shard_id: int) -> List[int]:
        return self.assignments[shard_id]

    def node_shards(self, node_id: int) -> List[int]:
        """Every shard hosted on a node (as primary or replica)."""
        return sorted(
            sid
            for sid, hosted in self.assignments.items()
            if node_id in hosted
        )

    def primary_shards(self, node_id: int) -> List[int]:
        """Shards this node serves as primary."""
        return sorted(
            sid
            for sid, hosted in self.assignments.items()
            if hosted and hosted[0] == node_id
        )

    def add_node(self, node_id: int) -> None:
        """Admit a node id to the active set (no shards yet)."""
        if node_id in self.node_ids:
            raise PartitionError(f"node {node_id} already active")
        self.node_ids = tuple(sorted(self.node_ids + (node_id,)))

    def remove_node(self, node_id: int) -> None:
        """Retire a node id; every shard must already be re-homed."""
        if node_id not in self.node_ids:
            raise PartitionError(f"node {node_id} is not active")
        if len(self.node_ids) == 1:
            raise PartitionError("cannot remove the last node")
        still = [
            sid for sid, hosted in self.assignments.items()
            if node_id in hosted
        ]
        if still:
            raise PartitionError(
                f"node {node_id} still hosts shards {sorted(still)}"
            )
        self.node_ids = tuple(n for n in self.node_ids if n != node_id)

    def validate_against(self, plan: PartitionPlan) -> None:
        shard_ids = {s.shard_id for s in plan.shards}
        if set(self.assignments) != shard_ids:
            raise PartitionError("placement does not cover every shard")
        active = set(self.node_ids)
        for sid, hosted in self.assignments.items():
            if not hosted:
                raise PartitionError(f"shard {sid} has no hosting node")
            if len(set(hosted)) != len(hosted):
                raise PartitionError(f"shard {sid} replicas not distinct")
            if any(n not in active for n in hosted):
                raise PartitionError(f"shard {sid} names an unknown node")

    def to_dict(self) -> Dict[str, object]:
        return {
            "nodes": self.nodes,
            "node_ids": list(self.node_ids),
            "replication": self.replication,
            "assignments": {
                str(sid): hosted
                for sid, hosted in sorted(self.assignments.items())
            },
        }


def make_cluster_node(
    node_id: int,
    plan: PartitionPlan,
    cham: Optional[ChamConfig] = None,
    faults: Optional[FaultInjector] = None,
    seed: int = 0,
    fault_rate: float = 0.0,
    register_flip_rate: float = 0.0,
    resets_to_recover: int = 1,
) -> ClusterNode:
    """One bare node (runtime + empty cache, no engines).

    The fault injector derives from the rate knobs with a per-node seed
    unless given explicitly; ``max_job_retries=0`` so a hang surfaces as
    one FAILED attempt and failover up in the executor is the only retry
    path.  The elastic join path uses this directly — engines are staged
    afterwards by *migrating* encoded entries, never by re-encoding.
    """
    cfg = cham or cham_default_config()
    if faults is None:
        faults = FaultInjector(
            hang_prob=fault_rate,
            register_flip_prob=register_flip_rate,
            resets_to_recover=resets_to_recover,
            seed=seed + node_id,
        )
    # lane = node_id + 1: pid 0 stays the coordinator's lane in traces
    runtime = FpgaRuntime(
        cfg=cfg, faults=faults, max_job_retries=0, lane=node_id + 1
    )
    return ClusterNode(
        node_id=node_id,
        runtime=runtime,
        cache=EncodedMatrixCache(capacity=max(len(plan.shards), 1)),
    )


def build_nodes(
    scheme: BfvScheme,
    matrix: np.ndarray,
    plan: PartitionPlan,
    placement: ShardPlacement,
    cham: Optional[ChamConfig] = None,
    fault_injectors: Optional[Sequence[FaultInjector]] = None,
    seed: int = 0,
    fault_rate: float = 0.0,
    register_flip_rate: float = 0.0,
    resets_to_recover: int = 1,
) -> Dict[int, ClusterNode]:
    """Construct the node pool and stage every hosted shard's encoding.

    One fault injector per node (explicit list, in ``node_ids`` order, or
    derived from the rate knobs with per-node seeds).  Returns a dict
    keyed by persistent node id — the elastic membership layer adds and
    removes entries without renumbering survivors.
    """
    if fault_injectors is not None and len(fault_injectors) != placement.nodes:
        raise PartitionError("one fault injector per node")
    nodes: Dict[int, ClusterNode] = {}
    for idx, node_id in enumerate(placement.node_ids):
        nodes[node_id] = make_cluster_node(
            node_id,
            plan,
            cham=cham,
            faults=(
                fault_injectors[idx] if fault_injectors is not None else None
            ),
            seed=seed,
            fault_rate=fault_rate,
            register_flip_rate=register_flip_rate,
            resets_to_recover=resets_to_recover,
        )
    for shard in plan.shards:
        for node_id in placement.nodes_for(shard.shard_id):
            node = nodes[node_id]
            node.engines[shard.shard_id] = BatchedHmvp(
                scheme, shard.submatrix(matrix), cache=node.cache
            )
    return nodes
