"""Roofline model (Fig. 2a) — why CHAM offloads whole HMVPs.

Operations are counted in the paper's unit: one 27×18-bit integer
multiplication, i.e. one DSP slice-cycle.  A 35×39-bit modular multiply
tiles into 4 such ops (the low-Hamming-weight reduction costs none).

The model prices three offload granularities on the U200:

* a standalone **NTT** call (polynomial in, polynomial out over PCIe/DDR),
* a standalone **key-switch** call (ciphertext + switching key traffic),
* a whole **HMVP** (matrix rows streamed once; everything else stays
  on-chip).

NTT and key-switch land far below the memory ridge — offloading them
individually leaves the DSPs starved, which is the paper's argument for
the fully-customized whole-kernel architecture (Section III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .arch import FpgaDevice, U200

__all__ = ["KernelPoint", "ntt_kernel", "keyswitch_kernel", "hmvp_kernel", "roofline_points"]

#: 27x18 DSP ops per word-sized modular multiplication
OPS_PER_MODMUL = 4
#: bytes per polynomial coefficient on the wire (64-bit words)
BYTES_PER_COEFF = 8


@dataclass(frozen=True)
class KernelPoint:
    """One kernel on the roofline."""

    name: str
    ops: float
    bytes_moved: float
    device: FpgaDevice = U200

    @property
    def intensity(self) -> float:
        """Operations per byte of off-chip traffic."""
        return self.ops / self.bytes_moved

    @property
    def attainable_ops_per_sec(self) -> float:
        """min(compute roof, intensity * bandwidth roof)."""
        mem_bound = self.intensity * self.device.ddr_gbps * 1e9
        return min(self.device.peak_ops_per_sec, mem_bound)

    @property
    def memory_bound(self) -> bool:
        return self.intensity < self.device.ridge_intensity

    @property
    def peak_fraction(self) -> float:
        return self.attainable_ops_per_sec / self.device.peak_ops_per_sec


def _ntt_ops(n: int) -> int:
    log_n = n.bit_length() - 1
    return (n // 2) * log_n * OPS_PER_MODMUL


def ntt_kernel(n: int = 4096, device: FpgaDevice = U200) -> KernelPoint:
    """A standalone single-limb NTT invocation."""
    ops = _ntt_ops(n)
    data = 2 * n * BYTES_PER_COEFF  # read + write the polynomial
    return KernelPoint("NTT", ops, data, device)


def keyswitch_kernel(
    n: int = 4096, limbs: int = 2, device: FpgaDevice = U200
) -> KernelPoint:
    """A standalone hybrid key-switch invocation (keys streamed)."""
    limbs_aug = limbs + 1
    transforms = limbs * limbs_aug + 2 * limbs_aug  # dnum fwd + 2 inverse
    pointwise = limbs * 2 * limbs_aug * n  # digit * key inner products
    ops = transforms * _ntt_ops(n) + pointwise * OPS_PER_MODMUL
    ct_bytes = 2 * limbs * n * BYTES_PER_COEFF
    ksk_bytes = limbs * 2 * limbs_aug * n * BYTES_PER_COEFF
    data = 2 * ct_bytes + ksk_bytes
    return KernelPoint("KeySwitch", ops, data, device)


def hmvp_kernel(
    m: int = 4096,
    n_cols: int = 4096,
    ring_n: int = 4096,
    limbs: int = 2,
    device: FpgaDevice = U200,
) -> KernelPoint:
    """A whole HMVP offload: rows streamed once, keys/vector resident.

    Per row: 3 forward transforms (augmented plaintext), 6 inverse
    (product), coefficient-wise multiply, plus one amortized PACKTWOLWES
    (≈ a key-switch).  Off-chip traffic per row is one plaintext row in
    limb form; the vector ciphertext, switching keys and the packed
    output are amortized over the matrix.
    """
    limbs_aug = limbs + 1
    col_tiles = -(-n_cols // ring_n)
    dot_transforms = limbs_aug + 2 * limbs_aug  # 3 fwd + 6 inv
    ks_transforms = limbs * limbs_aug + 2 * limbs_aug
    per_row_ops = (
        col_tiles * (dot_transforms * _ntt_ops(ring_n) + 2 * limbs_aug * ring_n * OPS_PER_MODMUL)
        + ks_transforms * _ntt_ops(ring_n)
        + limbs * 2 * limbs_aug * ring_n * OPS_PER_MODMUL
    )
    per_row_bytes = col_tiles * limbs_aug * ring_n * BYTES_PER_COEFF
    amortized = (
        2 * limbs_aug * ring_n * BYTES_PER_COEFF * col_tiles  # input ct tiles
        + 2 * limbs * ring_n * BYTES_PER_COEFF  # packed output
    )
    ops = m * per_row_ops
    data = m * per_row_bytes + amortized
    return KernelPoint("HMVP", ops, data, device)


def roofline_points(device: FpgaDevice = U200) -> Dict[str, KernelPoint]:
    """The three Fig. 2a kernels at production parameters."""
    return {
        "NTT": ntt_kernel(device=device),
        "KeySwitch": keyswitch_kernel(device=device),
        "HMVP": hmvp_kernel(device=device),
    }
