"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _reset_obs():
    yield
    from repro import obs

    obs.disable_metrics()
    obs.REGISTRY.reset()
    obs.disable_tracing()
    obs.TRACER.reset()


def test_demo(capsys):
    assert main(["demo", "--rows", "4", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "correct=True" in out
    assert "slot budget" in out


def test_tables(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "195" in out  # NTT offload anchor
    assert "roofline" in out


def test_trace(capsys):
    assert main(["trace", "--rows", "8", "--width", "40"]) == 0
    out = capsys.readouterr().out
    assert "dot    |" in out
    assert "pack L1" in out


def test_params_default(capsys):
    assert main(["params"]) == 0
    out = capsys.readouterr().out
    assert "n=4096" in out
    assert "0x408000001" in out  # CHAM_Q0


def test_params_generated(capsys):
    assert main(
        ["params", "--n", "256", "--limbs", "2", "--plain-bits", "20"]
    ) == 0
    out = capsys.readouterr().out
    assert "n=256" in out


def test_dse(capsys):
    assert main(["dse", "--rows", "256"]) == 0
    out = capsys.readouterr().out
    assert "frontier" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_compare(capsys):
    assert main(["compare"]) == 0
    out = capsys.readouterr().out
    assert "CHAM" in out and "HEAX" in out and "F1" in out


def test_energy(capsys):
    assert main(["energy", "--rows", "2048", "--cols", "256"]) == 0
    out = capsys.readouterr().out
    assert "CHAM" in out and "J" in out


def test_report_stdout(capsys):
    assert main(["report"]) == 0
    out = capsys.readouterr().out
    assert "# CHAM reproduction report" in out
    assert "Table II" in out
    assert "195" in out
    assert "HeteroLR end-to-end" in out


def test_report_to_file(tmp_path, capsys):
    target = tmp_path / "report.md"
    assert main(["report", "-o", str(target)]) == 0
    text = target.read_text()
    assert "roofline" in text
    assert "Beaver" in text


def test_metrics(capsys):
    assert main(["metrics", "--rows", "4"]) == 0
    out = capsys.readouterr().out
    assert "metrics registry snapshot" in out
    assert "math.ntt.forward" in out
    assert "he.noise.budget_bits" in out
    assert "hw.runtime.healthy" in out


def test_metrics_json(capsys):
    assert main(["metrics", "--rows", "4", "--json"]) == 0
    snap = json.loads(capsys.readouterr().out)
    assert snap["counters"]["math.ntt.forward"] > 0
    assert snap["gauges"]["he.noise.budget_bits"] > 0


def test_demo_trace_out(tmp_path, capsys):
    target = tmp_path / "demo.json"
    assert main(["demo", "--rows", "4", "--trace-out", str(target)]) == 0
    assert "trace written" in capsys.readouterr().out
    payload = json.loads(target.read_text())
    names = {e["name"] for e in payload["traceEvents"] if e.get("ph") == "X"}
    assert {"NTT", "MULTPOLY", "INTT", "RESCALE+EXTRACT", "PACK"} <= names


def test_trace_trace_out(tmp_path, capsys):
    target = tmp_path / "pipe.json"
    assert main(
        ["trace", "--rows", "8", "--trace-out", str(target)]
    ) == 0
    payload = json.loads(target.read_text())
    names = {e["name"] for e in payload["traceEvents"] if e.get("ph") == "X"}
    assert any(n.startswith("DOTPRODUCT") for n in names)
    assert any(n.startswith("PACKTWOLWES") for n in names)


def test_cluster(capsys):
    assert main(
        ["cluster", "--requests", "2", "--rows", "24", "--cols", "256",
         "--nodes", "3", "--seed", "5"]
    ) == 0
    out = capsys.readouterr().out
    assert "dropped=0" in out
    assert "correct=True" in out
    assert "3 node(s)" in out


def test_cluster_json_with_faults(capsys):
    assert main(
        ["cluster", "--requests", "3", "--rows", "24", "--cols", "256",
         "--fault-rate", "0.2", "--seed", "9", "--json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["correct"] is True
    assert payload["dropped"] == 0
    assert payload["shard_executions"] == 3 * payload["shards_per_request"]
    assert payload["counters"]["cluster.requests"] == 3
    # the plan and placement travel with the report for auditability
    assert payload["plan"]["rows"] == 24
    assert payload["placement"]["replication"] == 2
