"""Tests for ciphertext-type and scheme conversions."""

import numpy as np
import pytest

from repro.he.bfv import BfvScheme
from repro.he.ckks import CkksScheme
from repro.he.conversion import bfv_to_ckks, ckks_to_bfv, max_exact_message
from repro.he.params import toy_params


@pytest.fixture(scope="module")
def schemes():
    params = toy_params(n=128, plain_bits=40)
    bfv = BfvScheme(params, seed=31, max_pack=8)
    ckks = CkksScheme(params, seed=32, shared_secret=bfv.secret_key, max_pack=8)
    return bfv, ckks


def test_bfv_to_ckks_is_exact_reinterpretation(schemes, rng):
    bfv, ckks = schemes
    ints = rng.integers(-1000, 1000, 128)
    ct = bfv.encrypt_vector(ints, augmented=False)
    converted = bfv_to_ckks(bfv, ct)
    out = ckks.decrypt_coeffs(converted, 128)
    assert np.max(np.abs(out - ints)) < 1e-3


def test_bfv_to_ckks_augmented(schemes, rng):
    bfv, ckks = schemes
    ints = rng.integers(-100, 100, 16)
    ct = bfv.encrypt_vector(ints, augmented=True)
    out = ckks.decrypt_coeffs(bfv_to_ckks(bfv, ct), 16)
    assert np.max(np.abs(out - ints)) < 1e-3


def test_bfv_to_ckks_then_real_arithmetic(schemes, rng):
    """Convert an exact BFV ciphertext, then do approximate CKKS work —
    the hybrid-pipeline pattern of CHIMERA/PEGASUS."""
    bfv, ckks = schemes
    ints = rng.integers(-50, 50, 128)
    ct = bfv.encrypt_vector(ints, augmented=True)
    converted = bfv_to_ckks(bfv, ct)
    row = rng.normal(0, 1, 128)
    dp = ckks.dot_product(converted, row)
    got = ckks.decrypt_coeffs(dp, 1)[0]
    assert abs(got - float(row @ ints)) < 0.05 * max(abs(float(row @ ints)), 1)


def test_ckks_to_bfv_exact_in_bound(schemes, rng):
    bfv, ckks = schemes
    scale = float(2**15)
    bound = max_exact_message(bfv, scale)
    assert bound > 1000
    ints = rng.integers(-min(bound // 2, 500), min(bound // 2, 500), 64)
    ct = ckks.encrypt_coeffs(ints.astype(float), scale=scale, augmented=False)
    back = ckks_to_bfv(bfv, ct)
    dec = bfv.decrypt_coeffs(back, 64)
    assert np.array_equal(np.array([int(x) for x in dec]), ints)


def test_roundtrip_bfv_ckks_bfv(schemes, rng):
    bfv, ckks = schemes
    ints = rng.integers(-200, 200, 32)
    ct = bfv.encrypt_vector(ints, augmented=False)
    converted = bfv_to_ckks(bfv, ct)
    # scale M/t is the BFV lattice spacing: conversion back uses k=1
    back = ckks_to_bfv(bfv, converted)
    dec = bfv.decrypt_coeffs(back, 32)
    assert np.array_equal(np.array([int(x) for x in dec]), ints)


def test_ckks_to_bfv_rejects_slot_encoding(schemes):
    bfv, ckks = schemes
    ct = ckks.encrypt_slots([1.0])
    with pytest.raises(ValueError, match="coefficient"):
        ckks_to_bfv(bfv, ct)


def test_ckks_to_bfv_rejects_oversized_scale(schemes):
    bfv, ckks = schemes
    huge = float(bfv.params.q_product)  # scale beyond M/t
    ct = ckks.encrypt_coeffs([1.0], scale=2.0**60, augmented=False)
    with pytest.raises(ValueError, match="lattice spacing"):
        ckks_to_bfv(bfv, ct)
    del huge


def test_max_exact_message_scaling(schemes):
    bfv, _ = schemes
    assert max_exact_message(bfv, 2.0**10) == pytest.approx(
        32 * max_exact_message(bfv, 2.0**15), rel=1e-3
    )


def test_full_hybrid_pipeline(schemes, rng):
    """BFV dot products -> pack -> convert -> CKKS real rescaling: the
    kind of mixed pipeline the paper's introduction motivates."""
    bfv, ckks = schemes
    v = rng.integers(-30, 30, 128)
    ct = bfv.encrypt_vector(v)
    rows = [rng.integers(-30, 30, 128) for _ in range(4)]
    lwes = [bfv.extract(bfv.dot_product(ct, r)) for r in rows]
    packed = bfv.pack(lwes)
    want_ints = [int(np.dot(r.astype(object), v.astype(object))) for r in rows]
    # move the packed exact result into the approximate domain
    converted = bfv_to_ckks(bfv, packed.ct)
    # the pack scaled messages by 2^levels; that is scale bookkeeping here
    converted.scale *= 1 << packed.scale_pow2
    raw = ckks.decrypt_raw(converted)
    stride = 128 >> packed.scale_pow2
    got = raw[: 4 * stride : stride] / converted.scale
    assert np.max(np.abs(got - np.array(want_ints, dtype=float))) < 1e-2


# -- property tests over the conversion toolkit ----------------------------------


def test_bfv_ckks_roundtrip_property(schemes):
    from hypothesis import given, settings
    from hypothesis import strategies as st

    bfv, ckks = schemes

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def inner(seed):
        import numpy as np

        r = np.random.default_rng(seed)
        ints = r.integers(-300, 300, 32)
        ct = bfv.encrypt_vector(ints, augmented=False)
        back = ckks_to_bfv(bfv, bfv_to_ckks(bfv, ct))
        dec = bfv.decrypt_coeffs(back, 32)
        assert np.array_equal(np.array([int(x) for x in dec]), ints)

    inner()


def test_bgv_roundtrip_property(schemes):
    from hypothesis import given, settings
    from hypothesis import strategies as st

    from repro.he.bgv import BgvScheme, bfv_to_bgv, bgv_to_bfv

    bfv, _ = schemes
    bgv = BgvScheme(bfv.params, seed=99, shared_secret=bfv.secret_key)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def inner(seed):
        import numpy as np

        r = np.random.default_rng(seed)
        ints = r.integers(-(1 << 20), 1 << 20, 32)
        ct = bgv.encrypt_vector(ints)
        back = bfv_to_bgv(bfv, bgv_to_bfv(bgv, ct))
        assert np.array_equal(bgv.decrypt_coeffs(back, 32), ints)

    inner()
