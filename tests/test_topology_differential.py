"""Differential topology tests (ISSUE 10): the fabric never touches bits.

The interconnect model charges *cycles* for ciphertext movement — it
must never change *what* moves.  These tests run the same pre-encrypted
requests through clusters wired over every topology (``None``, ideal,
ring, mesh, fat-tree) and assert the gathered RLWE ciphertexts are
bit-identical per RNS limb, while the bandwidth-limited fabrics charge
real network cycles for the privilege.

The encryption happens **once** per shape: the scheme RNG advances on
every ``encrypt_vector`` call, so serving the same ciphertexts to each
executor is what makes "identical digests" a statement about the
network layer rather than about encryption randomness.

Covers the static path, scripted node-hang failover (rerouted shards
ship extra scatter traffic but the same bits), and an elastic
join/kill/leave schedule (migration traffic crosses the fabric, output
unchanged).
"""

import hashlib

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterExecutor,
    CommSpec,
    MembershipSchedule,
    PartitionPlanner,
)
from repro.core.batch import BatchedHmvp
from repro.core.hmvp import TiledHmvp
from repro.hw.runtime import FaultInjector

TOPOLOGIES = (None, "ideal", "ring", "mesh", "fat-tree")
#: bandwidth-starved knobs so real fabrics must charge nonzero cycles
NET = dict(link_bandwidth=8, link_latency=4, flit_bytes=64)

#: (rows, cols) at ring degree 128 — same intent as the cluster
#: differential shapes: row-only, multi-tile, mixed, beyond-ring
SHAPES = [
    (3, 1),
    (8, 256),
    (13, 384),
    (160, 128),
]


def _reference(scheme, matrix, ct_tiles):
    if matrix.shape[0] <= scheme.params.n:
        return BatchedHmvp(scheme, matrix).multiply_tiles(ct_tiles)
    return TiledHmvp(scheme).multiply(matrix, ct_tiles)


def _limb_digests(result):
    digests = []
    for pack in result.packs:
        for component in (pack.ct.c0, pack.ct.c1):
            arr = np.asarray(component)
            for limb in range(arr.shape[0]):
                digests.append(
                    hashlib.sha256(
                        np.ascontiguousarray(arr[limb]).tobytes()
                    ).hexdigest()
                )
    return digests


def _executor(scheme, matrix, topology, **kwargs):
    net = dict(NET) if topology else {}
    return ClusterExecutor(
        scheme,
        matrix,
        config=ClusterConfig(
            nodes=kwargs.pop("nodes", 4),
            replication=kwargs.pop("replication", 2),
            seed=kwargs.pop("seed", 9),
            topology=topology,
            **net,
        ),
        **kwargs,
    )


@pytest.mark.parametrize("rows,cols", SHAPES)
def test_all_topologies_bit_identical(scheme128, rows, cols):
    """Per RNS limb, every fabric gathers the unsharded engine's bits."""
    rng = np.random.default_rng(0x7090 + rows * 31 + cols)
    matrix = rng.integers(-100, 100, (rows, cols))
    vector = rng.integers(-100, 100, cols)
    seeder = _executor(scheme128, matrix, None)
    ct_tiles = seeder.encrypt_vector(vector)
    want = _limb_digests(_reference(scheme128, matrix, ct_tiles))
    for topology in TOPOLOGIES:
        executor = _executor(scheme128, matrix, topology)
        got = _limb_digests(executor.execute(ct_tiles))
        assert got == want, f"{topology} diverged from the unsharded bits"
        report = executor.report()
        assert report.dropped == 0
        if topology in ("ring", "mesh", "fat-tree"):
            assert report.network_cycles > 0, (
                f"{topology} charged nothing for scatter/gather"
            )
            assert report.network["flits_dropped"] == 0
            assert report.network["duplicates"] == 0
        else:
            assert report.network_cycles == 0


def test_failover_bit_identical_across_fabrics(scheme128):
    """Scripted hangs reroute shards to replicas on every fabric; the
    rerouted traffic (failover phase) costs cycles, never bits."""
    rng = np.random.default_rng(0x7091)
    matrix = rng.integers(-100, 100, (24, 256))
    vector = rng.integers(-100, 100, 256)
    seeder = _executor(scheme128, matrix, None, nodes=3)
    ct_tiles = seeder.encrypt_vector(vector)
    want = _limb_digests(_reference(scheme128, matrix, ct_tiles))
    for topology in TOPOLOGIES:
        injectors = [
            FaultInjector(hang_script=[True, True], seed=11),
            FaultInjector(seed=12),
            FaultInjector(seed=13),
        ]
        executor = _executor(
            scheme128, matrix, topology, nodes=3,
            fault_injectors=injectors,
        )
        got = _limb_digests(executor.execute(ct_tiles))
        assert got == want, f"{topology} failover changed the output"
        report = executor.report()
        assert report.shard_retries >= 1
        assert report.dropped == 0
        assert report.degraded_shards == 0
        if topology in ("ring", "mesh", "fat-tree"):
            phases = report.network["phase_cycles"]
            assert phases["failover"] > 0, (
                f"{topology} rerouted shards without reshipping tiles"
            )


def test_elastic_schedule_bit_identical_across_fabrics(scheme128):
    """Join/kill/leave churn migrates encoded-matrix cache entries over
    the fabric (replica_sync traffic, new topology epochs) — and the
    per-request digests still match the free-comm run exactly."""
    rng = np.random.default_rng(0x7092)
    matrix = rng.integers(-80, 80, (13, 384))
    vectors = [rng.integers(-80, 80, 384) for _ in range(4)]
    plan = PartitionPlanner(scheme128.params.n).plan_from_cuts(
        13, 384, (0, 7, 13), (0, 128, 256, 384)
    )
    seeder = _executor(scheme128, matrix, None, nodes=3, plan=plan)
    requests = [seeder.encrypt_vector(v) for v in vectors]

    def run(topology):
        executor = _executor(
            scheme128, matrix, topology, nodes=3, plan=plan,
            schedule=MembershipSchedule.parse("1:join,2:kill:0,3:leave:1"),
        )
        results = executor.execute_batch(requests)
        return [_limb_digests(r) for r in results], executor.report()

    want, free_report = run(None)
    for topology in ("ideal", "ring", "mesh", "fat-tree"):
        got, report = run(topology)
        assert got == want, f"{topology} churn changed the output"
        assert report.membership == free_report.membership
        net = report.network
        assert net["epochs"] >= 4  # initial wiring + one per applied event
        assert net["flits_dropped"] == 0
        if topology != "ideal":
            assert net["phase_cycles"]["replica_sync"] > 0, (
                f"{topology} migrated cache entries for free"
            )


def test_planner_prices_communication(scheme128):
    """Regression: scoring on compute makespan alone ties a wide-row
    grid with a tall one; a bandwidth-limited ring breaks the tie the
    other way, because every extra row band re-ships its column tiles.
    ``comm_free=True`` is the escape hatch back to the old behavior."""
    ring_n = scheme128.params.n
    # a fat modulus chain on byte-per-cycle links: scatter traffic is
    # now on the same order as compute, so the grid choice must weigh it
    comm = CommSpec(kind="ring", bandwidth=1, latency=8, ct_limbs=6)
    priced = PartitionPlanner(ring_n, comm=comm)
    free = PartitionPlanner(ring_n)

    rows, cols, nodes = 13, 256, 3
    free_plan = free.plan(rows, cols, nodes=nodes)
    priced_plan = priced.plan(rows, cols, nodes=nodes)
    escape_plan = priced.plan(rows, cols, nodes=nodes, comm_free=True)

    # the escape hatch recovers the historical search exactly
    assert escape_plan.to_dict() == free_plan.to_dict()

    # the comm-free winner really does lose once scatter traffic is
    # priced: strictly more network cycles than the comm-aware winner
    assert priced.estimate_comm_cycles(priced_plan, nodes) < \
        priced.estimate_comm_cycles(free_plan, nodes)
    assert priced.estimate_total_cycles(priced_plan, nodes) <= \
        priced.estimate_total_cycles(free_plan, nodes)
    # and the comm term is what moved the decision: the finely
    # row-split grid that wins on compute balance re-ships its column
    # tiles to every node, so the priced search keeps fewer row bands
    assert priced_plan.to_dict() != free_plan.to_dict()
    assert priced_plan.row_bands < free_plan.row_bands
    assert priced.estimate_makespan(free_plan, nodes) < \
        priced.estimate_makespan(priced_plan, nodes)

    # pricing an *ideal* fabric never changes a planning decision
    ideal = PartitionPlanner(ring_n, comm=CommSpec(kind="ideal"))
    assert ideal.plan(rows, cols, nodes=nodes).to_dict() == \
        free_plan.to_dict()
