"""Span tracing with JSONL and Chrome trace-event exporters.

A :class:`Span` is one named interval with arbitrary key/value
attributes; spans nest (a ``PACK`` span contains ``KEYSWITCH`` spans
contains ``NTT`` spans) via a per-thread stack, so the exported trace
reconstructs the call tree without any explicit parent bookkeeping.

Two export formats:

* **JSONL** — one JSON object per span, trivially greppable/loadable;
* **Chrome trace-event format** — the ``{"traceEvents": [...]}`` JSON
  that ``chrome://tracing`` and https://ui.perfetto.dev load directly,
  using complete (``"ph": "X"``) events.  Macro-pipeline stage occupancy
  can be inspected visually this way.

Timestamps are microseconds.  Wall-clock spans (the context-manager API)
use ``time.perf_counter`` relative to the tracer's epoch; *synthetic*
spans with simulated timebases (the cycle-accurate pipeline traces) are
injected with :meth:`Tracer.add_span` at caller-chosen timestamps and
tracks.

Like the metrics registry, the module-level :data:`TRACER` starts
disabled: ``span()`` then returns a shared no-op context manager, so
instrumentation left in hot paths costs one branch.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "default_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "span",
]


@dataclass
class Span:
    """One completed (or synthetic) trace interval."""

    name: str
    ts_us: float  #: start, microseconds since the tracer epoch
    dur_us: float
    track: int = 0  #: Chrome ``tid``: one lane per thread or synthetic track
    depth: int = 0  #: nesting depth inside its track (0 = top level)
    args: Dict[str, Any] = field(default_factory=dict)

    def to_chrome_event(self) -> Dict[str, Any]:
        """The ``"ph": "X"`` (complete) trace-event dict."""
        event: Dict[str, Any] = {
            "name": self.name,
            "cat": "repro",
            "ph": "X",
            "ts": self.ts_us,
            "dur": self.dur_us,
            "pid": 0,
            "tid": self.track,
        }
        if self.args:
            event["args"] = dict(self.args)
        return event


class _NullSpan:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: object) -> None:
        return None

    def set(self, **_attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one wall-clock span on exit."""

    __slots__ = ("_tracer", "name", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.args.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        self._start = time.perf_counter()
        self._tracer._push()
        return self

    def __exit__(self, *_exc: object) -> None:
        end = time.perf_counter()
        depth = self._tracer._pop()
        self._tracer._record_wallclock(
            self.name, self._start, end, depth, self.args
        )


class Tracer:
    """Span collector with a context-manager API and two exporters."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._epoch = time.perf_counter()
        self._local = threading.local()
        self._track_names: Dict[int, str] = {}
        self._thread_tracks: Dict[int, int] = {}

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **args: Any):
        """Open a nested wall-clock span: ``with tracer.span("NTT"): ...``"""
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, args)

    def add_span(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        track: int = 0,
        depth: int = 0,
        **args: Any,
    ) -> None:
        """Inject a synthetic span (simulated timebase, e.g. cycles)."""
        if not self.enabled:
            return
        with self._lock:
            self._spans.append(Span(name, ts_us, dur_us, track, depth, args))

    def name_track(self, track: int, name: str) -> None:
        """Label a track; exported as Chrome thread-name metadata."""
        self._track_names[track] = name

    # nesting stack ---------------------------------------------------------

    def _push(self) -> None:
        stack = getattr(self._local, "depth", 0)
        self._local.depth = stack + 1

    def _pop(self) -> int:
        depth = getattr(self._local, "depth", 1) - 1
        self._local.depth = depth
        return depth

    def _thread_track(self) -> int:
        ident = threading.get_ident()
        try:
            return self._thread_tracks[ident]
        except KeyError:
            with self._lock:
                return self._thread_tracks.setdefault(
                    ident, len(self._thread_tracks) + 1
                )

    def _record_wallclock(
        self,
        name: str,
        start: float,
        end: float,
        depth: int,
        args: Dict[str, Any],
    ) -> None:
        spn = Span(
            name=name,
            ts_us=(start - self._epoch) * 1e6,
            dur_us=(end - start) * 1e6,
            track=self._thread_track(),
            depth=depth,
            args=args,
        )
        with self._lock:
            self._spans.append(spn)

    # -- introspection -------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Completed spans so far (chronological per track, not global)."""
        with self._lock:
            return list(self._spans)

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()
        self._epoch = time.perf_counter()

    def __len__(self) -> int:
        return len(self._spans)

    # -- exporters -----------------------------------------------------------

    def chrome_events(self) -> List[Dict[str, Any]]:
        """All spans as Chrome trace events, ``ts``-sorted per track,
        preceded by thread-name metadata events for labeled tracks."""
        events: List[Dict[str, Any]] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": track,
                "args": {"name": label},
            }
            for track, label in sorted(self._track_names.items())
        ]
        events.extend(
            s.to_chrome_event()
            for s in sorted(self.spans, key=lambda s: (s.track, s.ts_us, -s.dur_us))
        )
        return events

    def export_chrome_trace(self, path: str) -> None:
        """Write ``{"traceEvents": [...]}`` loadable in chrome://tracing
        and Perfetto."""
        payload = {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}
        with open(path, "w") as fh:
            json.dump(payload, fh)

    def export_jsonl(self, path: str) -> None:
        """Write one JSON object per span."""
        with open(path, "w") as fh:
            for s in sorted(self.spans, key=lambda s: (s.track, s.ts_us)):
                fh.write(
                    json.dumps(
                        {
                            "name": s.name,
                            "ts_us": s.ts_us,
                            "dur_us": s.dur_us,
                            "track": s.track,
                            "depth": s.depth,
                            "args": s.args,
                        }
                    )
                )
                fh.write("\n")


#: Process-wide default tracer; disabled until :func:`enable_tracing`.
TRACER = Tracer(enabled=False)


def default_tracer() -> Tracer:
    return TRACER


def enable_tracing(reset: bool = True) -> Tracer:
    """Turn on the default tracer (optionally clearing prior spans)."""
    if reset:
        TRACER.reset()
    TRACER.enabled = True
    return TRACER


def disable_tracing() -> Tracer:
    TRACER.enabled = False
    return TRACER


def tracing_enabled() -> bool:
    return TRACER.enabled


def span(name: str, **args: Any):
    """Module-level shorthand for ``TRACER.span(...)`` — the call sites'
    one-liner: ``with obs.span("PACK", count=m): ...``"""
    if not TRACER.enabled:
        return _NULL_SPAN
    return TRACER.span(name, **args)
