"""Architecture description of CHAM (Fig. 1a) and the target FPGAs.

The default configuration is the paper's deployed design point:

* 2 compute engines, 9-stage macro-pipeline;
* per engine: a DOTPRODUCT group (stage 1-3: NTT / MULTPOLY / INTT),
  a RESCALE+EXTRACTLWES stage (stage 4), and one PACKTWOLWES module
  (stages 5-9: MULTMONO, MODADD/MODSUB, AUTOMORPH, KEYSWITCH, RESCALE);
* every NTT unit is a 4-PE (four-BFU) constant-geometry datapath over
  8 round-robin RAM banks (Section IV-A);
* 300 MHz clock on the Xilinx VU9P.

NTT-unit accounting (matches the paper's "total number of 60 NTT units"):
stage 1 transforms the 6 augmented-ciphertext polynomials and 3 augmented
plaintext polynomials (9 units), stage 3 inverse-transforms the 6 product
polynomials (6 units), and the PACKTWOLWES key-switch pipeline holds
``dnum * |Qp| = 6`` forward, ``2 * |Qp| = 6`` inverse and 3 spare
transform lanes (15 units) — 30 per engine, 60 in the two-engine design.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "NttUnitConfig",
    "EngineConfig",
    "ChamConfig",
    "FpgaDevice",
    "VU9P",
    "U200",
    "cham_default_config",
]


@dataclass(frozen=True)
class NttUnitConfig:
    """One constant-geometry NTT/INTT functional unit."""

    n: int = 4096
    n_bfu: int = 4
    ram_banks: int = 8
    #: twiddle/local-buffer memory technology: "bram", "bram+dram", "dram"
    memory: str = "bram"

    @property
    def log2_n(self) -> int:
        return self.n.bit_length() - 1

    @property
    def cycles(self) -> int:
        """Bubble-free transform latency: ``(N/2 * log2 N) / n_bfu``."""
        return (self.n // 2) * self.log2_n // self.n_bfu

    @property
    def coefficients_per_cycle(self) -> int:
        return 2 * self.n_bfu


@dataclass(frozen=True)
class EngineConfig:
    """One CHAM compute engine (the macro-pipeline of Fig. 1a)."""

    ntt_unit: NttUnitConfig = field(default_factory=NttUnitConfig)
    #: stage-1 forward-NTT lanes (augmented ct + pt polynomials)
    stage1_ntt_units: int = 9
    #: stage-3 inverse-NTT lanes (product polynomials)
    stage3_intt_units: int = 6
    #: transform lanes inside the PACKTWOLWES key-switch pipeline
    pack_ntt_units: int = 15
    #: coefficient-parallel lanes of MULTPOLY / RESCALE / PPU datapaths
    ppu_lanes: int = 4
    pack_units: int = 1
    pipeline_stages: int = 9
    #: reduce-buffer capacity, in intermediate pack results
    reduce_buffer_entries: int = 16
    #: per-thread input/output staging RAMs (Section III-C)
    io_buffer_polys: int = 12

    @property
    def total_ntt_units(self) -> int:
        return self.stage1_ntt_units + self.stage3_intt_units + self.pack_ntt_units

    @property
    def dot_product_interval(self) -> int:
        """Steady-state cycles between successive dot-product rows.

        Stage 1 must forward-transform the 3 augmented plaintext limbs of
        each row (the ciphertext transform is done once and cached);
        stage 3 must inverse-transform 6 product limbs.  With the default
        widths both stages sustain one row per NTT latency.
        """
        c = self.ntt_unit.cycles
        pt_polys = 3
        prod_polys = 6
        stage1 = -(-pt_polys * c // self.stage1_ntt_units)
        stage3 = -(-prod_polys * c // self.stage3_intt_units)
        stage2 = -(-6 * self.ntt_unit.n // (self.ppu_lanes * self.ntt_unit.n_bfu))
        stage4 = stage2
        return max(stage1, stage2, stage3, stage4, c // max(self.stage1_ntt_units // pt_polys, 1))

    @property
    def pack_interval(self) -> int:
        """Steady-state cycles per PACKTWOLWES reduction.

        One reduction's key-switch needs ``dnum * |Qp| = 6`` forward and
        ``2 * |Qp| = 6`` inverse transforms plus coefficient-wise work;
        ``pack_ntt_units`` lanes pipeline them.
        """
        c = self.ntt_unit.cycles
        transforms = 12
        return -(-transforms * c // self.pack_ntt_units)


@dataclass(frozen=True)
class ChamConfig:
    """Whole-accelerator configuration."""

    engine: EngineConfig = field(default_factory=EngineConfig)
    engines: int = 2
    clock_hz: float = 300e6
    pcie_gbps: float = 12.8  # effective host<->card bandwidth (GB/s)
    host_threads: int = 8

    @property
    def total_ntt_units(self) -> int:
        return self.engines * self.engine.total_ntt_units

    def with_engines(self, engines: int) -> "ChamConfig":
        return replace(self, engines=engines)


@dataclass(frozen=True)
class FpgaDevice:
    """FPGA resource envelope (for Table II percentages and DSE fitting)."""

    name: str
    luts: int
    ffs: int
    bram36: int
    urams: int
    dsps: int
    #: DDR bandwidth in GB/s (roofline memory roof)
    ddr_gbps: float
    #: peak 27x18 multiplies per cycle = DSP count (roofline compute roof)
    clock_hz: float = 300e6

    @property
    def peak_ops_per_sec(self) -> float:
        return self.dsps * self.clock_hz

    @property
    def ridge_intensity(self) -> float:
        """Ops/byte at which the roofline bends."""
        return self.peak_ops_per_sec / (self.ddr_gbps * 1e9)


#: Xilinx VU9P (production board, Table II).
VU9P = FpgaDevice(
    name="VU9P",
    luts=1_182_240,
    ffs=2_364_480,
    bram36=2_160,
    urams=960,
    dsps=6_840,
    ddr_gbps=77.0,
)

#: Xilinx Alveo U200 (prototyping board; same XCU9P silicon, shell carved out).
U200 = FpgaDevice(
    name="U200",
    luts=1_182_240,
    ffs=2_364_480,
    bram36=2_160,
    urams=960,
    dsps=6_840,
    ddr_gbps=77.0,
)


def cham_default_config() -> ChamConfig:
    """The paper's deployed design point (first Fig. 2b optimum)."""
    return ChamConfig()
