"""Lock-order and worker-thread concurrency analysis (REPRO210/211).

The serving stack now holds real locks across real thread pools: the
batched engine fans row tiles out over a ``ThreadPoolExecutor`` while
every worker funnels through :class:`EncodedMatrixCache`'s lock, the
tracer and metrics registry serialize appends from all of them, and the
cluster layer migrates cache entries between nodes.  Nothing checked
that those locks are acquired in a consistent order, or that the
attributes they exist to protect are only written with the lock held.
This module builds both facts from the ASTs:

* a **lock table** — ``self._lock = threading.Lock()`` in class bodies
  and ``LOCK = threading.Lock()`` at module scope, with reentrancy
  (``RLock``) noted;
* a **per-function summary** — locks acquired directly (``with`` items
  and ``.acquire()``/``.release()`` pairs), calls made (with the locks
  held at the call site), attribute writes on lock-owning classes (with
  the locks held at the write), and worker-thread spawn points
  (``pool.submit``/``pool.map``/``loop.run_in_executor``/
  ``threading.Thread(target=...)``, chasing callables through
  ``obs.run_with_context`` and lambda wrappers);
* a **may-acquire closure** over the call graph, giving the lock-order
  edge set ``held -> acquired`` including acquisitions that happen
  transitively inside calls.

REPRO210 reports cycles in that edge graph (two call paths that take
the same pair of locks in opposite order can deadlock under the pool),
including the 1-cycle of re-acquiring a non-reentrant ``Lock`` already
held.  REPRO211 walks the call graph from the worker-spawn points —
worker threads start holding *nothing* — propagating held-lock sets by
**intersection** over call paths, and reports writes to attributes of a
lock-owning class made while none of that class's locks is held.

Both rules are ``project`` rules: the spawn in ``serve/server.py``
reaches the cache writes in ``core/batch.py`` only through a cross-file
call graph.  Name resolution is deliberately conservative (annotated
receivers, ``self``, locally constructed instances, then unique
method-name match outside a common-verb blocklist); anything ambiguous
contributes no edge and no finding — missed bugs over false alarms,
same contract as :mod:`repro.analysis.dataflow`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .core import (
    SEVERITY_ERROR,
    Diagnostic,
    Rule,
    SourceFile,
    register,
)

__all__ = [
    "ProjectLockAnalysis",
    "analyze_project",
    "LockSite",
]

#: method names too generic to resolve by unique-suffix match — a
#: ``.get()`` on a dict must never resolve to some class's ``get``
_AMBIGUOUS_NAMES = {
    "get",
    "put",
    "set",
    "add",
    "pop",
    "run",
    "map",
    "new",
    "copy",
    "open",
    "close",
    "send",
    "recv",
    "read",
    "write",
    "next",
    "items",
    "keys",
    "values",
    "update",
    "append",
    "extend",
    "insert",
    "remove",
    "clear",
    "reset",
    "start",
    "stop",
    "join",
    "submit",
    "result",
    "encode",
    "decode",
    "format",
    "index",
    "count",
    "sort",
    "split",
    "strip",
    "replace",
    "setdefault",
    "move_to_end",
    "popitem",
}

#: constructors whose attribute writes are never REPRO211 findings: the
#: instance is not yet published to other threads
_CONSTRUCTORS = {"__init__", "__new__", "__post_init__", "__init_subclass__"}

_LOCK_FACTORIES = {"Lock": False, "RLock": True}


def _call_factory(node: ast.AST) -> Optional[bool]:
    """``threading.Lock()`` / ``Lock()`` -> reentrant flag, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = ""
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    return _LOCK_FACTORIES.get(name)


@dataclass(frozen=True, order=True)
class LockSite:
    """Where a lock-order edge was introduced."""

    rel: str
    line: int
    col: int


@dataclass
class _ClassInfo:
    name: str
    rel: str
    #: lock attribute name -> reentrant?
    locks: Dict[str, bool] = field(default_factory=dict)
    #: attribute name -> class name (from ``self.x = ClassName(...)``
    #: or annotated fields)
    attr_types: Dict[str, str] = field(default_factory=dict)
    methods: Set[str] = field(default_factory=set)


@dataclass
class _FuncInfo:
    key: str  # "rel::Class.method" or "rel::function"
    name: str
    cls: Optional[str]
    rel: str
    node: ast.AST
    #: lock ids acquired directly in this function
    acquires: Set[str] = field(default_factory=set)
    #: (candidate callee keys, held locks at the call, site)
    calls: List[Tuple[Tuple[str, ...], FrozenSet[str], LockSite]] = field(
        default_factory=list
    )
    #: (owner class, attr, held locks, site)
    writes: List[Tuple[str, str, FrozenSet[str], LockSite]] = field(
        default_factory=list
    )
    #: direct lock-order edges (held, acquired, site)
    edges: List[Tuple[str, str, LockSite]] = field(default_factory=list)
    #: re-acquisition of a held non-reentrant lock (lock, site)
    self_deadlocks: List[Tuple[str, LockSite]] = field(default_factory=list)
    #: functions this one hands to a worker thread (candidate keys)
    spawns: List[Tuple[str, ...]] = field(default_factory=list)


@dataclass
class ProjectLockAnalysis:
    """Everything the REPRO210/211 rules read."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: lock id -> reentrant
    locks: Dict[str, bool] = field(default_factory=dict)
    #: lock-order edges (held -> acquired)
    edges: Dict[Tuple[str, str], LockSite] = field(default_factory=dict)
    #: functions reachable from a worker-thread spawn point
    worker_reachable: Set[str] = field(default_factory=set)


# ---------------------------------------------------------------------------
# collection


class _Collector:
    """One project-wide pass: classes, locks, functions, summaries."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        self.sources = sources
        self.classes: Dict[str, _ClassInfo] = {}
        self.module_locks: Dict[str, Dict[str, bool]] = {}  # rel -> name
        self.functions: Dict[str, _FuncInfo] = {}
        #: bare function name -> keys (for unique-match resolution)
        self.by_name: Dict[str, List[str]] = {}

    # -- pass 1: class/lock tables ---------------------------------------

    def collect_declarations(self) -> None:
        for src in self.sources:
            self.module_locks.setdefault(src.rel, {})
            for node in src.tree.body:
                if isinstance(node, ast.ClassDef):
                    self._collect_class(src, node)
                elif isinstance(node, ast.Assign):
                    reentrant = _call_factory(node.value)
                    if reentrant is not None:
                        for tgt in node.targets:
                            if isinstance(tgt, ast.Name):
                                self.module_locks[src.rel][tgt.id] = reentrant

    def _collect_class(self, src: SourceFile, node: ast.ClassDef) -> None:
        info = self.classes.setdefault(
            node.name, _ClassInfo(name=node.name, rel=src.rel)
        )
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                ann = stmt.annotation
                type_name = _annotation_name(ann)
                if type_name:
                    info.attr_types[stmt.target.id] = type_name
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods.add(stmt.name)
                for sub in ast.walk(stmt):
                    if not isinstance(sub, ast.Assign):
                        continue
                    for tgt in sub.targets:
                        if (
                            isinstance(tgt, ast.Attribute)
                            and isinstance(tgt.value, ast.Name)
                            and tgt.value.id == "self"
                        ):
                            reentrant = _call_factory(sub.value)
                            if reentrant is not None:
                                info.locks[tgt.attr] = reentrant
                            else:
                                cls_name = _constructed_class(sub.value)
                                if cls_name:
                                    info.attr_types.setdefault(
                                        tgt.attr, cls_name
                                    )

    # -- pass 2: function summaries ---------------------------------------

    def collect_functions(self) -> None:
        # register every function first, then scan bodies: call
        # resolution must see later-defined callees (forward refs)
        pending: List[Tuple[SourceFile, _FuncInfo]] = []
        for src in self.sources:
            self._walk_defs(src, src.tree.body, "", None, pending)
        for key, fn in self.functions.items():
            self.by_name.setdefault(fn.name, []).append(key)
        for src, info in pending:
            _FunctionScanner(self, src, info).scan()

    def _walk_defs(
        self,
        src: SourceFile,
        body: Sequence[ast.stmt],
        prefix: str,
        cls: Optional[str],
        pending: List[Tuple[SourceFile, "_FuncInfo"]],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                key = f"{src.rel}::{qual}"
                info = _FuncInfo(
                    key=key, name=node.name, cls=cls, rel=src.rel, node=node
                )
                self.functions[key] = info
                pending.append((src, info))
                self._walk_defs(
                    src, node.body, f"{qual}.<locals>.", cls, pending
                )
            elif isinstance(node, ast.ClassDef):
                self._walk_defs(
                    src, node.body, f"{prefix}{node.name}.", cls=node.name,
                    pending=pending,
                )

    # -- resolution helpers ------------------------------------------------

    def lock_owning(self, cls_name: str) -> bool:
        info = self.classes.get(cls_name)
        return bool(info and info.locks)

    def owning_lock_ids(self, cls_name: str) -> Set[str]:
        info = self.classes.get(cls_name)
        if not info:
            return set()
        return {f"{cls_name}.{attr}" for attr in info.locks}

    def resolve_method(self, cls_name: str, method: str) -> Tuple[str, ...]:
        info = self.classes.get(cls_name)
        if info and method in info.methods:
            matches = tuple(
                key
                for key, fn in self.functions.items()
                if fn.cls == cls_name and fn.name == method
            )
            if matches:
                return matches
        return ()

    def resolve_unique(self, name: str) -> Tuple[str, ...]:
        if name in _AMBIGUOUS_NAMES or name.startswith("__"):
            return ()
        keys = self.by_name.get(name, ())
        if len(keys) == 1:
            return tuple(keys)
        return ()


def _annotation_name(ann: ast.AST) -> Optional[str]:
    if isinstance(ann, ast.Name):
        return ann.id
    if isinstance(ann, ast.Attribute):
        return ann.attr
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.split(".")[-1].strip() or None
    if isinstance(ann, ast.Subscript):  # Optional[T] / list[T]
        base = _annotation_name(ann.value)
        if base in ("Optional",):
            return _annotation_name(ann.slice)
        return None
    return None


def _constructed_class(node: ast.AST) -> Optional[str]:
    """``ClassName(...)`` -> ``ClassName`` (capitalized names only)."""
    if isinstance(node, ast.Call):
        name = ""
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name[:1].isupper():
            return name
    return None


class _FunctionScanner:
    """Linear walk of one function body tracking the held-lock set."""

    def __init__(
        self, collector: _Collector, src: SourceFile, info: _FuncInfo
    ) -> None:
        self.c = collector
        self.src = src
        self.info = info
        #: local variable -> class name (annotations + constructions)
        self.var_types: Dict[str, str] = {}
        node = info.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            all_args = list(node.args.posonlyargs) + list(node.args.args)
            all_args += list(node.args.kwonlyargs)
            for arg in all_args:
                if arg.annotation is not None:
                    type_name = _annotation_name(arg.annotation)
                    if type_name:
                        self.var_types[arg.arg] = type_name

    def site(self, node: ast.AST) -> LockSite:
        return LockSite(
            rel=self.src.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
        )

    # -- type/lock resolution ----------------------------------------------

    def receiver_class(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            if node.id == "self":
                return self.info.cls
            return self.var_types.get(node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
        ):
            owner = self.receiver_class(node.value)
            if owner:
                owner_info = self.c.classes.get(owner)
                if owner_info:
                    return owner_info.attr_types.get(node.attr)
        return None

    def resolve_lock(self, node: ast.AST) -> Optional[Tuple[str, bool]]:
        """Expr -> (lock id, reentrant) when it denotes a known lock."""
        if isinstance(node, ast.Name):
            mod = self.c.module_locks.get(self.src.rel, {})
            if node.id in mod:
                return (f"{self.src.rel}::{node.id}", mod[node.id])
            return None
        if isinstance(node, ast.Attribute):
            owner = self.receiver_class(node.value)
            if owner:
                info = self.c.classes.get(owner)
                if info and node.attr in info.locks:
                    return (f"{owner}.{node.attr}", info.locks[node.attr])
        return None

    def resolve_callee(self, func: ast.AST) -> Tuple[str, ...]:
        if isinstance(func, ast.Name):
            same_module = f"{self.src.rel}::{func.id}"
            if same_module in self.c.functions:
                return (same_module,)
            return self.c.resolve_unique(func.id)
        if isinstance(func, ast.Attribute):
            owner = self.receiver_class(func.value)
            if owner:
                keys = self.c.resolve_method(owner, func.attr)
                if keys:
                    return keys
                return ()
            return self.c.resolve_unique(func.attr)
        return ()

    # -- acquisition / edge bookkeeping ------------------------------------

    def _acquire(
        self, lock_id: str, reentrant: bool, held: Set[str], node: ast.AST
    ) -> None:
        if lock_id in held and not reentrant:
            self.info.self_deadlocks.append((lock_id, self.site(node)))
        for h in held:
            if h != lock_id:
                self.info.edges.append((h, lock_id, self.site(node)))
        self.info.acquires.add(lock_id)
        held.add(lock_id)

    # -- traversal ---------------------------------------------------------

    def scan(self) -> None:
        node = self.info.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.exec_block(node.body, set())

    def exec_block(self, stmts: Sequence[ast.stmt], held: Set[str]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, held)

    def exec_stmt(self, stmt: ast.stmt, held: Set[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs get their own summary
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entered: List[str] = []
            for item in stmt.items:
                self.visit_expr(item.context_expr, held)
                lock = self.resolve_lock(item.context_expr)
                if lock is not None:
                    lock_id, reentrant = lock
                    before = lock_id in held
                    self._acquire(lock_id, reentrant, held, stmt)
                    if not before:
                        entered.append(lock_id)
            self.exec_block(stmt.body, held)
            for lock_id in entered:
                held.discard(lock_id)
            return
        if isinstance(stmt, ast.If):
            then_held = set(held)
            else_held = set(held)
            self.visit_expr(stmt.test, held)
            self.exec_block(stmt.body, then_held)
            self.exec_block(stmt.orelse, else_held)
            # only locks acquired on BOTH branches are reliably held
            held.update(then_held & else_held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit_expr(stmt.iter, held)
            self.exec_block(stmt.body, set(held))
            self.exec_block(stmt.orelse, set(held))
            return
        if isinstance(stmt, ast.While):
            self.visit_expr(stmt.test, held)
            self.exec_block(stmt.body, set(held))
            self.exec_block(stmt.orelse, set(held))
            return
        if isinstance(stmt, ast.Try):
            self.exec_block(stmt.body, held)
            for handler in stmt.handlers:
                self.exec_block(handler.body, set(held))
            self.exec_block(stmt.orelse, set(held))
            self.exec_block(stmt.finalbody, held)
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets: List[ast.AST]
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            else:
                targets = [stmt.target]
            if stmt.value is not None:
                self.visit_expr(stmt.value, held)
                for tgt in targets:
                    self._record_write(tgt, held)
            # track local construction: x = ClassName(...)
            if isinstance(stmt, ast.Assign) and stmt.value is not None:
                cls_name = _constructed_class(stmt.value)
                if cls_name:
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name):
                            self.var_types[tgt.id] = cls_name
            return
        if isinstance(stmt, ast.Expr):
            self.visit_expr(stmt.value, held)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self.visit_expr(stmt.value, held)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.visit_expr(child, held)

    def _record_write(self, target: ast.AST, held: Set[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_write(elt, held)
            return
        if not isinstance(target, ast.Attribute):
            return
        owner = self.receiver_class(target.value)
        if not owner or not self.c.lock_owning(owner):
            return
        info = self.c.classes.get(owner)
        if info and target.attr in info.locks:
            return  # installing the lock itself
        if self.info.name in _CONSTRUCTORS:
            return  # instance not yet published
        self.info.writes.append(
            (owner, target.attr, frozenset(held), self.site(target))
        )

    # -- expressions: calls, acquire/release, spawns -----------------------

    def visit_expr(self, node: ast.AST, held: Set[str]) -> None:
        for call in _walk_calls(node):
            self._handle_call(call, held)

    def _handle_call(self, node: ast.Call, held: Set[str]) -> None:
        func = node.func
        # explicit acquire/release on a resolvable lock
        if isinstance(func, ast.Attribute) and func.attr in (
            "acquire",
            "release",
        ):
            lock = self.resolve_lock(func.value)
            if lock is not None:
                lock_id, reentrant = lock
                if func.attr == "acquire":
                    self._acquire(lock_id, reentrant, held, node)
                else:
                    held.discard(lock_id)
                return
        # worker-thread spawn points
        self._detect_spawn(node)
        # ordinary call edge
        candidates = self.resolve_callee(func)
        if candidates:
            self.info.calls.append(
                (candidates, frozenset(held), self.site(node))
            )

    def _detect_spawn(self, node: ast.Call) -> None:
        func = node.func
        spawn_exprs: List[Tuple[ast.AST, List[ast.AST]]] = []
        if isinstance(func, ast.Attribute):
            if func.attr == "submit" and node.args:
                spawn_exprs.append((node.args[0], list(node.args[1:])))
            elif func.attr == "map" and node.args:
                spawn_exprs.append((node.args[0], []))
            elif func.attr == "run_in_executor" and len(node.args) >= 2:
                spawn_exprs.append((node.args[1], list(node.args[2:])))
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else ""
        )
        if name == "Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    spawn_exprs.append((kw.value, []))
        for expr, trailing in spawn_exprs:
            for keys in self._callable_targets(expr, trailing):
                self.info.spawns.append(keys)

    def _callable_targets(
        self, expr: ast.AST, trailing: List[ast.AST], depth: int = 0
    ) -> List[Tuple[str, ...]]:
        """Resolve a callable expr to candidate functions, chasing
        ``run_with_context(ctx, fn, ...)`` bridges and lambda wrappers."""
        if depth > 4:
            return []
        if isinstance(expr, (ast.Name, ast.Attribute)):
            attr = (
                expr.attr
                if isinstance(expr, ast.Attribute)
                else expr.id
            )
            if attr == "run_with_context" and len(trailing) >= 2:
                return self._callable_targets(
                    trailing[1], trailing[2:], depth + 1
                )
            keys = self.resolve_callee(expr)
            return [keys] if keys else []
        if isinstance(expr, ast.Lambda):
            out: List[Tuple[str, ...]] = []
            for call in _walk_calls(expr.body):
                func = call.func
                fname = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id
                    if isinstance(func, ast.Name)
                    else ""
                )
                if fname == "run_with_context" and len(call.args) >= 2:
                    out.extend(
                        self._callable_targets(
                            call.args[1], list(call.args[2:]), depth + 1
                        )
                    )
                else:
                    keys = self.resolve_callee(func)
                    if keys:
                        out.append(keys)
            return out
        return []


def _walk_calls(node: ast.AST) -> List[ast.Call]:
    """Every Call in an expression, outermost first, skipping lambda
    bodies (those run later, in whatever context invokes them)."""
    out: List[ast.Call] = []
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, ast.Lambda):
            continue
        if isinstance(cur, ast.Call):
            out.append(cur)
        stack.extend(ast.iter_child_nodes(cur))
    return out


# ---------------------------------------------------------------------------
# global analysis


def analyze_project(sources: Sequence[SourceFile]) -> ProjectLockAnalysis:
    out = ProjectLockAnalysis()
    collector = _Collector(sources)
    collector.collect_declarations()
    collector.collect_functions()
    functions = collector.functions

    # reentrancy table over every known lock id
    for cls in collector.classes.values():
        for attr, reentrant in cls.locks.items():
            out.locks[f"{cls.name}.{attr}"] = reentrant
    for rel, mod in collector.module_locks.items():
        for name, reentrant in mod.items():
            out.locks[f"{rel}::{name}"] = reentrant

    # may-acquire closure: locks a call might take, transitively
    may_acquire: Dict[str, Set[str]] = {
        key: set(fn.acquires) for key, fn in functions.items()
    }
    changed = True
    while changed:
        changed = False
        for key, fn in functions.items():
            acc = may_acquire[key]
            before = len(acc)
            for candidates, _held, _site in fn.calls:
                for callee in candidates:
                    acc |= may_acquire.get(callee, set())
            if len(acc) != before:
                changed = True

    # lock-order edges: direct acquisitions plus acquisitions reached
    # through calls made while holding
    edges: Dict[Tuple[str, str], LockSite] = {}
    for fn in functions.values():
        for held, acquired, site in fn.edges:
            edges.setdefault((held, acquired), site)
        for candidates, held, site in fn.calls:
            if not held:
                continue
            for callee in candidates:
                for acquired in may_acquire.get(callee, set()):
                    for h in held:
                        if h != acquired:
                            edges.setdefault((h, acquired), site)
                        elif not out.locks.get(acquired, False):
                            fn.self_deadlocks.append((acquired, site))
    out.edges = edges

    diags: List[Diagnostic] = []

    # REPRO210: self-deadlocks and cycles
    seen_self: Set[Tuple[str, str, int]] = set()
    for fn in functions.values():
        for lock_id, site in fn.self_deadlocks:
            key = (lock_id, site.rel, site.line)
            if key in seen_self:
                continue
            seen_self.add(key)
            diags.append(
                Diagnostic(
                    path=site.rel,
                    line=site.line,
                    col=site.col,
                    rule_id="REPRO210",
                    severity=SEVERITY_ERROR,
                    message=(
                        f"non-reentrant lock `{lock_id}` is re-acquired "
                        "while already held on this path: threading.Lock "
                        "self-deadlocks (use RLock only if re-entry is "
                        "genuinely needed; usually the inner acquisition "
                        "should be hoisted out)"
                    ),
                )
            )
    for cycle in _find_cycles({e for e in edges}):
        first = min(
            (edges[(a, b)], a, b)
            for a, b in zip(cycle, cycle[1:] + cycle[:1])
            if (a, b) in edges
        )
        site, a, b = first
        pretty = " -> ".join(cycle + [cycle[0]])
        diags.append(
            Diagnostic(
                path=site.rel,
                line=site.line,
                col=site.col,
                rule_id="REPRO210",
                severity=SEVERITY_ERROR,
                message=(
                    f"lock-order cycle {pretty}: two paths acquire these "
                    "locks in opposite orders, which can deadlock under "
                    "the worker pool (pick one global order and acquire "
                    "in that order everywhere)"
                ),
            )
        )

    # REPRO211: unguarded writes reachable from worker threads.
    # entry_held(fn) = locks provably held on EVERY path from a spawn
    # point into fn (intersection); workers start holding nothing.
    entry_held: Dict[str, FrozenSet[str]] = {}
    worklist: List[str] = []
    for fn in functions.values():
        for candidates in fn.spawns:
            for target in candidates:
                if target in functions and target not in entry_held:
                    entry_held[target] = frozenset()
                    worklist.append(target)
    while worklist:
        key = worklist.pop()
        fn = functions.get(key)
        if fn is None:
            continue
        base = entry_held[key]
        for candidates, held, _site in fn.calls:
            h = frozenset(base | held)
            for callee in candidates:
                if callee not in functions:
                    continue
                if callee not in entry_held:
                    entry_held[callee] = h
                    worklist.append(callee)
                else:
                    merged = entry_held[callee] & h
                    if merged != entry_held[callee]:
                        entry_held[callee] = merged
                        worklist.append(callee)
    out.worker_reachable = set(entry_held)

    for key, base in entry_held.items():
        fn = functions[key]
        for owner, attr, held, site in fn.writes:
            owning = collector.owning_lock_ids(owner)
            if (base | held) & owning:
                continue
            diags.append(
                Diagnostic(
                    path=site.rel,
                    line=site.line,
                    col=site.col,
                    rule_id="REPRO211",
                    severity=SEVERITY_ERROR,
                    message=(
                        f"`{owner}.{attr}` is written on a path "
                        "reachable from a worker thread without holding "
                        f"any of {sorted(owning)}: concurrent writers "
                        "race (wrap the write in `with` on the owning "
                        "lock, or prove the path single-threaded and "
                        "noqa with that argument)"
                    ),
                )
            )

    out.diagnostics = sorted(diags)
    return out


def _find_cycles(edges: Set[Tuple[str, str]]) -> List[List[str]]:
    """Elementary cycles of length >= 2, each reported once.

    The lock graphs here are tiny (a handful of nodes), so a DFS from
    each node with a canonical-rotation dedup is plenty.
    """
    graph: Dict[str, Set[str]] = {}
    for a, b in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    cycles: List[List[str]] = []
    seen: Set[Tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: List[str]) -> None:
        for nxt in sorted(graph.get(node, ())):
            if nxt == start and len(path) >= 2:
                rotation = min(
                    tuple(path[i:] + path[:i]) for i in range(len(path))
                )
                if rotation not in seen:
                    seen.add(rotation)
                    cycles.append(list(rotation))
            elif nxt not in path and nxt > start:
                # only visit nodes > start: each cycle found exactly
                # once, from its smallest node
                dfs(start, nxt, path + [nxt])

    for start in sorted(graph):
        dfs(start, start, [start])
    return cycles


# ---------------------------------------------------------------------------
# registry adapters


_PROJECT_CACHE: Dict[Tuple[Tuple[str, int], ...], ProjectLockAnalysis] = {}


def _analyze_cached(
    sources: Sequence[SourceFile],
) -> ProjectLockAnalysis:
    key = tuple(sorted((s.rel, hash(s.text)) for s in sources))
    hit = _PROJECT_CACHE.get(key)
    if hit is not None:
        return hit
    analysis = analyze_project(sources)
    if len(_PROJECT_CACHE) >= 8:
        _PROJECT_CACHE.clear()
    _PROJECT_CACHE[key] = analysis
    return analysis


class _LockRule(Rule):
    severity = SEVERITY_ERROR
    project = True

    def applies_to(self, rel_path: str) -> bool:
        parts = rel_path.split("/")
        name = parts[-1]
        is_test = (
            "tests" in parts
            or name.startswith("test_")
            or name == "conftest.py"
        )
        return not is_test

    def check_project(
        self, sources: Sequence[SourceFile]
    ) -> List[Diagnostic]:
        analysis = _analyze_cached(sources)
        return [d for d in analysis.diagnostics if d.rule_id == self.id]


@register
class LockOrderCycle(_LockRule):
    id = "REPRO210"
    name = "lock-order-cycle"
    rationale = (
        "two code paths that take the same pair of locks in opposite "
        "orders deadlock the worker pool the first time they interleave; "
        "re-acquiring a held threading.Lock deadlocks a single thread — "
        "both are invisible to tests that never hit the interleaving"
    )


@register
class UnguardedSharedWrite(_LockRule):
    id = "REPRO211"
    name = "unguarded-shared-write"
    rationale = (
        "a class that owns a lock declares its attributes shared "
        "mutable state; writing them on a worker-thread-reachable path "
        "without the lock races against every guarded reader/writer "
        "(lost updates on counters, torn LRU order on the cache)"
    )
