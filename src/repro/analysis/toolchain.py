"""External-tool orchestration for ``repro lint --ci``.

One entry point runs the three gates the CI ``lint`` job enforces:

1. the custom HE-aware rules (:mod:`repro.analysis.rules`) over
   ``src/repro``;
2. **ruff** (style/pyflakes layer, config in ``pyproject.toml``);
3. **mypy** (strict profile on ``repro.math`` + ``repro.he``, standard
   elsewhere — see ``[tool.mypy]`` in ``pyproject.toml``).

ruff and mypy are *gated*: environments without them (the pinned
offline container, minimal dev setups) report the tool as ``skipped``
and the gate passes on the custom rules alone; CI installs both, so
``skipped`` never happens there.  No network access or installation is
ever attempted here.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .core import Diagnostic, diagnostics_to_json, lint_paths, render_text

__all__ = [
    "ToolResult",
    "repo_root",
    "tool_available",
    "changed_python_files",
    "run_ruff",
    "run_mypy",
    "run_ci",
]


@dataclass(frozen=True)
class ToolResult:
    """Outcome of one external tool invocation."""

    name: str
    status: str  #: "ok" | "failed" | "skipped"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "skipped")

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "status": self.status, "detail": self.detail}


def repo_root() -> Path:
    """The checkout root: the directory holding ``pyproject.toml``.

    Resolved from this file's location (``src/repro/analysis/``), so it
    works no matter the caller's working directory.
    """
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").is_file():
            return parent
    return here.parents[3]


def tool_available(module: str) -> bool:
    """True when ``python -m <module>`` would resolve."""
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


def _run(
    cmd: Sequence[str], cwd: Path, env: Optional[Dict[str, str]] = None
) -> Tuple[int, str]:
    import os

    merged = dict(os.environ)
    if env:
        merged.update(env)
    proc = subprocess.run(
        list(cmd),
        cwd=str(cwd),
        env=merged,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode, proc.stdout.strip()


def changed_python_files(base: str, root: Optional[Path] = None) -> List[Path]:
    """``.py`` files changed versus a git ref (the ``--diff`` scope).

    Uses ``git diff --name-only --diff-filter=d BASE`` plus untracked
    files, so freshly added modules are linted before their first
    commit.  Deleted files are excluded (nothing to lint).  Raises
    :class:`RuntimeError` when git itself fails (unknown ref, not a
    repository) — the CLI turns that into a usage error rather than
    silently linting nothing.
    """
    root = root or repo_root()
    names: List[str] = []
    for cmd in (
        ["git", "diff", "--name-only", "--diff-filter=d", base],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        code, output = _run(cmd, cwd=root)
        if code != 0:
            raise RuntimeError(
                f"`{' '.join(cmd)}` failed (exit {code}): {output}"
            )
        names.extend(line.strip() for line in output.splitlines())
    out: List[Path] = []
    seen = set()
    for name in names:
        if not name.endswith(".py") or name in seen:
            continue
        seen.add(name)
        path = root / name
        if path.is_file():
            out.append(path)
    return sorted(out)


def run_ruff(root: Optional[Path] = None) -> ToolResult:
    """``ruff check src`` with the pyproject config, if installed."""
    root = root or repo_root()
    if not tool_available("ruff"):
        return ToolResult("ruff", "skipped", "ruff not installed")
    code, output = _run(
        [sys.executable, "-m", "ruff", "check", "src"], cwd=root
    )
    return ToolResult("ruff", "ok" if code == 0 else "failed", output)


def run_mypy(root: Optional[Path] = None) -> ToolResult:
    """``mypy -p repro`` with the pyproject config, if installed."""
    root = root or repo_root()
    if not tool_available("mypy"):
        return ToolResult("mypy", "skipped", "mypy not installed")
    code, output = _run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            "pyproject.toml",
            "-p",
            "repro",
        ],
        cwd=root,
        env={"MYPYPATH": str(root / "src")},
    )
    return ToolResult("mypy", "ok" if code == 0 else "failed", output)


def run_ci(
    root: Optional[Path] = None,
    sarif_out: Optional[Path] = None,
) -> Tuple[int, Dict[str, object], str]:
    """The full ``repro lint --ci`` gate.

    Returns ``(exit_code, json_report, human_text)``; exit code 0 means
    every custom rule is clean on ``src/repro`` and every available
    external tool passed.  ``sarif_out`` additionally writes the custom
    rules' findings as a SARIF 2.1.0 log for code-scanning upload.
    """
    root = root or repo_root()
    src = root / "src" / "repro"
    diags: List[Diagnostic] = lint_paths([src], root=root)
    tools = [run_ruff(root), run_mypy(root)]

    if sarif_out is not None:
        import json

        from .sarif import diagnostics_to_sarif

        Path(sarif_out).write_text(
            json.dumps(diagnostics_to_sarif(diags), indent=2),
            encoding="utf-8",
        )

    report = diagnostics_to_json(diags)
    report["tools"] = [t.to_dict() for t in tools]
    failed_tools = [t for t in tools if not t.ok]
    ok = not diags and not failed_tools
    report["ok"] = ok

    lines = [render_text(diags)]
    for tool in tools:
        lines.append(f"{tool.name}: {tool.status}")
        if tool.detail and tool.status == "failed":
            lines.append(tool.detail)
    lines.append(f"repro lint --ci: {'PASS' if ok else 'FAIL'}")
    return (0 if ok else 1), report, "\n".join(lines)
