"""Delphi-style secure two-party inference (§V-B4's context, [28]).

Delphi splits private inference into an input-independent *offline*
phase that burns the HE budget (exactly the Beaver-triple generation
CHAM accelerates) and a feather-weight *online* phase over additive
shares:

offline, per linear layer ``L``:
    1. the client samples a random tensor ``r``, encrypts it, sends
       ``[[r]]`` (one CHAM HMVP / conv worth of ciphertexts);
    2. the server evaluates ``[[L(r)]]`` homomorphically, blinds it with
       a random ``s`` and returns ``[[L(r) - s]]``;
    3. the client decrypts and keeps ``c = L(r) - s``; the server keeps
       ``s``.

online, per linear layer:
    4. the client sends the masked input ``x - r`` (cleartext shares!);
    5. the server computes ``L(x - r) + s`` — its share of ``L(x)``;
       the client's share is ``c``, since ``L(x-r) + s + c = L(x)``.
    6. non-linear layers (ReLU) run in an MPC stand-in: shares are
       reconstructed at the client, activated, and re-shared.

Everything is exact arithmetic over ``Z_t``; :class:`DelphiInference`
runs the full two-layer :class:`~repro.apps.inference.TinyModel`
(conv → ReLU → dense) through the real HE pipeline and the protocol
harness, so both correctness *and* communication are measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.conv import Conv2dEncoder, conv2d_reference, homomorphic_conv2d
from ..core.hmvp import TiledHmvp
from ..he.bfv import BfvScheme
from .inference import TinyModel
from .protocol import Channel, Party

__all__ = ["LayerCorrelation", "DelphiInference"]


def _mod(x: np.ndarray, t: int) -> np.ndarray:
    return np.mod(np.asarray(x, dtype=object), t)


def _center(x: np.ndarray, t: int) -> np.ndarray:
    half = t // 2
    return np.where(x > half, x - t, x)


@dataclass
class LayerCorrelation:
    """One layer's offline material: client ``(r, c)``, server ``s``."""

    r: np.ndarray  # client's random input mask (cleartext at client)
    c: np.ndarray  # client's share  c = L(r) - s
    s: np.ndarray  # server's share


@dataclass
class DelphiInference:
    """Client/server secure inference over one shared scheme.

    The scheme's secret key belongs to the client; the server only ever
    sees ciphertexts and masked cleartext shares.
    """

    scheme: BfvScheme
    model: TinyModel
    image_size: int
    seed: Optional[int] = None
    channel: Channel = field(default_factory=lambda: Channel("delphi"))

    def __post_init__(self) -> None:
        self.client = Party("client", self.channel)
        self.server = Party("server", self.channel)
        self.rng = np.random.default_rng(self.seed)
        self.t = self.scheme.params.plain_modulus
        kh, kw = self.model.kernel.shape
        self.conv_encoder = Conv2dEncoder(
            self.scheme, self.image_size, self.image_size, kh, kw
        )
        self.tiler = TiledHmvp(self.scheme)
        self._conv_corr: Optional[LayerCorrelation] = None
        self._fc_corr: Optional[LayerCorrelation] = None

    # -- offline phase -----------------------------------------------------------

    def _offline_conv(self) -> LayerCorrelation:
        size = self.image_size
        # client: sample r, encrypt, send (values bounded so HE inner
        # products stay inside Z_t — production shares the full ring and
        # tiles; see BeaverGenerator._rand_small for the same convention)
        r = self.rng.integers(-(1 << 12), 1 << 12, (size, size))
        ct = self.conv_encoder.encrypt_image(r)
        self.client.send(self.server, "offline/conv/enc_r", ct)

        # server: homomorphic conv, blind, return
        ct_in = self.server.recv("offline/conv/enc_r")
        out = homomorphic_conv2d(self.conv_encoder, ct_in, self.model.kernel)
        oh, ow = self.conv_encoder.out_shape
        s = self.rng.integers(0, self.t, (oh, ow), dtype=np.uint64).astype(object)
        # blinding by add_plain of -s keeps the result uniformly masked
        neg_s = self.scheme.encoder.encode_coeffs(
            self._embed_conv_mask(-s % self.t)
        )
        blinded = out.add_plain(neg_s)
        self.server.send(self.client, "offline/conv/blinded", blinded)

        # client: decrypt c = Conv(r) - s
        ct_back = self.client.recv("offline/conv/blinded")
        pt = self.scheme.decrypt_plaintext(ct_back)
        c = _mod(self.conv_encoder.decode_output(pt), self.t)
        return LayerCorrelation(r=r, c=c, s=s)

    def _embed_conv_mask(self, mask: np.ndarray) -> np.ndarray:
        """Place a mask over the conv output positions of the plaintext."""
        coeffs = np.zeros(self.scheme.params.n, dtype=object)
        pos = self.conv_encoder.output_positions()
        oh, ow = mask.shape
        for i in range(oh):
            for j in range(ow):
                coeffs[pos[i, j]] = int(mask[i, j])
        return coeffs

    def _offline_fc(self) -> LayerCorrelation:
        feat = self.model.fc.shape[1]
        r = self.rng.integers(-(1 << 12), 1 << 12, feat)
        ct_tiles = self.tiler.encrypt_vector(r)
        self.client.send(self.server, "offline/fc/enc_r", ct_tiles)

        tiles = self.server.recv("offline/fc/enc_r")
        result = self.tiler.multiply(self.model.fc, tiles)
        # server blinds after the pack: one add_plain on the packed ct
        classes = self.model.fc.shape[0]
        s = self.rng.integers(0, self.t, classes, dtype=np.uint64).astype(object)
        pack = result.packs[0]
        stride = self.scheme.params.n >> pack.scale_pow2
        mask_coeffs = np.zeros(self.scheme.params.n, dtype=object)
        scale_inv = pow(1 << pack.scale_pow2, -1, self.t)
        for i in range(classes):
            # the packed slots carry 2^k * value; blind at matching scale
            mask_coeffs[i * stride] = int(-s[i] * (1 << pack.scale_pow2) % self.t)
        blinded = pack.ct.add_plain(
            self.scheme.encoder.encode_coeffs(mask_coeffs)
        )
        self.server.send(self.client, "offline/fc/blinded", blinded)
        del scale_inv

        ct_back = self.client.recv("offline/fc/blinded")
        pt = self.scheme.decrypt_plaintext(ct_back)
        c = _mod(
            self.scheme.encoder.decode_packed(pt, classes, pack.scale_pow2),
            self.t,
        )
        return LayerCorrelation(r=r, c=c, s=s)

    def offline(self) -> None:
        """Run the input-independent preprocessing for both layers."""
        self._conv_corr = self._offline_conv()
        self._fc_corr = self._offline_fc()

    # -- online phase ---------------------------------------------------------------

    def online(self, image: np.ndarray) -> np.ndarray:
        """Classify one image; returns the logits (exact integers)."""
        if self._conv_corr is None or self._fc_corr is None:
            raise RuntimeError("run offline() first")
        t = self.t
        conv = self._conv_corr
        fc = self._fc_corr

        # client -> server: masked image (cleartext shares)
        masked = _mod(image.astype(object) - conv.r.astype(object), t)
        self.client.send(self.server, "online/conv/masked", masked)

        # server: L(x - r) + s
        x_minus_r = _center(self.server.recv("online/conv/masked"), t)
        server_share = _mod(
            conv2d_reference(x_minus_r, self.model.kernel) + conv.s, t
        )
        self.server.send(self.client, "online/conv/share", server_share)

        # client: reconstruct conv output, ReLU (the MPC stand-in)
        fm = _center(_mod(self.client.recv("online/conv/share") + conv.c, t), t)
        act = np.maximum(fm, 0).reshape(-1)

        # second layer: same dance with the FC correlation
        masked2 = _mod(act - fc.r.astype(object), t)
        self.client.send(self.server, "online/fc/masked", masked2)
        x2 = _center(self.server.recv("online/fc/masked"), t)
        server_share2 = _mod(self.model.fc.astype(object) @ x2 + fc.s, t)
        self.server.send(self.client, "online/fc/share", server_share2)
        logits = _center(_mod(self.client.recv("online/fc/share") + fc.c, t), t)
        return logits

    # -- reporting --------------------------------------------------------------------

    def communication_summary(self) -> dict:
        by_label = self.channel.bytes_by_label()
        offline = sum(v for k, v in by_label.items() if k.startswith("offline"))
        online = sum(v for k, v in by_label.items() if k.startswith("online"))
        return {
            "offline_bytes": offline,
            "online_bytes": online,
            "rounds": self.channel.rounds,
            "by_label": by_label,
        }
