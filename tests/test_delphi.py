"""Tests for the Delphi-style secure inference protocol."""

import numpy as np
import pytest

from repro.apps.datasets import make_digit_images
from repro.apps.delphi import DelphiInference
from repro.apps.inference import TinyModel


@pytest.fixture(scope="module")
def protocol(scheme256):
    model = TinyModel.random(12, classes=2, seed=41)
    proto = DelphiInference(scheme256, model, 12, seed=42)
    proto.offline()
    return proto


def test_online_matches_clear_model(protocol):
    imgs, _ = make_digit_images(4, 12, seed=43)
    for img in imgs:
        got = protocol.online(img)
        want = protocol.model.predict_clear(img)
        assert np.array_equal(got, want)


def test_online_requires_offline(scheme256):
    proto = DelphiInference(
        scheme256, TinyModel.random(12, seed=1), 12, seed=2
    )
    with pytest.raises(RuntimeError, match="offline"):
        proto.online(np.zeros((12, 12), dtype=np.int64))


def test_server_never_sees_plaintext_image(protocol):
    """Every client->server online message is masked: uniformly random
    given the image (here: differs from the raw image)."""
    imgs, _ = make_digit_images(1, 12, seed=44)
    protocol.online(imgs[0])
    masked = [
        m.payload
        for m in protocol.channel.log
        if m.label == "online/conv/masked"
    ][-1]
    raw = np.mod(imgs[0].astype(object), protocol.t)
    assert not np.array_equal(masked, raw)


def test_shares_reconstruct_only_jointly(protocol):
    """Neither correlation share alone reveals Conv(r)."""
    corr = protocol._conv_corr
    t = protocol.t
    from repro.core.conv import conv2d_reference

    true = np.mod(
        conv2d_reference(corr.r, protocol.model.kernel), t
    )
    assert not np.array_equal(np.mod(corr.c, t), true)
    assert not np.array_equal(np.mod(corr.s, t), true)
    assert np.array_equal(np.mod(corr.c + corr.s, t), true)


def test_communication_split(protocol):
    """Offline carries the ciphertexts; online only cleartext shares —
    Delphi's entire point, visible in the byte split."""
    imgs, _ = make_digit_images(1, 12, seed=45)
    protocol.online(imgs[0])
    summary = protocol.communication_summary()
    per_online_run = 4
    online_msgs = [m for m in protocol.channel.log if m.label.startswith("online")]
    assert len(online_msgs) % per_online_run == 0
    # one online pass is much lighter than the offline phase
    one_online = sum(m.size for m in online_msgs[:4])
    assert one_online < summary["offline_bytes"] / 3
    assert summary["rounds"] >= 4


def test_fc_correlation_shares(protocol):
    corr = protocol._fc_corr
    t = protocol.t
    true = np.mod(
        protocol.model.fc.astype(object) @ corr.r.astype(object), t
    )
    assert np.array_equal(np.mod(corr.c + corr.s, t), true)
