"""Tests for the HeteroLR protocol (Fig. 7 workload)."""

import numpy as np
import pytest

from repro.apps.datasets import make_vertical_dataset
from repro.apps.heterolr import (
    BfvBackend,
    HeteroLrTrainer,
    LrConfig,
    PaillierBackend,
    PlainBackend,
    sigmoid,
    taylor_sigmoid,
)
from repro.he.bfv import BfvScheme
from repro.he.params import toy_params


@pytest.fixture(scope="module")
def data():
    return make_vertical_dataset(96, 12, seed=1)


@pytest.fixture(scope="module")
def cfg():
    return LrConfig(epochs=3, batch_size=32, learning_rate=0.3)


@pytest.fixture(scope="module")
def plain_result(data, cfg):
    return HeteroLrTrainer(PlainBackend(), cfg).train(data)


def test_sigmoid_approximation():
    z = np.linspace(-1, 1, 11)
    assert np.allclose(taylor_sigmoid(z), 0.25 * z + 0.5)
    assert np.max(np.abs(taylor_sigmoid(z) - sigmoid(z))) < 0.02


def test_plain_training_learns(plain_result):
    _w, hist = plain_result
    assert hist.accuracies[-1] > 0.85
    assert hist.losses[-1] < hist.losses[0] + 1e-9


def test_bfv_matches_plain(data, cfg, plain_result):
    w_plain, _ = plain_result
    scheme = BfvScheme(toy_params(n=64, plain_bits=40), seed=3, max_pack=64)
    w_bfv, hist = HeteroLrTrainer(BfvBackend(scheme), cfg).train(data)
    assert np.allclose(w_bfv, w_plain, atol=1e-2)
    assert hist.accuracies[-1] > 0.85


def test_paillier_matches_plain(data, cfg, plain_result):
    w_plain, _ = plain_result
    backend = PaillierBackend(key_bits=256, seed=2)
    w_pail, hist = HeteroLrTrainer(backend, cfg).train(data)
    assert np.allclose(w_pail, w_plain, atol=1e-2)
    assert hist.accuracies[-1] > 0.85


def test_bfv_op_counts(data, cfg):
    scheme = BfvScheme(toy_params(n=64, plain_bits=40), seed=5, max_pack=64)
    backend = BfvBackend(scheme)
    HeteroLrTrainer(backend, cfg).train(data)
    batches_per_epoch = 3  # 96 / 32
    total_batches = cfg.epochs * batches_per_epoch
    counts = backend.counts
    assert counts.matvecs == 2 * total_batches  # one per party per batch
    assert counts.encryptions == total_batches  # party A encrypts e once
    # the 96-sample batch spans 32/64: one ciphertext tile per batch
    assert counts.ct_additions == total_batches


def test_l2_regularization_changes_weights(data):
    cfg_l2 = LrConfig(epochs=2, batch_size=32, learning_rate=0.3, l2=0.5)
    cfg_no = LrConfig(epochs=2, batch_size=32, learning_rate=0.3)
    w_l2, _ = HeteroLrTrainer(PlainBackend(), cfg_l2).train(data)
    w_no, _ = HeteroLrTrainer(PlainBackend(), cfg_no).train(data)
    assert np.linalg.norm(w_l2) < np.linalg.norm(w_no)


def test_fixed_point_precision_bound(data):
    """BFV gradients differ from float gradients only by quantization."""
    cfg1 = LrConfig(epochs=1, batch_size=96, learning_rate=0.5, frac_bits=13)
    scheme = BfvScheme(toy_params(n=128, plain_bits=40), seed=6, max_pack=128)
    w_b, _ = HeteroLrTrainer(BfvBackend(scheme, frac_bits=13), cfg1).train(data)
    w_p, _ = HeteroLrTrainer(PlainBackend(), cfg1).train(data)
    assert np.max(np.abs(w_b - w_p)) < 1e-3


def test_counts_merge():
    from repro.apps.heterolr import StepCounts

    a = StepCounts(encryptions=2, matvecs=1)
    b = StepCounts(encryptions=3, decryptions=4)
    a.merge(b)
    assert a.encryptions == 5 and a.decryptions == 4 and a.matvecs == 1


def test_masking_does_not_change_results(data, cfg):
    """Gradient blinding is exact in Z_t: masked and unmasked runs agree."""
    from repro.he.bfv import BfvScheme
    from repro.he.params import toy_params

    s1 = BfvScheme(toy_params(n=64, plain_bits=40), seed=9, max_pack=64)
    s2 = BfvScheme(toy_params(n=64, plain_bits=40), seed=9, max_pack=64)
    w_masked, _ = HeteroLrTrainer(
        BfvBackend(s1, mask_gradients=True), cfg
    ).train(data)
    w_plain, _ = HeteroLrTrainer(
        BfvBackend(s2, mask_gradients=False), cfg
    ).train(data)
    assert np.allclose(w_masked, w_plain, atol=1e-12)


def test_mask_blinds_arbiter_view(data):
    """What the arbiter decrypts under masking is NOT the true gradient."""
    from repro.he.bfv import BfvScheme
    from repro.he.params import toy_params

    scheme = BfvScheme(toy_params(n=64, plain_bits=40), seed=10, max_pack=64)
    backend = BfvBackend(scheme, mask_gradients=True)
    rng = np.random.default_rng(0)
    e = rng.normal(0, 1, 64)
    enc = backend.encrypt_residual(e)
    x = rng.normal(0, 1, (64, 6))
    result = backend.gradient(x, enc)
    # the raw (unmasked) decryption equals the true fixed-point gradient;
    # with masking the arbiter-visible plaintext is uniformly shifted
    raw = result.decrypt(scheme)
    masked_view_differs = False
    t = scheme.params.plain_modulus
    pack = result.packs[0]
    mask = np.ones(pack.count, dtype=object) * 12345
    coeffs = np.zeros(scheme.params.n, dtype=object)
    stride = scheme.params.n >> pack.scale_pow2
    for i in range(pack.count):
        coeffs[i * stride] = int(mask[i]) * (1 << pack.scale_pow2) % t
    blinded = pack.ct.add_plain(scheme.encoder.encode_coeffs(coeffs))
    seen = scheme.encoder.decode_packed(
        scheme.decrypt_plaintext(blinded), pack.count, pack.scale_pow2
    )
    masked_view_differs = not np.array_equal(
        np.mod(np.asarray(seen, dtype=object), t),
        np.mod(np.asarray(raw, dtype=object), t),
    )
    assert masked_view_differs
