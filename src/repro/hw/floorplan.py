"""Floorplanning model for the VU9P's three SLRs (Fig. 5).

The VU9P is a three-die (SLR) stacked device; Fig. 5 shows CHAM's
floorplan with the two compute engines placed in separate SLRs and the
platform (shell) occupying the middle die's PCIe column.  This module
models that placement problem coarsely:

* each SLR holds one third of every resource class;
* a module assigned to an SLR consumes its resources there; per-SLR
  utilization must stay below the P&R threshold (the same 75 % rule,
  but now *per die*, which is what actually kills timing closure);
* signals crossing between SLRs pay super-long-line (SLL) channels —
  the engines' independence means CHAM only crosses for the platform
  interface, which is why the two-engine split works at 300 MHz.

:func:`plan_cham` reproduces the paper's placement and verifies it; the
greedy :func:`auto_floorplan` shows the placement is essentially forced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .arch import ChamConfig, FpgaDevice, VU9P, cham_default_config
from .resources import ResourceVector, engine_resources, platform_resources

__all__ = ["SlrPlan", "plan_cham", "auto_floorplan", "SLR_COUNT"]

SLR_COUNT = 3

#: SLL crossings consumed by each inter-SLR interface class
_SLL_PER_ENGINE_LINK = 1_200  # engine <-> platform data/control
_SLL_CAPACITY_PER_BOUNDARY = 17_280  # VU9P SLL channels per boundary


@dataclass
class SlrPlan:
    """A module -> SLR assignment with derived feasibility checks."""

    device: FpgaDevice
    assignment: Dict[str, int]
    modules: Dict[str, ResourceVector]
    #: per-die thresholds: logic must leave P&R headroom, while RAM/DSP
    #: columns can run hotter inside one die (they are placed, not routed)
    max_util: Dict[str, float] = field(
        default_factory=lambda: {
            "LUT": 0.75,
            "FF": 0.75,
            "BRAM": 0.95,
            "URAM": 0.95,
            "DSP": 0.85,
        }
    )

    def slr_resources(self) -> List[ResourceVector]:
        totals = [ResourceVector() for _ in range(SLR_COUNT)]
        for name, slr in self.assignment.items():
            totals[slr] = totals[slr] + self.modules[name]
        return totals

    def slr_capacity(self) -> ResourceVector:
        d = self.device
        return ResourceVector(
            lut=d.luts // SLR_COUNT,
            ff=d.ffs // SLR_COUNT,
            bram=d.bram36 // SLR_COUNT,
            uram=d.urams // SLR_COUNT,
            dsp=d.dsps // SLR_COUNT,
        )

    def slr_utilizations(self) -> List[Dict[str, float]]:
        cap = self.slr_capacity()
        out = []
        for total in self.slr_resources():
            out.append(
                {
                    "LUT": total.lut / cap.lut,
                    "FF": total.ff / cap.ff,
                    "BRAM": total.bram / cap.bram,
                    "URAM": total.uram / max(cap.uram, 1),
                    "DSP": total.dsp / cap.dsp,
                }
            )
        return out

    def feasible(self) -> bool:
        return all(
            v <= self.max_util[key]
            for util in self.slr_utilizations()
            for key, v in util.items()
        )

    def sll_crossings(self) -> int:
        """SLL channels used: one engine<->platform link per boundary hop."""
        plat_slr = self.assignment.get("platform")
        crossings = 0
        for name, slr in self.assignment.items():
            if name == "platform":
                continue
            crossings += abs(slr - plat_slr) * _SLL_PER_ENGINE_LINK
        return crossings

    def sll_feasible(self) -> bool:
        # the worst boundary carries at most all crossings in this model
        return self.sll_crossings() <= _SLL_CAPACITY_PER_BOUNDARY


def _cham_modules(cfg: ChamConfig) -> Dict[str, ResourceVector]:
    modules = {"platform": platform_resources()}
    for i in range(cfg.engines):
        modules[f"engine{i}"] = engine_resources(cfg.engine)
    return modules


def plan_cham(cfg: Optional[ChamConfig] = None) -> SlrPlan:
    """The paper's Fig. 5 placement: engines in the outer SLRs, the
    platform (PCIe shell) in the middle die."""
    cfg = cfg or cham_default_config()
    modules = _cham_modules(cfg)
    assignment = {"platform": 1}
    outer = [0, 2, 1]  # third engine (if any) shares the middle die
    for i in range(cfg.engines):
        assignment[f"engine{i}"] = outer[i % len(outer)]
    return SlrPlan(device=VU9P, assignment=assignment, modules=modules)


def auto_floorplan(cfg: Optional[ChamConfig] = None) -> SlrPlan:
    """Greedy placement: biggest module first into the emptiest SLR,
    platform pinned to the middle die (its PCIe pins live there)."""
    cfg = cfg or cham_default_config()
    modules = _cham_modules(cfg)
    assignment = {"platform": 1}
    loads = [0.0] * SLR_COUNT
    plat = modules["platform"]
    loads[1] += plat.lut
    names = sorted(
        (n for n in modules if n != "platform"),
        key=lambda n: -modules[n].lut,
    )
    for name in names:
        slr = min(range(SLR_COUNT), key=lambda s: loads[s])
        assignment[name] = slr
        loads[slr] += modules[name].lut
    return SlrPlan(device=VU9P, assignment=assignment, modules=modules)
