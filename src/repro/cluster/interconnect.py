"""Charging real ciphertext movement through the network simulator.

:class:`ClusterInterconnect` is the thin stateful bridge between
:class:`repro.cluster.executor.ClusterExecutor` and the discrete-event
fabric in :mod:`repro.hw.netsim`.  The executor stays the source of
truth for *what* moves (hoisted scatter tiles, gathered LWE partials,
migrated cache entries) and sizes each payload from the actual ndarray
byte counts; this class turns those bytes into flits on a concrete
:class:`~repro.hw.topology.Topology` and keeps the cycle ledger.

Elastic membership rebuilds the fabric: when nodes join or leave, the
old simulator's statistics are folded into a cumulative ledger and a
fresh topology is wired over the surviving id set (an *epoch*).  All
reported totals therefore span the executor's whole lifetime even
though the wiring changed underneath.

The ``ideal`` fabric keeps every drain at zero cycles, which is how the
property suite pins that attaching a network simulator — without
bandwidth limits — reproduces the free-comm executor bit-exactly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..hw.netsim import NetworkSimulator
from ..hw.topology import COORDINATOR, Topology, build_topology

__all__ = ["COORDINATOR", "ClusterInterconnect"]

_PHASES = ("scatter", "failover", "gather", "replica_sync")


class ClusterInterconnect:
    """Lifetime network-cycle ledger over rebuildable topology epochs."""

    def __init__(
        self,
        kind: str,
        node_ids: Iterable[int],
        bandwidth: int = 64,
        latency: int = 4,
        flit_bytes: int = 64,
        buffer_flits: int = 4,
        arity: int = 2,
    ) -> None:
        self.kind = kind
        self.bandwidth = int(bandwidth)
        self.latency = int(latency)
        self.flit_bytes = int(flit_bytes)
        self.buffer_flits = int(buffer_flits)
        self.arity = int(arity)
        self.epochs = 0
        self.phase_cycles: Dict[str, int] = {p: 0 for p in _PHASES}
        self.total_cycles = 0
        self._folded: Dict[str, int] = {
            "cycles": 0,
            "events": 0,
            "messages": 0,
            "flits_injected": 0,
            "flits_delivered": 0,
            "duplicates": 0,
            "blocked_attempts": 0,
            "max_queue_depth": 0,
            "max_inject_depth": 0,
        }
        self._folded_links: Dict[str, Dict[str, int]] = {}
        self._folded_phases: Dict[str, Dict[str, int]] = {}
        self.topology: Topology
        self.sim: NetworkSimulator
        self._build(node_ids)

    # ------------------------------------------------------------------
    # epochs
    # ------------------------------------------------------------------
    def _build(self, node_ids: Iterable[int]) -> None:
        self.topology = build_topology(
            self.kind,
            sorted(node_ids),
            bandwidth=self.bandwidth,
            latency=self.latency,
            arity=self.arity,
        )
        self.sim = NetworkSimulator(
            self.topology,
            flit_bytes=self.flit_bytes,
            buffer_flits=self.buffer_flits,
        )
        self.epochs += 1

    @property
    def node_ids(self) -> Tuple[int, ...]:
        return self.topology.node_ids

    def set_nodes(self, node_ids: Iterable[int]) -> None:
        """Rewire the fabric over a churned node id set (new epoch)."""
        ids = tuple(sorted(node_ids))
        if ids == self.node_ids:
            return
        self._fold()
        self._build(ids)

    def _scalars(self) -> Dict[str, int]:
        """Current epoch's scalar counters, same keys as the fold ledger."""
        sim = self.sim
        return {
            "cycles": sim.engine.now,
            "events": sim.engine.events_handled,
            "messages": len(sim.messages),
            "flits_injected": sim.flits_injected,
            "flits_delivered": sim.flits_delivered,
            "duplicates": sim.duplicates,
            "blocked_attempts": sim.blocked_attempts,
            "max_queue_depth": sim.max_queue_depth,
            "max_inject_depth": sim.max_inject_depth,
        }

    def _fold(self) -> None:
        """Absorb the retiring simulator's stats into the lifetime ledger."""
        scalars = self._scalars()
        f = self._folded
        for key in (
            "cycles",
            "events",
            "messages",
            "flits_injected",
            "flits_delivered",
            "duplicates",
            "blocked_attempts",
        ):
            f[key] += scalars[key]
        for key in ("max_queue_depth", "max_inject_depth"):
            f[key] = max(f[key], scalars[key])
        for name, row in self.sim.link_stats_raw().items():
            acc = self._folded_links.setdefault(
                name,
                {
                    "flits": 0,
                    "nbytes": 0,
                    "busy_cycles": 0,
                    "blocked": 0,
                    "max_depth": 0,
                },
            )
            for k in ("flits", "nbytes", "busy_cycles", "blocked"):
                acc[k] += row[k]
            acc["max_depth"] = max(acc["max_depth"], row["max_depth"])
        for name, row in self.sim.phase_stats().items():
            acc = self._folded_phases.setdefault(
                name,
                {
                    "cycles": 0,
                    "flits": 0,
                    "messages": 0,
                    "nbytes": 0,
                    "drains": 0,
                },
            )
            for k in acc:
                acc[k] += row.get(k, 0)

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def begin_phase(self, name: str) -> None:
        self.sim.begin_phase(name)

    def inject(self, src: int, dst: int, nbytes: int, tag: str = "") -> int:
        return self.sim.inject(src, dst, int(nbytes), tag=tag)

    def drain(self, phase: str) -> int:
        """Run the queue dry and book the cycles against ``phase``."""
        cycles = self.sim.drain()
        self.phase_cycles[phase] = self.phase_cycles.get(phase, 0) + cycles
        self.total_cycles += cycles
        return cycles

    def transfer(
        self, src: int, dst: int, nbytes: int, phase: str = "replica_sync",
        tag: str = "",
    ) -> int:
        """One immediate point-to-point message (migration traffic)."""
        if src == dst or nbytes <= 0:
            return 0
        self.begin_phase(phase)
        self.inject(src, dst, nbytes, tag=tag)
        return self.drain(phase)

    def estimate_transfer_cycles(self, src: int, dst: int, nbytes: int) -> int:
        """Contention-free lower bound for one message (deadline math).

        Serialization on the tightest link along the path plus the sum
        of hop latencies — what the message costs on an otherwise idle
        fabric.  Zero on the ideal topology, matching its actual cost.
        """
        if self.topology.ideal or src == dst or nbytes <= 0:
            return 0
        path = self.topology.route(src, dst)
        if not path:
            return 0
        nflits = max(1, -(-int(nbytes) // self.flit_bytes))
        bottleneck = max(
            link.serialization_cycles(self.flit_bytes) for link in path
        )
        return nflits * bottleneck + sum(link.latency for link in path)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def trace_digest(self) -> str:
        """Digest of the current epoch's event trace."""
        return self.sim.trace_digest()

    def network_block(self) -> Dict[str, object]:
        """Lifetime network stats for the ``ClusterReport``."""
        current = self._scalars()
        f = self._folded
        merged: Dict[str, Dict[str, int]] = {
            name: dict(row) for name, row in self._folded_links.items()
        }
        for name, row in self.sim.link_stats_raw().items():
            acc = merged.setdefault(
                name,
                {
                    "flits": 0,
                    "nbytes": 0,
                    "busy_cycles": 0,
                    "blocked": 0,
                    "max_depth": 0,
                },
            )
            for k in ("flits", "nbytes", "busy_cycles", "blocked"):
                acc[k] += row[k]
            acc["max_depth"] = max(acc["max_depth"], row["max_depth"])
        total_cycles = f["cycles"] + current["cycles"]
        horizon = max(1, total_cycles)
        links: Dict[str, Dict[str, object]] = {}
        for name, raw in merged.items():
            out_row: Dict[str, object] = dict(raw)
            out_row["utilization"] = round(raw["busy_cycles"] / horizon, 6)
            links[name] = out_row
        phases: Dict[str, Dict[str, int]] = {}
        for source in (self._folded_phases, self.sim.phase_stats()):
            for name, row in source.items():
                acc = phases.setdefault(
                    name,
                    {
                        "cycles": 0,
                        "flits": 0,
                        "messages": 0,
                        "nbytes": 0,
                        "drains": 0,
                    },
                )
                for k in acc:
                    acc[k] += row.get(k, 0)
        return {
            "topology": self.topology.name,
            "kind": self.topology.kind,
            "ideal": self.topology.ideal,
            "flit_bytes": self.flit_bytes,
            "buffer_flits": self.buffer_flits,
            "bandwidth": self.bandwidth,
            "latency": self.latency,
            "epochs": self.epochs,
            "cycles": total_cycles,
            "events": f["events"] + current["events"],
            "messages": f["messages"] + current["messages"],
            "flits_injected": f["flits_injected"] + current["flits_injected"],
            "flits_delivered": (
                f["flits_delivered"] + current["flits_delivered"]
            ),
            "flits_dropped": (
                f["flits_injected"]
                + current["flits_injected"]
                - f["flits_delivered"]
                - current["flits_delivered"]
            ),
            "duplicates": f["duplicates"] + current["duplicates"],
            "blocked_attempts": (
                f["blocked_attempts"] + current["blocked_attempts"]
            ),
            "max_queue_depth": max(
                f["max_queue_depth"], current["max_queue_depth"]
            ),
            "max_inject_depth": max(
                f["max_inject_depth"], current["max_inject_depth"]
            ),
            "phase_cycles": {
                k: v for k, v in sorted(self.phase_cycles.items())
            },
            "phases": {k: phases[k] for k in sorted(phases)},
            "links": {k: links[k] for k in sorted(links)},
            "trace_sha256": self.trace_digest(),
        }
