"""Tests for the driver command stream (ISA)."""

import pytest

from repro.hw.isa import Command, CommandStream, Opcode, StreamExecutor, compile_hmvp
from repro.hw.pipeline import MacroPipeline
from repro.hw.arch import cham_default_config


def test_compile_counts_single_tile():
    stream = compile_hmvp(8)
    assert stream.count(Opcode.LOAD_KSK) == 1
    assert stream.count(Opcode.LOAD_VECTOR) == 1
    assert stream.count(Opcode.DOT_PRODUCT) == 8
    assert stream.count(Opcode.LWE_AGGREGATE) == 0
    assert stream.count(Opcode.PACK_REDUCE) == 7
    assert stream.count(Opcode.READ_RESULT) == 1


def test_compile_counts_multi_tile():
    stream = compile_hmvp(8, col_tiles=3)
    assert stream.count(Opcode.LOAD_VECTOR) == 3
    assert stream.count(Opcode.DOT_PRODUCT) == 24
    assert stream.count(Opcode.LWE_AGGREGATE) == 16  # (tiles-1) per row


def test_compile_4096_reductions():
    """The paper's 4095 reductions appear as PACK_REDUCE commands."""
    stream = compile_hmvp(4096)
    assert stream.count(Opcode.PACK_REDUCE) == 4095


def test_pack_levels_follow_tree():
    stream = compile_hmvp(8)
    levels = [c.operand for c in stream.commands if c.opcode is Opcode.PACK_REDUCE]
    assert sorted(levels) == [1, 1, 1, 1, 2, 2, 3]


def test_compile_validation():
    with pytest.raises(ValueError):
        compile_hmvp(0)
    with pytest.raises(ValueError):
        compile_hmvp(4, col_tiles=0)


def test_executor_accepts_compiled_streams():
    ex = StreamExecutor()
    for rows, tiles in [(1, 1), (5, 1), (16, 2), (128, 1)]:
        report = ex.execute(compile_hmvp(rows, tiles))
        assert report.dot_products == rows * tiles
        assert report.cycles > 0


def test_executor_cycles_match_pipeline():
    cfg = cham_default_config()
    ex = StreamExecutor(cfg)
    report = ex.execute(compile_hmvp(256))
    expect = MacroPipeline(cfg.engine).simulate_hmvp(256).total_cycles
    assert report.cycles == expect


def test_validator_rejects_dot_before_vector():
    stream = CommandStream(rows=1, col_tiles=1)
    stream.commands = [
        Command(Opcode.LOAD_KSK),
        Command(Opcode.DOT_PRODUCT, operand=0, tile=0),
    ]
    with pytest.raises(ValueError, match="LOAD_VECTOR"):
        StreamExecutor().validate(stream)


def test_validator_rejects_pack_before_ksk():
    stream = CommandStream(rows=2, col_tiles=1)
    stream.commands = [
        Command(Opcode.LOAD_VECTOR, tile=0),
        Command(Opcode.DOT_PRODUCT, operand=0),
        Command(Opcode.DOT_PRODUCT, operand=1),
        Command(Opcode.PACK_REDUCE, operand=1),
    ]
    with pytest.raises(ValueError, match="LOAD_KSK"):
        StreamExecutor().validate(stream)


def test_validator_rejects_wrong_reduction_count():
    stream = compile_hmvp(8)
    stream.commands = [
        c for c in stream.commands if c.opcode is not Opcode.PACK_REDUCE
    ][:-1] + [Command(Opcode.PACK_REDUCE, operand=1), Command(Opcode.READ_RESULT)]
    with pytest.raises(ValueError, match="reductions"):
        StreamExecutor().validate(stream)


def test_validator_rejects_missing_rows():
    stream = compile_hmvp(4)
    stream.commands = [
        c
        for c in stream.commands
        if not (c.opcode is Opcode.DOT_PRODUCT and c.operand == 3)
    ]
    with pytest.raises(ValueError, match="every row|reductions"):
        StreamExecutor().validate(stream)


def test_aggregate_requires_prior_dot():
    stream = CommandStream(rows=1, col_tiles=2)
    stream.commands = [
        Command(Opcode.LOAD_KSK),
        Command(Opcode.LOAD_VECTOR, tile=0),
        Command(Opcode.LOAD_VECTOR, tile=1),
        Command(Opcode.LWE_AGGREGATE, operand=0, tile=1),
    ]
    with pytest.raises(ValueError, match="aggregate"):
        StreamExecutor().validate(stream)


def test_stream_len():
    stream = compile_hmvp(2)
    assert len(stream) == 1 + 1 + 2 + 1 + 1  # ksk, vec, 2 dots, 1 reduce, read
