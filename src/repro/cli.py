"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user the zero-code tour:

``demo``
    one encrypted matrix-vector product end to end (toy ring by default,
    ``--production`` for N=4096);
``tables``
    print the headline reproduced tables (Table II, Table III, operator
    throughputs, roofline);
``trace``
    render the macro-pipeline Gantt for a given row count;
``params``
    show (or generate) a parameter set;
``dse``
    run the design-space sweep and print the frontier;
``metrics``
    run a small instrumented workload and print the metrics-registry
    snapshot (counters / gauges / histograms);
``batch``
    serve a batch of encrypted vectors against one matrix through the
    matrix-resident batched engine (encoded-matrix cache, hoisted NTTs,
    one pack per request) and print cache / queue / scheduler metrics;
``serve``
    load-generate against the async fault-tolerant serving front-end
    (multi-engine dispatch, deadlines, retry + backoff, CPU degrade)
    and print per-status counts, latency percentiles and goodput;
``lint``
    run the HE-aware static-analysis rules (``repro.analysis``) over
    ``src/repro`` or the given paths; ``--ci`` additionally runs ruff
    and mypy (skipped gracefully when not installed) as the merge gate;
``profile``
    run the kernel profiler over a warm batched HMVP and print the
    sim-gap ledger (wall microseconds per kernel joined against the
    macro-pipeline cycle model) plus optional Chrome-trace,
    collapsed-stack and OpenMetrics exports;
``perfcheck``
    compare the latest benchmark records against the pinned floors in
    ``benchmarks/floors.json`` — the CI perf-regression gate.

``demo``, ``trace`` and ``report`` additionally accept
``--trace-out FILE`` to dump a Chrome-trace-format span file, loadable
in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main"]


@contextlib.contextmanager
def _tracing(path: Optional[str]):
    """Enable the default tracer around a command body and export."""
    if not path:
        yield
        return
    from repro.obs import TRACER, disable_tracing, enable_tracing

    enable_tracing()
    try:
        yield
    finally:
        disable_tracing()
        TRACER.export_chrome_trace(path)
        print(
            f"trace written to {path} "
            "(load in chrome://tracing or ui.perfetto.dev)"
        )


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.hmvp import hmvp
    from repro.he.bfv import BfvScheme
    from repro.he.params import cham_params, toy_params

    params = cham_params() if args.production else toy_params(n=256, plain_bits=40)
    rows = args.rows
    scheme = BfvScheme(params, seed=args.seed, max_pack=rows)
    rng = np.random.default_rng(args.seed)
    n = params.n
    matrix = rng.integers(-(1 << 12), 1 << 12, (rows, n))
    vector = rng.integers(-(1 << 12), 1 << 12, n)
    print(f"params : {params.describe()}")
    with _tracing(args.trace_out):
        ct = scheme.encrypt_vector(vector)
        result = hmvp(scheme, matrix, ct)
        got = result.decrypt(scheme)
    want = matrix.astype(object) @ vector.astype(object)
    ok = bool(np.array_equal(got, want))
    print(f"HMVP   : {rows}x{n}, {result.ops.pack_reductions} reductions, "
          f"correct={ok}")
    from repro.he.noise import packed_slot_positions

    pos = packed_slot_positions(n, rows)
    print(f"noise  : packed slot budget "
          f"{scheme.noise_budget(result.packs[0].ct, pos):.1f} bits")
    return 0 if ok else 1


def _cmd_tables(_args: argparse.Namespace) -> int:
    from repro.hw.arch import cham_default_config
    from repro.hw.perf import ChamPerfModel, CpuCostModel
    from repro.hw.resources import (
        TABLE3_NTT_VARIANTS,
        engine_resources,
        total_resources,
        utilization,
    )
    from repro.hw.roofline import roofline_points

    cfg = cham_default_config()
    print("== Table II: utilization on VU9P ==")
    for key, val in utilization(total_resources(cfg)).items():
        print(f"  {key:5s} {val:6.2f}%")
    eng = engine_resources(cfg.engine)
    print(f"  (engine: LUT {eng.lut:,}, DSP {eng.dsp})")

    print("== Table III: NTT module variants ==")
    for mem, (lut, bram) in TABLE3_NTT_VARIANTS.items():
        print(f"  {mem:10s} LUT {lut:6,}  BRAM {bram:2d}  latency 6144")

    cham = ChamPerfModel()
    cpu = CpuCostModel()
    print("== operator throughputs ==")
    print(f"  NTT offload : {cham.ntt_offload_throughput():,.0f} ops/s (paper 195k)")
    ks = cham.keyswitch_throughput()
    print(f"  key-switch  : {ks:,.0f} ops/s = "
          f"{ks / cpu.keyswitch_throughput():.0f}x CPU (paper 65k @ 105x)")

    print("== roofline (Fig. 2a) ==")
    for name, k in roofline_points().items():
        print(f"  {name:9s} {k.intensity:6.2f} op/B -> "
              f"{100 * k.peak_fraction:5.1f}% of peak")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.hw.arch import EngineConfig
    from repro.hw.trace import capture_trace, chrome_trace_events, render_gantt

    trace = capture_trace(EngineConfig(), rows=args.rows, col_tiles=args.tiles)
    print(render_gantt(trace, width=args.width))
    if args.trace_out:
        payload = {
            "traceEvents": chrome_trace_events(trace),
            "displayTimeUnit": "ms",
        }
        with open(args.trace_out, "w") as fh:
            json.dump(payload, fh)
        print(
            f"trace written to {args.trace_out} "
            "(1 cycle = 1 us; load in chrome://tracing or ui.perfetto.dev)"
        )
    return 0


def _cmd_params(args: argparse.Namespace) -> int:
    from repro.he.paramgen import ParamRequest, generate_params
    from repro.he.params import cham_params

    if args.n == 4096 and args.limbs == 2:
        params = cham_params()
    else:
        params = generate_params(
            ParamRequest(
                n=args.n,
                ct_modulus_bits=tuple([args.limb_bits] * args.limbs),
                special_bits=args.special_bits,
                plain_bits=args.plain_bits,
            )
        )
    print(params.describe())
    print(f"ct moduli      : {[hex(q) for q in params.ct_moduli]}")
    print(f"special modulus: {hex(params.special_modulus)}")
    print(f"plain modulus  : {params.plain_modulus}")
    print(f"poly counts    : ct {params.ct_poly_count} "
          f"(aug {params.ct_poly_count_aug}), pt {params.pt_poly_count} "
          f"(aug {params.pt_poly_count_aug})")
    return 0


def _cmd_compare(_args: argparse.Namespace) -> int:
    from repro.hw.compare import comparison_rows

    header = ["design", "venue", "tech", "clock", "NTT ATP", "mm^2", "scope", "multi"]
    rows = comparison_rows()
    widths = [max(len(str(h)), max(len(str(r[i])) for r in rows)) for i, h in enumerate(header)]
    print(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    for r in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    from repro.hw.power import energy_per_hmvp

    out = energy_per_hmvp(args.rows, args.cols)
    print(f"energy per {args.rows}x{args.cols} HMVP:")
    print(f"  CPU : {out['cpu_j']:8.2f} J")
    print(f"  GPU : {out['gpu_j']:8.2f} J")
    print(f"  CHAM: {out['cham_j']:8.2f} J "
          f"({out['cham_vs_cpu']:.0f}x vs CPU, {out['cham_vs_gpu']:.1f}x vs GPU)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import generate_report

    with _tracing(args.trace_out):
        text = generate_report(args.output)
    if args.output:
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run one instrumented tour of the stack and print the registry.

    The workload touches every layer that reports metrics: a functional
    HMVP (NTT/modmul counters, pack reductions), a noise-budget readout
    (gauges), a macro-pipeline simulation (stage occupancy, stalls) and
    an RAS runtime job + health check (the paper's monitoring counters).
    """
    from repro import obs
    from repro.core.hmvp import hmvp
    from repro.he.bfv import BfvScheme
    from repro.he.noise import packed_slot_positions
    from repro.he.params import toy_params
    from repro.hw.arch import EngineConfig
    from repro.hw.pipeline import MacroPipeline
    from repro.hw.runtime import FpgaRuntime

    reg = obs.enable_metrics()
    rows = args.rows
    params = toy_params(n=256, plain_bits=40)
    scheme = BfvScheme(params, seed=args.seed, max_pack=rows)
    rng = np.random.default_rng(args.seed)
    matrix = rng.integers(-(1 << 12), 1 << 12, (rows, params.n))
    vector = rng.integers(-(1 << 12), 1 << 12, params.n)
    result = hmvp(scheme, matrix, scheme.encrypt_vector(vector))
    scheme.noise_budget(
        result.packs[0].ct, packed_slot_positions(params.n, rows)
    )
    MacroPipeline(EngineConfig()).simulate_hmvp(1024)
    runtime = FpgaRuntime()
    runtime.poll(runtime.submit(rows))
    runtime.health()

    snap = reg.snapshot()
    if args.json:
        print(json.dumps(snap, indent=2))
        return 0
    print(f"== metrics registry snapshot ({len(reg)} instruments) ==")
    for name, value in snap["counters"].items():
        print(f"  counter   {name:35s} {value:,}")
    for name, value in snap["gauges"].items():
        print(f"  gauge     {name:35s} {value:,.3f}")
    for name, h in snap["histograms"].items():
        print(
            f"  histogram {name:35s} n={h['count']} mean={h['mean']:,.1f} "
            f"min={h['min']:,.1f} max={h['max']:,.1f}"
        )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Batched serving demo: one resident matrix, many encrypted vectors.

    The engine is constructed twice with the same matrix so the run
    always exercises both sides of the encoded-matrix cache (one miss,
    one hit) — what the CI smoke job asserts on.
    """
    from repro import obs
    from repro.core.batch import BatchedHmvp, BatchQueue, EncodedMatrixCache
    from repro.he.bfv import BfvScheme
    from repro.he.params import toy_params

    reg = obs.enable_metrics()
    params = toy_params(n=128, plain_bits=40)
    scheme = BfvScheme(params, seed=args.seed, max_pack=args.rows)
    rng = np.random.default_rng(args.seed)
    matrix = rng.integers(-40, 40, (args.rows, params.n))
    cache = EncodedMatrixCache()
    BatchedHmvp(scheme, matrix, cache=cache)  # cold: encodes, cache miss
    engine = BatchedHmvp(
        scheme, matrix, cache=cache, workers=args.workers
    )  # warm: cache hit
    queue = BatchQueue(engine, workers=args.workers)
    vectors = [rng.integers(-40, 40, params.n) for _ in range(args.batch)]
    for v in vectors:
        queue.submit(scheme.encrypt_vector(v))
    report = queue.drain()
    ok = all(
        np.array_equal(
            res.decrypt(scheme), matrix.astype(object) @ v.astype(object)
        )
        for res, v in zip(report.results, vectors)
    )

    snap = reg.snapshot()
    if args.json:
        print(json.dumps({
            "correct": ok,
            "rows": args.rows,
            "batch": args.batch,
            "makespan_cycles": report.schedule.makespan,
            "utilization": report.schedule.utilization,
            "counters": snap["counters"],
            "gauges": snap["gauges"],
        }, indent=2))
        return 0 if ok else 1
    print(f"batch  : {args.batch} vectors x ({args.rows}x{params.n}) "
          f"matrix, correct={ok}")
    print(f"cache  : {cache.hits} hit(s), {cache.misses} miss(es)")
    print(f"queue  : drained {len(report.request_ids)} requests, "
          f"makespan {report.schedule.makespan:,} cycles, "
          f"utilization {100 * report.schedule.utilization:.1f}%")
    for name in sorted(snap["counters"]):
        if name.startswith(("batch.", "he.pack.")):
            print(f"  counter {name:28s} {snap['counters'][name]:,}")
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Load-generate against the async serving layer and report.

    The acceptance shape: every submitted request reaches a terminal
    outcome (served on the accelerator, retried, or degraded to CPU —
    zero dropped), all completed results decrypt to the exact ``A @ v``,
    and the JSON dump carries latency percentiles plus simulated
    goodput for the chosen engine count.
    """
    from repro import obs
    from repro.he.bfv import BfvScheme
    from repro.he.params import toy_params
    from repro.serve import ServeConfig, serve_requests

    reg = obs.enable_metrics()
    params = toy_params(n=128, plain_bits=40)
    scheme = BfvScheme(params, seed=args.seed, max_pack=args.rows)
    rng = np.random.default_rng(args.seed)
    matrix = rng.integers(-40, 40, (args.rows, params.n))
    vectors = [rng.integers(-40, 40, params.n) for _ in range(args.requests)]
    cts = [scheme.encrypt_vector(v) for v in vectors]
    config = ServeConfig(
        engines=args.engines,
        max_batch=args.batch,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=max(args.capacity, args.requests),
        fault_rate=args.fault_rate,
        register_flip_rate=args.register_flip_rate,
        max_retries=args.max_retries,
        seed=args.seed,
    )
    report = serve_requests(scheme, matrix, cts, config)
    correct = all(
        np.array_equal(
            o.result.decrypt(scheme),
            matrix.astype(object) @ vectors[o.request_id].astype(object),
        )
        for o in report.outcomes
        if o.completed
    )
    ok = (
        correct
        and report.dropped == 0
        and report.completed == report.submitted
    )
    if args.json:
        payload = report.to_dict()
        payload["correct"] = correct
        snap = reg.snapshot()
        payload["counters"] = {
            k: v for k, v in snap["counters"].items()
            if k.startswith(("serve.", "batch.cache.", "hw.runtime."))
        }
        print(json.dumps(payload, indent=2))
        return 0 if ok else 1
    print(
        f"serve  : {report.submitted} requests x ({args.rows}x{params.n}) "
        f"matrix, {args.engines} engine(s), fault rate {args.fault_rate}"
    )
    print(
        f"status : ok={report.ok} degraded={report.degraded} "
        f"rejected={report.rejected} deadline={report.deadline_expired} "
        f"dropped={report.dropped} retries={report.retries} "
        f"correct={correct}"
    )
    print(
        f"latency: p50 {report.latency_ms(50):.1f} ms, "
        f"p95 {report.latency_ms(95):.1f} ms, "
        f"p99 {report.latency_ms(99):.1f} ms "
        f"({report.goodput_rps:,.1f} req/s wall)"
    )
    print(
        f"sim    : makespan {report.makespan_cycles:,} cycles, "
        f"goodput {report.goodput_sim_rps:,.0f} req/s on the device clock, "
        f"per-engine busy {report.per_engine_busy_cycles}"
    )
    for i, h in enumerate(report.engine_health):
        print(
            f"engine{i}: jobs={h.jobs_completed} failed_attempts="
            f"{h.jobs_failed} retries={h.job_retries} hangs="
            f"{h.hangs_detected} resets={h.resets}"
        )
    return 0 if ok else 1


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Sharded multi-node HMVP demo: scatter, fail over, gather exactly.

    The acceptance shape the CI smoke step asserts on: every shard of
    every request reaches a terminal outcome (zero dropped) even with
    injected node hangs, and the gathered ciphertexts decrypt to the
    exact ``A @ v`` — the cluster path is bit-identical to the
    single-engine path, so correctness here is unconditional.
    """
    from repro import obs
    from repro.cluster import ClusterConfig, ClusterExecutor, MembershipSchedule
    from repro.he.bfv import BfvScheme
    from repro.he.params import toy_params

    reg = obs.enable_metrics()
    params = toy_params(n=128, plain_bits=40)
    scheme = BfvScheme(params, seed=args.seed, max_pack=params.n)
    rng = np.random.default_rng(args.seed)
    cols = args.cols if args.cols is not None else 2 * params.n
    matrix = rng.integers(-40, 40, (args.rows, cols))
    config = ClusterConfig(
        nodes=args.nodes,
        replication=args.replication,
        max_retries=args.max_retries,
        fault_rate=args.fault_rate,
        register_flip_rate=args.register_flip_rate,
        seed=args.seed,
        topology=getattr(args, "topology", None),
        link_bandwidth=getattr(args, "bandwidth", 64),
        link_latency=getattr(args, "latency", 4),
        flit_bytes=getattr(args, "flit_bytes", 64),
    )
    schedule = None
    if args.elastic or args.schedule:
        schedule = (
            MembershipSchedule.parse(args.schedule)
            if args.schedule
            else MembershipSchedule.random(
                seed=args.seed, requests=args.requests,
                initial_nodes=args.nodes,
            )
        )
    executor = ClusterExecutor(scheme, matrix, config=config,
                               schedule=schedule)
    vectors = [rng.integers(-40, 40, cols) for _ in range(args.requests)]
    requests = [executor.encrypt_vector(v) for v in vectors]
    results = executor.execute_batch(requests)
    half = params.plain_modulus // 2

    def centered(values):
        return [((int(v) + half) % params.plain_modulus) - half
                for v in values]

    correct = all(
        centered(res.decrypt(scheme)[: args.rows])
        == centered(matrix.astype(object) @ v.astype(object))
        for res, v in zip(results, vectors)
    )
    report = executor.report()
    ok = correct and report.dropped == 0
    if args.json:
        payload = report.to_dict()
        payload["correct"] = correct
        snap = reg.snapshot()
        payload["counters"] = {
            k: v for k, v in snap["counters"].items()
            if k.startswith(("cluster.", "hw.runtime."))
        }
        print(json.dumps(payload, indent=2))
        return 0 if ok else 1
    plan = executor.plan
    print(
        f"cluster: {args.requests} requests x ({args.rows}x{cols}) matrix, "
        f"{args.nodes} node(s) x{args.replication} replication, "
        f"fault rate {args.fault_rate}"
    )
    print(
        f"plan   : {len(plan.shards)} shard(s) "
        f"({plan.row_bands} row band(s) x {plan.col_bands} column band(s)), "
        f"ring {plan.ring_n}"
    )
    print(
        f"status : executions={report.shard_executions} "
        f"retries={report.shard_retries} "
        f"rebalanced={report.rebalance_events} "
        f"degraded={report.degraded_shards} dropped={report.dropped} "
        f"correct={correct}"
    )
    print(
        f"sim    : makespan {report.makespan_cycles:,} cycles, goodput "
        f"{report.goodput_sim_rps:,.1f} req/s on the device clock, "
        f"{report.speedup_vs_single_node:.2f}x vs one node, per-node busy "
        f"{report.per_node_busy_cycles}"
    )
    if schedule is not None:
        m = report.membership
        print(
            f"elastic: schedule [{schedule.to_spec()}] -> "
            f"{m['joins']} join(s) {m['leaves']} leave(s) "
            f"{m['kills']} kill(s), {m['migrated_entries']} cache "
            f"entr(ies) migrated, {m['reencodes']} re-encode(s), "
            f"{m['replica_promotions']} promotion(s)"
        )
    if report.network:
        n = report.network
        print(
            f"network: {n['topology']} fabric, "
            f"{report.network_cycles:,} net cycles "
            f"({n['flits_injected']:,} flits, "
            f"{n['blocked_attempts']:,} blocked, "
            f"max queue {n['max_queue_depth']}, "
            f"dropped {n['flits_dropped']})"
        )
    for node in sorted(executor.nodes.values(), key=lambda n: n.node_id):
        h = node.health()
        print(
            f"node{node.node_id}  : shards={node.shards_served} "
            f"failed_attempts={h.jobs_failed} hangs={h.hangs_detected} "
            f"resets={h.resets}"
        )
    return 0 if ok else 1


def _cmd_netsim(args: argparse.Namespace) -> int:
    """Interconnect demo: charge real cluster traffic through a fabric.

    Runs the sharded HMVP workload with the discrete-event network
    simulator attached, then reports the network-vs-compute cycle
    split, per-phase flit counts, and per-link utilization.  The CI
    smoke step asserts contention was observed (``blocked_attempts``
    > 0 on a bandwidth-limited fabric), that no flit was lost or
    duplicated, and that no request dropped.
    """
    from repro import obs
    from repro.cluster import ClusterConfig, ClusterExecutor
    from repro.he.bfv import BfvScheme
    from repro.he.params import toy_params

    reg = obs.enable_metrics()
    params = toy_params(n=128, plain_bits=40)
    scheme = BfvScheme(params, seed=args.seed, max_pack=params.n)
    rng = np.random.default_rng(args.seed)
    cols = args.cols if args.cols is not None else 2 * params.n
    matrix = rng.integers(-40, 40, (args.rows, cols))
    config = ClusterConfig(
        nodes=args.nodes,
        replication=args.replication,
        seed=args.seed,
        topology=args.topology,
        link_bandwidth=args.bandwidth,
        link_latency=args.latency,
        flit_bytes=args.flit_bytes,
    )
    executor = ClusterExecutor(scheme, matrix, config=config)
    vectors = [
        rng.integers(-40, 40, cols) for _ in range(args.requests)
    ]
    requests = [executor.encrypt_vector(v) for v in vectors]
    results = executor.execute_batch(requests)
    got = results[-1].decrypt(scheme)[: args.rows]
    want = matrix.astype(object) @ vectors[-1].astype(object)
    correct = bool(np.array_equal(got, want))
    report = executor.report()
    net = report.network
    ok = (
        correct
        and report.dropped == 0
        and net["flits_dropped"] == 0
        and net["duplicates"] == 0
    )
    if args.json:
        payload = report.to_dict()
        payload["correct"] = correct
        snap = reg.snapshot()
        payload["counters"] = {
            k: v for k, v in snap["counters"].items()
            if k.startswith("cluster.")
        }
        print(json.dumps(payload, indent=2))
        return 0 if ok else 1
    total = report.makespan_cycles or 1
    print(
        f"netsim : {args.requests} requests x ({args.rows}x{cols}) matrix "
        f"over {args.nodes} node(s) on a '{net['topology']}' fabric "
        f"({args.bandwidth} B/cycle links, latency {args.latency}, "
        f"{net['flit_bytes']}-byte flits)"
    )
    print(
        f"cycles : compute {report.compute_makespan_cycles:,} + network "
        f"{report.network_cycles:,} = {report.makespan_cycles:,} makespan "
        f"({100 * report.network_cycles / total:.1f}% network)"
    )
    print(
        f"traffic: {net['messages']:,} messages, "
        f"{net['flits_injected']:,} flits injected, "
        f"{net['flits_delivered']:,} delivered, "
        f"{net['flits_dropped']} dropped, {net['duplicates']} duplicated"
    )
    print(
        f"fabric : {net['blocked_attempts']:,} blocked head-flit attempts, "
        f"max link queue {net['max_queue_depth']}/"
        f"{net['buffer_flits']}, max DMA queue {net['max_inject_depth']}, "
        f"{net['events']:,} events"
    )
    for phase, row in net["phases"].items():
        print(
            f"phase  : {phase:12s} {row['cycles']:>9,} cycles "
            f"{row['flits']:>8,} flits {row['messages']:>5,} msgs "
            f"{row['nbytes']:>11,} bytes"
        )
    busiest = sorted(
        net["links"].items(),
        key=lambda kv: -kv[1]["busy_cycles"],
    )[:5]
    for name, row in busiest:
        print(
            f"link   : {name:14s} util {row['utilization']:.3f} "
            f"flits {row['flits']:>8,} blocked {row['blocked']:>7,} "
            f"depth {row['max_depth']}"
        )
    print(f"trace  : sha256 {net['trace_sha256'][:16]}… ok={ok}")
    return 0 if ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis: custom HE-aware rules, optionally ruff + mypy.

    Exit code 0 means clean (or suppressed with justified
    ``# repro: noqa RULE-ID`` comments); 1 means findings or a failed
    external tool.  ``--ci`` is the merge-gate mode the GitHub Actions
    ``lint`` job runs; it always lints ``src/repro`` regardless of the
    working directory and writes the JSON artifact via ``--json-out``.
    """
    import pathlib

    from repro import analysis

    if args.list_rules:
        for rule in analysis.all_rules():
            print(f"{rule.id}  {rule.name:24s} [{rule.severity}]")
            print(f"          {rule.rationale}")
        return 0

    if args.ci:
        sarif_out = pathlib.Path(args.sarif) if args.sarif else None
        code, report, text = analysis.run_ci(sarif_out=sarif_out)
        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(report, fh, indent=2)
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(text)
        return code

    rules = analysis.get_rules(args.rule) if args.rule else None
    root = analysis.repo_root()
    if args.diff:
        try:
            paths = analysis.changed_python_files(args.diff, root=root)
        except RuntimeError as exc:
            print(f"repro lint --diff: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print(f"repro lint: no .py files changed vs {args.diff}")
            if args.sarif:
                _write_sarif(args.sarif, [], rules)
            return 0
    else:
        paths = (
            [pathlib.Path(p) for p in args.paths]
            if args.paths
            else [root / "src" / "repro"]
        )
    diags = analysis.lint_paths(paths, rules=rules, root=root)
    report = analysis.diagnostics_to_json(diags)
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(report, fh, indent=2)
    if args.sarif:
        _write_sarif(args.sarif, diags, rules)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(analysis.render_text(diags))
    return 1 if diags else 0


def _write_sarif(path, diags, rules) -> None:
    from repro.analysis import diagnostics_to_sarif

    with open(path, "w") as fh:
        json.dump(diagnostics_to_sarif(diags, rules=rules), fh, indent=2)


def _cmd_profile(args: argparse.Namespace) -> int:
    """Kernel profiler: trace a warm batched run, print the sim-gap ledger.

    Exit code 0 requires the ledger to attribute >= 95% of the measured
    wall time to named kernel buckets — the same bar the test suite
    holds, so CI can smoke the profiler end to end.
    """
    from repro import obs
    from repro.obs.profile import (
        collapsed_stacks,
        openmetrics_text,
        profile_batched_hmvp,
    )

    reg = obs.enable_metrics()
    run = profile_batched_hmvp(
        rows=args.rows, batch=args.batch, seed=args.seed
    )
    ledger = run.ledger
    if args.trace_out:
        obs.TRACER.export_chrome_trace(args.trace_out)
    if args.collapsed_out:
        with open(args.collapsed_out, "w") as fh:
            fh.write(collapsed_stacks(run.spans))
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            fh.write(openmetrics_text(reg))
    ok = ledger.coverage >= 0.95
    if args.json:
        payload = ledger.to_dict()
        payload["ok"] = ok
        print(json.dumps(payload, indent=2))
        return 0 if ok else 1
    print(
        f"profile: warm batched HMVP, {args.rows}x128 matrix, "
        f"batch {args.batch} ({run.wall_s * 1e3:.1f} ms measured)"
    )
    print(ledger.render_text())
    for name, path in (
        ("trace", args.trace_out),
        ("collapsed stacks", args.collapsed_out),
        ("openmetrics", args.metrics_out),
    ):
        if path:
            print(f"{name} written to {path}")
    if not ok:
        print(f"FAIL: coverage {ledger.coverage:.1%} below the 95% bar")
    return 0 if ok else 1


def _cmd_perfcheck(args: argparse.Namespace) -> int:
    """Perf-regression gate: latest bench records vs the pinned floors."""
    import os

    from repro.analysis import repo_root
    from repro.obs.perfcheck import check_floors

    root = repo_root()
    results = args.results or os.environ.get(
        "BENCH_RESULTS_DIR", str(root / "benchmarks" / "results")
    )
    floors = args.floors or str(root / "benchmarks" / "floors.json")
    report = check_floors(results, floors)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
        for bench, meta in sorted(report.metadata.items()):
            print(
                f"  {bench}: commit {meta.get('git_sha', 'unknown')[:12]} "
                f"@ {meta.get('timestamp_utc', '?')} "
                f"on {meta.get('hostname', '?')}"
            )
    return 0 if report.passed else 1


def _cmd_dse(args: argparse.Namespace) -> int:
    from repro.hw.dse import enumerate_design_space, pareto_front

    points = enumerate_design_space(bench_rows=args.rows)
    front = pareto_front(points)
    print(f"{len(points)} points, {sum(p.fits for p in points)} feasible, "
          f"{len(front)} on the frontier:")
    for p in front:
        print(f"  {p.label:26s} {p.rows_per_sec:10,.0f} rows/s  "
              f"max util {p.max_utilization_pct:5.1f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CHAM (DAC 2023) reproduction command-line tour",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one encrypted HMVP")
    demo.add_argument("--rows", type=int, default=8)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--production", action="store_true",
                      help="use the full N=4096 parameter set")
    demo.add_argument("--trace-out", metavar="FILE", default=None,
                      help="write a Chrome-trace span file of the run")
    demo.set_defaults(func=_cmd_demo)

    tables = sub.add_parser("tables", help="print headline reproduced tables")
    tables.set_defaults(func=_cmd_tables)

    trace = sub.add_parser("trace", help="render a pipeline Gantt")
    trace.add_argument("--rows", type=int, default=32)
    trace.add_argument("--tiles", type=int, default=1)
    trace.add_argument("--width", type=int, default=72)
    trace.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write the pipeline events as a Chrome trace")
    trace.set_defaults(func=_cmd_trace)

    params = sub.add_parser("params", help="show/generate a parameter set")
    params.add_argument("--n", type=int, default=4096)
    params.add_argument("--limbs", type=int, default=2)
    params.add_argument("--limb-bits", type=int, default=35)
    params.add_argument("--special-bits", type=int, default=39)
    params.add_argument("--plain-bits", type=int, default=40)
    params.set_defaults(func=_cmd_params)

    dse = sub.add_parser("dse", help="design-space sweep (Fig. 2b)")
    dse.add_argument("--rows", type=int, default=1024)
    dse.set_defaults(func=_cmd_dse)

    compare = sub.add_parser("compare", help="published-accelerator landscape")
    compare.set_defaults(func=_cmd_compare)

    energy = sub.add_parser("energy", help="energy per HMVP on each platform")
    energy.add_argument("--rows", type=int, default=8192)
    energy.add_argument("--cols", type=int, default=4096)
    energy.set_defaults(func=_cmd_energy)

    report = sub.add_parser("report", help="full reproduction report (markdown)")
    report.add_argument("--output", "-o", default=None)
    report.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write per-section spans as a Chrome trace")
    report.set_defaults(func=_cmd_report)

    metrics = sub.add_parser(
        "metrics", help="run an instrumented workload, print the registry"
    )
    metrics.add_argument("--rows", type=int, default=8)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--json", action="store_true",
                         help="dump the snapshot as JSON")
    metrics.set_defaults(func=_cmd_metrics)

    batch = sub.add_parser(
        "batch", help="batched HMVP serving demo (matrix-resident engine)"
    )
    batch.add_argument("--rows", type=int, default=8)
    batch.add_argument("--batch", type=int, default=8)
    batch.add_argument("--workers", type=int, default=2)
    batch.add_argument("--seed", type=int, default=0)
    batch.add_argument("--json", action="store_true",
                       help="dump results + metrics snapshot as JSON")
    batch.set_defaults(func=_cmd_batch)

    serve = sub.add_parser(
        "serve", help="async fault-tolerant serving load generator"
    )
    serve.add_argument("--requests", type=int, default=64)
    serve.add_argument("--engines", type=int, default=2)
    serve.add_argument("--rows", type=int, default=8)
    serve.add_argument("--batch", type=int, default=8,
                       help="micro-batch drain threshold (max_batch)")
    serve.add_argument("--max-wait-ms", type=float, default=5.0)
    serve.add_argument("--capacity", type=int, default=256,
                       help="admission bound (raised to --requests)")
    serve.add_argument("--fault-rate", type=float, default=0.0,
                       help="device hang probability per job execution")
    serve.add_argument("--register-flip-rate", type=float, default=0.0)
    serve.add_argument("--max-retries", type=int, default=2)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--json", action="store_true",
                       help="dump the serve report + counters as JSON")
    serve.set_defaults(func=_cmd_serve)

    cluster = sub.add_parser(
        "cluster", help="sharded multi-node HMVP demo (scatter/gather)"
    )
    cluster.add_argument("--requests", type=int, default=8)
    cluster.add_argument("--nodes", type=int, default=4)
    cluster.add_argument("--replication", type=int, default=2)
    cluster.add_argument("--rows", type=int, default=96)
    cluster.add_argument("--cols", type=int, default=None,
                         help="matrix columns (default: 2 ring tiles)")
    cluster.add_argument("--fault-rate", type=float, default=0.0,
                         help="node hang probability per shard offload")
    cluster.add_argument("--register-flip-rate", type=float, default=0.0)
    cluster.add_argument("--max-retries", type=int, default=1,
                         help="extra passes over a shard's replica list")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--elastic", action="store_true",
                         help="enable elastic membership; without "
                              "--schedule, a seeded random schedule is "
                              "generated from --seed")
    cluster.add_argument("--schedule", type=str, default=None,
                         help="membership schedule 'seq:kind[:node],...' "
                              "e.g. '4:kill:3,4:kill:2,8:join,8:join' "
                              "(kinds: join/leave/kill; implies --elastic)")
    cluster.add_argument("--topology", type=str, default=None,
                         choices=["ideal", "ring", "mesh", "fat-tree"],
                         help="attach the interconnect simulator and "
                              "charge scatter/gather/migration traffic "
                              "(default: free comm)")
    cluster.add_argument("--bandwidth", type=int, default=64,
                         help="link bandwidth in bytes/cycle")
    cluster.add_argument("--latency", type=int, default=4,
                         help="per-hop pipeline latency in cycles")
    cluster.add_argument("--flit-bytes", type=int, default=64,
                         dest="flit_bytes", help="wire flit size")
    cluster.add_argument("--json", action="store_true",
                         help="dump the cluster report + counters as JSON")
    cluster.set_defaults(func=_cmd_cluster)

    netsim = sub.add_parser(
        "netsim",
        help="interconnect simulation of the cluster data path",
    )
    netsim.add_argument("--topology", type=str, default="mesh",
                        choices=["ideal", "ring", "mesh", "fat-tree"],
                        help="fabric to charge ciphertext movement through")
    netsim.add_argument("--requests", type=int, default=4)
    netsim.add_argument("--nodes", type=int, default=4)
    netsim.add_argument("--replication", type=int, default=2)
    netsim.add_argument("--rows", type=int, default=96)
    netsim.add_argument("--cols", type=int, default=None,
                        help="matrix columns (default: 2 ring tiles)")
    netsim.add_argument("--bandwidth", type=int, default=16,
                        help="link bandwidth in bytes/cycle")
    netsim.add_argument("--latency", type=int, default=4,
                        help="per-hop pipeline latency in cycles")
    netsim.add_argument("--flit-bytes", type=int, default=64,
                        dest="flit_bytes", help="wire flit size")
    netsim.add_argument("--seed", type=int, default=0)
    netsim.add_argument("--json", action="store_true",
                        help="dump the cluster report (with the network "
                             "block) + counters as JSON")
    netsim.set_defaults(func=_cmd_netsim)

    lint = sub.add_parser(
        "lint", help="HE-aware static analysis (repro.analysis)"
    )
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: src/repro)")
    lint.add_argument("--rule", action="append", metavar="ID",
                      help="run only this rule (repeatable)")
    lint.add_argument("--json", action="store_true",
                      help="print the diagnostics report as JSON")
    lint.add_argument("--json-out", metavar="FILE", default=None,
                      help="also write the JSON report to FILE (CI artifact)")
    lint.add_argument("--ci", action="store_true",
                      help="merge-gate mode: custom rules on src/repro plus "
                           "ruff and mypy (skipped when not installed)")
    lint.add_argument("--diff", metavar="BASE", default=None,
                      help="lint only .py files changed vs this git ref "
                           "(plus untracked files)")
    lint.add_argument("--sarif", metavar="FILE", default=None,
                      help="also write findings as SARIF 2.1.0 (GitHub "
                           "code-scanning upload format)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.set_defaults(func=_cmd_lint)

    profile = sub.add_parser(
        "profile", help="kernel profiler + sim-gap ledger (warm batched run)"
    )
    profile.add_argument("--rows", type=int, default=8)
    profile.add_argument("--batch", type=int, default=8)
    profile.add_argument("--seed", type=int, default=11)
    profile.add_argument("--json", action="store_true",
                         help="dump the ledger as JSON")
    profile.add_argument("--trace-out", metavar="FILE", default=None,
                         help="write the measured run as a Chrome trace")
    profile.add_argument("--collapsed-out", metavar="FILE", default=None,
                         help="write collapsed stacks (flamegraph input)")
    profile.add_argument("--metrics-out", metavar="FILE", default=None,
                         help="write the metrics registry as OpenMetrics text")
    profile.set_defaults(func=_cmd_profile)

    perfcheck = sub.add_parser(
        "perfcheck", help="compare bench records against pinned perf floors"
    )
    perfcheck.add_argument("--results", metavar="DIR", default=None,
                           help="bench results dir (default: "
                                "$BENCH_RESULTS_DIR or benchmarks/results)")
    perfcheck.add_argument("--floors", metavar="FILE", default=None,
                           help="pinned floors (default: benchmarks/floors.json)")
    perfcheck.add_argument("--json", action="store_true",
                           help="dump the report as JSON")
    perfcheck.set_defaults(func=_cmd_perfcheck)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
