"""Perf-regression gate: run metadata + floor comparison for benchmarks.

The benchmark harness (``benchmarks/conftest.py``) appends one record
per run to ``benchmarks/results/BENCH_<name>.json``.  This module adds
the two pieces that turn those records into a CI gate:

* :func:`run_metadata` — machine annotation (git SHA, UTC timestamp,
  hostname, python/numpy versions) stamped into every record, so a
  regression is attributable to a commit and a machine;
* :func:`check_floors` — compares the *latest* record of each benchmark
  against pinned floors (``benchmarks/floors.json``) with a per-check
  tolerance band.  Deterministic simulated metrics carry tight bands;
  wall-clock metrics carry wide ones (CI runners vary), so the gate
  catches order-of-magnitude regressions without flaking.

A check is ``{"bench", "metric", "kind": "floor"|"ceiling", "value",
"tolerance"}``: a floor passes when ``measured >= value * (1 -
tolerance)``, a ceiling when ``measured <= value * (1 + tolerance)``.
Missing result files or metrics fail explicitly — a gate that silently
skips is no gate.
"""

from __future__ import annotations

import json
import platform
import socket
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = [
    "run_metadata",
    "CheckResult",
    "PerfCheckReport",
    "latest_record",
    "evaluate_check",
    "check_floors",
]


def _git_sha(repo_root: Optional[str] = None) -> str:
    """Current commit SHA, or "unknown" outside a repo / without git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip()


def run_metadata(repo_root: Optional[str] = None) -> Dict[str, str]:
    """Machine annotation for one benchmark run (all values strings)."""
    import datetime

    import numpy as np

    return {
        "git_sha": _git_sha(repo_root),
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat(),
        "hostname": socket.gethostname(),
        "python": platform.python_version(),
        "numpy": str(np.__version__),
    }


@dataclass
class CheckResult:
    """Outcome of one floor/ceiling comparison."""

    bench: str
    metric: str
    kind: str  #: "floor" or "ceiling"
    value: float  #: the pinned reference
    tolerance: float
    bound: float  #: the pass/fail boundary after the tolerance band
    measured: Optional[float]  #: None when the record/metric is missing
    passed: bool
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bench": self.bench,
            "metric": self.metric,
            "kind": self.kind,
            "value": self.value,
            "tolerance": self.tolerance,
            "bound": self.bound,
            "measured": self.measured,
            "passed": self.passed,
            "reason": self.reason,
        }


@dataclass
class PerfCheckReport:
    """Every check's outcome plus the compared records' metadata."""

    results: List[CheckResult]
    metadata: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return bool(self.results) and all(r.passed for r in self.results)

    @property
    def failures(self) -> List[CheckResult]:
        return [r for r in self.results if not r.passed]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "passed": self.passed,
            "checks": [r.to_dict() for r in self.results],
            "metadata": self.metadata,
        }

    def render_text(self) -> str:
        lines = [
            f"{'bench':<14} {'metric':<24} {'kind':<8} {'bound':>12} "
            f"{'measured':>12} {'result':<6}"
        ]
        for r in self.results:
            measured = f"{r.measured:.4g}" if r.measured is not None else "-"
            status = "PASS" if r.passed else "FAIL"
            lines.append(
                f"{r.bench:<14} {r.metric:<24} {r.kind:<8} "
                f"{r.bound:>12.4g} {measured:>12} {status:<6}"
                + (f"  ({r.reason})" if r.reason and not r.passed else "")
            )
        lines.append("perfcheck: " + ("PASS" if self.passed else "FAIL"))
        return "\n".join(lines)


def latest_record(
    results_dir: Union[str, Path], bench: str
) -> Optional[Dict[str, Any]]:
    """The newest record of ``BENCH_<bench>.json``, or None if absent."""
    path = Path(results_dir) / f"BENCH_{bench}.json"
    if not path.exists():
        return None
    records = json.loads(path.read_text())
    if not isinstance(records, list) or not records:
        return None
    return records[-1]


def evaluate_check(
    check: Mapping[str, Any], record: Optional[Mapping[str, Any]]
) -> CheckResult:
    """Compare one pinned check against a benchmark record."""
    bench = str(check["bench"])
    metric = str(check["metric"])
    kind = str(check.get("kind", "floor"))
    value = float(check["value"])
    tolerance = float(check.get("tolerance", 0.0))
    if kind not in ("floor", "ceiling"):
        raise ValueError(f"unknown check kind {kind!r}")
    if tolerance < 0.0:
        raise ValueError("tolerance must be non-negative")
    bound = (
        value * (1.0 - tolerance) if kind == "floor" else value * (1.0 + tolerance)
    )
    if record is None:
        return CheckResult(
            bench, metric, kind, value, tolerance, bound, None, False,
            reason="no benchmark record",
        )
    metrics = record.get("metrics", {})
    if metric not in metrics:
        return CheckResult(
            bench, metric, kind, value, tolerance, bound, None, False,
            reason=f"metric {metric!r} missing from record",
        )
    measured = float(metrics[metric])
    if kind == "floor":
        passed = measured >= bound
        reason = "" if passed else f"{measured:.4g} < floor bound {bound:.4g}"
    else:
        passed = measured <= bound
        reason = "" if passed else f"{measured:.4g} > ceiling bound {bound:.4g}"
    return CheckResult(
        bench, metric, kind, value, tolerance, bound, measured, passed, reason
    )


def check_floors(
    results_dir: Union[str, Path], floors_path: Union[str, Path]
) -> PerfCheckReport:
    """Diff the latest benchmark records against the pinned floors file."""
    floors = json.loads(Path(floors_path).read_text())
    checks = floors.get("checks", [])
    if not checks:
        raise ValueError(f"{floors_path} pins no checks")
    records: Dict[str, Optional[Dict[str, Any]]] = {}
    results: List[CheckResult] = []
    metadata: Dict[str, Dict[str, Any]] = {}
    for check in checks:
        bench = str(check["bench"])
        if bench not in records:
            records[bench] = latest_record(results_dir, bench)
            record = records[bench]
            if record is not None and "meta" in record:
                metadata[bench] = record["meta"]
        results.append(evaluate_check(check, records[bench]))
    return PerfCheckReport(results=results, metadata=metadata)
