"""Property-based algebra suite for the math substrate.

Pins the ring axioms and structural identities every higher layer
assumes: ``Z_q[X]/(X^N+1)`` is a commutative ring, its Galois group acts
as claimed, and the RNS representation is a ring isomorphism.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math.polynomial import RingPoly
from repro.math.primes import CHAM_P, CHAM_Q0
from repro.math.rns import RnsBasis

N = 32
Q = CHAM_Q0

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=Q - 1), min_size=N, max_size=N
)


def poly(coeffs):
    return RingPoly(np.array(coeffs, dtype=np.uint64), Q)


# -- ring axioms -----------------------------------------------------------------


@given(a=coeff_lists, b=coeff_lists)
@settings(max_examples=30, deadline=None)
def test_addition_commutes_and_multiplication_commutes(a, b):
    pa, pb = poly(a), poly(b)
    assert pa + pb == pb + pa
    assert pa * pb == pb * pa


@given(a=coeff_lists, b=coeff_lists, c=coeff_lists)
@settings(max_examples=20, deadline=None)
def test_associativity_and_distributivity(a, b, c):
    pa, pb, pc = poly(a), poly(b), poly(c)
    assert (pa + pb) + pc == pa + (pb + pc)
    assert (pa * pb) * pc == pa * (pb * pc)
    assert pa * (pb + pc) == pa * pb + pa * pc


@given(a=coeff_lists)
@settings(max_examples=20, deadline=None)
def test_identities(a):
    pa = poly(a)
    one = RingPoly.constant(1, N, Q)
    zero = RingPoly.zero(N, Q)
    assert pa * one == pa
    assert pa + zero == pa
    assert pa + (-pa) == zero
    assert pa * zero == zero


# -- Galois group ---------------------------------------------------------------


@given(a=coeff_lists, i=st.integers(min_value=0, max_value=N // 2 - 1))
@settings(max_examples=20, deadline=None)
def test_automorphism_group_is_units_mod_2n(a, i):
    """Odd k act invertibly; composition follows multiplication mod 2N."""
    pa = poly(a)
    k = 2 * i + 1
    k_inv = pow(k, -1, 2 * N)
    assert pa.automorph(k).automorph(k_inv) == pa


@given(
    a=coeff_lists,
    i=st.integers(min_value=0, max_value=15),
    j=st.integers(min_value=0, max_value=15),
)
@settings(max_examples=20, deadline=None)
def test_automorphism_composition_law(a, i, j):
    pa = poly(a)
    k1, k2 = 2 * i + 1, 2 * j + 1
    assert pa.automorph(k1).automorph(k2) == pa.automorph(k1 * k2 % (2 * N))


@given(a=coeff_lists, s=st.integers(min_value=-64, max_value=64))
@settings(max_examples=20, deadline=None)
def test_shiftneg_is_multiplication_by_monomial(a, s):
    pa = poly(a)
    assert pa.shiftneg(s) == pa * RingPoly.monomial(s, N, Q)


@given(a=coeff_lists)
@settings(max_examples=20, deadline=None)
def test_rev_is_an_involution(a):
    pa = poly(a)
    assert pa.rev().rev() == pa


# -- RNS isomorphism ---------------------------------------------------------------


@given(
    x=st.integers(min_value=0, max_value=CHAM_Q0 * CHAM_P - 1),
    y=st.integers(min_value=0, max_value=CHAM_Q0 * CHAM_P - 1),
)
@settings(max_examples=40, deadline=None)
def test_rns_is_ring_homomorphism(x, y):
    basis = RnsBasis((CHAM_Q0, CHAM_P), 4)
    arr_x = np.array([x, 0, 0, 0], dtype=object)
    arr_y = np.array([y, 0, 0, 0], dtype=object)
    rx, ry = basis.decompose(arr_x), basis.decompose(arr_y)
    # addition
    from repro.math.modular import modadd_vec, modmul_vec

    added = np.stack(
        [modadd_vec(rx[i], ry[i], q) for i, q in enumerate(basis)]
    )
    assert int(basis.compose(added)[0]) == (x + y) % basis.product
    # multiplication
    mult = np.stack(
        [modmul_vec(rx[i], ry[i], q) for i, q in enumerate(basis)]
    )
    assert int(basis.compose(mult)[0]) == (x * y) % basis.product


@given(x=st.integers(min_value=0, max_value=CHAM_Q0 - 1))
@settings(max_examples=30, deadline=None)
def test_rns_compose_decompose_identity(x):
    basis = RnsBasis((CHAM_Q0, CHAM_P), 4)
    arr = np.array([x, x, 0, 1], dtype=object)
    assert np.array_equal(basis.compose(basis.decompose(arr)), arr)


# -- NTT as ring isomorphism -----------------------------------------------------------


@given(a=coeff_lists, b=coeff_lists)
@settings(max_examples=20, deadline=None)
def test_ntt_domain_is_pointwise_ring(a, b):
    """NTT(a*b) = NTT(a) ∘ NTT(b) and NTT(a+b) = NTT(a) + NTT(b)."""
    from repro.math.modular import modadd_vec, modmul_vec
    from repro.math.ntt import NegacyclicNtt

    ctx = NegacyclicNtt(N, Q)
    pa = np.array(a, dtype=np.uint64)
    pb = np.array(b, dtype=np.uint64)
    ha, hb = ctx.forward(pa), ctx.forward(pb)
    assert np.array_equal(
        ctx.forward(ctx.multiply(pa, pb)), modmul_vec(ha, hb, Q)
    )
    assert np.array_equal(
        ctx.forward(modadd_vec(pa, pb, Q)), modadd_vec(ha, hb, Q)
    )
