"""Arithmetic substrate: modular/NTT/polynomial/RNS building blocks.

Everything in :mod:`repro.he` and :mod:`repro.hw` is built on top of this
package.  The two NTT implementations — the gold-model merged Cooley-Tukey
transform (:mod:`repro.math.ntt`) and the constant-geometry Pease network
of the paper's Algorithm 4 (:mod:`repro.math.cg_ntt`) — are interchangeable
and cross-validated.
"""

from .modular import (
    BarrettReducer,
    LowHammingModulus,
    center_lift,
    center_lift_vec,
    modadd_vec,
    modinv,
    modmul_vec,
    modneg_vec,
    modpow,
    modsub_vec,
)
from .ntt import NegacyclicNtt, intt, negacyclic_convolution_schoolbook, ntt
from .cg_ntt import CgNtt, CgSchedule, cg_ntt_cycles, constant_geometry_schedule
from .polynomial import RingPoly, automorph, monomial_multiply, rev, shiftneg
from .primes import (
    CHAM_P,
    CHAM_Q0,
    CHAM_Q1,
    find_low_hamming_ntt_prime,
    find_ntt_prime,
    is_ntt_friendly,
    is_prime,
    negacyclic_psi,
    primitive_root,
    root_of_unity,
)
from .rns import RnsBasis, RnsPoly

__all__ = [
    "BarrettReducer",
    "LowHammingModulus",
    "center_lift",
    "center_lift_vec",
    "modadd_vec",
    "modinv",
    "modmul_vec",
    "modneg_vec",
    "modpow",
    "modsub_vec",
    "NegacyclicNtt",
    "ntt",
    "intt",
    "negacyclic_convolution_schoolbook",
    "CgNtt",
    "CgSchedule",
    "cg_ntt_cycles",
    "constant_geometry_schedule",
    "RingPoly",
    "automorph",
    "monomial_multiply",
    "rev",
    "shiftneg",
    "CHAM_P",
    "CHAM_Q0",
    "CHAM_Q1",
    "find_low_hamming_ntt_prime",
    "find_ntt_prime",
    "is_ntt_friendly",
    "is_prime",
    "negacyclic_psi",
    "primitive_root",
    "root_of_unity",
    "RnsBasis",
    "RnsPoly",
]
