"""Tests for the NN layer library and multi-layer private evaluation."""

import numpy as np
import pytest

from repro.apps.nn import (
    ConvLayer,
    FlattenLayer,
    LinearLayer,
    PrivateNetwork,
    ReluLayer,
    Sequential,
)


@pytest.fixture(scope="module")
def model(scheme256):
    rng = np.random.default_rng(51)
    conv = ConvLayer(kernels=rng.integers(-3, 4, (2, 3, 3)))
    feat = 2 * 10 * 10  # two 10x10 maps from a 12x12 input
    fc1 = LinearLayer(weights=rng.integers(-2, 3, (8, feat)))
    fc2 = LinearLayer(weights=rng.integers(-2, 3, (3, 8)))
    return Sequential(
        layers=[conv, ReluLayer(), FlattenLayer(), fc1, ReluLayer(), fc2],
        input_shape=(12, 12),
    )


@pytest.fixture(scope="module")
def network(scheme256, model):
    net = PrivateNetwork(scheme256, model, seed=52)
    net.offline()
    return net


def test_shapes_propagate(model):
    shapes = model.shapes()
    assert shapes[0] == (12, 12)
    assert shapes[1] == (2, 10, 10)  # conv out -> relu in
    assert shapes[3] == (200,)  # flatten out -> fc1 in
    assert shapes[5] == (8,)


def test_clear_forward_runs(model, rng):
    x = rng.integers(0, 16, (12, 12))
    out = model.predict_clear(x)
    assert out.shape == (3,)


def test_layer_clear_vs_homomorphic(scheme256, rng):
    conv = ConvLayer(kernels=rng.integers(-3, 4, (2, 3, 3)))
    x = rng.integers(-10, 10, (10, 10))
    assert np.array_equal(conv.homomorphic(scheme256, x), conv.clear_forward(x))
    lin = LinearLayer(weights=rng.integers(-5, 5, (4, 60)))
    v = rng.integers(-10, 10, 60)
    assert np.array_equal(lin.homomorphic(scheme256, v), lin.clear_forward(v))


def test_private_matches_clear(network, model, rng):
    for _ in range(3):
        x = rng.integers(0, 16, (12, 12))
        got = network.online(x)
        want = model.predict_clear(x)
        assert np.array_equal(got, want)


def test_online_requires_offline(scheme256, model):
    net = PrivateNetwork(scheme256, model, seed=1)
    with pytest.raises(RuntimeError, match="offline"):
        net.online(np.zeros((12, 12), dtype=np.int64))


def test_predict_convenience(scheme256, model, rng):
    net = PrivateNetwork(scheme256, model, seed=53)
    x = rng.integers(0, 16, (12, 12))
    assert np.array_equal(net.predict(x), model.predict_clear(x))


def test_correlations_cover_linear_layers(network, model):
    linear_flags = [layer.is_linear for layer in model.layers]
    corr_flags = [c is not None for c in network._correlations]
    assert corr_flags == linear_flags


def test_online_traffic_is_cleartext_sized(network, rng):
    """Online messages are share-sized; offline carries the ciphertexts."""
    start = len(network.channel.log)
    network.online(rng.integers(0, 16, (12, 12)))
    online_msgs = network.channel.log[start:]
    online_bytes = sum(m.size for m in online_msgs)
    offline_bytes = sum(
        m.size for m in network.channel.log if m.label.startswith("offline")
    )
    assert online_bytes < offline_bytes / 2


def test_relu_and_flatten_shapes():
    relu = ReluLayer()
    assert relu.out_shape((5, 6)) == (5, 6)
    assert np.array_equal(
        relu.clear_forward(np.array([-1, 2, 0], dtype=object)),
        np.array([0, 2, 0], dtype=object),
    )
    flat = FlattenLayer()
    assert flat.out_shape((2, 3, 4)) == (24,)
