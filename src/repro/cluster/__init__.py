"""Sharded multi-engine HMVP cluster layer.

One CHAM accelerator is one ``N``-row engine pass; this package scales
the reproduction's serving story *out*: a cost-model-driven
:class:`PartitionPlanner` tiles the matrix into shards, a
:class:`ShardPlacement` maps shards (with replicas) onto K simulated
accelerator nodes, and a :class:`ClusterExecutor` scatters encrypted
requests, fails over around injected node hangs, and gathers partials
into a result **bit-identical** to the unsharded engine's — the merge is
exact modular addition of column-shard LWE stacks plus row-order
concatenation through the same central pack.

Entry points: ``repro cluster`` on the CLI,
``benchmarks/bench_cluster.py`` for the scale-out numbers, and
``docs/ARCHITECTURE.md`` section 9 for the partitioning algebra.
"""

from .executor import ClusterConfig, ClusterExecutor, ClusterReport, ShardOutcome
from .partition import (
    PartitionError,
    PartitionPlan,
    PartitionPlanner,
    Shard,
    balanced_cuts,
)
from .placement import ClusterNode, ShardPlacement, build_nodes

__all__ = [
    "PartitionError",
    "Shard",
    "PartitionPlan",
    "PartitionPlanner",
    "balanced_cuts",
    "ClusterNode",
    "ShardPlacement",
    "build_nodes",
    "ClusterConfig",
    "ClusterExecutor",
    "ClusterReport",
    "ShardOutcome",
]
